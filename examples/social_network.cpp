// Social-network example using the low-level engine API directly: builds a
// labeled graph, then contrasts subgraph ISOMORPHISM with the e-graph
// HOMOMORPHISM semantics RDF uses (the paper's Figure 1 distinction) on a
// "management chain" pattern.
//
//   $ ./examples/social_network
#include <cstdio>

#include "engine/engine.hpp"
#include "graph/data_graph.hpp"
#include "rdf/reasoner.hpp"
#include "rdf/vocabulary.hpp"

using namespace turbo;

int main() {
  // A small company: managers manage engineers; some people review each
  // other's code.
  rdf::Dataset ds;
  auto add = [&](const std::string& s, const std::string& p, const std::string& o) {
    ds.AddIri("http://c/" + s,
              p == "a" ? std::string(rdf::vocab::kRdfType) : "http://c/" + p,
              "http://c/" + o);
  };
  add("dana", "a", "Manager");
  add("erin", "a", "Manager");
  add("alice", "a", "Engineer");
  add("bob", "a", "Engineer");
  add("carol", "a", "Engineer");
  add("dana", "manages", "alice");
  add("dana", "manages", "bob");
  add("erin", "manages", "carol");
  add("alice", "reviews", "bob");
  add("bob", "reviews", "alice");
  add("carol", "reviews", "alice");

  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);

  // Pattern: a manager managing two engineers who review each other.
  auto label = [&](const char* name) {
    return *g.LabelOfTerm(*ds.dict().FindIri("http://c/" + std::string(name)));
  };
  auto el = [&](const char* name) {
    return *g.EdgeLabelOfTerm(*ds.dict().FindIri("http://c/" + std::string(name)));
  };
  graph::QueryGraph q;
  graph::QueryVertex mgr, e1, e2;
  mgr.labels = {label("Manager")};
  e1.labels = {label("Engineer")};
  e2.labels = {label("Engineer")};
  uint32_t um = q.AddVertex(mgr), u1 = q.AddVertex(e1), u2 = q.AddVertex(e2);
  q.AddEdge({um, u1, el("manages"), -1});
  q.AddEdge({um, u2, el("manages"), -1});
  q.AddEdge({u1, u2, el("reviews"), -1});
  q.AddEdge({u2, u1, el("reviews"), -1});

  auto name_of = [&](VertexId v) {
    return ds.dict().term(g.VertexTerm(v)).lexical.substr(9);  // strip http://c/
  };

  // Homomorphism (RDF semantics): u1 and u2 may map to the same engineer
  // only if that engineer reviews themself — here they cannot, but the
  // mapping is free to repeat vertices in general.
  engine::Matcher hom(g);
  std::printf("homomorphism matches:\n");
  hom.Match(q, [&](std::span<const VertexId> m) {
    std::printf("  manager=%s  e1=%s  e2=%s\n", name_of(m[0]).c_str(),
                name_of(m[1]).c_str(), name_of(m[2]).c_str());
    return true;  // keep enumerating (false would stop the search)
  });

  // Isomorphism: additionally requires distinct data vertices per query
  // vertex (Definition 1's injectivity).
  engine::MatchOptions iso_opts;
  iso_opts.semantics = engine::MatchSemantics::kIsomorphism;
  engine::Matcher iso(g, iso_opts);
  engine::MatchStats stats;
  uint64_t iso_count = iso.Count(q, &stats);
  std::printf("isomorphism count: %llu (start vertex u%u, %llu candidate regions)\n",
              static_cast<unsigned long long>(iso_count), stats.start_query_vertex,
              static_cast<unsigned long long>(stats.num_regions));
  return 0;
}
