// Quickstart: load RDF from N-Triples, materialize inference, build the
// type-aware graph, and answer SPARQL queries with TurboHOM++.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "graph/data_graph.hpp"
#include "rdf/ntriples.hpp"
#include "rdf/reasoner.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"

int main() {
  // 1. Parse a small RDF dataset (normally you would stream a file).
  const std::string ntriples = R"(
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/GraduateStudent> .
<http://ex/GraduateStudent> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Student> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
<http://ex/mit> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/University> .
<http://ex/alice> <http://ex/degreeFrom> <http://ex/mit> .
<http://ex/bob> <http://ex/degreeFrom> <http://ex/mit> .
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/bob> <http://ex/name> "Bob" .
)";
  turbo::rdf::Dataset dataset;
  auto status = turbo::rdf::ParseNTriplesString(ntriples, &dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "parse error: %s\n", status.message().c_str());
    return 1;
  }

  // 2. Materialize RDFS inference (alice becomes a Student via subClassOf).
  turbo::rdf::MaterializeInference(&dataset);

  // 3. Build the type-aware transformed data graph (§4.1 of the paper).
  turbo::graph::DataGraph graph =
      turbo::graph::DataGraph::Build(dataset, turbo::graph::TransformMode::kTypeAware);
  std::printf("graph: %u vertices, %llu edges, %u vertex labels\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.num_vertex_labels());

  // 4. Answer SPARQL with the TurboHOM++ engine.
  turbo::sparql::TurboBgpSolver solver(graph, dataset.dict());
  turbo::sparql::Executor executor(&solver);
  const std::string query =
      "SELECT ?s ?n WHERE { "
      "  ?s a <http://ex/Student> . "
      "  ?s <http://ex/degreeFrom> <http://ex/mit> . "
      "  ?s <http://ex/name> ?n . }";
  auto result = executor.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query error: %s\n", result.message().c_str());
    return 1;
  }
  std::printf("students with an MIT degree (%zu):\n", result.value().rows.size());
  for (size_t i = 0; i < result.value().rows.size(); ++i)
    std::printf("  %s\n",
                turbo::sparql::FormatRow(result.value(), i, dataset.dict()).c_str());
  return 0;
}
