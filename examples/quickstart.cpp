// Quickstart: load RDF from N-Triples, materialize inference, and answer
// SPARQL with the streaming query API — QueryEngine owns the type-aware
// graph and the TurboHOM++ solver, Prepare() parses + plans once, and a
// Cursor streams rows with stop-aware LIMIT pushdown.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "rdf/ntriples.hpp"
#include "rdf/reasoner.hpp"
#include "sparql/query_engine.hpp"

int main() {
  // 1. Parse a small RDF dataset (normally you would stream a file).
  const std::string ntriples = R"(
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/GraduateStudent> .
<http://ex/GraduateStudent> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Student> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
<http://ex/mit> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/University> .
<http://ex/alice> <http://ex/degreeFrom> <http://ex/mit> .
<http://ex/bob> <http://ex/degreeFrom> <http://ex/mit> .
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/bob> <http://ex/name> "Bob" .
)";
  turbo::rdf::Dataset dataset;
  auto status = turbo::rdf::ParseNTriplesString(ntriples, &dataset);
  if (!status.ok()) {
    std::fprintf(stderr, "parse error: %s\n", status.message().c_str());
    return 1;
  }

  // 2. Materialize RDFS inference (alice becomes a Student via subClassOf).
  turbo::rdf::MaterializeInference(&dataset);

  // 3. Hand the closed dataset to the engine: it builds the type-aware
  // transformed data graph (§4.1 of the paper) and the TurboHOM++ solver.
  turbo::sparql::QueryEngine engine(std::move(dataset));

  // 4. Prepare once (parse + plan), then execute as often as you like.
  auto prepared = engine.Prepare(
      "SELECT ?s ?n WHERE { "
      "  ?s a <http://ex/Student> . "
      "  ?s <http://ex/degreeFrom> <http://ex/mit> . "
      "  ?s <http://ex/name> ?n . }");
  if (!prepared.ok()) {
    std::fprintf(stderr, "query error: %s\n", prepared.message().c_str());
    return 1;
  }

  // 5. Stream the rows through a cursor.
  auto cursor = engine.Open(prepared.value());
  if (!cursor.ok()) {
    std::fprintf(stderr, "open error: %s\n", cursor.message().c_str());
    return 1;
  }
  std::printf("students with an MIT degree:\n");
  turbo::sparql::Row row;
  size_t n = 0;
  while (cursor.value().Next(&row)) {
    std::printf("  %s\n",
                turbo::sparql::FormatRow(cursor.value().var_names(), row, engine.dict())
                    .c_str());
    ++n;
  }
  if (!cursor.value().status().ok()) {
    std::fprintf(stderr, "query error: %s\n", cursor.value().status().message().c_str());
    return 1;
  }
  std::printf("%zu rows\n", n);

  // 6. The same prepared query under a delivery budget: LIMIT pushdown stops
  // the subgraph search after the first row instead of enumerating all.
  turbo::sparql::ExecOptions one_row;
  one_row.limit_budget = 1;
  auto first = engine.Open(prepared.value(), one_row);
  if (first.ok() && first.value().Next(&row))
    std::printf("first row only: %s\n",
                turbo::sparql::FormatRow(first.value().var_names(), row, engine.dict())
                    .c_str());
  return 0;
}
