// LUBM demo: generate a university dataset, materialize inference, and run
// the 14 official benchmark queries, printing counts, times and the
// engine-side statistics (candidate regions, matching order).
//
//   $ ./examples/lubm_demo [num_universities]
#include <cstdio>
#include <cstdlib>

#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

int main(int argc, char** argv) {
  turbo::workload::LubmConfig cfg;
  cfg.num_universities = argc > 1 ? std::atoi(argv[1]) : 2;

  turbo::util::WallTimer timer;
  turbo::rdf::ReasonerStats rstats;
  turbo::rdf::Dataset dataset = turbo::workload::GenerateLubmClosed(cfg, &rstats);
  std::printf("LUBM(%u): %zu original + %zu inferred triples (%.1fs)\n",
              cfg.num_universities, dataset.num_original(), rstats.inferred_triples,
              timer.ElapsedSeconds());

  timer.Reset();
  turbo::graph::DataGraph graph =
      turbo::graph::DataGraph::Build(dataset, turbo::graph::TransformMode::kTypeAware);
  std::printf("type-aware graph: %u vertices, %llu edges, %u labels (%.1fs)\n\n",
              graph.num_vertices(), static_cast<unsigned long long>(graph.num_edges()),
              graph.num_vertex_labels(), timer.ElapsedSeconds());

  turbo::sparql::TurboBgpSolver solver(graph, dataset.dict());
  turbo::sparql::Executor executor(&solver);
  auto queries = turbo::workload::LubmQueries();
  std::printf("%-5s %12s %12s %10s %12s\n", "query", "solutions", "time[ms]", "regions",
              "CR vertices");
  for (size_t i = 0; i < queries.size(); ++i) {
    solver.ResetStats();
    turbo::util::WallTimer qt;
    auto result = executor.Execute(queries[i]);
    double ms = qt.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s\n", i + 1, result.message().c_str());
      continue;
    }
    const auto& stats = solver.last_stats();
    std::printf("Q%-4zu %12zu %12.2f %10llu %12llu\n", i + 1, result.value().rows.size(),
                ms, static_cast<unsigned long long>(stats.num_regions),
                static_cast<unsigned long long>(stats.cr_candidate_vertices));
  }
  return 0;
}
