// sparql_server: serves SPARQL over HTTP from one shared QueryEngine — the
// README's "Serving SPARQL over HTTP" quickstart binary.
//
//   sparql_server --lubm 1 --port 8080
//   curl 'http://127.0.0.1:8080/sparql?query=SELECT+?x+WHERE+{...}'
//   curl 'http://127.0.0.1:8080/stats'
//
// Data loading mirrors sparql_shell (--nt / --ttl / --snap / --lubm, with
// --engine / --threads / --no-inference); serving knobs are --port (0 picks
// a free port, printed on stderr), --workers, --queue-depth,
// --default-timeout-ms, --max-row-budget, --plan-cache. The engine is
// wrapped in a LiveStore, so POST /update (INSERT DATA / DELETE DATA) works
// out of the box and query responses carry X-Epoch; --compact-threshold N
// enables background compaction once the delta reaches N entries. Runs
// until SIGINT / SIGTERM, then drains and exits cleanly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/graph_snapshot.hpp"
#include "rdf/loader.hpp"
#include "rdf/reasoner.hpp"
#include "rdf/snapshot.hpp"
#include "server/sparql_server.hpp"
#include "sparql/query_engine.hpp"
#include "store/live_store.hpp"
#include "util/common.hpp"
#include "workload/lubm.hpp"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace turbo;
  std::string nt_path, ttl_path, snap_path, engine_name = "turbo",
                                            storage_name = "plain";
  uint32_t lubm = 0, threads = 1, load_threads = 0;
  size_t compact_threshold = 0;
  bool direct = false, inference = true;
  server::ServerConfig server_config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--nt") nt_path = next();
    else if (arg == "--ttl") ttl_path = next();
    else if (arg == "--snap") snap_path = next();
    else if (arg == "--lubm") lubm = std::atoi(next());
    else if (arg == "--engine") engine_name = next();
    else if (arg == "--storage") storage_name = next();
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--load-threads") load_threads = std::atoi(next());
    else if (arg == "--no-inference") inference = false;
    else if (arg == "--direct") direct = true;
    else if (arg == "--port") server_config.port = static_cast<uint16_t>(std::atoi(next()));
    else if (arg == "--workers") server_config.workers = std::atoi(next());
    else if (arg == "--queue-depth") server_config.queue_depth = std::atoi(next());
    else if (arg == "--plan-cache") server_config.plan_cache_capacity = std::strtoull(next(), nullptr, 10);
    else if (arg == "--default-timeout-ms")
      server_config.default_timeout_ms = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-row-budget")
      server_config.max_row_budget = std::strtoull(next(), nullptr, 10);
    else if (arg == "--compact-threshold")
      compact_threshold = std::strtoull(next(), nullptr, 10);
    else return Fail("unknown argument '" + arg + "'");
  }
  if (nt_path.empty() && ttl_path.empty() && snap_path.empty() && lubm == 0)
    return Fail("need one of --nt <file>, --ttl <file>, --snap <file>, --lubm <N>");

  rdf::Dataset ds;
  std::vector<rdf::SnapshotSection> snap_extras;
  if (!snap_path.empty()) {
    auto loaded = rdf::LoadSnapshotFile(snap_path, load_threads, &snap_extras);
    if (!loaded.ok()) return Fail(loaded.message());
    ds = loaded.take();
    inference = false;  // snapshots carry their closure
  } else if (!nt_path.empty() || !ttl_path.empty()) {
    rdf::LoadOptions load_opts;
    load_opts.threads = load_threads;
    auto loaded = nt_path.empty() ? rdf::LoadTurtleFile(ttl_path, load_opts)
                                  : rdf::LoadNTriplesFile(nt_path, load_opts);
    if (!loaded.ok()) return Fail(loaded.message());
    ds = std::move(loaded.value().dataset);
  } else {
    workload::LubmConfig cfg;
    cfg.num_universities = lubm;
    ds = workload::GenerateLubm(cfg);
  }
  if (inference) {
    auto opts = lubm > 0 ? workload::LubmReasonerOptions(&ds.dict())
                         : rdf::ReasonerOptions{};
    rdf::MaterializeInference(&ds, opts);
    // Inference appended terms in discovery order; re-rank so the served
    // engine gets the frequency-split layout (same as a bulk load).
    if (lubm > 0) rdf::RerankDatasetByFrequency(&ds);
  }
  std::fprintf(stderr, "loaded %zu triples\n", ds.size());

  sparql::QueryEngine::Config config;
  if (engine_name == "turbo") {
    config.solver = direct ? sparql::QueryEngine::SolverKind::kTurboDirect
                           : sparql::QueryEngine::SolverKind::kTurbo;
    config.engine_options.num_threads = threads;
  } else if (engine_name == "sortmerge") {
    config.solver = sparql::QueryEngine::SolverKind::kSortMerge;
  } else if (engine_name == "indexjoin") {
    config.solver = sparql::QueryEngine::SolverKind::kIndexJoin;
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }
  if (storage_name == "compressed") config.storage = graph::StorageMode::kCompressed;
  else if (storage_name != "plain")
    return Fail("unknown storage '" + storage_name + "' (plain|compressed)");

  // Adopt a matching "GRPH" snapshot section so compressed graphs reload
  // without re-encoding (mismatches rebuild from the dataset).
  std::unique_ptr<graph::DataGraph> prebuilt;
  for (rdf::SnapshotSection& s : snap_extras) {
    if (s.tag != graph::kGraphSectionTag) continue;
    auto g = graph::DeserializeDataGraph(s.payload);
    if (g.ok())
      prebuilt = std::make_unique<graph::DataGraph>(g.take());
    else
      std::fprintf(stderr, "warning: ignoring snapshot graph section: %s\n",
                   g.message().c_str());
  }
  snap_extras.clear();

  store::LiveStore::Config store_config;
  store_config.engine = config;
  store_config.compact_threshold = compact_threshold;
  store::LiveStore live(std::move(ds), store_config, std::move(prebuilt));

  server::SparqlServer srv(&live, server_config);
  if (auto st = srv.Start(); !st.ok()) return Fail(st.message());
  std::fprintf(stderr,
               "serving on http://127.0.0.1:%u/sparql (%d workers; POST /update "
               "enabled%s)\n",
               srv.port(), server_config.workers,
               compact_threshold
                   ? (", compaction at " + std::to_string(compact_threshold)).c_str()
                   : "");

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (!g_stop) sigsuspend(&mask);  // sleep until a signal arrives

  std::fprintf(stderr, "shutting down\n");
  srv.Stop();
  server::ServerStats stats = srv.stats();
  store::LiveStore::Stats ls = live.stats();
  std::fprintf(stderr,
               "served %llu requests (%llu overload rejections, %llu bad, "
               "plan cache %llu/%llu hit/miss, %llu updates -> epoch %llu, "
               "%llu compactions)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.rejected_overload),
               static_cast<unsigned long long>(stats.bad_requests),
               static_cast<unsigned long long>(stats.plan_cache_hits),
               static_cast<unsigned long long>(stats.plan_cache_misses),
               static_cast<unsigned long long>(stats.updates),
               static_cast<unsigned long long>(ls.epoch),
               static_cast<unsigned long long>(ls.compactions));
  return 0;
}
