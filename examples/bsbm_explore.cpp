// BSBM explore example: the general SPARQL features of Section 5.1 —
// OPTIONAL (nullify-and-keep-searching semantics), FILTER (numeric, join
// conditions, regex) and UNION — on the e-commerce workload.
//
//   $ ./examples/bsbm_explore
#include <cstdio>

#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "workload/bsbm.hpp"

using namespace turbo;

namespace {

void Show(const sparql::Executor& ex, const rdf::Dictionary& dict, const char* title,
          const std::string& query, size_t max_rows = 5) {
  std::printf("\n-- %s --\n", title);
  auto r = ex.Execute(query);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.message().c_str());
    return;
  }
  std::printf("%zu rows\n", r.value().rows.size());
  for (size_t i = 0; i < r.value().rows.size() && i < max_rows; ++i)
    std::printf("  %s\n", sparql::FormatRow(r.value(), i, dict).c_str());
}

}  // namespace

int main() {
  workload::BsbmConfig cfg;
  cfg.num_products = 1000;
  rdf::Dataset ds = workload::GenerateBsbmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  sparql::TurboBgpSolver solver(g, ds.dict());
  sparql::Executor ex(&solver);
  std::printf("BSBM-like dataset: %zu triples\n", ds.size());

  const std::string pfx = std::string("PREFIX bsbm: <") + workload::kBsbmPrefix +
                          "> PREFIX inst: <" + workload::kBsbmInst +
                          "> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> ";

  // OPTIONAL: offers may or may not exist for a product.
  Show(ex, ds.dict(), "OPTIONAL (paper Figure 12 pattern)",
       pfx +
           "SELECT ?price ?rating WHERE { inst:Product1 rdfs:label ?label . "
           "OPTIONAL { ?offer bsbm:product inst:Product1 . ?offer bsbm:price ?price . } "
           "OPTIONAL { ?review bsbm:reviewFor inst:Product1 . ?review bsbm:rating1 ?rating . } }");

  // FILTER with a join condition (paper Figure 13 pattern).
  Show(ex, ds.dict(), "FILTER join condition (products rated above Product1)",
       pfx +
           "SELECT DISTINCT ?product WHERE { "
           "?r1 bsbm:reviewFor inst:Product1 . ?r1 bsbm:rating1 ?v1 . "
           "?r2 bsbm:reviewFor ?product . ?r2 bsbm:rating1 ?v2 . FILTER(?v2 > ?v1) } LIMIT 50");

  // UNION (paper Figure 14 pattern).
  Show(ex, ds.dict(), "UNION (feature1 or feature2)",
       pfx +
           "SELECT ?product WHERE { "
           "{ ?product a bsbm:Product . ?product bsbm:productFeature inst:ProductFeature1 . } "
           "UNION "
           "{ ?product a bsbm:Product . ?product bsbm:productFeature inst:ProductFeature2 . } }");

  // Regex FILTER (the expensive BSBM Q6 shape).
  Show(ex, ds.dict(), "regex FILTER",
       pfx +
           "SELECT ?product ?label WHERE { ?product rdfs:label ?label . "
           "?product a bsbm:Product . FILTER(regex(?label, \"golden.*violet\")) }");
  return 0;
}
