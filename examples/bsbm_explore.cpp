// BSBM explore example: the general SPARQL features of Section 5.1 —
// OPTIONAL (nullify-and-keep-searching semantics), FILTER (numeric, join
// conditions, regex) and UNION — on the e-commerce workload, driven through
// the QueryEngine streaming API. The per-query row cap is a cursor budget
// (ExecOptions::limit_budget), so display truncation also stops the
// underlying enumeration.
//
//   $ ./examples/bsbm_explore
#include <cstdio>

#include "sparql/query_engine.hpp"
#include "workload/bsbm.hpp"

using namespace turbo;

namespace {

void Show(const sparql::QueryEngine& engine, const char* title,
          const std::string& query, uint64_t max_rows = 5) {
  std::printf("\n-- %s --\n", title);
  auto prepared = engine.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.message().c_str());
    return;
  }
  // First pass: count everything (materializing nothing on our side).
  auto all = engine.Open(prepared.value());
  size_t total = 0;
  sparql::Row row;
  if (all.ok())
    while (all.value().Next(&row)) ++total;
  std::printf("%zu rows\n", total);
  // Second pass: stream only the rows we display — the budget pushes the
  // stop down into the matcher.
  sparql::ExecOptions opts;
  opts.limit_budget = max_rows;
  auto cursor = engine.Open(prepared.value(), opts);
  if (!cursor.ok()) {
    std::fprintf(stderr, "error: %s\n", cursor.message().c_str());
    return;
  }
  while (cursor.value().Next(&row))
    std::printf("  %s\n",
                sparql::FormatRow(cursor.value().var_names(), row, engine.dict()).c_str());
}

}  // namespace

int main() {
  workload::BsbmConfig cfg;
  cfg.num_products = 1000;
  rdf::Dataset ds = workload::GenerateBsbmClosed(cfg);
  size_t num_triples = ds.size();
  sparql::QueryEngine engine(std::move(ds));
  std::printf("BSBM-like dataset: %zu triples\n", num_triples);

  const std::string pfx = std::string("PREFIX bsbm: <") + workload::kBsbmPrefix +
                          "> PREFIX inst: <" + workload::kBsbmInst +
                          "> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> ";

  // OPTIONAL: offers may or may not exist for a product.
  Show(engine, "OPTIONAL (paper Figure 12 pattern)",
       pfx +
           "SELECT ?price ?rating WHERE { inst:Product1 rdfs:label ?label . "
           "OPTIONAL { ?offer bsbm:product inst:Product1 . ?offer bsbm:price ?price . } "
           "OPTIONAL { ?review bsbm:reviewFor inst:Product1 . ?review bsbm:rating1 ?rating . } }");

  // FILTER with a join condition (paper Figure 13 pattern).
  Show(engine, "FILTER join condition (products rated above Product1)",
       pfx +
           "SELECT DISTINCT ?product WHERE { "
           "?r1 bsbm:reviewFor inst:Product1 . ?r1 bsbm:rating1 ?v1 . "
           "?r2 bsbm:reviewFor ?product . ?r2 bsbm:rating1 ?v2 . FILTER(?v2 > ?v1) } LIMIT 50");

  // UNION (paper Figure 14 pattern).
  Show(engine, "UNION (feature1 or feature2)",
       pfx +
           "SELECT ?product WHERE { "
           "{ ?product a bsbm:Product . ?product bsbm:productFeature inst:ProductFeature1 . } "
           "UNION "
           "{ ?product a bsbm:Product . ?product bsbm:productFeature inst:ProductFeature2 . } }");

  // Regex FILTER (the expensive BSBM Q6 shape).
  Show(engine, "regex FILTER",
       pfx +
           "SELECT ?product ?label WHERE { ?product rdfs:label ?label . "
           "?product a bsbm:Product . FILTER(regex(?label, \"golden.*violet\")) }");
  return 0;
}
