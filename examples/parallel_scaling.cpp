// Parallel scaling example: the Section 5.2 execution model — starting data
// vertices handed to worker threads in dynamic chunks — demonstrated on the
// most demanding LUBM query (Q9).
//
//   $ ./examples/parallel_scaling [num_universities] [max_threads]
#include <cstdio>
#include <cstdlib>

#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main(int argc, char** argv) {
  workload::LubmConfig cfg;
  cfg.num_universities = argc > 1 ? std::atoi(argv[1]) : 8;
  uint32_t max_threads = argc > 2 ? std::atoi(argv[2]) : 16;

  std::printf("generating LUBM(%u)...\n", cfg.num_universities);
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  std::string q9 = workload::LubmQueries()[8];

  std::printf("%8s %12s %12s %10s\n", "threads", "time[ms]", "speed-up", "solutions");
  double base = 0;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    engine::MatchOptions opts;
    opts.num_threads = threads;
    opts.chunk_size = 16;  // small dynamic chunks keep skewed regions balanced
    sparql::TurboBgpSolver solver(g, ds.dict(), opts);
    sparql::Executor ex(&solver);
    // Warm-up, then measure.
    (void)ex.Execute(q9);
    util::WallTimer t;
    auto r = ex.Execute(q9);
    double ms = t.ElapsedMillis();
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.message().c_str());
      return 1;
    }
    if (threads == 1) base = ms;
    std::printf("%8u %12.2f %11.2fx %10zu\n", threads, ms, base / ms,
                r.value().rows.size());
  }
  return 0;
}
