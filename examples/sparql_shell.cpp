// sparql_shell: command-line SPARQL processor over the streaming query API —
// the kind of front-end a downstream user would drive the library with. The
// QueryEngine facade owns the dataset and the chosen solver; every query
// runs through Prepare + Open and streams rows from a Cursor as they clear
// the solution modifiers, with optional per-query budgets.
//
//   # load N-Triples through the parallel ingestion pipeline, run one query:
//   $ ./examples/sparql_shell --nt data.nt 'SELECT ?s WHERE { ?s ?p ?o . }'
//   # generate LUBM(2), REPL on stdin:
//   $ ./examples/sparql_shell --lubm 2
//   # save / reuse a binary snapshot (skips parsing + inference):
//   $ ./examples/sparql_shell --lubm 2 --save lubm2.snap
//   $ ./examples/sparql_shell --snap lubm2.snap 'SELECT ...'
// Options: --direct (direct transformation), --engine turbo|sortmerge|indexjoin,
//          --storage plain|compressed (adjacency layout: plain CSR arrays or
//          delta + group-varint packed streams; snapshots saved from a
//          compressed engine embed the encoded graph, so --snap reloads it
//          without re-encoding),
//          --threads N (query parallelism), --load-threads N (ingestion
//          parallelism, 0 = all cores), --skip-bad-lines (tolerate malformed
//          N-Triples lines), --no-inference, --max-rows N (server-style
//          delivery cap), --timeout-ms N (per-query deadline), --explain,
//          --stream[=capacity] (constant-memory streaming delivery over a
//          bounded channel; default capacity 64)
//          (print the executed operator tree with per-operator row counts).
//
// Live updates: the engine is wrapped in a LiveStore, so data is mutable
// without reloading. `--update 'INSERT DATA { ... }'` applies a batch before
// the query/REPL starts; in the REPL, lines whose first keyword is INSERT or
// DELETE are routed to SPARQL Update (reporting the new epoch and delta
// size), and `compact` folds the delta into a fresh base engine.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/graph_snapshot.hpp"
#include "rdf/loader.hpp"
#include "rdf/reasoner.hpp"
#include "rdf/snapshot.hpp"
#include "sparql/query_engine.hpp"
#include "store/live_store.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

struct QueryLimits {
  uint64_t max_rows = sparql::kNoBudget;
  int64_t timeout_ms = -1;
  bool explain = false;
  /// 0 = materialized; otherwise stream rows through a bounded channel of
  /// this capacity (constant-memory delivery, first rows print while the
  /// enumeration is still running).
  uint32_t stream_capacity = 0;
};

void RunQuery(const store::LiveStore& store, const QueryLimits& limits,
              const std::string& query) {
  util::WallTimer t;
  auto prepared = store.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "error: %s\n", prepared.message().c_str());
    return;
  }
  sparql::ExecOptions opts;
  opts.limit_budget = limits.max_rows;
  if (limits.stream_capacity > 0) {
    opts.streaming = true;
    opts.channel_capacity = limits.stream_capacity;
  }
  if (limits.timeout_ms >= 0)
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(limits.timeout_ms);
  // Pin the epoch explicitly so row formatting reads the same dictionary the
  // cursor executes over, even if an update lands mid-stream.
  std::shared_ptr<const store::LiveStore::Snapshot> snap = store.snapshot();
  auto cursor = store::LiveStore::OpenAt(snap, prepared.value(), opts);
  if (!cursor.ok()) {
    std::fprintf(stderr, "error: %s\n", cursor.message().c_str());
    return;
  }
  size_t rows = 0;
  sparql::Row row;
  while (cursor.value().Next(&row)) {
    std::printf("%s\n", sparql::FormatRow(cursor.value().var_names(), row, snap->dict(),
                                          cursor.value().local_vocab().get())
                            .c_str());
    ++rows;
  }
  if (!cursor.value().status().ok()) {
    // A deadline / cancel trip surfaces here: name the cause so a scripted
    // caller can tell "--timeout-ms fired" from a genuine solver failure.
    std::fprintf(stderr, "error: %s (stop cause: %s; %zu rows delivered)\n",
                 cursor.value().status().message().c_str(),
                 sparql::ToString(cursor.value().stop_cause()), rows);
    return;
  }
  std::printf("-- %zu rows in %.2f ms\n", rows, t.ElapsedMillis());
  if (cursor.value().stop_cause() != sparql::StopCause::kNone)
    // Ok status but a tripped budget: the stream ended early, not at the
    // natural end of results — say so instead of passing off as complete.
    std::fprintf(stderr, "-- stopped early (%s): results above are partial\n",
                 sparql::ToString(cursor.value().stop_cause()));
  if (limits.explain)
    std::fprintf(stderr, "-- plan (per-operator rows):\n%s",
                 cursor.value().Explain().c_str());
}

void RunUpdate(store::LiveStore& store, const std::string& text) {
  util::WallTimer t;
  auto result = store.Update(text);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.message().c_str());
    return;
  }
  const store::LiveStore::UpdateResult& r = result.value();
  std::printf("-- update ok: epoch %llu, +%zu inserted, -%zu deleted "
              "(delta: %zu adds, %zu tombstones) in %.2f ms\n",
              static_cast<unsigned long long>(r.epoch), r.inserted, r.deleted,
              r.delta_adds, r.tombstones, t.ElapsedMillis());
}

void RunCompact(store::LiveStore& store) {
  util::WallTimer t;
  if (auto st = store.Compact(); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return;
  }
  store::LiveStore::Stats s = store.stats();
  std::printf("-- compacted: epoch %llu, base %zu triples in %.2f ms\n",
              static_cast<unsigned long long>(s.epoch), s.base_triples,
              t.ElapsedMillis());
}

/// The first SELECT / INSERT / DELETE keyword decides query vs update (PREFIX
/// declarations may precede either).
bool LooksLikeUpdate(const std::string& text) {
  std::string upper(text);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  size_t select = upper.find("SELECT");
  size_t insert = upper.find("INSERT");
  size_t del = upper.find("DELETE");
  size_t update = std::min(insert, del);
  return update != std::string::npos && update < select;
}

}  // namespace

int main(int argc, char** argv) {
  std::string nt_path, ttl_path, snap_path, save_path, engine_name = "turbo",
                                                       storage_name = "plain", query;
  std::vector<std::string> updates;
  uint32_t lubm = 0, threads = 1, load_threads = 0;
  bool direct = false, inference = true, skip_bad = false;
  QueryLimits limits;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--nt") nt_path = next();
    else if (arg == "--ttl") ttl_path = next();
    else if (arg == "--snap") snap_path = next();
    else if (arg == "--save") save_path = next();
    else if (arg == "--lubm") lubm = std::atoi(next());
    else if (arg == "--engine") engine_name = next();
    else if (arg == "--storage") storage_name = next();
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--load-threads") load_threads = std::atoi(next());
    else if (arg == "--update") updates.emplace_back(next());
    else if (arg == "--max-rows") limits.max_rows = std::strtoull(next(), nullptr, 10);
    else if (arg == "--timeout-ms") limits.timeout_ms = std::atoll(next());
    else if (arg == "--explain") limits.explain = true;
    else if (arg == "--stream") limits.stream_capacity = 64;
    else if (arg.rfind("--stream=", 0) == 0)
      limits.stream_capacity =
          std::max(1u, static_cast<uint32_t>(std::atoi(arg.c_str() + 9)));
    else if (arg == "--direct") direct = true;
    else if (arg == "--skip-bad-lines") skip_bad = true;
    else if (arg == "--no-inference") inference = false;
    else query = arg;
  }
  if (nt_path.empty() && ttl_path.empty() && snap_path.empty() && lubm == 0)
    return Fail("need one of --nt <file>, --ttl <file>, --snap <file>, --lubm <N>");

  // ---- Load. ----
  util::WallTimer t;
  rdf::Dataset ds;
  std::vector<rdf::SnapshotSection> snap_extras;
  if (!snap_path.empty()) {
    auto loaded = rdf::LoadSnapshotFile(snap_path, load_threads, &snap_extras);
    if (!loaded.ok()) return Fail(loaded.message());
    ds = loaded.take();
    inference = false;  // snapshots carry their closure
  } else if (!nt_path.empty() || !ttl_path.empty()) {
    rdf::LoadOptions load_opts;
    load_opts.threads = load_threads;
    if (skip_bad) load_opts.on_error = rdf::LoadOptions::OnError::kSkip;
    // The explicit flag decides the format; extension-based LoadRdfFile is
    // for callers without one.
    auto loaded = nt_path.empty() ? rdf::LoadTurtleFile(ttl_path, load_opts)
                                  : rdf::LoadNTriplesFile(nt_path, load_opts);
    if (!loaded.ok()) return Fail(loaded.message());
    const rdf::LoadStats& ls = loaded.value().stats;
    std::fprintf(stderr,
                 "pipeline: %llu chunks x %u threads, parse %.0f ms, merge %.0f ms, "
                 "remap %.0f ms%s\n",
                 static_cast<unsigned long long>(ls.chunks), ls.threads, ls.parse_ms,
                 ls.merge_ms, ls.remap_ms,
                 ls.skipped_lines
                     ? (" (" + std::to_string(ls.skipped_lines) + " bad lines skipped)")
                           .c_str()
                     : "");
    ds = std::move(loaded.value().dataset);
  } else {
    workload::LubmConfig cfg;
    cfg.num_universities = lubm;
    ds = workload::GenerateLubm(cfg);
  }
  if (inference) {
    auto opts = lubm > 0 ? workload::LubmReasonerOptions(&ds.dict())
                         : rdf::ReasonerOptions{};
    rdf::MaterializeInference(&ds, opts);
    // Generated / incrementally-built datasets carry arrival-order ids;
    // fold them into the frequency-split layout before the engine build
    // (bulk loads and snapshots already arrive ranked).
    if (lubm > 0) rdf::RerankDatasetByFrequency(&ds);
  }
  std::fprintf(stderr, "loaded %zu triples (%.1fs)\n", ds.size(), t.ElapsedSeconds());

  // ---- Build the requested engine behind the facade. ----
  t.Reset();
  sparql::QueryEngine::Config config;
  if (engine_name == "turbo") {
    config.solver = direct ? sparql::QueryEngine::SolverKind::kTurboDirect
                           : sparql::QueryEngine::SolverKind::kTurbo;
    config.engine_options.num_threads = threads;
  } else if (engine_name == "sortmerge") {
    config.solver = sparql::QueryEngine::SolverKind::kSortMerge;
  } else if (engine_name == "indexjoin") {
    config.solver = sparql::QueryEngine::SolverKind::kIndexJoin;
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }
  if (storage_name == "compressed") config.storage = graph::StorageMode::kCompressed;
  else if (storage_name != "plain")
    return Fail("unknown storage '" + storage_name + "' (plain|compressed)");

  // A "GRPH" snapshot section carrying a graph that matches the requested
  // transform + storage is adopted directly — compressed graphs reload
  // without re-running the encoder. Mismatches just rebuild.
  std::unique_ptr<graph::DataGraph> prebuilt;
  for (rdf::SnapshotSection& s : snap_extras) {
    if (s.tag != graph::kGraphSectionTag) continue;
    auto g = graph::DeserializeDataGraph(s.payload);
    if (g.ok())
      prebuilt = std::make_unique<graph::DataGraph>(g.take());
    else
      std::fprintf(stderr, "warning: ignoring snapshot graph section: %s\n",
                   g.message().c_str());
  }
  snap_extras.clear();

  store::LiveStore::Config store_config;
  store_config.engine = config;
  store::LiveStore store(std::move(ds), store_config, std::move(prebuilt));
  std::fprintf(stderr, "engine '%s' ready (%.1fs)\n", engine_name.c_str(),
               t.ElapsedSeconds());

  std::shared_ptr<const store::LiveStore::Snapshot> epoch0 = store.snapshot();
  if (const graph::DataGraph* g = epoch0->engine->data_graph()) {
    graph::DataGraph::MemoryBreakdown m = g->MemoryUsage();
    std::fprintf(stderr,
                 "graph memory (%s): total %.1f MiB | adjacency %.1f MiB "
                 "(groups %.1f, neighbors %.1f, compressed %.1f, skips %.1f) | "
                 "signatures %.1f MiB | labels %.1f MiB | predicate index %.1f MiB | "
                 "terms %.1f MiB\n",
                 g->compressed() ? "compressed" : "plain", m.total() / 1048576.0,
                 m.adjacency_total() / 1048576.0, m.adjacency_groups / 1048576.0,
                 m.adjacency_neighbors / 1048576.0, m.adjacency_compressed / 1048576.0,
                 m.skip_tables / 1048576.0, m.signatures / 1048576.0,
                 (m.vertex_labels + m.inverse_label_index) / 1048576.0,
                 m.predicate_index / 1048576.0, (m.term_maps + m.schema) / 1048576.0);
  }
  {
    rdf::Dictionary::LayoutStats d = epoch0->engine->dict().layout_stats();
    std::fprintf(stderr,
                 "dictionary: %zu terms | hot band %zu | index %.1f MiB | "
                 "shard fill %.2f-%.2f (avg %.2f) | hot-cache hits %llu/%llu\n",
                 d.terms, d.hot_band, d.index_bytes / 1048576.0, d.shard_load_min,
                 d.shard_load_max, d.shard_load_avg,
                 static_cast<unsigned long long>(d.hot_hits),
                 static_cast<unsigned long long>(d.hot_probes));
  }

  if (!save_path.empty()) {
    // Saved after the engine build so the snapshot can embed the finished
    // graph: reloading skips classification, sorting, and (in compressed
    // mode) the varint encoder.
    std::vector<rdf::SnapshotSection> extras;
    if (const graph::DataGraph* g = epoch0->engine->data_graph()) {
      std::string payload;
      graph::SerializeDataGraph(*g, &payload);
      extras.push_back({graph::kGraphSectionTag, std::move(payload)});
    }
    auto st =
        rdf::SaveSnapshotFile(*epoch0->engine->dataset(), save_path, extras);
    if (!st.ok()) return Fail(st.message());
    std::fprintf(stderr, "snapshot written to %s\n", save_path.c_str());
  }
  epoch0.reset();

  for (const std::string& update : updates) RunUpdate(store, update);

  if (!query.empty()) {
    if (LooksLikeUpdate(query)) RunUpdate(store, query);
    else RunQuery(store, limits, query);
    return 0;
  }
  // REPL: one query or update per line (';' continues are not needed —
  // statements are single-line); `compact` folds the delta; EOF exits.
  std::string line;
  std::fprintf(stderr, "sparql> ");
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "compact") RunCompact(store);
    else if (!line.empty() && LooksLikeUpdate(line)) RunUpdate(store, line);
    else if (!line.empty()) RunQuery(store, limits, line);
    std::fprintf(stderr, "sparql> ");
  }
  return 0;
}
