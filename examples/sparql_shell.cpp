// sparql_shell: command-line SPARQL processor over TurboHOM++ — the kind of
// front-end a downstream user would drive the library with.
//
//   # load N-Triples, run one query:
//   $ ./examples/sparql_shell --nt data.nt 'SELECT ?s WHERE { ?s ?p ?o . }'
//   # generate LUBM(2), REPL on stdin:
//   $ ./examples/sparql_shell --lubm 2
//   # save / reuse a binary snapshot (skips parsing + inference):
//   $ ./examples/sparql_shell --lubm 2 --save lubm2.snap
//   $ ./examples/sparql_shell --snap lubm2.snap 'SELECT ...'
// Options: --direct (direct transformation), --engine turbo|sortmerge|indexjoin,
//          --threads N, --no-inference.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baseline/solvers.hpp"
#include "graph/data_graph.hpp"
#include "rdf/ntriples.hpp"
#include "rdf/reasoner.hpp"
#include "rdf/snapshot.hpp"
#include "rdf/turtle.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

void RunQuery(const sparql::Executor& ex, const rdf::Dictionary& dict,
              const std::string& query) {
  util::WallTimer t;
  auto r = ex.Execute(query);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.message().c_str());
    return;
  }
  for (size_t i = 0; i < r.value().rows.size(); ++i)
    std::printf("%s\n", sparql::FormatRow(r.value(), i, dict).c_str());
  std::printf("-- %zu rows in %.2f ms\n", r.value().rows.size(), t.ElapsedMillis());
}

}  // namespace

int main(int argc, char** argv) {
  std::string nt_path, ttl_path, snap_path, save_path, engine_name = "turbo", query;
  uint32_t lubm = 0, threads = 1;
  bool direct = false, inference = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--nt") nt_path = next();
    else if (arg == "--ttl") ttl_path = next();
    else if (arg == "--snap") snap_path = next();
    else if (arg == "--save") save_path = next();
    else if (arg == "--lubm") lubm = std::atoi(next());
    else if (arg == "--engine") engine_name = next();
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--direct") direct = true;
    else if (arg == "--no-inference") inference = false;
    else query = arg;
  }
  if (nt_path.empty() && ttl_path.empty() && snap_path.empty() && lubm == 0)
    return Fail("need one of --nt <file>, --ttl <file>, --snap <file>, --lubm <N>");

  // ---- Load. ----
  util::WallTimer t;
  rdf::Dataset ds;
  if (!snap_path.empty()) {
    auto loaded = rdf::LoadSnapshotFile(snap_path);
    if (!loaded.ok()) return Fail(loaded.message());
    ds = loaded.take();
    inference = false;  // snapshots carry their closure
  } else if (!nt_path.empty()) {
    std::ifstream in(nt_path);
    if (!in) return Fail("cannot open " + nt_path);
    auto st = rdf::ParseNTriples(in, &ds);
    if (!st.ok()) return Fail(st.message());
  } else if (!ttl_path.empty()) {
    std::ifstream in(ttl_path);
    if (!in) return Fail("cannot open " + ttl_path);
    auto st = rdf::ParseTurtle(in, &ds);
    if (!st.ok()) return Fail(st.message());
  } else {
    workload::LubmConfig cfg;
    cfg.num_universities = lubm;
    ds = workload::GenerateLubm(cfg);
  }
  if (inference) {
    auto opts = lubm > 0 ? workload::LubmReasonerOptions(&ds.dict())
                         : rdf::ReasonerOptions{};
    rdf::MaterializeInference(&ds, opts);
  }
  std::fprintf(stderr, "loaded %zu triples (%.1fs)\n", ds.size(), t.ElapsedSeconds());
  if (!save_path.empty()) {
    auto st = rdf::SaveSnapshotFile(ds, save_path);
    if (!st.ok()) return Fail(st.message());
    std::fprintf(stderr, "snapshot written to %s\n", save_path.c_str());
  }

  // ---- Build the requested engine. ----
  t.Reset();
  std::unique_ptr<graph::DataGraph> g;
  std::unique_ptr<baseline::TripleIndex> index;
  std::unique_ptr<sparql::BgpSolver> solver;
  if (engine_name == "turbo") {
    g = std::make_unique<graph::DataGraph>(graph::DataGraph::Build(
        ds, direct ? graph::TransformMode::kDirect : graph::TransformMode::kTypeAware));
    engine::MatchOptions opts;
    opts.num_threads = threads;
    solver = std::make_unique<sparql::TurboBgpSolver>(*g, ds.dict(), opts);
  } else if (engine_name == "sortmerge" || engine_name == "indexjoin") {
    index = std::make_unique<baseline::TripleIndex>(ds);
    if (engine_name == "sortmerge")
      solver = std::make_unique<baseline::SortMergeBgpSolver>(*index, ds.dict());
    else
      solver = std::make_unique<baseline::IndexJoinBgpSolver>(*index, ds.dict());
  } else {
    return Fail("unknown engine '" + engine_name + "'");
  }
  std::fprintf(stderr, "engine '%s' ready (%.1fs)\n", engine_name.c_str(),
               t.ElapsedSeconds());

  sparql::Executor ex(solver.get());
  if (!query.empty()) {
    RunQuery(ex, ds.dict(), query);
    return 0;
  }
  // REPL: one query per line (';' continues are not needed — queries are
  // single-line); EOF exits.
  std::string line;
  std::fprintf(stderr, "sparql> ");
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line != "quit" && line != "exit") RunQuery(ex, ds.dict(), line);
    if (line == "quit" || line == "exit") break;
    std::fprintf(stderr, "sparql> ");
  }
  return 0;
}
