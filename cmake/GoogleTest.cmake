# Locate GoogleTest: prefer an installed package, then the Debian-style
# source tree under /usr/src/googletest, and only then FetchContent (needs
# network). All three paths yield the GTest::gtest / GTest::gtest_main
# targets the test CMakeLists link against.
include_guard(GLOBAL)

find_package(GTest QUIET)
if(GTest_FOUND AND NOT TARGET GTest::gtest_main AND TARGET GTest::Main)
  # Module-mode FindGTest before CMake 3.20 only defines GTest::GTest /
  # GTest::Main; bridge them to the modern names.
  add_library(GTest::gtest INTERFACE IMPORTED)
  set_target_properties(GTest::gtest PROPERTIES INTERFACE_LINK_LIBRARIES GTest::GTest)
  add_library(GTest::gtest_main INTERFACE IMPORTED)
  set_target_properties(GTest::gtest_main PROPERTIES INTERFACE_LINK_LIBRARIES GTest::Main)
endif()
if(GTest_FOUND AND TARGET GTest::gtest_main)
  message(STATUS "GoogleTest: using installed package")
  return()
endif()

foreach(gtest_src_dir /usr/src/googletest /usr/src/gtest)
  if(EXISTS "${gtest_src_dir}/CMakeLists.txt")
    message(STATUS "GoogleTest: building from ${gtest_src_dir}")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory("${gtest_src_dir}" "${CMAKE_BINARY_DIR}/_gtest" EXCLUDE_FROM_ALL)
    foreach(tgt gtest gtest_main)
      if(TARGET ${tgt} AND NOT TARGET GTest::${tgt})
        add_library(GTest::${tgt} ALIAS ${tgt})
      endif()
    endforeach()
    return()
  endif()
endforeach()

message(STATUS "GoogleTest: fetching v1.14.0 (requires network)")
include(FetchContent)
FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
