// Grouped-analytics benchmark for the operator pipeline: BI-style GROUP BY
// / COUNT / SUM / MIN / MAX / AVG / HAVING queries over LUBM (per-department
// membership counts, per-student course loads) and BSBM (per-vendor price
// statistics, per-product review averages) — the workloads the aggregate
// layer was built for. Each query reports elapsed ms, delivered rows
// (groups), the pre-aggregation enumeration size, and heap allocations via
// alloc_counter.
//
// With BENCH_JSON=<path> the run emits the machine-tagged report consumed
// by bench/compare_results.py; bench/results/aggregates.json is the
// checked-in reference-VM baseline. Rows / groups / pre-aggregation counts
// are machine-independent, so the nightly same-runner gate asserts them
// exactly while ms stays report-only across machines.
//
// Env: LUBM_SCALES (default 1,4), BSBM_PRODUCTS (default 5000), BENCH_REPS,
// BENCH_JSON.
#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "workload/bsbm.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

struct AggQuery {
  const char* name;
  std::string text;
};

constexpr const char* kUb =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> ";

std::vector<AggQuery> LubmAggQueries() {
  return {
      {"dept-grad-count",
       std::string(kUb) +
           "SELECT ?d (COUNT(?x) AS ?n) WHERE { ?x a ub:GraduateStudent . "
           "?x ub:memberOf ?d . } GROUP BY ?d"},
      {"course-load-having-top10",
       std::string(kUb) +
           "SELECT ?x (COUNT(?c) AS ?n) WHERE { ?x a ub:Student . "
           "?x ub:takesCourse ?c . } GROUP BY ?x HAVING(COUNT(?c) > 2) "
           "ORDER BY DESC(?n) LIMIT 10"},
      {"global-count",
       std::string(kUb) +
           "SELECT (COUNT(*) AS ?n) WHERE { ?x a ub:Student . "
           "?x ub:takesCourse ?c . }"},
      {"distinct-courses",
       std::string(kUb) +
           "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?x ub:takesCourse ?c . }"},
  };
}

std::vector<AggQuery> BsbmAggQueries() {
  const std::string prologue = "PREFIX bsbm: <" + std::string(workload::kBsbmPrefix) +
                               "> PREFIX inst: <" + std::string(workload::kBsbmInst) +
                               "> ";
  return {
      {"vendor-price-stats",
       prologue +
           "SELECT ?v (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) (AVG(?p) AS ?avg) WHERE "
           "{ ?o bsbm:vendor ?v . ?o bsbm:price ?p . } GROUP BY ?v ORDER BY ?v"},
      {"product-rating-top10",
       prologue +
           "SELECT ?prod (AVG(?r) AS ?avg) (COUNT(?r) AS ?n) WHERE "
           "{ ?rev bsbm:reviewFor ?prod . ?rev bsbm:rating1 ?r . } GROUP BY ?prod "
           "HAVING(COUNT(?r) > 3) ORDER BY DESC(?avg) LIMIT 10"},
      {"offers-per-product-sum",
       prologue +
           "SELECT ?prod (COUNT(*) AS ?n) (SUM(?p) AS ?total) WHERE "
           "{ ?o bsbm:product ?prod . ?o bsbm:price ?p . } GROUP BY ?prod"},
  };
}

struct Measured {
  double ms = 0;
  size_t rows = 0;           ///< delivered groups
  uint64_t pre_agg = 0;      ///< rows entering the aggregation
  uint64_t allocs = 0;
};

Measured TimeAggQuery(const sparql::QueryEngine& engine, const std::string& query,
                      int reps) {
  Measured result;
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    uint64_t alloc_before = bench::g_alloc_probe ? bench::g_alloc_probe() : 0;
    util::WallTimer t;
    auto cursor = engine.Open(query);
    size_t rows = 0;
    if (cursor.ok()) {
      sparql::Row row;
      while (cursor.value().Next(&row)) ++rows;
    }
    double ms = t.ElapsedMillis();
    const util::Status& st = cursor.ok() ? cursor.value().status() : cursor.status();
    if (!st.ok()) {
      std::fprintf(stderr, "query error: %s\n", st.message().c_str());
      return result;
    }
    if (bench::g_alloc_probe) result.allocs = bench::g_alloc_probe() - alloc_before;
    result.rows = rows;
    result.pre_agg = cursor.value().rows_before_modifiers();
    times.push_back(ms);
    if (ms > 2000 && i == 0) break;
  }
  std::sort(times.begin(), times.end());
  if (times.size() >= 3) {
    double sum = 0;
    for (size_t i = 1; i + 1 < times.size(); ++i) sum += times[i];
    result.ms = sum / (times.size() - 2);
  } else {
    double sum = 0;
    for (double t : times) sum += t;
    result.ms = sum / times.size();
  }
  return result;
}

void RunSet(const std::string& tag, const sparql::QueryEngine& engine,
            const std::vector<AggQuery>& queries, int reps,
            bench::BenchReport* report) {
  bench::PrintHeader(tag + ": grouped aggregate queries");
  bench::PrintRow("query", {"ms", "groups", "pre-agg rows", "allocs"});
  for (const AggQuery& q : queries) {
    Measured m = TimeAggQuery(engine, q.text, reps);
    bench::PrintRow(q.name, {bench::Ms(m.ms), bench::Num(m.rows),
                             bench::Num(m.pre_agg), bench::Num(m.allocs)});
    bench::BenchResult res;
    res.name = tag + "/" + q.name;
    res.metrics["ms"] = m.ms;
    res.metrics["rows"] = static_cast<double>(m.rows);
    res.metrics["pre_agg_rows"] = static_cast<double>(m.pre_agg);
    if (bench::g_alloc_probe) res.metrics["allocs"] = static_cast<double>(m.allocs);
    report->results.push_back(std::move(res));
  }
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {1, 4});
  const int reps = bench::RepsFromEnv();
  if (bench::kAllocCountingEnabled) bench::g_alloc_probe = &bench::AllocCount;

  bench::BenchReport report;
  report.bench = "bench_aggregates";
  report.machine = bench::MachineTag();
  report.config["reps"] = std::to_string(reps);

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());
    sparql::QueryEngine engine(std::move(ds));
    RunSet("LUBM" + std::to_string(n), engine, LubmAggQueries(), reps, &report);
  }

  {
    workload::BsbmConfig cfg;
    if (const char* env = std::getenv("BSBM_PRODUCTS"))
      cfg.num_products = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateBsbmClosed(cfg);
    std::printf("\n[BSBM %u products: %zu triples, prep %.1fs]\n", cfg.num_products,
                ds.size(), prep.ElapsedSeconds());
    sparql::QueryEngine engine(std::move(ds));
    RunSet("BSBM" + std::to_string(cfg.num_products), engine, BsbmAggQueries(), reps,
           &report);
  }

  bench::MaybeWriteJson(report);
  return 0;
}
