// Table 1: graph size statistics — |V| and |E| under the direct vs the
// type-aware transformation for every benchmark dataset. The reproduction
// claim is the shape: the type-aware transformation removes all rdf:type /
// rdfs:subClassOf edges and their type vertices.
#include "bench_common.hpp"
#include "rdf/reasoner.hpp"
#include "workload/bsbm.hpp"
#include "workload/btc.hpp"
#include "workload/lubm.hpp"
#include "workload/yago.hpp"

using namespace turbo;

namespace {

void Report(const std::string& name, const rdf::Dataset& ds) {
  graph::DataGraph direct = graph::DataGraph::Build(ds, graph::TransformMode::kDirect);
  graph::DataGraph aware = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  bench::PrintRow(name, {bench::Num(direct.num_vertices()), bench::Num(direct.num_edges()),
                         bench::Num(aware.num_vertices()), bench::Num(aware.num_edges())});
}

}  // namespace

int main() {
  bench::PrintHeader("Table 1: graph size statistics (direct vs type-aware)");
  bench::PrintRow("dataset", {"|V| direct", "|E| direct", "|V| aware", "|E| aware"});

  for (uint32_t n : bench::ScalesFromEnv("LUBM_SCALES", {2, 8})) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    Report("LUBM" + std::to_string(n), workload::GenerateLubmClosed(cfg));
  }
  Report("YAGO-like", workload::GenerateYago({}));
  Report("BTC-like", workload::GenerateBtc({}));
  Report("BSBM-like", workload::GenerateBsbmClosed({}));
  return 0;
}
