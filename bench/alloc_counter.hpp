// Heap-allocation counting for bench drivers: including this header in a
// benchmark's main TU replaces the global operator new/delete with counting
// wrappers, so TimeQuery can report an "allocs" metric next to "ms" — the
// direct evidence for the RegionArena reuse win. Include it in at most one
// TU per binary, and never in the library or tests.
//
// Disabled under ASan (the sanitizer owns the allocator) — AllocCount()
// then always returns 0 and drivers simply omit the metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define TURBO_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TURBO_BENCH_COUNT_ALLOCS 0
#endif
#endif
#ifndef TURBO_BENCH_COUNT_ALLOCS
#define TURBO_BENCH_COUNT_ALLOCS 1
#endif

namespace turbo::bench {

inline std::atomic<uint64_t> g_alloc_count{0};

/// Number of operator-new calls since process start (0 when counting is
/// compiled out).
inline uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

inline constexpr bool kAllocCountingEnabled = TURBO_BENCH_COUNT_ALLOCS != 0;

}  // namespace turbo::bench

#if TURBO_BENCH_COUNT_ALLOCS

namespace turbo::bench::alloc_detail {
inline void* CountedAlloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace turbo::bench::alloc_detail

void* operator new(std::size_t n) { return turbo::bench::alloc_detail::CountedAlloc(n); }
void* operator new[](std::size_t n) { return turbo::bench::alloc_detail::CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  turbo::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  turbo::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // TURBO_BENCH_COUNT_ALLOCS
