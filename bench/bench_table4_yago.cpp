// Table 4: number of solutions and elapsed time for the eight YAGO queries.
// Expected shape: TurboHOM++ fastest on every query (the paper reports up to
// 25.9x over RDF-3X); the YAGO queries have few type-labeled vertices, so
// the win comes from matching order + optimizations rather than the
// type-aware transformation.
#include "bench_common.hpp"
#include "workload/yago.hpp"

using namespace turbo;

int main() {
  workload::YagoConfig cfg;  // default scale
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateYago(cfg);
  bench::EngineSet engines(ds);
  std::printf("[YAGO-like: %zu triples, prep %.1fs]\n", ds.size(), prep.ElapsedSeconds());

  auto queries = workload::YagoQueries();
  bench::PrintHeader("Table 4: number of solutions and elapsed time in YAGO [ms]");
  std::vector<std::string> header;
  for (int i = 1; i <= 8; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow("", header);

  std::vector<std::string> counts;
  for (const auto& q : queries)
    counts.push_back(bench::Num(bench::TimeQuery(engines.turbo, q, 1).rows));
  bench::PrintRow("# of sol.", counts);

  struct Row {
    const char* name;
    const sparql::BgpSolver* solver;
  } rows[] = {
      {"TurboHOM++", &engines.turbo},
      {"SortMerge(RDF-3X-like)", &engines.sortmerge},
      {"IndexJoin(Sys-X-like)", &engines.indexjoin},
      {"TurboHOM(direct)", &engines.turbo_direct},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& q : queries) cells.push_back(bench::Ms(bench::TimeQuery(*row.solver, q).ms));
    bench::PrintRow(row.name, cells);
  }
  return 0;
}
