// Shared infrastructure for the table/figure harnesses: engine bundles,
// paper-style timing (run 5x, drop best and worst, average the remaining 3 —
// §7.1), and table formatting.
//
// Every harness accepts environment overrides so the suite can be scaled up
// toward the paper's sizes on bigger machines:
//   LUBM_SCALES                comma list of university counts
//   BENCH_REPS                 measurement repetitions (default 5)
//   TURBO_REUSE_REGION_MEMORY  0 disables RegionArena pooling (the "before"
//                              configuration for bench/results/ baselines)
//   BENCH_JSON                 path for the machine-tagged JSON report —
//                              currently emitted by bench_table3_lubm (see
//                              bench_json.hpp / bench/compare_results.py)
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "baseline/solvers.hpp"
#include "baseline/triple_index.hpp"
#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/query_engine.hpp"
#include "sparql/turbo_solver.hpp"
#include "util/timer.hpp"

namespace turbo::bench {

inline std::vector<uint32_t> ScalesFromEnv(const char* name,
                                           std::vector<uint32_t> defaults) {
  const char* env = std::getenv(name);
  if (!env) return defaults;
  std::vector<uint32_t> out;
  std::string s(env);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(static_cast<uint32_t>(std::strtoul(s.substr(pos, comma - pos).c_str(),
                                                     nullptr, 10)));
    pos = comma + 1;
  }
  return out.empty() ? defaults : out;
}

inline int RepsFromEnv() {
  const char* env = std::getenv("BENCH_REPS");
  return env ? std::max(1, atoi(env)) : 5;
}

/// Engine options honouring the bench environment toggles.
inline engine::MatchOptions TurboOptionsFromEnv() {
  engine::MatchOptions opts;
  if (const char* reuse = std::getenv("TURBO_REUSE_REGION_MEMORY")) {
    std::string v(reuse);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (v == "0" || v == "false" || v == "off" || v == "no") {
      opts.reuse_region_memory = false;
    } else if (!(v == "1" || v == "true" || v == "on" || v == "yes" || v.empty())) {
      std::fprintf(stderr,
                   "TURBO_REUSE_REGION_MEMORY=%s not recognized; use 0/1 "
                   "(keeping the default: on)\n",
                   reuse);
    }
  }
  return opts;
}

/// Optional heap-allocation probe. A driver that includes alloc_counter.hpp
/// sets this to AllocCount so TimeQuery can report an "allocs" metric; when
/// unset the metric is omitted.
inline uint64_t (*g_alloc_probe)() = nullptr;

/// Paper methodology: execute `reps` times, drop best and worst, average the
/// rest. Long-running queries (>2 s) are measured once to keep the suite
/// usable. Returns (milliseconds, result rows of the last run).
struct Timed {
  double ms = 0;
  size_t rows = 0;
  uint64_t allocs = 0;  ///< heap allocations in the last (warm) repetition
};

inline Timed TimeQuery(const sparql::QueryEngine& engine, const std::string& query,
                       int reps = RepsFromEnv()) {
  Timed result;
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    uint64_t alloc_before = g_alloc_probe ? g_alloc_probe() : 0;
    util::WallTimer t;
    // Parse + plan + execute per repetition (the historical measurement);
    // the cursor is drained to completion so the work matches Execute.
    auto cursor = engine.Open(query);
    size_t rows = 0;
    if (cursor.ok()) {
      sparql::Row row;
      while (cursor.value().Next(&row)) ++rows;
    }
    double ms = t.ElapsedMillis();
    const util::Status& st = cursor.ok() ? cursor.value().status() : cursor.status();
    if (!st.ok()) {
      std::fprintf(stderr, "query error: %s\n", st.message().c_str());
      return result;
    }
    if (g_alloc_probe) result.allocs = g_alloc_probe() - alloc_before;
    result.rows = rows;
    times.push_back(ms);
    if (ms > 2000 && i == 0) break;  // long query: single measurement
  }
  if (times.size() >= 3) {
    std::sort(times.begin(), times.end());
    double sum = 0;
    for (size_t i = 1; i + 1 < times.size(); ++i) sum += times[i];
    result.ms = sum / (times.size() - 2);
  } else {
    double sum = 0;
    for (double t : times) sum += t;
    result.ms = sum / times.size();
  }
  return result;
}

/// Solver-level convenience: wraps the solver in a (non-owning) QueryEngine
/// so every table driver measures the same streaming cursor path.
inline Timed TimeQuery(const sparql::BgpSolver& solver, const std::string& query,
                       int reps = RepsFromEnv()) {
  return TimeQuery(sparql::QueryEngine(&solver), query, reps);
}

/// All four engines over one dataset (the paper's §7 line-up with the
/// DESIGN.md substitutions). The default options honour the bench env
/// toggles, so TURBO_REUSE_REGION_MEMORY=0 selects the legacy allocation
/// path in every table driver.
struct EngineSet {
  EngineSet(const rdf::Dataset& ds, engine::MatchOptions turbo_opts = TurboOptionsFromEnv())
      : aware(graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware)),
        direct(graph::DataGraph::Build(ds, graph::TransformMode::kDirect)),
        index(ds),
        turbo(aware, ds.dict(), turbo_opts),
        turbo_direct(direct, ds.dict(), turbo_opts),
        sortmerge(index, ds.dict()),
        indexjoin(index, ds.dict()) {}

  graph::DataGraph aware;
  graph::DataGraph direct;
  baseline::TripleIndex index;
  sparql::TurboBgpSolver turbo;         // TurboHOM++ (type-aware)
  sparql::TurboBgpSolver turbo_direct;  // TurboHOM (direct transformation)
  baseline::SortMergeBgpSolver sortmerge;
  baseline::IndexJoinBgpSolver indexjoin;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintRow(const std::string& name, const std::vector<std::string>& cells) {
  std::printf("%-22s", name.c_str());
  for (const auto& c : cells) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

inline std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline std::string Num(uint64_t v) { return std::to_string(v); }

}  // namespace turbo::bench
