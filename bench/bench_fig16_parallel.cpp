// Figure 16: parallel speed-up of TurboHOM++ on LUBM Q2 and Q9 with
// 1/4/8/12/16 threads (dynamic chunks of starting vertices, §5.2).
// Expected shape: near-linear scaling. (The paper reports super-linear
// speed-ups from NUMA locality effects on a 4-socket box; this VM has a
// single memory domain — see the substitution table in DESIGN.md.)
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {32});
  workload::LubmConfig cfg;
  cfg.num_universities = scales.back();
  // Emulate the >=1000-university regime: degree references hit materialized
  // universities, giving Q2 the heavy per-university candidate regions it
  // has at the paper's LUBM8000 scale (see LubmConfig::degree_pool).
  cfg.degree_pool = cfg.num_universities;
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  std::printf("[LUBM%u: %zu triples, prep %.1fs]\n", cfg.num_universities, ds.size(),
              prep.ElapsedSeconds());

  auto queries = workload::LubmQueries();
  struct Q {
    const char* name;
    std::string text;
  } qs[] = {{"Q2", queries[1]}, {"Q9", queries[8]}};

  bench::PrintHeader("Figure 16: parallel speed-up (dynamic start-vertex chunks)");
  bench::PrintRow("query/threads", {"1", "4", "8", "12", "16"});

  for (const auto& q : qs) {
    std::vector<double> times;
    for (uint32_t threads : {1u, 4u, 8u, 12u, 16u}) {
      engine::MatchOptions o;
      o.num_threads = threads;
      o.chunk_size = 16;
      sparql::TurboBgpSolver solver(g, ds.dict(), o);
      times.push_back(bench::TimeQuery(solver, q.text).ms);
    }
    std::vector<std::string> ms_cells, speedup_cells;
    for (double t : times) ms_cells.push_back(bench::Ms(t));
    for (double t : times) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", t > 0 ? times[0] / t : 0.0);
      speedup_cells.push_back(buf);
    }
    bench::PrintRow(std::string(q.name) + " [ms]", ms_cells);
    bench::PrintRow(std::string(q.name) + " speed-up", speedup_cells);
  }
  return 0;
}
