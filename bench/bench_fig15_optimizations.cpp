// Figure 15: reduced elapsed time of each §4.3 optimization applied alone to
// the no-optimization TurboHOM++ configuration, on the two most demanding
// LUBM queries (Q2, Q9). Expected shape: +INT dominates Q2 (its IsJoinable
// cost is the bottleneck); -NLF dominates Q9 (small candidate regions make
// the filter pure overhead); -DEG helps Q9 more than Q2; +REUSE helps Q9
// (many regions) but not Q2.
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

engine::MatchOptions NoOpt() {
  engine::MatchOptions o;
  o.use_intersection = false;
  o.use_nlf = true;
  o.use_degree_filter = true;
  o.reuse_matching_order = false;
  return o;
}

double Time(const graph::DataGraph& g, const rdf::Dictionary& dict,
            const engine::MatchOptions& opts, const std::string& query) {
  sparql::TurboBgpSolver solver(g, dict, opts);
  return bench::TimeQuery(solver, query).ms;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {32});
  workload::LubmConfig cfg;
  cfg.num_universities = scales.back();
  // Emulate the >=1000-university regime: degree references hit materialized
  // universities, giving Q2 the heavy per-university candidate regions it
  // has at the paper's LUBM8000 scale (see LubmConfig::degree_pool).
  cfg.degree_pool = cfg.num_universities;
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  std::printf("[LUBM%u: %zu triples, prep %.1fs]\n", cfg.num_universities, ds.size(),
              prep.ElapsedSeconds());

  auto queries = workload::LubmQueries();
  const std::string q2 = queries[1], q9 = queries[8];

  bench::PrintHeader("Figure 15: reduced elapsed time per optimization [ms]");
  double base2 = Time(g, ds.dict(), NoOpt(), q2);
  double base9 = Time(g, ds.dict(), NoOpt(), q9);
  std::printf("no-optimization baseline: Q2 %.2f ms, Q9 %.2f ms\n", base2, base9);
  bench::PrintRow("optimization", {"Q2 reduced", "Q9 reduced"});

  struct Variant {
    const char* name;
    void (*apply)(engine::MatchOptions*);
  } variants[] = {
      {"+INT", [](engine::MatchOptions* o) { o->use_intersection = true; }},
      {"-NLF", [](engine::MatchOptions* o) { o->use_nlf = false; }},
      {"-DEG", [](engine::MatchOptions* o) { o->use_degree_filter = false; }},
      {"+REUSE", [](engine::MatchOptions* o) { o->reuse_matching_order = true; }},
  };
  for (const auto& v : variants) {
    engine::MatchOptions o = NoOpt();
    v.apply(&o);
    double t2 = Time(g, ds.dict(), o, q2);
    double t9 = Time(g, ds.dict(), o, q9);
    bench::PrintRow(v.name, {bench::Ms(base2 - t2), bench::Ms(base9 - t9)});
  }

  engine::MatchOptions all;  // default = all optimizations
  std::printf("all optimizations:        Q2 %.2f ms, Q9 %.2f ms\n",
              Time(g, ds.dict(), all, q2), Time(g, ds.dict(), all, q9));
  return 0;
}
