// Storage-mode benchmark for the compressed adjacency tentpole: the same
// LUBM workload measured on plain (uncompressed CSR) and compressed
// (delta + group-varint with skip pointers and neighborhood signatures)
// DataGraph storage.
//
// Four surfaces per scale:
//   * footprint  — adjacency + signature bytes per transform, plain vs
//     compressed, with the ratio the nightly gate holds at <= 0.7;
//   * decode     — a full AllNeighbors sweep over every (vertex, direction),
//     reported as decoded-output GB/s (plain is the zero-copy traversal
//     bound the SIMD varint decoder is chasing);
//   * queries    — the 14 LUBM queries on otherwise-identical engines; rows
//     must be identical across modes (machine-independent, gated nightly);
//   * signatures — sig_checks / sig_prunes accumulated over the query mix
//     (prunes must be nonzero on LUBM, gated nightly).
//
// With BENCH_JSON=<path> the run emits the machine-tagged report consumed by
// bench/compare_results.py; bench/results/storage.json is the checked-in
// reference-VM baseline. Entries:
//   LUBM<n>/footprint/<transform>  plain_bytes / compressed_bytes / ratio
//   LUBM<n>/decode                 values / plain_gbps / compressed_gbps
//   LUBM<n>/Q<i>/<mode>            ms / rows / sig_checks / sig_prunes
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

struct DecodeSweep {
  uint64_t values = 0;   ///< neighbor ids produced
  double gbps = 0;       ///< decoded output bytes / second
  uint64_t checksum = 0; ///< defeats dead-code elimination; sanity-compared
};

DecodeSweep SweepAllNeighbors(const graph::DataGraph& g, int reps) {
  DecodeSweep out;
  std::vector<VertexId> scratch;
  double best_ms = 0;
  for (int r = 0; r < reps; ++r) {
    uint64_t values = 0, checksum = 0;
    util::WallTimer t;
    for (graph::Direction d : {graph::Direction::kOut, graph::Direction::kIn}) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        auto nbrs = g.AllNeighbors(v, d, scratch);
        values += nbrs.size();
        for (VertexId n : nbrs) checksum += n;
      }
    }
    double ms = t.ElapsedMillis();
    out.values = values;
    out.checksum = checksum;
    if (best_ms == 0 || ms < best_ms) best_ms = ms;
  }
  out.gbps = best_ms > 0
                 ? (static_cast<double>(out.values) * sizeof(VertexId)) /
                       (best_ms * 1e6)
                 : 0;
  return out;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {1, 8});
  auto queries = workload::LubmQueries();
  const int reps = bench::RepsFromEnv();

  bench::BenchReport report;
  report.bench = "bench_storage";
  report.machine = bench::MachineTag();
  report.config["reps"] = std::to_string(reps);

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());
    const std::string tag = "LUBM" + std::to_string(n);

    // ---- Footprint: adjacency + signature bytes per transform. ----
    bench::PrintHeader("adjacency + signature footprint [bytes]");
    bench::PrintRow("transform", {"plain", "compressed", "ratio"});
    for (auto [tname, tmode] :
         {std::pair<const char*, graph::TransformMode>{"typed",
                                                       graph::TransformMode::kTypeAware},
          std::pair<const char*, graph::TransformMode>{"direct",
                                                       graph::TransformMode::kDirect}}) {
      graph::DataGraph plain =
          graph::DataGraph::Build(ds, tmode, graph::StorageMode::kUncompressed);
      graph::DataGraph comp =
          graph::DataGraph::Build(ds, tmode, graph::StorageMode::kCompressed);
      const size_t pb = plain.MemoryUsage().adjacency_total();
      const size_t cb = comp.MemoryUsage().adjacency_total();
      const double ratio = pb ? static_cast<double>(cb) / static_cast<double>(pb) : 0;
      char rbuf[32];
      std::snprintf(rbuf, sizeof(rbuf), "%.3f", ratio);
      bench::PrintRow(tname, {bench::Num(pb), bench::Num(cb), rbuf});

      bench::BenchResult res;
      res.name = tag + "/footprint/" + tname;
      res.metrics["plain_bytes"] = static_cast<double>(pb);
      res.metrics["compressed_bytes"] = static_cast<double>(cb);
      res.metrics["ratio"] = ratio;
      report.results.push_back(std::move(res));

      // The acceptance gate: the engine's working (type-aware) graph must be
      // at least 30% smaller compressed. Machine-independent, so the bench
      // itself fails rather than leaving it to a comparison script.
      if (tmode == graph::TransformMode::kTypeAware && ratio > 0.7) {
        std::fprintf(stderr, "FATAL: %s compressed/plain ratio %.3f exceeds 0.7\n",
                     tag.c_str(), ratio);
        return 1;
      }

      // ---- Decode sweep (type-aware only: the engine's working graph). ----
      if (tmode == graph::TransformMode::kTypeAware) {
        DecodeSweep sp = SweepAllNeighbors(plain, reps);
        DecodeSweep sc = SweepAllNeighbors(comp, reps);
        if (sp.checksum != sc.checksum || sp.values != sc.values) {
          std::fprintf(stderr, "FATAL: decode sweep diverged between modes\n");
          return 1;
        }
        bench::PrintHeader("AllNeighbors sweep throughput [GB/s of decoded ids]");
        bench::PrintRow("plain", {bench::Ms(sp.gbps)});
        bench::PrintRow("compressed", {bench::Ms(sc.gbps)});
        bench::BenchResult dres;
        dres.name = tag + "/decode";
        dres.metrics["values"] = static_cast<double>(sp.values);
        dres.metrics["plain_gbps"] = sp.gbps;
        dres.metrics["compressed_gbps"] = sc.gbps;
        report.results.push_back(std::move(dres));
      }
    }

    // ---- Query times + signature counters, plain vs compressed engines. ----
    sparql::QueryEngine::Config config;
    config.engine_options = bench::TurboOptionsFromEnv();
    sparql::QueryEngine plain_engine(ds, config);
    config.storage = graph::StorageMode::kCompressed;
    sparql::QueryEngine comp_engine(ds, config);

    bench::PrintHeader("LUBM queries: plain vs compressed storage [ms]");
    bench::PrintRow("query", {"plain ms", "comp ms", "rows", "sig checks", "sig prunes"});
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const std::string qname = "Q" + std::to_string(qi + 1);
      for (auto [mode, engine] :
           {std::pair<const char*, const sparql::QueryEngine*>{"plain", &plain_engine},
            std::pair<const char*, const sparql::QueryEngine*>{"compressed",
                                                               &comp_engine}}) {
        const sparql::TurboBgpSolver* solver = engine->turbo_solver();
        solver->ResetStats();
        bench::Timed m = bench::TimeQuery(*engine, queries[qi], reps);
        engine::MatchStats stats = solver->last_stats();

        bench::BenchResult res;
        res.name = tag + "/" + qname + "/" + mode;
        res.metrics["ms"] = m.ms;
        res.metrics["rows"] = static_cast<double>(m.rows);
        res.metrics["sig_checks"] = static_cast<double>(stats.sig_checks);
        res.metrics["sig_prunes"] = static_cast<double>(stats.sig_prunes);
        report.results.push_back(std::move(res));

        if (std::string(mode) == "compressed") {
          // The plain entry is the previous row in the report.
          const bench::BenchResult& p = report.results[report.results.size() - 2];
          bench::PrintRow(qname, {bench::Ms(p.metrics.at("ms")), bench::Ms(m.ms),
                                  bench::Num(m.rows), bench::Num(stats.sig_checks),
                                  bench::Num(stats.sig_prunes)});
          if (p.metrics.at("rows") != static_cast<double>(m.rows)) {
            std::fprintf(stderr, "FATAL: %s row counts diverged across storage modes\n",
                         qname.c_str());
            return 1;
          }
        }
      }
    }
  }
  bench::MaybeWriteJson(report);
  return 0;
}
