#!/usr/bin/env python3
"""Compare two bench JSON reports produced with BENCH_JSON=<path>.

Usage:
    bench/compare_results.py BASELINE.json CANDIDATE.json [options]

Matches results by name and prints the per-entry delta for every shared
metric, plus a geometric-mean summary for "ms" and "allocs". Exits non-zero
when the geomean "ms" ratio regresses past --max-regress percent (unless
--report-only), so CI can gate on it.

The machine tags of both files are printed; comparing reports from different
machines is allowed but flagged, since cross-host deltas are informational
only.
"""

import argparse
import json
import math
import re
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    for key in ("bench", "results"):
        if key not in report:
            sys.exit(f"{path}: not a bench report (missing '{key}')")
    return report


def index(report):
    return {r["name"]: r.get("metrics", {}) for r in report["results"]}


def geomean(ratios):
    ratios = [r for r in ratios if r > 0]
    if not ratios:
        return None
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--metric", default="ms",
                    help="metric gated by --max-regress (default: ms)")
    ap.add_argument("--max-regress", type=float, default=10.0,
                    help="fail when the geomean ratio exceeds 1 + this %% (default: 10)")
    ap.add_argument("--report-only", action="store_true",
                    help="never fail, just print the comparison")
    ap.add_argument("--min-abs-ms", type=float, default=0.05,
                    help="ignore entries faster than this in both runs (noise floor)")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="only compare result names matching this regex "
                         "(e.g. 'TurboHOM' for the engine-only delta)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    if base["bench"] != cand["bench"]:
        print(f"WARNING: comparing different benches "
              f"({base['bench']} vs {cand['bench']})")
    bm, cm = base.get("machine", {}), cand.get("machine", {})
    same_host = bm.get("host") and bm.get("host") == cm.get("host")
    print(f"baseline : {args.baseline}  [{bm.get('host', '?')}, "
          f"{bm.get('cpu', '?')}, config {base.get('config', {})}]")
    print(f"candidate: {args.candidate}  [{cm.get('host', '?')}, "
          f"{cm.get('cpu', '?')}, config {cand.get('config', {})}]")
    if not same_host:
        print("WARNING: different machines — deltas are informational only")

    bi, ci = index(base), index(cand)
    if args.filter:
        pat = re.compile(args.filter)
        bi = {n: m for n, m in bi.items() if pat.search(n)}
        ci = {n: m for n, m in ci.items() if pat.search(n)}
    shared = [n for n in bi if n in ci]
    missing = [n for n in bi if n not in ci] + [n for n in ci if n not in bi]
    if missing:
        print(f"note: {len(missing)} entries present in only one report")
    if not shared:
        sys.exit("no shared result names to compare")

    metrics = sorted({m for n in shared for m in bi[n] if m in ci[n]})
    ratios = {m: [] for m in metrics}
    header = f"{'name':44s}" + "".join(f" {m + ' old':>12s} {m + ' new':>12s} {'Δ%':>8s}"
                                       for m in metrics)
    print("\n" + header)
    for name in shared:
        cells = []
        for m in metrics:
            old, new = bi[name].get(m), ci[name].get(m)
            if old is None or new is None:
                cells.append(f" {'-':>12s} {'-':>12s} {'-':>8s}")
                continue
            if m == args.metric and old < args.min_abs_ms and new < args.min_abs_ms:
                pct = "~"
            elif old > 0:
                ratios[m].append(new / old)
                pct = f"{(new / old - 1) * 100:+.1f}"
            else:
                pct = "~"
            cells.append(f" {old:12.3f} {new:12.3f} {pct:>8s}")
        print(f"{name:44s}" + "".join(cells))

    print()
    failed = False
    for m in metrics:
        g = geomean(ratios[m])
        if g is None:
            continue
        print(f"geomean {m} ratio (new/old): {g:.3f}  "
              f"({(g - 1) * 100:+.1f}% over {len(ratios[m])} entries)")
        if m == args.metric and g > 1 + args.max_regress / 100.0:
            failed = True
    if failed and not args.report_only:
        print(f"FAIL: {args.metric} regressed beyond {args.max_regress}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
