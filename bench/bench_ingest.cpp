// Ingestion benchmark: sequential istream parse vs the chunked parallel
// pipeline (at several thread counts) vs the binary snapshot fast path, on
// inference-closed LUBM N-Triples dumps. This is the measurement the paper
// never gives (loading is excluded from all its numbers) but that dominates
// wall-clock at LUBM-8+ scale.
//
// Rows per scale (metrics: ms, allocs, triples):
//   parse-seq        ParseNTriples (the pre-pipeline istream loop)
//   parse-par/tN     LoadNTriplesFile, threads = N
//   load+graph/tN    LoadNTriplesFile with the fused GraphBuilder stage
//   snapshot-save    SaveSnapshotFile of the loaded dataset
//   snapshot-load    LoadSnapshotFile (bulk sectioned reads)
// Pipeline rows additionally report per-stage time (parse/merge/remap and
// graph for the fused row) plus merge_share = merge_ms / total_ms, so the
// dictionary-merge share of load time is tracked and gated, not folkloric.
//
// Environment: INGEST_SCALES (default "2,8" universities), INGEST_THREADS
// (default "1,2,8"), BENCH_REPS (default 5, drop best/worst), BENCH_JSON.
// Temp files go to $INGEST_TMP (default /tmp) and are removed on exit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/alloc_counter.hpp"
#include "bench/bench_common.hpp"
#include "bench/bench_json.hpp"
#include "rdf/loader.hpp"
#include "rdf/ntriples.hpp"
#include "rdf/snapshot.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

#include <fstream>

using namespace turbo;

namespace {

struct Measured {
  double ms = 0;
  uint64_t allocs = 0;
  uint64_t triples = 0;
};

/// Paper-style repetition: run `reps` times, drop best and worst, average
/// the rest. The probe returns the triple count (sanity-checked by caller).
template <typename Fn>
Measured Measure(int reps, Fn&& fn) {
  Measured out;
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    uint64_t a0 = bench::AllocCount();
    util::WallTimer t;
    out.triples = fn();
    times.push_back(t.ElapsedMillis());
    out.allocs = bench::AllocCount() - a0;
    if (times.back() > 30000 && i == 0) break;  // very slow cell: measure once
  }
  if (times.size() >= 3) {
    std::sort(times.begin(), times.end());
    double sum = 0;
    for (size_t i = 1; i + 1 < times.size(); ++i) sum += times[i];
    out.ms = sum / (times.size() - 2);
  } else {
    double sum = 0;
    for (double v : times) sum += v;
    out.ms = sum / times.size();
  }
  return out;
}

std::string TmpDir() {
  const char* env = std::getenv("INGEST_TMP");
  return env && *env ? env : "/tmp";
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("INGEST_SCALES", {2, 8});
  auto thread_counts = bench::ScalesFromEnv("INGEST_THREADS", {1, 2, 8});
  const int reps = bench::RepsFromEnv();

  bench::BenchReport report;
  report.bench = "bench_ingest";
  report.machine = bench::MachineTag();
  {
    std::string s, th;
    for (uint32_t v : scales) s += (s.empty() ? "" : ",") + std::to_string(v);
    for (uint32_t v : thread_counts) th += (th.empty() ? "" : ",") + std::to_string(v);
    report.config["scales"] = s;
    report.config["threads"] = th;
    report.config["reps"] = std::to_string(reps);
  }

  for (uint32_t scale : scales) {
    const std::string tag = "LUBM" + std::to_string(scale);
    const std::string nt_path = TmpDir() + "/bench_ingest_" + tag + ".nt";
    const std::string snap_path = TmpDir() + "/bench_ingest_" + tag + ".snap";

    workload::LubmConfig cfg;
    cfg.num_universities = scale;
    if (auto st = workload::WriteLubmNTriplesFile(cfg, nt_path); !st.ok()) {
      std::fprintf(stderr, "fixture error: %s\n", st.message().c_str());
      return 1;
    }
    uint64_t bytes = 0;
    {
      std::ifstream in(nt_path, std::ios::binary | std::ios::ate);
      bytes = static_cast<uint64_t>(in.tellg());
    }
    bench::PrintHeader(tag + " ingest (" + std::to_string(bytes >> 20) + " MiB N-Triples)");
    bench::PrintRow("variant", {"ms", "Mtriples/s", "allocs"});

    auto record = [&](const std::string& name, const Measured& m,
                      const rdf::LoadStats* stages = nullptr) {
      double mtps = m.ms > 0 ? m.triples / m.ms / 1000.0 : 0;
      bench::PrintRow(name, {bench::Ms(m.ms),
                             bench::Ms(mtps),
                             bench::Num(m.allocs)});
      std::map<std::string, double> metrics{
          {"ms", m.ms},
          {"allocs", static_cast<double>(m.allocs)},
          {"triples", static_cast<double>(m.triples)}};
      if (stages != nullptr && stages->total_ms > 0) {
        // Stage breakdown from the last rep (shares are stable across reps;
        // the averaged wall time above stays the headline number).
        metrics["parse_ms"] = stages->parse_ms;
        metrics["merge_ms"] = stages->merge_ms;
        metrics["remap_ms"] = stages->remap_ms;
        if (stages->graph_ms > 0) metrics["graph_ms"] = stages->graph_ms;
        metrics["merge_share"] = stages->merge_ms / stages->total_ms;
        std::printf("    stages: parse %.0f | merge %.0f | remap %.0f%s ms"
                    "  (merge share %.1f%%)\n",
                    stages->parse_ms, stages->merge_ms, stages->remap_ms,
                    stages->graph_ms > 0
                        ? (" | graph " + std::to_string(static_cast<long long>(
                                             stages->graph_ms))).c_str()
                        : "",
                    100.0 * stages->merge_ms / stages->total_ms);
      }
      report.results.push_back({tag + "/" + name, std::move(metrics)});
    };

    // ---- Sequential istream baseline (the pre-pipeline ingestion path). ----
    Measured seq = Measure(reps, [&] {
      rdf::Dataset ds;
      std::ifstream in(nt_path);
      if (!in || !rdf::ParseNTriples(in, &ds).ok()) return uint64_t{0};
      return static_cast<uint64_t>(ds.size());
    });
    record("parse-seq", seq);

    // ---- Parallel pipeline at each thread count. ----
    for (uint32_t threads : thread_counts) {
      rdf::LoadOptions opts;
      opts.threads = threads;
      rdf::LoadStats stages;
      Measured par = Measure(reps, [&] {
        auto r = rdf::LoadNTriplesFile(nt_path, opts);
        if (!r.ok()) {
          std::fprintf(stderr, "load error: %s\n", r.message().c_str());
          return uint64_t{0};
        }
        stages = r.value().stats;
        return r.value().stats.triples;
      });
      if (par.triples != seq.triples)
        std::fprintf(stderr, "WARNING: %s triple-count mismatch (%llu vs %llu)\n",
                     tag.c_str(), static_cast<unsigned long long>(par.triples),
                     static_cast<unsigned long long>(seq.triples));
      record("parse-par/t" + std::to_string(threads), par, &stages);
    }

    // ---- Fused load+graph at the top thread count. ----
    {
      rdf::LoadOptions opts;
      opts.threads = thread_counts.back();
      opts.build_graph = true;
      rdf::LoadStats stages;
      Measured fused = Measure(reps, [&] {
        auto r = rdf::LoadNTriplesFile(nt_path, opts);
        if (r.ok()) stages = r.value().stats;
        return r.ok() ? r.value().stats.triples : uint64_t{0};
      });
      record("load+graph/t" + std::to_string(opts.threads), fused, &stages);
    }

    // ---- Snapshot fast path. ----
    {
      rdf::LoadOptions opts;
      opts.threads = thread_counts.back();
      auto loaded = rdf::LoadNTriplesFile(nt_path, opts);
      if (!loaded.ok()) {
        std::fprintf(stderr, "load error: %s\n", loaded.message().c_str());
        return 1;
      }
      Measured save = Measure(reps, [&] {
        if (!rdf::SaveSnapshotFile(loaded.value().dataset, snap_path).ok())
          return uint64_t{0};
        return static_cast<uint64_t>(loaded.value().dataset.size());
      });
      record("snapshot-save", save);
      Measured load = Measure(reps, [&] {
        auto r = rdf::LoadSnapshotFile(snap_path, opts.threads);
        return r.ok() ? static_cast<uint64_t>(r.value().size()) : uint64_t{0};
      });
      if (load.triples != seq.triples)
        std::fprintf(stderr, "WARNING: %s snapshot triple-count mismatch\n", tag.c_str());
      record("snapshot-load", load);
    }

    std::remove(nt_path.c_str());
    std::remove(snap_path.c_str());
  }

  bench::MaybeWriteJson(report);
  return 0;
}
