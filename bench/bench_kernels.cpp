// Microbenchmarks (google-benchmark) for the hot kernels behind the +INT
// optimization and candidate collection: sorted intersection (merge vs
// gallop), k-way intersection, membership probes, and adjacency lookups.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "engine/region_arena.hpp"
#include "graph/data_graph.hpp"
#include "util/rng.hpp"
#include "util/sorted.hpp"
#include "workload/lubm.hpp"

namespace {

std::vector<uint32_t> RandomSorted(size_t n, uint32_t universe, uint64_t seed) {
  turbo::util::Rng rng(seed);
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = static_cast<uint32_t>(rng.Below(universe));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectBalanced(benchmark::State& state) {
  size_t n = state.range(0);
  auto a = RandomSorted(n, 4 * n, 1);
  auto b = RandomSorted(n, 4 * n, 2);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    turbo::util::IntersectInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_IntersectBalanced)->Range(1 << 8, 1 << 16);

void BM_IntersectSkewed(benchmark::State& state) {
  // Small list vs large list: exercises the galloping path the +INT
  // complexity bound relies on (min(merge, binary-search) in §4.3).
  auto small = RandomSorted(64, 1 << 20, 3);
  auto big = RandomSorted(state.range(0), 1 << 20, 4);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    turbo::util::IntersectInto(small, big, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectSkewed)->Range(1 << 12, 1 << 20);

void BM_IntersectKWay(benchmark::State& state) {
  std::vector<std::vector<uint32_t>> lists;
  for (int i = 0; i < 4; ++i) lists.push_back(RandomSorted(state.range(0), 1 << 18, 10 + i));
  std::vector<uint32_t> out;
  for (auto _ : state) {
    std::vector<std::span<const uint32_t>> spans(lists.begin(), lists.end());
    turbo::util::IntersectKWay(std::move(spans), &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectKWay)->Range(1 << 8, 1 << 14);

void BM_MembershipProbes(benchmark::State& state) {
  // The non-+INT IsJoinable path: one binary search per candidate.
  auto adj = RandomSorted(state.range(0), 1 << 20, 5);
  auto candidates = RandomSorted(1024, 1 << 20, 6);
  for (auto _ : state) {
    size_t hits = 0;
    for (uint32_t c : candidates) hits += turbo::util::SortedContains(adj, c);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MembershipProbes)->Range(1 << 10, 1 << 20);

void BM_AdjacencyLookup(benchmark::State& state) {
  // Figure 9 layout: neighbour-type group lookups on a real LUBM graph.
  static const turbo::rdf::Dataset ds = [] {
    turbo::workload::LubmConfig cfg;
    cfg.num_universities = 1;
    return turbo::workload::GenerateLubmClosed(cfg);
  }();
  static const turbo::graph::DataGraph g =
      turbo::graph::DataGraph::Build(ds, turbo::graph::TransformMode::kTypeAware);
  turbo::util::Rng rng(7);
  for (auto _ : state) {
    turbo::VertexId v = static_cast<turbo::VertexId>(rng.Below(g.num_vertices()));
    auto groups = g.TypeGroups(v, turbo::graph::Direction::kOut);
    benchmark::DoNotOptimize(groups.data());
    if (!groups.empty()) {
      auto nbrs = g.GroupNeighbors(turbo::graph::Direction::kOut, groups[0]);
      benchmark::DoNotOptimize(nbrs.data());
    }
  }
}
BENCHMARK(BM_AdjacencyLookup);

void BM_CandidateRegionStore(benchmark::State& state) {
  // ExploreCandidateRegion's per-region lifecycle: reset the store, build
  // `kLists` candidate lists per tree node, look each one up once. Arg 1 =
  // pooled RegionArena (reset, memory kept), arg 0 = the seed's layout
  // (unordered_map nodes freed every region).
  const bool pooled = state.range(0) != 0;
  constexpr uint32_t kNodes = 6;
  constexpr uint32_t kLists = 64;
  constexpr uint32_t kLen = 24;
  turbo::engine::RegionArena arena;
  arena.PrepareQuery(kNodes, pooled);
  // Distinct keys: CandidateMap::Insert requires the key to be absent.
  std::vector<turbo::VertexId> parents(kLists);
  for (uint32_t li = 0; li < kLists; ++li) parents[li] = 1000 + li * 131;
  for (auto _ : state) {
    arena.ResetRegion();
    for (uint32_t node = 1; node < kNodes; ++node) {
      const uint32_t depth = node / 2;
      for (uint32_t li = 0; li < kLists; ++li) {
        arena.BeginList(node, depth, parents[li]);
        for (uint32_t k = 0; k < kLen; ++k)
          arena.Append(node, depth, parents[li] + k);
        arena.EndList(node, depth, parents[li]);
      }
      for (uint32_t li = 0; li < kLists; ++li) {
        auto span = arena.Lookup(node, depth, parents[li]);
        benchmark::DoNotOptimize(span.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * (kNodes - 1) * kLists * kLen);
}
BENCHMARK(BM_CandidateRegionStore)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
