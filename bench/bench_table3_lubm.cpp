// Table 3 (a/b/c): elapsed time of the 14 LUBM queries at three scales for
// the four engines. Expected shapes (paper §7.2):
//  * constant-solution queries (Q1,Q3-Q5,Q7,Q8,Q10-Q12): TurboHOM++ stays
//    flat across scales while the scan+join baseline (RDF-3X stand-in)
//    grows, so the gap widens;
//  * increasing-solution queries (Q2,Q6,Q9,Q13,Q14): everything grows,
//    TurboHOM++ stays fastest;
//  * the index-nested-loop baseline (System-X stand-in) is competitive on
//    point queries but collapses on Q2/Q9.
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {2, 8, 32});
  auto queries = workload::LubmQueries();

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    bench::EngineSet engines(ds);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());

    bench::PrintHeader("Table 3: elapsed time in LUBM" + std::to_string(n) + " [ms]");
    std::vector<std::string> header;
    for (int i = 1; i <= 14; ++i) header.push_back("Q" + std::to_string(i));
    bench::PrintRow("engine", header);

    struct Row {
      const char* name;
      const sparql::BgpSolver* solver;
    } rows[] = {
        {"TurboHOM++", &engines.turbo},
        {"SortMerge(RDF-3X-like)", &engines.sortmerge},
        {"IndexJoin(Sys-X-like)", &engines.indexjoin},
        {"TurboHOM(direct)", &engines.turbo_direct},
    };
    for (const auto& row : rows) {
      std::vector<std::string> cells;
      for (const auto& q : queries) cells.push_back(bench::Ms(bench::TimeQuery(*row.solver, q).ms));
      bench::PrintRow(row.name, cells);
    }
  }
  return 0;
}
