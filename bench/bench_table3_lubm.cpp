// Table 3 (a/b/c): elapsed time of the 14 LUBM queries at three scales for
// the four engines. Expected shapes (paper §7.2):
//  * constant-solution queries (Q1,Q3-Q5,Q7,Q8,Q10-Q12): TurboHOM++ stays
//    flat across scales while the scan+join baseline (RDF-3X stand-in)
//    grows, so the gap widens;
//  * increasing-solution queries (Q2,Q6,Q9,Q13,Q14): everything grows,
//    TurboHOM++ stays fastest;
//  * the index-nested-loop baseline (System-X stand-in) is competitive on
//    point queries but collapses on Q2/Q9.
//
// With BENCH_JSON=<path> the run also emits a machine-tagged JSON report
// (per query: ms, rows, heap allocations) — the input format of
// bench/compare_results.py. TURBO_REUSE_REGION_MEMORY=0 selects the
// pre-arena allocation behaviour, so a reuse-off/reuse-on pair of reports
// is the measured delta of the RegionArena optimization.
#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {2, 8, 32});
  auto queries = workload::LubmQueries();
  engine::MatchOptions turbo_opts = bench::TurboOptionsFromEnv();
  if (bench::kAllocCountingEnabled) bench::g_alloc_probe = &bench::AllocCount;

  bench::BenchReport report;
  report.bench = "bench_table3_lubm";
  report.machine = bench::MachineTag();
  report.config["reuse_region_memory"] = turbo_opts.reuse_region_memory ? "1" : "0";
  report.config["reps"] = std::to_string(bench::RepsFromEnv());

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    bench::EngineSet engines(ds, turbo_opts);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());

    bench::PrintHeader("Table 3: elapsed time in LUBM" + std::to_string(n) + " [ms]");
    std::vector<std::string> header;
    for (int i = 1; i <= 14; ++i) header.push_back("Q" + std::to_string(i));
    bench::PrintRow("engine", header);

    // Each solver is driven through the QueryEngine facade — the same
    // prepared-query + cursor path a service front-end uses.
    struct Row {
      const char* name;
      sparql::QueryEngine engine;
    } rows[] = {
        {"TurboHOM++", sparql::QueryEngine(&engines.turbo)},
        {"SortMerge(RDF-3X-like)", sparql::QueryEngine(&engines.sortmerge)},
        {"IndexJoin(Sys-X-like)", sparql::QueryEngine(&engines.indexjoin)},
        {"TurboHOM(direct)", sparql::QueryEngine(&engines.turbo_direct)},
    };
    for (const auto& row : rows) {
      std::vector<std::string> cells;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        bench::Timed t = bench::TimeQuery(row.engine, queries[qi]);
        cells.push_back(bench::Ms(t.ms));
        bench::BenchResult res;
        res.name = "LUBM" + std::to_string(n) + "/Q" + std::to_string(qi + 1) + "/" +
                   row.name;
        res.metrics["ms"] = t.ms;
        res.metrics["rows"] = static_cast<double>(t.rows);
        if (bench::g_alloc_probe)
          res.metrics["allocs"] = static_cast<double>(t.allocs);
        report.results.push_back(std::move(res));
      }
      bench::PrintRow(row.name, cells);
    }
  }
  bench::MaybeWriteJson(report);
  return 0;
}
