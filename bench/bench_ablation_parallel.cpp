// Work-distribution ablation (Section 5.2): the paper argues that handing
// starting data vertices to threads "in a pre-determined way may lead to
// workload imbalance" because candidate-region sizes are skewed at the
// instance level, and therefore assigns SMALL DYNAMIC CHUNKS. This harness
// compares static pre-partitioning against dynamic chunking at several chunk
// sizes on the region-heavy LUBM queries.
// Expected shape: dynamic chunking with small chunks >= static partitioning,
// with the gap widest when per-university work is skewed.
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

double Time(const graph::DataGraph& g, const rdf::Dictionary& dict,
            const engine::MatchOptions& opts, const std::string& query) {
  sparql::TurboBgpSolver solver(g, dict, opts);
  return bench::TimeQuery(solver, query).ms;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {32});
  workload::LubmConfig cfg;
  cfg.num_universities = scales.back();
  // Emulate the >=1000-university regime: degree references hit materialized
  // universities, giving Q2 the heavy per-university candidate regions it
  // has at the paper's LUBM8000 scale (see LubmConfig::degree_pool).
  cfg.degree_pool = cfg.num_universities;
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  std::printf("[LUBM%u: %zu triples, prep %.1fs]\n", cfg.num_universities, ds.size(),
              prep.ElapsedSeconds());

  auto queries = workload::LubmQueries();
  const std::string q9 = queries[8];
  const uint32_t threads = 8;

  bench::PrintHeader("Ablation: start-vertex distribution, Q9, 8 threads [ms]");
  bench::PrintRow("strategy", {"time", "vs static"});

  engine::MatchOptions stat;
  stat.num_threads = threads;
  stat.dynamic_chunking = false;
  double t_static = Time(g, ds.dict(), stat, q9);
  bench::PrintRow("static partition", {bench::Ms(t_static), "1.00x"});

  for (uint32_t chunk : {1u, 4u, 16u, 64u, 256u}) {
    engine::MatchOptions dyn;
    dyn.num_threads = threads;
    dyn.chunk_size = chunk;
    double t = Time(g, ds.dict(), dyn, q9);
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%.2fx", t > 0 ? t_static / t : 0.0);
    bench::PrintRow("dynamic, chunk=" + std::to_string(chunk), {bench::Ms(t), rel});
  }
  return 0;
}
