// HTTP endpoint load driver: an in-process SparqlServer over one engine
// holding LUBM + BSBM side by side, hammered by keep-alive client threads
// with a mixed query workload. Measures what a service operator would ask
// of the endpoint:
//   * sustained QPS over the whole mixed run,
//   * per-query latency p50/p99 and time-to-first-byte p50 (TTFB tracks the
//     cursor's first row through the chunked encoder, not query completion),
//   * plan-cache hit rate (after warmup every request should hit: misses ==
//     number of distinct queries in the mix).
//
// With BENCH_JSON=<path> the run emits the machine-tagged report consumed
// by bench/compare_results.py; bench/results/server.json is the checked-in
// reference-VM baseline. Per-query `rows` and the plan-cache counters are
// machine-independent — the nightly workflow gates on them exactly; the
// latency metrics are same-machine comparisons only.
//
// Knobs: BENCH_CLIENTS (client threads, default 4), BENCH_SERVER_REQS
// (requests per client, default 24), BENCH_WORKERS (server pool, default 8).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "server/http.hpp"
#include "server/sparql_server.hpp"
#include "sparql/query_engine.hpp"
#include "util/common.hpp"
#include "workload/bsbm.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::atoi(v) : fallback;
}

/// Appends every triple of `src` into `dst`, re-interning terms — the two
/// generators use disjoint vocabularies, so the union graph answers both
/// query families unchanged (closures are already materialized; no further
/// inference runs over the merge).
void MergeInto(rdf::Dataset* dst, const rdf::Dataset& src) {
  for (const rdf::Triple& t : src.triples())
    dst->Add(src.dict().term(t.s), src.dict().term(t.p), src.dict().term(t.o));
}

struct QuerySpec {
  std::string name;
  std::string text;
};

struct Sample {
  double total_ms;
  double ttfb_ms;
};

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string UrlEncode(const std::string& s) {
  std::string out;
  char buf[8];
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out += static_cast<char>(c);
    } else {
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

/// TSV body → delivered row count (header line excluded; a trailing
/// "# stopped" marker would be a workload bug, so it is counted loudly).
uint64_t TsvRows(const std::string& body) {
  uint64_t lines = static_cast<uint64_t>(std::count(body.begin(), body.end(), '\n'));
  return lines == 0 ? 0 : lines - 1;
}

}  // namespace

int main() {
  const int clients = EnvInt("BENCH_CLIENTS", 4);
  const int reqs_per_client = EnvInt("BENCH_SERVER_REQS", 24);
  const int workers = EnvInt("BENCH_WORKERS", 8);

  util::WallTimer prep;
  workload::LubmConfig lubm_cfg;
  lubm_cfg.num_universities = 1;
  rdf::Dataset ds = workload::GenerateLubmClosed(lubm_cfg);
  workload::BsbmConfig bsbm_cfg;
  bsbm_cfg.num_products = 1000;
  bsbm_cfg.num_reviewers = 500;
  MergeInto(&ds, workload::GenerateBsbmClosed(bsbm_cfg));
  std::printf("[dataset: %zu triples (LUBM1 + BSBM), prep %.1fs]\n", ds.size(),
              prep.ElapsedSeconds());
  sparql::QueryEngine engine(std::move(ds));

  // The mix: three queries per family, spanning point lookups and
  // solution-heavy streams. Indices are 1-based into the paper query lists.
  auto lubm = workload::LubmQueries();
  auto bsbm = workload::BsbmQueries();
  std::vector<QuerySpec> mix = {
      {"LUBM/Q1", lubm[0]},  {"LUBM/Q4", lubm[3]},  {"LUBM/Q14", lubm[13]},
      {"BSBM/Q1", bsbm[0]},  {"BSBM/Q5", bsbm[4]},  {"BSBM/Q8", bsbm[7]},
  };

  server::ServerConfig server_config;
  server_config.workers = workers;
  server_config.queue_depth = clients * 2;
  server::SparqlServer srv(&engine, server_config);
  if (auto st = srv.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.message().c_str());
    return 1;
  }

  // Warmup: one request per distinct query primes the plan cache (these are
  // the only misses the whole run should see) and records reference rows.
  std::vector<uint64_t> rows(mix.size(), 0);
  for (size_t i = 0; i < mix.size(); ++i) {
    server::HttpResponse resp;
    auto st = server::HttpGet(
        srv.port(), "/sparql?format=tsv&query=" + UrlEncode(mix[i].text), &resp);
    if (!st.ok() || resp.status != 200) {
      std::fprintf(stderr, "%s failed: %s (status %d): %s\n", mix[i].name.c_str(),
                   st.message().c_str(), resp.status, resp.body.c_str());
      return 1;
    }
    rows[i] = TsvRows(resp.body);
  }

  // Timed run: each client thread drives one keep-alive connection through
  // the mix round-robin, offset per thread so queries interleave.
  std::vector<std::vector<Sample>> samples(mix.size());
  std::mutex samples_mu;
  std::atomic<int> failures{0};
  util::WallTimer run;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      int fd = server::DialLocal(srv.port());
      if (fd < 0) {
        failures.fetch_add(reqs_per_client);
        return;
      }
      std::string leftover;
      std::vector<std::vector<Sample>> local(mix.size());
      for (int r = 0; r < reqs_per_client; ++r) {
        size_t qi = static_cast<size_t>(c + r) % mix.size();
        util::WallTimer t;
        server::HttpResponse resp;
        if (!server::WriteHttpRequest(
                 fd, "GET", "/sparql?format=tsv&query=" + UrlEncode(mix[qi].text))
                 .ok() ||
            !server::WaitForResponseByte(fd, &leftover)) {
          failures.fetch_add(1);
          break;
        }
        double ttfb = t.ElapsedMillis();
        if (!server::ReadHttpResponse(fd, &resp, &leftover).ok() ||
            resp.status != 200 || TsvRows(resp.body) != rows[qi]) {
          failures.fetch_add(1);
          continue;
        }
        local[qi].push_back({t.ElapsedMillis(), ttfb});
      }
      ::close(fd);
      std::lock_guard<std::mutex> lock(samples_mu);
      for (size_t i = 0; i < mix.size(); ++i)
        samples[i].insert(samples[i].end(), local[i].begin(), local[i].end());
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_s = run.ElapsedSeconds();
  server::ServerStats stats = srv.stats();
  srv.Stop();

  uint64_t total_requests = 0;
  for (const auto& s : samples) total_requests += s.size();
  double qps = wall_s > 0 ? static_cast<double>(total_requests) / wall_s : 0;

  bench::BenchReport report;
  report.bench = "bench_server";
  report.machine = bench::MachineTag();
  report.config["clients"] = std::to_string(clients);
  report.config["reqs_per_client"] = std::to_string(reqs_per_client);
  report.config["workers"] = std::to_string(workers);

  bench::PrintHeader("HTTP endpoint: mixed LUBM+BSBM load, " +
                     std::to_string(clients) + " clients");
  bench::PrintRow("query", {"rows", "p50 ms", "p99 ms", "ttfb p50", "count"});
  std::vector<double> all_total;
  for (size_t i = 0; i < mix.size(); ++i) {
    std::vector<double> total, ttfb;
    for (const Sample& s : samples[i]) {
      total.push_back(s.total_ms);
      ttfb.push_back(s.ttfb_ms);
      all_total.push_back(s.total_ms);
    }
    double p50 = Quantile(total, 0.5), p99 = Quantile(total, 0.99);
    double ttfb50 = Quantile(ttfb, 0.5);
    bench::PrintRow(mix[i].name,
                    {bench::Num(rows[i]), bench::Ms(p50), bench::Ms(p99),
                     bench::Ms(ttfb50), bench::Num(samples[i].size())});
    report.results.push_back(
        {mix[i].name,
         {{"rows", static_cast<double>(rows[i])},
          {"p50_ms", p50},
          {"p99_ms", p99},
          {"ttfb_p50_ms", ttfb50},
          {"count", static_cast<double>(samples[i].size())}}});
  }
  double hit_rate =
      stats.plan_cache_hits + stats.plan_cache_misses > 0
          ? static_cast<double>(stats.plan_cache_hits) /
                static_cast<double>(stats.plan_cache_hits + stats.plan_cache_misses)
          : 0;
  std::printf("\noverall: %.1f req/s, p50 %.2f ms, p99 %.2f ms over %llu requests "
              "(%d failures)\nplan cache: %llu hits / %llu misses (%.1f%% hit)\n",
              qps, Quantile(all_total, 0.5), Quantile(all_total, 0.99),
              static_cast<unsigned long long>(total_requests), failures.load(),
              static_cast<unsigned long long>(stats.plan_cache_hits),
              static_cast<unsigned long long>(stats.plan_cache_misses),
              100 * hit_rate);
  report.results.push_back({"overall",
                            {{"qps", qps},
                             {"p50_ms", Quantile(all_total, 0.5)},
                             {"p99_ms", Quantile(all_total, 0.99)},
                             {"requests", static_cast<double>(total_requests)},
                             {"failures", static_cast<double>(failures.load())}}});
  report.results.push_back(
      {"plan_cache",
       {{"hits", static_cast<double>(stats.plan_cache_hits)},
        {"misses", static_cast<double>(stats.plan_cache_misses)},
        {"hit_rate", hit_rate}}});
  bench::MaybeWriteJson(report);
  return failures.load() == 0 ? 0 : 1;
}
