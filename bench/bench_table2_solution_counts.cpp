// Table 2: number of solutions of the 14 LUBM queries across dataset scales.
// The paper's shape claims: Q1, Q3-Q5, Q7, Q8, Q10-Q12 are constant-solution
// queries (independent of scale); Q2, Q6, Q9, Q13, Q14 are increasing-
// solution queries.
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {2, 8, 32});
  bench::PrintHeader("Table 2: number of solutions in LUBM queries");
  std::vector<std::string> header{"dataset"};
  for (int i = 1; i <= 14; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow(header[0], {header.begin() + 1, header.end()});

  auto queries = workload::LubmQueries();
  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
    sparql::TurboBgpSolver solver(g, ds.dict());
    std::vector<std::string> cells;
    for (const auto& q : queries) {
      sparql::Executor ex(&solver);
      auto r = ex.Execute(q);
      cells.push_back(r.ok() ? bench::Num(r.value().rows.size()) : "ERR");
    }
    bench::PrintRow("LUBM" + std::to_string(n), cells);
  }
  return 0;
}
