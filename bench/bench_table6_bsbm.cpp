// Table 6: number of solutions and elapsed time for the 12 BSBM explore-use-
// case queries (OPTIONAL / FILTER / UNION — §5.1). The paper compares only
// against System-X there (the open-source engines lack OPTIONAL support);
// our stand-in is the IndexJoin engine behind the same SPARQL executor.
// Expected shape: TurboHOM++ answers the ID-anchored queries (Q2, Q7-Q12) in
// well under a millisecond-to-few-ms, while Q5 (join-condition filters) and
// Q6 (regex over all labels) dominate the runtime for every engine.
#include "bench_common.hpp"
#include "workload/bsbm.hpp"

using namespace turbo;

int main() {
  workload::BsbmConfig cfg;  // default scale
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateBsbmClosed(cfg);
  bench::EngineSet engines(ds);
  std::printf("[BSBM-like: %zu triples, prep %.1fs]\n", ds.size(), prep.ElapsedSeconds());

  auto queries = workload::BsbmQueries();
  bench::PrintHeader("Table 6: number of solutions and elapsed time in BSBM-like [ms]");
  std::vector<std::string> header;
  for (int i = 1; i <= 12; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow("", header);

  std::vector<std::string> counts;
  for (const auto& q : queries)
    counts.push_back(bench::Num(bench::TimeQuery(engines.turbo, q, 1).rows));
  bench::PrintRow("# of sol.", counts);

  struct Row {
    const char* name;
    const sparql::BgpSolver* solver;
  } rows[] = {
      {"TurboHOM++", &engines.turbo},
      {"IndexJoin(Sys-X-like)", &engines.indexjoin},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& q : queries) cells.push_back(bench::Ms(bench::TimeQuery(*row.solver, q).ms));
    bench::PrintRow(row.name, cells);
  }
  return 0;
}
