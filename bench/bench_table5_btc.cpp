// Table 5: number of solutions and elapsed time for the eight BTC2012-style
// queries. Expected shape: all engines handle these simple, mostly
// tree-shaped and frequently ID-anchored queries quickly; TurboHOM++ stays
// ahead on every one (paper: up to 422x over RDF-3X, 266x over System-X).
#include "bench_common.hpp"
#include "workload/btc.hpp"

using namespace turbo;

int main() {
  workload::BtcConfig cfg;  // default scale
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateBtc(cfg);
  bench::EngineSet engines(ds);
  std::printf("[BTC-like: %zu triples, prep %.1fs]\n", ds.size(), prep.ElapsedSeconds());

  auto queries = workload::BtcQueries();
  bench::PrintHeader("Table 5: number of solutions and elapsed time in BTC2012-like [ms]");
  std::vector<std::string> header;
  for (int i = 1; i <= 8; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow("", header);

  std::vector<std::string> counts;
  for (const auto& q : queries)
    counts.push_back(bench::Num(bench::TimeQuery(engines.turbo, q, 1).rows));
  bench::PrintRow("# of sol.", counts);

  struct Row {
    const char* name;
    const sparql::BgpSolver* solver;
  } rows[] = {
      {"TurboHOM++", &engines.turbo},
      {"SortMerge(RDF-3X-like)", &engines.sortmerge},
      {"IndexJoin(Sys-X-like)", &engines.indexjoin},
      {"TurboHOM(direct)", &engines.turbo_direct},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& q : queries) cells.push_back(bench::Ms(bench::TimeQuery(*row.solver, q).ms));
    bench::PrintRow(row.name, cells);
  }
  return 0;
}
