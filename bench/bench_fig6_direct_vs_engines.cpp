// Figure 6: the motivating experiment — the ORIGINAL TurboHOM (direct
// transformation, no type-aware transformation, no §4.3 optimizations)
// against the RDF engines on LUBM. Expected shape: TurboHOM already wins the
// short-running queries (ID-anchored, small exploration: Q1, Q3-Q5, Q7, Q8,
// Q10-Q13) but loses ground on the long-running exploration-heavy queries
// (Q2, Q6, Q9, Q14) — the observation that motivates TurboHOM++.
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {16});
  uint32_t n = scales.back();
  workload::LubmConfig cfg;
  cfg.num_universities = n;
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);

  engine::MatchOptions unoptimized;
  unoptimized.use_intersection = false;
  unoptimized.use_nlf = true;
  unoptimized.use_degree_filter = true;
  unoptimized.reuse_matching_order = false;

  graph::DataGraph direct = graph::DataGraph::Build(ds, graph::TransformMode::kDirect);
  baseline::TripleIndex index(ds);
  sparql::TurboBgpSolver turbohom(direct, ds.dict(), unoptimized);
  baseline::SortMergeBgpSolver sortmerge(index, ds.dict());
  baseline::IndexJoinBgpSolver indexjoin(index, ds.dict());
  std::printf("[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(), prep.ElapsedSeconds());

  auto queries = workload::LubmQueries();
  bench::PrintHeader("Figure 6: original TurboHOM (direct transf.) vs RDF engines [ms]");
  std::vector<std::string> header;
  for (int i = 1; i <= 14; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow("engine", header);

  struct Row {
    const char* name;
    const sparql::BgpSolver* solver;
  } rows[] = {
      {"TurboHOM(direct)", &turbohom},
      {"SortMerge(RDF-3X-like)", &sortmerge},
      {"IndexJoin(Sys-X-like)", &indexjoin},
  };
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& q : queries) cells.push_back(bench::Ms(bench::TimeQuery(*row.solver, q).ms));
    bench::PrintRow(row.name, cells);
  }
  return 0;
}
