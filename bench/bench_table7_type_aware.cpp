// Table 7: effect of the type-aware transformation — TurboHOM (direct
// transformation) vs TurboHOM++ (type-aware), both WITHOUT the §4.3
// optimizations, plus the performance-gain row. Expected shape: largest
// gains on Q6/Q14 (they become point-shaped), large on Q13 (better start
// vertex), modest on Q2 (~1.1-1.2x — the +INT optimization, measured in
// Figure 15, is what rescues Q2).
#include "bench_common.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {16});
  uint32_t n = scales.back();
  workload::LubmConfig cfg;
  cfg.num_universities = n;
  util::WallTimer prep;
  rdf::Dataset ds = workload::GenerateLubmClosed(cfg);

  // "Without optimizations": INT off, NLF on, DEG on, no order reuse
  // (the baseline configuration of §7.3).
  engine::MatchOptions noopt;
  noopt.use_intersection = false;
  noopt.use_nlf = true;
  noopt.use_degree_filter = true;
  noopt.reuse_matching_order = false;

  graph::DataGraph aware = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  graph::DataGraph direct = graph::DataGraph::Build(ds, graph::TransformMode::kDirect);
  sparql::TurboBgpSolver s_aware(aware, ds.dict(), noopt);
  sparql::TurboBgpSolver s_direct(direct, ds.dict(), noopt);
  std::printf("[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(), prep.ElapsedSeconds());

  auto queries = workload::LubmQueries();
  bench::PrintHeader("Table 7: effect of type-aware transformation, LUBM" +
                     std::to_string(n) + " [ms]");
  std::vector<std::string> header;
  for (int i = 1; i <= 14; ++i) header.push_back("Q" + std::to_string(i));
  bench::PrintRow("", header);

  std::vector<double> t_direct, t_aware;
  for (const auto& q : queries) t_direct.push_back(bench::TimeQuery(s_direct, q).ms);
  for (const auto& q : queries) t_aware.push_back(bench::TimeQuery(s_aware, q).ms);

  std::vector<std::string> row;
  for (double t : t_direct) row.push_back(bench::Ms(t));
  bench::PrintRow("Direct transf. (ms)", row);
  row.clear();
  for (double t : t_aware) row.push_back(bench::Ms(t));
  bench::PrintRow("Type-aware (ms)", row);
  row.clear();
  for (size_t i = 0; i < queries.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", t_aware[i] > 0 ? t_direct[i] / t_aware[i] : 0.0);
    row.push_back(buf);
  }
  bench::PrintRow("Performance gain", row);
  return 0;
}
