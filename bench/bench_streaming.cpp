// Streaming-cursor bench: time-to-first-row and peak buffered rows for the
// solution-heavy LUBM queries, materialized vs producer-thread streaming
// over the bounded delivery channel.
//
// The two metrics the channel architecture exists for:
//   * ttfr_ms — a materialized cursor cannot return its first row until the
//     whole enumeration finishes; a streaming cursor returns it as soon as
//     the first solution reaches the channel;
//   * peak_buffered — materialized mode holds every delivered row at once,
//     streaming holds at most channel_capacity rows in flight (plus any
//     sort/group operator buffers).
//
// With BENCH_JSON=<path> the run emits the machine-tagged report consumed by
// bench/compare_results.py; bench/results/streaming.json is the checked-in
// reference-VM baseline. Entries are named LUBM<n>/Q<i>/{materialized,
// streaming<cap>} with metrics ttfr_ms / ms / rows / peak_buffered /
// peak_channel.
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

constexpr uint32_t kCapacity = 64;

struct Measured {
  double ttfr_ms = 0;        ///< Open + first Next
  double ms = 0;             ///< Open + full drain
  size_t rows = 0;
  uint64_t peak_buffered = 0;  ///< Cursor::peak_buffered_rows
  uint64_t peak_channel = 0;   ///< Cursor::peak_channel_rows
};

Measured TimeDrain(const sparql::QueryEngine& engine, const std::string& query,
                   const sparql::ExecOptions& opts, int reps) {
  Measured result;
  std::vector<double> ttfr, total;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t;
    auto cursor = engine.Open(query, opts);
    size_t rows = 0;
    double first = 0;
    if (cursor.ok()) {
      sparql::Row row;
      if (cursor.value().Next(&row)) {
        first = t.ElapsedMillis();
        rows = 1;
        while (cursor.value().Next(&row)) ++rows;
      } else {
        first = t.ElapsedMillis();
      }
      result.peak_buffered = cursor.value().peak_buffered_rows();
      result.peak_channel = cursor.value().peak_channel_rows();
    }
    double ms = t.ElapsedMillis();
    result.rows = rows;
    ttfr.push_back(first);
    total.push_back(ms);
    if (ms > 2000 && i == 0) break;
  }
  auto trimmed_mean = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    if (v.size() >= 3) {
      double sum = 0;
      for (size_t i = 1; i + 1 < v.size(); ++i) sum += v[i];
      return sum / (v.size() - 2);
    }
    double sum = 0;
    for (double x : v) sum += x;
    return sum / v.size();
  };
  result.ttfr_ms = trimmed_mean(ttfr);
  result.ms = trimmed_mean(total);
  return result;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {2, 8});
  auto queries = workload::LubmQueries();
  const int reps = bench::RepsFromEnv();
  // The increasing-solution queries of §7.2 (1-based indices): the ones
  // where an unbounded cursor actually streams for a while.
  const int increasing[] = {2, 6, 9, 13, 14};

  bench::BenchReport report;
  report.bench = "bench_streaming";
  report.machine = bench::MachineTag();
  report.config["channel_capacity"] = std::to_string(kCapacity);
  report.config["reps"] = std::to_string(reps);

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());
    sparql::QueryEngine engine(std::move(ds));

    bench::PrintHeader("streaming vs materialized: time-to-first-row [ms]");
    bench::PrintRow("query", {"mat ttfr", "strm ttfr", "mat peak", "strm peak",
                              "chan peak", "rows"});
    for (int qi : increasing) {
      const std::string& query = queries[qi - 1];
      Measured mat = TimeDrain(engine, query, {}, reps);
      sparql::ExecOptions opts;
      opts.streaming = true;
      opts.channel_capacity = kCapacity;
      Measured strm = TimeDrain(engine, query, opts, reps);

      bench::PrintRow("Q" + std::to_string(qi),
                      {bench::Ms(mat.ttfr_ms), bench::Ms(strm.ttfr_ms),
                       bench::Num(mat.peak_buffered), bench::Num(strm.peak_buffered),
                       bench::Num(strm.peak_channel), bench::Num(strm.rows)});

      const std::string strm_tag = "streaming" + std::to_string(kCapacity);
      for (const auto& [tag, m] :
           {std::pair<std::string, const Measured&>{"materialized", mat},
            std::pair<std::string, const Measured&>{strm_tag, strm}}) {
        bench::BenchResult res;
        res.name = "LUBM" + std::to_string(n) + "/Q" + std::to_string(qi) + "/" + tag;
        res.metrics["ttfr_ms"] = m.ttfr_ms;
        res.metrics["ms"] = m.ms;
        res.metrics["rows"] = static_cast<double>(m.rows);
        res.metrics["peak_buffered"] = static_cast<double>(m.peak_buffered);
        res.metrics["peak_channel"] = static_cast<double>(m.peak_channel);
        report.results.push_back(std::move(res));
      }
    }
  }
  bench::MaybeWriteJson(report);
  return 0;
}
