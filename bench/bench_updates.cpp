// Live-update benchmark for the store subsystem: measures the three costs
// the delta design trades between — update ingestion throughput, the read
// overhead of the delta overlay (vs. the delta-empty fast path, which routes
// straight to the engine's native solver), and the synchronous compaction
// pause that folds the delta back into the base.
//
// Phases per LUBM scale:
//   1. read-baseline/<q>  — queries with the delta empty (native solver).
//   2. updates            — batches of INSERT DATA (new entities through the
//                           term overlay) plus DELETE DATA of base triples
//                           (tombstones), timed end to end.
//   3. read-delta/<q>     — the same queries with the delta populated
//                           (overlay solver; scan = base − tombstones ∪ delta).
//   4. compact            — synchronous Compact(): pause ms + resulting base.
//   5. read-compacted/<q> — queries again; results must match read-delta.
//
// Rows, epochs, delta sizes, tombstone counts, and base triple counts are
// machine-independent; the nightly same-runner gate asserts them exactly
// while ms stays report-only across machines (compare_results.py).
//
// Env: LUBM_SCALES (default 1), UPDATE_BATCHES (default 64), BENCH_REPS,
// BENCH_JSON.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "store/live_store.hpp"
#include "util/timer.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

constexpr const char* kUb =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> ";

struct ReadQuery {
  const char* name;
  std::string text;
};

std::vector<ReadQuery> ReadQueries() {
  return {
      {"grad-students", std::string(kUb) +
                            "SELECT ?x WHERE { ?x a ub:GraduateStudent . }"},
      {"grad-courses",
       std::string(kUb) +
           "SELECT ?x ?y WHERE { ?x a ub:GraduateStudent . "
           "?x ub:takesCourse ?y . }"},
      {"suborg-pairs",
       std::string(kUb) +
           "SELECT ?x ?y WHERE { ?x ub:subOrganizationOf ?y . }"},
      {"live-edges", "SELECT ?x ?y WHERE { ?x <http://bench/follows> ?y . }"},
  };
}

struct Timed {
  double ms = 0;
  size_t rows = 0;
};

Timed TimeRead(const store::LiveStore& store, const std::string& query, int reps) {
  Timed result;
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    util::WallTimer t;
    auto cursor = store.Open(query, {});
    size_t rows = 0;
    if (cursor.ok()) {
      sparql::Row row;
      while (cursor.value().Next(&row)) ++rows;
    }
    double ms = t.ElapsedMillis();
    const util::Status& st = cursor.ok() ? cursor.value().status() : cursor.status();
    if (!st.ok()) {
      std::fprintf(stderr, "query error: %s\n", st.message().c_str());
      return result;
    }
    result.rows = rows;
    times.push_back(ms);
    if (ms > 2000 && i == 0) break;
  }
  std::sort(times.begin(), times.end());
  if (times.size() >= 3) {
    double sum = 0;
    for (size_t i = 1; i + 1 < times.size(); ++i) sum += times[i];
    result.ms = sum / (times.size() - 2);
  } else {
    double sum = 0;
    for (double t : times) sum += t;
    result.ms = sum / times.size();
  }
  return result;
}

void RunReads(const std::string& tag, const store::LiveStore& store, int reps,
              bench::BenchReport* report) {
  bench::PrintRow("query", {"ms", "rows"});
  for (const ReadQuery& q : ReadQueries()) {
    Timed m = TimeRead(store, q.text, reps);
    bench::PrintRow(q.name, {bench::Ms(m.ms), bench::Num(m.rows)});
    bench::BenchResult res;
    res.name = tag + "/" + q.name;
    res.metrics["ms"] = m.ms;
    res.metrics["rows"] = static_cast<double>(m.rows);
    report->results.push_back(std::move(res));
  }
}

/// Collects IRI→IRI base triples to retract (tombstone fodder) by querying
/// the store itself, so the delete text is scale-derived, not hand-listed.
std::vector<std::string> CollectBaseDeletes(const store::LiveStore& store,
                                            size_t want) {
  std::vector<std::string> out;
  auto snap = store.snapshot();
  auto cursor = store.Open(
      std::string(kUb) + "SELECT ?x ?y WHERE { ?x ub:subOrganizationOf ?y . }", {});
  if (!cursor.ok()) return out;
  sparql::Row row;
  const auto& dict = snap->dict();
  const char* pred = "<http://swat.cse.lehigh.edu/onto/univ-bench.owl#subOrganizationOf>";
  while (out.size() < want && cursor.value().Next(&row)) {
    const rdf::Term& s = dict.term(row[0]);
    const rdf::Term& o = dict.term(row[1]);
    out.push_back("<" + s.lexical + "> " + pred + " <" + o.lexical + "> .");
  }
  return out;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {1});
  const int reps = bench::RepsFromEnv();
  size_t batches = 64;
  if (const char* env = std::getenv("UPDATE_BATCHES"))
    batches = std::strtoull(env, nullptr, 10);

  bench::BenchReport report;
  report.bench = "bench_updates";
  report.machine = bench::MachineTag();
  report.config["reps"] = std::to_string(reps);
  report.config["batches"] = std::to_string(batches);

  for (uint32_t n : scales) {
    const std::string tag = "LUBM" + std::to_string(n);
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    std::printf("\n[%s: %zu triples, prep %.1fs]\n", tag.c_str(), ds.size(),
                prep.ElapsedSeconds());
    store::LiveStore store(std::move(ds));

    bench::PrintHeader(tag + ": reads, delta empty (native solver)");
    RunReads(tag + "/read-baseline", store, reps, &report);

    // Tombstone fodder: one base retraction per batch.
    std::vector<std::string> deletes = CollectBaseDeletes(store, batches);

    bench::PrintHeader(tag + ": update ingestion");
    size_t inserted = 0, deleted = 0;
    util::WallTimer upd;
    for (size_t b = 0; b < batches; ++b) {
      // 8 inserts per batch: fresh entities through the term overlay, chained
      // so the live-edges query has join work to do.
      std::string text = "INSERT DATA { ";
      for (int i = 0; i < 8; ++i) {
        size_t id = b * 8 + i;
        text += "<http://bench/u" + std::to_string(id) + "> <http://bench/follows> " +
                "<http://bench/u" + std::to_string(id / 2) + "> . ";
      }
      text += "}";
      if (b < deletes.size()) text += " ; DELETE DATA { " + deletes[b] + " }";
      auto result = store.Update(text);
      if (!result.ok()) {
        std::fprintf(stderr, "update error: %s\n", result.message().c_str());
        return 1;
      }
      inserted += result.value().inserted;
      deleted += result.value().deleted;
    }
    double upd_ms = upd.ElapsedMillis();
    store::LiveStore::Stats stats = store.stats();
    double per_sec = upd_ms > 0 ? 1000.0 * static_cast<double>(batches) / upd_ms : 0;
    bench::PrintRow("batches", {bench::Num(batches), "", ""});
    bench::PrintRow("total-ms", {bench::Ms(upd_ms)});
    bench::PrintRow("updates/sec", {bench::Ms(per_sec)});
    bench::PrintRow("delta", {bench::Num(stats.delta_adds), bench::Num(stats.tombstones)});
    {
      bench::BenchResult res;
      res.name = tag + "/updates";
      res.metrics["ms"] = upd_ms;
      res.metrics["updates_per_sec"] = per_sec;
      res.metrics["batches"] = static_cast<double>(batches);
      res.metrics["triples_inserted"] = static_cast<double>(inserted);
      res.metrics["triples_deleted"] = static_cast<double>(deleted);
      res.metrics["epoch"] = static_cast<double>(stats.epoch);
      res.metrics["delta_adds"] = static_cast<double>(stats.delta_adds);
      res.metrics["tombstones"] = static_cast<double>(stats.tombstones);
      report.results.push_back(std::move(res));
    }

    bench::PrintHeader(tag + ": reads, delta populated (overlay solver)");
    RunReads(tag + "/read-delta", store, reps, &report);

    bench::PrintHeader(tag + ": compaction");
    util::WallTimer pause;
    if (auto st = store.Compact(); !st.ok()) {
      std::fprintf(stderr, "compact error: %s\n", st.message().c_str());
      return 1;
    }
    double pause_ms = pause.ElapsedMillis();
    stats = store.stats();
    bench::PrintRow("pause-ms", {bench::Ms(pause_ms)});
    bench::PrintRow("base-triples", {bench::Num(stats.base_triples)});
    {
      bench::BenchResult res;
      res.name = tag + "/compact";
      res.metrics["ms"] = pause_ms;
      res.metrics["base_triples"] = static_cast<double>(stats.base_triples);
      res.metrics["compactions"] = static_cast<double>(stats.compactions);
      res.metrics["delta_adds"] = static_cast<double>(stats.delta_adds);
      res.metrics["tombstones"] = static_cast<double>(stats.tombstones);
      report.results.push_back(std::move(res));
    }

    bench::PrintHeader(tag + ": reads, post-compaction (native solver)");
    RunReads(tag + "/read-compacted", store, reps, &report);
  }

  bench::MaybeWriteJson(report);
  return 0;
}
