// LIMIT pushdown micro-bench: for the increasing-solution LUBM queries
// (Q2/Q6/Q9/Q13/Q14 — the ones whose answer grows with scale), compare a
// full enumeration against a 10-row cursor budget through the QueryEngine
// streaming API. The budget propagates a stop into SubgraphSearch, so both
// elapsed time AND enumeration work (starting vertices tried, solutions
// produced) should collapse; before the stop-aware pipeline the only way to
// get 10 rows was to materialize everything and truncate.
//
// With BENCH_JSON=<path> the run emits the machine-tagged report consumed by
// bench/compare_results.py; bench/results/limit_pushdown.json is the
// checked-in reference-VM baseline. Entries are named
// LUBM<n>/Q<i>/{full,limit10} with metrics ms / rows / starts / solutions.
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "workload/lubm.hpp"

using namespace turbo;

namespace {

constexpr uint64_t kBudget = 10;

struct Measured {
  double ms = 0;
  size_t rows = 0;
  uint64_t starts = 0;      ///< MatchStats::num_start_candidates
  uint64_t solutions = 0;   ///< MatchStats::num_solutions
};

Measured TimeCursor(const sparql::QueryEngine& engine, const std::string& query,
                    const sparql::ExecOptions& opts, int reps) {
  Measured result;
  std::vector<double> times;
  const sparql::TurboBgpSolver* solver = engine.turbo_solver();
  for (int i = 0; i < reps; ++i) {
    solver->ResetStats();
    util::WallTimer t;
    auto cursor = engine.Open(query, opts);
    size_t rows = 0;
    if (cursor.ok()) {
      sparql::Row row;
      while (cursor.value().Next(&row)) ++rows;
    }
    double ms = t.ElapsedMillis();
    result.rows = rows;
    result.starts = solver->last_stats().num_start_candidates;
    result.solutions = solver->last_stats().num_solutions;
    times.push_back(ms);
    if (ms > 2000 && i == 0) break;
  }
  if (times.size() >= 3) {
    std::sort(times.begin(), times.end());
    double sum = 0;
    for (size_t i = 1; i + 1 < times.size(); ++i) sum += times[i];
    result.ms = sum / (times.size() - 2);
  } else {
    double sum = 0;
    for (double t : times) sum += t;
    result.ms = sum / times.size();
  }
  return result;
}

}  // namespace

int main() {
  auto scales = bench::ScalesFromEnv("LUBM_SCALES", {2, 8});
  auto queries = workload::LubmQueries();
  const int reps = bench::RepsFromEnv();
  // The increasing-solution queries of §7.2 (1-based indices).
  const int increasing[] = {2, 6, 9, 13, 14};

  bench::BenchReport report;
  report.bench = "bench_limit_pushdown";
  report.machine = bench::MachineTag();
  report.config["budget"] = std::to_string(kBudget);
  report.config["reps"] = std::to_string(reps);

  for (uint32_t n : scales) {
    workload::LubmConfig cfg;
    cfg.num_universities = n;
    util::WallTimer prep;
    rdf::Dataset ds = workload::GenerateLubmClosed(cfg);
    std::printf("\n[LUBM%u: %zu triples, prep %.1fs]\n", n, ds.size(),
                prep.ElapsedSeconds());
    sparql::QueryEngine engine(std::move(ds));

    bench::PrintHeader("LIMIT pushdown: full enumeration vs " +
                       std::to_string(kBudget) + "-row cursor budget [ms]");
    bench::PrintRow("query", {"full ms", "limit ms", "speedup", "full starts",
                              "limit starts", "full rows"});
    for (int qi : increasing) {
      const std::string& query = queries[qi - 1];
      Measured full = TimeCursor(engine, query, {}, reps);
      sparql::ExecOptions budget;
      budget.limit_budget = kBudget;
      Measured limited = TimeCursor(engine, query, budget, reps);

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    limited.ms > 0 ? full.ms / limited.ms : 0.0);
      bench::PrintRow("Q" + std::to_string(qi),
                      {bench::Ms(full.ms), bench::Ms(limited.ms), speedup,
                       bench::Num(full.starts), bench::Num(limited.starts),
                       bench::Num(full.rows)});

      for (const auto& [tag, m] :
           {std::pair<const char*, const Measured&>{"full", full},
            std::pair<const char*, const Measured&>{"limit10", limited}}) {
        bench::BenchResult res;
        res.name = "LUBM" + std::to_string(n) + "/Q" + std::to_string(qi) + "/" + tag;
        res.metrics["ms"] = m.ms;
        res.metrics["rows"] = static_cast<double>(m.rows);
        res.metrics["starts"] = static_cast<double>(m.starts);
        res.metrics["solutions"] = static_cast<double>(m.solutions);
        report.results.push_back(std::move(res));
      }
    }
  }
  bench::MaybeWriteJson(report);
  return 0;
}
