// Machine-tagged JSON emission for the bench harnesses, so every perf PR
// can ship a measured before/after delta instead of a claim.
//
// A driver fills a BenchReport (one BenchResult per table cell, with named
// numeric metrics) and calls MaybeWriteJson(): when the BENCH_JSON
// environment variable names a path, the report — stamped with a machine
// tag (host, CPU, cores, compiler, build flavour) and the driver's config —
// is serialized there. bench/compare_results.py diffs two such files;
// bench/results/ holds the checked-in baselines. FromJson() is a strict
// parser for exactly this schema so the round-trip is testable under CTest
// (tests/bench_json_test.cpp) and the compare script's input format can't
// silently drift.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace turbo::bench {

/// One measured entry, e.g. {"LUBM8/Q2/TurboHOM++", {{"ms",1.2},{"rows",42}}}.
struct BenchResult {
  std::string name;
  std::map<std::string, double> metrics;

  bool operator==(const BenchResult& o) const = default;
};

struct BenchReport {
  std::string bench;                           ///< driver name
  std::map<std::string, std::string> machine;  ///< MachineTag()
  std::map<std::string, std::string> config;   ///< driver knobs (scales, toggles)
  std::vector<BenchResult> results;

  bool operator==(const BenchReport& o) const = default;

  std::string ToJson() const;
  /// Strict parse of ToJson()'s schema. Returns false and sets `err` on any
  /// deviation (unknown key, wrong type, trailing garbage).
  static bool FromJson(const std::string& text, BenchReport* out, std::string* err);
};

/// Host / CPU / compiler fingerprint embedded in every report, so baselines
/// from different machines are never silently compared as equals.
inline std::map<std::string, std::string> MachineTag() {
  std::map<std::string, std::string> tag;
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0]) tag["host"] = host;
  struct utsname un;
  if (uname(&un) == 0) {
    tag["os"] = std::string(un.sysname) + " " + un.release;
    tag["arch"] = un.machine;
  }
#endif
  if (!tag.count("host")) tag["host"] = "unknown";
  tag["cores"] = std::to_string(std::thread::hardware_concurrency());
  {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      auto pos = line.find("model name");
      if (pos == std::string::npos) continue;
      pos = line.find(':');
      if (pos == std::string::npos) break;
      pos = line.find_first_not_of(" \t", pos + 1);
      if (pos != std::string::npos) tag["cpu"] = line.substr(pos);
      break;
    }
  }
#if defined(__clang__)
  tag["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  tag["compiler"] = std::string("gcc ") + __VERSION__;
#else
  tag["compiler"] = "unknown";
#endif
#if defined(NDEBUG)
  tag["build"] = "opt";
#else
  tag["build"] = "debug";
#endif
  return tag;
}

namespace json_detail {

inline void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendNumber(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

inline void AppendStringMap(std::string* out, const std::map<std::string, std::string>& m,
                            const char* indent) {
  *out += "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += indent;
    AppendEscaped(out, k);
    *out += ": ";
    AppendEscaped(out, v);
  }
  *out += first ? "}" : "\n  }";
}

/// Tiny strict JSON reader for the BenchReport schema.
class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text) {}

  bool Fail(const std::string& why) {
    err_ = why + " at offset " + std::to_string(pos_);
    return false;
  }
  const std::string& err() const { return err_; }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return Fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return Fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("bad \\u escape");
          }
          if (code > 0x7f) return Fail("non-ASCII \\u escape unsupported");
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipWs();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return Fail("expected number");
    char* end = nullptr;
    std::string tok = s_.substr(start, pos_ - start);
    *out = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0') return Fail("malformed number");
    return true;
  }

  bool ParseStringMap(std::map<std::string, std::string>* out) {
    if (!Consume('{')) return false;
    out->clear();
    if (Peek('}')) return Consume('}');
    while (true) {
      std::string k, v;
      if (!ParseString(&k) || !Consume(':') || !ParseString(&v)) return false;
      (*out)[k] = v;
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseMetricMap(std::map<std::string, double>* out) {
    if (!Consume('{')) return false;
    out->clear();
    if (Peek('}')) return Consume('}');
    while (true) {
      std::string k;
      double v = 0;
      if (!ParseString(&k) || !Consume(':') || !ParseNumber(&v)) return false;
      (*out)[k] = v;
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume('}');
    }
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
  std::string err_;
};

}  // namespace json_detail

inline std::string BenchReport::ToJson() const {
  std::string out = "{\n  \"bench\": ";
  json_detail::AppendEscaped(&out, bench);
  out += ",\n  \"machine\": ";
  json_detail::AppendStringMap(&out, machine, "    ");
  out += ",\n  \"config\": ";
  json_detail::AppendStringMap(&out, config, "    ");
  out += ",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    json_detail::AppendEscaped(&out, results[i].name);
    out += ", \"metrics\": {";
    bool first = true;
    for (const auto& [k, v] : results[i].metrics) {
      if (!first) out += ", ";
      first = false;
      json_detail::AppendEscaped(&out, k);
      out += ": ";
      json_detail::AppendNumber(&out, v);
    }
    out += "}}";
  }
  out += results.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

inline bool BenchReport::FromJson(const std::string& text, BenchReport* out,
                                  std::string* err) {
  json_detail::Reader r(text);
  *out = {};
  bool ok = [&] {
    if (!r.Consume('{')) return false;
    bool saw_bench = false, saw_results = false;
    while (true) {
      std::string key;
      if (!r.ParseString(&key) || !r.Consume(':')) return false;
      if (key == "bench") {
        if (!r.ParseString(&out->bench)) return false;
        saw_bench = true;
      } else if (key == "machine") {
        if (!r.ParseStringMap(&out->machine)) return false;
      } else if (key == "config") {
        if (!r.ParseStringMap(&out->config)) return false;
      } else if (key == "results") {
        saw_results = true;
        if (!r.Consume('[')) return false;
        if (!r.Peek(']')) {
          while (true) {
            BenchResult res;
            if (!r.Consume('{')) return false;
            while (true) {
              std::string rk;
              if (!r.ParseString(&rk) || !r.Consume(':')) return false;
              if (rk == "name") {
                if (!r.ParseString(&res.name)) return false;
              } else if (rk == "metrics") {
                if (!r.ParseMetricMap(&res.metrics)) return false;
              } else {
                return r.Fail("unknown result key '" + rk + "'");
              }
              if (r.Peek(',')) {
                r.Consume(',');
                continue;
              }
              break;
            }
            if (!r.Consume('}')) return false;
            out->results.push_back(std::move(res));
            if (r.Peek(',')) {
              r.Consume(',');
              continue;
            }
            break;
          }
        }
        if (!r.Consume(']')) return false;
      } else {
        return r.Fail("unknown report key '" + key + "'");
      }
      if (r.Peek(',')) {
        r.Consume(',');
        continue;
      }
      break;
    }
    if (!r.Consume('}')) return false;
    if (!r.AtEnd()) return r.Fail("trailing garbage");
    if (!saw_bench || !saw_results) return r.Fail("missing required key");
    return true;
  }();
  if (!ok && err) *err = r.err().empty() ? "parse error" : r.err();
  return ok;
}

/// Writes `report` to the path named by $BENCH_JSON, if set. Returns true if
/// a file was written.
inline bool MaybeWriteJson(const BenchReport& report) {
  const char* path = std::getenv("BENCH_JSON");
  if (!path || !*path) return false;
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "BENCH_JSON: cannot open %s for writing\n", path);
    return false;
  }
  f << report.ToJson();
  f.flush();
  if (!f.good()) {
    std::fprintf(stderr, "BENCH_JSON: write to %s failed (disk full?)\n", path);
    return false;
  }
  std::printf("[bench json written to %s]\n", path);
  return true;
}

}  // namespace turbo::bench
