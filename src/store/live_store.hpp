// LiveStore: the live-update subsystem — SPARQL Update over the otherwise
// immutable engine, with epoch-based MVCC snapshots so readers are never
// blocked and never see a half-applied batch.
//
// Design (differential indexing à la RDF-3X, RCU-style publication):
//
//   * The *base* is a fully built QueryEngine over a compacted Dataset:
//     dictionary, inference closure, transformed graph / triple index. It is
//     immutable for its whole lifetime.
//   * Updates accumulate in a *delta*: an append-side triple list (with its
//     own six-permutation TripleIndex, rebuilt per batch — the delta is
//     small by construction) plus a *tombstone* set of deleted base triples.
//     Terms the base dictionary lacks intern into a shared *overlay*
//     (a LocalVocab whose ids start at dict.size()), so update-introduced
//     terms flow through the id-based Row pipeline like stored ones.
//   * Every applied batch publishes a new immutable Snapshot under a mutex
//     (epoch N+1). Readers pin the current snapshot at Open(): the cursor
//     holds shared_ptr ownership of everything the execution touches
//     (engine, delta index, tombstones, overlay), so a cursor opened before
//     an update keeps streaming epoch-N rows byte-for-byte unchanged while
//     epoch N+1 serves new cursors. No reader ever takes the write lock.
//   * Compaction folds the delta into a fresh Dataset (base minus tombstones
//     plus adds, overlay terms re-interned in id order so triple ids carry
//     over verbatim), rebuilds the engine, and publishes an empty-delta
//     snapshot. It runs on a background thread once the delta crosses
//     Config::compact_threshold (or synchronously via Compact()). Old
//     epochs drain naturally as their cursors close.
//
// Consistency contract: inference is not incremental. Inserted triples are
// visible raw (plus whatever the base closure already entailed); deleting a
// triple does not retract inferences derived from it. Compaction carries the
// base's inferred region (minus tombstoned triples) unless
// Config::reinfer_on_compact re-runs the reasoner over the merged data.
// Within one update request, DELETE DATA applies before INSERT DATA
// (SPARQL 1.1 modify order); across requests, updates serialize.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rdf/reasoner.hpp"
#include "sparql/query_engine.hpp"
#include "store/delta_solver.hpp"

namespace turbo::store {

class LiveStore {
 public:
  struct Config {
    sparql::QueryEngine::Config engine;
    /// Delta size (adds + tombstones) that triggers background compaction;
    /// 0 disables the background compactor (Compact() stays available).
    size_t compact_threshold = 0;
    /// Re-run the forward chainer over the merged data at compaction instead
    /// of carrying the previous closure minus tombstones.
    bool reinfer_on_compact = false;
    rdf::ReasonerOptions reasoner{};
  };

  /// One immutable epoch. Readers pin it via shared_ptr; everything a
  /// cursor can touch is reachable (and kept alive) from here.
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const sparql::QueryEngine> engine;
    /// Base triple index for delta-overlay scans; null while the delta is
    /// empty (built lazily at the first update after a compaction).
    std::shared_ptr<const baseline::TripleIndex> base_index;
    std::shared_ptr<const std::vector<rdf::Triple>> adds;
    std::shared_ptr<const TombstoneSet> tombstones;
    std::shared_ptr<const baseline::TripleIndex> delta_index;
    /// Shared term overlay; ids in [engine->dict().size(), overlay_limit)
    /// are visible to this epoch.
    std::shared_ptr<const sparql::LocalVocab> overlay;
    TermId overlay_limit = 0;
    /// Non-null iff the delta is non-empty: the solver serving this epoch's
    /// BGPs (base minus tombstones, union delta). Null means the engine's
    /// native solver serves reads with zero overlay overhead.
    std::shared_ptr<const DeltaOverlaySolver> overlay_solver;

    bool has_delta() const { return overlay_solver != nullptr; }
    size_t delta_adds() const { return adds ? adds->size() : 0; }
    size_t tombstone_count() const { return tombstones ? tombstones->size() : 0; }
    const rdf::Dictionary& dict() const { return engine->dict(); }
    const sparql::BgpSolver& solver() const {
      return has_delta() ? static_cast<const sparql::BgpSolver&>(*overlay_solver)
                         : engine->solver();
    }
  };

  struct UpdateResult {
    uint64_t epoch = 0;      ///< epoch the batch published
    size_t inserted = 0;     ///< triples that became visible (were absent)
    size_t deleted = 0;      ///< triples that became invisible (were present)
    size_t delta_adds = 0;   ///< delta size after the batch
    size_t tombstones = 0;   ///< tombstone count after the batch
  };

  struct Stats {
    uint64_t epoch = 0;
    uint64_t updates_applied = 0;
    uint64_t compactions = 0;
    size_t delta_adds = 0;
    size_t tombstones = 0;
    size_t overlay_terms = 0;
    size_t base_triples = 0;  ///< compacted dataset size (original + inferred)
  };

  /// Takes the (not yet inference-closed, unless the caller closed it)
  /// dataset and builds the initial epoch-0 engine.
  explicit LiveStore(rdf::Dataset dataset);
  LiveStore(rdf::Dataset dataset, Config config);
  /// As above, but hands a prebuilt DataGraph (a snapshot's "GRPH" section)
  /// to the epoch-0 engine; see QueryEngine's prebuilt constructor for the
  /// adoption rules. Compactions rebuild from the config as usual.
  LiveStore(rdf::Dataset dataset, Config config,
            std::unique_ptr<graph::DataGraph> prebuilt);
  ~LiveStore();

  LiveStore(const LiveStore&) = delete;
  LiveStore& operator=(const LiveStore&) = delete;

  // ---- Read side (thread-safe, never blocks on writers). ----

  /// Parse + plan once. Plans depend only on the query text (never the
  /// dictionary), so a PreparedQuery stays valid across epochs; Open
  /// resolves constants against the epoch it pins.
  util::Result<sparql::PreparedQuery> Prepare(const std::string& text) const;

  /// Pins the current snapshot and opens a cursor over it. The cursor holds
  /// the snapshot (ExecOptions::pin) until destruction, so concurrent
  /// updates and compactions never invalidate it.
  util::Result<sparql::Cursor> Open(const sparql::PreparedQuery& prepared,
                                    sparql::ExecOptions opts = {}) const;
  util::Result<sparql::Cursor> Open(const std::string& text,
                                    sparql::ExecOptions opts = {}) const;

  /// Opens a cursor over an explicitly pinned snapshot (the HTTP endpoint
  /// pins once per request so the X-Epoch header and row formatting agree).
  static util::Result<sparql::Cursor> OpenAt(std::shared_ptr<const Snapshot> snap,
                                             const sparql::PreparedQuery& prepared,
                                             sparql::ExecOptions opts = {});

  /// The current epoch's snapshot (cheap: one mutex-guarded shared_ptr copy).
  std::shared_ptr<const Snapshot> snapshot() const;
  uint64_t epoch() const { return snapshot()->epoch; }

  // ---- Write side (serialized on an internal write mutex). ----

  /// Applies a parsed update batch atomically and publishes a new epoch.
  /// Set semantics: inserting a present triple or deleting an absent one is
  /// a no-op (counted in neither `inserted` nor `deleted`).
  util::Result<UpdateResult> Apply(const sparql::UpdateRequest& request);

  /// Parses SPARQL Update text (INSERT DATA / DELETE DATA) and applies it.
  util::Result<UpdateResult> Update(const std::string& text);

  /// Folds the delta into a freshly built base engine and publishes an
  /// empty-delta epoch. Runs synchronously; no-op when there is nothing to
  /// fold. Readers on older epochs are unaffected.
  util::Status Compact();

  Stats stats() const;

 private:
  void Publish(std::shared_ptr<const Snapshot> snap);
  util::Status CompactLocked();
  void CompactorLoop();

  Config cfg_;

  mutable std::mutex snap_mu_;          // guards snap_ pointer swaps only
  std::shared_ptr<const Snapshot> snap_;

  std::mutex write_mu_;  // serializes Apply/Compact; never taken by readers
  // Mutated only under write_mu_; snapshots hold const views.
  std::shared_ptr<sparql::LocalVocab> overlay_;
  std::shared_ptr<const baseline::TripleIndex> base_index_;  // lazy, per base

  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> compactions_{0};

  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_requested_ = false;
  bool stop_ = false;
  std::thread compactor_;
};

}  // namespace turbo::store
