// DeltaOverlaySolver: BGP evaluation over an epoch snapshot of the live
// store — the union of the immutable base (six-permutation TripleIndex over
// the compacted Dataset) and the epoch's delta (a second TripleIndex over
// update-appended triples), minus the epoch's tombstone set. This is the
// RDF-3X differential-indexing shape: the base index never changes, the
// delta index is rebuilt per update batch (it is small by construction —
// compaction folds it into the base), and deletes are filtered at scan time.
//
// Constants resolve against the dictionary first and then against the
// store's term overlay (ids in [dict.size(), overlay_limit) — terms
// introduced by updates since the last compaction). Ids at or above
// overlay_limit belong to later epochs and resolve to nothing here.
//
// The join strategy is the IndexJoinBgpSolver's: selectivity-ordered greedy
// pattern order, depth-first index nested-loop probe, kStop unwinding. The
// baselines' behaviour over an empty delta is bit-identical, which is what
// the solver cross-check tests assert.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "baseline/triple_index.hpp"
#include "rdf/triple.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"

namespace turbo::store {

using TombstoneSet = std::unordered_set<rdf::Triple, rdf::TripleHash>;

class DeltaOverlaySolver : public sparql::BgpSolver {
 public:
  /// All shared state is owned by the epoch snapshot that owns this solver;
  /// `dict` must outlive it (the snapshot pins the engine that owns it).
  DeltaOverlaySolver(const rdf::Dictionary& dict,
                     std::shared_ptr<const baseline::TripleIndex> base,
                     std::shared_ptr<const baseline::TripleIndex> delta,
                     std::shared_ptr<const TombstoneSet> tombstones,
                     std::shared_ptr<const sparql::LocalVocab> overlay,
                     TermId overlay_limit)
      : dict_(dict),
        base_(std::move(base)),
        delta_(std::move(delta)),
        tombstones_(std::move(tombstones)),
        overlay_(std::move(overlay)),
        overlay_limit_(overlay_limit) {}

  util::Status Evaluate(const std::vector<sparql::TriplePattern>& bgp,
                        const sparql::VarRegistry& vars, const sparql::Row& bound,
                        const std::vector<const sparql::FilterExpr*>& pushable,
                        const sparql::RowSink& emit,
                        const sparql::EvalControl& control = {}) const override;

  const rdf::Dictionary& dict() const override { return dict_; }

 private:
  const rdf::Dictionary& dict_;
  std::shared_ptr<const baseline::TripleIndex> base_;
  std::shared_ptr<const baseline::TripleIndex> delta_;
  std::shared_ptr<const TombstoneSet> tombstones_;
  std::shared_ptr<const sparql::LocalVocab> overlay_;
  TermId overlay_limit_;
};

}  // namespace turbo::store
