#include "store/live_store.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "rdf/loader.hpp"
#include "sparql/parser.hpp"

namespace turbo::store {

LiveStore::LiveStore(rdf::Dataset dataset) : LiveStore(std::move(dataset), Config()) {}

LiveStore::LiveStore(rdf::Dataset dataset, Config config)
    : LiveStore(std::move(dataset), std::move(config), nullptr) {}

LiveStore::LiveStore(rdf::Dataset dataset, Config config,
                     std::unique_ptr<graph::DataGraph> prebuilt)
    : cfg_(std::move(config)) {
  auto engine = std::make_shared<const sparql::QueryEngine>(
      std::move(dataset), cfg_.engine, std::move(prebuilt));
  overlay_ =
      std::make_shared<sparql::LocalVocab>(static_cast<TermId>(engine->dict().size()));
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 0;
  snap->overlay = overlay_;
  snap->overlay_limit = static_cast<TermId>(engine->dict().size());
  snap->engine = std::move(engine);
  snap_ = std::move(snap);
  if (cfg_.compact_threshold > 0) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
}

LiveStore::~LiveStore() {
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

std::shared_ptr<const LiveStore::Snapshot> LiveStore::snapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snap_;
}

void LiveStore::Publish(std::shared_ptr<const Snapshot> snap) {
  std::lock_guard<std::mutex> lk(snap_mu_);
  snap_ = std::move(snap);
}

util::Result<sparql::PreparedQuery> LiveStore::Prepare(const std::string& text) const {
  return snapshot()->engine->Prepare(text);
}

util::Result<sparql::Cursor> LiveStore::Open(const sparql::PreparedQuery& prepared,
                                             sparql::ExecOptions opts) const {
  return OpenAt(snapshot(), prepared, std::move(opts));
}

util::Result<sparql::Cursor> LiveStore::Open(const std::string& text,
                                             sparql::ExecOptions opts) const {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return OpenAt(snapshot(), prepared.value(), std::move(opts));
}

util::Result<sparql::Cursor> LiveStore::OpenAt(std::shared_ptr<const Snapshot> snap,
                                               const sparql::PreparedQuery& prepared,
                                               sparql::ExecOptions opts) {
  if (!prepared.valid()) return util::Status::Error("query was not prepared");
  // The cursor's vocab chains to the epoch's overlay: update-introduced term
  // ids resolve like stored ones, cursor-computed values intern above
  // overlay_limit, and VALUES/BIND constants join against overlay terms.
  opts.vocab =
      std::make_shared<sparql::LocalVocab>(snap->overlay_limit, snap->overlay);
  const sparql::BgpSolver& solver = snap->solver();
  opts.pin = std::move(snap);  // cursor keeps the whole epoch alive
  return sparql::OpenCursor(solver, prepared, opts);
}

util::Result<LiveStore::UpdateResult> LiveStore::Apply(
    const sparql::UpdateRequest& request) {
  std::lock_guard<std::mutex> wl(write_mu_);
  std::shared_ptr<const Snapshot> cur = snapshot();
  const rdf::Dictionary& dict = cur->engine->dict();

  // Base membership is needed for dedup on both paths; build the base index
  // lazily (first update after a compaction) and reuse it across batches.
  if (!base_index_) {
    base_index_ =
        std::make_shared<const baseline::TripleIndex>(*cur->engine->dataset());
  }
  auto base_has = [&](const rdf::Triple& t) {
    return !base_index_->Lookup(t.s, t.p, t.o).empty();
  };

  std::vector<rdf::Triple> adds = cur->adds ? *cur->adds : std::vector<rdf::Triple>{};
  TombstoneSet tombs = cur->tombstones ? *cur->tombstones : TombstoneSet{};
  std::unordered_set<rdf::Triple, rdf::TripleHash> adds_set(adds.begin(), adds.end());

  size_t inserted = 0, deleted = 0;

  // DELETE DATA first (SPARQL 1.1 modify order), then INSERT DATA.
  for (const auto& tr : request.delete_triples) {
    TermId ids[3];
    bool known = true;
    for (int i = 0; i < 3 && known; ++i) {
      if (auto id = dict.Find(tr[i])) {
        ids[i] = *id;
      } else if (auto oid = overlay_->FindId(tr[i])) {
        ids[i] = *oid;
      } else {
        known = false;  // term never seen: the triple cannot exist
      }
    }
    if (!known) continue;
    rdf::Triple t{ids[0], ids[1], ids[2]};
    if (adds_set.erase(t) > 0) {
      adds.erase(std::remove(adds.begin(), adds.end(), t), adds.end());
      ++deleted;
      continue;
    }
    // Tombstones only ever hold base triples (delete-of-add handled above).
    if (base_has(t) && tombs.insert(t).second) ++deleted;
  }
  for (const auto& tr : request.insert_triples) {
    TermId ids[3];
    for (int i = 0; i < 3; ++i) {
      if (auto id = dict.Find(tr[i])) {
        ids[i] = *id;
      } else {
        ids[i] = overlay_->Intern(tr[i]);
      }
    }
    rdf::Triple t{ids[0], ids[1], ids[2]};
    if (tombs.erase(t) > 0) {
      ++inserted;  // resurrected base triple
      continue;
    }
    if (base_has(t)) continue;  // already present
    if (adds_set.insert(t).second) {
      adds.push_back(t);
      ++inserted;
    }
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = cur->epoch + 1;
  snap->engine = cur->engine;
  snap->overlay = overlay_;
  snap->overlay_limit = static_cast<TermId>(dict.size() + overlay_->size());
  if (!adds.empty() || !tombs.empty()) {
    snap->base_index = base_index_;
    snap->adds = std::make_shared<const std::vector<rdf::Triple>>(std::move(adds));
    snap->tombstones = std::make_shared<const TombstoneSet>(std::move(tombs));
    snap->delta_index = std::make_shared<const baseline::TripleIndex>(
        std::vector<rdf::Triple>(*snap->adds));
    snap->overlay_solver = std::make_shared<const DeltaOverlaySolver>(
        dict, snap->base_index, snap->delta_index, snap->tombstones, snap->overlay,
        snap->overlay_limit);
  }
  UpdateResult result{snap->epoch, inserted, deleted, snap->delta_adds(),
                      snap->tombstone_count()};
  Publish(std::move(snap));
  updates_applied_.fetch_add(1, std::memory_order_relaxed);

  if (cfg_.compact_threshold > 0 &&
      result.delta_adds + result.tombstones >= cfg_.compact_threshold) {
    {
      std::lock_guard<std::mutex> lk(compact_mu_);
      compact_requested_ = true;
    }
    compact_cv_.notify_one();
  }
  return result;
}

util::Result<LiveStore::UpdateResult> LiveStore::Update(const std::string& text) {
  auto request = sparql::ParseUpdate(text);
  if (!request.ok()) return request.status();
  return Apply(request.value());
}

util::Status LiveStore::Compact() {
  std::lock_guard<std::mutex> wl(write_mu_);
  return CompactLocked();
}

util::Status LiveStore::CompactLocked() {
  std::shared_ptr<const Snapshot> cur = snapshot();
  if (!cur->has_delta() && overlay_->size() == 0) return util::Status::Ok();

  const rdf::Dataset* old = cur->engine->dataset();
  const rdf::Dictionary& odict = old->dict();

  rdf::Dataset merged;
  merged.dict() = odict;  // the dictionary is copyable by design
  // Re-intern overlay terms in id order: GetOrAdd assigns ids sequentially
  // from dict.size(), so every delta triple's term ids carry over verbatim
  // into the merged dataset while it is assembled (the frequency re-rank
  // below rewrites everything in one pass at the end).
  const size_t overlay_terms = overlay_->size();
  for (size_t i = 0; i < overlay_terms; ++i) {
    const rdf::Term* t = overlay_->Find(static_cast<TermId>(odict.size() + i));
    merged.dict().GetOrAdd(*t);
  }

  static const TombstoneSet kNoTombs;
  const TombstoneSet& tombs = cur->tombstones ? *cur->tombstones : kNoTombs;

  std::vector<rdf::Triple> originals;
  originals.reserve(old->num_original() + cur->delta_adds());
  for (size_t i = 0; i < old->num_original(); ++i) {
    const rdf::Triple& t = old->triples()[i];
    if (tombs.count(t) == 0) originals.push_back(t);
  }
  if (cur->adds) originals.insert(originals.end(), cur->adds->begin(), cur->adds->end());
  if (auto st = merged.AppendOriginal(originals); !st.ok()) return st;

  if (cfg_.reinfer_on_compact) {
    rdf::MaterializeInference(&merged, cfg_.reasoner);
  } else {
    // Carry the previous closure (minus tombstoned inferred triples).
    std::vector<rdf::Triple> inferred;
    for (size_t i = old->num_original(); i < old->triples().size(); ++i) {
      const rdf::Triple& t = old->triples()[i];
      if (tombs.count(t) == 0) inferred.push_back(t);
    }
    merged.AppendInferred(inferred);
  }

  // Re-rank the merged dataset into the frequency-split id layout: overlay
  // terms earned real occurrence counts while living in the delta, and
  // compaction is the one point where every triple is rewritten anyway, so
  // hot overlay terms (new predicates, new types, hubs) fold into the dense
  // low-id band instead of accreting at the tail forever. Pinned-epoch
  // readers stay byte-stable — they hold the previous snapshot and its
  // engine, whose ids never move; only the *next* epoch sees the new ids,
  // and its engine, overlay limit, and plan-cache entries are all rebuilt
  // below.
  rdf::RerankDatasetByFrequency(&merged);

  auto engine =
      std::make_shared<const sparql::QueryEngine>(std::move(merged), cfg_.engine);
  overlay_ =
      std::make_shared<sparql::LocalVocab>(static_cast<TermId>(engine->dict().size()));
  base_index_.reset();  // rebuilt lazily on the next update

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = cur->epoch + 1;
  snap->overlay = overlay_;
  snap->overlay_limit = static_cast<TermId>(engine->dict().size());
  snap->engine = std::move(engine);
  Publish(std::move(snap));
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return util::Status::Ok();
}

void LiveStore::CompactorLoop() {
  std::unique_lock<std::mutex> lk(compact_mu_);
  for (;;) {
    compact_cv_.wait(lk, [&] { return stop_ || compact_requested_; });
    if (stop_) return;
    compact_requested_ = false;
    lk.unlock();
    Compact();
    lk.lock();
  }
}

LiveStore::Stats LiveStore::stats() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  Stats s;
  s.epoch = snap->epoch;
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.delta_adds = snap->delta_adds();
  s.tombstones = snap->tombstone_count();
  s.overlay_terms = snap->overlay ? snap->overlay->size() : 0;
  s.base_triples = snap->engine->dataset()->size();
  return s;
}

}  // namespace turbo::store
