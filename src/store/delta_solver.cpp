#include "store/delta_solver.hpp"

#include <functional>

namespace turbo::store {

namespace {

using sparql::EmitResult;
using sparql::EvalControl;
using sparql::PatternTerm;
using sparql::Row;
using sparql::RowSink;
using sparql::TriplePattern;
using sparql::VarRegistry;

/// Amortized cancellation probe (same cadence as the baseline solvers).
class ControlTicker {
 public:
  explicit ControlTicker(const EvalControl& control) : control_(control) {}
  util::Status Tick() {
    if ((++count_ & 0xFFF) == 0) return control_.Check();
    return util::Status::Ok();
  }

 private:
  const EvalControl& control_;
  uint64_t count_ = 0;
};

/// One position of a resolved pattern: a constant term id or a variable
/// index (constants include variables pre-bound by the executor).
struct Slot {
  TermId term = kInvalidId;
  int var = -1;

  bool is_var() const { return var >= 0; }
};

struct ResolvedPattern {
  Slot s, p, o;
};

/// Binds a triple's component into `row`; false on conflict with an
/// existing binding (repeated variables).
bool Bind(Row* row, const Slot& slot, TermId value, std::vector<int>* newly) {
  if (!slot.is_var()) return slot.term == value;
  TermId& cell = (*row)[slot.var];
  if (cell == kInvalidId) {
    cell = value;
    newly->push_back(slot.var);
    return true;
  }
  return cell == value;
}

}  // namespace

util::Status DeltaOverlaySolver::Evaluate(
    const std::vector<TriplePattern>& bgp, const VarRegistry& vars, const Row& bound,
    const std::vector<const sparql::FilterExpr*>& /*pushable: executor re-checks*/,
    const RowSink& emit, const EvalControl& control) const {
  // Resolve constants against the base dictionary, then the term overlay.
  // Overlay ids at or above overlay_limit_ were interned by updates later
  // than this snapshot's epoch: they cannot occur in this epoch's triples,
  // so a constant resolving there has zero results, same as an unknown term.
  auto find_id = [&](const rdf::Term& term) -> std::optional<TermId> {
    if (auto t = dict_.Find(term)) return t;
    if (overlay_) {
      if (auto t = overlay_->FindId(term); t && *t < overlay_limit_) return t;
    }
    return std::nullopt;
  };
  std::vector<ResolvedPattern> patterns;
  {
    auto slot = [&](const PatternTerm& pt, Slot* s) {
      if (pt.is_var()) {
        int vi = *vars.Find(pt.var);
        if (static_cast<size_t>(vi) < bound.size() && bound[vi] != kInvalidId) {
          s->term = bound[vi];
        } else {
          s->var = vi;
        }
        return true;
      }
      auto t = find_id(pt.term);
      if (!t) return false;
      s->term = *t;
      return true;
    };
    for (const TriplePattern& tp : bgp) {
      ResolvedPattern rp;
      if (!slot(tp.s, &rp.s) || !slot(tp.p, &rp.p) || !slot(tp.o, &rp.o))
        return util::Status::Ok();
      patterns.push_back(rp);
    }
  }
  if (patterns.empty()) {
    Row seed = bound;
    seed.resize(vars.size(), kInvalidId);
    emit(seed);
    return util::Status::Ok();
  }
  ControlTicker ticker(control);

  const bool filter_base = tombstones_ && !tombstones_->empty();

  // Merged scan: base range minus tombstones, then the delta range. The two
  // indexes are disjoint by the store's insert dedup (delta adds are never
  // base triples), so the union needs no dedup here.
  auto scan = [&](TermId s, TermId p, TermId o,
                  const std::function<EmitResult(const rdf::Triple&)>& fn) -> EmitResult {
    if (base_) {
      for (const rdf::Triple& t : base_->Lookup(s, p, o)) {
        if (filter_base && tombstones_->count(t)) continue;
        if (fn(t) == EmitResult::kStop) return EmitResult::kStop;
      }
    }
    if (delta_) {
      for (const rdf::Triple& t : delta_->Lookup(s, p, o)) {
        if (fn(t) == EmitResult::kStop) return EmitResult::kStop;
      }
    }
    return EmitResult::kContinue;
  };

  // Selectivity-ordered greedy plan, as in IndexJoinBgpSolver: repeatedly
  // take the cheapest pattern, preferring ones connected to bound variables.
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::vector<bool> var_bound(vars.size(), false);
  for (size_t i = 0; i < bound.size(); ++i)
    if (bound[i] != kInvalidId) var_bound[i] = true;

  auto estimate = [&](const ResolvedPattern& rp) {
    TermId s = rp.s.is_var() ? kInvalidId : rp.s.term;
    TermId p = rp.p.is_var() ? kInvalidId : rp.p.term;
    TermId o = rp.o.is_var() ? kInvalidId : rp.o.term;
    // Tombstones make this an overestimate for base ranges; fine for
    // ordering purposes.
    return (base_ ? base_->Count(s, p, o) : 0) + (delta_ ? delta_->Count(s, p, o) : 0);
  };
  auto connected = [&](const ResolvedPattern& rp) {
    for (const Slot* s : {&rp.s, &rp.p, &rp.o})
      if (s->is_var() && var_bound[s->var]) return true;
    return false;
  };
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = SIZE_MAX;
    bool best_conn = false;
    uint64_t best_cost = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      bool conn = connected(patterns[i]);
      uint64_t cost = estimate(patterns[i]);
      if (best == SIZE_MAX || (conn && !best_conn) ||
          (conn == best_conn && cost < best_cost)) {
        best = i;
        best_conn = conn;
        best_cost = cost;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Slot* s : {&patterns[best].s, &patterns[best].p, &patterns[best].o})
      if (s->is_var()) var_bound[s->var] = true;
  }

  Row row = bound;
  row.resize(vars.size(), kInvalidId);

  // Depth-first index nested-loop join over the merged scan; a kStop from
  // the sink (or a tripped control signal, surfaced via `abort_status`)
  // unwinds the whole probe.
  util::Status abort_status;
  std::function<EmitResult(size_t)> probe = [&](size_t depth) -> EmitResult {
    if (depth == order.size()) return emit(row);
    const ResolvedPattern& rp = patterns[order[depth]];
    auto value_of = [&](const Slot& s) {
      if (!s.is_var()) return s.term;
      return row[s.var];  // kInvalidId if still free
    };
    return scan(value_of(rp.s), value_of(rp.p), value_of(rp.o),
                [&](const rdf::Triple& t) -> EmitResult {
                  if (auto st = ticker.Tick(); !st.ok()) {
                    abort_status = st;
                    return EmitResult::kStop;
                  }
                  std::vector<int> newly;
                  EmitResult er = EmitResult::kContinue;
                  if (Bind(&row, rp.s, t.s, &newly) && Bind(&row, rp.p, t.p, &newly) &&
                      Bind(&row, rp.o, t.o, &newly)) {
                    er = probe(depth + 1);
                  }
                  for (int v : newly) row[v] = kInvalidId;
                  return er;
                });
  };
  probe(0);
  return abort_status;
}

}  // namespace turbo::store
