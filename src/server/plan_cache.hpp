// LRU cache of prepared plans, keyed by normalized query text. PreparedQuery
// is immutable after Prepare and cheap to copy (shared state), so the cache
// hands out copies under a short lock; Prepare on miss runs outside the lock
// — two threads racing the same cold query both plan it and the second
// insert wins, which is benign (identical plans) and keeps the lock off the
// parse/plan path.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sparql/query_engine.hpp"

namespace turbo::server {

/// Collapses whitespace runs to single spaces and trims, so reformatted
/// copies of one query (the common client behaviour) share a cache entry.
/// Deliberately not a semantic normalization — it never changes parse
/// results, only the cache key.
inline std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Lookup {
    util::Result<sparql::PreparedQuery> plan;
    bool hit = false;
  };

  /// Returns the cached plan for `text` or prepares (and caches) it.
  /// Prepare failures are returned but never cached — a malformed query must
  /// not pin an error entry, and retrying after a fix must re-plan.
  Lookup Get(const sparql::QueryEngine& engine, const std::string& text) {
    return Get([&engine](const std::string& t) { return engine.Prepare(t); }, text, 0);
  }

  /// Epoch-aware form for a live store: an entry planned at an older epoch
  /// is revalidated (re-prepared against the current epoch and replaced)
  /// instead of served — counted in revalidations(), not hits. Plans are
  /// AST-only today, so revalidation always yields an equivalent plan; the
  /// mechanism is what keeps that an implementation detail rather than a
  /// caching contract.
  Lookup Get(
      const std::function<util::Result<sparql::PreparedQuery>(const std::string&)>&
          prepare,
      const std::string& text, uint64_t epoch) {
    std::string key = NormalizeQueryText(text);
    bool stale = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        if (it->second->epoch == epoch) {
          lru_.splice(lru_.begin(), lru_, it->second);
          ++hits_;
          return {it->second->plan, true};
        }
        stale = true;
        ++revalidations_;
      } else {
        ++misses_;
      }
    }
    util::Result<sparql::PreparedQuery> plan = prepare(text);
    if (!plan.ok()) {
      if (stale) {
        // The stale entry must not be served to anyone else either.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = index_.find(key);
        if (it != index_.end() && it->second->epoch != epoch) {
          lru_.erase(it->second);
          index_.erase(it);
        }
      }
      return {std::move(plan), false};
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->plan = plan.value();
      it->second->epoch = epoch;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, plan.value(), epoch});
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
      }
    }
    return {std::move(plan), false};
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  /// Stale-epoch entries re-prepared in place (live-store servers only).
  uint64_t revalidations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return revalidations_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  struct Entry {
    std::string key;
    sparql::PreparedQuery plan;
    uint64_t epoch = 0;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t revalidations_ = 0;
};

}  // namespace turbo::server
