// LRU cache of prepared plans, keyed by normalized query text. PreparedQuery
// is immutable after Prepare and cheap to copy (shared state), so the cache
// hands out copies under a short lock; Prepare on miss runs outside the lock
// — two threads racing the same cold query both plan it and the second
// insert wins, which is benign (identical plans) and keeps the lock off the
// parse/plan path.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sparql/query_engine.hpp"

namespace turbo::server {

/// Collapses whitespace runs to single spaces and trims, so reformatted
/// copies of one query (the common client behaviour) share a cache entry.
/// Deliberately not a semantic normalization — it never changes parse
/// results, only the cache key.
inline std::string NormalizeQueryText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Lookup {
    util::Result<sparql::PreparedQuery> plan;
    bool hit = false;
  };

  /// Returns the cached plan for `text` or prepares (and caches) it.
  /// Prepare failures are returned but never cached — a malformed query must
  /// not pin an error entry, and retrying after a fix must re-plan.
  Lookup Get(const sparql::QueryEngine& engine, const std::string& text) {
    std::string key = NormalizeQueryText(text);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return {it->second->plan, true};
      }
      ++misses_;
    }
    util::Result<sparql::PreparedQuery> plan = engine.Prepare(text);
    if (!plan.ok()) return {std::move(plan), false};
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      lru_.push_front(Entry{key, plan.value()});
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
      }
    }
    return {std::move(plan), false};
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

 private:
  struct Entry {
    std::string key;
    sparql::PreparedQuery plan;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace turbo::server
