#include "server/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace turbo::server {
namespace {

// Hard input limits: a request that exceeds these is rejected rather than
// buffered — the endpoint serves queries, not uploads.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Appends socket data to `buf` until `delim` appears or `max` bytes are
/// buffered. Returns Ok with the delimiter position in *pos; "connection
/// closed" if the peer hung up with an empty buffer (clean keep-alive end).
util::Status ReadUntil(int fd, const std::string& delim, size_t max, std::string* buf,
                       size_t* pos) {
  for (;;) {
    size_t p = buf->find(delim);
    if (p != std::string::npos) {
      *pos = p;
      return util::Status::Ok();
    }
    if (buf->size() > max) return util::Status::Error("input too large");
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0)
      return util::Status::Error(buf->empty() ? "connection closed"
                                              : "truncated input");
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Error(std::string("recv: ") + std::strerror(errno));
    }
    buf->append(chunk, static_cast<size_t>(n));
  }
}

/// Ensures `buf` holds at least `need` bytes.
util::Status ReadExact(int fd, size_t need, size_t max, std::string* buf) {
  while (buf->size() < need) {
    if (need > max) return util::Status::Error("input too large");
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return util::Status::Error("truncated input");
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Error(std::string("recv: ") + std::strerror(errno));
    }
    buf->append(chunk, static_cast<size_t>(n));
  }
  return util::Status::Ok();
}

/// Parses "Name: value" header lines out of head[start..end) into `headers`.
void ParseHeaderLines(const std::string& head, size_t start,
                      std::map<std::string, std::string>* headers) {
  size_t pos = start;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    size_t colon = head.find(':', pos);
    if (colon != std::string::npos && colon < eol) {
      std::string name = ToLower(head.substr(pos, colon - pos));
      size_t v = colon + 1;
      while (v < eol && head[v] == ' ') ++v;
      (*headers)[name] = head.substr(v, eol - v);
    }
    pos = eol + 2;
  }
}

}  // namespace

const std::string& HttpRequest::param(const std::string& key) const {
  static const std::string kEmpty;
  auto it = params.find(key);
  return it == params.end() ? kEmpty : it->second;
}

const std::string& HttpRequest::header(const std::string& key) const {
  static const std::string kEmpty;
  auto it = headers.find(key);
  return it == headers.end() ? kEmpty : it->second;
}

std::string UrlDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && std::isxdigit((unsigned char)s[i + 1]) &&
               std::isxdigit((unsigned char)s[i + 2])) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void ParseFormParams(const std::string& s, std::map<std::string, std::string>* out) {
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t amp = s.find('&', pos);
    if (amp == std::string::npos) amp = s.size();
    size_t eq = s.find('=', pos);
    if (eq != std::string::npos && eq < amp)
      (*out)[UrlDecode(s.substr(pos, eq - pos))] = UrlDecode(s.substr(eq + 1, amp - eq - 1));
    else if (amp > pos)
      (*out)[UrlDecode(s.substr(pos, amp - pos))] = "";
    pos = amp + 1;
  }
}

util::Status ReadHttpRequest(int fd, HttpRequest* req, std::string* leftover) {
  *req = HttpRequest{};
  size_t head_end = 0;
  if (auto st = ReadUntil(fd, "\r\n\r\n", kMaxHeaderBytes, leftover, &head_end); !st.ok())
    return st;
  std::string head = leftover->substr(0, head_end);
  leftover->erase(0, head_end + 4);

  size_t line_end = head.find("\r\n");
  std::string request_line = head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1)
    return util::Status::Error("malformed request line");
  req->method = request_line.substr(0, sp1);
  req->target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line_end != std::string::npos)
    ParseHeaderLines(head, line_end + 2, &req->headers);

  size_t q = req->target.find('?');
  req->path = UrlDecode(req->target.substr(0, q));
  if (q != std::string::npos)
    ParseFormParams(req->target.substr(q + 1), &req->params);

  const std::string& cl = req->header("content-length");
  if (!cl.empty()) {
    char* end = nullptr;
    unsigned long long len = std::strtoull(cl.c_str(), &end, 10);
    if (end == cl.c_str() || *end != '\0' || len > kMaxBodyBytes)
      return util::Status::Error("bad content-length");
    if (auto st = ReadExact(fd, len, kMaxBodyBytes, leftover); !st.ok()) return st;
    req->body = leftover->substr(0, len);
    leftover->erase(0, len);
  }
  if (req->header("content-type").find("application/x-www-form-urlencoded") !=
      std::string::npos)
    ParseFormParams(req->body, &req->params);
  return util::Status::Ok();
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool HttpResponseWriter::Send(const char* data, size_t n) {
  if (failed_) return false;
  while (n > 0) {
    ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      failed_ = true;  // peer gone (EPIPE/ECONNRESET) or socket shut down
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool HttpResponseWriter::WriteSimple(int status, const std::string& content_type,
                                     const std::string& body,
                                     const std::map<std::string, std::string>& extra,
                                     bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + StatusReason(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: " + (keep_alive ? "keep-alive" : "close") + "\r\n";
  for (const auto& [k, v] : extra) head += k + ": " + v + "\r\n";
  head += "\r\n";
  return Send(head.data(), head.size()) && Send(body.data(), body.size());
}

bool HttpResponseWriter::BeginChunked(int status, const std::string& content_type,
                                      const std::map<std::string, std::string>& extra,
                                      const std::string& trailer_names, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + StatusReason(status) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nTransfer-Encoding: chunked\r\nConnection: " +
                     (keep_alive ? "keep-alive" : "close") + "\r\n";
  if (!trailer_names.empty()) head += "Trailer: " + trailer_names + "\r\n";
  for (const auto& [k, v] : extra) head += k + ": " + v + "\r\n";
  head += "\r\n";
  return Send(head.data(), head.size());
}

bool HttpResponseWriter::Chunk(const std::string& data) {
  if (data.empty()) return !failed_;
  char size_line[32];
  int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  return Send(size_line, static_cast<size_t>(n)) && Send(data.data(), data.size()) &&
         Send("\r\n", 2);
}

bool HttpResponseWriter::EndChunked(const std::map<std::string, std::string>& trailers) {
  std::string tail = "0\r\n";
  for (const auto& [k, v] : trailers) tail += k + ": " + v + "\r\n";
  tail += "\r\n";
  return Send(tail.data(), tail.size());
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

int DialLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

util::Status WriteHttpRequest(int fd, const std::string& method, const std::string& target,
                              const std::map<std::string, std::string>& headers,
                              const std::string& body) {
  std::string msg = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [k, v] : headers) msg += k + ": " + v + "\r\n";
  if (!body.empty() || method == "POST")
    msg += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  msg += "\r\n";
  msg += body;
  const char* data = msg.data();
  size_t n = msg.size();
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return util::Status::Error(std::string("send: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return util::Status::Ok();
}

bool WaitForResponseByte(int fd, std::string* leftover) {
  if (!leftover->empty()) return true;
  char c;
  for (;;) {
    ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 1) {
      leftover->push_back(c);
      return true;
    }
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

util::Status ReadHttpResponse(int fd, HttpResponse* resp, std::string* leftover) {
  *resp = HttpResponse{};
  size_t head_end = 0;
  if (auto st = ReadUntil(fd, "\r\n\r\n", kMaxHeaderBytes, leftover, &head_end); !st.ok())
    return st;
  std::string head = leftover->substr(0, head_end);
  leftover->erase(0, head_end + 4);

  size_t line_end = head.find("\r\n");
  std::string status_line = head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos) return util::Status::Error("malformed status line");
  resp->status = std::atoi(status_line.c_str() + sp + 1);
  if (line_end != std::string::npos)
    ParseHeaderLines(head, line_end + 2, &resp->headers);

  auto te = resp->headers.find("transfer-encoding");
  if (te != resp->headers.end() && te->second.find("chunked") != std::string::npos) {
    for (;;) {
      size_t eol = 0;
      if (auto st = ReadUntil(fd, "\r\n", kMaxHeaderBytes, leftover, &eol); !st.ok())
        return st;
      size_t chunk_len = std::strtoull(leftover->c_str(), nullptr, 16);
      leftover->erase(0, eol + 2);
      if (chunk_len == 0) break;
      if (auto st = ReadExact(fd, chunk_len + 2, kMaxBodyBytes + 2, leftover); !st.ok())
        return st;
      resp->body.append(*leftover, 0, chunk_len);
      leftover->erase(0, chunk_len + 2);  // chunk data + CRLF
    }
    // Trailer section: header lines until the blank line.
    size_t tend = 0;
    if (auto st = ReadUntil(fd, "\r\n", kMaxHeaderBytes, leftover, &tend); !st.ok())
      return st;
    while (tend != 0) {
      ParseHeaderLines(leftover->substr(0, tend + 2), 0, &resp->headers);
      leftover->erase(0, tend + 2);
      if (auto st = ReadUntil(fd, "\r\n", kMaxHeaderBytes, leftover, &tend); !st.ok())
        return st;
    }
    leftover->erase(0, 2);  // final blank line
    return util::Status::Ok();
  }

  auto cl = resp->headers.find("content-length");
  size_t len = cl == resp->headers.end() ? 0 : std::strtoull(cl->second.c_str(), nullptr, 10);
  if (auto st = ReadExact(fd, len, kMaxBodyBytes, leftover); !st.ok()) return st;
  resp->body = leftover->substr(0, len);
  leftover->erase(0, len);
  return util::Status::Ok();
}

util::Status HttpGet(uint16_t port, const std::string& target, HttpResponse* resp,
                     const std::map<std::string, std::string>& headers) {
  int fd = DialLocal(port);
  if (fd < 0) return util::Status::Error("connect failed");
  util::Status st = WriteHttpRequest(fd, "GET", target, headers);
  if (st.ok()) {
    std::string leftover;
    st = ReadHttpResponse(fd, resp, &leftover);
  }
  ::close(fd);
  return st;
}

}  // namespace turbo::server
