// SparqlServer: an HTTP SPARQL-protocol endpoint over one shared
// QueryEngine — the service front-end the streaming query API was built
// for. Zero external dependencies: raw POSIX sockets (server/http.hpp), a
// bounded worker pool, and the engine's own concurrency contract (any
// number of cursors in flight over one engine).
//
// Protocol surface:
//   GET  /sparql?query=...      — query via query string
//   POST /sparql                — form-urlencoded `query=` or a raw
//                                 application/sparql-query body
//   POST /update                — SPARQL Update (INSERT DATA / DELETE DATA)
//                                 as form-urlencoded `update=` or a raw
//                                 application/sparql-update body; requires
//                                 the live-store constructor (403 otherwise)
//   GET  /stats                 — JSON counters (requests, overload 503s,
//                                 plan-cache hits/misses/revalidations,
//                                 in-flight gauge; live stores add epoch /
//                                 delta / compaction counters)
//
// When built over a live store, every /sparql response carries an X-Epoch
// header naming the epoch the request pinned: rows are consistent with
// exactly that epoch regardless of concurrent updates, and cached plans are
// revalidated against it before use.
//
// Per-request execution controls (query parameters, with X- header
// equivalents): `limit` (delivered-row cap), `budget` / X-Row-Budget
// (pre-modifier row budget), `timeout-ms` / X-Timeout-Ms (deadline),
// `capacity` / X-Channel-Capacity (streaming channel), `format` = json|tsv
// (or Accept: text/tab-separated-values). Results stream with chunked
// transfer encoding, one fragment per delivered row, so time-to-first-byte
// tracks the cursor's first Next — not query completion.
//
// Status mapping: the first Next runs BEFORE the status line is committed,
// so early failures get real codes — 400 parse error (parser message in the
// body), 408 deadline before the first row, 500 other producer failures,
// 503 admission-control overload. Stops after streaming has begun are
// reported in-body (encoder footer) and in an X-Stop-Cause trailer.
//
// Threading: an acceptor thread hands accepted connections to a bounded
// pool of workers; each connection is owned by one worker for its keep-alive
// lifetime (thread-per-connection with a bounded pool). When the pool and
// the wait queue are both full, the acceptor answers 503 immediately rather
// than letting connections queue unbounded. A client that disconnects
// mid-stream fails the next chunk write; the worker abandons the cursor,
// which tears down the producer thread (no leak — the server tests assert
// this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "server/plan_cache.hpp"
#include "sparql/query_engine.hpp"
#include "util/status.hpp"

namespace turbo::store {
class LiveStore;
}

namespace turbo::server {

struct ServerConfig {
  uint16_t port = 0;   ///< 0 = any free port (read it back via port())
  int workers = 4;     ///< connection-serving threads (max concurrent conns)
  int queue_depth = 16;  ///< accepted connections awaiting a free worker
  size_t plan_cache_capacity = 64;
  /// Server-wide defaults, applied when a request names no tighter value.
  uint64_t default_timeout_ms = 0;  ///< 0 = no deadline
  uint64_t max_row_budget = sparql::kNoBudget;
  uint32_t default_channel_capacity = 64;
};

struct ServerStats {
  uint64_t requests = 0;           ///< /sparql requests fully dispatched
  uint64_t rejected_overload = 0;  ///< fast 503s from admission control
  uint64_t bad_requests = 0;       ///< 400s (malformed HTTP or query)
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_revalidations = 0;  ///< stale-epoch plans re-prepared
  uint64_t updates = 0;                   ///< /update requests applied
  uint32_t in_flight = 0;  ///< requests being served right now
};

class SparqlServer {
 public:
  /// The engine must outlive the server.
  SparqlServer(const sparql::QueryEngine* engine, ServerConfig config);
  /// Live-store form: queries pin an epoch snapshot per request (X-Epoch)
  /// and POST /update is enabled. The store must outlive the server.
  SparqlServer(store::LiveStore* store, ServerConfig config);
  ~SparqlServer();  ///< calls Stop()

  SparqlServer(const SparqlServer&) = delete;
  SparqlServer& operator=(const SparqlServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads.
  util::Status Start();
  /// Stops accepting, shuts down live connections, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const;
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace turbo::server
