// Streamed SPARQL result encoders: emit Header / one fragment per row /
// Footer strings the server hands to the chunked response writer, so a
// result is encoded row-by-row as the cursor delivers — never materialized.
//
// Two formats: SPARQL 1.1 JSON results (application/sparql-results+json) and
// TSV (text/tab-separated-values). When the stream stops early (deadline,
// row budget, cancel) the footer carries an in-body marker — a "stopped"
// member in JSON, a "# stopped: <cause>" comment line in TSV — because the
// status line and headers are long gone by then.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rdf/dictionary.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"

namespace turbo::server {

class ResultEncoder {
 public:
  virtual ~ResultEncoder() = default;

  virtual const char* content_type() const = 0;
  virtual std::string Header(const std::vector<std::string>& vars) = 0;
  virtual std::string EncodeRow(const std::vector<std::string>& vars,
                                const sparql::Row& row, const rdf::Dictionary& dict,
                                const sparql::LocalVocab* local) = 0;
  /// `cause` is kNone for a clean end of stream.
  virtual std::string Footer(sparql::StopCause cause) = 0;
};

/// `format` is "json" or "tsv"; anything else returns null.
std::unique_ptr<ResultEncoder> MakeResultEncoder(const std::string& format);

/// Escapes for a JSON string literal (no surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace turbo::server
