#include "server/sparql_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "graph/data_graph.hpp"
#include "server/http.hpp"
#include "server/result_encoder.hpp"
#include "sparql/parser.hpp"
#include "store/live_store.hpp"

namespace turbo::server {
namespace {

/// Accepted connections awaiting a worker. Unlike util::Channel this hands
/// rejected/undrained fds back to the caller — sockets must be closed, not
/// silently dropped. Admission counts idle workers: a connection is accepted
/// when a worker is waiting for it OR the wait queue has room, so
/// queue_depth = 0 means "serve up to `workers` connections, queue none".
class ConnQueue {
 public:
  explicit ConnQueue(size_t cap) : cap_(cap) {}

  /// False when saturated or closed — the acceptor answers 503 and closes.
  bool TryPush(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || fds_.size() >= cap_ + idle_) return false;
    fds_.push_back(fd);
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next connection; -1 once closed and drained.
  int Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ++idle_;
    ready_.wait(lock, [this] { return closed_ || !fds_.empty(); });
    --idle_;
    if (fds_.empty()) return -1;
    int fd = fds_.front();
    fds_.pop_front();
    return fd;
  }

  /// Closes the queue and returns any connections nobody will serve.
  std::vector<int> CloseAndDrain() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<int> rest(fds_.begin(), fds_.end());
    fds_.clear();
    ready_.notify_all();
    return rest;
  }

 private:
  const size_t cap_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<int> fds_;
  size_t idle_ = 0;  ///< workers parked in Pop, ready to take a connection
  bool closed_ = false;
};

uint64_t ParseU64(const std::string& s, uint64_t fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() ? fallback : v;
}

}  // namespace

struct SparqlServer::Impl {
  const sparql::QueryEngine* engine;      // null when serving a live store
  store::LiveStore* store = nullptr;      // null when serving a bare engine
  ServerConfig config;
  PlanCache plan_cache;
  ConnQueue queue;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  std::thread acceptor;
  std::vector<std::thread> workers;
  std::atomic<bool> stopping{false};
  bool started = false;

  // Connections currently owned by workers, so Stop() can shut them down
  // under a blocked read/write.
  std::mutex conns_mu;
  std::unordered_set<int> live_conns;

  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rejected_overload{0};
  std::atomic<uint64_t> bad_requests{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint32_t> in_flight{0};

  Impl(const sparql::QueryEngine* e, store::LiveStore* st, ServerConfig c)
      : engine(e),
        store(st),
        config(c),
        plan_cache(c.plan_cache_capacity),
        queue(static_cast<size_t>(c.queue_depth < 0 ? 0 : c.queue_depth)) {}

  void AcceptLoop() {
    for (;;) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed: Stop() is in progress
      }
      // Chunk frames are small writes; without TCP_NODELAY, Nagle + delayed
      // ACK turns every response tail into a ~40ms stall.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (stopping.load() || !queue.TryPush(fd)) {
        // Admission control: never let connections queue unbounded — tell
        // the client to back off now, while the answer is still cheap.
        rejected_overload.fetch_add(1, std::memory_order_relaxed);
        HttpResponseWriter w(fd);
        w.WriteSimple(503, "text/plain", "server overloaded\n", {}, /*keep_alive=*/false);
        ::close(fd);
      }
    }
  }

  void WorkerLoop() {
    for (;;) {
      int fd = queue.Pop();
      if (fd < 0) return;
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        live_conns.insert(fd);
      }
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> lock(conns_mu);
        live_conns.erase(fd);
      }
      ::close(fd);
    }
  }

  void ServeConnection(int fd) {
    std::string leftover;
    while (!stopping.load()) {
      HttpRequest req;
      util::Status st = ReadHttpRequest(fd, &req, &leftover);
      if (!st.ok()) {
        if (st.message() != "connection closed") {
          bad_requests.fetch_add(1, std::memory_order_relaxed);
          HttpResponseWriter(fd).WriteSimple(400, "text/plain", st.message() + "\n", {},
                                             false);
        }
        return;
      }
      in_flight.fetch_add(1, std::memory_order_relaxed);
      bool keep = Dispatch(fd, req);
      in_flight.fetch_sub(1, std::memory_order_relaxed);
      if (!keep) return;
    }
  }

  /// Returns whether the connection survives for another request.
  bool Dispatch(int fd, const HttpRequest& req) {
    bool keep_alive = req.header("connection") != "close";
    HttpResponseWriter w(fd);
    if (req.path == "/stats") {
      ServerStats s = Snapshot();
      std::string body =
          "{\"requests\":" + std::to_string(s.requests) +
          ",\"rejected_overload\":" + std::to_string(s.rejected_overload) +
          ",\"bad_requests\":" + std::to_string(s.bad_requests) +
          ",\"plan_cache\":{\"hits\":" + std::to_string(s.plan_cache_hits) +
          ",\"misses\":" + std::to_string(s.plan_cache_misses) +
          ",\"revalidations\":" + std::to_string(s.plan_cache_revalidations) +
          ",\"size\":" + std::to_string(plan_cache.size()) + "}";
      if (store) {
        store::LiveStore::Stats ls = store->stats();
        body += ",\"store\":{\"epoch\":" + std::to_string(ls.epoch) +
                ",\"updates_applied\":" + std::to_string(ls.updates_applied) +
                ",\"compactions\":" + std::to_string(ls.compactions) +
                ",\"delta_adds\":" + std::to_string(ls.delta_adds) +
                ",\"tombstones\":" + std::to_string(ls.tombstones) +
                ",\"overlay_terms\":" + std::to_string(ls.overlay_terms) +
                ",\"base_triples\":" + std::to_string(ls.base_triples) + "}";
        // Graph storage footprint (turbo engines only): the byte breakdown
        // DataGraph::MemoryUsage reports, so operators can compare plain vs
        // compressed adjacency without restarting under a profiler.
        if (const graph::DataGraph* g = store->snapshot()->engine->data_graph()) {
          graph::DataGraph::MemoryBreakdown m = g->MemoryUsage();
          body += std::string(",\"graph\":{\"storage\":\"") +
                  (g->compressed() ? "compressed" : "plain") +
                  "\",\"total_bytes\":" + std::to_string(m.total()) +
                  ",\"adjacency_bytes\":" + std::to_string(m.adjacency_total()) +
                  ",\"adjacency\":{\"groups\":" + std::to_string(m.adjacency_groups) +
                  ",\"neighbors\":" + std::to_string(m.adjacency_neighbors) +
                  ",\"compressed\":" + std::to_string(m.adjacency_compressed) +
                  ",\"skip_tables\":" + std::to_string(m.skip_tables) +
                  ",\"signatures\":" + std::to_string(m.signatures) + "}" +
                  ",\"vertex_labels\":" + std::to_string(m.vertex_labels) +
                  ",\"inverse_label_index\":" + std::to_string(m.inverse_label_index) +
                  ",\"predicate_index\":" + std::to_string(m.predicate_index) +
                  ",\"term_maps\":" + std::to_string(m.term_maps) +
                  ",\"schema\":" + std::to_string(m.schema) + "}";
        }
        // Dictionary layout: the frequency-split band + hot-term cache and
        // shard fill (see rdf/dictionary.hpp), next to the graph bytes they
        // shrink.
        {
          rdf::Dictionary::LayoutStats d =
              store->snapshot()->engine->dict().layout_stats();
          char load[96];
          std::snprintf(load, sizeof(load),
                        "{\"min\":%.3f,\"max\":%.3f,\"avg\":%.3f}",
                        d.shard_load_min, d.shard_load_max, d.shard_load_avg);
          body += ",\"dict\":{\"terms\":" + std::to_string(d.terms) +
                  ",\"hot_band\":" + std::to_string(d.hot_band) +
                  ",\"hot_cache_hits\":" + std::to_string(d.hot_hits) +
                  ",\"hot_cache_probes\":" + std::to_string(d.hot_probes) +
                  ",\"index_bytes\":" + std::to_string(d.index_bytes) +
                  ",\"shard_load\":" + load + "}";
        }
      }
      body += ",\"in_flight\":" + std::to_string(s.in_flight) + "}\n";
      return w.WriteSimple(200, "application/json", body, {}, keep_alive) && keep_alive;
    }
    if (req.path == "/update") {
      if (req.method != "POST") {
        bad_requests.fetch_add(1, std::memory_order_relaxed);
        return w.WriteSimple(405, "text/plain", "use POST\n", {}, keep_alive) &&
               keep_alive;
      }
      return HandleUpdate(&w, req, keep_alive) && keep_alive;
    }
    if (req.path != "/sparql") {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w.WriteSimple(404, "text/plain", "not found\n", {}, keep_alive) && keep_alive;
    }
    if (req.method != "GET" && req.method != "POST") {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w.WriteSimple(405, "text/plain", "use GET or POST\n", {}, keep_alive) &&
             keep_alive;
    }
    return HandleQuery(&w, req, keep_alive) && keep_alive;
  }

  bool HandleQuery(HttpResponseWriter* w, const HttpRequest& req, bool keep_alive) {
    requests.fetch_add(1, std::memory_order_relaxed);
    std::string query = req.param("query");
    if (query.empty() &&
        req.header("content-type").find("application/sparql-query") != std::string::npos)
      query = req.body;
    if (query.empty()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(400, "text/plain", "missing query\n", {}, keep_alive);
    }

    // Per-request execution controls, clamped to the server-wide caps.
    sparql::ExecOptions opts;
    opts.streaming = req.param("stream") != "0";
    opts.channel_capacity = static_cast<uint32_t>(ParseU64(
        !req.param("capacity").empty() ? req.param("capacity")
                                       : req.header("x-channel-capacity"),
        config.default_channel_capacity));
    opts.limit_budget = ParseU64(req.param("limit"), sparql::kNoBudget);
    opts.row_budget = std::min(
        config.max_row_budget,
        ParseU64(!req.param("budget").empty() ? req.param("budget")
                                              : req.header("x-row-budget"),
                 sparql::kNoBudget));
    uint64_t timeout_ms =
        ParseU64(!req.param("timeout-ms").empty() ? req.param("timeout-ms")
                                                  : req.header("x-timeout-ms"),
                 config.default_timeout_ms);
    if (timeout_ms > 0)
      opts.deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);

    std::string format = req.param("format");
    if (format.empty())
      format = req.header("accept").find("tab-separated") != std::string::npos ? "tsv"
                                                                               : "json";
    std::unique_ptr<ResultEncoder> enc = MakeResultEncoder(format);
    if (!enc) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(400, "text/plain", "unknown format (json|tsv)\n", {},
                            keep_alive);
    }

    // A live store pins one epoch snapshot for the whole request: the plan
    // is (re)validated against it, the cursor executes over it, and rows
    // format against its dictionary — all consistent with the X-Epoch the
    // response reports, regardless of concurrent updates.
    std::shared_ptr<const store::LiveStore::Snapshot> snap;
    if (store) snap = store->snapshot();

    PlanCache::Lookup looked =
        snap ? plan_cache.Get(
                   [&snap](const std::string& t) { return snap->engine->Prepare(t); },
                   query, snap->epoch)
             : plan_cache.Get(*engine, query);
    const char* cache_state = looked.hit ? "hit" : "miss";
    std::map<std::string, std::string> headers{{"X-Plan-Cache", cache_state}};
    if (snap) headers["X-Epoch"] = std::to_string(snap->epoch);
    if (!looked.plan.ok()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(400, "text/plain",
                            "parse error: " + looked.plan.message() + "\n", headers,
                            keep_alive);
    }
    auto cursor = snap ? store::LiveStore::OpenAt(snap, looked.plan.value(), opts)
                       : engine->Open(looked.plan.value(), opts);
    if (!cursor.ok())
      return w->WriteSimple(500, "text/plain", cursor.message() + "\n", headers,
                            keep_alive);
    sparql::Cursor& cur = cursor.value();

    // First Next before the status line commits: an early failure still
    // gets a real status code instead of a 200 that trails off.
    sparql::Row row;
    bool has_row = cur.Next(&row);
    if (!has_row && !cur.status().ok()) {
      int code = cur.stop_cause() == sparql::StopCause::kDeadline ? 408 : 500;
      return w->WriteSimple(code, "text/plain",
                            cur.status().message() + " (stop cause: " +
                                sparql::ToString(cur.stop_cause()) + ")\n",
                            headers, keep_alive);
    }

    if (!w->BeginChunked(200, enc->content_type(), headers, "X-Stop-Cause", keep_alive))
      return false;
    const std::vector<std::string>& vars = cur.var_names();
    std::shared_ptr<const sparql::LocalVocab> vocab = cur.local_vocab();
    const rdf::Dictionary& dict = snap ? snap->dict() : engine->dict();

    std::string buf = enc->Header(vars);
    // The first row flushes immediately (time-to-first-byte tracks the
    // cursor, not the batch); after that, batch up to ~8KB per chunk.
    bool first_flush = true;
    while (has_row) {
      buf += enc->EncodeRow(vars, row, dict, vocab.get());
      if (first_flush || buf.size() >= 8192) {
        first_flush = false;
        if (!w->Chunk(buf)) return false;  // client gone: abandon the cursor
        buf.clear();
      }
      has_row = cur.Next(&row);
    }
    sparql::StopCause cause = cur.stop_cause();
    buf += enc->Footer(cause);
    if (!w->Chunk(buf)) return false;
    return w->EndChunked({{"X-Stop-Cause", sparql::ToString(cause)}});
  }

  bool HandleUpdate(HttpResponseWriter* w, const HttpRequest& req, bool keep_alive) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (!store) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(403, "text/plain", "read-only endpoint (no live store)\n",
                            {}, keep_alive);
    }
    std::string text = req.param("update");
    if (text.empty() &&
        req.header("content-type").find("application/sparql-update") != std::string::npos)
      text = req.body;
    if (text.empty()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(400, "text/plain", "missing update\n", {}, keep_alive);
    }
    auto request = sparql::ParseUpdate(text);
    if (!request.ok()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return w->WriteSimple(400, "text/plain",
                            "parse error: " + request.message() + "\n", {}, keep_alive);
    }
    auto result = store->Apply(request.value());
    if (!result.ok())
      return w->WriteSimple(500, "text/plain", result.message() + "\n", {}, keep_alive);
    updates.fetch_add(1, std::memory_order_relaxed);
    const store::LiveStore::UpdateResult& r = result.value();
    std::string body = "{\"epoch\":" + std::to_string(r.epoch) +
                       ",\"inserted\":" + std::to_string(r.inserted) +
                       ",\"deleted\":" + std::to_string(r.deleted) +
                       ",\"delta_adds\":" + std::to_string(r.delta_adds) +
                       ",\"tombstones\":" + std::to_string(r.tombstones) + "}\n";
    return w->WriteSimple(200, "application/json", body,
                          {{"X-Epoch", std::to_string(r.epoch)}}, keep_alive);
  }

  ServerStats Snapshot() const {
    ServerStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
    s.bad_requests = bad_requests.load(std::memory_order_relaxed);
    s.plan_cache_hits = plan_cache.hits();
    s.plan_cache_misses = plan_cache.misses();
    s.plan_cache_revalidations = plan_cache.revalidations();
    s.updates = updates.load(std::memory_order_relaxed);
    s.in_flight = in_flight.load(std::memory_order_relaxed);
    return s;
  }
};

SparqlServer::SparqlServer(const sparql::QueryEngine* engine, ServerConfig config)
    : impl_(std::make_unique<Impl>(engine, nullptr, config)) {}

SparqlServer::SparqlServer(store::LiveStore* store, ServerConfig config)
    : impl_(std::make_unique<Impl>(nullptr, store, config)) {}

SparqlServer::~SparqlServer() { Stop(); }

util::Status SparqlServer::Start() {
  Impl& s = *impl_;
  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) return util::Status::Error("socket failed");
  int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.config.port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    return util::Status::Error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(s.listen_fd, 64) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    return util::Status::Error(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  s.bound_port = ntohs(addr.sin_port);

  int workers = s.config.workers < 1 ? 1 : s.config.workers;
  s.workers.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i)
    s.workers.emplace_back([this] { impl_->WorkerLoop(); });
  s.acceptor = std::thread([this] { impl_->AcceptLoop(); });
  s.started = true;
  return util::Status::Ok();
}

void SparqlServer::Stop() {
  Impl& s = *impl_;
  if (!s.started) return;  // idempotent (sequential calls; not a race-safe API)
  s.started = false;
  s.stopping.store(true);
  // shutdown() fails the blocked accept() and the acceptor exits; it must go
  // first so no new connections arrive below. The fd is closed only after
  // the join — the acceptor re-reads listen_fd each iteration, so clearing
  // it while that thread is live would race (and closing early could let a
  // recycled fd number reach accept()).
  if (s.listen_fd >= 0) ::shutdown(s.listen_fd, SHUT_RDWR);
  if (s.acceptor.joinable()) s.acceptor.join();
  if (s.listen_fd >= 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  for (int fd : s.queue.CloseAndDrain()) ::close(fd);  // nobody will serve these
  {
    // Kick workers out of blocked reads/writes on live connections. The fd
    // stays open (the worker closes it) — shutdown only fails the I/O.
    std::lock_guard<std::mutex> lock(s.conns_mu);
    for (int fd : s.live_conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : s.workers)
    if (t.joinable()) t.join();
  s.workers.clear();
}

uint16_t SparqlServer::port() const { return impl_->bound_port; }

ServerStats SparqlServer::stats() const { return impl_->Snapshot(); }

}  // namespace turbo::server
