// Zero-dependency HTTP/1.1 plumbing for the SPARQL endpoint: a blocking
// request parser and a chunked-capable response writer over raw POSIX
// sockets, plus the matching client side (used by the server tests and the
// load driver — the server itself never dials out).
//
// Scope is deliberately the protocol subset the SPARQL protocol needs:
// request line + headers + Content-Length bodies in, fixed or chunked
// transfer encoding (with trailers) out, keep-alive by default. No TLS, no
// HTTP/2, no request pipelining.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/status.hpp"

namespace turbo::server {

/// One parsed request. Header names are lower-cased; query-string and
/// form-urlencoded parameters are percent-decoded into `params`.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< raw request target, e.g. "/sparql?query=..."
  std::string path;    ///< target up to '?', percent-decoded
  std::map<std::string, std::string> params;   ///< decoded query parameters
  std::map<std::string, std::string> headers;  ///< lower-cased field names
  std::string body;

  /// Convenience: parameter value or empty string.
  const std::string& param(const std::string& key) const;
  /// Convenience: header value (lower-cased name) or empty string.
  const std::string& header(const std::string& key) const;
};

/// Percent-decodes `s` ('+' becomes space, as in form encoding).
std::string UrlDecode(const std::string& s);
/// Parses "a=1&b=x%20y" pairs into `out` (percent-decoded).
void ParseFormParams(const std::string& s, std::map<std::string, std::string>* out);

/// Reads one request from `fd`, blocking. `leftover` carries bytes read past
/// the previous request on a keep-alive connection; pass the same string for
/// every request on one connection. Returns an error on malformed input,
/// oversized input, or a closed/broken socket (message "connection closed"
/// when the peer hung up cleanly between requests).
util::Status ReadHttpRequest(int fd, HttpRequest* req, std::string* leftover);

/// Response writer over one socket. Either use WriteSimple (fixed-length,
/// one shot) or the streaming sequence BeginChunked → Chunk... → EndChunked.
/// Every write reports failure (peer gone) so callers can abandon work; once
/// a write fails the writer stays failed.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(int fd) : fd_(fd) {}

  /// Complete fixed-length response (status line, headers, body).
  bool WriteSimple(int status, const std::string& content_type,
                   const std::string& body,
                   const std::map<std::string, std::string>& extra_headers = {},
                   bool keep_alive = true);

  /// Starts a chunked response. `trailer_names` (comma-separated) announces
  /// trailers EndChunked will send.
  bool BeginChunked(int status, const std::string& content_type,
                    const std::map<std::string, std::string>& extra_headers = {},
                    const std::string& trailer_names = {}, bool keep_alive = true);
  /// Sends one chunk; empty data is a no-op (an empty chunk would terminate
  /// the stream mid-flight).
  bool Chunk(const std::string& data);
  /// Sends the terminating chunk and any trailers.
  bool EndChunked(const std::map<std::string, std::string>& trailers = {});

  bool failed() const { return failed_; }

 private:
  bool Send(const char* data, size_t n);

  int fd_;
  bool failed_ = false;
};

/// Standard reason phrase for the handful of status codes the server emits.
const char* StatusReason(int status);

// ---------------------------------------------------------------------------
// Client side (tests and the load driver).
// ---------------------------------------------------------------------------

/// One parsed response; chunked bodies arrive decoded, trailers merged into
/// `headers`.
struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lower-cased field names
  std::string body;
};

/// Connects to 127.0.0.1:`port`; returns the fd or -1.
int DialLocal(uint16_t port);

/// Writes one request. Adds Host and Content-Length.
util::Status WriteHttpRequest(int fd, const std::string& method,
                              const std::string& target,
                              const std::map<std::string, std::string>& headers = {},
                              const std::string& body = {});

/// Reads one response, decoding chunked transfer encoding. `leftover` plays
/// the same keep-alive role as in ReadHttpRequest.
util::Status ReadHttpResponse(int fd, HttpResponse* resp, std::string* leftover);

/// Blocks until at least one response byte is readable (time-to-first-byte
/// measurement hook: call after WriteHttpRequest, before ReadHttpResponse).
/// Returns false if the connection closed first.
bool WaitForResponseByte(int fd, std::string* leftover);

/// Convenience: dial, send one request, read one response, close.
util::Status HttpGet(uint16_t port, const std::string& target, HttpResponse* resp,
                     const std::map<std::string, std::string>& headers = {});

}  // namespace turbo::server
