#include "server/result_encoder.hpp"

#include <cstdio>

#include "rdf/term.hpp"

namespace turbo::server {
namespace {

using sparql::StopCause;

class JsonEncoder final : public ResultEncoder {
 public:
  const char* content_type() const override {
    return "application/sparql-results+json";
  }

  std::string Header(const std::vector<std::string>& vars) override {
    std::string out = "{\"head\":{\"vars\":[";
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i) out += ',';
      out += '"' + JsonEscape(vars[i]) + '"';
    }
    out += "]},\"results\":{\"bindings\":[\n";
    return out;
  }

  std::string EncodeRow(const std::vector<std::string>& vars, const sparql::Row& row,
                        const rdf::Dictionary& dict,
                        const sparql::LocalVocab* local) override {
    std::string out;
    if (first_) {
      first_ = false;
    } else {
      out += ",\n";
    }
    out += '{';
    bool any = false;
    for (size_t i = 0; i < vars.size() && i < row.size(); ++i) {
      if (row[i] == kInvalidId) continue;  // unbound: the var is omitted
      const rdf::Term* t = sparql::ResolveTerm(dict, local, row[i]);
      if (!t) continue;
      if (any) out += ',';
      any = true;
      out += '"' + JsonEscape(vars[i]) + "\":{\"type\":\"";
      switch (t->kind) {
        case rdf::TermKind::kIri: out += "uri"; break;
        case rdf::TermKind::kLiteral: out += "literal"; break;
        case rdf::TermKind::kBlank: out += "bnode"; break;
      }
      out += "\",\"value\":\"" + JsonEscape(t->lexical) + '"';
      if (!t->datatype.empty())
        out += ",\"datatype\":\"" + JsonEscape(t->datatype) + '"';
      if (!t->lang.empty()) out += ",\"xml:lang\":\"" + JsonEscape(t->lang) + '"';
      out += '}';
    }
    out += '}';
    return out;
  }

  std::string Footer(StopCause cause) override {
    std::string out = "\n]}";
    if (cause != StopCause::kNone)
      out += ",\"stopped\":\"" + std::string(sparql::ToString(cause)) + '"';
    out += "}\n";
    return out;
  }

 private:
  bool first_ = true;
};

class TsvEncoder final : public ResultEncoder {
 public:
  const char* content_type() const override { return "text/tab-separated-values"; }

  std::string Header(const std::vector<std::string>& vars) override {
    std::string out;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i) out += '\t';
      out += '?' + vars[i];
    }
    out += '\n';
    return out;
  }

  std::string EncodeRow(const std::vector<std::string>& vars, const sparql::Row& row,
                        const rdf::Dictionary& dict,
                        const sparql::LocalVocab* local) override {
    std::string out;
    for (size_t i = 0; i < vars.size() && i < row.size(); ++i) {
      if (i) out += '\t';
      if (row[i] == kInvalidId) continue;  // unbound: empty field
      const rdf::Term* t = sparql::ResolveTerm(dict, local, row[i]);
      if (t) out += t->ToNTriples();
    }
    out += '\n';
    return out;
  }

  std::string Footer(StopCause cause) override {
    if (cause == StopCause::kNone) return {};
    return std::string("# stopped: ") + sparql::ToString(cause) + '\n';
  }
};

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::unique_ptr<ResultEncoder> MakeResultEncoder(const std::string& format) {
  if (format == "json") return std::make_unique<JsonEncoder>();
  if (format == "tsv") return std::make_unique<TsvEncoder>();
  return nullptr;
}

}  // namespace turbo::server
