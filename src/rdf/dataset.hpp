// A Dataset bundles the dictionary with the triple list. Original triples
// come first; the reasoner appends inferred triples behind them and records
// the boundary, which is what lets the type-aware transformation expose both
// L(v) (full entailment) and L_simple(v) (simple entailment regime, §4.2).
#pragma once

#include <string>
#include <vector>

#include "rdf/dictionary.hpp"
#include "rdf/triple.hpp"

namespace turbo::rdf {

/// In-memory RDF dataset: dictionary + triples (original, then inferred).
class Dataset {
 public:
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Appends a triple of already-interned ids.
  void Add(TermId s, TermId p, TermId o) {
    triples_.push_back({s, p, o});
    if (!closed_) num_original_ = triples_.size();
  }
  /// Appends a triple of terms, interning as needed.
  void Add(const Term& s, const Term& p, const Term& o) {
    Add(dict_.GetOrAdd(s), dict_.GetOrAdd(p), dict_.GetOrAdd(o));
  }
  /// Convenience for all-IRI triples.
  void AddIri(const std::string& s, const std::string& p, const std::string& o) {
    Add(Term::Iri(s), Term::Iri(p), Term::Iri(o));
  }

  /// Marks the end of original triples; subsequent Adds are inferred triples.
  void BeginInferred() {
    num_original_ = triples_.size();
    closed_ = true;
  }

  const std::vector<Triple>& triples() const { return triples_; }
  std::vector<Triple>& mutable_triples() { return triples_; }
  size_t size() const { return triples_.size(); }
  size_t num_original() const { return closed_ ? num_original_ : triples_.size(); }
  bool IsInferred(size_t index) const { return closed_ && index >= num_original_; }

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
  size_t num_original_ = 0;
  bool closed_ = false;
};

}  // namespace turbo::rdf
