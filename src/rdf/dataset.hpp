// A Dataset bundles the dictionary with the triple list. Original triples
// come first; the reasoner appends inferred triples behind them and records
// the boundary, which is what lets the type-aware transformation expose both
// L(v) (full entailment) and L_simple(v) (simple entailment regime, §4.2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.hpp"
#include "rdf/triple.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// In-memory RDF dataset: dictionary + triples (original, then inferred).
class Dataset {
 public:
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Appends a triple of already-interned ids.
  void Add(TermId s, TermId p, TermId o) {
    triples_.push_back({s, p, o});
    if (!closed_) num_original_ = triples_.size();
  }

  /// Bulk-appends already-encoded triples into the *original* region. The
  /// boundary is explicit here: appending after BeginInferred() is an error
  /// (it would silently corrupt num_original()), not a side effect of a
  /// closed_ flag. The parallel load pipeline appends through this.
  util::Status AppendOriginal(std::span<const Triple> batch) {
    if (closed_)
      return util::Status::Error(
          "AppendOriginal: original region is closed (BeginInferred was called)");
    triples_.insert(triples_.end(), batch.begin(), batch.end());
    num_original_ = triples_.size();
    return util::Status::Ok();
  }

  /// Bulk-appends triples into the *inferred* region, closing the original
  /// region first if still open (the explicit counterpart of BeginInferred +
  /// Add; snapshot loading uses it to restore the saved boundary exactly).
  void AppendInferred(std::span<const Triple> batch) {
    if (!closed_) BeginInferred();
    triples_.insert(triples_.end(), batch.begin(), batch.end());
  }
  /// Appends a triple of terms, interning as needed.
  void Add(const Term& s, const Term& p, const Term& o) {
    Add(dict_.GetOrAdd(s), dict_.GetOrAdd(p), dict_.GetOrAdd(o));
  }
  /// Convenience for all-IRI triples.
  void AddIri(const std::string& s, const std::string& p, const std::string& o) {
    Add(Term::Iri(s), Term::Iri(p), Term::Iri(o));
  }

  /// Marks the end of original triples; subsequent Adds are inferred triples.
  void BeginInferred() {
    num_original_ = triples_.size();
    closed_ = true;
  }

  const std::vector<Triple>& triples() const { return triples_; }
  std::vector<Triple>& mutable_triples() { return triples_; }
  size_t size() const { return triples_.size(); }
  size_t num_original() const { return closed_ ? num_original_ : triples_.size(); }
  bool IsInferred(size_t index) const { return closed_ && index >= num_original_; }

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
  size_t num_original_ = 0;
  bool closed_ = false;
};

}  // namespace turbo::rdf
