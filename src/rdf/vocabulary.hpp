// Well-known RDF / RDFS / OWL vocabulary IRIs used by the transformations
// and the reasoner.
#pragma once

namespace turbo::rdf::vocab {

inline constexpr const char* kRdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfsSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr const char* kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr const char* kRdfsDomain = "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRdfsRange = "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr const char* kOwlTransitiveProperty =
    "http://www.w3.org/2002/07/owl#TransitiveProperty";
inline constexpr const char* kOwlInverseOf = "http://www.w3.org/2002/07/owl#inverseOf";
inline constexpr const char* kOwlClass = "http://www.w3.org/2002/07/owl#Class";
inline constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr const char* kXsdDouble = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr const char* kXsdString = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr const char* kXsdDate = "http://www.w3.org/2001/XMLSchema#date";

}  // namespace turbo::rdf::vocab
