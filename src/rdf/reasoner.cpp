#include "rdf/reasoner.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "rdf/vocabulary.hpp"

namespace turbo::rdf {

namespace {

/// Transitive closure of a small schema-level relation (class or property
/// hierarchy). Returns for each node the set of strict ancestors.
std::unordered_map<TermId, std::vector<TermId>> CloseHierarchy(
    const std::unordered_map<TermId, std::vector<TermId>>& direct) {
  std::unordered_map<TermId, std::vector<TermId>> closed;
  for (const auto& [node, _] : direct) {
    // Iterative DFS from node over `direct` edges.
    std::vector<TermId> stack = direct.at(node);
    std::unordered_set<TermId> seen;
    while (!stack.empty()) {
      TermId cur = stack.back();
      stack.pop_back();
      if (cur == node || !seen.insert(cur).second) continue;
      auto it = direct.find(cur);
      if (it != direct.end())
        for (TermId nxt : it->second) stack.push_back(nxt);
    }
    closed[node] = std::vector<TermId>(seen.begin(), seen.end());
  }
  return closed;
}

}  // namespace

ReasonerStats MaterializeInference(Dataset* dataset, const ReasonerOptions& options) {
  ReasonerStats stats;
  stats.original_triples = dataset->size();

  Dictionary& dict = dataset->dict();
  const TermId type_p = dict.GetOrAddIri(vocab::kRdfType);
  const TermId subclass_p = dict.GetOrAddIri(vocab::kRdfsSubClassOf);
  const TermId subprop_p = dict.GetOrAddIri(vocab::kRdfsSubPropertyOf);
  const TermId domain_p = dict.GetOrAddIri(vocab::kRdfsDomain);
  const TermId range_p = dict.GetOrAddIri(vocab::kRdfsRange);
  const TermId transitive_c = dict.GetOrAddIri(vocab::kOwlTransitiveProperty);
  const TermId inverse_p = dict.GetOrAddIri(vocab::kOwlInverseOf);

  // ---- Extract schema from original triples. ----
  std::unordered_map<TermId, std::vector<TermId>> subclass_direct;
  std::unordered_map<TermId, std::vector<TermId>> subprop_direct;
  std::unordered_map<TermId, std::vector<TermId>> domains;   // p -> classes
  std::unordered_map<TermId, std::vector<TermId>> ranges;    // p -> classes
  std::unordered_map<TermId, std::vector<TermId>> inverses;  // p -> qs
  std::unordered_set<TermId> transitive_props;

  for (const Triple& t : dataset->triples()) {
    if (t.p == subclass_p) subclass_direct[t.s].push_back(t.o);
    else if (t.p == subprop_p) subprop_direct[t.s].push_back(t.o);
    else if (t.p == domain_p) domains[t.s].push_back(t.o);
    else if (t.p == range_p) ranges[t.s].push_back(t.o);
    else if (t.p == type_p && t.o == transitive_c) transitive_props.insert(t.s);
    else if (t.p == inverse_p) {
      inverses[t.s].push_back(t.o);
      inverses[t.o].push_back(t.s);
    }
  }

  auto subclass_closed = options.subclass_inheritance
                             ? CloseHierarchy(subclass_direct)
                             : std::unordered_map<TermId, std::vector<TermId>>{};
  auto subprop_closed = options.subproperty_inheritance
                            ? CloseHierarchy(subprop_direct)
                            : std::unordered_map<TermId, std::vector<TermId>>{};

  // Class-definition rules indexed by premise predicate.
  std::unordered_map<TermId, std::vector<const ClassRule*>> class_rules_by_pred;
  for (const ClassRule& r : options.class_rules)
    class_rules_by_pred[r.premise_predicate].push_back(&r);

  // ---- Semi-naive instance-level chaining. ----
  std::unordered_set<Triple, TripleHash> known;
  known.reserve(dataset->size() * 2);
  std::deque<Triple> worklist;
  for (const Triple& t : dataset->triples()) {
    if (known.insert(t).second) worklist.push_back(t);
  }

  dataset->BeginInferred();

  // Incremental adjacency for transitive predicates (R7).
  struct TransAdj {
    std::unordered_map<TermId, std::vector<TermId>> succ;
    std::unordered_map<TermId, std::vector<TermId>> pred;
  };
  std::unordered_map<TermId, TransAdj> trans_adj;

  auto derive = [&](TermId s, TermId p, TermId o) {
    Triple t{s, p, o};
    if (known.insert(t).second) {
      dataset->Add(s, p, o);
      worklist.push_back(t);
      ++stats.inferred_triples;
    }
  };

  while (!worklist.empty()) {
    Triple t = worklist.front();
    worklist.pop_front();
    ++stats.iterations;

    if (t.p == type_p) {
      // R3: type inheritance through the closed class hierarchy.
      if (options.subclass_inheritance) {
        auto it = subclass_closed.find(t.o);
        if (it != subclass_closed.end())
          for (TermId super : it->second) derive(t.s, type_p, super);
      }
      continue;
    }
    // Schema predicates do not fire instance rules.
    if (t.p == subclass_p || t.p == subprop_p || t.p == domain_p || t.p == range_p ||
        t.p == inverse_p)
      continue;

    // R4: property inheritance.
    if (options.subproperty_inheritance) {
      auto it = subprop_closed.find(t.p);
      if (it != subprop_closed.end())
        for (TermId super : it->second) derive(t.s, super, t.o);
    }
    // R5 / R6: domain and range typing.
    if (options.domain_range) {
      auto dit = domains.find(t.p);
      if (dit != domains.end())
        for (TermId c : dit->second) derive(t.s, type_p, c);
      auto rit = ranges.find(t.p);
      if (rit != ranges.end())
        for (TermId c : rit->second) derive(t.o, type_p, c);
    }
    // R7: transitive property, incremental closure.
    if (options.transitive_properties && transitive_props.count(t.p)) {
      TransAdj& adj = trans_adj[t.p];
      // New edge (s, o): connect all pred(s) x {o}, {s} x succ(o), pred(s) x succ(o).
      auto succ_it = adj.succ.find(t.o);
      if (succ_it != adj.succ.end())
        for (TermId z : succ_it->second) derive(t.s, t.p, z);
      auto pred_it = adj.pred.find(t.s);
      if (pred_it != adj.pred.end())
        for (TermId w : pred_it->second) derive(w, t.p, t.o);
      adj.succ[t.s].push_back(t.o);
      adj.pred[t.o].push_back(t.s);
    }
    // R8: inverse properties.
    if (options.inverse_properties) {
      auto it = inverses.find(t.p);
      if (it != inverses.end())
        for (TermId q : it->second) derive(t.o, q, t.s);
    }
    // R9: custom class-definition rules.
    auto cit = class_rules_by_pred.find(t.p);
    if (cit != class_rules_by_pred.end()) {
      for (const ClassRule* r : cit->second)
        derive(r->on_object ? t.o : t.s, type_p, r->inferred_class);
    }
  }
  return stats;
}

}  // namespace rdf
