// The staged, parallel dataset-ingestion pipeline. The paper assumes graphs
// are memory-resident and excludes loading from all measurements — which
// makes *getting to* the memory-resident state the slowest step at scale.
// Following RDF-3X / TripleBit, bulk dictionary encoding is an explicit
// offline pipeline here rather than an istream loop:
//
//   1. split the input into newline/statement-aligned chunks and parse them
//      concurrently on a util::ThreadPool, each chunk interning into a
//      private mini-dictionary (zero-copy term scanning, no global locks);
//   2. merge the mini-dictionaries into the global Dictionary via the
//      hash-sharded parallel merge (Dictionary::MergeBatches), then remap
//      each chunk's local-id triples to global ids, id-parallel;
//   3. optionally fuse graph construction in as a final stage: remapped
//      chunks feed GraphBuilder::Append, so load -> DataGraph is one pass.
//
// Chunk boundaries are deterministic (fixed chunk_bytes), and the sharded
// merge assigns ids independent of scheduling, so a load produces the exact
// same Dataset (bit-identical ids) at any thread count. Chunk parsing also
// tallies per-term occurrence counts and role flags (predicate position,
// rdf:type object), which the merge's global ranking turns into the
// frequency-split id layout (see rdf/dictionary.hpp). Parse errors carry
// the same line number and offending line text the sequential parser
// reports, chosen first-error-wins by line.
//
// Turtle keeps a sequential tokenizer (prefix/base directives are stateful)
// but feeds the same parallel encode/merge/remap stages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/data_graph.hpp"
#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

struct LoadOptions {
  /// Worker threads for the parallel stages; 0 = hardware concurrency.
  /// Requests beyond the hardware concurrency are clamped (oversubscribing
  /// a CPU-bound pipeline only adds scheduling overhead); the loaded ids
  /// are identical either way — determinism comes from chunking, not from
  /// the worker count.
  uint32_t threads = 0;
  /// Target chunk size for the newline-aligned input split; 0 = auto
  /// (input_bytes / 64, clamped to [2 MiB, 4 MiB] — measured sweet spot:
  /// per-chunk intern tables stay cache-resident and there are enough
  /// chunks for any realistic core count). Chunking depends only on this
  /// value and the input bytes — never on the thread count — which is what
  /// makes parallel loads deterministic. Statement-batch size for Turtle
  /// derives from it.
  size_t chunk_bytes = 0;
  /// What to do with a malformed line: fail the load (reporting the first
  /// error by line number, exactly as the sequential parser would) or skip
  /// the line and count it in LoadStats::skipped_lines. Turtle ignores
  /// kSkip (a tokenizer error loses statement sync) and always fails.
  enum class OnError : uint8_t { kFail, kSkip };
  OnError on_error = OnError::kFail;
  /// Fuse DataGraph construction into the pipeline: remapped chunks feed
  /// GraphBuilder::Append as they are produced and LoadResult::graph is
  /// populated. Use when the input already contains its inference closure
  /// (a reasoner run between load and graph build forces two passes).
  bool build_graph = false;
  /// Transformation for the fused graph build.
  graph::TransformMode transform = graph::TransformMode::kTypeAware;
};

/// Where the time went; the ingest bench reports these.
struct LoadStats {
  uint64_t bytes = 0;
  uint64_t lines = 0;          ///< input lines seen (N-Triples path)
  uint64_t triples = 0;
  uint64_t terms = 0;          ///< distinct terms in the dictionary after load
  uint64_t chunks = 0;
  uint64_t skipped_lines = 0;  ///< malformed lines dropped under OnError::kSkip
  uint32_t threads = 1;
  double read_ms = 0;   ///< file -> buffer (file entry points only)
  double parse_ms = 0;  ///< chunked parse + mini-dictionary interning
  double merge_ms = 0;  ///< sharded dictionary merge
  double remap_ms = 0;  ///< local -> global id rewrite + dataset append
  double graph_ms = 0;  ///< fused GraphBuilder stage (build_graph only)
  double total_ms = 0;
};

struct LoadResult {
  Dataset dataset;
  /// Present iff LoadOptions::build_graph.
  std::unique_ptr<graph::DataGraph> graph;
  LoadStats stats;
};

/// Parses N-Triples text through the parallel pipeline. The text buffer is
/// taken by value: chunks are string_views into it.
util::Result<LoadResult> LoadNTriples(std::string text, const LoadOptions& options = {});
/// Single-read file front end for LoadNTriples.
util::Result<LoadResult> LoadNTriplesFile(const std::string& path,
                                          const LoadOptions& options = {});

/// Tokenizes Turtle sequentially, then runs the parallel encode/merge/remap
/// stages on statement batches.
util::Result<LoadResult> LoadTurtle(std::string text, const LoadOptions& options = {});
util::Result<LoadResult> LoadTurtleFile(const std::string& path,
                                        const LoadOptions& options = {});

/// Dispatches on extension: .ttl/.turtle -> Turtle, everything else
/// N-Triples.
util::Result<LoadResult> LoadRdfFile(const std::string& path,
                                     const LoadOptions& options = {});

/// Re-ranks an *incrementally built* dataset's term ids into the
/// frequency-split layout (the bulk-load pipeline ranks during the merge;
/// datasets built through Dataset::Add — generated workloads, hand-built
/// fixtures — get arrival-order ids and can opt in here). Counts and role
/// flags come from the dataset's own triples; every triple is rewritten
/// through the new id mapping in place. Call before handing ids to anything
/// that stores them (graph build, snapshots, cached TermIds).
void RerankDatasetByFrequency(Dataset* ds);

}  // namespace turbo::rdf
