// Turtle (Terse RDF Triple Language) parser — the serialization most public
// RDF dumps ship in. Supported subset: @prefix / PREFIX directives, @base,
// prefixed names, 'a', predicate lists (';'), object lists (','), IRIs,
// blank node labels, plain / language-tagged / typed literals, integer,
// decimal and boolean shorthand, long quotes ("""..."""), comments.
// Not supported (rejected with an error): anonymous blank nodes '[...]',
// collections '(...)'.
#pragma once

#include <functional>
#include <istream>
#include <string>
#include <string_view>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// Receives one tokenized statement. Turtle tokenization is inherently
/// sequential (prefix / base directives are stateful), so the parser emits
/// term triples into a sink; the caller decides how to intern them — the
/// sequential API interns directly into a Dataset, the parallel load
/// pipeline batches statements and runs dictionary encoding on the pool.
using TurtleSink = std::function<void(Term s, Term p, Term o)>;

/// Tokenizes Turtle text, emitting every statement into `sink`.
util::Status ParseTurtleToSink(std::string text, const TurtleSink& sink);

/// Parses Turtle text into `dataset` (appending).
util::Status ParseTurtle(std::istream& in, Dataset* dataset);
util::Status ParseTurtleString(std::string_view text, Dataset* dataset);

}  // namespace turbo::rdf
