// Turtle (Terse RDF Triple Language) parser — the serialization most public
// RDF dumps ship in. Supported subset: @prefix / PREFIX directives, @base,
// prefixed names, 'a', predicate lists (';'), object lists (','), IRIs,
// blank node labels, plain / language-tagged / typed literals, integer,
// decimal and boolean shorthand, long quotes ("""..."""), comments.
// Not supported (rejected with an error): anonymous blank nodes '[...]',
// collections '(...)'.
#pragma once

#include <istream>
#include <string_view>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// Parses Turtle text into `dataset` (appending).
util::Status ParseTurtle(std::istream& in, Dataset* dataset);
util::Status ParseTurtleString(std::string_view text, Dataset* dataset);

}  // namespace turbo::rdf
