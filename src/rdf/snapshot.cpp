#include "rdf/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace turbo::rdf {

namespace {

constexpr char kMagic[6] = {'T', 'H', 'S', 'N', 'A', 'P'};
// v3 extends the TERM section with the frequency-split hot-band length
// (see rdf/dictionary.hpp); ids and every other byte are unchanged, so v2
// streams still load — they just come up with an empty band.
constexpr uint16_t kVersion = 3;
constexpr uint16_t kMinVersion = 2;

uint32_t Tag(const char t[5]) {
  uint32_t v;
  std::memcpy(&v, t, 4);
  return v;
}
const uint32_t kTagTerms = Tag("TERM");
const uint32_t kTagTriples = Tag("TRPL");
const uint32_t kTagEnd = Tag("TEND");

/// Sanity cap for any length field: a corrupt stream must not drive a
/// multi-gigabyte allocation.
constexpr uint64_t kMaxSection = 1ull << 36;

void AppendRaw(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}
template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

void WriteSectionHeader(std::ostream& out, uint32_t tag, uint64_t len) {
  out.write(reinterpret_cast<const char*>(&tag), 4);
  out.write(reinterpret_cast<const char*>(&len), 8);
}

/// Cursor over one bulk-read section payload.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buf) : buf_(buf) {}

  template <typename T>
  bool Read(T* v) {
    if (pos_ + sizeof(T) > buf_.size()) return false;
    std::memcpy(v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  /// Borrows `n` bytes in place (no copy).
  const char* Borrow(size_t n) {
    if (pos_ + n > buf_.size()) return nullptr;
    const char* p = buf_.data() + pos_;
    pos_ += n;
    return p;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
};

util::Status ParseTermSection(const std::string& payload, uint16_t version,
                              uint32_t threads, Dataset* ds) {
  PayloadReader r(payload);
  uint64_t num_terms;
  if (!r.Read(&num_terms) || num_terms > kMaxSection)
    return util::Status::Error("corrupt snapshot (term count)");
  uint64_t hot_band = 0;  // v2: no band recorded
  if (version >= 3 && (!r.Read(&hot_band) || hot_band > num_terms))
    return util::Status::Error("corrupt snapshot (hot band)");
  const size_t n = static_cast<size_t>(num_terms);
  const char* kinds = r.Borrow(n);
  const char* lex_len_raw = r.Borrow(n * 4);
  const char* dt_len_raw = r.Borrow(n * 4);
  const char* lang_len_raw = r.Borrow(n * 4);
  if (!kinds || !lex_len_raw || !dt_len_raw || !lang_len_raw)
    return util::Status::Error("truncated snapshot (term arrays)");
  auto len_at = [](const char* base, size_t i) {
    uint32_t v;
    std::memcpy(&v, base + i * 4, 4);
    return v;
  };

  // Materialize the term table from the three string blobs.
  std::vector<Term> terms(n);
  uint64_t lex_total = 0, dt_total = 0, lang_total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<uint8_t>(kinds[i]) > 2)
      return util::Status::Error("corrupt term kind");
    lex_total += len_at(lex_len_raw, i);
    dt_total += len_at(dt_len_raw, i);
    lang_total += len_at(lang_len_raw, i);
    if (lex_total > kMaxSection || dt_total > kMaxSection || lang_total > kMaxSection)
      return util::Status::Error("corrupt snapshot (blob size)");
  }
  const char* lex_blob = r.Borrow(lex_total);
  const char* dt_blob = r.Borrow(dt_total);
  const char* lang_blob = r.Borrow(lang_total);
  if (!lex_blob || !dt_blob || !lang_blob || !r.AtEnd())
    return util::Status::Error("truncated snapshot (term blobs)");
  size_t lex_off = 0, dt_off = 0, lang_off = 0;
  for (size_t i = 0; i < n; ++i) {
    Term& t = terms[i];
    t.kind = static_cast<TermKind>(kinds[i]);
    t.lexical.assign(lex_blob + lex_off, len_at(lex_len_raw, i));
    t.datatype.assign(dt_blob + dt_off, len_at(dt_len_raw, i));
    t.lang.assign(lang_blob + lang_off, len_at(lang_len_raw, i));
    lex_off += len_at(lex_len_raw, i);
    dt_off += len_at(dt_len_raw, i);
    lang_off += len_at(lang_len_raw, i);
  }

  // Rebuild the dictionary. Snapshot ids are positional — the triple
  // section references terms by index — so the rebuild is the positional
  // bulk install, not a merge; a duplicate means corruption.
  if (threads <= 1) {
    if (auto st = ds->dict().AddUnique(std::move(terms)); !st.ok())
      return util::Status::Error(st.message() + " in snapshot");
  } else {
    util::ThreadPool pool(threads);
    if (auto st = ds->dict().AddUnique(std::move(terms), &pool); !st.ok())
      return util::Status::Error(st.message() + " in snapshot");
  }
  // Saved ids already carry the frequency split; declaring the band just
  // re-arms the hot-term cache over the same id order.
  ds->dict().SetHotBand(static_cast<size_t>(hot_band));
  return util::Status::Ok();
}

util::Status ParseTripleSection(const std::string& payload, Dataset* ds) {
  PayloadReader r(payload);
  uint64_t num_triples, num_original;
  if (!r.Read(&num_triples) || !r.Read(&num_original) || num_triples > kMaxSection)
    return util::Status::Error("truncated snapshot (counts)");
  if (num_original > num_triples) return util::Status::Error("corrupt snapshot boundary");
  const char* raw = r.Borrow(num_triples * sizeof(Triple));
  if (!raw || !r.AtEnd()) return util::Status::Error("truncated snapshot (triples)");
  // Validate and append straight out of the section buffer — one copy (into
  // the dataset), not three. The payload is a heap buffer at a 16-byte
  // offset, so the 4-byte-aligned Triple view is safe.
  const Triple* triples = reinterpret_cast<const Triple*>(raw);
  const uint64_t num_terms = ds->dict().size();
  for (uint64_t i = 0; i < num_triples; ++i)
    if (triples[i].s >= num_terms || triples[i].p >= num_terms ||
        triples[i].o >= num_terms)
      return util::Status::Error("corrupt triple id");
  auto st = ds->AppendOriginal({triples, static_cast<size_t>(num_original)});
  if (!st.ok()) return st;
  if (num_original < num_triples)
    ds->AppendInferred({triples + num_original,
                        static_cast<size_t>(num_triples - num_original)});
  return util::Status::Ok();
}

}  // namespace

util::Status SaveSnapshot(const Dataset& dataset, std::ostream& out,
                          const std::vector<SnapshotSection>& extras) {
  for (const SnapshotSection& s : extras) {
    if (s.tag.size() != 4)
      return util::Status::Error("snapshot section tag must be 4 bytes: '" + s.tag + "'");
    if (s.tag == "TERM" || s.tag == "TRPL" || s.tag == "TEND")
      return util::Status::Error("snapshot section tag '" + s.tag + "' is reserved");
  }
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), 2);

  // Every section length is computable up front, so sections stream to the
  // (buffered) ostream through a small staging buffer instead of
  // materializing a second full copy of the dataset in memory.
  std::string staging;
  auto flush_if_full = [&] {
    if (staging.size() >= (1u << 20)) {
      out.write(staging.data(), static_cast<std::streamsize>(staging.size()));
      staging.clear();
    }
  };
  auto flush = [&] {
    if (!staging.empty()) {
      out.write(staging.data(), static_cast<std::streamsize>(staging.size()));
      staging.clear();
    }
  };

  // ---- TERM section (columnar). ----
  {
    const Dictionary& dict = dataset.dict();
    const size_t n = dict.size();
    uint64_t blob_total = 0;
    for (size_t i = 0; i < n; ++i)
      blob_total += dict.term(i).lexical.size() + dict.term(i).datatype.size() +
                    dict.term(i).lang.size();
    WriteSectionHeader(out, kTagTerms, 16 + n * 13 + blob_total);
    AppendPod<uint64_t>(&staging, n);
    AppendPod<uint64_t>(&staging, static_cast<uint64_t>(dict.hot_band_size()));
    for (size_t i = 0; i < n; ++i) {
      AppendPod<uint8_t>(&staging, static_cast<uint8_t>(dict.term(i).kind));
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendPod<uint32_t>(&staging, static_cast<uint32_t>(dict.term(i).lexical.size()));
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendPod<uint32_t>(&staging, static_cast<uint32_t>(dict.term(i).datatype.size()));
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendPod<uint32_t>(&staging, static_cast<uint32_t>(dict.term(i).lang.size()));
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendRaw(&staging, dict.term(i).lexical.data(), dict.term(i).lexical.size());
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendRaw(&staging, dict.term(i).datatype.data(), dict.term(i).datatype.size());
      flush_if_full();
    }
    for (size_t i = 0; i < n; ++i) {
      AppendRaw(&staging, dict.term(i).lang.data(), dict.term(i).lang.size());
      flush_if_full();
    }
    flush();
  }

  // ---- TRPL section (raw id array, written straight from the vector). ----
  {
    WriteSectionHeader(out, kTagTriples, 16 + dataset.size() * sizeof(Triple));
    AppendPod<uint64_t>(&staging, dataset.size());
    AppendPod<uint64_t>(&staging, dataset.num_original());
    flush();
    if (!dataset.triples().empty())
      out.write(reinterpret_cast<const char*>(dataset.triples().data()),
                static_cast<std::streamsize>(dataset.size() * sizeof(Triple)));
  }

  // ---- Caller-provided extra sections (e.g. a prebuilt graph image). ----
  for (const SnapshotSection& s : extras) {
    WriteSectionHeader(out, Tag(s.tag.c_str()), s.payload.size());
    out.write(s.payload.data(), static_cast<std::streamsize>(s.payload.size()));
  }

  WriteSectionHeader(out, kTagEnd, 0);
  if (!out) return util::Status::Error("snapshot write failed");
  return util::Status::Ok();
}

util::Status SaveSnapshotFile(const Dataset& dataset, const std::string& path,
                              const std::vector<SnapshotSection>& extras) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Error("cannot open " + path + " for writing");
  return SaveSnapshot(dataset, out, extras);
}

util::Result<Dataset> LoadSnapshot(std::istream& in, uint32_t threads,
                                   std::vector<SnapshotSection>* extras) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  char magic[6];
  if (!in.read(magic, 6) || std::memcmp(magic, kMagic, 6) != 0)
    return util::Status::Error("not a TurboHOM++ snapshot (bad magic)");
  uint16_t version = 0;
  if (!in.read(reinterpret_cast<char*>(&version), 2))
    return util::Status::Error("truncated snapshot (header)");
  // v1 used the same leading bytes with ASCII "01" where v2+ stores the
  // version integer; anything outside [kMinVersion, kVersion] is a version
  // error.
  if (version < kMinVersion || version > kVersion)
    return util::Status::Error("unsupported snapshot version (expected v" +
                               std::to_string(kMinVersion) + "..v" +
                               std::to_string(kVersion) + "; re-save with this build)");

  Dataset ds;
  bool saw_terms = false, saw_triples = false, saw_end = false;
  while (!saw_end) {
    uint32_t tag;
    uint64_t len;
    if (!in.read(reinterpret_cast<char*>(&tag), 4) ||
        !in.read(reinterpret_cast<char*>(&len), 8))
      return util::Status::Error("truncated snapshot (section header)");
    if (len > kMaxSection) return util::Status::Error("corrupt snapshot (section size)");
    // Bulk section read, but grown in bounded steps: a corrupt length field
    // then fails at the stream's real end instead of driving one huge
    // upfront allocation.
    constexpr uint64_t kReadStep = 64ull << 20;
    std::string payload;
    payload.reserve(static_cast<size_t>(std::min(len, kReadStep)));
    while (payload.size() < len) {
      size_t step = static_cast<size_t>(std::min(len - payload.size(), kReadStep));
      size_t off = payload.size();
      payload.resize(off + step);
      if (!in.read(payload.data() + off, static_cast<std::streamsize>(step)))
        return util::Status::Error("truncated snapshot (section payload)");
    }
    if (tag == kTagTerms) {
      if (saw_terms) return util::Status::Error("duplicate TERM section");
      if (auto st = ParseTermSection(payload, version, threads, &ds); !st.ok()) return st;
      saw_terms = true;
    } else if (tag == kTagTriples) {
      if (!saw_terms) return util::Status::Error("TRPL section before TERM");
      if (saw_triples) return util::Status::Error("duplicate TRPL section");
      if (auto st = ParseTripleSection(payload, &ds); !st.ok()) return st;
      saw_triples = true;
    } else if (tag == kTagEnd) {
      saw_end = true;
    } else if (extras != nullptr) {
      // Hand unrecognized sections to the caller (e.g. a "GRPH" prebuilt
      // graph image) instead of discarding them.
      extras->push_back(
          {std::string(reinterpret_cast<const char*>(&tag), 4), std::move(payload)});
    }
    // Unknown sections are otherwise skipped: newer writers may append them.
  }
  if (!saw_terms || !saw_triples)
    return util::Status::Error("incomplete snapshot (missing section)");
  return ds;
}

util::Result<Dataset> LoadSnapshotFile(const std::string& path, uint32_t threads,
                                       std::vector<SnapshotSection>* extras) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("cannot open " + path);
  return LoadSnapshot(in, threads, extras);
}

}  // namespace turbo::rdf
