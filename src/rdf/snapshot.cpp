#include "rdf/snapshot.hpp"

#include <cstring>
#include <fstream>

namespace turbo::rdf {

namespace {

constexpr char kMagic[8] = {'T', 'H', 'S', 'N', 'A', 'P', '0', '1'};

void PutU32(std::ostream& out, uint32_t v) { out.write(reinterpret_cast<char*>(&v), 4); }
void PutU64(std::ostream& out, uint64_t v) { out.write(reinterpret_cast<char*>(&v), 8); }
void PutString(std::ostream& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetU32(std::istream& in, uint32_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), 4));
}
bool GetU64(std::istream& in, uint64_t* v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(v), 8));
}
bool GetString(std::istream& in, std::string* s) {
  uint32_t len;
  if (!GetU32(in, &len)) return false;
  if (len > (1u << 28)) return false;  // corrupt-length guard
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), len));
}

}  // namespace

util::Status SaveSnapshot(const Dataset& dataset, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const Dictionary& dict = dataset.dict();
  PutU64(out, dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    const Term& t = dict.term(id);
    char kind = static_cast<char>(t.kind);
    out.write(&kind, 1);
    PutString(out, t.lexical);
    PutString(out, t.datatype);
    PutString(out, t.lang);
  }
  PutU64(out, dataset.size());
  PutU64(out, dataset.num_original());
  for (const Triple& t : dataset.triples()) {
    PutU32(out, t.s);
    PutU32(out, t.p);
    PutU32(out, t.o);
  }
  if (!out) return util::Status::Error("snapshot write failed");
  return util::Status::Ok();
}

util::Status SaveSnapshotFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Error("cannot open " + path + " for writing");
  return SaveSnapshot(dataset, out);
}

util::Result<Dataset> LoadSnapshot(std::istream& in) {
  char magic[8];
  if (!in.read(magic, 8) || std::memcmp(magic, kMagic, 8) != 0)
    return util::Status::Error("not a TurboHOM++ snapshot (bad magic)");
  Dataset ds;
  uint64_t num_terms;
  if (!GetU64(in, &num_terms)) return util::Status::Error("truncated snapshot (terms)");
  for (uint64_t i = 0; i < num_terms; ++i) {
    char kind;
    Term t;
    if (!in.read(&kind, 1) || !GetString(in, &t.lexical) || !GetString(in, &t.datatype) ||
        !GetString(in, &t.lang))
      return util::Status::Error("truncated snapshot (term " + std::to_string(i) + ")");
    if (kind > 2) return util::Status::Error("corrupt term kind");
    t.kind = static_cast<TermKind>(kind);
    TermId id = ds.dict().GetOrAdd(t);
    if (id != i) return util::Status::Error("duplicate term in snapshot");
  }
  uint64_t num_triples, num_original;
  if (!GetU64(in, &num_triples) || !GetU64(in, &num_original))
    return util::Status::Error("truncated snapshot (counts)");
  if (num_original > num_triples) return util::Status::Error("corrupt snapshot boundary");
  for (uint64_t i = 0; i < num_triples; ++i) {
    if (i == num_original) ds.BeginInferred();
    uint32_t s, p, o;
    if (!GetU32(in, &s) || !GetU32(in, &p) || !GetU32(in, &o))
      return util::Status::Error("truncated snapshot (triple " + std::to_string(i) + ")");
    if (s >= num_terms || p >= num_terms || o >= num_terms)
      return util::Status::Error("corrupt triple id");
    ds.Add(s, p, o);
  }
  if (num_original == num_triples && num_original > 0) {
    // No inferred region; leave the dataset open (num_original tracks size).
  }
  return ds;
}

util::Result<Dataset> LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("cannot open " + path);
  return LoadSnapshot(in);
}

}  // namespace turbo::rdf
