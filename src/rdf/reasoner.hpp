// Forward-chaining RDFS / OWL-lite reasoner.
//
// The paper loads "the original triples as well as inferred triples" for
// LUBM and BSBM, materialized by "the state-of-the-art RDF inference engine"
// (Section 7.1) — that engine is proprietary, so this module is the
// substitution: a semi-naive forward chainer covering exactly the entailments
// the benchmark queries depend on:
//
//   R1  subClassOf transitivity            (TBox closure)
//   R2  subPropertyOf transitivity         (TBox closure)
//   R3  (x type C), C subClassOf* D        => (x type D)
//   R4  (x p y), p subPropertyOf* q        => (x q y)
//   R5  (x p y), (p domain C)              => (x type C)
//   R6  (x p y), (p range C)               => (y type C)
//   R7  p transitive, (x p y), (y p z)     => (x p z)
//   R8  (p inverseOf q): (x p y)          <=> (y q x)
//   R9  custom class-definition rules: (x p y) => (x type C) / (y type C)
//       (models OWL restriction classes such as LUBM's
//        Chair == Person and headOf.Department, Student == Person and
//        takesCourse.Course)
//
// Inferred triples are appended to the dataset after Dataset::BeginInferred,
// preserving the original/inferred boundary for the simple-entailment label
// sets of Section 4.2.
#pragma once

#include <vector>

#include "rdf/dataset.hpp"

namespace turbo::rdf {

/// R9 rule: any triple with predicate `premise_predicate` types its subject
/// (or object, if `on_object`) with `inferred_class`.
struct ClassRule {
  TermId premise_predicate = kInvalidId;
  TermId inferred_class = kInvalidId;
  bool on_object = false;
};

/// Reasoner configuration. All standard rule families default to on.
struct ReasonerOptions {
  bool subclass_inheritance = true;   ///< R1 + R3
  bool subproperty_inheritance = true;///< R2 + R4
  bool domain_range = true;           ///< R5 + R6
  bool transitive_properties = true;  ///< R7
  bool inverse_properties = true;     ///< R8
  std::vector<ClassRule> class_rules; ///< R9
};

/// Statistics returned by MaterializeInference.
struct ReasonerStats {
  size_t original_triples = 0;
  size_t inferred_triples = 0;
  size_t iterations = 0;  ///< worklist items processed
};

/// Runs the forward chainer to fixpoint, appending inferred triples to
/// `dataset`. Schema (TBox) is read from the dataset's original triples.
ReasonerStats MaterializeInference(Dataset* dataset, const ReasonerOptions& options = {});

}  // namespace turbo::rdf
