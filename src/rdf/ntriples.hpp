// N-Triples parser / writer. Line-oriented; supports IRIs, blank nodes,
// plain / language-tagged / datatyped literals with escapes, and comments.
#pragma once

#include <istream>
#include <ostream>
#include <string_view>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// Parses N-Triples text into `dataset` (appending). Returns an error with
/// line information on malformed input.
util::Status ParseNTriples(std::istream& in, Dataset* dataset);

/// Parses a string of N-Triples.
util::Status ParseNTriplesString(std::string_view text, Dataset* dataset);

/// Parses one term starting at `pos` in `line`; advances `pos` past it.
util::Result<Term> ParseTerm(std::string_view line, size_t* pos);

/// Serializes the dataset (original triples only unless `include_inferred`).
void WriteNTriples(const Dataset& dataset, std::ostream& out, bool include_inferred = false);

}  // namespace turbo::rdf
