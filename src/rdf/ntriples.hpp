// N-Triples parser / writer. Line-oriented; supports IRIs, blank nodes,
// plain / language-tagged / datatyped literals with escapes, and comments.
//
// The term-level tokenizer is zero-copy (TermSlice views into the input
// line); the sequential istream parser and the chunked parallel load
// pipeline (rdf/loader) share it, so both accept exactly the same inputs
// and produce byte-identical error messages — the parity the loader's
// first-error-wins reporting depends on.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// Raw positions of one scanned term inside a line. `body` is the content
/// between the delimiters, still in escaped source form for literals.
struct TermSlice {
  TermKind kind = TermKind::kIri;
  std::string_view body;      ///< IRI content / blank label / raw literal body
  std::string_view datatype;  ///< typed literal datatype IRI content
  std::string_view lang;      ///< language tag
  bool has_escapes = false;   ///< literal body contains backslash escapes
  /// Literal body is not already in canonical escaped form (contains '\\'
  /// or a raw control character) — the dictionary key must then be rebuilt
  /// via Term::ToNTriples instead of using the raw slice.
  bool needs_canonical_key = false;
  /// The full source span of the term, delimiters included. Unless
  /// needs_canonical_key, this IS the canonical N-Triples serialization
  /// (and therefore the dictionary key) verbatim — the zero-copy fast path
  /// the parallel loader interns through.
  std::string_view raw;
};

/// Scans one term starting at `pos`; advances `pos` past it. On failure
/// returns false and fills `err` (message only, no line prefix).
bool ScanTerm(std::string_view line, size_t* pos, TermSlice* out, std::string* err);

/// Materializes a scanned slice into an owning Term (unescaping literals).
Term MaterializeTerm(const TermSlice& slice);

/// Parses a canonical N-Triples serialization (a dictionary key) back into
/// a Term — the merge-install path of key-only TermBatches. The key must be
/// exactly one well-formed term.
Term TermFromNTriplesKey(std::string_view key);

/// Canonical "line N: <msg>: <line text>" parse error, shared by the
/// sequential parser and the parallel loader so errors compare equal.
util::Status MakeParseError(size_t line_no, const std::string& msg, std::string_view line);

/// Parses N-Triples text into `dataset` (appending). Returns an error with
/// line number and offending line text on malformed input.
util::Status ParseNTriples(std::istream& in, Dataset* dataset);

/// Parses a string of N-Triples.
util::Status ParseNTriplesString(std::string_view text, Dataset* dataset);

/// Parses one term starting at `pos` in `line`; advances `pos` past it.
util::Result<Term> ParseTerm(std::string_view line, size_t* pos);

/// Serializes the dataset (original triples only unless `include_inferred`).
void WriteNTriples(const Dataset& dataset, std::ostream& out, bool include_inferred = false);

}  // namespace turbo::rdf
