#include "rdf/dictionary.hpp"

namespace turbo::rdf {

TermId Dictionary::GetOrAdd(const Term& term) {
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(std::move(key), id);
  terms_.push_back(term);
  CachedNum num;
  if (auto v = term.NumericValue()) {
    num.value = *v;
    num.valid = true;
  }
  numeric_.push_back(num);
  return id;
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace turbo::rdf
