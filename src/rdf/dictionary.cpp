#include "rdf/dictionary.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>

#include "rdf/ntriples.hpp"
#include "util/thread_pool.hpp"

namespace turbo::rdf {

namespace {

/// Marks a mapping entry that points into a shard's pending-new list instead
/// of holding a final id (resolved once the global ranking is known).
constexpr TermId kPendingBit = 0x80000000u;

}  // namespace

std::vector<uint32_t> FrequencySplitOrder(std::span<const RankInput> items,
                                          size_t* hot_band) {
  const size_t n = items.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  *hot_band = 0;
  if (n == 0) return order;

  // The band threshold is relative to the mean occurrence count, so the
  // split adapts to dataset scale without a tuning knob: a term is hot if it
  // plays a label role (predicate / type object) or occurs well above
  // average.
  uint64_t total = 0;
  for (const RankInput& it : items) total += it.count;
  const uint64_t threshold = std::max<uint64_t>(16, 8 * (total / n));

  auto cls = [](const RankInput& it) -> int {
    if (it.flags & kRolePredicate) return 0;
    if (it.flags & kRoleTypeObject) return 1;
    return 2;
  };
  auto mid = std::partition(order.begin(), order.end(), [&](uint32_t i) {
    return items[i].flags != 0 || items[i].count >= threshold;
  });
  // Hot head: label roles first, then by descending frequency; `first` (the
  // caller's first-occurrence key, unique per item) breaks every tie, making
  // the whole permutation a pure function of the inputs.
  std::sort(order.begin(), mid, [&](uint32_t a, uint32_t b) {
    const RankInput& x = items[a];
    const RankInput& y = items[b];
    const int cx = cls(x), cy = cls(y);
    if (cx != cy) return cx < cy;
    if (x.count != y.count) return x.count > y.count;
    return x.first < y.first;
  });
  const size_t band = std::min<size_t>(static_cast<size_t>(mid - order.begin()),
                                       Dictionary::kMaxHotBand);
  // Cold tail (plus any band-cap overflow): first-occurrence order. Real
  // dumps emit runs of statements about one subject; keeping that arrival
  // locality is what keeps neighboring ids close for the delta encodings.
  std::sort(order.begin() + band, order.end(),
            [&](uint32_t a, uint32_t b) { return items[a].first < items[b].first; });
  *hot_band = band;
  return order;
}

Dictionary::CachedNum Dictionary::NumericOf(const Term& term) {
  CachedNum num;
  if (auto v = term.NumericValue()) {
    num.value = *v;
    num.valid = true;
  }
  return num;
}

TermId Dictionary::FindHot(size_t hash, std::string_view key) const {
  if (hot_slots_.empty()) return ShardTable::kNotFound;
  hot_probes_.fetch_add(1, std::memory_order_relaxed);
  const size_t mask = hot_slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const HotSlot& s = hot_slots_[i];
    if (s.id == ShardTable::kNotFound) return ShardTable::kNotFound;
    if (s.hash == hash && hot_keys_[s.id] == key) {
      hot_hits_.fetch_add(1, std::memory_order_relaxed);
      return s.id;
    }
  }
}

void Dictionary::RebuildHotCache() {
  hot_slots_.clear();
  hot_keys_.clear();
  if (hot_band_ == 0) return;
  hot_keys_.resize(hot_band_);
  size_t cap = 64;
  while (cap * 7 < hot_band_ * 10) cap *= 2;
  hot_slots_.assign(cap, HotSlot{});
  const size_t mask = cap - 1;
  for (TermId id = 0; id < hot_band_; ++id) {
    hot_keys_[id] = terms_[id].ToNTriples();
    const size_t h = TermKeyHash{}(hot_keys_[id]);
    size_t i = h & mask;
    while (hot_slots_[i].id != ShardTable::kNotFound) i = (i + 1) & mask;
    hot_slots_[i] = {h, id};
  }
}

void Dictionary::SetHotBand(size_t band) {
  hot_band_ = std::min(band, terms_.size());
  RebuildHotCache();
}

void Dictionary::Permute(std::span<const uint32_t> order, size_t hot_band) {
  const size_t n = terms_.size();
  std::vector<Term> terms(n);
  std::vector<CachedNum> numeric(n);
  for (size_t r = 0; r < n; ++r) {
    terms[r] = std::move(terms_[order[r]]);
    numeric[r] = numeric_[order[r]];
  }
  terms_ = std::move(terms);
  numeric_ = std::move(numeric);
  for (ShardTable& s : shards_) s = ShardTable();
  for (ShardTable& s : shards_) s.Reserve(n / kNumShards + 1);
  for (size_t id = 0; id < n; ++id) {
    const std::string key = terms_[id].ToNTriples();
    const size_t hash = TermKeyHash{}(key);
    shards_[ShardOf(hash)].Insert(hash, key, static_cast<TermId>(id));
  }
  hot_band_ = std::min(hot_band, n);
  RebuildHotCache();
}

void Dictionary::CopyFrom(const Dictionary& o) {
  for (uint32_t s = 0; s < kNumShards; ++s) shards_[s] = o.shards_[s];
  terms_ = o.terms_;
  numeric_ = o.numeric_;
  hot_band_ = o.hot_band_;
  hot_slots_ = o.hot_slots_;
  hot_keys_ = o.hot_keys_;
  hot_hits_.store(o.hot_hits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  hot_probes_.store(o.hot_probes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void Dictionary::MoveFrom(Dictionary&& o) {
  for (uint32_t s = 0; s < kNumShards; ++s) shards_[s] = std::move(o.shards_[s]);
  terms_ = std::move(o.terms_);
  numeric_ = std::move(o.numeric_);
  hot_band_ = o.hot_band_;
  hot_slots_ = std::move(o.hot_slots_);
  hot_keys_ = std::move(o.hot_keys_);
  hot_hits_.store(o.hot_hits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  hot_probes_.store(o.hot_probes_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

Dictionary::LayoutStats Dictionary::layout_stats() const {
  LayoutStats st;
  st.terms = terms_.size();
  st.hot_band = hot_band_;
  st.hot_hits = hot_hits_.load(std::memory_order_relaxed);
  st.hot_probes = hot_probes_.load(std::memory_order_relaxed);
  st.shard_entries_min = shards_[0].size();
  double load_sum = 0;
  for (uint32_t s = 0; s < kNumShards; ++s) {
    const ShardTable& shard = shards_[s];
    st.shard_entries_min = std::min(st.shard_entries_min, shard.size());
    st.shard_entries_max = std::max(st.shard_entries_max, shard.size());
    const double load =
        shard.capacity() ? static_cast<double>(shard.size()) / shard.capacity() : 0.0;
    st.shard_load_min = s == 0 ? load : std::min(st.shard_load_min, load);
    st.shard_load_max = std::max(st.shard_load_max, load);
    load_sum += load;
    st.index_bytes += shard.bytes();
  }
  st.shard_load_avg = load_sum / kNumShards;
  st.index_bytes += hot_slots_.capacity() * sizeof(HotSlot);
  for (const std::string& k : hot_keys_) st.index_bytes += k.capacity();
  return st;
}

TermId Dictionary::Append(const Term& term, std::string_view key, size_t hash,
                          uint32_t s) {
  TermId id = static_cast<TermId>(terms_.size());
  shards_[s].Insert(hash, key, id);
  terms_.push_back(term);
  numeric_.push_back(NumericOf(term));
  return id;
}

TermId Dictionary::GetOrAdd(const Term& term) {
  const std::string key = term.ToNTriples();
  const size_t hash = TermKeyHash{}(key);
  if (TermId id = FindHot(hash, key); id != ShardTable::kNotFound) return id;
  const uint32_t s = ShardOf(hash);
  if (TermId id = shards_[s].Find(hash, key); id != ShardTable::kNotFound)
    return id;
  return Append(term, key, hash, s);
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  const std::string key = term.ToNTriples();
  const size_t hash = TermKeyHash{}(key);
  if (TermId id = FindHot(hash, key); id != ShardTable::kNotFound) return id;
  TermId id = shards_[ShardOf(hash)].Find(hash, key);
  if (id == ShardTable::kNotFound) return std::nullopt;
  return id;
}

void Dictionary::Reserve(size_t num_terms) {
  terms_.reserve(num_terms);
  numeric_.reserve(num_terms);
  for (ShardTable& shard : shards_) shard.Reserve(num_terms / kNumShards + 1);
}

void Dictionary::AddBatch(const std::vector<Term>& terms, std::vector<TermId>* ids) {
  ids->reserve(ids->size() + terms.size());
  for (const Term& t : terms) ids->push_back(GetOrAdd(t));
}

util::Status Dictionary::AddUnique(std::vector<Term>&& terms, util::ThreadPool* pool) {
  const size_t old = terms_.size();
  const size_t n = terms.size();

  // Hash + key + table fill, parallel over index ranges.
  std::vector<std::string> keys(n);
  std::vector<size_t> hashes(n);
  terms_.resize(old + n);
  numeric_.resize(old + n);
  Reserve(old + n);
  auto prepare = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t i = begin; i < end; ++i) {
      keys[i] = terms[i].ToNTriples();
      hashes[i] = TermKeyHash{}(keys[i]);
      numeric_[old + i] = NumericOf(terms[i]);
      terms_[old + i] = std::move(terms[i]);
    }
  };

  // Shard-parallel index insertion with positional ids; a hit on Find
  // = duplicate (within the batch or against an existing entry).
  std::atomic<bool> duplicate{false};
  auto insert_one = [&](uint32_t s, size_t i) {
    if (shards_[s].Find(hashes[i], keys[i]) != ShardTable::kNotFound) {
      duplicate.store(true, std::memory_order_relaxed);
      return;
    }
    shards_[s].Insert(hashes[i], keys[i], static_cast<TermId>(old + i));
  };
  auto index_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s)
      for (size_t i = 0; i < n; ++i)
        if (ShardOf(hashes[i]) == s) insert_one(static_cast<uint32_t>(s), i);
  };

  if (pool) {
    pool->ParallelFor(n, 4096, prepare);
    pool->ParallelFor(kNumShards, 1, index_shard);
  } else {
    prepare(0, n, 0);
    // Serial: one pass straight into the owning shards (the per-shard
    // skip-scan shape only pays off when shards run concurrently).
    for (size_t i = 0; i < n; ++i) insert_one(ShardOf(hashes[i]), i);
  }
  if (duplicate.load()) return util::Status::Error("duplicate term");
  return util::Status::Ok();
}

void Dictionary::MergeBatches(std::vector<TermBatch>* batches,
                              std::vector<std::vector<TermId>>* mappings,
                              util::ThreadPool* pool) {
  const size_t nb = batches->size();
  mappings->assign(nb, {});
  for (size_t b = 0; b < nb; ++b) (*mappings)[b].resize((*batches)[b].size());

  // ---- Phase 0 (batch-parallel): bucket each batch's entry indices by
  // shard, so phase 1 walks exactly its own entries instead of skip-
  // scanning every batch per shard.
  std::vector<std::array<std::vector<uint32_t>, kNumShards>> by_shard(nb);
  size_t total_entries = 0;
  for (const TermBatch& b : *batches) total_entries += b.size();
  auto bucket_batch = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t b = begin; b < end; ++b) {
      TermBatch& batch = (*batches)[b];
      auto& buckets = by_shard[b];
      for (auto& v : buckets) v.reserve(batch.size() / kNumShards + 8);
      for (size_t i = 0; i < batch.size(); ++i)
        buckets[ShardOf(batch.hashes[i])].push_back(static_cast<uint32_t>(i));
    }
  };

  // ---- Phase 1 (shard-parallel): resolve every batch entry against the
  // hot-term cache, the global shard, or the shard's pending-new list.
  // Disjoint hash ranges, so shards never touch the same mapping entry or
  // map; iterating batches in order keeps the pending list deterministic.
  // Occurrence counts and role flags aggregate per pending entry as we go —
  // they feed the global ranking in phase 2.
  struct PendingRef {
    uint32_t batch;
    uint32_t idx;
  };
  std::vector<std::vector<PendingRef>> pending(kNumShards);
  std::vector<std::vector<uint64_t>> pcount(kNumShards);
  std::vector<std::vector<uint8_t>> pflags(kNumShards);
  auto resolve_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s) {
      FlatIdMap local(total_entries / kNumShards);
      std::vector<PendingRef>& mine = pending[s];
      std::vector<uint64_t>& cnt = pcount[s];
      std::vector<uint8_t>& flg = pflags[s];
      const bool have_global = !shards_[s].empty();  // initial bulk load: skip finds
      for (size_t b = 0; b < nb; ++b) {
        TermBatch& batch = (*batches)[b];
        std::vector<TermId>& map_b = (*mappings)[b];
        const bool has_counts = !batch.counts.empty();
        const bool has_flags = !batch.flags.empty();
        for (uint32_t i : by_shard[b][s]) {
          std::string_view key = batch.keys[i];
          size_t hash = batch.hashes[i];
          if (have_global) {
            if (TermId id = FindHot(hash, key); id != ShardTable::kNotFound) {
              map_b[i] = id;
              continue;
            }
            if (TermId id = shards_[s].Find(hash, key); id != ShardTable::kNotFound) {
              map_b[i] = id;
              continue;
            }
          }
          uint32_t pending_idx = local.Find(hash, key);
          if (pending_idx == FlatIdMap::kNotFound) {
            pending_idx = static_cast<uint32_t>(mine.size());
            mine.push_back({static_cast<uint32_t>(b), i});
            cnt.push_back(0);
            flg.push_back(0);
            local.Insert(hash, key, pending_idx);
          }
          cnt[pending_idx] += has_counts ? batch.counts[i] : 1;
          flg[pending_idx] |= has_flags ? batch.flags[i] : 0;
          map_b[i] = kPendingBit | pending_idx;
        }
      }
    }
  };

  // ---- Phase 2 (serial): one global frequency-split ranking over all
  // pending terms — the step that makes ids deterministic under any
  // parallelism *and* puts the hot head of the distribution in the low-id
  // band. ---- Phase 3 (shard-parallel): install pending terms at their
  // final ids (disjoint terms_ indices per shard; shard tables pre-sized to
  // their exact distinct counts). ---- Phase 4 (batch-parallel): patch
  // pending mapping entries to final ids.
  size_t shard_off[kNumShards];
  std::vector<TermId> final_of;
  auto install_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s) {
      shards_[s].Reserve(shards_[s].size() + pending[s].size());
      for (size_t k = 0; k < pending[s].size(); ++k) {
        const PendingRef& ref = pending[s][k];
        TermBatch& batch = (*batches)[ref.batch];
        std::string_view key = batch.keys[ref.idx];
        TermId id = final_of[shard_off[s] + k];
        // Key-only batches materialize the Term here — once per *globally*
        // distinct term, instead of once per chunk-distinct occurrence.
        terms_[id] = batch.terms.empty() ? TermFromNTriplesKey(key)
                                         : std::move(batch.terms[ref.idx]);
        numeric_[id] = NumericOf(terms_[id]);
        shards_[s].Insert(batch.hashes[ref.idx], key, id);
      }
    }
  };
  auto patch_batch = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t b = begin; b < end; ++b) {
      TermBatch& batch = (*batches)[b];
      std::vector<TermId>& map_b = (*mappings)[b];
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!(map_b[i] & kPendingBit)) continue;
        uint32_t s = ShardOf(batch.hashes[i]);
        map_b[i] = final_of[shard_off[s] + (map_b[i] & ~kPendingBit)];
      }
    }
  };

  if (pool) {
    pool->ParallelFor(nb, 1, bucket_batch);
    pool->ParallelFor(kNumShards, 1, resolve_shard);
  } else {
    bucket_batch(0, nb, 0);
    resolve_shard(0, kNumShards, 0);
  }

  const size_t old_size = terms_.size();
  size_t new_total = 0;
  for (uint32_t s = 0; s < kNumShards; ++s) {
    shard_off[s] = new_total;
    new_total += pending[s].size();
  }
  std::vector<RankInput> items(new_total);
  for (uint32_t s = 0; s < kNumShards; ++s)
    for (size_t k = 0; k < pending[s].size(); ++k) {
      const PendingRef& ref = pending[s][k];
      items[shard_off[s] + k] = {
          pcount[s][k],
          (static_cast<uint64_t>(ref.batch) << 32) | ref.idx,
          pflags[s][k]};
    }
  size_t band = 0;
  const std::vector<uint32_t> order = FrequencySplitOrder(items, &band);
  final_of.resize(new_total);
  for (size_t r = 0; r < new_total; ++r)
    final_of[order[r]] = static_cast<TermId>(old_size + r);
  terms_.resize(old_size + new_total);
  numeric_.resize(old_size + new_total);

  if (pool) {
    pool->ParallelFor(kNumShards, 1, install_shard);
    pool->ParallelFor(nb, 1, patch_batch);
  } else {
    install_shard(0, kNumShards, 0);
    patch_batch(0, nb, 0);
  }

  // The initial bulk load establishes the hot band + cache; incremental
  // merges rank their new tail above but leave the published band alone
  // (existing ids never move here).
  if (old_size == 0) {
    hot_band_ = band;
    RebuildHotCache();
  }
}

}  // namespace turbo::rdf
