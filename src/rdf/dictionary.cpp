#include "rdf/dictionary.hpp"

#include <array>
#include <atomic>

#include "rdf/ntriples.hpp"
#include "util/thread_pool.hpp"

namespace turbo::rdf {

namespace {

/// Marks a mapping entry that points into a shard's pending-new list instead
/// of holding a final id (resolved once shard base offsets are known).
constexpr TermId kPendingBit = 0x80000000u;

}  // namespace

Dictionary::CachedNum Dictionary::NumericOf(const Term& term) {
  CachedNum num;
  if (auto v = term.NumericValue()) {
    num.value = *v;
    num.valid = true;
  }
  return num;
}

TermId Dictionary::Append(const Term& term, std::string&& key, uint32_t s) {
  TermId id = static_cast<TermId>(terms_.size());
  shards_[s].emplace(std::move(key), id);
  terms_.push_back(term);
  numeric_.push_back(NumericOf(term));
  return id;
}

TermId Dictionary::GetOrAdd(const Term& term) {
  std::string key = term.ToNTriples();
  size_t hash = TermKeyHash{}(key);
  uint32_t s = ShardOf(hash);
  auto it = shards_[s].find(HashedKey{key, hash});
  if (it != shards_[s].end()) return it->second;
  return Append(term, std::move(key), s);
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  std::string key = term.ToNTriples();
  size_t hash = TermKeyHash{}(key);
  const ShardMap& shard = shards_[ShardOf(hash)];
  auto it = shard.find(HashedKey{key, hash});
  if (it == shard.end()) return std::nullopt;
  return it->second;
}

void Dictionary::Reserve(size_t num_terms) {
  terms_.reserve(num_terms);
  numeric_.reserve(num_terms);
  for (ShardMap& shard : shards_) shard.reserve(num_terms / kNumShards + 1);
}

void Dictionary::AddBatch(const std::vector<Term>& terms, std::vector<TermId>* ids) {
  ids->reserve(ids->size() + terms.size());
  for (const Term& t : terms) ids->push_back(GetOrAdd(t));
}

util::Status Dictionary::AddUnique(std::vector<Term>&& terms, util::ThreadPool* pool) {
  const size_t old = terms_.size();
  const size_t n = terms.size();

  // Hash + key + table fill, parallel over index ranges.
  std::vector<std::string> keys(n);
  std::vector<size_t> hashes(n);
  terms_.resize(old + n);
  numeric_.resize(old + n);
  Reserve(old + n);
  auto prepare = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t i = begin; i < end; ++i) {
      keys[i] = terms[i].ToNTriples();
      hashes[i] = TermKeyHash{}(keys[i]);
      numeric_[old + i] = NumericOf(terms[i]);
      terms_[old + i] = std::move(terms[i]);
    }
  };

  // Shard-parallel index insertion with positional ids; try_emplace failure
  // = duplicate (within the batch or against an existing entry).
  std::atomic<bool> duplicate{false};
  auto index_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s) {
      ShardMap& shard = shards_[s];
      for (size_t i = 0; i < n; ++i) {
        if (ShardOf(hashes[i]) != s) continue;
        auto [it, added] = shard.try_emplace(std::move(keys[i]),
                                             static_cast<TermId>(old + i));
        if (!added) duplicate.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (pool) {
    pool->ParallelFor(n, 4096, prepare);
    pool->ParallelFor(kNumShards, 1, index_shard);
  } else {
    prepare(0, n, 0);
    // Serial: one pass straight into the owning shards (the per-shard
    // skip-scan shape only pays off when shards run concurrently).
    for (size_t i = 0; i < n; ++i) {
      auto [it, added] = shards_[ShardOf(hashes[i])].try_emplace(
          std::move(keys[i]), static_cast<TermId>(old + i));
      if (!added) duplicate.store(true, std::memory_order_relaxed);
    }
  }
  if (duplicate.load()) return util::Status::Error("duplicate term");
  return util::Status::Ok();
}

void Dictionary::MergeBatches(std::vector<TermBatch>* batches,
                              std::vector<std::vector<TermId>>* mappings,
                              util::ThreadPool* pool) {
  const size_t nb = batches->size();
  mappings->assign(nb, {});
  for (size_t b = 0; b < nb; ++b) (*mappings)[b].resize((*batches)[b].size());

  // ---- Phase 0 (batch-parallel): bucket each batch's entry indices by
  // shard, so phase 1 walks exactly its own entries instead of skip-
  // scanning every batch per shard.
  std::vector<std::array<std::vector<uint32_t>, kNumShards>> by_shard(nb);
  size_t total_entries = 0;
  for (const TermBatch& b : *batches) total_entries += b.size();
  auto bucket_batch = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t b = begin; b < end; ++b) {
      TermBatch& batch = (*batches)[b];
      auto& buckets = by_shard[b];
      for (auto& v : buckets) v.reserve(batch.size() / kNumShards + 8);
      for (size_t i = 0; i < batch.size(); ++i)
        buckets[ShardOf(batch.hashes[i])].push_back(static_cast<uint32_t>(i));
    }
  };

  // ---- Phase 1 (shard-parallel): resolve every batch entry against the
  // global shard or the shard's pending-new list. Disjoint hash ranges, so
  // shards never touch the same mapping entry or map; iterating batches in
  // order keeps the pending list — and therefore id assignment —
  // deterministic.
  struct PendingRef {
    uint32_t batch;
    uint32_t idx;
  };
  std::vector<std::vector<PendingRef>> pending(kNumShards);
  auto resolve_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s) {
      FlatIdMap local(total_entries / kNumShards);
      std::vector<PendingRef>& mine = pending[s];
      const bool have_global = !shards_[s].empty();  // initial bulk load: skip finds
      for (size_t b = 0; b < nb; ++b) {
        TermBatch& batch = (*batches)[b];
        std::vector<TermId>& map_b = (*mappings)[b];
        for (uint32_t i : by_shard[b][s]) {
          std::string_view key = batch.keys[i];
          size_t hash = batch.hashes[i];
          if (have_global) {
            if (auto it = shards_[s].find(HashedKey{key, hash}); it != shards_[s].end()) {
              map_b[i] = it->second;
              continue;
            }
          }
          uint32_t pending_idx = local.Find(hash, key);
          if (pending_idx == FlatIdMap::kNotFound) {
            pending_idx = static_cast<uint32_t>(mine.size());
            mine.push_back({static_cast<uint32_t>(b), i});
            local.Insert(hash, key, pending_idx);
          }
          map_b[i] = kPendingBit | pending_idx;
        }
      }
    }
  };

  // ---- Phase 2 (serial): per-shard id bases by prefix sum — the step that
  // makes ids deterministic under any parallelism.
  // ---- Phase 3 (shard-parallel): move pending terms into the table and
  // index them. ---- Phase 4 (batch-parallel): patch pending mapping entries
  // to final ids.
  size_t bases[kNumShards];
  auto install_shard = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t s = begin; s < end; ++s) {
      size_t base = bases[s];
      for (size_t k = 0; k < pending[s].size(); ++k) {
        const PendingRef& ref = pending[s][k];
        TermBatch& batch = (*batches)[ref.batch];
        std::string_view key = batch.keys[ref.idx];
        TermId id = static_cast<TermId>(base + k);
        // Key-only batches materialize the Term here — once per *globally*
        // distinct term, instead of once per chunk-distinct occurrence.
        terms_[id] = batch.terms.empty() ? TermFromNTriplesKey(key)
                                         : std::move(batch.terms[ref.idx]);
        numeric_[id] = NumericOf(terms_[id]);
        shards_[s].emplace(std::string(key), id);
      }
    }
  };
  auto patch_batch = [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t b = begin; b < end; ++b) {
      TermBatch& batch = (*batches)[b];
      std::vector<TermId>& map_b = (*mappings)[b];
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!(map_b[i] & kPendingBit)) continue;
        uint32_t s = ShardOf(batch.hashes[i]);
        map_b[i] = static_cast<TermId>(bases[s] + (map_b[i] & ~kPendingBit));
      }
    }
  };

  if (pool) {
    pool->ParallelFor(nb, 1, bucket_batch);
    pool->ParallelFor(kNumShards, 1, resolve_shard);
  } else {
    bucket_batch(0, nb, 0);
    resolve_shard(0, kNumShards, 0);
  }

  size_t total = terms_.size();
  for (uint32_t s = 0; s < kNumShards; ++s) {
    bases[s] = total;
    total += pending[s].size();
  }
  terms_.resize(total);
  numeric_.resize(total);

  if (pool) {
    pool->ParallelFor(kNumShards, 1, install_shard);
    pool->ParallelFor(nb, 1, patch_batch);
  } else {
    install_shard(0, kNumShards, 0);
    patch_batch(0, nb, 0);
  }
}

}  // namespace turbo::rdf
