// Binary dataset snapshots. The paper assumes "graphs in our system are
// periodically updated from an underlying RDF source" (§4.2) — this module
// is that loading path: a compact binary image of a Dataset (dictionary +
// triples + original/inferred boundary) that reloads ~10x faster than
// re-parsing N-Triples and re-running inference.
//
// Format (little-endian):
//   magic "THSNAP01" | u64 num_terms | terms | u64 num_triples |
//   u64 num_original | triples (3 x u32 each)
// Each term: u8 kind | u32 len lexical | bytes | u32 len datatype | bytes |
//   u32 len lang | bytes.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// Writes a binary snapshot of `dataset` (including inferred triples and
/// the original/inferred boundary).
util::Status SaveSnapshot(const Dataset& dataset, std::ostream& out);
util::Status SaveSnapshotFile(const Dataset& dataset, const std::string& path);

/// Reads a snapshot into a fresh Dataset.
util::Result<Dataset> LoadSnapshot(std::istream& in);
util::Result<Dataset> LoadSnapshotFile(const std::string& path);

}  // namespace turbo::rdf
