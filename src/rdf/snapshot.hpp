// Binary dataset snapshots — the measured fast path past re-parsing and
// re-running inference. The paper assumes "graphs in our system are
// periodically updated from an underlying RDF source" (§4.2); a snapshot is
// that refresh artifact: a compact binary image of a Dataset (dictionary +
// triples + original/inferred boundary).
//
// Format v3 (little-endian), sectioned and version-tagged:
//   header   "THSNAP" | u16 version
//   sections u32 tag | u64 payload_bytes | payload    (in order TERM, TRPL)
//   trailer  tag TEND | u64 0
// TERM payload (columnar, so loading is one bulk read + array walks):
//   u64 num_terms | u64 hot_band | u8 kind[n] | u32 lex_len[n] |
//   u32 dt_len[n] | u32 lang_len[n] | lexical blob | datatype blob |
//   lang blob
// TRPL payload:
//   u64 num_triples | u64 num_original | (u32 s, u32 p, u32 o)[n]
// Each section is read with a single bulk read into memory; unknown
// sections are skipped (forward compatibility). v2 streams (no hot_band
// field — term ids carry no declared frequency band) still load with the
// exact same ids; v1 streams are rejected with a version error.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "rdf/dataset.hpp"
#include "util/status.hpp"

namespace turbo::rdf {

/// One caller-owned snapshot section: a 4-character tag plus an opaque
/// payload. Writers append extras after the core sections (still before the
/// TEND trailer); readers that don't recognize a tag skip it, so extras are
/// forward- and backward-compatible across format versions. The graph layer uses
/// this to persist prebuilt DataGraphs ("GRPH") without rdf/ depending on
/// graph/.
struct SnapshotSection {
  std::string tag;  ///< exactly 4 bytes, e.g. "GRPH"
  std::string payload;
};

/// Writes a binary snapshot of `dataset` (including inferred triples and
/// the original/inferred boundary), then any `extras` sections.
util::Status SaveSnapshot(const Dataset& dataset, std::ostream& out,
                          const std::vector<SnapshotSection>& extras = {});
util::Status SaveSnapshotFile(const Dataset& dataset, const std::string& path,
                              const std::vector<SnapshotSection>& extras = {});

/// Reads a snapshot into a fresh Dataset. `threads` > 1 parallelizes the
/// dictionary index rebuild (positional bulk install); 0 = hardware
/// concurrency, matching LoadOptions::threads. When `extras` is non-null,
/// sections with unrecognized tags are collected there (in file order)
/// instead of being discarded.
util::Result<Dataset> LoadSnapshot(std::istream& in, uint32_t threads = 1,
                                   std::vector<SnapshotSection>* extras = nullptr);
util::Result<Dataset> LoadSnapshotFile(const std::string& path, uint32_t threads = 1,
                                       std::vector<SnapshotSection>* extras = nullptr);

}  // namespace turbo::rdf
