#include "rdf/term.hpp"

#include <cstdlib>

namespace turbo::rdf {

std::string EscapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(lexical) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return {};
}

std::optional<double> Term::NumericValue() const {
  if (kind != TermKind::kLiteral || lexical.empty()) return std::nullopt;
  // Cheap reject before strtod: bulk loads numeric-probe every literal once,
  // and most literals (names, emails, phone strings) are not numbers. Keep
  // strtod's leading-whitespace tolerance and its INF/NAN spellings.
  size_t first = lexical.find_first_not_of(" \t\n\r\f\v");
  if (first == std::string::npos) return std::nullopt;
  char c0 = lexical[first];
  if (!(c0 == '-' || c0 == '+' || c0 == '.' || (c0 >= '0' && c0 <= '9') || c0 == 'i' ||
        c0 == 'I' || c0 == 'n' || c0 == 'N'))
    return std::nullopt;
  const char* begin = lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  // Require that the whole lexical form was consumed (no "12abc").
  while (*end == ' ') ++end;
  if (*end != '\0') return std::nullopt;
  return v;
}

}  // namespace turbo::rdf
