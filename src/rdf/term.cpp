#include "rdf/term.hpp"

#include <cstdio>
#include <cstdlib>
#include <optional>

namespace turbo::rdf {

namespace {

/// Appends code point `cp` (assumed valid: <= 0x10FFFF, not a surrogate)
/// UTF-8 encoded.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Parses exactly `n` hex digits of s starting at `i`; nullopt when the
/// input is too short or any digit is not hex.
std::optional<uint32_t> ParseHex(std::string_view s, size_t i, size_t n) {
  if (i + n > s.size()) return std::nullopt;
  uint32_t v = 0;
  for (size_t k = 0; k < n; ++k) {
    char c = s[i + k];
    uint32_t d;
    if (c >= '0' && c <= '9')
      d = c - '0';
    else if (c >= 'a' && c <= 'f')
      d = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F')
      d = 10 + (c - 'A');
    else
      return std::nullopt;
    v = (v << 4) | d;
  }
  return v;
}

}  // namespace

std::string EscapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        // Remaining C0 controls have no ECHAR; the spec's way to write them
        // is a \uXXXX numeric escape. Bytes >= 0x20 (including multi-byte
        // UTF-8 sequences) pass through untouched.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04X", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string UnescapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    char e = s[i + 1];
    switch (e) {
      case '\\': out += '\\'; ++i; break;
      case '"': out += '"'; ++i; break;
      case '\'': out += '\''; ++i; break;
      case 'n': out += '\n'; ++i; break;
      case 'r': out += '\r'; ++i; break;
      case 't': out += '\t'; ++i; break;
      case 'b': out += '\b'; ++i; break;
      case 'f': out += '\f'; ++i; break;
      case 'u':
      case 'U': {
        // UCHAR: \uXXXX or \UXXXXXXXX, UTF-8-encoded into the lexical form.
        const size_t ndigits = e == 'u' ? 4 : 8;
        std::optional<uint32_t> cp = ParseHex(s, i + 2, ndigits);
        if (!cp) {
          // Malformed (truncated or non-hex digits): keep the sequence
          // verbatim rather than guessing — the '\\' goes out here and the
          // following chars flow through the loop untouched.
          out += s[i];
          break;
        }
        if (*cp > 0x10FFFF || (*cp >= 0xD800 && *cp <= 0xDFFF)) {
          // Out of range / lone surrogate: not encodable; replace.
          AppendUtf8(0xFFFD, &out);
        } else {
          AppendUtf8(*cp, &out);
        }
        i += 1 + ndigits;
        break;
      }
      default:
        // Unknown escape: historical behaviour, drop the backslash.
        out += e;
        ++i;
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(lexical) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return {};
}

std::optional<double> Term::NumericValue() const {
  if (kind != TermKind::kLiteral || lexical.empty()) return std::nullopt;
  // Cheap reject before strtod: bulk loads numeric-probe every literal once,
  // and most literals (names, emails, phone strings) are not numbers. Keep
  // strtod's leading-whitespace tolerance and its INF/NAN spellings.
  size_t first = lexical.find_first_not_of(" \t\n\r\f\v");
  if (first == std::string::npos) return std::nullopt;
  char c0 = lexical[first];
  if (!(c0 == '-' || c0 == '+' || c0 == '.' || (c0 >= '0' && c0 <= '9') || c0 == 'i' ||
        c0 == 'I' || c0 == 'n' || c0 == 'N'))
    return std::nullopt;
  const char* begin = lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  // Require that the whole lexical form was consumed (no "12abc").
  while (*end == ' ') ++end;
  if (*end != '\0') return std::nullopt;
  return v;
}

}  // namespace turbo::rdf
