// Dictionary-encoded RDF triple.
#pragma once

#include <cstddef>
#include <tuple>

#include "util/common.hpp"

namespace turbo::rdf {

/// One (subject, predicate, object) triple over dictionary ids.
struct Triple {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;

  bool operator==(const Triple& t) const { return s == t.s && p == t.p && o == t.o; }
  bool operator<(const Triple& t) const {
    return std::tie(s, p, o) < std::tie(t.s, t.p, t.o);
  }
};

/// Hash for use in unordered containers (reasoner dedup sets).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9e3779b97f4a7c15ULL + t.p;
    h = h * 0x9e3779b97f4a7c15ULL + t.o;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

}  // namespace turbo::rdf
