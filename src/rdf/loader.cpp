#include "rdf/loader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rdf/ntriples.hpp"
#include "rdf/turtle.hpp"
#include "rdf/vocabulary.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace turbo::rdf {

namespace {

struct ChunkError {
  uint64_t local_line = 0;  ///< 1-based within the chunk
  std::string message;
  std::string line_text;
};

/// Triple over chunk-local mini-dictionary ids.
struct LocalTriple {
  uint32_t s, p, o;
};

/// One parsed chunk: mini-dictionary (key-only batch + flat lookup table
/// over it), encoded triples, and bookkeeping for line attribution / error
/// parity. Terms are never materialized during chunk parsing — only keys;
/// the merge installs Terms for globally-new entries.
struct ParsedChunk {
  TermBatch batch;
  FlatIdMap map;
  std::vector<LocalTriple> triples;
  uint64_t lines = 0;
  uint64_t skipped = 0;
  std::optional<ChunkError> error;
};

uint32_t InternSlice(ParsedChunk* c, const TermSlice& slice) {
  // Fast path: the raw source span IS the canonical key — hash it in place,
  // no key construction, no copies, no Term materialization.
  if (!slice.needs_canonical_key) {
    size_t hash = TermKeyHash{}(slice.raw);
    uint32_t id = c->map.Find(hash, slice.raw);
    if (id != FlatIdMap::kNotFound) return id;
    id = static_cast<uint32_t>(c->batch.size());
    c->batch.AddKeyView(slice.raw, hash);  // the parse buffer outlives us
    c->map.Insert(hash, slice.raw, id);
    return id;
  }
  // Rare path: escapes / raw control characters force re-serialization so
  // the key matches Term::ToNTriples exactly.
  std::string key = MaterializeTerm(slice).ToNTriples();
  size_t hash = TermKeyHash{}(key);
  uint32_t id = c->map.Find(hash, key);
  if (id != FlatIdMap::kNotFound) return id;
  id = static_cast<uint32_t>(c->batch.size());
  std::string_view stable = c->batch.AddOwnedKey(std::move(key), hash);
  c->map.Insert(hash, stable, id);
  return id;
}

/// Interns an already-materialized term (Turtle encode stage; the batch
/// carries the Terms, so the merge moves instead of re-parsing them).
uint32_t InternTerm(ParsedChunk* c, Term term) {
  std::string key = term.ToNTriples();
  size_t hash = TermKeyHash{}(key);
  uint32_t id = c->map.Find(hash, key);
  if (id != FlatIdMap::kNotFound) return id;
  id = static_cast<uint32_t>(c->batch.size());
  c->batch.AddOwned(std::move(term), std::move(key), hash);
  c->map.Insert(hash, c->batch.keys.back(), id);
  return id;
}

/// Fills the chunk batch's occurrence counts and role flags from its encoded
/// triples — the per-shard signal the merge's frequency-split ranking
/// aggregates. One cache-friendly pass over the local triples; the rdf:type
/// predicate is looked up once per chunk by its canonical key.
void AccumulateTermStats(ParsedChunk* c) {
  TermBatch& b = c->batch;
  b.counts.assign(b.size(), 0);
  b.flags.assign(b.size(), 0);
  const std::string type_key = "<" + std::string(vocab::kRdfType) + ">";
  const uint32_t type_id = c->map.Find(TermKeyHash{}(type_key), type_key);
  for (const LocalTriple& t : c->triples) {
    ++b.counts[t.s];
    ++b.counts[t.p];
    ++b.counts[t.o];
    b.flags[t.p] |= kRolePredicate;
    if (t.p == type_id) b.flags[t.o] |= kRoleTypeObject;
  }
}

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) ++(*pos);
}

/// Parses one newline-aligned chunk, mirroring ParseNTriples line handling
/// exactly (same accepted inputs, same error messages). Always counts every
/// line in the chunk — even past an error — so downstream chunks' starting
/// line offsets stay exact and first-error-wins selection is correct.
void ParseNTriplesChunk(std::string_view text, LoadOptions::OnError on_error,
                        ParsedChunk* c) {
  c->triples.reserve(text.size() / 48);   // ballpark bytes-per-statement
  c->map = FlatIdMap(text.size() / 200);  // ballpark distinct terms per byte
  size_t pos = 0;
  uint64_t line_no = 0;
  // One-entry memos for the subject / predicate positions: real dumps emit
  // runs of statements about one subject (and repeated predicates), so a
  // bytewise match with the previous line skips the hash + probe entirely.
  std::string_view memo_raw[2];
  uint32_t memo_id[2] = {0, 0};
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    size_t end = eol == std::string_view::npos ? text.size() : eol;
    std::string_view line = text.substr(pos, end - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_no;
    if (c->error) continue;  // keep counting lines only

    size_t lp = 0;
    SkipSpace(line, &lp);
    if (lp >= line.size() || line[lp] == '#') continue;
    TermSlice s, p, o;
    std::string err;
    bool ok = ScanTerm(line, &lp, &s, &err) && ScanTerm(line, &lp, &p, &err) &&
              ScanTerm(line, &lp, &o, &err);
    if (ok) {
      SkipSpace(line, &lp);
      if (lp >= line.size() || line[lp] != '.') {
        ok = false;
        err = "missing terminating '.'";
      }
    }
    if (!ok) {
      if (on_error == LoadOptions::OnError::kSkip) {
        ++c->skipped;
        continue;
      }
      c->error = ChunkError{line_no, std::move(err), std::string(line)};
      continue;
    }
    auto intern_memoed = [&](const TermSlice& slice, int which) {
      if (!slice.needs_canonical_key && slice.raw == memo_raw[which])
        return memo_id[which];
      uint32_t id = InternSlice(c, slice);
      if (!slice.needs_canonical_key) {
        memo_raw[which] = slice.raw;
        memo_id[which] = id;
      }
      return id;
    };
    uint32_t si = intern_memoed(s, 0);
    uint32_t pi = intern_memoed(p, 1);
    uint32_t oi = InternSlice(c, o);
    c->triples.push_back({si, pi, oi});
  }
  c->lines = line_no;
  AccumulateTermStats(c);
}

uint32_t ResolveThreads(const LoadOptions& options) {
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (options.threads == 0) return hw;
  // Oversubscribing a CPU-bound pipeline only adds scheduling overhead, so
  // requests beyond the hardware are clamped (LoadStats::threads reports
  // what actually ran).
  return std::min(options.threads, hw);
}

/// Stages 2+3, shared by both formats: sharded dictionary merge, id-parallel
/// remap into the dataset's original region, optional fused graph build.
util::Status AssembleChunks(std::vector<ParsedChunk>* chunks, const LoadOptions& options,
                            util::ThreadPool* pool, LoadResult* out) {
  util::WallTimer timer;
  LoadStats& stats = out->stats;
  Dataset& ds = out->dataset;

  // ---- Sharded dictionary merge. No up-front Reserve: a sum of per-batch
  // sizes over-counts shared terms ~2x on skewed inputs, so the merge sizes
  // each shard exactly from its resolved distinct count instead. ----
  std::vector<TermBatch> batches(chunks->size());
  for (size_t i = 0; i < chunks->size(); ++i)
    batches[i] = std::move((*chunks)[i].batch);
  std::vector<std::vector<TermId>> mappings;
  ds.dict().MergeBatches(&batches, &mappings, pool);
  stats.merge_ms = timer.ElapsedMillis();
  timer.Reset();

  // ---- Id-parallel remap into dataset order. ----
  uint64_t total = 0;
  std::vector<uint64_t> offsets(chunks->size() + 1, 0);
  for (size_t i = 0; i < chunks->size(); ++i) {
    offsets[i] = total;
    total += (*chunks)[i].triples.size();
  }
  offsets[chunks->size()] = total;
  std::vector<Triple> encoded(total);
  pool->ParallelFor(chunks->size(), 1, [&](uint64_t begin, uint64_t end, uint32_t) {
    for (uint64_t ci = begin; ci < end; ++ci) {
      const ParsedChunk& chunk = (*chunks)[ci];
      const std::vector<TermId>& map = mappings[ci];
      Triple* slot = encoded.data() + offsets[ci];
      for (const LocalTriple& t : chunk.triples)
        *slot++ = Triple{map[t.s], map[t.p], map[t.o]};
    }
  });
  if (auto st = ds.AppendOriginal(encoded); !st.ok()) return st;
  stats.remap_ms = timer.ElapsedMillis();
  timer.Reset();

  stats.triples = total;
  stats.terms = ds.dict().size();
  stats.chunks = chunks->size();

  // ---- Optional fused graph build: chunks feed the builder in order. ----
  if (options.build_graph) {
    graph::GraphBuilder builder(ds.dict(), options.transform);
    for (size_t i = 0; i < chunks->size(); ++i)
      builder.Append({encoded.data() + offsets[i],
                      static_cast<size_t>(offsets[i + 1] - offsets[i])},
                     /*inferred=*/false);
    out->graph = std::make_unique<graph::DataGraph>(builder.Finish());
    stats.graph_ms = timer.ElapsedMillis();
  }
  return util::Status::Ok();
}

util::Result<LoadResult> ReadFileThen(
    const std::string& path,
    util::Result<LoadResult> (*load)(std::string, const LoadOptions&),
    const LoadOptions& options) {
  util::WallTimer timer;
  // Streamed read (not ftell-sized): also correct for FIFOs, /proc files,
  // and other non-regular inputs whose size cannot be known up front.
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
    text.append(buf, static_cast<size_t>(in.gcount()));
  double read_ms = timer.ElapsedMillis();
  auto result = load(std::move(text), options);
  if (result.ok()) {
    result.value().stats.read_ms = read_ms;
    result.value().stats.total_ms += read_ms;
  }
  return result;
}

/// Read-only file mapping: the N-Triples chunk parser works on views, so
/// mapping skips the kernel->user copy an fread would pay for the whole
/// dump. ok() is false when the file cannot be opened OR mapped; the
/// caller falls back to the buffered reader.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return;
    struct stat st;
    // Only regular files map meaningfully; FIFOs / device / proc files
    // must go through the streamed fallback (st_size lies for them).
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size > 0) {
        void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ, MAP_PRIVATE,
                         fd, 0);
        if (p != MAP_FAILED) {
          data_ = static_cast<const char*>(p);
          size_ = static_cast<size_t>(st.st_size);
          ::madvise(p, size_, MADV_SEQUENTIAL | MADV_WILLNEED);
        }
      } else {
        empty_ok_ = true;
      }
    }
    ::close(fd);
  }
  ~MappedFile() {
    if (data_) ::munmap(const_cast<char*>(data_), size_);
  }
  bool ok() const { return data_ != nullptr || empty_ok_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool empty_ok_ = false;
};

util::Result<LoadResult> LoadNTriplesView(std::string_view text, const LoadOptions& options);

}  // namespace

util::Result<LoadResult> LoadNTriples(std::string text, const LoadOptions& options) {
  return LoadNTriplesView(text, options);
}

namespace {

util::Result<LoadResult> LoadNTriplesView(std::string_view text, const LoadOptions& options) {
  util::WallTimer total_timer;
  util::WallTimer timer;
  LoadResult out;
  out.stats.bytes = text.size();
  uint32_t threads = ResolveThreads(options);
  out.stats.threads = threads;

  // ---- Newline-aligned chunk boundaries (deterministic: they depend only
  // on chunk_bytes and the input, never on the thread count). ----
  size_t chunk_bytes = options.chunk_bytes > 0
                           ? options.chunk_bytes
                           : std::clamp(text.size() / 64, size_t{2} << 20, size_t{4} << 20);
  std::vector<std::pair<size_t, size_t>> bounds;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t target = begin + chunk_bytes;
    size_t end;
    if (target >= text.size()) {
      end = text.size();
    } else {
      size_t nl = text.find('\n', target);
      end = nl == std::string::npos ? text.size() : nl + 1;
    }
    bounds.emplace_back(begin, end);
    begin = end;
  }

  // ---- Stage 1: parallel chunk parse into mini-dictionaries. ----
  util::ThreadPool pool(threads);
  std::vector<ParsedChunk> chunks(bounds.size());
  pool.ParallelFor(bounds.size(), 1, [&](uint64_t b, uint64_t e, uint32_t) {
    for (uint64_t i = b; i < e; ++i)
      ParseNTriplesChunk(
          std::string_view(text).substr(bounds[i].first, bounds[i].second - bounds[i].first),
          options.on_error, &chunks[i]);
  });
  out.stats.parse_ms = timer.ElapsedMillis();
  timer.Reset();

  // ---- Error selection: first error by global line, matching what the
  // sequential parser would have reported. ----
  uint64_t line_offset = 0;
  for (const ParsedChunk& c : chunks) {
    out.stats.lines += c.lines;
    out.stats.skipped_lines += c.skipped;
    if (c.error)
      return MakeParseError(line_offset + c.error->local_line, c.error->message,
                            c.error->line_text);
    line_offset += c.lines;
  }

  if (auto st = AssembleChunks(&chunks, options, &pool, &out); !st.ok()) return st;
  out.stats.total_ms = total_timer.ElapsedMillis();
  return out;
}

}  // namespace

util::Result<LoadResult> LoadTurtle(std::string text, const LoadOptions& options) {
  util::WallTimer total_timer;
  util::WallTimer timer;
  LoadResult out;
  out.stats.bytes = text.size();
  uint32_t threads = ResolveThreads(options);
  out.stats.threads = threads;

  // ---- Stage 1a: sequential tokenization into statement batches (the
  // prefix table is stateful), sized so a batch is comparable to an
  // N-Triples chunk. ----
  const size_t batch_statements =
      std::max<size_t>(1, (options.chunk_bytes > 0 ? options.chunk_bytes : (4u << 20)) / 256);
  std::vector<std::vector<Term>> stmt_batches;  // flat s,p,o runs
  stmt_batches.emplace_back();
  stmt_batches.back().reserve(3 * batch_statements);
  util::Status st = ParseTurtleToSink(std::move(text), [&](Term s, Term p, Term o) {
    std::vector<Term>& batch = stmt_batches.back();
    if (batch.size() >= 3 * batch_statements) {
      stmt_batches.emplace_back();
      stmt_batches.back().reserve(3 * batch_statements);
    }
    stmt_batches.back().push_back(std::move(s));
    stmt_batches.back().push_back(std::move(p));
    stmt_batches.back().push_back(std::move(o));
  });
  if (!st.ok()) return st;

  // ---- Stage 1b: parallel encode of statement batches into
  // mini-dictionaries (the same merge/remap stages as N-Triples follow). ----
  util::ThreadPool pool(threads);
  std::vector<ParsedChunk> chunks(stmt_batches.size());
  pool.ParallelFor(stmt_batches.size(), 1, [&](uint64_t b, uint64_t e, uint32_t) {
    for (uint64_t i = b; i < e; ++i) {
      std::vector<Term>& terms = stmt_batches[i];
      ParsedChunk& c = chunks[i];
      c.triples.reserve(terms.size() / 3);
      for (size_t k = 0; k + 2 < terms.size(); k += 3) {
        uint32_t si = InternTerm(&c, std::move(terms[k]));
        uint32_t pi = InternTerm(&c, std::move(terms[k + 1]));
        uint32_t oi = InternTerm(&c, std::move(terms[k + 2]));
        c.triples.push_back({si, pi, oi});
      }
      terms.clear();
      terms.shrink_to_fit();
      AccumulateTermStats(&c);
    }
  });
  out.stats.parse_ms = timer.ElapsedMillis();

  if (auto ast = AssembleChunks(&chunks, options, &pool, &out); !ast.ok()) return ast;
  out.stats.total_ms = total_timer.ElapsedMillis();
  return out;
}

util::Result<LoadResult> LoadNTriplesFile(const std::string& path,
                                          const LoadOptions& options) {
  util::WallTimer timer;
  // Non-regular inputs (FIFOs, /proc, devices) must not be opened twice —
  // a probe open would consume the stream (or kill its writer) — so route
  // them to the single-open streamed reader up front.
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
    return ReadFileThen(path, &LoadNTriples, options);
  MappedFile mapped(path);
  // Regular file whose mmap was refused: reopening for a buffered read is
  // safe (also reproduces "cannot open" for unopenable paths).
  if (!mapped.ok()) return ReadFileThen(path, &LoadNTriples, options);
  double read_ms = timer.ElapsedMillis();  // page-ins accrue to parse time
  auto result = LoadNTriplesView(mapped.view(), options);
  if (result.ok()) {
    result.value().stats.read_ms = read_ms;
    result.value().stats.total_ms += read_ms;
  }
  return result;
}

util::Result<LoadResult> LoadTurtleFile(const std::string& path, const LoadOptions& options) {
  return ReadFileThen(path, &LoadTurtle, options);
}

util::Result<LoadResult> LoadRdfFile(const std::string& path, const LoadOptions& options) {
  auto dot = path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "ttl" || ext == "turtle") return LoadTurtleFile(path, options);
  return LoadNTriplesFile(path, options);
}

void RerankDatasetByFrequency(Dataset* ds) {
  Dictionary& dict = ds->dict();
  const size_t n = dict.size();
  if (n == 0) return;
  std::vector<RankInput> items(n);
  for (size_t i = 0; i < n; ++i) items[i].first = i;  // old id = arrival order
  const std::optional<TermId> type_id = dict.Find(Term::Iri(vocab::kRdfType));
  for (const Triple& t : ds->triples()) {
    ++items[t.s].count;
    ++items[t.p].count;
    ++items[t.o].count;
    items[t.p].flags |= kRolePredicate;
    if (type_id && t.p == *type_id) items[t.o].flags |= kRoleTypeObject;
  }
  size_t band = 0;
  const std::vector<uint32_t> order = FrequencySplitOrder(items, &band);
  dict.Permute(order, band);
  std::vector<TermId> new_id(n);
  for (size_t r = 0; r < n; ++r) new_id[order[r]] = static_cast<TermId>(r);
  for (Triple& t : ds->mutable_triples()) {
    t.s = new_id[t.s];
    t.p = new_id[t.p];
    t.o = new_id[t.o];
  }
}

}  // namespace turbo::rdf
