#include "rdf/ntriples.hpp"

#include <sstream>
#include <string>

namespace turbo::rdf {

namespace {

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) ++(*pos);
}

}  // namespace

util::Result<Term> ParseTerm(std::string_view line, size_t* pos) {
  SkipSpace(line, pos);
  if (*pos >= line.size()) return util::Status::Error("unexpected end of line");
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) return util::Status::Error("unterminated IRI");
    std::string iri(line.substr(*pos + 1, end - *pos - 1));
    *pos = end + 1;
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':')
      return util::Status::Error("malformed blank node");
    size_t start = *pos + 2;
    size_t end = start;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != '.')
      ++end;
    std::string label(line.substr(start, end - start));
    if (label.empty()) return util::Status::Error("empty blank node label");
    *pos = end;
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    // Scan for the closing quote, honoring backslash escapes.
    size_t i = *pos + 1;
    std::string raw;
    bool closed = false;
    while (i < line.size()) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        raw += line[i];
        raw += line[i + 1];
        i += 2;
        continue;
      }
      if (line[i] == '"') {
        closed = true;
        break;
      }
      raw += line[i];
      ++i;
    }
    if (!closed) return util::Status::Error("unterminated literal");
    std::string lex = UnescapeNTriples(raw);
    *pos = i + 1;
    // Optional language tag or datatype.
    if (*pos < line.size() && line[*pos] == '@') {
      size_t start = *pos + 1;
      size_t end = start;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != '.')
        ++end;
      std::string lang(line.substr(start, end - start));
      *pos = end;
      return Term::LangLiteral(std::move(lex), std::move(lang));
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<')
        return util::Status::Error("malformed datatype");
      size_t end = line.find('>', *pos + 1);
      if (end == std::string_view::npos) return util::Status::Error("unterminated datatype IRI");
      std::string dt(line.substr(*pos + 1, end - *pos - 1));
      *pos = end + 1;
      return Term::TypedLiteral(std::move(lex), std::move(dt));
    }
    return Term::Literal(std::move(lex));
  }
  return util::Status::Error(std::string("unexpected character '") + c + "'");
}

util::Status ParseNTriples(std::istream& in, Dataset* dataset) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = 0;
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] == '#') continue;
    auto subj = ParseTerm(line, &pos);
    if (!subj.ok())
      return util::Status::Error("line " + std::to_string(line_no) + ": " + subj.message());
    auto pred = ParseTerm(line, &pos);
    if (!pred.ok())
      return util::Status::Error("line " + std::to_string(line_no) + ": " + pred.message());
    auto obj = ParseTerm(line, &pos);
    if (!obj.ok())
      return util::Status::Error("line " + std::to_string(line_no) + ": " + obj.message());
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != '.')
      return util::Status::Error("line " + std::to_string(line_no) + ": missing terminating '.'");
    dataset->Add(subj.value(), pred.value(), obj.value());
  }
  return util::Status::Ok();
}

util::Status ParseNTriplesString(std::string_view text, Dataset* dataset) {
  std::istringstream in{std::string(text)};
  return ParseNTriples(in, dataset);
}

void WriteNTriples(const Dataset& dataset, std::ostream& out, bool include_inferred) {
  size_t limit = include_inferred ? dataset.size() : dataset.num_original();
  const auto& triples = dataset.triples();
  const auto& dict = dataset.dict();
  for (size_t i = 0; i < limit; ++i) {
    const Triple& t = triples[i];
    out << dict.term(t.s).ToNTriples() << " " << dict.term(t.p).ToNTriples() << " "
        << dict.term(t.o).ToNTriples() << " .\n";
  }
}

}  // namespace turbo::rdf
