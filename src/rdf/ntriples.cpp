#include "rdf/ntriples.hpp"

#include <sstream>
#include <string>

namespace turbo::rdf {

namespace {

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) ++(*pos);
}

/// Scans to the end of an unquoted token (blank label, language tag).
size_t TokenEnd(std::string_view line, size_t start) {
  size_t end = start;
  while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != '.')
    ++end;
  return end;
}

}  // namespace

bool ScanTerm(std::string_view line, size_t* pos, TermSlice* out, std::string* err) {
  SkipSpace(line, pos);
  *out = TermSlice{};
  if (*pos >= line.size()) {
    *err = "unexpected end of line";
    return false;
  }
  const size_t term_start = *pos;
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      *err = "unterminated IRI";
      return false;
    }
    out->kind = TermKind::kIri;
    out->body = line.substr(*pos + 1, end - *pos - 1);
    *pos = end + 1;
    out->raw = line.substr(term_start, *pos - term_start);
    return true;
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      *err = "malformed blank node";
      return false;
    }
    size_t start = *pos + 2;
    size_t end = TokenEnd(line, start);
    if (end == start) {
      *err = "empty blank node label";
      return false;
    }
    out->kind = TermKind::kBlank;
    out->body = line.substr(start, end - start);
    *pos = end;
    out->raw = line.substr(term_start, *pos - term_start);
    return true;
  }
  if (c == '"') {
    // Scan for the closing quote, honoring backslash escapes.
    size_t i = *pos + 1;
    bool closed = false;
    bool escapes = false, needs_canonical = false;
    while (i < line.size()) {
      char b = line[i];
      if (b == '\\' && i + 1 < line.size()) {
        escapes = needs_canonical = true;
        i += 2;
        continue;
      }
      if (b == '"') {
        closed = true;
        break;
      }
      // Any raw control character: canonical N-Triples writes these as
      // ECHAR / \uXXXX escapes, so the raw span is not the canonical form.
      if (static_cast<unsigned char>(b) < 0x20) needs_canonical = true;
      ++i;
    }
    if (!closed) {
      *err = "unterminated literal";
      return false;
    }
    out->kind = TermKind::kLiteral;
    out->body = line.substr(*pos + 1, i - *pos - 1);
    out->has_escapes = escapes;
    out->needs_canonical_key = needs_canonical;
    *pos = i + 1;
    // Optional language tag or datatype.
    if (*pos < line.size() && line[*pos] == '@') {
      size_t start = *pos + 1;
      size_t end = TokenEnd(line, start);
      out->lang = line.substr(start, end - start);
      // An empty tag ('"a"@') materializes as a plain literal whose
      // canonical form drops the '@' — the raw span is not the key then.
      if (out->lang.empty()) out->needs_canonical_key = true;
      *pos = end;
      out->raw = line.substr(term_start, *pos - term_start);
      return true;
    }
    if (*pos + 1 < line.size() && line[*pos] == '^' && line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        *err = "malformed datatype";
        return false;
      }
      size_t end = line.find('>', *pos + 1);
      if (end == std::string_view::npos) {
        *err = "unterminated datatype IRI";
        return false;
      }
      out->datatype = line.substr(*pos + 1, end - *pos - 1);
      // Same for an empty datatype ('"a"^^<>').
      if (out->datatype.empty()) out->needs_canonical_key = true;
      *pos = end + 1;
    }
    out->raw = line.substr(term_start, *pos - term_start);
    return true;
  }
  *err = std::string("unexpected character '") + c + "'";
  return false;
}

Term MaterializeTerm(const TermSlice& slice) {
  switch (slice.kind) {
    case TermKind::kIri:
      return Term::Iri(std::string(slice.body));
    case TermKind::kBlank:
      return Term::Blank(std::string(slice.body));
    case TermKind::kLiteral: {
      std::string lex =
          slice.has_escapes ? UnescapeNTriples(slice.body) : std::string(slice.body);
      if (!slice.lang.empty()) return Term::LangLiteral(std::move(lex), std::string(slice.lang));
      if (!slice.datatype.empty())
        return Term::TypedLiteral(std::move(lex), std::string(slice.datatype));
      return Term::Literal(std::move(lex));
    }
  }
  return {};
}

Term TermFromNTriplesKey(std::string_view key) {
  size_t pos = 0;
  TermSlice slice;
  std::string err;
  if (!ScanTerm(key, &pos, &slice, &err)) return {};
  return MaterializeTerm(slice);
}

util::Status MakeParseError(size_t line_no, const std::string& msg, std::string_view line) {
  return util::Status::Error("line " + std::to_string(line_no) + ": " + msg + ": " +
                             std::string(line));
}

util::Result<Term> ParseTerm(std::string_view line, size_t* pos) {
  TermSlice slice;
  std::string err;
  if (!ScanTerm(line, pos, &slice, &err)) return util::Status::Error(err);
  return MaterializeTerm(slice);
}

util::Status ParseNTriples(std::istream& in, Dataset* dataset) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = 0;
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] == '#') continue;
    TermSlice s, p, o;
    std::string err;
    if (!ScanTerm(line, &pos, &s, &err) || !ScanTerm(line, &pos, &p, &err) ||
        !ScanTerm(line, &pos, &o, &err))
      return MakeParseError(line_no, err, line);
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] != '.')
      return MakeParseError(line_no, "missing terminating '.'", line);
    dataset->Add(MaterializeTerm(s), MaterializeTerm(p), MaterializeTerm(o));
  }
  return util::Status::Ok();
}

util::Status ParseNTriplesString(std::string_view text, Dataset* dataset) {
  std::istringstream in{std::string(text)};
  return ParseNTriples(in, dataset);
}

void WriteNTriples(const Dataset& dataset, std::ostream& out, bool include_inferred) {
  size_t limit = include_inferred ? dataset.size() : dataset.num_original();
  const auto& triples = dataset.triples();
  const auto& dict = dataset.dict();
  for (size_t i = 0; i < limit; ++i) {
    const Triple& t = triples[i];
    out << dict.term(t.s).ToNTriples() << " " << dict.term(t.p).ToNTriples() << " "
        << dict.term(t.o).ToNTriples() << " .\n";
  }
}

}  // namespace turbo::rdf
