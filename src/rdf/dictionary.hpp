// Dictionary encoding of RDF terms: bidirectional term <-> dense TermId map.
// All downstream structures (triple stores, graphs, engines) operate on ids;
// strings appear only at parse time and result-serialization time, mirroring
// how RDF-3X / TripleBit keep dictionaries out of the query hot path (the
// paper excludes dictionary look-up time from all measurements; so do we).
//
// Id layout is *frequency-split* (RDF-3X style): bulk loads rank globally-new
// terms so that the hot head of the term distribution — predicates and type
// objects first, then any term whose occurrence count clears a threshold —
// lands in a dense low-id band [0, hot_band_size()), while the cold tail
// keeps first-occurrence order (real dumps emit runs of statements about one
// subject, and that arrival locality is what keeps delta-gap encodings
// small). Small ids for hot terms shrink every downstream varint — the
// compressed adjacency in particular — and the band doubles as the domain of
// a read-mostly hot-term cache probed before any shard lookup.
//
// The index side is hash-sharded (kNumShards independent open-addressing
// tables keyed by the canonical N-Triples serialization, key bytes stored
// once in a per-shard arena — no per-entry node or string allocations).
// Incremental use (GetOrAdd / Find) is unchanged. Bulk paths: the parallel
// load pipeline uses MergeBatches, merging per-chunk mini-dictionaries
// shard-parallel — each shard owns a disjoint hash range, so shard merges
// never contend; new ids come from one global frequency-split ranking over
// the pending terms, making id assignment deterministic (it depends on batch
// order and content, never on thread count or scheduling). Snapshot reloads
// use AddUnique (positional bulk install); AddBatch is the simple
// interning-loop convenience.
#pragma once

#include <atomic>
#include <forward_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.hpp"
#include "util/common.hpp"
#include "util/status.hpp"

namespace turbo::util {
class ThreadPool;
}

namespace turbo::rdf {

/// A key view paired with its precomputed hash: the load pipeline hashes
/// every key exactly once (at mini-dictionary intern time) and reuses the
/// value through shard selection and the global-map merge lookups.
struct HashedKey {
  std::string_view key;
  size_t hash;
};

/// Fast 64-bit byte hash (rotate-multiply over 8-byte blocks). Keys are
/// long IRIs hashed millions of times during bulk loads, so throughput per
/// byte matters more here than cryptographic mixing; collisions only cost a
/// memcmp.
inline size_t HashTermKey(std::string_view s) {
  const char* p = s.data();
  size_t n = s.size();
  uint64_t h = 0x2545f4914f6cdd1dull ^ (n * 0x9e3779b97f4a7c15ull);
  auto mix = [&h](uint64_t k) {
    h ^= k * 0x9ddfea08eb382d69ull;
    h = (h << 27 | h >> 37) * 0x9e3779b97f4a7c15ull;
  };
  while (n >= 8) {
    uint64_t k;
    __builtin_memcpy(&k, p, 8);
    mix(k);
    p += 8;
    n -= 8;
  }
  if (n) {
    uint64_t k = 0;
    __builtin_memcpy(&k, p, n);
    mix(k);
  }
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

/// Hash usable for std::string / std::string_view / HashedKey keys, shared
/// by the global dictionary shards and the per-chunk mini-dictionaries so
/// shard assignment agrees everywhere. HashedKey short-circuits to the
/// stored value.
struct TermKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return HashTermKey(s); }
  size_t operator()(const std::string& s) const { return HashTermKey(s); }
  size_t operator()(const HashedKey& k) const { return k.hash; }
};

/// Term-role bits carried by bulk batches: whether a term ever occurred in
/// predicate position or as the object of rdf:type. Flagged terms rank ahead
/// of everything else in the frequency-split ordering — they are the labels
/// the graph layer folds into every adjacency directory entry.
enum TermRoleFlag : uint8_t {
  kRolePredicate = 1,
  kRoleTypeObject = 2,
};

/// One parse chunk's private dictionary content, in first-occurrence order:
/// entry i has canonical key keys[i] (N-Triples form, the dictionary key)
/// with precomputed hash hashes[i].
///
/// Two fill modes, chosen per batch:
///  * key-only (AddKeyView): keys view caller-stable storage (the parse
///    buffer, or `owned` via AddOwnedKey). Term objects are derived from
///    the canonical key *at merge-install time*, so only merge winners —
///    one per distinct term globally — ever materialize a Term. This is the
///    N-Triples fast path.
///  * term-carrying (AddOwned): the Term is already materialized (Turtle
///    statements, snapshot reloads) and is moved into the dictionary.
/// MergeBatches consumes the batch either way.
///
/// `counts` / `flags` (optional, filled after the chunk's triples exist)
/// carry per-entry occurrence counts and TermRoleFlag bits; MergeBatches
/// aggregates them across batches to drive the frequency-split ranking.
/// When absent, every entry counts once with no role flags.
///
/// Move-only on purpose: `keys` may view into `owned`, whose nodes are
/// stable under a (noexcept) move but would dangle after a copy — and a
/// throwing move would make std::vector reallocation silently copy, so
/// `owned` is a forward_list (noexcept move, stable nodes), not a deque.
struct TermBatch {
  std::vector<std::string_view> keys;
  std::vector<size_t> hashes;
  std::vector<Term> terms;  ///< empty in key-only mode, else parallel
  std::vector<uint32_t> counts;  ///< occurrences in the chunk (may be empty)
  std::vector<uint8_t> flags;    ///< TermRoleFlag bits (may be empty)
  std::forward_list<std::string> owned;  ///< backing store for non-external keys

  TermBatch() = default;
  TermBatch(TermBatch&&) noexcept = default;
  TermBatch& operator=(TermBatch&&) noexcept = default;
  TermBatch(const TermBatch&) = delete;
  TermBatch& operator=(const TermBatch&) = delete;

  size_t size() const { return keys.size(); }

  void AddKeyView(std::string_view key, size_t hash) {
    keys.push_back(key);
    hashes.push_back(hash);
  }
  /// Key-only entry whose key has no stable external storage; returns the
  /// stable view.
  std::string_view AddOwnedKey(std::string key, size_t hash) {
    owned.push_front(std::move(key));
    keys.push_back(owned.front());
    hashes.push_back(hash);
    return owned.front();
  }
  void AddOwned(Term term, std::string key, size_t hash) {
    terms.push_back(std::move(term));
    AddOwnedKey(std::move(key), hash);
  }
};

/// Open-addressing (hash, key view, id) table — the per-occurrence hot path
/// of bulk interning. Flat storage, power-of-two capacity, linear probing:
/// no node allocations, typically one cache line per hit. Key views must
/// stay valid for the table's lifetime (they point into the parse buffer or
/// a TermBatch's owned storage).
class FlatIdMap {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  /// `expected` sizes the table for that many inserts up front (it still
  /// grows on demand past it).
  explicit FlatIdMap(size_t expected = 512) {
    size_t cap = 1024;
    while (cap * 7 < expected * 10) cap *= 2;
    slots_.resize(cap);
  }

  uint32_t Find(size_t hash, std::string_view key) const {
    for (size_t i = hash & mask();; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      if (s.data == nullptr) return kNotFound;
      if (s.hash == hash && std::string_view(s.data, s.len) == key) return s.id;
    }
  }

  /// `key` must be absent (Find first) and outlive the table.
  void Insert(size_t hash, std::string_view key, uint32_t id) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) Grow();
    InsertNoGrow(hash, key, id);
    ++count_;
  }

 private:
  struct Slot {
    size_t hash = 0;
    const char* data = nullptr;
    uint32_t len = 0;
    uint32_t id = 0;
  };
  size_t mask() const { return slots_.size() - 1; }

  void InsertNoGrow(size_t hash, std::string_view key, uint32_t id) {
    size_t i = hash & mask();
    while (slots_[i].data != nullptr) i = (i + 1) & mask();
    slots_[i] = {hash, key.data(), static_cast<uint32_t>(key.size()), id};
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old)
      if (s.data != nullptr) InsertNoGrow(s.hash, {s.data, s.len}, s.id);
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
};

/// One shard of the global term index: open-addressing (hash, id) slots with
/// the key bytes stored once in an append-only arena. Compared to the
/// node-based map it replaces, an insert is a slot write plus an arena
/// append (no node allocation, no separate std::string), and the whole
/// index is two flat allocations per shard — the difference is most visible
/// in the bulk-merge install phase, which used to allocate twice per
/// globally-new term.
class ShardTable {
 public:
  static constexpr TermId kNotFound = 0xffffffffu;

  TermId Find(size_t hash, std::string_view key) const {
    if (slots_.empty()) return kNotFound;
    for (size_t i = hash & mask();; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      if (s.id == kNotFound) return kNotFound;
      if (s.hash == hash &&
          std::string_view(arena_.data() + s.key_off, s.key_len) == key)
        return s.id;
    }
  }

  /// `key` must be absent (Find first); the bytes are copied into the arena.
  void Insert(size_t hash, std::string_view key, TermId id) {
    if (slots_.empty() || (size_ + 1) * 10 >= slots_.size() * 7)
      Rehash(std::max<size_t>(size_ + 1, slots_.size()));
    Slot s;
    s.hash = hash;
    s.key_off = arena_.size();
    s.key_len = static_cast<uint32_t>(key.size());
    s.id = id;
    arena_.append(key);
    Place(s);
    ++size_;
  }

  /// Pre-sizes the slot array for `n` total entries (exact counts are known
  /// at merge-install time; sizing once avoids mid-install rehashes).
  void Reserve(size_t n) {
    if (n * 10 >= slots_.size() * 7) Rehash(n);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }
  size_t bytes() const {
    return slots_.capacity() * sizeof(Slot) + arena_.capacity();
  }

 private:
  struct Slot {
    size_t hash = 0;
    uint64_t key_off = 0;
    uint32_t key_len = 0;
    TermId id = kNotFound;
  };
  size_t mask() const { return slots_.size() - 1; }

  void Place(const Slot& s) {
    size_t i = s.hash & mask();
    while (slots_[i].id != kNotFound) i = (i + 1) & mask();
    slots_[i] = s;
  }

  void Rehash(size_t n) {
    std::vector<Slot> old = std::move(slots_);
    size_t cap = 64;
    while (cap * 7 < n * 10) cap *= 2;
    slots_.assign(cap, Slot{});
    for (const Slot& s : old)
      if (s.id != kNotFound) Place(s);
  }

  std::vector<Slot> slots_;
  std::string arena_;
  size_t size_ = 0;
};

/// Input row for the frequency-split ranking: aggregated occurrence count,
/// TermRoleFlag bits, and a caller-chosen first-occurrence key used both as
/// the deterministic tie-break and as the cold-tail order.
struct RankInput {
  uint64_t count = 0;
  uint64_t first = 0;
  uint8_t flags = 0;
};

/// Computes the frequency-split permutation over `items`: returns `order`
/// with order[rank] = item index, and stores the hot-band length in
/// *hot_band. The band holds every role-flagged term plus any term whose
/// count clears max(16, 8 * mean), capped at kMaxHotBand, sorted by
/// (predicate < type-object < other, count desc, first asc); the tail
/// keeps `first` order. Pure function of the inputs — scheduling never
/// enters, which is what keeps bulk-load ids deterministic at any thread
/// count.
std::vector<uint32_t> FrequencySplitOrder(std::span<const RankInput> items,
                                          size_t* hot_band);

/// Bidirectional term dictionary with a numeric-value side cache used by
/// FILTER evaluation.
class Dictionary {
 public:
  static constexpr uint32_t kNumShards = 16;
  /// Hot band cap: bounds the hot-term cache so it stays cache-resident.
  static constexpr size_t kMaxHotBand = 1u << 16;

  Dictionary() = default;
  // Copyable (LiveStore compaction clones the base dictionary); the hot-
  // cache counters are atomics for concurrent readers, so spell the copies
  // out.
  Dictionary(const Dictionary& o) { CopyFrom(o); }
  Dictionary& operator=(const Dictionary& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  Dictionary(Dictionary&& o) noexcept { MoveFrom(std::move(o)); }
  Dictionary& operator=(Dictionary&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }

  /// Interns a term, returning its id (existing or new).
  TermId GetOrAdd(const Term& term);
  /// Convenience: interns an IRI.
  TermId GetOrAddIri(const std::string& iri) { return GetOrAdd(Term::Iri(iri)); }

  /// Looks up an existing term; nullopt if not interned.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(const std::string& iri) const { return Find(Term::Iri(iri)); }

  /// Pre-sizes the term table and index shards for `num_terms` total terms.
  /// Callers should pass a *distinct*-term count (or a tight estimate), not
  /// a sum of per-batch sizes: bulk merges size their shards exactly from
  /// the resolved distinct counts, so over-reserving here only wastes
  /// allocation work.
  void Reserve(size_t num_terms);

  /// Bulk-interns `terms` in order, appending each term's id (existing or
  /// new) to `ids`. Equivalent to GetOrAdd per element, minus per-call
  /// overhead.
  void AddBatch(const std::vector<Term>& terms, std::vector<TermId>* ids);

  /// Positional bulk install: terms[i] gets id size() + i, unconditionally —
  /// the snapshot rebuild path, where triple sections reference terms by
  /// position (and the saved id order already carries the frequency split).
  /// Hashing, table fill, and shard insertion parallelize on `pool` (may be
  /// null). Errors if any term duplicates another or an existing entry; the
  /// dictionary is unusable after an error (callers discard it — a corrupt
  /// snapshot aborts the whole load).
  util::Status AddUnique(std::vector<Term>&& terms, util::ThreadPool* pool = nullptr);

  /// Hash-sharded merge of per-chunk mini-dictionaries: after the call,
  /// (*mappings)[b][i] is the global id of batches[b].terms[i]. Globally-new
  /// terms get ids in frequency-split order (see FrequencySplitOrder, fed by
  /// the batches' counts/flags) regardless of `pool` parallelism; batches
  /// are consumed. `pool` may be null (sequential merge, same ids). When the
  /// dictionary was empty on entry the ranking also establishes the hot
  /// band + hot-term cache; later merges rank their new tail but leave the
  /// established band untouched.
  void MergeBatches(std::vector<TermBatch>* batches,
                    std::vector<std::vector<TermId>>* mappings,
                    util::ThreadPool* pool = nullptr);

  /// Term for an id. Requires id < size().
  const Term& term(TermId id) const { return terms_[id]; }

  /// Cached numeric value of a literal term (nullopt for non-numeric).
  std::optional<double> NumericValue(TermId id) const {
    const CachedNum& c = numeric_[id];
    if (!c.valid) return std::nullopt;
    return c.value;
  }

  size_t size() const { return terms_.size(); }

  // ---- Frequency-split layout. ----
  /// Terms [0, hot_band_size()) form the dense hot band (0 when the
  /// dictionary was built without ranking, e.g. purely incrementally).
  size_t hot_band_size() const { return hot_band_; }
  /// Declares [0, band) the hot band (snapshot reload path; the saved id
  /// order already encodes the ranking) and rebuilds the hot-term cache.
  void SetHotBand(size_t band);
  /// Re-ranks the whole dictionary in place: `order[rank] = old id`. Every
  /// existing id moves to its rank; the caller owns rewriting stored triples
  /// through the inverse mapping. Used by Permute-style dataset reranks and
  /// LiveStore compaction.
  void Permute(std::span<const uint32_t> order, size_t hot_band);

  /// Layout introspection for /stats, the shell banner, and tests.
  struct LayoutStats {
    size_t terms = 0;
    size_t hot_band = 0;
    uint64_t hot_hits = 0;    ///< Find/GetOrAdd/merge probes served by the cache
    uint64_t hot_probes = 0;  ///< total probes that consulted the cache
    size_t shard_entries_min = 0;
    size_t shard_entries_max = 0;
    double shard_load_min = 0;  ///< entries / slots per shard
    double shard_load_max = 0;
    double shard_load_avg = 0;
    size_t index_bytes = 0;  ///< shard slots + key arenas + hot cache
  };
  LayoutStats layout_stats() const;

  /// Shard owning a key with hash `h` — shared with the load pipeline.
  static uint32_t ShardOf(size_t h) {
    // Mix the high bits in: linear-probe placement uses the low bits, so
    // shard selection prefers an independent slice.
    return static_cast<uint32_t>((h >> 48) ^ (h >> 24) ^ h) & (kNumShards - 1);
  }

 private:
  struct CachedNum {
    double value = 0;
    bool valid = false;
  };
  struct HotSlot {
    size_t hash = 0;
    TermId id = 0xffffffffu;
  };

  /// Appends `term` to the table (id = old size) and indexes it under `key`
  /// in shard `s`. The caller has already checked absence.
  TermId Append(const Term& term, std::string_view key, size_t hash, uint32_t s);
  static CachedNum NumericOf(const Term& term);
  /// Probes the hot-term cache; kNotFound on miss. Counts probes/hits.
  TermId FindHot(size_t hash, std::string_view key) const;
  /// Rebuilds the hot cache over ids [0, hot_band_).
  void RebuildHotCache();
  void CopyFrom(const Dictionary& o);
  void MoveFrom(Dictionary&& o);

  ShardTable shards_[kNumShards];
  std::vector<Term> terms_;
  std::vector<CachedNum> numeric_;

  size_t hot_band_ = 0;
  // Read-mostly hot-term cache: an immutable-between-merges snapshot array
  // probed lock-free before any shard. hot_keys_ is indexed by id (< band).
  std::vector<HotSlot> hot_slots_;
  std::vector<std::string> hot_keys_;
  mutable std::atomic<uint64_t> hot_hits_{0};
  mutable std::atomic<uint64_t> hot_probes_{0};
};

}  // namespace turbo::rdf
