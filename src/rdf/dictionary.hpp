// Dictionary encoding of RDF terms: bidirectional term <-> dense TermId map.
// All downstream structures (triple stores, graphs, engines) operate on ids;
// strings appear only at parse time and result-serialization time, mirroring
// how RDF-3X / TripleBit keep dictionaries out of the query hot path (the
// paper excludes dictionary look-up time from all measurements; so do we).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.hpp"
#include "util/common.hpp"

namespace turbo::rdf {

/// Bidirectional term dictionary with a numeric-value side cache used by
/// FILTER evaluation.
class Dictionary {
 public:
  /// Interns a term, returning its id (existing or new).
  TermId GetOrAdd(const Term& term);
  /// Convenience: interns an IRI.
  TermId GetOrAddIri(const std::string& iri) { return GetOrAdd(Term::Iri(iri)); }

  /// Looks up an existing term; nullopt if not interned.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(const std::string& iri) const { return Find(Term::Iri(iri)); }

  /// Term for an id. Requires id < size().
  const Term& term(TermId id) const { return terms_[id]; }

  /// Cached numeric value of a literal term (nullopt for non-numeric).
  std::optional<double> NumericValue(TermId id) const {
    const CachedNum& c = numeric_[id];
    if (!c.valid) return std::nullopt;
    return c.value;
  }

  size_t size() const { return terms_.size(); }

 private:
  struct CachedNum {
    double value = 0;
    bool valid = false;
  };
  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
  std::vector<CachedNum> numeric_;
};

}  // namespace turbo::rdf
