// Dictionary encoding of RDF terms: bidirectional term <-> dense TermId map.
// All downstream structures (triple stores, graphs, engines) operate on ids;
// strings appear only at parse time and result-serialization time, mirroring
// how RDF-3X / TripleBit keep dictionaries out of the query hot path (the
// paper excludes dictionary look-up time from all measurements; so do we).
//
// The index side is hash-sharded (kNumShards independent maps keyed by the
// canonical N-Triples serialization). Incremental use (GetOrAdd / Find) is
// unchanged. Bulk paths: the parallel load pipeline uses Reserve +
// MergeBatches, merging per-chunk mini-dictionaries shard-parallel — each
// shard owns a disjoint hash range, so shard merges never contend, and new
// ids are assigned by per-shard prefix sums, making id assignment
// deterministic (it depends on batch order and content, never on thread
// count or scheduling). Snapshot reloads use AddUnique (positional bulk
// install); AddBatch is the simple interning-loop convenience.
#pragma once

#include <forward_list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.hpp"
#include "util/common.hpp"
#include "util/status.hpp"

namespace turbo::util {
class ThreadPool;
}

namespace turbo::rdf {

/// A key view paired with its precomputed hash: the load pipeline hashes
/// every key exactly once (at mini-dictionary intern time) and reuses the
/// value through shard selection and the global-map merge lookups.
struct HashedKey {
  std::string_view key;
  size_t hash;
};

/// Fast 64-bit byte hash (rotate-multiply over 8-byte blocks). Keys are
/// long IRIs hashed millions of times during bulk loads, so throughput per
/// byte matters more here than cryptographic mixing; collisions only cost a
/// memcmp.
inline size_t HashTermKey(std::string_view s) {
  const char* p = s.data();
  size_t n = s.size();
  uint64_t h = 0x2545f4914f6cdd1dull ^ (n * 0x9e3779b97f4a7c15ull);
  auto mix = [&h](uint64_t k) {
    h ^= k * 0x9ddfea08eb382d69ull;
    h = (h << 27 | h >> 37) * 0x9e3779b97f4a7c15ull;
  };
  while (n >= 8) {
    uint64_t k;
    __builtin_memcpy(&k, p, 8);
    mix(k);
    p += 8;
    n -= 8;
  }
  if (n) {
    uint64_t k = 0;
    __builtin_memcpy(&k, p, n);
    mix(k);
  }
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

/// Hash usable for std::string / std::string_view / HashedKey keys
/// (heterogeneous unordered lookup), shared by the global dictionary shards
/// and the per-chunk mini-dictionaries so shard assignment agrees
/// everywhere. HashedKey short-circuits to the stored value.
struct TermKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return HashTermKey(s); }
  size_t operator()(const std::string& s) const { return HashTermKey(s); }
  size_t operator()(const HashedKey& k) const { return k.hash; }
};

/// Transparent content equality across the three key representations.
struct TermKeyEq {
  using is_transparent = void;
  static std::string_view View(std::string_view s) { return s; }
  static std::string_view View(const std::string& s) { return s; }
  static std::string_view View(const HashedKey& k) { return k.key; }
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return View(a) == View(b);
  }
};

/// One parse chunk's private dictionary content, in first-occurrence order:
/// entry i has canonical key keys[i] (N-Triples form, the dictionary key)
/// with precomputed hash hashes[i].
///
/// Two fill modes, chosen per batch:
///  * key-only (AddKeyView): keys view caller-stable storage (the parse
///    buffer, or `owned` via AddOwnedKey). Term objects are derived from
///    the canonical key *at merge-install time*, so only merge winners —
///    one per distinct term globally — ever materialize a Term. This is the
///    N-Triples fast path.
///  * term-carrying (AddOwned): the Term is already materialized (Turtle
///    statements, snapshot reloads) and is moved into the dictionary.
/// MergeBatches consumes the batch either way.
///
/// Move-only on purpose: `keys` may view into `owned`, whose nodes are
/// stable under a (noexcept) move but would dangle after a copy — and a
/// throwing move would make std::vector reallocation silently copy, so
/// `owned` is a forward_list (noexcept move, stable nodes), not a deque.
struct TermBatch {
  std::vector<std::string_view> keys;
  std::vector<size_t> hashes;
  std::vector<Term> terms;  ///< empty in key-only mode, else parallel
  std::forward_list<std::string> owned;  ///< backing store for non-external keys

  TermBatch() = default;
  TermBatch(TermBatch&&) noexcept = default;
  TermBatch& operator=(TermBatch&&) noexcept = default;
  TermBatch(const TermBatch&) = delete;
  TermBatch& operator=(const TermBatch&) = delete;

  size_t size() const { return keys.size(); }

  void AddKeyView(std::string_view key, size_t hash) {
    keys.push_back(key);
    hashes.push_back(hash);
  }
  /// Key-only entry whose key has no stable external storage; returns the
  /// stable view.
  std::string_view AddOwnedKey(std::string key, size_t hash) {
    owned.push_front(std::move(key));
    keys.push_back(owned.front());
    hashes.push_back(hash);
    return owned.front();
  }
  void AddOwned(Term term, std::string key, size_t hash) {
    terms.push_back(std::move(term));
    AddOwnedKey(std::move(key), hash);
  }
};

/// Open-addressing (hash, key view, id) table — the per-occurrence hot path
/// of bulk interning. Flat storage, power-of-two capacity, linear probing:
/// no node allocations, typically one cache line per hit. Key views must
/// stay valid for the table's lifetime (they point into the parse buffer or
/// a TermBatch's owned storage).
class FlatIdMap {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  /// `expected` sizes the table for that many inserts up front (it still
  /// grows on demand past it).
  explicit FlatIdMap(size_t expected = 512) {
    size_t cap = 1024;
    while (cap * 7 < expected * 10) cap *= 2;
    slots_.resize(cap);
  }

  uint32_t Find(size_t hash, std::string_view key) const {
    for (size_t i = hash & mask();; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      if (s.data == nullptr) return kNotFound;
      if (s.hash == hash && std::string_view(s.data, s.len) == key) return s.id;
    }
  }

  /// `key` must be absent (Find first) and outlive the table.
  void Insert(size_t hash, std::string_view key, uint32_t id) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) Grow();
    InsertNoGrow(hash, key, id);
    ++count_;
  }

 private:
  struct Slot {
    size_t hash = 0;
    const char* data = nullptr;
    uint32_t len = 0;
    uint32_t id = 0;
  };
  size_t mask() const { return slots_.size() - 1; }

  void InsertNoGrow(size_t hash, std::string_view key, uint32_t id) {
    size_t i = hash & mask();
    while (slots_[i].data != nullptr) i = (i + 1) & mask();
    slots_[i] = {hash, key.data(), static_cast<uint32_t>(key.size()), id};
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old)
      if (s.data != nullptr) InsertNoGrow(s.hash, {s.data, s.len}, s.id);
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
};

/// Bidirectional term dictionary with a numeric-value side cache used by
/// FILTER evaluation.
class Dictionary {
 public:
  static constexpr uint32_t kNumShards = 16;

  /// Interns a term, returning its id (existing or new).
  TermId GetOrAdd(const Term& term);
  /// Convenience: interns an IRI.
  TermId GetOrAddIri(const std::string& iri) { return GetOrAdd(Term::Iri(iri)); }

  /// Looks up an existing term; nullopt if not interned.
  std::optional<TermId> Find(const Term& term) const;
  std::optional<TermId> FindIri(const std::string& iri) const { return Find(Term::Iri(iri)); }

  /// Pre-sizes the term table and index shards for `num_terms` total terms
  /// (bulk loads know the exact count or a tight upper bound).
  void Reserve(size_t num_terms);

  /// Bulk-interns `terms` in order, appending each term's id (existing or
  /// new) to `ids`. Equivalent to GetOrAdd per element, minus per-call
  /// overhead.
  void AddBatch(const std::vector<Term>& terms, std::vector<TermId>* ids);

  /// Positional bulk install: terms[i] gets id size() + i, unconditionally —
  /// the snapshot rebuild path, where triple sections reference terms by
  /// position. Hashing, table fill, and shard insertion parallelize on
  /// `pool` (may be null). Errors if any term duplicates another or an
  /// existing entry; the dictionary is unusable after an error (callers
  /// discard it — a corrupt snapshot aborts the whole load).
  util::Status AddUnique(std::vector<Term>&& terms, util::ThreadPool* pool = nullptr);

  /// Hash-sharded merge of per-chunk mini-dictionaries: after the call,
  /// (*mappings)[b][i] is the global id of batches[b].terms[i]. New terms
  /// get ids in deterministic (shard, batch, position) order regardless of
  /// `pool` parallelism; batches are consumed. `pool` may be null
  /// (sequential merge, same ids).
  void MergeBatches(std::vector<TermBatch>* batches,
                    std::vector<std::vector<TermId>>* mappings,
                    util::ThreadPool* pool = nullptr);

  /// Term for an id. Requires id < size().
  const Term& term(TermId id) const { return terms_[id]; }

  /// Cached numeric value of a literal term (nullopt for non-numeric).
  std::optional<double> NumericValue(TermId id) const {
    const CachedNum& c = numeric_[id];
    if (!c.valid) return std::nullopt;
    return c.value;
  }

  size_t size() const { return terms_.size(); }

  /// Shard owning a key with hash `h` — shared with the load pipeline.
  static uint32_t ShardOf(size_t h) {
    // Mix the high bits in: unordered_map bucket choice uses the low bits,
    // so shard selection prefers an independent slice.
    return static_cast<uint32_t>((h >> 48) ^ (h >> 24) ^ h) & (kNumShards - 1);
  }

 private:
  struct CachedNum {
    double value = 0;
    bool valid = false;
  };
  using ShardMap = std::unordered_map<std::string, TermId, TermKeyHash, TermKeyEq>;

  /// Appends `term` to the table (id = old size) and indexes it under `key`
  /// in shard `s`. The caller has already checked absence.
  TermId Append(const Term& term, std::string&& key, uint32_t s);
  static CachedNum NumericOf(const Term& term);

  ShardMap shards_[kNumShards];
  std::vector<Term> terms_;
  std::vector<CachedNum> numeric_;
};

}  // namespace turbo::rdf
