// RDF term model: IRIs, literals (with optional datatype / language tag),
// and blank nodes.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace turbo::rdf {

/// Kind of an RDF term.
enum class TermKind : uint8_t { kIri, kLiteral, kBlank };

/// One RDF term. Literals carry lexical form plus optional datatype IRI and
/// language tag (at most one of the two is set).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;   ///< IRI string, literal lexical form, or blank label.
  std::string datatype;  ///< Datatype IRI for typed literals; empty otherwise.
  std::string lang;      ///< Language tag for lang literals; empty otherwise.

  static Term Iri(std::string iri) { return {TermKind::kIri, std::move(iri), {}, {}}; }
  static Term Literal(std::string lex) { return {TermKind::kLiteral, std::move(lex), {}, {}}; }
  static Term TypedLiteral(std::string lex, std::string dt) {
    return {TermKind::kLiteral, std::move(lex), std::move(dt), {}};
  }
  static Term LangLiteral(std::string lex, std::string language) {
    return {TermKind::kLiteral, std::move(lex), {}, std::move(language)};
  }
  static Term Blank(std::string label) { return {TermKind::kBlank, std::move(label), {}, {}}; }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  bool operator==(const Term& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype && lang == o.lang;
  }

  /// Canonical N-Triples serialization; also the dictionary key.
  std::string ToNTriples() const;

  /// Numeric value if this is a literal with a numeric-looking lexical form
  /// (integer, decimal, double — datatype is not required, matching the
  /// permissive comparisons the BSBM queries rely on).
  std::optional<double> NumericValue() const;
};

/// Escapes a string per N-Triples literal rules.
std::string EscapeNTriples(std::string_view s);
/// Reverses EscapeNTriples.
std::string UnescapeNTriples(std::string_view s);

}  // namespace turbo::rdf
