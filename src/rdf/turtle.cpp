#include "rdf/turtle.hpp"

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <unordered_map>

#include "rdf/vocabulary.hpp"

namespace turbo::rdf {

namespace {

class TurtleParser {
 public:
  TurtleParser(std::string text, const TurtleSink& sink)
      : text_(std::move(text)), sink_(sink) {}

  util::Status Run() {
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) return util::Status::Ok();
      if (Peek() == '@' || PeekWordIs("PREFIX") || PeekWordIs("prefix") ||
          PeekWordIs("BASE") || PeekWordIs("base")) {
        auto st = ParseDirective();
        if (!st.ok()) return st;
        continue;
      }
      auto st = ParseTriples();
      if (!st.ok()) return st;
    }
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool PeekWordIs(const char* w) const {
    size_t len = std::strlen(w);
    if (text_.compare(pos_, len, w) != 0) return false;
    char after = pos_ + len < text_.size() ? text_[pos_ + len] : ' ';
    return std::isspace(static_cast<unsigned char>(after));
  }
  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }
  util::Status Err(const std::string& msg) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    return util::Status::Error("turtle: " + msg + " (line " + std::to_string(line) + ")");
  }

  util::Status ParseDirective() {
    bool sparql_style = false;
    if (Peek() == '@') {
      ++pos_;
    } else {
      sparql_style = true;
    }
    SkipWs();
    if (PeekWordIsNoWs("prefix") || PeekWordIsNoWs("PREFIX")) {
      pos_ += 6;
      SkipWs();
      size_t colon = text_.find(':', pos_);
      if (colon == std::string::npos) return Err("malformed prefix name");
      std::string pfx = text_.substr(pos_, colon - pos_);
      pos_ = colon + 1;
      SkipWs();
      if (Peek() != '<') return Err("expected IRI in @prefix");
      auto iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      prefixes_[pfx] = iri.take();
    } else if (PeekWordIsNoWs("base") || PeekWordIsNoWs("BASE")) {
      pos_ += 4;
      SkipWs();
      if (Peek() != '<') return Err("expected IRI in @base");
      auto iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      base_ = iri.take();
    } else {
      return Err("unknown directive");
    }
    SkipWs();
    if (!sparql_style) {
      if (Peek() != '.') return Err("expected '.' after directive");
      ++pos_;
    } else if (Peek() == '.') {
      ++pos_;  // tolerate a trailing dot either way
    }
    return util::Status::Ok();
  }

  bool PeekWordIsNoWs(const char* w) const { return text_.compare(pos_, std::strlen(w), w) == 0; }
  /// Word followed by a non-name character (whitespace, punctuation, EOF).
  bool PeekWordIsDelim(const char* w) const {
    size_t len = std::strlen(w);
    if (text_.compare(pos_, len, w) != 0) return false;
    char after = pos_ + len < text_.size() ? text_[pos_ + len] : ' ';
    return !(std::isalnum(static_cast<unsigned char>(after)) || after == '_' || after == ':');
  }

  util::Status ParseTriples() {
    auto subj = ParseTerm(/*as_predicate=*/false);
    if (!subj.ok()) return subj.status();
    while (true) {
      SkipWs();
      auto pred = ParseTerm(/*as_predicate=*/true);
      if (!pred.ok()) return pred.status();
      while (true) {
        SkipWs();
        auto obj = ParseTerm(/*as_predicate=*/false);
        if (!obj.ok()) return obj.status();
        sink_(subj.value(), pred.value(), obj.take());
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (Peek() == ';') {
        ++pos_;
        SkipWs();
        // Tolerate dangling ';' before '.'.
        if (Peek() == '.') break;
        if (Peek() == ';') continue;
        continue;
      }
      break;
    }
    SkipWs();
    if (Peek() != '.') return Err("expected '.' terminating triples");
    ++pos_;
    return util::Status::Ok();
  }

  util::Result<std::string> ParseIriRef() {
    // Caller guarantees Peek() == '<'.
    size_t end = text_.find('>', pos_ + 1);
    if (end == std::string::npos) return Err("unterminated IRI");
    std::string iri = text_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    // Resolve against @base for relative IRIs (simple concatenation).
    if (!base_.empty() && iri.find(':') == std::string::npos) iri = base_ + iri;
    return iri;
  }

  util::Result<Term> ParseTerm(bool as_predicate) {
    SkipWs();
    char c = Peek();
    if (c == '\0') return Err("unexpected end of input");
    if (c == '<') {
      auto iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      return Term::Iri(iri.take());
    }
    if (c == '[' || c == '(')
      return Err("anonymous blank nodes / collections are not supported");
    if (c == '_' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
      pos_ += 2;
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                                     Peek() == '_' || Peek() == '-'))
        ++pos_;
      if (pos_ == start) return Err("empty blank node label");
      return Term::Blank(text_.substr(start, pos_ - start));
    }
    if (c == '"' || c == '\'') return ParseLiteral();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool dot = false;
      while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                                     (Peek() == '.' && !dot && pos_ + 1 < text_.size() &&
                                      std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))))) {
        if (Peek() == '.') dot = true;
        ++pos_;
      }
      return Term::TypedLiteral(text_.substr(start, pos_ - start),
                                dot ? vocab::kXsdDouble : vocab::kXsdInteger);
    }
    // Bare words: 'a', booleans, prefixed names.
    if (c == 'a' && as_predicate &&
        (pos_ + 1 >= text_.size() ||
         std::isspace(static_cast<unsigned char>(text_[pos_ + 1])))) {
      ++pos_;
      return Term::Iri(vocab::kRdfType);
    }
    if (PeekWordIsDelim("true") || PeekWordIsDelim("false")) {
      bool v = Peek() == 't';
      pos_ += v ? 4 : 5;
      return Term::TypedLiteral(v ? "true" : "false",
                                "http://www.w3.org/2001/XMLSchema#boolean");
    }
    // Prefixed name: pfx:local or :local.
    size_t colon = pos_;
    while (colon < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[colon])) ||
                                    text_[colon] == '_' || text_[colon] == '-'))
      ++colon;
    if (colon < text_.size() && text_[colon] == ':') {
      std::string pfx = text_.substr(pos_, colon - pos_);
      auto it = prefixes_.find(pfx);
      if (it == prefixes_.end()) return Err("unknown prefix '" + pfx + "'");
      size_t local_start = colon + 1;
      size_t end = local_start;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) || text_[end] == '_' ||
              text_[end] == '-' || text_[end] == '.'))
        ++end;
      while (end > local_start && text_[end - 1] == '.') --end;  // trailing dot = terminator
      std::string local = text_.substr(local_start, end - local_start);
      pos_ = end;
      return Term::Iri(it->second + local);
    }
    return Err(std::string("unexpected character '") + c + "'");
  }

  util::Result<Term> ParseLiteral() {
    char quote = Peek();
    bool long_quote = text_.compare(pos_, 3, std::string(3, quote)) == 0;
    size_t start = pos_ + (long_quote ? 3 : 1);
    std::string raw;
    size_t i = start;
    bool closed = false;
    while (i < text_.size()) {
      if (text_[i] == '\\' && i + 1 < text_.size()) {
        raw += text_[i];
        raw += text_[i + 1];
        i += 2;
        continue;
      }
      if (long_quote) {
        if (text_.compare(i, 3, std::string(3, quote)) == 0) {
          // One or two quotes may precede the closing delimiter; they belong
          // to the content ("""a"""" is the string a").
          if (i + 3 < text_.size() && text_[i + 3] == quote) {
            raw += text_[i++];
            continue;
          }
          closed = true;
          i += 3;
          break;
        }
      } else if (text_[i] == quote) {
        closed = true;
        ++i;
        break;
      }
      raw += text_[i++];
    }
    if (!closed) return Err("unterminated literal");
    pos_ = i;
    std::string lex = UnescapeNTriples(raw);
    if (Peek() == '@') {
      ++pos_;
      size_t s = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                                     Peek() == '-'))
        ++pos_;
      return Term::LangLiteral(std::move(lex), text_.substr(s, pos_ - s));
    }
    if (text_.compare(pos_, 2, "^^") == 0) {
      pos_ += 2;
      auto dt = ParseTerm(false);
      if (!dt.ok()) return dt.status();
      if (!dt.value().is_iri()) return Err("datatype must be an IRI");
      return Term::TypedLiteral(std::move(lex), dt.take().lexical);
    }
    return Term::Literal(std::move(lex));
  }

  std::string text_;
  size_t pos_ = 0;
  const TurtleSink& sink_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

util::Status ParseTurtleToSink(std::string text, const TurtleSink& sink) {
  return TurtleParser(std::move(text), sink).Run();
}

util::Status ParseTurtleString(std::string_view text, Dataset* dataset) {
  return ParseTurtleToSink(std::string(text), [dataset](Term s, Term p, Term o) {
    dataset->Add(s, p, o);
  });
}

util::Status ParseTurtle(std::istream& in, Dataset* dataset) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtleString(buf.str(), dataset);
}

}  // namespace turbo::rdf
