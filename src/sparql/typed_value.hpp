// Shared typed numeric values for SPARQL evaluation.
//
// One place owns the "is this term a number, and which kind" decision —
// FILTER comparison, aggregate accumulation (SUM / AVG), and the grouped
// result materialization all coerce through here, so xsd:integer /
// xsd:decimal / xsd:double literals behave identically everywhere:
//
//  * integer-typed (or integer-shaped untyped) literals parse exactly into
//    int64 and stay exact through SUM until they overflow, at which point
//    the accumulator promotes to double (the SPARQL-ish graceful overflow
//    used by most stores, instead of wrapping or erroring);
//  * decimal / double / float literals (and anything with a fractional or
//    exponent lexical form) evaluate as double;
//  * non-numeric terms coerce to "no value" — the caller maps that to its
//    own error semantics (FILTER: the comparison errors to false; aggregate
//    accumulation: the aggregate's result becomes unbound).
//
// The lexical-form probe itself is rdf::Term::NumericValue (it feeds the
// Dictionary's cached numeric view); this header adds the typed layer on
// top without re-parsing more than once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rdf/term.hpp"

namespace turbo::sparql {

/// An exact-or-approximate numeric value: int64 while exact, double after
/// any decimal input or integer overflow.
struct Numeric {
  enum class Kind : uint8_t { kInt, kDouble };
  Kind kind = Kind::kInt;
  int64_t i = 0;  ///< exact value, when kInt
  double d = 0;   ///< value, when kDouble

  static Numeric Int(int64_t v) {
    Numeric n;
    n.kind = Kind::kInt;
    n.i = v;
    return n;
  }
  static Numeric Dbl(double v) {
    Numeric n;
    n.kind = Kind::kDouble;
    n.d = v;
    return n;
  }
  bool is_int() const { return kind == Kind::kInt; }
  double AsDouble() const { return is_int() ? static_cast<double>(i) : d; }

  bool operator==(const Numeric& o) const {
    return kind == o.kind && (is_int() ? i == o.i : d == o.d);
  }
};

/// Typed numeric coercion of a term. nullopt when the term has no numeric
/// value (non-literal, or a lexical form that is not a number) — the
/// "error" the caller maps to false (FILTER) or unbound (aggregates).
std::optional<Numeric> NumericOfTerm(const rdf::Term& t);

/// a + b with integer-overflow promotion to double.
Numeric NumericAdd(const Numeric& a, const Numeric& b);

/// Average of a sum over `count` values (count > 0): always double — SPARQL
/// AVG is a dividing aggregate, so exactness ends here.
Numeric NumericMean(const Numeric& sum, uint64_t count);

/// Materializes a numeric value as an RDF literal: xsd:integer for exact
/// integers, xsd:double (shortest round-trip form) otherwise.
rdf::Term NumericToTerm(const Numeric& v);

/// Shortest lexical form that round-trips `v` through strtod.
std::string FormatDouble(double v);

}  // namespace turbo::sparql
