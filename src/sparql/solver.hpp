// BgpSolver: the narrow interface between the SPARQL executor and a basic
// graph pattern evaluator. Three implementations exist:
//   * TurboBgpSolver      — the paper's engine (TurboHOM / TurboHOM++),
//   * SortMergeBgpSolver  — RDF-3X-style baseline (six sorted permutations),
//   * IndexJoinBgpSolver  — index-nested-loop baseline (System-X stand-in).
// Sharing the interface lets the executor provide OPTIONAL / FILTER / UNION
// uniformly and lets tests cross-check the engines row-for-row.
//
// Evaluation is push-with-backpressure: the solver emits rows into a
// RowSink, and the sink's EmitResult return value propagates a stop request
// back down into the enumeration (through the TurboHOM++ Matcher's
// SubgraphSearch, including its parallel workers). This is what lets a
// LIMIT-k cursor terminate matching after k rows instead of materializing
// the full solution bag.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.hpp"
#include "sparql/ast.hpp"
#include "util/common.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

/// A (partial) solution row: variable index -> bound term (kInvalidId =
/// unbound).
using Row = std::vector<TermId>;

/// Stable mapping from variable names to row indices for one query.
class VarRegistry {
 public:
  int GetOrAdd(const std::string& name) {
    auto [it, added] = index_.try_emplace(name, static_cast<int>(names_.size()));
    if (added) names_.push_back(name);
    return it->second;
  }
  std::optional<int> Find(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }
  const std::string& name(int i) const { return names_[i]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> names_;
};

/// What a RowSink tells the producing solver after each row.
enum class EmitResult : uint8_t {
  kContinue,  ///< keep enumerating
  kStop,      ///< enough rows: unwind the enumeration and return Ok
};

/// Per-row consumer. Returning kStop is a normal early termination (LIMIT
/// satisfied, cursor closed), not an error.
using RowSink = std::function<EmitResult(const Row&)>;

/// Caller-supplied cancellation surface threaded through Evaluate into the
/// enumeration loops. Distinct from a sink kStop: tripping either signal
/// makes Evaluate return an error status (see CheckControl).
struct EvalControl {
  const std::atomic<bool>* cancel = nullptr;          ///< cooperative cancel token
  std::chrono::steady_clock::time_point deadline{};   ///< epoch default = none
  /// Consumer-detached signal: set when the streaming Cursor driving this
  /// evaluation is torn down mid-stream. Kept distinct from `cancel` so
  /// status reporting can tell an abandoned cursor from a user cancel.
  const std::atomic<bool>* abandon = nullptr;

  bool has_deadline() const { return deadline.time_since_epoch().count() != 0; }
  bool cancelled() const {
    return cancel && cancel->load(std::memory_order_relaxed);
  }
  bool abandoned() const {
    return abandon && abandon->load(std::memory_order_relaxed);
  }
  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
  /// Ok, or the error a solver must return when a signal has fired.
  util::Status Check() const {
    if (abandoned()) return util::Status::Error("cursor abandoned");
    if (cancelled()) return util::Status::Error("query cancelled");
    if (expired()) return util::Status::Error("deadline exceeded");
    return util::Status::Ok();
  }
};

/// Machine-readable classification of why an execution stopped before a
/// natural end-of-stream. status() carries the human message; this answers
/// "was that a budget I imposed, or did the producer side fail?".
enum class StopCause : uint8_t {
  kNone,            ///< still flowing, or completed (LIMIT counts as normal)
  kRowBudget,       ///< ExecOptions::row_budget tripped
  kCancelled,       ///< caller's cancel token fired
  kDeadline,        ///< caller's deadline expired
  kAbandoned,       ///< streaming cursor destroyed mid-stream
  kProducerFailed,  ///< solver/pipeline raised an error of its own
};

/// Short stable name for a StopCause — what `sparql_shell` prints to stderr
/// and the HTTP endpoint sends in its X-Stop-Cause header.
inline const char* ToString(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kRowBudget: return "row budget";
    case StopCause::kCancelled: return "cancelled";
    case StopCause::kDeadline: return "deadline";
    case StopCause::kAbandoned: return "abandoned";
    case StopCause::kProducerFailed: return "producer failed";
  }
  return "unknown";
}

/// Maps a tripped EvalControl to its cause; `fallback` is used when no
/// control signal fired (i.e. the producer itself failed).
inline StopCause CauseOf(const EvalControl& control, StopCause fallback) {
  if (control.abandoned()) return StopCause::kAbandoned;
  if (control.cancelled()) return StopCause::kCancelled;
  if (control.expired()) return StopCause::kDeadline;
  return fallback;
}

class BgpSolver {
 public:
  virtual ~BgpSolver() = default;

  /// Evaluates `bgp` under the pre-bound row `bound` (vars already bound act
  /// as constants — this is how the executor implements OPTIONAL extension).
  /// Emits one completed row per solution until the sink returns kStop (then
  /// returns Ok without enumerating further) or `control` trips (then
  /// returns the matching error). `pushable` are filters whose variables all
  /// occur in `bgp`; a solver MAY use them to prune early (§5.1:
  /// "inexpensive filters are applied whenever we access the corresponding
  /// vertices") — the executor re-checks every filter, so ignoring them is
  /// always safe.
  virtual util::Status Evaluate(const std::vector<TriplePattern>& bgp,
                                const VarRegistry& vars, const Row& bound,
                                const std::vector<const FilterExpr*>& pushable,
                                const RowSink& emit,
                                const EvalControl& control = {}) const = 0;

  /// Solver-side COUNT(*): when the solver can count the solutions of `bgp`
  /// without assembling or emitting rows, it sets *count, sets *counted =
  /// true, and the executor skips row enumeration entirely (the COUNT(*)
  /// pushdown). Declining (*counted = false, the default) is always safe —
  /// the executor falls back to Evaluate + aggregation. A solver must only
  /// count patterns whose Evaluate would emit exactly one row per embedding
  /// (no per-solution binding expansion), with no `bound` prefix and no
  /// pushed filters in play.
  virtual util::Status CountSolutions(const std::vector<TriplePattern>& bgp,
                                      const VarRegistry& vars, uint64_t* count,
                                      bool* counted,
                                      const EvalControl& control = {}) const {
    (void)bgp;
    (void)vars;
    (void)count;
    (void)control;
    *counted = false;
    return util::Status::Ok();
  }

  /// The dictionary used to resolve constants in patterns and filters.
  virtual const rdf::Dictionary& dict() const = 0;
};

}  // namespace turbo::sparql
