// BgpSolver: the narrow interface between the SPARQL executor and a basic
// graph pattern evaluator. Three implementations exist:
//   * TurboBgpSolver      — the paper's engine (TurboHOM / TurboHOM++),
//   * SortMergeBgpSolver  — RDF-3X-style baseline (six sorted permutations),
//   * IndexJoinBgpSolver  — index-nested-loop baseline (System-X stand-in).
// Sharing the interface lets the executor provide OPTIONAL / FILTER / UNION
// uniformly and lets tests cross-check the engines row-for-row.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.hpp"
#include "sparql/ast.hpp"
#include "util/common.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

/// A (partial) solution row: variable index -> bound term (kInvalidId =
/// unbound).
using Row = std::vector<TermId>;

/// Stable mapping from variable names to row indices for one query.
class VarRegistry {
 public:
  int GetOrAdd(const std::string& name) {
    auto [it, added] = index_.try_emplace(name, static_cast<int>(names_.size()));
    if (added) names_.push_back(name);
    return it->second;
  }
  std::optional<int> Find(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }
  const std::string& name(int i) const { return names_[i]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> names_;
};

class BgpSolver {
 public:
  virtual ~BgpSolver() = default;

  /// Evaluates `bgp` under the pre-bound row `bound` (vars already bound act
  /// as constants — this is how the executor implements OPTIONAL extension).
  /// Emits one completed row per solution. `pushable` are filters whose
  /// variables all occur in `bgp`; a solver MAY use them to prune early
  /// (§5.1: "inexpensive filters are applied whenever we access the
  /// corresponding vertices") — the executor re-checks every filter, so
  /// ignoring them is always safe.
  virtual util::Status Evaluate(const std::vector<TriplePattern>& bgp,
                                const VarRegistry& vars, const Row& bound,
                                const std::vector<const FilterExpr*>& pushable,
                                const std::function<void(const Row&)>& emit) const = 0;

  /// The dictionary used to resolve constants in patterns and filters.
  virtual const rdf::Dictionary& dict() const = 0;
};

}  // namespace turbo::sparql
