// Recursive-descent parser for the SPARQL subset described in ast.hpp.
#pragma once

#include <string_view>

#include "sparql/ast.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

/// Parses a SELECT query. Returns a descriptive error on malformed input.
util::Result<SelectQuery> ParseQuery(std::string_view text);

/// Parses a SPARQL Update request — the `INSERT DATA` / `DELETE DATA`
/// ground-triple subset (optionally several operations separated by `;`).
util::Result<UpdateRequest> ParseUpdate(std::string_view text);

}  // namespace turbo::sparql
