// Compatibility layer over the streaming query API (sparql/query_engine.hpp).
// `Executor::Execute` drains a Cursor into a fully materialized ResultSet —
// the original PR-0 interface, kept for callers that want the whole answer
// at once. New code (and anything that cares about LIMIT pushdown, budgets,
// deadlines, or cancellation) should talk to QueryEngine / PreparedQuery /
// Cursor directly; both routes run the same stop-aware row pipeline, so the
// rows and their order are identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sparql/ast.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

struct ResultSet {
  std::vector<std::string> var_names;      ///< projected variable names
  std::vector<std::vector<TermId>> rows;   ///< kInvalidId = unbound (OPTIONAL)
  /// Rows that reached the solution-modifier stage. Equal to the pre-LIMIT
  /// row count when the pipeline ran to completion; smaller when LIMIT
  /// pushdown stopped the enumeration early (that is the point).
  uint64_t total_before_modifiers = 0;
  /// Computed terms (aggregate results) of this execution; cells with ids
  /// at or above dict.size() resolve here. Null for pattern-only queries.
  std::shared_ptr<const LocalVocab> local_vocab;

  size_t size() const { return rows.size(); }
};

class Executor {
 public:
  explicit Executor(const BgpSolver* solver) : solver_(solver) {}

  /// Runs the query via the cursor pipeline and materializes every row.
  util::Result<ResultSet> Execute(const SelectQuery& q) const;

  /// Parses and runs. Convenience for examples and tests.
  util::Result<ResultSet> Execute(const std::string& text) const;

 private:
  const BgpSolver* solver_;
};

/// Renders one row as a human-readable line (terms in N-Triples form). The
/// streaming-row overload lives in sparql/query_engine.hpp.
std::string FormatRow(const ResultSet& rs, size_t row, const rdf::Dictionary& dict);

}  // namespace turbo::sparql
