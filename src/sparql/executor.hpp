// SPARQL executor: drives a BgpSolver through the group-graph-pattern
// algebra. OPTIONAL uses left-join extension (the paper's
// nullify-and-keep-searching + qualify-and-exclude-duplicate produces the
// same bag: unmatched optionals leave their variables unbound, once per base
// solution); UNION concatenates branch solutions without deduplication;
// FILTERs are pushed to the solver when cheap and always re-checked here
// (§5.1). DISTINCT / ORDER BY / LIMIT / OFFSET are applied last.
#pragma once

#include <string>
#include <vector>

#include "sparql/ast.hpp"
#include "sparql/solver.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

struct ResultSet {
  std::vector<std::string> var_names;      ///< projected variable names
  std::vector<std::vector<TermId>> rows;   ///< kInvalidId = unbound (OPTIONAL)
  uint64_t total_before_modifiers = 0;     ///< row count before DISTINCT/LIMIT

  size_t size() const { return rows.size(); }
};

class Executor {
 public:
  explicit Executor(const BgpSolver* solver) : solver_(solver) {}

  /// Runs the query. Returns the projected result set or an error.
  util::Result<ResultSet> Execute(const SelectQuery& q) const;

  /// Parses and runs. Convenience for examples and tests.
  util::Result<ResultSet> Execute(const std::string& text) const;

 private:
  const BgpSolver* solver_;
};

/// Renders one row as a human-readable line (terms in N-Triples form).
std::string FormatRow(const ResultSet& rs, size_t row, const rdf::Dictionary& dict);

}  // namespace turbo::sparql
