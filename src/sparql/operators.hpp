// The composable physical operator layer: a SELECT query is planned into a
// chain of small single-purpose RowOps instead of one hard-coded pipeline
// class. Concrete operators:
//
//   BgpSource        evaluates a group's basic graph pattern per input row
//                    (streaming out of BgpSolver::Evaluate; the seed row
//                    makes it a source, a bound row makes it a bind join)
//   UnionOp          feeds each input row through every branch sub-chain
//   OptionalOp       left-join extension with the qualify-or-keep fallback
//   FilterOp         drops rows failing FILTER / HAVING constraints
//   GuardOp          pre-modifier row budget + periodic cancel/deadline probe
//   GroupAggregateOp hash grouping with COUNT/SUM/MIN/MAX/AVG accumulation
//   ProjectOp        narrows full-width rows to the SELECT columns
//   DistinctOp       set-based duplicate elimination
//   OrderByOp/TopKOp pipeline breakers: full sort, or the bounded
//                    offset+limit heap with arrival-sequence tiebreak
//   SliceOp          OFFSET/LIMIT; the kStop origin for LIMIT pushdown
//   CollectOp        root sink feeding the Cursor's delivery buffer
//   RelayOp          glue: terminates a branch sub-chain into a callback
//
// Execution model: produce/consume (push), not Volcano pull. The solvers
// enumerate through callbacks that cannot be suspended mid-recursion, so a
// pull Next() at the leaf would have to either materialize the whole BGP
// (killing LIMIT pushdown) or restart enumeration per row. Push with a
// kStop backchannel gives the same early-termination behaviour demand-pull
// would: when SliceOp has delivered OFFSET+LIMIT rows its kStop unwinds
// through every operator into SubgraphSearch, and blocking operators
// (sort/group) absorb the demand boundary exactly where a pull tree would
// block. The Cursor remains the pull surface; the producer-thread
// incremental cursor on the ROADMAP slots in as one more operator here.
//
// Lifecycle: Open() once (resets per-run state down the chain), Push() per
// input row, Finish() once at end of input (blocking operators emit their
// buffered results downstream here), all single-threaded per chain. A
// kStop return from Push/Emit means "no more rows needed" — normal early
// termination. Errors (budget/cancel/deadline) travel through the shared
// ExecState: the failing operator records the status and returns kStop.
//
// Every operator counts rows in/out; ExplainChain renders the tree with
// those counts (the `sparql_shell --explain` output).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sparql/ast.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"
#include "sparql/typed_value.hpp"
#include "util/channel.hpp"
#include "util/status.hpp"

namespace turbo::sparql {

class FilterEvaluator;

/// Three-way term comparison for ORDER BY and MIN/MAX (numeric when both
/// sides are numeric, else lexical; unbound sorts first). Resolves local
/// (computed) ids as well as dictionary ids.
int CompareTerms(const rdf::Dictionary& dict, const LocalVocab* local, TermId a,
                 TermId b);

/// State shared by every operator of one execution: the cancellation
/// surface, the first error raised (with its machine-readable cause), and
/// the cursor-visible counters.
struct ExecState {
  EvalControl control;
  util::Status error;
  StopCause cause = StopCause::kNone;  ///< why `error` was raised
  uint64_t before_modifiers = 0;  ///< rows that reached the modifier stage
  uint64_t peak_buffered = 0;     ///< high-water mark of any operator buffer
                                  ///< (delivery channel added by the cursor)

  /// Records the first error and its classification; later failures are
  /// ignored (the first stop is the one the cursor reports).
  void Fail(util::Status st, StopCause why) {
    if (error.ok()) {
      error = std::move(st);
      cause = why;
    }
  }
  void NoteBuffered(uint64_t n) {
    if (n > peak_buffered) peak_buffered = n;
  }
};

class RowOp {
 public:
  RowOp(std::string label, RowOp* next, ExecState* state)
      : label_(std::move(label)), next_(next), state_(state) {}
  virtual ~RowOp() = default;

  /// Processes one input row; kStop means the chain needs no further input.
  EmitResult Push(const Row& row) {
    ++rows_in_;
    return DoPush(row);
  }

  /// End of input: flush buffered state downstream, then finish downstream.
  /// An error recorded in the ExecState (cancel/deadline tripping during a
  /// flush) stops the cascade: downstream pipeline breakers must not sort /
  /// deliver a result computed from a truncated flush.
  util::Status Finish() {
    util::Status st = DoFinish();
    if (!st.ok()) return st;
    if (!state_->error.ok()) return util::Status::Ok();
    return next_ ? next_->Finish() : util::Status::Ok();
  }

  const std::string& label() const { return label_; }
  RowOp* next() const { return next_; }
  uint64_t rows_in() const { return rows_in_; }
  uint64_t rows_out() const { return rows_out_; }
  /// Sub-chain heads (UNION branches, OPTIONAL extension) for EXPLAIN.
  virtual std::vector<const RowOp*> children() const { return {}; }

 protected:
  /// Hands a row to the downstream operator (kContinue at the chain tail).
  EmitResult Emit(const Row& row) {
    ++rows_out_;
    return next_ ? next_->Push(row) : EmitResult::kContinue;
  }

  virtual EmitResult DoPush(const Row& row) = 0;
  virtual util::Status DoFinish() { return util::Status::Ok(); }

  ExecState* state() const { return state_; }

  /// The pipeline-breaker flush loop: emits `get(item)` per item with the
  /// amortized cancel/deadline probe (enumeration is over, but a flush can
  /// be long), stopping on kStop or a tripped control.
  template <typename Range, typename GetRow>
  void FlushBuffered(const Range& range, GetRow get) {
    uint64_t flushed = 0;
    for (const auto& item : range) {
      if ((++flushed & 0x3F) == 0) {
        if (util::Status st = state_->control.Check(); !st.ok()) {
          state_->Fail(std::move(st),
                       CauseOf(state_->control, StopCause::kProducerFailed));
          return;
        }
      }
      if (Emit(get(item)) == EmitResult::kStop) return;
    }
  }

 private:
  std::string label_;
  RowOp* next_;
  ExecState* state_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

/// Owns the operators of one execution (operators hold raw pointers into
/// the chain; the pipeline keeps them alive and in construction order).
struct Pipeline {
  ExecState state;
  std::vector<std::unique_ptr<RowOp>> ops;
  RowOp* head = nullptr;

  template <typename T, typename... Args>
  T* Make(Args&&... args) {
    ops.push_back(std::make_unique<T>(std::forward<Args>(args)...));
    return static_cast<T*>(ops.back().get());
  }
};

/// Snapshot of per-operator (rows_in, rows_out) counts keyed by operator,
/// for rendering an EXPLAIN of a tree whose live counters are still being
/// mutated on another thread (the streaming cursor's mid-stream snapshot).
using ExplainCounts = std::unordered_map<const RowOp*, std::pair<uint64_t, uint64_t>>;

/// Renders the chain starting at `head` as an indented tree with per-
/// operator row counts (EXPLAIN). With `counts`, the snapshot values are
/// rendered instead of the operators' live counters.
std::string ExplainChain(const RowOp* head, const ExplainCounts* counts = nullptr);

// ---------------------------------------------------------------------------
// Pattern-matching operators (the WHERE clause).
// ---------------------------------------------------------------------------

/// Streams the solutions of a basic graph pattern, each input row acting as
/// the pre-bound seed (the executor's OPTIONAL/UNION re-entry contract).
class BgpSource final : public RowOp {
 public:
  BgpSource(const BgpSolver& solver, const VarRegistry& vars,
            const std::vector<TriplePattern>& bgp,
            std::vector<const FilterExpr*> pushable, RowOp* next, ExecState* state)
      : RowOp("BgpSource{" + std::to_string(bgp.size()) + " triple" +
                  (bgp.size() == 1 ? "" : "s") + "}",
              next, state),
        solver_(solver),
        vars_(vars),
        bgp_(bgp),
        pushable_(std::move(pushable)) {}

  EmitResult DoPush(const Row& row) override;

 private:
  const BgpSolver& solver_;
  const VarRegistry& vars_;
  const std::vector<TriplePattern>& bgp_;
  std::vector<const FilterExpr*> pushable_;
};

/// Terminates a branch sub-chain into a callback on its owner.
class RelayOp final : public RowOp {
 public:
  RelayOp(std::function<EmitResult(const Row&)> fn, ExecState* state)
      : RowOp("Relay", nullptr, state), fn_(std::move(fn)) {}
  EmitResult DoPush(const Row& row) override { return fn_(row); }

 private:
  std::function<EmitResult(const Row&)> fn_;
};

/// Feeds each input row through every branch in turn (concatenation
/// semantics, duplicates preserved); branch outputs continue downstream.
class UnionOp final : public RowOp {
 public:
  UnionOp(size_t n_branches, RowOp* next, ExecState* state)
      : RowOp("Union{" + std::to_string(n_branches) + " branches}", next, state) {}

  /// Branch chains are built after construction (they relay into this op).
  void AddBranch(RowOp* head) { branches_.push_back(head); }
  EmitResult ForwardBranchRow(const Row& row) { return Emit(row); }

  EmitResult DoPush(const Row& row) override {
    for (RowOp* b : branches_)
      if (b->Push(row) == EmitResult::kStop) return EmitResult::kStop;
    return EmitResult::kContinue;
  }
  util::Status DoFinish() override {
    for (RowOp* b : branches_)
      if (util::Status st = b->Finish(); !st.ok()) return st;
    return util::Status::Ok();
  }
  std::vector<const RowOp*> children() const override {
    return {branches_.begin(), branches_.end()};
  }

 private:
  std::vector<RowOp*> branches_;
};

/// Left-join extension: rows the branch extends continue extended; a row
/// with no extension continues unextended, exactly once. When the consumer
/// stops mid-extension the unextended fallback must not fire.
class OptionalOp final : public RowOp {
 public:
  OptionalOp(RowOp* next, ExecState* state) : RowOp("Optional", next, state) {}

  void SetBranch(RowOp* head) { branch_ = head; }
  EmitResult ForwardBranchRow(const Row& row) {
    matched_ = true;
    return Emit(row);
  }

  EmitResult DoPush(const Row& row) override {
    matched_ = false;
    if (branch_->Push(row) == EmitResult::kStop) return EmitResult::kStop;
    if (!matched_) return Emit(row);
    return EmitResult::kContinue;
  }
  util::Status DoFinish() override { return branch_->Finish(); }
  std::vector<const RowOp*> children() const override { return {branch_}; }

 private:
  RowOp* branch_ = nullptr;
  bool matched_ = false;
};

/// Drops rows failing any of its constraints (group FILTERs, or the
/// planner-rewritten HAVING constraints over grouped rows).
class FilterOp final : public RowOp {
 public:
  FilterOp(std::string label, const FilterEvaluator& eval,
           std::vector<const FilterExpr*> exprs, RowOp* next, ExecState* state)
      : RowOp(std::move(label), next, state), eval_(eval), exprs_(std::move(exprs)) {}

  EmitResult DoPush(const Row& row) override;

 private:
  const FilterEvaluator& eval_;
  std::vector<const FilterExpr*> exprs_;
};

/// Inline data (VALUES): joins each input row against the clause's rows.
/// Cells are pre-resolved to ids at plan time ((var index, id) pairs; UNDEF
/// cells are simply absent). A values row is compatible when every cell
/// either binds a previously-unbound variable or equals the input binding;
/// each compatible row emits once (Cartesian semantics against the input).
class ValuesOp final : public RowOp {
 public:
  using Binding = std::pair<int, TermId>;  ///< (row index, resolved id)

  ValuesOp(std::vector<std::vector<Binding>> rows, RowOp* next, ExecState* state)
      : RowOp("Values{" + std::to_string(rows.size()) + " rows}", next, state),
        rows_(std::move(rows)) {}

  EmitResult DoPush(const Row& row) override {
    for (const std::vector<Binding>& vrow : rows_) {
      bool compatible = true;
      for (const Binding& b : vrow) {
        TermId bound = row[b.first];
        if (bound != kInvalidId && bound != b.second) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      scratch_ = row;
      for (const Binding& b : vrow) scratch_[b.first] = b.second;
      if (Emit(scratch_) == EmitResult::kStop) return EmitResult::kStop;
    }
    return EmitResult::kContinue;
  }

 private:
  std::vector<std::vector<Binding>> rows_;
  Row scratch_;
};

/// BIND(expr AS ?var): evaluates the expression per row, interns the
/// computed term into the execution's LocalVocab, and binds the target
/// variable. Evaluation errors leave the variable unbound (SPARQL error
/// semantics); an already-bound target is a planner error, caught at
/// Prepare time.
class BindOp final : public RowOp {
 public:
  BindOp(const FilterEvaluator& eval, const FilterExpr* expr, int target_idx,
         LocalVocab* local, RowOp* next, ExecState* state)
      : RowOp("Bind", next, state),
        eval_(eval),
        expr_(expr),
        target_idx_(target_idx),
        local_(local) {}

  EmitResult DoPush(const Row& row) override;

 private:
  const FilterEvaluator& eval_;
  const FilterExpr* expr_;
  int target_idx_;
  LocalVocab* local_;
  Row scratch_;
};

// ---------------------------------------------------------------------------
// Budget guard.
// ---------------------------------------------------------------------------

/// Counts rows entering the solution-modifier stage, enforces the caller's
/// pre-modifier row budget, and probes cancellation/deadline periodically
/// (rows can be born in executor stages — OPTIONAL fallbacks — that the
/// solver-level checks never see).
class GuardOp final : public RowOp {
 public:
  GuardOp(uint64_t row_budget, RowOp* next, ExecState* state)
      : RowOp("Guard", next, state), row_budget_(row_budget) {}

  EmitResult DoPush(const Row& row) override {
    uint64_t n = ++state()->before_modifiers;
    if (n > row_budget_) {
      state()->Fail(util::Status::Error("row budget exceeded"),
                    StopCause::kRowBudget);
      return EmitResult::kStop;
    }
    if ((n & 0x3F) == 0) {
      if (util::Status st = state()->control.Check(); !st.ok()) {
        state()->Fail(std::move(st),
                      CauseOf(state()->control, StopCause::kProducerFailed));
        return EmitResult::kStop;
      }
    }
    return Emit(row);
  }

 private:
  uint64_t row_budget_;
};

// ---------------------------------------------------------------------------
// Aggregation.
// ---------------------------------------------------------------------------

/// One planned aggregate column.
struct AggSpec {
  Aggregate agg;
  int arg_idx = -1;  ///< input-row index of the argument variable (-1: none)
};

/// Hash grouping with streaming accumulation; a pipeline breaker. Output
/// rows are [group-key terms..., aggregate values...] in first-seen group
/// order (deterministic given the input order). Aggregate results
/// materialize as terms in the execution's LocalVocab.
///
/// Value semantics (shared with the brute-force reference evaluator):
///  * COUNT(*) counts rows; COUNT(?x) counts rows where ?x is bound;
///    DISTINCT dedupes by term (COUNT(DISTINCT *): by whole row);
///  * SUM/AVG skip unbound values; any bound non-numeric value makes the
///    result unbound (error-as-unbound). SUM of nothing is 0 (xsd:integer,
///    exact int64 until overflow promotes to double); AVG of nothing is 0,
///    otherwise xsd:double;
///  * MIN/MAX skip unbound values and use the ORDER BY comparison (numeric
///    when both sides are numeric, else lexical); empty input -> unbound.
class GroupAggregateOp final : public RowOp {
 public:
  GroupAggregateOp(std::vector<int> key_idx, std::vector<AggSpec> aggs,
                   bool implicit_group, const rdf::Dictionary& dict,
                   LocalVocab* local, RowOp* next, ExecState* state);

  EmitResult DoPush(const Row& row) override;
  util::Status DoFinish() override;

 private:
  struct Accum {
    uint64_t count = 0;
    Numeric sum = Numeric::Int(0);
    bool num_error = false;
    TermId best = kInvalidId;
    /// DISTINCT dedup state, allocated lazily: non-DISTINCT aggregates over
    /// high-cardinality keys would otherwise carry dead set headers per
    /// group x aggregate.
    std::unique_ptr<std::set<TermId>> distinct;   ///< term-level values
    std::unique_ptr<std::set<Row>> distinct_rows; ///< COUNT(DISTINCT *)
  };
  struct Group {
    std::vector<TermId> key;
    std::vector<Accum> accums;
  };
  struct KeyHash {
    size_t operator()(const std::vector<TermId>& k) const {
      size_t h = 0xcbf29ce484222325ull;
      for (TermId t : k) h = (h ^ t) * 0x100000001b3ull;
      return h;
    }
  };

  void Accumulate(const AggSpec& spec, Accum* a, const Row& row);
  TermId Result(const AggSpec& spec, const Accum& a);

  std::vector<int> key_idx_;
  std::vector<AggSpec> aggs_;
  bool implicit_group_;
  const rdf::Dictionary& dict_;
  LocalVocab* local_;
  std::vector<Group> groups_;  ///< first-seen order
  std::unordered_map<std::vector<TermId>, size_t, KeyHash> index_;
  /// Typed-coercion memo: analytics columns repeat values heavily, so each
  /// distinct term parses once per execution instead of once per row.
  std::unordered_map<TermId, std::optional<Numeric>> num_cache_;
  std::vector<TermId> key_scratch_;
  Row out_scratch_;
};

// ---------------------------------------------------------------------------
// Solution modifiers.
// ---------------------------------------------------------------------------

/// Narrows full-width rows to the projected columns.
class ProjectOp final : public RowOp {
 public:
  ProjectOp(std::vector<int> proj, RowOp* next, ExecState* state)
      : RowOp("Project", next, state), proj_(std::move(proj)) {}

  EmitResult DoPush(const Row& row) override {
    scratch_.resize(proj_.size());
    for (size_t i = 0; i < proj_.size(); ++i) scratch_[i] = row[proj_[i]];
    return Emit(scratch_);
  }

 private:
  std::vector<int> proj_;
  Row scratch_;
};

/// Set-based duplicate elimination. The dedup memo is working state, not a
/// delivery buffer: it is excluded from peak_buffered_rows (like the group
/// hash table), which tracks rows held for delivery ordering.
class DistinctOp final : public RowOp {
 public:
  DistinctOp(RowOp* next, ExecState* state) : RowOp("Distinct", next, state) {}

  EmitResult DoPush(const Row& row) override {
    if (!seen_.insert(row).second) return EmitResult::kContinue;
    return Emit(row);
  }

 private:
  std::set<Row> seen_;
};

/// Sort-key configuration shared by OrderByOp and TopKOp: row indices plus
/// per-key direction, with the arrival sequence number as the final key —
/// which makes heap selection and full sort exactly equal to a stable sort.
struct SortKeys {
  std::vector<int> idx;
  std::vector<bool> ascending;
  const rdf::Dictionary* dict = nullptr;
  const LocalVocab* local = nullptr;

  bool Less(const Row& x, uint64_t xseq, const Row& y, uint64_t yseq) const {
    for (size_t i = 0; i < idx.size(); ++i) {
      int c = CompareTerms(*dict, local, x[idx[i]], y[idx[i]]);
      if (c != 0) return ascending[i] ? c < 0 : c > 0;
    }
    return xseq < yseq;
  }
};

/// Full buffering sort — the pipeline breaker for unbounded ORDER BY.
class OrderByOp final : public RowOp {
 public:
  OrderByOp(SortKeys keys, RowOp* next, ExecState* state)
      : RowOp("OrderBy", next, state), keys_(std::move(keys)) {}

  EmitResult DoPush(const Row& row) override {
    rows_.push_back({row, ++seq_});
    state()->NoteBuffered(rows_.size());
    return EmitResult::kContinue;
  }
  util::Status DoFinish() override;

 private:
  struct Keyed {
    Row row;
    uint64_t seq;
  };
  SortKeys keys_;
  std::vector<Keyed> rows_;
  uint64_t seq_ = 0;
};

/// Bounded top-k heap (k = OFFSET + LIMIT): keeps only the rows that can
/// still be delivered, with the arrival-sequence tiebreak making its output
/// row-for-row equal to a stable full sort + truncation.
class TopKOp final : public RowOp {
 public:
  TopKOp(SortKeys keys, uint64_t cap, RowOp* next, ExecState* state)
      : RowOp("TopK{cap=" + std::to_string(cap) + "}", next, state),
        keys_(std::move(keys)),
        cap_(cap) {}

  EmitResult DoPush(const Row& row) override;
  util::Status DoFinish() override;

 private:
  struct Keyed {
    Row row;
    uint64_t seq;
  };
  bool KeyedLess(const Keyed& a, const Keyed& b) const {
    return keys_.Less(a.row, a.seq, b.row, b.seq);
  }
  SortKeys keys_;
  uint64_t cap_;
  std::vector<Keyed> heap_;  ///< max-heap of the cap best rows
  uint64_t seq_ = 0;
};

/// OFFSET / LIMIT. Emitting the last deliverable row returns kStop — the
/// signal that unwinds into the solvers and makes LIMIT pushdown real.
class SliceOp final : public RowOp {
 public:
  SliceOp(uint64_t offset, uint64_t limit, RowOp* next, ExecState* state)
      : RowOp("Slice{offset=" + std::to_string(offset) + " limit=" +
                  (limit == std::numeric_limits<uint64_t>::max()
                       ? std::string("none")
                       : std::to_string(limit)) +
                  "}",
              next, state),
        offset_(offset),
        limit_(limit) {}

  EmitResult DoPush(const Row& row) override {
    if (skipped_ < offset_) {
      ++skipped_;
      return EmitResult::kContinue;
    }
    if (delivered_ >= limit_) return EmitResult::kStop;
    EmitResult r = Emit(row);
    if (++delivered_ >= limit_) return EmitResult::kStop;
    return r;
  }

 private:
  uint64_t offset_;
  uint64_t limit_;
  uint64_t skipped_ = 0;
  uint64_t delivered_ = 0;
};

/// Root sink: appends delivered rows to the cursor's buffer.
class CollectOp final : public RowOp {
 public:
  CollectOp(std::vector<Row>* out, ExecState* state)
      : RowOp("Collect", nullptr, state), out_(out) {}

  EmitResult DoPush(const Row& row) override {
    out_->push_back(row);
    state()->NoteBuffered(out_->size());
    return EmitResult::kContinue;
  }

 private:
  std::vector<Row>* out_;
};

/// Root sink for streaming cursors: hands each delivered row to the bounded
/// delivery channel, blocking while the consumer lags. A channel closed by
/// the consumer — the cursor was abandoned — reads as a plain kStop, the
/// same unwind LIMIT pushdown uses, so teardown terminates the subgraph
/// search itself rather than just the delivery.
///
/// The wait flavour depends on the execution's abort sources: a cancel token
/// or deadline has no condvar hookup, so its presence forces the channel's
/// sliced, polling wait (an aborted push records the control's error before
/// stopping). With neither present the sink blocks in the channel's plain
/// untimed wait — abandonment is always paired with CloseConsumer, which
/// wakes it — so an abort-free stream never takes a spurious timed wakeup.
///
/// `on_deliver` (optional) runs on the producer thread once per row, just
/// before the row is handed to the channel — the cursor's hook for
/// publishing a consistent mid-stream EXPLAIN snapshot.
class ChannelSink final : public RowOp {
 public:
  ChannelSink(util::Channel<Row>* channel, std::function<void()> on_deliver,
              ExecState* state)
      : RowOp("ChannelSink{cap=" + std::to_string(channel->capacity()) + "}",
              nullptr, state),
        channel_(channel),
        on_deliver_(std::move(on_deliver)) {}

  EmitResult DoPush(const Row& row) override {
    // Snapshot before the push: once the consumer has popped row k, the
    // published snapshot is guaranteed to cover at least k delivered rows.
    if (on_deliver_) on_deliver_();
    const EvalControl& c = state()->control;
    const bool needs_probe = c.cancel != nullptr || c.has_deadline();
    auto op = needs_probe
                  ? channel_->Push(row,
                                   [&c] {
                                     return c.abandoned() || c.cancelled() ||
                                            c.expired();
                                   })
                  : channel_->Push(row);
    if (op == util::Channel<Row>::Op::kOk) return EmitResult::kContinue;
    if (op == util::Channel<Row>::Op::kAborted)
      state()->Fail(state()->control.Check(),
                    CauseOf(state()->control, StopCause::kProducerFailed));
    return EmitResult::kStop;
  }

 private:
  util::Channel<Row>* channel_;
  std::function<void()> on_deliver_;
};

}  // namespace turbo::sparql
