// SPARQL abstract syntax: triple patterns, group graph patterns with
// FILTER / OPTIONAL / UNION, and SELECT queries with solution modifiers
// and aggregation (GROUP BY / HAVING, COUNT / SUM / MIN / MAX / AVG with
// DISTINCT-inside-aggregate). Covers the subset exercised by the paper's
// benchmarks (LUBM, YAGO, BTC2012 basic graph patterns; BSBM explore use
// case with OPTIONAL, FILTER, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET)
// plus the BI-style grouped analytics queries.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.hpp"

namespace turbo::sparql {

/// A position in a triple pattern: either a constant term or a variable.
struct PatternTerm {
  enum class Kind : uint8_t { kTerm, kVar } kind = Kind::kTerm;
  rdf::Term term;   ///< when kTerm
  std::string var;  ///< variable name without '?', when kVar

  static PatternTerm Var(std::string name) {
    PatternTerm p;
    p.kind = Kind::kVar;
    p.var = std::move(name);
    return p;
  }
  static PatternTerm Const(rdf::Term t) {
    PatternTerm p;
    p.term = std::move(t);
    return p;
  }
  bool is_var() const { return kind == Kind::kVar; }
};

struct TriplePattern {
  PatternTerm s, p, o;
};

/// One aggregate function call: COUNT(*), COUNT(?x), SUM(DISTINCT ?p), ...
/// The argument is a variable (or `*` for COUNT); expression arguments are
/// not part of the supported subset.
struct Aggregate {
  enum class Func : uint8_t { kCount, kSum, kMin, kMax, kAvg };
  Func func = Func::kCount;
  bool distinct = false;  ///< DISTINCT inside the call, e.g. COUNT(DISTINCT ?x)
  bool star = false;      ///< COUNT(*) / COUNT(DISTINCT *); var is empty then
  std::string var;        ///< argument variable name, when !star

  bool operator==(const Aggregate& o) const {
    return func == o.func && distinct == o.distinct && star == o.star && var == o.var;
  }

  /// Canonical spelling, e.g. "COUNT(DISTINCT ?x)" — used for EXPLAIN output
  /// and for deduplicating identical calls across SELECT and HAVING.
  std::string ToString() const {
    static const char* kNames[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
    std::string s = kNames[static_cast<int>(func)];
    s += '(';
    if (distinct) s += "DISTINCT ";
    s += star ? "*" : "?" + var;
    s += ')';
    return s;
  }
};

/// FILTER / HAVING expression tree (value semantics). kAggregate nodes are
/// only legal inside HAVING constraints; the planner rewrites them into
/// references to the grouped output columns.
struct FilterExpr {
  enum class Op : uint8_t {
    kOr, kAnd, kNot,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAdd, kSub, kMul, kDiv, kNeg,
    kVar, kLiteral,
    kRegex,        // regex(str, pattern [, flags])
    kBound,        // bound(?v)
    kStr, kLang, kDatatype,
    kIsIri, kIsLiteral, kIsBlank,
    kAggregate,    // COUNT/SUM/MIN/MAX/AVG(...) inside HAVING
  };
  Op op = Op::kLiteral;
  std::vector<FilterExpr> children;
  std::string var;    ///< kVar / kBound
  rdf::Term literal;  ///< kLiteral
  Aggregate agg;      ///< kAggregate

  static FilterExpr MakeVar(std::string name) {
    FilterExpr e;
    e.op = Op::kVar;
    e.var = std::move(name);
    return e;
  }
  static FilterExpr MakeLiteral(rdf::Term t) {
    FilterExpr e;
    e.op = Op::kLiteral;
    e.literal = std::move(t);
    return e;
  }
  static FilterExpr MakeUnary(Op op, FilterExpr a) {
    FilterExpr e;
    e.op = op;
    e.children.push_back(std::move(a));
    return e;
  }
  static FilterExpr MakeBinary(Op op, FilterExpr a, FilterExpr b) {
    FilterExpr e;
    e.op = op;
    e.children.push_back(std::move(a));
    e.children.push_back(std::move(b));
    return e;
  }

  static FilterExpr MakeAggregate(Aggregate a) {
    FilterExpr e;
    e.op = Op::kAggregate;
    e.agg = std::move(a);
    return e;
  }

  /// Collects the variables referenced by this expression (for aggregates:
  /// the argument variable, which is a WHERE-scope variable).
  void CollectVars(std::vector<std::string>* out) const {
    if (op == Op::kVar || op == Op::kBound) out->push_back(var);
    if (op == Op::kAggregate && !agg.star) out->push_back(agg.var);
    for (const FilterExpr& c : children) c.CollectVars(out);
  }

  /// True if any node of this expression is an aggregate call.
  bool ContainsAggregate() const {
    if (op == Op::kAggregate) return true;
    for (const FilterExpr& c : children)
      if (c.ContainsAggregate()) return true;
    return false;
  }
};

/// Inline data: `VALUES ?v { ... }` / `VALUES (?a ?b) { (..) (..) }`.
/// A nullopt cell is UNDEF — a wildcard that leaves the variable unbound.
struct ValuesClause {
  std::vector<std::string> vars;
  std::vector<std::vector<std::optional<rdf::Term>>> rows;
};

/// `BIND( expr AS ?var )` — evaluates the expression per row and binds the
/// (fresh) target variable to the computed term.
struct BindClause {
  FilterExpr expr;
  std::string var;
};

/// Group graph pattern: a BGP plus filters, OPTIONAL sub-groups, UNION
/// alternatives (each union is a list of branch groups), inline VALUES
/// blocks, and BIND assignments.
struct GroupPattern {
  std::vector<TriplePattern> triples;
  std::vector<FilterExpr> filters;
  std::vector<GroupPattern> optionals;
  std::vector<std::vector<GroupPattern>> unions;
  std::vector<ValuesClause> values;
  std::vector<BindClause> binds;

  bool IsEmpty() const {
    return triples.empty() && filters.empty() && optionals.empty() &&
           unions.empty() && values.empty() && binds.empty();
  }
};

struct OrderKey {
  std::string var;
  bool ascending = true;
};

/// One SELECT-clause item: a plain variable, or an aggregate with its
/// mandatory `(... AS ?alias)` alias.
struct SelectItem {
  std::string name;     ///< variable name, or the AS alias for an aggregate
  bool is_agg = false;
  Aggregate agg;        ///< when is_agg

  static SelectItem Var(std::string v) {
    SelectItem s;
    s.name = std::move(v);
    return s;
  }
  static SelectItem Agg(Aggregate a, std::string alias) {
    SelectItem s;
    s.name = std::move(alias);
    s.is_agg = true;
    s.agg = std::move(a);
    return s;
  }
};

struct SelectQuery {
  bool distinct = false;
  std::vector<SelectItem> select;  ///< empty => SELECT *
  GroupPattern where;
  std::vector<std::string> group_by;  ///< GROUP BY variables (names, no '?')
  std::vector<FilterExpr> having;     ///< HAVING constraints (may aggregate)
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   ///< -1 = none
  int64_t offset = 0;

  /// Convenience for tests / programmatic construction.
  void AddSelectVar(std::string v) { select.push_back(SelectItem::Var(std::move(v))); }

  /// True if this query aggregates: an explicit GROUP BY, a HAVING clause,
  /// or any aggregate in the SELECT list (implicit single group).
  bool IsAggregated() const {
    if (!group_by.empty() || !having.empty()) return true;
    for (const SelectItem& s : select)
      if (s.is_agg) return true;
    return false;
  }
};

/// A parsed SPARQL Update request: the `INSERT DATA` / `DELETE DATA` subset
/// (ground triples only — no variables, no WHERE templates). A single
/// request may carry both operations, separated by `;`; they apply in
/// source order within one atomic batch.
struct UpdateRequest {
  std::vector<std::array<rdf::Term, 3>> insert_triples;
  std::vector<std::array<rdf::Term, 3>> delete_triples;

  bool IsEmpty() const { return insert_triples.empty() && delete_triples.empty(); }
};

}  // namespace turbo::sparql
