// SPARQL abstract syntax: triple patterns, group graph patterns with
// FILTER / OPTIONAL / UNION, and SELECT queries with solution modifiers.
// Covers the subset exercised by the paper's benchmarks (LUBM, YAGO,
// BTC2012 basic graph patterns; BSBM explore use case with OPTIONAL,
// FILTER, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/term.hpp"

namespace turbo::sparql {

/// A position in a triple pattern: either a constant term or a variable.
struct PatternTerm {
  enum class Kind : uint8_t { kTerm, kVar } kind = Kind::kTerm;
  rdf::Term term;   ///< when kTerm
  std::string var;  ///< variable name without '?', when kVar

  static PatternTerm Var(std::string name) {
    PatternTerm p;
    p.kind = Kind::kVar;
    p.var = std::move(name);
    return p;
  }
  static PatternTerm Const(rdf::Term t) {
    PatternTerm p;
    p.term = std::move(t);
    return p;
  }
  bool is_var() const { return kind == Kind::kVar; }
};

struct TriplePattern {
  PatternTerm s, p, o;
};

/// FILTER expression tree (value semantics).
struct FilterExpr {
  enum class Op : uint8_t {
    kOr, kAnd, kNot,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAdd, kSub, kMul, kDiv, kNeg,
    kVar, kLiteral,
    kRegex,        // regex(str, pattern [, flags])
    kBound,        // bound(?v)
    kStr, kLang, kDatatype,
    kIsIri, kIsLiteral, kIsBlank,
  };
  Op op = Op::kLiteral;
  std::vector<FilterExpr> children;
  std::string var;    ///< kVar / kBound
  rdf::Term literal;  ///< kLiteral

  static FilterExpr MakeVar(std::string name) {
    FilterExpr e;
    e.op = Op::kVar;
    e.var = std::move(name);
    return e;
  }
  static FilterExpr MakeLiteral(rdf::Term t) {
    FilterExpr e;
    e.op = Op::kLiteral;
    e.literal = std::move(t);
    return e;
  }
  static FilterExpr MakeUnary(Op op, FilterExpr a) {
    FilterExpr e;
    e.op = op;
    e.children.push_back(std::move(a));
    return e;
  }
  static FilterExpr MakeBinary(Op op, FilterExpr a, FilterExpr b) {
    FilterExpr e;
    e.op = op;
    e.children.push_back(std::move(a));
    e.children.push_back(std::move(b));
    return e;
  }

  /// Collects the variables referenced by this expression.
  void CollectVars(std::vector<std::string>* out) const {
    if (op == Op::kVar || op == Op::kBound) out->push_back(var);
    for (const FilterExpr& c : children) c.CollectVars(out);
  }
};

/// Group graph pattern: a BGP plus filters, OPTIONAL sub-groups and UNION
/// alternatives (each union is a list of branch groups).
struct GroupPattern {
  std::vector<TriplePattern> triples;
  std::vector<FilterExpr> filters;
  std::vector<GroupPattern> optionals;
  std::vector<std::vector<GroupPattern>> unions;

  bool IsEmpty() const {
    return triples.empty() && filters.empty() && optionals.empty() && unions.empty();
  }
};

struct OrderKey {
  std::string var;
  bool ascending = true;
};

struct SelectQuery {
  bool distinct = false;
  std::vector<std::string> select_vars;  ///< empty => SELECT *
  GroupPattern where;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   ///< -1 = none
  int64_t offset = 0;
};

}  // namespace turbo::sparql
