// Per-execution term space for values a query *computes* rather than reads:
// aggregate results (COUNT/SUM/AVG literals) are RDF terms that do not exist
// in the shared, immutable Dictionary. A LocalVocab assigns them TermIds in
// the range [base, base + size) — just above the dictionary — so computed
// values flow through the same Row = vector<TermId> pipeline as stored
// terms. Resolution helpers below pick the right table per id.
//
// One LocalVocab lives per cursor execution; the Cursor / ResultSet share
// ownership so delivered rows stay resolvable after the pipeline is gone.
// Streaming cursors intern on the producer thread while the consumer
// resolves already-delivered rows, so Intern/Find/Numeric synchronize on an
// internal mutex; deques keep term references stable across growth, so a
// pointer returned by Find stays valid for the vocab's lifetime.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "rdf/dictionary.hpp"
#include "rdf/term.hpp"
#include "util/common.hpp"

namespace turbo::sparql {

class LocalVocab {
 public:
  /// `base` is the first id this vocab owns — dict.size() at open time (the
  /// dictionary is immutable while a query runs).
  explicit LocalVocab(TermId base) : base_(base) {}

  /// Chained form for the live-store term overlay: ids below `base` that the
  /// dictionary does not cover resolve through `parent` (itself a LocalVocab
  /// over the ids [parent->base(), base)). A cursor's vocab chains to the
  /// shared overlay so update-introduced terms resolve like stored ones
  /// while cursor-computed values still intern locally above them.
  LocalVocab(TermId base, std::shared_ptr<const LocalVocab> parent)
      : base_(base), parent_(std::move(parent)) {}

  /// Interns `t`, deduplicating by term value; returns its local id.
  TermId Intern(rdf::Term t) {
    std::string key = MakeKey(t);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, added] =
        index_.try_emplace(std::move(key), base_ + static_cast<TermId>(terms_.size()));
    if (added) {
      // Numeric view cached once at intern time: sort keys and HAVING
      // comparisons over aggregate columns resolve without re-parsing.
      numeric_.push_back(t.NumericValue());
      terms_.push_back(std::move(t));
    }
    return it->second;
  }

  /// Interns `t`, but prefers an id already visible through the parent chain
  /// below this vocab's base. Used when a query constant (VALUES row, BIND
  /// result) must join against data the overlay already stores: matching the
  /// overlay's id is what makes the join succeed. Parent ids at or above
  /// `base_` are terms interned after this vocab's epoch was pinned — they
  /// would collide with local ids, so they are ignored and the term interns
  /// locally (correctly matching nothing in the pinned snapshot).
  TermId InternVisible(const rdf::Term& t) {
    if (parent_) {
      std::optional<TermId> id = parent_->FindId(t);
      if (id && *id < base_) return *id;
    }
    return Intern(t);
  }

  /// The id this vocab (or a parent) assigned to `t`, if any.
  std::optional<TermId> FindId(const rdf::Term& t) const {
    std::string key = MakeKey(t);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) return it->second;
    }
    if (parent_) return parent_->FindId(t);
    return std::nullopt;
  }

  /// The term for a local id; nullptr if `id` is not in this vocab's range.
  /// The pointer stays valid while the vocab lives (deque storage).
  const rdf::Term* Find(TermId id) const {
    if (id < base_) return parent_ ? parent_->Find(id) : nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= base_ + terms_.size()) return nullptr;
    return &terms_[id - base_];
  }

  /// Cached numeric value for a local id (nullopt if out of range or
  /// non-numeric).
  std::optional<double> Numeric(TermId id) const {
    if (id < base_) return parent_ ? parent_->Numeric(id) : std::nullopt;
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= base_ + numeric_.size()) return std::nullopt;
    return numeric_[id - base_];
  }

  TermId base() const { return base_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return terms_.size();
  }

 private:
  // Composite key without the N-Triples escaping pass: lexical forms of
  // computed values never contain '\n', and kind disambiguates the rest.
  static std::string MakeKey(const rdf::Term& t) {
    std::string key;
    key.reserve(t.lexical.size() + t.datatype.size() + t.lang.size() + 3);
    key += static_cast<char>('0' + static_cast<int>(t.kind));
    key += t.lexical;
    key += '\n';
    key += t.datatype;
    key += '\n';
    key += t.lang;
    return key;
  }

  TermId base_;
  std::shared_ptr<const LocalVocab> parent_;  ///< covers [parent.base, base_)
  mutable std::mutex mu_;
  std::deque<rdf::Term> terms_;
  std::deque<std::optional<double>> numeric_;
  std::unordered_map<std::string, TermId> index_;  ///< composite value key -> id
};

/// Resolves an id against the dictionary or, above it, the local vocab.
/// Returns nullptr for kInvalidId (unbound) and for ids in neither table.
inline const rdf::Term* ResolveTerm(const rdf::Dictionary& dict, const LocalVocab* local,
                                    TermId id) {
  if (id == kInvalidId) return nullptr;
  if (id < dict.size()) return &dict.term(id);
  return local ? local->Find(id) : nullptr;
}

/// Cached numeric view of an id — the Dictionary's precomputed cache below
/// the base, the LocalVocab's intern-time cache above it.
inline std::optional<double> ResolveNumeric(const rdf::Dictionary& dict,
                                            const LocalVocab* local, TermId id) {
  if (id == kInvalidId) return std::nullopt;
  if (id < dict.size()) return dict.NumericValue(id);
  return local ? local->Numeric(id) : std::nullopt;
}

}  // namespace turbo::sparql
