#include "sparql/lexer.hpp"

#include <algorithm>
#include <cctype>

#include "rdf/term.hpp"

namespace turbo::sparql {

namespace {

const char* kKeywords[] = {"PREFIX",   "SELECT", "DISTINCT", "WHERE",  "FILTER",
                           "OPTIONAL", "UNION",  "ORDER",    "BY",     "ASC",
                           "DESC",     "LIMIT",  "OFFSET",   "REGEX",  "BOUND",
                           "STR",      "LANG",   "DATATYPE", "ISIRI",  "ISLITERAL",
                           "ISBLANK",  "TRUE",   "FALSE",    "GROUP",  "HAVING",
                           "AS",       "COUNT",  "SUM",      "MIN",    "MAX",
                           "AVG",      "VALUES", "BIND",     "UNDEF",  "INSERT",
                           "DELETE",   "DATA"};

bool IsKeyword(const std::string& upper) {
  return std::find_if(std::begin(kKeywords), std::end(kKeywords),
                      [&](const char* k) { return upper == k; }) != std::end(kKeywords);
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.';
}

}  // namespace

util::Result<std::vector<Token>> Lex(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = in.size();
  auto error = [&](const std::string& msg) {
    return util::Status::Error(msg + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < n && IsNameChar(in[j]) && in[j] != '.') ++j;
      t.kind = TokenKind::kVar;
      t.text = std::string(in.substr(i + 1, j - i - 1));
      if (t.text.empty()) return error("empty variable name");
      i = j;
    } else if (c == '<') {
      // IRI if a '>' appears before whitespace; otherwise comparison op.
      size_t j = i + 1;
      bool iri = false;
      while (j < n && !std::isspace(static_cast<unsigned char>(in[j]))) {
        if (in[j] == '>') {
          iri = true;
          break;
        }
        ++j;
      }
      if (iri) {
        t.kind = TokenKind::kIri;
        t.text = std::string(in.substr(i + 1, j - i - 1));
        i = j + 1;
      } else {
        t.kind = TokenKind::kPunct;
        if (i + 1 < n && in[i + 1] == '=') {
          t.text = "<=";
          i += 2;
        } else {
          t.text = "<";
          ++i;
        }
      }
    } else if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      std::string raw;
      bool closed = false;
      while (j < n) {
        if (in[j] == '\\' && j + 1 < n) {
          raw += in[j];
          raw += in[j + 1];
          j += 2;
          continue;
        }
        if (in[j] == quote) {
          closed = true;
          break;
        }
        raw += in[j];
        ++j;
      }
      if (!closed) return error("unterminated string literal");
      t.kind = TokenKind::kString;
      t.text = rdf::UnescapeNTriples(raw);
      i = j + 1;
      if (i < n && in[i] == '@') {
        size_t k = i + 1;
        while (k < n && (std::isalnum(static_cast<unsigned char>(in[k])) || in[k] == '-')) ++k;
        t.lang = std::string(in.substr(i + 1, k - i - 1));
        i = k;
      } else if (i + 1 < n && in[i] == '^' && in[i + 1] == '^') {
        i += 2;
        if (i < n && in[i] == '<') {
          size_t k = in.find('>', i + 1);
          if (k == std::string_view::npos) return error("unterminated datatype IRI");
          t.datatype = std::string(in.substr(i + 1, k - i - 1));
          i = k + 1;
        } else if (i < n && (std::isalpha(static_cast<unsigned char>(in[i])) ||
                             in[i] == '_')) {
          // Prefixed-name datatype (^^xsd:integer); parser expands the prefix.
          size_t k = i;
          while (k < n && IsNameChar(in[k]) && in[k] != '.') ++k;
          if (k >= n || in[k] != ':') return error("expected datatype IRI");
          ++k;
          size_t local = k;
          while (k < n && IsNameChar(in[k]) && in[k] != '.') ++k;
          if (k == local) return error("expected datatype IRI");
          t.datatype = std::string(in.substr(i, k - i));
          t.datatype_is_pname = true;
          i = k;
        } else {
          return error("expected datatype IRI");
        }
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(in[i + 1])) &&
                (out.empty() || out.back().kind == TokenKind::kPunct))) {
      size_t j = i + 1;
      bool dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(in[j])) ||
                       (in[j] == '.' && !dot && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(in[j + 1]))))) {
        if (in[j] == '.') dot = true;
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.text = std::string(in.substr(i, j - i));
      i = j;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && IsNameChar(in[j])) ++j;
      // Trailing dots belong to punctuation, not the name.
      while (j > i && in[j - 1] == '.') --j;
      std::string word(in.substr(i, j - i));
      // Prefixed name? (word ':' local)
      if (j < n && in[j] == ':') {
        size_t k = j + 1;
        while (k < n && IsNameChar(in[k])) ++k;
        while (k > j + 1 && in[k - 1] == '.') --k;
        t.kind = TokenKind::kPname;
        t.text = std::string(in.substr(i, k - i));
        i = k;
      } else {
        std::string upper = word;
        std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
        if (word == "a") {
          t.kind = TokenKind::kA;
          t.text = "a";
        } else if (IsKeyword(upper)) {
          t.kind = TokenKind::kKeyword;
          t.text = upper;
        } else {
          return error("unexpected bare word '" + word + "'");
        }
        i = j;
      }
    } else if (c == ':') {
      // Default-prefix pname ":local".
      size_t k = i + 1;
      while (k < n && IsNameChar(in[k])) ++k;
      while (k > i + 1 && in[k - 1] == '.') --k;
      t.kind = TokenKind::kPname;
      t.text = std::string(in.substr(i, k - i));
      i = k;
    } else {
      t.kind = TokenKind::kPunct;
      auto two = [&](char a, char b) { return c == a && i + 1 < n && in[i + 1] == b; };
      if (two('!', '=')) {
        t.text = "!=";
        i += 2;
      } else if (two('>', '=')) {
        t.text = ">=";
        i += 2;
      } else if (two('&', '&')) {
        t.text = "&&";
        i += 2;
      } else if (two('|', '|')) {
        t.text = "||";
        i += 2;
      } else if (std::string("{}().;,*=><!+-/").find(c) != std::string::npos) {
        t.text = std::string(1, c);
        ++i;
      } else {
        return error(std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(t));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.pos = n;
  out.push_back(eof);
  return out;
}

}  // namespace turbo::sparql
