#include "sparql/typed_value.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rdf/vocabulary.hpp"

namespace turbo::sparql {

namespace {

/// Datatypes that force double evaluation even for integer-shaped lexical
/// forms ("100"^^xsd:double is a double, not an int).
bool IsFloatingDatatype(const std::string& dt) {
  return dt == rdf::vocab::kXsdDouble ||
         dt == "http://www.w3.org/2001/XMLSchema#decimal" ||
         dt == "http://www.w3.org/2001/XMLSchema#float";
}

/// Full-string int64 parse; fails on overflow, fractions, exponents.
std::optional<int64_t> ParseInt64(const std::string& lex) {
  if (lex.empty()) return std::nullopt;
  const char* begin = lex.c_str();
  // Skip the same leading whitespace strtod tolerates, for consistency.
  while (*begin == ' ' || *begin == '\t') ++begin;
  if (*begin == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(begin, &end, 10);
  if (end == begin || errno == ERANGE) return std::nullopt;
  while (*end == ' ') ++end;
  if (*end != '\0') return std::nullopt;
  return static_cast<int64_t>(v);
}

}  // namespace

std::optional<Numeric> NumericOfTerm(const rdf::Term& t) {
  auto d = t.NumericValue();
  if (!d) return std::nullopt;
  if (!IsFloatingDatatype(t.datatype)) {
    if (auto i = ParseInt64(t.lexical)) return Numeric::Int(*i);
  }
  return Numeric::Dbl(*d);
}

Numeric NumericAdd(const Numeric& a, const Numeric& b) {
  if (a.is_int() && b.is_int()) {
    int64_t sum;
    if (!__builtin_add_overflow(a.i, b.i, &sum)) return Numeric::Int(sum);
    // Graceful overflow: fall through to the double domain.
  }
  return Numeric::Dbl(a.AsDouble() + b.AsDouble());
}

Numeric NumericMean(const Numeric& sum, uint64_t count) {
  return Numeric::Dbl(sum.AsDouble() / static_cast<double>(count));
}

std::string FormatDouble(double v) {
  // XSD's special lexical forms ("%g" would print "inf"/"nan", which are
  // not valid xsd:double; strtod still reads these spellings back).
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v < 0 ? "-INF" : "INF";
  char buf[40];
  // Shortest form that round-trips: try increasing precision.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

rdf::Term NumericToTerm(const Numeric& v) {
  if (v.is_int())
    return rdf::Term::TypedLiteral(std::to_string(v.i),
                                   std::string(rdf::vocab::kXsdInteger));
  return rdf::Term::TypedLiteral(FormatDouble(v.d), std::string(rdf::vocab::kXsdDouble));
}

}  // namespace turbo::sparql
