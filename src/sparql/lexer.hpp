// Hand-written lexer for the SPARQL subset.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace turbo::sparql {

enum class TokenKind : uint8_t {
  kEof,
  kKeyword,   // SELECT, WHERE, FILTER, ... (uppercased in `text`)
  kVar,       // ?x or $x (text = name without sigil)
  kIri,       // <...> (text = iri)
  kPname,     // prefix:local (text as written)
  kString,    // "..." (text = unescaped; lang/datatype in extra)
  kNumber,    // integer/decimal literal (text = lexical form)
  kA,         // the keyword 'a' (rdf:type)
  kPunct,     // { } ( ) . ; , * = != < <= > >= && || ! + - /
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::string lang;      // for kString
  std::string datatype;  // for kString (IRI, or pname when datatype_is_pname)
  bool datatype_is_pname = false;  // ^^xsd:integer — parser expands the prefix
  size_t pos = 0;        // byte offset, for error messages
};

/// Tokenizes `input`. Returns an error for unterminated strings/IRIs.
util::Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace turbo::sparql
