#include "sparql/parser.hpp"

#include <cstdlib>
#include <unordered_map>

#include "rdf/vocabulary.hpp"
#include "sparql/lexer.hpp"

namespace turbo::sparql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  util::Result<SelectQuery> Parse() {
    SelectQuery q;
    // Built-in prefixes.
    prefixes_["rdf"] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    prefixes_["rdfs"] = "http://www.w3.org/2000/01/rdf-schema#";
    prefixes_["owl"] = "http://www.w3.org/2002/07/owl#";
    prefixes_["xsd"] = "http://www.w3.org/2001/XMLSchema#";

    while (IsKeyword("PREFIX")) {
      Advance();
      if (Cur().kind != TokenKind::kPname)
        return Err("expected prefix name after PREFIX");
      std::string pname = Cur().text;  // "pfx:" or "pfx:garbage"
      size_t colon = pname.find(':');
      std::string pfx = pname.substr(0, colon);
      Advance();
      if (Cur().kind != TokenKind::kIri) return Err("expected IRI in PREFIX");
      prefixes_[pfx] = Cur().text;
      Advance();
    }

    if (!IsKeyword("SELECT")) return Err("expected SELECT");
    Advance();
    if (IsKeyword("DISTINCT")) {
      q.distinct = true;
      Advance();
    }
    if (IsPunct("*")) {
      Advance();
    } else {
      // Projection items: variables and/or aliased aggregates
      // `(COUNT(DISTINCT ?x) AS ?n)`.
      while (true) {
        if (Cur().kind == TokenKind::kVar) {
          q.select.push_back(SelectItem::Var(Cur().text));
          Advance();
        } else if (IsPunct("(")) {
          Advance();
          if (!IsAggKeyword()) return Err("expected aggregate function after ( in SELECT");
          auto agg = ParseAggregate();
          if (!agg.ok()) return agg.status();
          if (!IsKeyword("AS")) return Err("expected AS ?alias after aggregate");
          Advance();
          if (Cur().kind != TokenKind::kVar) return Err("expected variable after AS");
          std::string alias = Cur().text;
          Advance();
          if (!IsPunct(")")) return Err("expected ) closing (aggregate AS ?alias)");
          Advance();
          q.select.push_back(SelectItem::Agg(agg.take(), std::move(alias)));
        } else {
          break;
        }
        if (IsPunct(",")) Advance();
      }
      if (q.select.empty()) return Err("expected projection variables or *");
    }
    if (IsKeyword("WHERE")) Advance();
    auto group = ParseGroup();
    if (!group.ok()) return group.status();
    q.where = group.take();

    // Solution modifiers: GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET.
    if (IsKeyword("GROUP")) {
      Advance();
      if (!IsKeyword("BY")) return Err("expected BY after GROUP");
      Advance();
      while (Cur().kind == TokenKind::kVar) {
        q.group_by.push_back(Cur().text);
        Advance();
        if (IsPunct(",")) Advance();
      }
      if (q.group_by.empty()) return Err("empty GROUP BY");
    }
    while (IsKeyword("HAVING") || (!q.having.empty() && IsPunct("("))) {
      // HAVING (c1) (c2) ... — each bracketed constraint may aggregate.
      if (IsKeyword("HAVING")) Advance();
      auto e = ParseBracketedExpr();
      if (!e.ok()) return e.status();
      q.having.push_back(e.take());
    }
    if (IsKeyword("ORDER")) {
      Advance();
      if (!IsKeyword("BY")) return Err("expected BY after ORDER");
      Advance();
      while (true) {
        OrderKey key;
        if (IsKeyword("ASC") || IsKeyword("DESC")) {
          key.ascending = Cur().text == "ASC";
          Advance();
          if (!IsPunct("(")) return Err("expected ( after ASC/DESC");
          Advance();
          if (Cur().kind != TokenKind::kVar) return Err("expected variable in ORDER BY");
          key.var = Cur().text;
          Advance();
          if (!IsPunct(")")) return Err("expected ) in ORDER BY");
          Advance();
        } else if (Cur().kind == TokenKind::kVar) {
          key.var = Cur().text;
          Advance();
        } else {
          break;
        }
        q.order_by.push_back(key);
      }
      if (q.order_by.empty()) return Err("empty ORDER BY");
    }
    // LIMIT and OFFSET may appear in either order.
    while (IsKeyword("LIMIT") || IsKeyword("OFFSET")) {
      bool is_limit = Cur().text == "LIMIT";
      Advance();
      if (Cur().kind != TokenKind::kNumber)
        return Err(std::string("expected number after ") + (is_limit ? "LIMIT" : "OFFSET"));
      (is_limit ? q.limit : q.offset) = std::strtoll(Cur().text.c_str(), nullptr, 10);
      Advance();
    }
    if (Cur().kind != TokenKind::kEof) return Err("trailing input");
    return q;
  }

  util::Result<UpdateRequest> ParseUpdateRequest() {
    UpdateRequest u;
    prefixes_["rdf"] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    prefixes_["rdfs"] = "http://www.w3.org/2000/01/rdf-schema#";
    prefixes_["owl"] = "http://www.w3.org/2002/07/owl#";
    prefixes_["xsd"] = "http://www.w3.org/2001/XMLSchema#";
    while (IsKeyword("PREFIX")) {
      Advance();
      if (Cur().kind != TokenKind::kPname)
        return Err("expected prefix name after PREFIX");
      std::string pname = Cur().text;
      std::string pfx = pname.substr(0, pname.find(':'));
      Advance();
      if (Cur().kind != TokenKind::kIri) return Err("expected IRI in PREFIX");
      prefixes_[pfx] = Cur().text;
      Advance();
    }
    bool any = false;
    while (IsKeyword("INSERT") || IsKeyword("DELETE")) {
      bool insert = Cur().text == "INSERT";
      Advance();
      if (!IsKeyword("DATA"))
        return Err(std::string("only ") + (insert ? "INSERT" : "DELETE") +
                   " DATA is supported");
      Advance();
      auto triples = ParseGroundTriples();
      if (!triples.ok()) return triples.status();
      auto& dst = insert ? u.insert_triples : u.delete_triples;
      for (auto& t : triples.take()) dst.push_back(std::move(t));
      any = true;
      if (IsPunct(";")) Advance();
    }
    if (!any) return Err("expected INSERT DATA or DELETE DATA");
    if (Cur().kind != TokenKind::kEof) return Err("trailing input");
    return u;
  }

 private:
  /// Parses `{ <ground triples> }` — the data block of INSERT/DELETE DATA.
  /// Reuses the group parser and then rejects anything but constant triples.
  util::Result<std::vector<std::array<rdf::Term, 3>>> ParseGroundTriples() {
    auto group = ParseGroup();
    if (!group.ok()) return group.status();
    GroupPattern g = group.take();
    if (!g.filters.empty() || !g.optionals.empty() || !g.unions.empty() ||
        !g.values.empty() || !g.binds.empty())
      return Err("update data must be plain triples");
    std::vector<std::array<rdf::Term, 3>> out;
    out.reserve(g.triples.size());
    for (TriplePattern& t : g.triples) {
      if (t.s.is_var() || t.p.is_var() || t.o.is_var())
        return Err("update data must be ground (no variables)");
      out.push_back({std::move(t.s.term), std::move(t.p.term), std::move(t.o.term)});
    }
    return out;
  }

  const Token& Cur() const { return toks_[pos_]; }
  void Advance() { ++pos_; }
  bool IsKeyword(const char* k) const {
    return Cur().kind == TokenKind::kKeyword && Cur().text == k;
  }
  bool IsPunct(const char* p) const {
    return Cur().kind == TokenKind::kPunct && Cur().text == p;
  }
  util::Status Err(const std::string& msg) const {
    return util::Status::Error(msg + " (near offset " + std::to_string(Cur().pos) + ")");
  }

  bool IsAggKeyword() const {
    if (Cur().kind != TokenKind::kKeyword) return false;
    const std::string& t = Cur().text;
    return t == "COUNT" || t == "SUM" || t == "MIN" || t == "MAX" || t == "AVG";
  }

  /// Parses `FUNC ( [DISTINCT] (?var | *) )` with the cursor on FUNC.
  util::Result<Aggregate> ParseAggregate() {
    Aggregate a;
    const std::string& name = Cur().text;
    a.func = name == "COUNT" ? Aggregate::Func::kCount
             : name == "SUM" ? Aggregate::Func::kSum
             : name == "MIN" ? Aggregate::Func::kMin
             : name == "MAX" ? Aggregate::Func::kMax
                             : Aggregate::Func::kAvg;
    Advance();
    if (!IsPunct("(")) return Err("expected ( after " + name);
    Advance();
    if (IsKeyword("DISTINCT")) {
      a.distinct = true;
      Advance();
    }
    if (IsPunct("*")) {
      if (a.func != Aggregate::Func::kCount)
        return Err(name + "(*) is not defined; only COUNT takes *");
      a.star = true;
      Advance();
    } else if (Cur().kind == TokenKind::kVar) {
      a.var = Cur().text;
      Advance();
    } else {
      return Err("aggregate argument must be a variable or *");
    }
    if (!IsPunct(")")) return Err("expected ) closing " + name);
    Advance();
    return a;
  }

  util::Result<GroupPattern> ParseGroup() {
    if (!IsPunct("{")) return Err("expected {");
    Advance();
    GroupPattern g;
    while (!IsPunct("}")) {
      if (Cur().kind == TokenKind::kEof) return Err("unterminated group");
      if (IsKeyword("FILTER")) {
        Advance();
        auto e = ParseBracketedExpr();
        if (!e.ok()) return e.status();
        g.filters.push_back(e.take());
      } else if (IsKeyword("OPTIONAL")) {
        Advance();
        auto sub = ParseGroup();
        if (!sub.ok()) return sub.status();
        g.optionals.push_back(sub.take());
      } else if (IsPunct("{")) {
        // Sub-group; possibly a UNION chain.
        auto first = ParseGroup();
        if (!first.ok()) return first.status();
        std::vector<GroupPattern> branches;
        branches.push_back(first.take());
        while (IsKeyword("UNION")) {
          Advance();
          auto next = ParseGroup();
          if (!next.ok()) return next.status();
          branches.push_back(next.take());
        }
        if (branches.size() == 1) {
          // Plain nested group: merge into the parent (join semantics).
          GroupPattern& sub = branches[0];
          for (auto& t : sub.triples) g.triples.push_back(std::move(t));
          for (auto& f : sub.filters) g.filters.push_back(std::move(f));
          for (auto& o : sub.optionals) g.optionals.push_back(std::move(o));
          for (auto& u : sub.unions) g.unions.push_back(std::move(u));
        } else {
          g.unions.push_back(std::move(branches));
        }
      } else if (IsKeyword("VALUES")) {
        Advance();
        auto v = ParseValues();
        if (!v.ok()) return v.status();
        g.values.push_back(v.take());
      } else if (IsKeyword("BIND")) {
        Advance();
        if (!IsPunct("(")) return Err("expected ( after BIND");
        Advance();
        BindClause b;
        auto e = ParseOr();
        if (!e.ok()) return e.status();
        b.expr = e.take();
        if (!IsKeyword("AS")) return Err("expected AS in BIND");
        Advance();
        if (Cur().kind != TokenKind::kVar) return Err("expected variable after AS in BIND");
        b.var = Cur().text;
        Advance();
        if (!IsPunct(")")) return Err("expected ) closing BIND");
        Advance();
        g.binds.push_back(std::move(b));
      } else {
        auto st = ParseTriplesBlock(&g);
        if (!st.ok()) return st;
      }
      if (IsPunct(".")) Advance();
    }
    Advance();  // consume '}'
    return g;
  }

  /// Parses a VALUES data block with the cursor just past the keyword:
  /// `?v { t1 t2 ... }` or `( ?a ?b ) { (t t) (t UNDEF) ... }`.
  util::Result<ValuesClause> ParseValues() {
    ValuesClause v;
    bool parenthesized = IsPunct("(");
    if (parenthesized) {
      Advance();
      while (Cur().kind == TokenKind::kVar) {
        v.vars.push_back(Cur().text);
        Advance();
      }
      if (!IsPunct(")")) return Err("expected ) closing VALUES variable list");
      Advance();
    } else if (Cur().kind == TokenKind::kVar) {
      v.vars.push_back(Cur().text);
      Advance();
    } else {
      return Err("expected variable or ( after VALUES");
    }
    if (v.vars.empty()) return Err("VALUES needs at least one variable");
    if (!IsPunct("{")) return Err("expected { opening VALUES data block");
    Advance();
    auto cell = [&]() -> util::Result<std::optional<rdf::Term>> {
      if (IsKeyword("UNDEF")) {
        Advance();
        return std::optional<rdf::Term>();
      }
      auto pt = ParsePatternTerm();
      if (!pt.ok()) return pt.status();
      if (pt.value().is_var()) return Err("variables are not allowed in VALUES data");
      return std::optional<rdf::Term>(pt.take().term);
    };
    while (!IsPunct("}")) {
      if (Cur().kind == TokenKind::kEof) return Err("unterminated VALUES block");
      std::vector<std::optional<rdf::Term>> row;
      if (parenthesized) {
        if (!IsPunct("(")) return Err("expected ( opening VALUES row");
        Advance();
        for (size_t i = 0; i < v.vars.size(); ++i) {
          auto c = cell();
          if (!c.ok()) return c.status();
          row.push_back(c.take());
        }
        if (!IsPunct(")")) return Err("VALUES row arity mismatch");
        Advance();
      } else {
        auto c = cell();
        if (!c.ok()) return c.status();
        row.push_back(c.take());
      }
      v.rows.push_back(std::move(row));
    }
    Advance();  // consume '}'
    return v;
  }

  util::Status ParseTriplesBlock(GroupPattern* g) {
    auto subj = ParsePatternTerm();
    if (!subj.ok()) return subj.status();
    while (true) {
      auto pred = ParseVerb();
      if (!pred.ok()) return pred.status();
      while (true) {
        auto obj = ParsePatternTerm();
        if (!obj.ok()) return obj.status();
        g->triples.push_back({subj.value(), pred.value(), obj.take()});
        if (IsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (IsPunct(";")) {
        Advance();
        // Allow trailing ';' before '.' or '}'.
        if (IsPunct(".") || IsPunct("}")) break;
        continue;
      }
      break;
    }
    return util::Status::Ok();
  }

  util::Result<PatternTerm> ParseVerb() {
    if (Cur().kind == TokenKind::kA) {
      Advance();
      return PatternTerm::Const(rdf::Term::Iri(rdf::vocab::kRdfType));
    }
    return ParsePatternTerm();
  }

  util::Result<PatternTerm> ParsePatternTerm() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kVar: {
        Advance();
        return PatternTerm::Var(t.text);
      }
      case TokenKind::kIri: {
        Advance();
        return PatternTerm::Const(rdf::Term::Iri(t.text));
      }
      case TokenKind::kPname: {
        auto iri = ExpandPname(t.text);
        if (!iri.ok()) return iri.status();
        Advance();
        return PatternTerm::Const(rdf::Term::Iri(iri.take()));
      }
      case TokenKind::kString: {
        std::string datatype = t.datatype;
        if (t.datatype_is_pname) {
          auto iri = ExpandPname(datatype);
          if (!iri.ok()) return iri.status();
          datatype = iri.take();
        }
        rdf::Term lit = !t.lang.empty()        ? rdf::Term::LangLiteral(t.text, t.lang)
                        : !datatype.empty()    ? rdf::Term::TypedLiteral(t.text, datatype)
                                               : rdf::Term::Literal(t.text);
        Advance();
        return PatternTerm::Const(std::move(lit));
      }
      case TokenKind::kNumber: {
        bool decimal = t.text.find('.') != std::string::npos;
        rdf::Term lit = rdf::Term::TypedLiteral(
            t.text, decimal ? rdf::vocab::kXsdDouble : rdf::vocab::kXsdInteger);
        Advance();
        return PatternTerm::Const(std::move(lit));
      }
      default:
        return Err("expected term or variable");
    }
  }

  util::Result<std::string> ExpandPname(const std::string& pname) {
    size_t colon = pname.find(':');
    std::string pfx = pname.substr(0, colon);
    auto it = prefixes_.find(pfx);
    if (it == prefixes_.end()) return Err("unknown prefix '" + pfx + "'");
    return it->second + pname.substr(colon + 1);
  }

  // ---- Expressions ----

  util::Result<FilterExpr> ParseBracketedExpr() {
    if (!IsPunct("(")) return Err("expected ( after FILTER");
    Advance();
    auto e = ParseOr();
    if (!e.ok()) return e;
    if (!IsPunct(")")) return Err("expected ) closing FILTER");
    Advance();
    return e;
  }

  util::Result<FilterExpr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    FilterExpr e = lhs.take();
    while (IsPunct("||")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::MakeBinary(FilterExpr::Op::kOr, std::move(e), rhs.take());
    }
    return e;
  }

  util::Result<FilterExpr> ParseAnd() {
    auto lhs = ParseRelational();
    if (!lhs.ok()) return lhs;
    FilterExpr e = lhs.take();
    while (IsPunct("&&")) {
      Advance();
      auto rhs = ParseRelational();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::MakeBinary(FilterExpr::Op::kAnd, std::move(e), rhs.take());
    }
    return e;
  }

  util::Result<FilterExpr> ParseRelational() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    FilterExpr e = lhs.take();
    struct {
      const char* tok;
      FilterExpr::Op op;
    } ops[] = {{"=", FilterExpr::Op::kEq},  {"!=", FilterExpr::Op::kNe},
               {"<=", FilterExpr::Op::kLe}, {">=", FilterExpr::Op::kGe},
               {"<", FilterExpr::Op::kLt},  {">", FilterExpr::Op::kGt}};
    for (const auto& o : ops) {
      if (IsPunct(o.tok)) {
        Advance();
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return FilterExpr::MakeBinary(o.op, std::move(e), rhs.take());
      }
    }
    return e;
  }

  util::Result<FilterExpr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    FilterExpr e = lhs.take();
    while (IsPunct("+") || IsPunct("-")) {
      FilterExpr::Op op = IsPunct("+") ? FilterExpr::Op::kAdd : FilterExpr::Op::kSub;
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::MakeBinary(op, std::move(e), rhs.take());
    }
    return e;
  }

  util::Result<FilterExpr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    FilterExpr e = lhs.take();
    while (IsPunct("*") || IsPunct("/")) {
      FilterExpr::Op op = IsPunct("*") ? FilterExpr::Op::kMul : FilterExpr::Op::kDiv;
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::MakeBinary(op, std::move(e), rhs.take());
    }
    return e;
  }

  util::Result<FilterExpr> ParseUnary() {
    if (IsPunct("!")) {
      Advance();
      auto e = ParseUnary();
      if (!e.ok()) return e;
      return FilterExpr::MakeUnary(FilterExpr::Op::kNot, e.take());
    }
    if (IsPunct("-")) {
      Advance();
      auto e = ParseUnary();
      if (!e.ok()) return e;
      return FilterExpr::MakeUnary(FilterExpr::Op::kNeg, e.take());
    }
    return ParsePrimary();
  }

  util::Result<FilterExpr> ParsePrimary() {
    const Token& t = Cur();
    if (IsPunct("(")) {
      Advance();
      auto e = ParseOr();
      if (!e.ok()) return e;
      if (!IsPunct(")")) return Err("expected )");
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kVar) {
      Advance();
      return FilterExpr::MakeVar(t.text);
    }
    if (IsAggKeyword()) {
      // Aggregate call in an expression — legal in HAVING constraints; the
      // planner rejects it anywhere else.
      auto a = ParseAggregate();
      if (!a.ok()) return a.status();
      return FilterExpr::MakeAggregate(a.take());
    }
    if (t.kind == TokenKind::kKeyword) {
      static const std::unordered_map<std::string, FilterExpr::Op> kFns = {
          {"REGEX", FilterExpr::Op::kRegex},        {"BOUND", FilterExpr::Op::kBound},
          {"STR", FilterExpr::Op::kStr},            {"LANG", FilterExpr::Op::kLang},
          {"DATATYPE", FilterExpr::Op::kDatatype},  {"ISIRI", FilterExpr::Op::kIsIri},
          {"ISLITERAL", FilterExpr::Op::kIsLiteral},{"ISBLANK", FilterExpr::Op::kIsBlank}};
      if (t.text == "TRUE" || t.text == "FALSE") {
        bool val = t.text == "TRUE";
        Advance();
        return FilterExpr::MakeLiteral(rdf::Term::TypedLiteral(
            val ? "true" : "false", "http://www.w3.org/2001/XMLSchema#boolean"));
      }
      auto fn = kFns.find(t.text);
      if (fn == kFns.end()) return Err("unexpected keyword " + t.text + " in expression");
      Advance();
      if (!IsPunct("(")) return Err("expected ( after " + t.text);
      Advance();
      FilterExpr e;
      e.op = fn->second;
      if (e.op == FilterExpr::Op::kBound) {
        if (Cur().kind != TokenKind::kVar) return Err("bound() takes a variable");
        e.var = Cur().text;
        Advance();
      } else {
        while (!IsPunct(")")) {
          auto arg = ParseOr();
          if (!arg.ok()) return arg;
          e.children.push_back(arg.take());
          if (IsPunct(",")) Advance();
          else break;
        }
      }
      if (!IsPunct(")")) return Err("expected ) closing " + t.text);
      Advance();
      return e;
    }
    // Constant terms.
    auto pt = ParsePatternTerm();
    if (!pt.ok()) return pt.status();
    if (pt.value().is_var()) return FilterExpr::MakeVar(pt.value().var);
    return FilterExpr::MakeLiteral(pt.take().term);
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

util::Result<SelectQuery> ParseQuery(std::string_view text) {
  auto toks = Lex(text);
  if (!toks.ok()) return toks.status();
  return Parser(toks.take()).Parse();
}

util::Result<UpdateRequest> ParseUpdate(std::string_view text) {
  auto toks = Lex(text);
  if (!toks.ok()) return toks.status();
  return Parser(toks.take()).ParseUpdateRequest();
}

}  // namespace turbo::sparql
