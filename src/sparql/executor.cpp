#include "sparql/executor.hpp"

#include "sparql/parser.hpp"
#include "sparql/query_engine.hpp"

namespace turbo::sparql {

util::Result<ResultSet> Executor::Execute(const SelectQuery& q) const {
  auto prepared = PrepareSelect(q);
  if (!prepared.ok()) return prepared.status();
  Cursor cursor = OpenCursor(*solver_, prepared.value());
  ResultSet rs;
  rs.var_names = prepared.value().var_names();
  Row row;
  while (cursor.Next(&row)) rs.rows.push_back(std::move(row));
  if (!cursor.status().ok()) return cursor.status();
  rs.total_before_modifiers = cursor.rows_before_modifiers();
  rs.local_vocab = cursor.local_vocab();
  return rs;
}

util::Result<ResultSet> Executor::Execute(const std::string& text) const {
  auto q = ParseQuery(text);
  if (!q.ok()) return q.status();
  return Execute(q.value());
}

std::string FormatRow(const ResultSet& rs, size_t row, const rdf::Dictionary& dict) {
  return FormatRow(rs.var_names, rs.rows[row], dict, rs.local_vocab.get());
}

}  // namespace turbo::sparql
