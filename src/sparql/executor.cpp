#include "sparql/executor.hpp"

#include <algorithm>
#include <set>

#include "sparql/filter_eval.hpp"
#include "sparql/parser.hpp"

namespace turbo::sparql {

namespace {

/// Registers every variable appearing anywhere in the group (recursively).
void CollectGroupVars(const GroupPattern& g, VarRegistry* vars) {
  for (const TriplePattern& t : g.triples) {
    for (const PatternTerm* pt : {&t.s, &t.p, &t.o})
      if (pt->is_var()) vars->GetOrAdd(pt->var);
  }
  for (const FilterExpr& f : g.filters) {
    std::vector<std::string> fv;
    f.CollectVars(&fv);
    for (auto& v : fv) vars->GetOrAdd(v);
  }
  for (const GroupPattern& o : g.optionals) CollectGroupVars(o, vars);
  for (const auto& u : g.unions)
    for (const GroupPattern& b : u) CollectGroupVars(b, vars);
}

/// True if every variable of `f` occurs in a triple pattern of `g` (then the
/// filter can be handed to the solver as a pruning hint).
bool FilterCoveredByBgp(const FilterExpr& f, const GroupPattern& g,
                        const VarRegistry& /*vars*/) {
  std::vector<std::string> fv;
  f.CollectVars(&fv);
  for (const std::string& v : fv) {
    bool found = false;
    for (const TriplePattern& t : g.triples) {
      if ((t.s.is_var() && t.s.var == v) || (t.p.is_var() && t.p.var == v) ||
          (t.o.is_var() && t.o.var == v)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return !fv.empty();
}

class GroupEvaluator {
 public:
  GroupEvaluator(const BgpSolver& solver, const VarRegistry& vars)
      : solver_(solver), vars_(vars), eval_(solver.dict(), vars) {}

  util::Status Eval(const GroupPattern& g, std::vector<Row>&& input,
                    std::vector<Row>* output) {
    std::vector<Row> rows = std::move(input);

    // 1. Basic graph pattern join.
    if (!g.triples.empty()) {
      std::vector<const FilterExpr*> pushable;
      for (const FilterExpr& f : g.filters)
        if (FilterCoveredByBgp(f, g, vars_)) pushable.push_back(&f);
      std::vector<Row> joined;
      for (const Row& r : rows) {
        auto st = solver_.Evaluate(g.triples, vars_, r, pushable,
                                   [&](const Row& out) { joined.push_back(out); });
        if (!st.ok()) return st;
      }
      rows = std::move(joined);
    }

    // 2. UNION blocks: each block multiplies the current rows by its
    // branches' solutions (concatenated, duplicates preserved).
    for (const auto& branches : g.unions) {
      std::vector<Row> unioned;
      for (const GroupPattern& b : branches) {
        std::vector<Row> branch_rows;
        auto st = Eval(b, std::vector<Row>(rows), &branch_rows);
        if (!st.ok()) return st;
        for (Row& r : branch_rows) unioned.push_back(std::move(r));
      }
      rows = std::move(unioned);
    }

    // 3. OPTIONAL blocks: left join per row. A failed optional keeps the
    // row with its variables unbound — emitted once (the paper's
    // qualify-and-exclude-duplicate behaviour).
    for (const GroupPattern& opt : g.optionals) {
      std::vector<Row> extended;
      for (const Row& r : rows) {
        std::vector<Row> ext;
        auto st = Eval(opt, {r}, &ext);
        if (!st.ok()) return st;
        if (ext.empty()) {
          extended.push_back(r);
        } else {
          for (Row& e : ext) extended.push_back(std::move(e));
        }
      }
      rows = std::move(extended);
    }

    // 4. FILTERs scope over the whole group.
    if (!g.filters.empty()) {
      rows.erase(std::remove_if(rows.begin(), rows.end(),
                                [&](const Row& r) {
                                  for (const FilterExpr& f : g.filters)
                                    if (!eval_.Test(f, r)) return true;
                                  return false;
                                }),
                 rows.end());
    }
    *output = std::move(rows);
    return util::Status::Ok();
  }

 private:
  const BgpSolver& solver_;
  const VarRegistry& vars_;
  FilterEvaluator eval_;
};

}  // namespace

util::Result<ResultSet> Executor::Execute(const SelectQuery& q) const {
  VarRegistry vars;
  for (const std::string& v : q.select_vars) vars.GetOrAdd(v);
  CollectGroupVars(q.where, &vars);
  for (const OrderKey& k : q.order_by) vars.GetOrAdd(k.var);

  std::vector<Row> rows;
  {
    std::vector<Row> seed{Row(vars.size(), kInvalidId)};
    GroupEvaluator ge(*solver_, vars);
    auto st = ge.Eval(q.where, std::move(seed), &rows);
    if (!st.ok()) return st;
  }

  // ORDER BY before projection (keys may be non-projected variables).
  if (!q.order_by.empty()) {
    const rdf::Dictionary& dict = solver_->dict();
    std::vector<int> key_idx;
    for (const OrderKey& k : q.order_by) key_idx.push_back(*vars.Find(k.var));
    auto cmp_terms = [&](TermId a, TermId b) -> int {
      if (a == b) return 0;
      if (a == kInvalidId) return -1;  // unbound sorts first
      if (b == kInvalidId) return 1;
      auto na = dict.NumericValue(a), nb = dict.NumericValue(b);
      if (na && nb && *na != *nb) return *na < *nb ? -1 : 1;
      int c = dict.term(a).lexical.compare(dict.term(b).lexical);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    };
    std::stable_sort(rows.begin(), rows.end(), [&](const Row& x, const Row& y) {
      for (size_t i = 0; i < key_idx.size(); ++i) {
        int c = cmp_terms(x[key_idx[i]], y[key_idx[i]]);
        if (c != 0) return q.order_by[i].ascending ? c < 0 : c > 0;
      }
      return false;
    });
  }

  // Projection.
  ResultSet rs;
  std::vector<int> proj;
  if (q.select_vars.empty()) {
    for (size_t i = 0; i < vars.size(); ++i) {
      rs.var_names.push_back(vars.name(static_cast<int>(i)));
      proj.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& v : q.select_vars) {
      rs.var_names.push_back(v);
      proj.push_back(*vars.Find(v));
    }
  }
  rs.rows.reserve(rows.size());
  for (const Row& r : rows) {
    std::vector<TermId> out;
    out.reserve(proj.size());
    for (int i : proj) out.push_back(r[i]);
    rs.rows.push_back(std::move(out));
  }
  rs.total_before_modifiers = rs.rows.size();

  if (q.distinct) {
    std::set<std::vector<TermId>> seen;
    std::vector<std::vector<TermId>> unique;
    for (auto& r : rs.rows)
      if (seen.insert(r).second) unique.push_back(std::move(r));
    rs.rows = std::move(unique);
  }
  if (q.offset > 0) {
    if (static_cast<size_t>(q.offset) >= rs.rows.size())
      rs.rows.clear();
    else
      rs.rows.erase(rs.rows.begin(), rs.rows.begin() + q.offset);
  }
  if (q.limit >= 0 && rs.rows.size() > static_cast<size_t>(q.limit))
    rs.rows.resize(q.limit);
  return rs;
}

util::Result<ResultSet> Executor::Execute(const std::string& text) const {
  auto q = ParseQuery(text);
  if (!q.ok()) return q.status();
  return Execute(q.value());
}

std::string FormatRow(const ResultSet& rs, size_t row, const rdf::Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < rs.var_names.size(); ++i) {
    if (i) out += "  ";
    out += "?" + rs.var_names[i] + "=";
    TermId t = rs.rows[row][i];
    out += t == kInvalidId ? "UNBOUND" : dict.term(t).ToNTriples();
  }
  return out;
}

}  // namespace turbo::sparql
