#include "sparql/operators.hpp"

#include <algorithm>
#include <cmath>

#include "sparql/filter_eval.hpp"

namespace turbo::sparql {

int CompareTerms(const rdf::Dictionary& dict, const LocalVocab* local, TermId a,
                 TermId b) {
  if (a == b) return 0;
  if (a == kInvalidId) return -1;
  if (b == kInvalidId) return 1;
  // Numeric terms form their own rank below non-numeric terms (SPARQL-style
  // type grouping). Comparing numerically only when BOTH sides are numeric
  // but lexically across the boundary would create comparison cycles
  // ("2" < "10" < "1z" < "2") — not a strict weak ordering, which
  // std::sort / push_heap require. NaN-valued literals ("NaN"^^xsd:double
  // parses to NaN) are unordered against every number, so they demote to
  // the lexical rank for the same reason.
  auto na = ResolveNumeric(dict, local, a), nb = ResolveNumeric(dict, local, b);
  if (na && std::isnan(*na)) na.reset();
  if (nb && std::isnan(*nb)) nb.reset();
  if (na.has_value() != nb.has_value()) return na ? -1 : 1;
  if (na && nb && *na != *nb) return *na < *nb ? -1 : 1;
  const rdf::Term* ta = ResolveTerm(dict, local, a);
  const rdf::Term* tb = ResolveTerm(dict, local, b);
  if (!ta || !tb) return ta ? 1 : (tb ? -1 : 0);
  int c = ta->lexical.compare(tb->lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

// ---------------------------------------------------------------------------
// BgpSource
// ---------------------------------------------------------------------------

EmitResult BgpSource::DoPush(const Row& row) {
  bool downstream_stopped = false;
  util::Status st = solver_.Evaluate(
      bgp_, vars_, row, pushable_,
      [&](const Row& out) -> EmitResult {
        if (Emit(out) == EmitResult::kStop) {
          downstream_stopped = true;
          return EmitResult::kStop;
        }
        return EmitResult::kContinue;
      },
      state()->control);
  if (!st.ok()) {
    state()->Fail(std::move(st),
                  CauseOf(state()->control, StopCause::kProducerFailed));
    return EmitResult::kStop;
  }
  return downstream_stopped ? EmitResult::kStop : EmitResult::kContinue;
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

EmitResult FilterOp::DoPush(const Row& row) {
  for (const FilterExpr* e : exprs_)
    if (!eval_.Test(*e, row)) return EmitResult::kContinue;
  return Emit(row);
}

// ---------------------------------------------------------------------------
// BindOp
// ---------------------------------------------------------------------------

EmitResult BindOp::DoPush(const Row& row) {
  scratch_ = row;
  if (scratch_[target_idx_] == kInvalidId) {
    if (std::optional<rdf::Term> t = eval_.EvalTerm(*expr_, row))
      // InternVisible: a computed term that already exists in the store's
      // overlay must reuse that id so downstream joins and DISTINCT see it
      // as the same value.
      scratch_[target_idx_] = local_->InternVisible(*t);
  }
  return Emit(scratch_);
}

// ---------------------------------------------------------------------------
// GroupAggregateOp
// ---------------------------------------------------------------------------

namespace {

std::string GroupLabel(const std::vector<int>& keys, const std::vector<AggSpec>& aggs,
                       bool implicit) {
  std::string s = "GroupAggregate{";
  s += implicit ? "implicit group" : "keys=" + std::to_string(keys.size());
  for (const AggSpec& a : aggs) s += "; " + a.agg.ToString();
  s += "}";
  return s;
}

}  // namespace

GroupAggregateOp::GroupAggregateOp(std::vector<int> key_idx, std::vector<AggSpec> aggs,
                                   bool implicit_group, const rdf::Dictionary& dict,
                                   LocalVocab* local, RowOp* next, ExecState* state)
    : RowOp(GroupLabel(key_idx, aggs, implicit_group), next, state),
      key_idx_(std::move(key_idx)),
      aggs_(std::move(aggs)),
      implicit_group_(implicit_group),
      dict_(dict),
      local_(local) {}

void GroupAggregateOp::Accumulate(const AggSpec& spec, Accum* a, const Row& row) {
  using Func = Aggregate::Func;
  if (spec.agg.star) {
    // COUNT(*) — rows, not values. DISTINCT * dedupes whole rows.
    if (spec.agg.distinct) {
      if (!a->distinct_rows) a->distinct_rows = std::make_unique<std::set<Row>>();
      a->distinct_rows->insert(row);
    } else {
      ++a->count;
    }
    return;
  }
  TermId v = spec.arg_idx >= 0 ? row[spec.arg_idx] : kInvalidId;
  if (v == kInvalidId) return;  // unbound contributes nothing
  // DISTINCT dedup only where duplicates change the result — MIN/MAX are
  // idempotent, so they skip the per-group value set entirely.
  if (spec.agg.distinct && spec.agg.func != Func::kMin &&
      spec.agg.func != Func::kMax) {
    if (!a->distinct) a->distinct = std::make_unique<std::set<TermId>>();
    if (!a->distinct->insert(v).second) return;
  }
  switch (spec.agg.func) {
    case Func::kCount:
      ++a->count;
      break;
    case Func::kSum:
    case Func::kAvg: {
      if (a->num_error) return;
      auto [it, added] = num_cache_.try_emplace(v);
      if (added) {
        // Resolve through the local vocab as well: VALUES / BIND rows feed
        // aggregation with computed ids above the dictionary.
        const rdf::Term* t = ResolveTerm(dict_, local_, v);
        it->second = t ? NumericOfTerm(*t) : std::nullopt;
      }
      const std::optional<Numeric>& n = it->second;
      if (!n) {
        a->num_error = true;  // bound non-numeric: the aggregate errors
        return;
      }
      a->sum = NumericAdd(a->sum, *n);
      ++a->count;
      break;
    }
    case Func::kMin:
      if (a->best == kInvalidId || CompareTerms(dict_, local_, v, a->best) < 0)
        a->best = v;
      break;
    case Func::kMax:
      if (a->best == kInvalidId || CompareTerms(dict_, local_, v, a->best) > 0)
        a->best = v;
      break;
  }
}

TermId GroupAggregateOp::Result(const AggSpec& spec, const Accum& a) {
  using Func = Aggregate::Func;
  switch (spec.agg.func) {
    case Func::kCount: {
      uint64_t n = spec.agg.star && spec.agg.distinct
                       ? (a.distinct_rows ? a.distinct_rows->size() : 0)
                       : a.count;
      return local_->Intern(NumericToTerm(Numeric::Int(static_cast<int64_t>(n))));
    }
    case Func::kSum:
      if (a.num_error) return kInvalidId;
      return local_->Intern(NumericToTerm(a.sum));  // empty group: exact 0
    case Func::kAvg:
      if (a.num_error) return kInvalidId;
      if (a.count == 0) return local_->Intern(NumericToTerm(Numeric::Int(0)));
      return local_->Intern(NumericToTerm(NumericMean(a.sum, a.count)));
    case Func::kMin:
    case Func::kMax:
      return a.best;  // kInvalidId (unbound) when no value was seen
  }
  return kInvalidId;
}

EmitResult GroupAggregateOp::DoPush(const Row& row) {
  key_scratch_.resize(key_idx_.size());
  for (size_t i = 0; i < key_idx_.size(); ++i) key_scratch_[i] = row[key_idx_[i]];
  // The group table is working state like DistinctOp's memo, not a
  // delivery-ordering buffer: it stays out of peak_buffered_rows().
  auto [it, added] = index_.try_emplace(key_scratch_, groups_.size());
  if (added) groups_.push_back({key_scratch_, std::vector<Accum>(aggs_.size())});
  Group& g = groups_[it->second];
  for (size_t i = 0; i < aggs_.size(); ++i) Accumulate(aggs_[i], &g.accums[i], row);
  return EmitResult::kContinue;  // grouping absorbs demand: no pushdown past here
}

util::Status GroupAggregateOp::DoFinish() {
  if (groups_.empty() && implicit_group_) {
    // Aggregates without GROUP BY always produce one group, even over an
    // empty input (COUNT(*) = 0); an explicit GROUP BY over nothing
    // produces nothing.
    groups_.push_back({{}, std::vector<Accum>(aggs_.size())});
  }
  FlushBuffered(groups_, [this](const Group& g) -> const Row& {
    out_scratch_.assign(key_idx_.size() + aggs_.size(), kInvalidId);
    for (size_t i = 0; i < g.key.size(); ++i) out_scratch_[i] = g.key[i];
    for (size_t i = 0; i < aggs_.size(); ++i)
      out_scratch_[key_idx_.size() + i] = Result(aggs_[i], g.accums[i]);
    return out_scratch_;
  });
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// OrderByOp / TopKOp
// ---------------------------------------------------------------------------

util::Status OrderByOp::DoFinish() {
  std::sort(rows_.begin(), rows_.end(), [this](const Keyed& a, const Keyed& b) {
    return keys_.Less(a.row, a.seq, b.row, b.seq);  // seq tiebreak => stable
  });
  FlushBuffered(rows_, [](const Keyed& k) -> const Row& { return k.row; });
  return util::Status::Ok();
}

EmitResult TopKOp::DoPush(const Row& row) {
  ++seq_;
  if (cap_ == 0) return EmitResult::kContinue;
  auto less = [this](const Keyed& a, const Keyed& b) { return KeyedLess(a, b); };
  if (heap_.size() < cap_) {
    heap_.push_back({row, seq_});
    std::push_heap(heap_.begin(), heap_.end(), less);
    state()->NoteBuffered(heap_.size());
    return EmitResult::kContinue;
  }
  // Compare before copying: at steady state most rows lose to the heap
  // maximum, and rejecting them must not cost a Row allocation.
  const Keyed& worst = heap_.front();
  if (keys_.Less(row, seq_, worst.row, worst.seq)) {
    std::pop_heap(heap_.begin(), heap_.end(), less);
    heap_.back() = Keyed{row, seq_};
    std::push_heap(heap_.begin(), heap_.end(), less);
  }
  return EmitResult::kContinue;
}

util::Status TopKOp::DoFinish() {
  std::sort_heap(heap_.begin(), heap_.end(),
                 [this](const Keyed& a, const Keyed& b) { return KeyedLess(a, b); });
  FlushBuffered(heap_, [](const Keyed& k) -> const Row& { return k.row; });
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

namespace {

void AppendChain(const RowOp* op, int depth, const ExplainCounts* counts,
                 std::string* out) {
  for (; op; op = op->next()) {
    uint64_t in = 0, out_rows = 0;
    if (counts) {
      // Snapshot render: never touch the live counters (they belong to a
      // still-running producer thread); an operator missing from the
      // snapshot reads as zero.
      auto it = counts->find(op);
      if (it != counts->end()) {
        in = it->second.first;
        out_rows = it->second.second;
      }
    } else {
      in = op->rows_in();
      out_rows = op->rows_out();
    }
    out->append(static_cast<size_t>(depth) * 2, ' ');
    *out += op->label();
    *out += "  in=" + std::to_string(in) + " out=" + std::to_string(out_rows) + "\n";
    for (const RowOp* child : op->children())
      AppendChain(child, depth + 1, counts, out);
  }
}

}  // namespace

std::string ExplainChain(const RowOp* head, const ExplainCounts* counts) {
  std::string out;
  AppendChain(head, 0, counts, &out);
  return out;
}

}  // namespace turbo::sparql
