#include "sparql/turbo_solver.hpp"

#include <algorithm>
#include <unordered_map>

#include "rdf/vocabulary.hpp"
#include "sparql/filter_eval.hpp"

namespace turbo::sparql {

namespace {

using graph::DataGraph;
using graph::QueryGraph;

/// A deferred variable binding resolved per solution by enumeration.
struct PendingTypeVar {
  uint32_t qv;
  int var;
};
struct PendingElVar {
  uint32_t from_qv;
  uint32_t to_qv;
  int var;
};

bool ContainsRegex(const FilterExpr& e) {
  if (e.op == FilterExpr::Op::kRegex) return true;
  for (const auto& c : e.children)
    if (ContainsRegex(c)) return true;
  return false;
}

/// The BGP compiled to a QueryGraph plus everything row assembly needs to
/// turn embeddings back into rows. Shared between the row path (EvaluateOne)
/// and the COUNT(*) pushdown, which declines whenever the auxiliary
/// structures are non-empty (rows would not map 1:1 to embeddings).
struct CompiledBgp {
  QueryGraph q;
  std::unordered_map<int, uint32_t> var_to_qv;    ///< unbound vertex vars
  std::vector<const TriplePattern*> schema_patterns;
  std::vector<PendingTypeVar> type_vars;
  std::vector<PendingElVar> el_vars;
  bool impossible = false;  ///< some constant is absent: zero solutions
  util::Status error;       ///< variable position conflicts
};

/// Compiles `bgp` under the pre-bound row `bound` (§3.2 / §4.1 query-side
/// transformation; type-aware mode folds rdf:type into labels and diverts
/// rdfs:subClassOf patterns to the schema side table).
CompiledBgp CompileBgp(const DataGraph& g, const rdf::Dictionary& dict,
                       const engine::MatchOptions& options,
                       const std::vector<TriplePattern>& bgp, const VarRegistry& vars,
                       const Row& bound) {
  CompiledBgp c;
  const bool type_aware = g.mode() == graph::TransformMode::kTypeAware;
  auto type_term = dict.Find(rdf::Term::Iri(rdf::vocab::kRdfType));
  auto subclass_term = dict.Find(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf));

  QueryGraph& q = c.q;
  std::unordered_map<TermId, uint32_t> const_qv;  // constant / bound-var vertices
  std::vector<int> predicate_vars;  // for var-position conflict detection

  auto bound_value = [&](const std::string& name) -> TermId {
    auto vi = vars.Find(name);
    if (!vi || static_cast<size_t>(*vi) >= bound.size()) return kInvalidId;
    return bound[*vi];
  };

  auto vertex_for_term = [&](TermId t) -> uint32_t {
    auto it = const_qv.find(t);
    if (it != const_qv.end()) return it->second;
    graph::QueryVertex v;
    auto vid = g.VertexOfTerm(t);
    if (!vid) {
      c.impossible = true;
      v.fixed_id = kInvalidId - 1;  // unmatchable
    } else {
      v.fixed_id = *vid;
    }
    uint32_t qv = q.AddVertex(std::move(v));
    const_qv.emplace(t, qv);
    return qv;
  };

  auto vertex_for = [&](const PatternTerm& pt) -> uint32_t {
    if (pt.is_var()) {
      TermId b = bound_value(pt.var);
      if (b != kInvalidId) return vertex_for_term(b);
      int vi = *vars.Find(pt.var);
      auto it = c.var_to_qv.find(vi);
      if (it != c.var_to_qv.end()) return it->second;
      graph::QueryVertex v;
      v.var = vi;
      uint32_t qv = q.AddVertex(std::move(v));
      c.var_to_qv.emplace(vi, qv);
      return qv;
    }
    auto t = dict.Find(pt.term);
    if (!t) {
      c.impossible = true;
      // Create a placeholder vertex so the graph stays well-formed.
      graph::QueryVertex v;
      v.fixed_id = kInvalidId - 1;
      return q.AddVertex(std::move(v));
    }
    return vertex_for_term(*t);
  };

  for (const TriplePattern& tp : bgp) {
    if (type_aware && subclass_term) {
      bool is_schema = (!tp.p.is_var() && tp.p.term.is_iri() &&
                        tp.p.term.lexical == rdf::vocab::kRdfsSubClassOf) ||
                       (tp.p.is_var() && bound_value(tp.p.var) == *subclass_term);
      if (is_schema) {
        c.schema_patterns.push_back(&tp);
        continue;
      }
    }
    // Type-aware folding of rdf:type patterns (§4.1).
    bool is_type_pattern = type_aware && !tp.p.is_var() &&
                           tp.p.term.is_iri() && tp.p.term.lexical == rdf::vocab::kRdfType;
    if (!is_type_pattern && type_aware && tp.p.is_var()) {
      // A bound predicate variable naming rdf:type also folds.
      TermId b = bound_value(tp.p.var);
      if (type_term && b == *type_term) is_type_pattern = true;
    }
    if (is_type_pattern) {
      uint32_t subj = vertex_for(tp.s);
      TermId obj_term = kInvalidId;
      if (!tp.o.is_var()) {
        auto t = dict.Find(tp.o.term);
        if (!t) {
          c.impossible = true;
          continue;
        }
        obj_term = *t;
      } else {
        obj_term = bound_value(tp.o.var);
      }
      if (obj_term != kInvalidId) {
        auto l = g.LabelOfTerm(obj_term);
        if (!l) {
          c.impossible = true;
          continue;
        }
        q.mutable_vertex(subj).labels.push_back(*l);
      } else {
        // (?x rdf:type ?t): enumerate labels of the match per solution.
        int vi = *vars.Find(tp.o.var);
        c.type_vars.push_back({subj, vi});
        // The subject must carry at least one label.
        graph::VertexConstraint prev = q.vertex(subj).constraint;
        const bool simple = options.simple_entailment;
        q.mutable_vertex(subj).constraint = [prev, simple](const DataGraph& g2, VertexId v) {
          if (prev && !prev(g2, v)) return false;
          return simple ? !g2.simple_labels(v).empty() : !g2.labels(v).empty();
        };
      }
      continue;
    }

    uint32_t from = vertex_for(tp.s);
    uint32_t to = vertex_for(tp.o);
    // Direct transformation keeps rdf:type as an ordinary edge, but its
    // object is a class vertex with huge fan-in; flag it so the start-vertex
    // choice prefers entity anchors (see QueryVertex::hub_hint).
    if (!type_aware && type_term && !tp.p.is_var()) {
      auto pt = dict.Find(tp.p.term);
      if (pt && *pt == *type_term && q.vertex(to).has_fixed_id())
        q.mutable_vertex(to).hub_hint = true;
    }
    graph::QueryEdge e;
    e.from = from;
    e.to = to;
    if (!tp.p.is_var()) {
      auto t = dict.Find(tp.p.term);
      auto el = t ? g.EdgeLabelOfTerm(*t) : std::nullopt;
      if (!el) {
        c.impossible = true;
        continue;
      }
      e.label = *el;
    } else {
      TermId b = bound_value(tp.p.var);
      if (b != kInvalidId) {
        auto el = g.EdgeLabelOfTerm(b);
        if (!el) {
          c.impossible = true;
          continue;
        }
        e.label = *el;
      } else {
        int vi = *vars.Find(tp.p.var);
        e.label = kInvalidId;
        e.label_var = vi;
        c.el_vars.push_back({from, to, vi});
        predicate_vars.push_back(vi);
      }
    }
    q.AddEdge(e);
  }

  // A variable cannot be both a node and a predicate.
  for (int pv : predicate_vars) {
    if (c.var_to_qv.count(pv)) {
      c.error = util::Status::Error("variable ?" + vars.name(pv) +
                                    " used in both node and predicate positions");
      return c;
    }
    for (const auto& tv : c.type_vars)
      if (tv.var == pv) {
        c.error = util::Status::Error("variable ?" + vars.name(pv) +
                                      " used in both type and predicate positions");
        return c;
      }
  }

  for (uint32_t u = 0; u < q.num_vertices(); ++u) {
    auto& ls = q.mutable_vertex(u).labels;
    std::sort(ls.begin(), ls.end());
    ls.erase(std::unique(ls.begin(), ls.end()), ls.end());
  }
  return c;
}

}  // namespace

util::Status TurboBgpSolver::Evaluate(const std::vector<TriplePattern>& bgp,
                                      const VarRegistry& vars, const Row& bound,
                                      const std::vector<const FilterExpr*>& pushable,
                                      const RowSink& emit,
                                      const EvalControl& control) const {
  // In type-aware mode, rdf:type triples are folded into labels and
  // rdfs:subClassOf triples into the schema side table, so an unbound
  // predicate variable would silently miss those rows. For each such
  // variable we additionally evaluate with it pre-bound to rdf:type /
  // rdfs:subClassOf (the bound-variable paths fold them appropriately); the
  // edge path cannot double-count because neither predicate is an edge label
  // in the type-aware graph.
  if (g_.mode() == graph::TransformMode::kTypeAware) {
    std::vector<TermId> interpretations{kInvalidId};  // kInvalidId = edge label
    if (auto t = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfType))) interpretations.push_back(*t);
    if (!g_.SubclassTriples().empty()) {
      if (auto t = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf)))
        interpretations.push_back(*t);
    }
    std::vector<int> pred_vars;
    for (const TriplePattern& tp : bgp) {
      if (!tp.p.is_var()) continue;
      auto vi = vars.Find(tp.p.var);
      if (!vi) continue;
      bool unbound = static_cast<size_t>(*vi) >= bound.size() || bound[*vi] == kInvalidId;
      if (unbound && std::find(pred_vars.begin(), pred_vars.end(), *vi) == pred_vars.end())
        pred_vars.push_back(*vi);
    }
    if (interpretations.size() > 1 && !pred_vars.empty()) {
      if (pred_vars.size() > 8)
        return util::Status::Error("too many variable predicates in one pattern");
      uint64_t combos = 1;
      for (size_t j = 0; j < pred_vars.size(); ++j) combos *= interpretations.size();
      // A sink stop must also stop the remaining interpretation combos, so
      // watch for it on the way through.
      bool stopped = false;
      RowSink watched = [&](const Row& r) {
        EmitResult er = emit(r);
        if (er == EmitResult::kStop) stopped = true;
        return er;
      };
      for (uint64_t mask = 0; mask < combos && !stopped; ++mask) {
        Row b2 = bound;
        b2.resize(vars.size(), kInvalidId);
        uint64_t rest = mask;
        for (size_t j = 0; j < pred_vars.size(); ++j) {
          b2[pred_vars[j]] = interpretations[rest % interpretations.size()];
          rest /= interpretations.size();
        }
        auto st = EvaluateOne(bgp, vars, b2, pushable, watched, control);
        if (!st.ok()) return st;
      }
      return util::Status::Ok();
    }
  }
  return EvaluateOne(bgp, vars, bound, pushable, emit, control);
}

util::Status TurboBgpSolver::EvaluateOne(const std::vector<TriplePattern>& bgp,
                                         const VarRegistry& vars, const Row& bound,
                                         const std::vector<const FilterExpr*>& pushable,
                                         const RowSink& emit,
                                         const EvalControl& control) const {
  CompiledBgp c = CompileBgp(g_, dict_, options_, bgp, vars, bound);
  if (!c.error.ok()) return c.error;
  if (c.impossible) return util::Status::Ok();  // some constant is absent: zero rows

  QueryGraph& q = c.q;
  // Schema (rdfs:subClassOf) patterns join against the side table the
  // type-aware transformation retains; they bind variables to class TERMS,
  // not vertices, and are applied to each solution row after matching.
  auto& schema_patterns = c.schema_patterns;
  auto& var_to_qv = c.var_to_qv;
  auto& type_vars = c.type_vars;
  auto& el_vars = c.el_vars;

  // Push single-variable non-regex filters down as vertex constraints
  // (§5.1: inexpensive filters evaluated on access).
  std::shared_ptr<FilterEvaluator> shared_eval;
  if (!pushable.empty()) shared_eval = std::make_shared<FilterEvaluator>(dict_, vars);
  for (const FilterExpr* f : pushable) {
    if (ContainsRegex(*f)) continue;
    std::vector<std::string> fvars;
    f->CollectVars(&fvars);
    std::sort(fvars.begin(), fvars.end());
    fvars.erase(std::unique(fvars.begin(), fvars.end()), fvars.end());
    if (fvars.size() != 1) continue;
    auto vi = vars.Find(fvars[0]);
    if (!vi) continue;
    auto it = var_to_qv.find(*vi);
    if (it == var_to_qv.end()) continue;
    graph::VertexConstraint prev = q.vertex(it->second).constraint;
    size_t row_size = vars.size();
    int var_idx = *vi;
    q.mutable_vertex(it->second).constraint =
        [prev, shared_eval, f, var_idx, row_size](const DataGraph& g, VertexId v) {
          if (prev && !prev(g, v)) return false;
          thread_local Row tmp;
          tmp.assign(row_size, kInvalidId);
          tmp[var_idx] = g.VertexTerm(v);
          return shared_eval->Test(*f, tmp);
        };
  }

  // ---- Schema join wrapper: extend each solution row with the
  // rdfs:subClassOf side-table bindings. Propagates the sink's stop request
  // back out through the recursion. ----
  std::function<EmitResult(Row&)> emit_schema = [&](Row& row) { return emit(row); };
  if (!schema_patterns.empty()) {
    emit_schema = [&](Row& row) -> EmitResult {
      std::function<EmitResult(size_t)> rec = [&](size_t k) -> EmitResult {
        if (k == schema_patterns.size()) return emit(row);
        const TriplePattern& tp = *schema_patterns[k];
        TermId fs = kInvalidId, fo = kInvalidId;
        int vs = -1, vo = -1;
        auto resolve = [&](const PatternTerm& pt, TermId* fixed, int* var) {
          if (!pt.is_var()) {
            auto t = dict_.Find(pt.term);
            *fixed = t ? *t : kInvalidId;  // kInvalidId matches no term
            return;
          }
          int vi = *vars.Find(pt.var);
          if (row[vi] != kInvalidId)
            *fixed = row[vi];
          else
            *var = vi;
        };
        resolve(tp.s, &fs, &vs);
        resolve(tp.o, &fo, &vo);
        EmitResult result = EmitResult::kContinue;
        for (const auto& [subj, obj] : g_.SubclassTriples()) {
          if (vs < 0 && subj != fs) continue;
          if (vo < 0 && obj != fo) continue;
          if (vs >= 0 && vo >= 0 && vs == vo && subj != obj) continue;
          TermId save_s = vs >= 0 ? row[vs] : 0;
          TermId save_o = vo >= 0 ? row[vo] : 0;
          if (vs >= 0) row[vs] = subj;
          if (vo >= 0) row[vo] = obj;
          result = rec(k + 1);
          if (vs >= 0) row[vs] = save_s;
          if (vo >= 0) row[vo] = save_o;
          if (result == EmitResult::kStop) break;
        }
        return result;
      };
      return rec(0);
    };
  }

  // ---- Match, component by component. ----
  auto comp = q.ComponentIds();
  uint32_t num_comps = q.num_vertices() == 0 ? 0 : *std::max_element(comp.begin(), comp.end()) + 1;
  if (num_comps == 0) {
    // Schema-only BGP: no vertex matching needed.
    Row out = bound;
    out.resize(vars.size(), kInvalidId);
    emit_schema(out);
    return util::Status::Ok();
  }

  // Engine options for this call: the caller's cancel token / deadline ride
  // into the Matcher so even zero-solution enumerations stay cancellable.
  engine::MatchOptions mopts = options_;
  mopts.cancel = control.cancel;
  mopts.deadline = control.deadline;
  mopts.abandon = control.abandon;

  // ---- Row assembly: resolve pending type-variable and predicate-variable
  // bindings, then run the schema join and emit. A kStop propagates back to
  // the Matcher callback, which aborts SubgraphSearch itself. ----
  Row out;
  std::vector<VertexId> m(q.num_vertices(), kInvalidId);
  std::vector<EdgeLabelId> el_scratch;

  std::function<EmitResult(size_t)> expand = [&](size_t k) -> EmitResult {
    if (k == type_vars.size() + el_vars.size()) return emit_schema(out);
    if (k < type_vars.size()) {
      const PendingTypeVar& tv = type_vars[k];
      auto labels = options_.simple_entailment ? g_.simple_labels(m[tv.qv])
                                               : g_.labels(m[tv.qv]);
      TermId already = out[tv.var];
      EmitResult result = EmitResult::kContinue;
      for (LabelId l : labels) {
        TermId t = g_.LabelTerm(l);
        if (already != kInvalidId && already != t) continue;
        out[tv.var] = t;
        result = expand(k + 1);
        if (result == EmitResult::kStop) break;
      }
      out[tv.var] = already;
      return result;
    }
    const PendingElVar& ev = el_vars[k - type_vars.size()];
    g_.EdgeLabelsBetween(m[ev.from_qv], m[ev.to_qv], &el_scratch);
    std::vector<EdgeLabelId> labels = el_scratch;  // recursion reuses scratch
    TermId already = out[ev.var];
    EmitResult result = EmitResult::kContinue;
    for (EdgeLabelId el : labels) {
      TermId t = g_.EdgeLabelTerm(el);
      if (already != kInvalidId && already != t) continue;
      out[ev.var] = t;
      result = expand(k + 1);
      if (result == EmitResult::kStop) break;
    }
    out[ev.var] = already;
    return result;
  };

  auto emit_mapping = [&]() -> EmitResult {
    out = bound;
    out.resize(vars.size(), kInvalidId);
    for (uint32_t u = 0; u < q.num_vertices(); ++u) {
      int vi = q.vertex(u).var;
      if (vi >= 0) out[vi] = g_.VertexTerm(m[u]);
    }
    return expand(0);
  };

  if (num_comps == 1) {
    // Common case: stream solutions straight from the engine — no
    // intermediate materialization (important for the point-shaped queries
    // like LUBM Q6/Q14 whose cost is dominated by result delivery).
    engine::Matcher matcher(g_, mopts, &arena_pool_);
    bool sink_stopped = false;
    engine::MatchStats stats =
        matcher.Match(q, [&](std::span<const VertexId> sol) {
          for (uint32_t u = 0; u < q.num_vertices(); ++u) m[u] = sol[u];
          if (emit_mapping() == EmitResult::kStop) sink_stopped = true;
          return !sink_stopped;
        });
    MergeStats(stats);
    // Surface a cancel/deadline error only when it actually cut the
    // enumeration short — a signal that trips after completion (or after
    // the sink's own kStop) must not retroactively spoil a full answer.
    if (stats.stopped_early && !sink_stopped) return control.Check();
    return util::Status::Ok();
  }

  // Disconnected patterns: match each component separately, then take the
  // cartesian product of the per-component solution sets.
  std::vector<std::vector<engine::Solution>> comp_solutions(num_comps);
  std::vector<std::vector<uint32_t>> comp_qvs(num_comps);
  {
    std::vector<uint32_t> local_idx(q.num_vertices());
    for (uint32_t c = 0; c < num_comps; ++c) {
      QueryGraph sub;
      for (uint32_t u = 0; u < q.num_vertices(); ++u) {
        if (comp[u] != c) continue;
        local_idx[u] = sub.AddVertex(q.vertex(u));
        comp_qvs[c].push_back(u);
      }
      for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
        const graph::QueryEdge& e = q.edge(ei);
        if (comp[e.from] != c) continue;
        graph::QueryEdge le = e;
        le.from = local_idx[e.from];
        le.to = local_idx[e.to];
        sub.AddEdge(le);
      }
      engine::Matcher matcher(g_, mopts, &arena_pool_);
      engine::MatchStats stats;
      comp_solutions[c] = matcher.FindAll(sub, &stats);
      MergeStats(stats);
      // FindAll has no sink, so an early stop here can only mean the
      // cancel/deadline fired mid-enumeration.
      if (stats.stopped_early)
        if (auto st = control.Check(); !st.ok()) return st;
      if (comp_solutions[c].empty()) return util::Status::Ok();
    }
  }

  std::function<EmitResult(uint32_t)> cartesian = [&](uint32_t c) -> EmitResult {
    if (c == num_comps) return emit_mapping();
    for (const engine::Solution& sol : comp_solutions[c]) {
      for (size_t i = 0; i < comp_qvs[c].size(); ++i) m[comp_qvs[c][i]] = sol[i];
      if (cartesian(c + 1) == EmitResult::kStop) return EmitResult::kStop;
    }
    return EmitResult::kContinue;
  };
  cartesian(0);
  return util::Status::Ok();
}

util::Status TurboBgpSolver::CountSolutions(const std::vector<TriplePattern>& bgp,
                                            const VarRegistry& vars, uint64_t* count,
                                            bool* counted,
                                            const EvalControl& control) const {
  *counted = false;
  CompiledBgp c = CompileBgp(g_, dict_, options_, bgp, vars, /*bound=*/{});
  if (!c.error.ok()) return c.error;
  if (c.impossible) {  // some constant is absent: zero solutions, no matching
    *count = 0;
    *counted = true;
    return util::Status::Ok();
  }
  // Count only when every embedding is exactly one row. Pending type- or
  // predicate-variable bindings expand per solution (and an unbound predicate
  // variable additionally triggers the type-aware interpretation expansion in
  // Evaluate); schema patterns join against the side table; a disconnected
  // pattern needs a cartesian product. All of those decline.
  if (!c.type_vars.empty() || !c.el_vars.empty() || !c.schema_patterns.empty())
    return util::Status::Ok();
  auto comp = c.q.ComponentIds();
  uint32_t num_comps =
      c.q.num_vertices() == 0 ? 0 : *std::max_element(comp.begin(), comp.end()) + 1;
  if (num_comps != 1) return util::Status::Ok();

  engine::MatchOptions mopts = options_;
  mopts.cancel = control.cancel;
  mopts.deadline = control.deadline;
  mopts.abandon = control.abandon;
  engine::Matcher matcher(g_, mopts, &arena_pool_);
  engine::MatchStats stats;
  uint64_t n = matcher.Count(c.q, &stats);
  MergeStats(stats);
  if (stats.stopped_early) return control.Check();
  *count = n;
  *counted = true;
  return util::Status::Ok();
}

}  // namespace turbo::sparql
