// FILTER / HAVING expression evaluation with SPARQL-ish semantics: numeric
// comparisons when both sides are numeric (coercion via the shared
// sparql/typed_value helper), lexical comparison for strings, type errors
// collapse to "false" (SPARQL's error semantics for FILTER).
#pragma once

#include <memory>
#include <regex>
#include <string>
#include <unordered_map>

#include "rdf/dictionary.hpp"
#include "sparql/ast.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"

namespace turbo::sparql {

/// Evaluates filter expressions against rows. Thread-compatible (the regex
/// cache is populated lazily; use one evaluator per thread if needed).
/// When `local` is given, row cells above the dictionary resolve through it
/// — the HAVING-over-aggregated-rows configuration.
class FilterEvaluator {
 public:
  FilterEvaluator(const rdf::Dictionary& dict, const VarRegistry& vars,
                  const LocalVocab* local = nullptr)
      : dict_(dict), vars_(vars), local_(local) {}

  /// Effective boolean value of `e` on `row`; errors evaluate to false.
  bool Test(const FilterExpr& e, const Row& row) const;

  /// Evaluates `e` to an RDF term — the BIND configuration. Computed
  /// numbers materialize via the shared typed-value rules, plain strings
  /// become simple literals, booleans become xsd:boolean literals.
  /// nullopt on evaluation error (BIND leaves the variable unbound then).
  std::optional<rdf::Term> EvalTerm(const FilterExpr& e, const Row& row) const;

 private:
  struct Value {
    enum class Kind : uint8_t { kNull, kBool, kNum, kString, kTerm } kind = Kind::kNull;
    bool b = false;
    double num = 0;
    std::string str;           // kString (results of str()/lang()/datatype())
    const rdf::Term* term = nullptr;  // kTerm
    std::optional<double> term_num;   // numeric view of kTerm if any

    static Value Null() { return {}; }
    static Value Bool(bool v) {
      Value x;
      x.kind = Kind::kBool;
      x.b = v;
      return x;
    }
    static Value Num(double v) {
      Value x;
      x.kind = Kind::kNum;
      x.num = v;
      return x;
    }
    static Value Str(std::string s) {
      Value x;
      x.kind = Kind::kString;
      x.str = std::move(s);
      return x;
    }
  };

  Value Eval(const FilterExpr& e, const Row& row) const;
  Value Compare(FilterExpr::Op op, const Value& a, const Value& b) const;
  static bool EffectiveBool(const Value& v);
  static std::optional<double> NumericOf(const Value& v);
  static std::optional<std::string> StringOf(const Value& v);
  const std::regex& CachedRegex(const std::string& pattern, bool icase) const;

  const rdf::Dictionary& dict_;
  const VarRegistry& vars_;
  const LocalVocab* local_ = nullptr;
  mutable std::unordered_map<std::string, std::unique_ptr<std::regex>> regex_cache_;
};

}  // namespace turbo::sparql
