// TurboBgpSolver: compiles a SPARQL basic graph pattern into a QueryGraph
// (the query-side direct / type-aware transformation of §3.2 / §4.1) and
// evaluates it with the TurboHOM++ engine.
//
// Under the type-aware transformation, (?x rdf:type C) patterns fold into
// vertex labels — the paper's key query-shrinking step; (?x rdf:type ?t)
// binds ?t by enumerating the matched vertex's label set; variable
// predicates become blank query edges whose bindings are recovered from the
// adjacency lists (Definition 2's Me).
#pragma once

#include <mutex>

#include "engine/engine.hpp"
#include "graph/data_graph.hpp"
#include "sparql/solver.hpp"

namespace turbo::sparql {

class TurboBgpSolver : public BgpSolver {
 public:
  TurboBgpSolver(const graph::DataGraph& g, const rdf::Dictionary& dict,
                 engine::MatchOptions options = {})
      : g_(g), dict_(dict), options_(options) {}

  util::Status Evaluate(const std::vector<TriplePattern>& bgp, const VarRegistry& vars,
                        const Row& bound, const std::vector<const FilterExpr*>& pushable,
                        const RowSink& emit,
                        const EvalControl& control = {}) const override;

  /// COUNT(*) pushdown: compiles the BGP and counts embeddings with
  /// Matcher::Count — no solution rows are assembled. Declines (leaving
  /// *counted false) whenever rows would not map 1:1 to embeddings: pending
  /// type-/predicate-variable bindings, schema (rdfs:subClassOf) joins, the
  /// variable-predicate interpretation expansion, or a disconnected pattern.
  /// An impossible pattern (absent constant) counts as 0 without matching.
  util::Status CountSolutions(const std::vector<TriplePattern>& bgp,
                              const VarRegistry& vars, uint64_t* count, bool* counted,
                              const EvalControl& control = {}) const override;

  const rdf::Dictionary& dict() const override { return dict_; }
  const graph::DataGraph& data_graph() const { return g_; }
  engine::MatchOptions& mutable_options() { return options_; }
  const engine::MatchOptions& options() const { return options_; }

  /// Cumulative engine statistics across Evaluate calls, as a snapshot —
  /// concurrent cursors over one shared solver merge into the accumulator
  /// under a lock, so returning a reference would hand out a torn read.
  /// (Stats are mutable bookkeeping, so resetting through a const facade
  /// pointer is fine.)
  engine::MatchStats last_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_stats_;
  }
  void ResetStats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = {};
  }

  /// RegionArena pool shared by every Matcher this solver spawns, so
  /// candidate-region memory is reused across Evaluate calls (the executor
  /// re-enters Evaluate once per OPTIONAL input row — exactly the workload
  /// arena reuse targets).
  engine::ArenaPool& arena_pool() const { return arena_pool_; }

 private:
  util::Status EvaluateOne(const std::vector<TriplePattern>& bgp, const VarRegistry& vars,
                           const Row& bound, const std::vector<const FilterExpr*>& pushable,
                           const RowSink& emit, const EvalControl& control) const;

  void MergeStats(const engine::MatchStats& stats) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_.MergeFrom(stats);
  }

  const graph::DataGraph& g_;
  const rdf::Dictionary& dict_;
  engine::MatchOptions options_;
  mutable std::mutex stats_mu_;
  mutable engine::MatchStats last_stats_;  ///< guarded by stats_mu_
  mutable engine::ArenaPool arena_pool_;
};

}  // namespace turbo::sparql
