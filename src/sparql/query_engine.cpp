#include "sparql/query_engine.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "baseline/solvers.hpp"
#include "baseline/triple_index.hpp"
#include "graph/data_graph.hpp"
#include "sparql/filter_eval.hpp"
#include "sparql/parser.hpp"
#include "sparql/turbo_solver.hpp"

namespace turbo::sparql {

namespace {

/// Registers every variable appearing anywhere in the group (recursively).
void CollectGroupVars(const GroupPattern& g, VarRegistry* vars) {
  for (const TriplePattern& t : g.triples) {
    for (const PatternTerm* pt : {&t.s, &t.p, &t.o})
      if (pt->is_var()) vars->GetOrAdd(pt->var);
  }
  for (const FilterExpr& f : g.filters) {
    std::vector<std::string> fv;
    f.CollectVars(&fv);
    for (auto& v : fv) vars->GetOrAdd(v);
  }
  for (const GroupPattern& o : g.optionals) CollectGroupVars(o, vars);
  for (const auto& u : g.unions)
    for (const GroupPattern& b : u) CollectGroupVars(b, vars);
}

/// True if every variable of `f` occurs in a triple pattern of `g` (then the
/// filter can be handed to the solver as a pruning hint).
bool FilterCoveredByBgp(const FilterExpr& f, const GroupPattern& g) {
  std::vector<std::string> fv;
  f.CollectVars(&fv);
  for (const std::string& v : fv) {
    bool found = false;
    for (const TriplePattern& t : g.triples) {
      if ((t.s.is_var() && t.s.var == v) || (t.p.is_var() && t.p.var == v) ||
          (t.o.is_var() && t.o.var == v)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return !fv.empty();
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedQuery: parse + plan once.
// ---------------------------------------------------------------------------

struct PreparedQuery::Impl {
  SelectQuery query;
  VarRegistry vars;
  std::vector<std::string> var_names;  ///< projected names, SELECT order
  std::vector<int> proj;               ///< projected row indices
  std::vector<int> order_idx;          ///< ORDER BY key row indices
  /// Per-group pushable filter sets, keyed by group identity (the AST is
  /// owned by this Impl, so the pointers are stable).
  std::unordered_map<const GroupPattern*, std::vector<const FilterExpr*>> pushable;

  const std::vector<const FilterExpr*>& PushableFor(const GroupPattern& g) const {
    static const std::vector<const FilterExpr*> kNone;
    auto it = pushable.find(&g);
    return it == pushable.end() ? kNone : it->second;
  }

  void PlanGroup(const GroupPattern& g) {
    if (!g.triples.empty()) {
      std::vector<const FilterExpr*> push;
      for (const FilterExpr& f : g.filters)
        if (FilterCoveredByBgp(f, g)) push.push_back(&f);
      if (!push.empty()) pushable.emplace(&g, std::move(push));
    }
    for (const GroupPattern& o : g.optionals) PlanGroup(o);
    for (const auto& u : g.unions)
      for (const GroupPattern& b : u) PlanGroup(b);
  }
};

const SelectQuery& PreparedQuery::query() const { return impl_->query; }
const VarRegistry& PreparedQuery::vars() const { return impl_->vars; }
const std::vector<std::string>& PreparedQuery::var_names() const {
  return impl_->var_names;
}

util::Result<PreparedQuery> PrepareSelect(SelectQuery q) {
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->query = std::move(q);
  const SelectQuery& query = impl->query;

  for (const std::string& v : query.select_vars) impl->vars.GetOrAdd(v);
  CollectGroupVars(query.where, &impl->vars);
  for (const OrderKey& k : query.order_by)
    impl->order_idx.push_back(impl->vars.GetOrAdd(k.var));

  if (query.select_vars.empty()) {
    for (size_t i = 0; i < impl->vars.size(); ++i) {
      impl->var_names.push_back(impl->vars.name(static_cast<int>(i)));
      impl->proj.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& v : query.select_vars) {
      impl->var_names.push_back(v);
      impl->proj.push_back(*impl->vars.Find(v));
    }
  }
  impl->PlanGroup(query.where);

  PreparedQuery prepared;
  prepared.impl_ = std::move(impl);
  return prepared;
}

// ---------------------------------------------------------------------------
// GroupStream: the stop-aware row pipeline over one WHERE group.
// ---------------------------------------------------------------------------

namespace {

/// Streams solutions of a group graph pattern one row at a time: BGP join,
/// then UNION blocks, then OPTIONAL left-joins, then group FILTERs, each as
/// a sink-to-sink operator. Stop requests (EmitResult::kStop) and errors
/// raised downstream unwind the entire operator chain — including the BGP
/// solver's enumeration — instead of completing a stage.
class GroupStream {
 public:
  GroupStream(const BgpSolver& solver, const PreparedQuery::Impl& p,
              const EvalControl& control)
      : solver_(solver), p_(p), control_(control), eval_(solver.dict(), p.vars) {}

  /// Runs the whole WHERE clause for the all-unbound seed row.
  util::Status Run(const RowSink& sink) {
    Row seed(p_.vars.size(), kInvalidId);
    util::Status st = EvalGroup(p_.query.where, seed, sink);
    if (!st.ok()) return st;
    return err_;
  }

 private:
  util::Status EvalGroup(const GroupPattern& g, const Row& input, const RowSink& sink) {
    return Stage(g, 0, input, sink);
  }

  /// Forwards `row` through stage `si` of group `g` into `sink`. Stages:
  /// 0 = BGP, 1..#unions = UNION blocks, then OPTIONAL blocks, then the
  /// group FILTER + delivery stage.
  util::Status Stage(const GroupPattern& g, size_t si, const Row& row,
                     const RowSink& sink) {
    if (stopped_) return util::Status::Ok();
    const size_t nu = g.unions.size();
    const size_t no = g.optionals.size();

    // A sink an upstream producer (solver or sub-group) feeds; routes each
    // produced row into the next stage and converts errors into a stop.
    auto next_stage_sink = [&](size_t next) {
      return [this, &g, next, &sink](const Row& out) -> EmitResult {
        util::Status inner = Stage(g, next, out, sink);
        if (!inner.ok()) {
          err_ = inner;
          stopped_ = true;
        }
        return stopped_ ? EmitResult::kStop : EmitResult::kContinue;
      };
    };

    if (si == 0) {
      // 1. Basic graph pattern join (under the pre-bound row).
      if (g.triples.empty()) return Stage(g, 1, row, sink);
      util::Status st = solver_.Evaluate(g.triples, p_.vars, row, p_.PushableFor(g),
                                         next_stage_sink(1), control_);
      if (!st.ok()) return st;
      return err_;
    }

    if (si <= nu) {
      // 2. UNION blocks: this row extends through every branch in turn
      // (concatenated, duplicates preserved).
      for (const GroupPattern& b : g.unions[si - 1]) {
        util::Status st = EvalGroup(b, row, next_stage_sink(si + 1));
        if (!st.ok()) return st;
        if (stopped_) break;
      }
      return err_;
    }

    if (si <= nu + no) {
      // 3. OPTIONAL: left-join extension. A failed optional keeps the row
      // with its variables unbound — emitted once (the paper's
      // qualify-and-exclude-duplicate behaviour). When the consumer stops
      // mid-extension the unextended fallback must not fire.
      const GroupPattern& opt = g.optionals[si - 1 - nu];
      bool matched = false;
      auto forward = next_stage_sink(si + 1);
      util::Status st = EvalGroup(opt, row, [&](const Row& out) -> EmitResult {
        matched = true;
        return forward(out);
      });
      if (!st.ok()) return st;
      if (!err_.ok()) return err_;
      if (!matched && !stopped_) return Stage(g, si + 1, row, sink);
      return util::Status::Ok();
    }

    // 4. Group FILTERs scope over the whole group; then deliver.
    for (const FilterExpr& f : g.filters)
      if (!eval_.Test(f, row)) return util::Status::Ok();
    if (sink(row) == EmitResult::kStop) stopped_ = true;
    return util::Status::Ok();
  }

  const BgpSolver& solver_;
  const PreparedQuery::Impl& p_;
  const EvalControl& control_;
  FilterEvaluator eval_;
  bool stopped_ = false;
  util::Status err_;  ///< first error raised inside a sink
};

/// Three-way term comparison for ORDER BY (numeric when both sides are
/// numeric, else lexical; unbound sorts first).
int CompareTerms(const rdf::Dictionary& dict, TermId a, TermId b) {
  if (a == b) return 0;
  if (a == kInvalidId) return -1;
  if (b == kInvalidId) return 1;
  auto na = dict.NumericValue(a), nb = dict.NumericValue(b);
  if (na && nb && *na != *nb) return *na < *nb ? -1 : 1;
  int c = dict.term(a).lexical.compare(dict.term(b).lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// Cursor: budgeted execution + modifier pushdown over the pipeline.
// ---------------------------------------------------------------------------

struct Cursor::State {
  const BgpSolver* solver = nullptr;
  std::shared_ptr<const PreparedQuery::Impl> prepared;
  ExecOptions opts;
  util::Status status;
  std::vector<Row> rows;  ///< projected rows that passed every modifier
  size_t pos = 0;
  bool ran = false;
  uint64_t before_modifiers = 0;
  uint64_t peak_buffered = 0;  ///< high-water mark of rows held at once

  void Run();
};

void Cursor::State::Run() {
  ran = true;
  const PreparedQuery::Impl& p = *prepared;
  const SelectQuery& q = p.query;

  EvalControl control;
  control.cancel = opts.cancel_token;
  control.deadline = opts.deadline;
  if (auto st = control.Check(); !st.ok()) {
    status = st;
    return;
  }

  // Delivered-row cap: the query's own LIMIT and the caller's budget.
  uint64_t limit = opts.limit_budget;
  if (q.limit >= 0) limit = std::min(limit, static_cast<uint64_t>(q.limit));
  if (limit == 0) return;  // nothing to deliver: skip enumeration entirely

  GroupStream stream(*solver, p, control);

  // The per-row guard shared by both paths: work budget + periodic
  // cancellation probe (the solvers check too, but rows can also be born in
  // executor stages like OPTIONAL fallbacks).
  auto guard = [&](uint64_t n) -> bool {
    if (n > opts.row_budget) {
      status = util::Status::Error("row budget exceeded");
      return false;
    }
    if ((n & 0x3F) == 0) {
      if (auto st = control.Check(); !st.ok()) {
        status = st;
        return false;
      }
    }
    return true;
  };

  if (q.order_by.empty()) {
    // Fully streaming: project -> DISTINCT -> OFFSET -> LIMIT, stopping the
    // enumeration the moment the last deliverable row arrives.
    std::set<std::vector<TermId>> seen;
    uint64_t skipped = 0;
    uint64_t delivered = 0;
    Row projected;
    util::Status st = stream.Run([&](const Row& full) -> EmitResult {
      if (!guard(++before_modifiers)) return EmitResult::kStop;
      projected.assign(p.proj.size(), kInvalidId);
      for (size_t i = 0; i < p.proj.size(); ++i) projected[i] = full[p.proj[i]];
      if (q.distinct && !seen.insert(projected).second) return EmitResult::kContinue;
      if (skipped < static_cast<uint64_t>(q.offset)) {
        ++skipped;
        return EmitResult::kContinue;
      }
      rows.push_back(projected);
      return ++delivered >= limit ? EmitResult::kStop : EmitResult::kContinue;
    });
    if (!st.ok() && status.ok()) status = st;
    peak_buffered = std::max(peak_buffered, static_cast<uint64_t>(rows.size()));
    return;
  }

  // ORDER BY: the pipeline breaker — buffer full-width rows (keys may be
  // non-projected), sort at end-of-stream, then apply the modifiers. With a
  // LIMIT and no DISTINCT the buffer is a bounded top-k heap instead of the
  // whole solution bag: enumeration still runs to completion (the sort is
  // post-hoc, so no work is skipped — MatchStats/rows_before_modifiers see
  // the full count), but memory stays O(offset + limit). DISTINCT keeps the
  // full buffer: heap eviction could drop rows that deduplication downstream
  // would have needed.
  //
  // An arrival sequence number is the final comparison key, which makes the
  // heap's selection and the sort order exactly equal to stable_sort over
  // the full bag — the two paths are row-for-row identical.
  struct Keyed {
    Row row;
    uint64_t seq;
  };
  const rdf::Dictionary& dict = solver->dict();
  auto row_less = [&](const Row& x, uint64_t xseq, const Row& y, uint64_t yseq) {
    for (size_t i = 0; i < p.order_idx.size(); ++i) {
      int c = CompareTerms(dict, x[p.order_idx[i]], y[p.order_idx[i]]);
      if (c != 0) return q.order_by[i].ascending ? c < 0 : c > 0;
    }
    return xseq < yseq;
  };
  auto keyed_less = [&](const Keyed& x, const Keyed& y) {
    return row_less(x.row, x.seq, y.row, y.seq);
  };

  const bool bounded = limit != kNoBudget && !q.distinct;
  const uint64_t cap = bounded ? limit + static_cast<uint64_t>(q.offset) : 0;
  std::vector<Keyed> full_rows;  ///< max-heap of the cap best when bounded
  util::Status st = stream.Run([&](const Row& full) -> EmitResult {
    if (!guard(++before_modifiers)) return EmitResult::kStop;
    if (!bounded) {
      full_rows.push_back({full, before_modifiers});
      return EmitResult::kContinue;
    }
    if (full_rows.size() < cap) {
      full_rows.push_back({full, before_modifiers});
      std::push_heap(full_rows.begin(), full_rows.end(), keyed_less);
      return EmitResult::kContinue;
    }
    // Compare before copying: at steady state most rows lose to the heap
    // maximum, and rejecting them must not cost a Row allocation.
    const Keyed& worst = full_rows.front();
    if (row_less(full, before_modifiers, worst.row, worst.seq)) {
      std::pop_heap(full_rows.begin(), full_rows.end(), keyed_less);
      full_rows.back() = Keyed{full, before_modifiers};
      std::push_heap(full_rows.begin(), full_rows.end(), keyed_less);
    }
    return EmitResult::kContinue;
  });
  if (!st.ok() && status.ok()) status = st;
  peak_buffered = std::max(peak_buffered, static_cast<uint64_t>(full_rows.size()));
  if (!status.ok()) return;

  if (bounded) {
    std::sort_heap(full_rows.begin(), full_rows.end(), keyed_less);
  } else {
    std::sort(full_rows.begin(), full_rows.end(), keyed_less);  // seq => stable
  }

  std::set<std::vector<TermId>> seen;
  uint64_t skipped = 0;
  for (const Keyed& keyed : full_rows) {
    const Row& full = keyed.row;
    Row projected(p.proj.size(), kInvalidId);
    for (size_t i = 0; i < p.proj.size(); ++i) projected[i] = full[p.proj[i]];
    if (q.distinct && !seen.insert(projected).second) continue;
    if (skipped < static_cast<uint64_t>(q.offset)) {
      ++skipped;
      continue;
    }
    rows.push_back(std::move(projected));
    if (rows.size() >= limit) break;
  }
}

bool Cursor::Next(Row* row) {
  if (!state_) return false;
  if (!state_->ran) state_->Run();
  if (state_->pos >= state_->rows.size()) return false;
  // The read position only advances, so hand the buffered row over instead
  // of copying it — delivery-bound queries pay one allocation per row less.
  *row = std::move(state_->rows[state_->pos++]);
  return true;
}

const util::Status& Cursor::status() const {
  static const util::Status kOk;
  return state_ ? state_->status : kOk;
}

const std::vector<std::string>& Cursor::var_names() const {
  static const std::vector<std::string> kEmpty;
  return state_ && state_->prepared ? state_->prepared->var_names : kEmpty;
}

uint64_t Cursor::rows_before_modifiers() const {
  return state_ ? state_->before_modifiers : 0;
}

uint64_t Cursor::peak_buffered_rows() const {
  return state_ ? state_->peak_buffered : 0;
}

Cursor OpenCursor(const BgpSolver& solver, const PreparedQuery& prepared,
                  const ExecOptions& opts) {
  Cursor cursor;
  cursor.state_ = std::make_shared<Cursor::State>();
  cursor.state_->solver = &solver;
  cursor.state_->prepared = prepared.impl_;
  cursor.state_->opts = opts;
  return cursor;
}

// ---------------------------------------------------------------------------
// QueryEngine: dataset + solver ownership.
// ---------------------------------------------------------------------------

struct QueryEngine::Owned {
  rdf::Dataset dataset;
  std::unique_ptr<graph::DataGraph> graph;
  std::unique_ptr<baseline::TripleIndex> index;
  std::unique_ptr<BgpSolver> solver;
};

QueryEngine::QueryEngine(rdf::Dataset dataset)
    : QueryEngine(std::move(dataset), Config{}) {}

QueryEngine::QueryEngine(rdf::Dataset dataset, Config config)
    : owned_(std::make_unique<Owned>()) {
  owned_->dataset = std::move(dataset);
  const rdf::Dataset& ds = owned_->dataset;
  switch (config.solver) {
    case SolverKind::kTurbo:
    case SolverKind::kTurboDirect: {
      auto mode = config.solver == SolverKind::kTurbo
                      ? graph::TransformMode::kTypeAware
                      : graph::TransformMode::kDirect;
      owned_->graph =
          std::make_unique<graph::DataGraph>(graph::DataGraph::Build(ds, mode));
      owned_->solver = std::make_unique<TurboBgpSolver>(*owned_->graph, ds.dict(),
                                                        config.engine_options);
      break;
    }
    case SolverKind::kSortMerge:
    case SolverKind::kIndexJoin: {
      owned_->index = std::make_unique<baseline::TripleIndex>(ds);
      if (config.solver == SolverKind::kSortMerge)
        owned_->solver =
            std::make_unique<baseline::SortMergeBgpSolver>(*owned_->index, ds.dict());
      else
        owned_->solver =
            std::make_unique<baseline::IndexJoinBgpSolver>(*owned_->index, ds.dict());
      break;
    }
  }
  solver_ = owned_->solver.get();
}

QueryEngine::QueryEngine(const BgpSolver* solver) : solver_(solver) {}

QueryEngine::~QueryEngine() = default;

util::Result<PreparedQuery> QueryEngine::Prepare(const std::string& text) const {
  auto q = ParseQuery(text);
  if (!q.ok()) return q.status();
  return PrepareSelect(q.take());
}

util::Result<Cursor> QueryEngine::Open(const PreparedQuery& prepared,
                                       ExecOptions opts) const {
  if (!prepared.impl_) return util::Status::Error("query was not prepared");
  return OpenCursor(*solver_, prepared, opts);
}

util::Result<Cursor> QueryEngine::Open(const std::string& text, ExecOptions opts) const {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return Open(prepared.value(), opts);
}

std::string FormatRow(const std::vector<std::string>& var_names, const Row& row,
                      const rdf::Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < var_names.size(); ++i) {
    if (i) out += "  ";
    out += "?" + var_names[i] + "=";
    TermId t = row[i];
    out += t == kInvalidId ? "UNBOUND" : dict.term(t).ToNTriples();
  }
  return out;
}

const rdf::Dataset* QueryEngine::dataset() const {
  return owned_ ? &owned_->dataset : nullptr;
}

const TurboBgpSolver* QueryEngine::turbo_solver() const {
  return dynamic_cast<const TurboBgpSolver*>(solver_);
}

}  // namespace turbo::sparql
