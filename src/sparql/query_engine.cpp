#include "sparql/query_engine.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "baseline/solvers.hpp"
#include "baseline/triple_index.hpp"
#include "graph/data_graph.hpp"
#include "sparql/filter_eval.hpp"
#include "sparql/operators.hpp"
#include "sparql/parser.hpp"
#include "sparql/turbo_solver.hpp"
#include "sparql/typed_value.hpp"

namespace turbo::sparql {

namespace {

/// Registers every variable appearing anywhere in the group (recursively).
void CollectGroupVars(const GroupPattern& g, VarRegistry* vars) {
  for (const TriplePattern& t : g.triples) {
    for (const PatternTerm* pt : {&t.s, &t.p, &t.o})
      if (pt->is_var()) vars->GetOrAdd(pt->var);
  }
  for (const FilterExpr& f : g.filters) {
    std::vector<std::string> fv;
    f.CollectVars(&fv);
    for (auto& v : fv) vars->GetOrAdd(v);
  }
  for (const ValuesClause& v : g.values)
    for (const std::string& name : v.vars) vars->GetOrAdd(name);
  for (const BindClause& b : g.binds) {
    std::vector<std::string> bv;
    b.expr.CollectVars(&bv);
    for (auto& v : bv) vars->GetOrAdd(v);
    vars->GetOrAdd(b.var);
  }
  for (const GroupPattern& o : g.optionals) CollectGroupVars(o, vars);
  for (const auto& u : g.unions)
    for (const GroupPattern& b : u) CollectGroupVars(b, vars);
}

/// True if the group tree computes terms at runtime (VALUES constants that
/// may be absent from the dictionary, BIND results) — the executions that
/// need a LocalVocab even without aggregation.
bool GroupComputes(const GroupPattern& g) {
  if (!g.values.empty() || !g.binds.empty()) return true;
  for (const GroupPattern& o : g.optionals)
    if (GroupComputes(o)) return true;
  for (const auto& u : g.unions)
    for (const GroupPattern& b : u)
      if (GroupComputes(b)) return true;
  return false;
}

/// True if any FILTER anywhere in the group tree contains an aggregate call
/// (aggregates are only legal in SELECT and HAVING).
bool GroupHasAggregateFilter(const GroupPattern& g) {
  for (const FilterExpr& f : g.filters)
    if (f.ContainsAggregate()) return true;
  for (const BindClause& b : g.binds)
    if (b.expr.ContainsAggregate()) return true;
  for (const GroupPattern& o : g.optionals)
    if (GroupHasAggregateFilter(o)) return true;
  for (const auto& u : g.unions)
    for (const GroupPattern& b : u)
      if (GroupHasAggregateFilter(b)) return true;
  return false;
}

/// True if every variable of `f` occurs in a triple pattern of `g` (then the
/// filter can be handed to the solver as a pruning hint).
bool FilterCoveredByBgp(const FilterExpr& f, const GroupPattern& g) {
  std::vector<std::string> fv;
  f.CollectVars(&fv);
  for (const std::string& v : fv) {
    bool found = false;
    for (const TriplePattern& t : g.triples) {
      if ((t.s.is_var() && t.s.var == v) || (t.p.is_var() && t.p.var == v) ||
          (t.o.is_var() && t.o.var == v)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return !fv.empty();
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedQuery: parse + plan once.
// ---------------------------------------------------------------------------

struct PreparedQuery::Impl {
  SelectQuery query;
  VarRegistry vars;                    ///< WHERE-scope (pattern) registry
  std::vector<std::string> var_names;  ///< projected names, SELECT order
  std::vector<int> proj;       ///< projected indices (into vars / post_vars)
  std::vector<int> order_idx;  ///< ORDER BY key indices (ditto)

  /// True when the WHERE tree contains VALUES/BIND — executions then need a
  /// LocalVocab for computed terms even without aggregation.
  bool computes = false;

  /// Aggregation plan (empty/unused when !aggregated). The grouped output
  /// schema `post_vars` is [GROUP BY keys..., aggregate columns...]; HAVING
  /// constraints are rewritten over it (aggregate calls become column
  /// references, deduplicated against identical SELECT aggregates).
  bool aggregated = false;
  std::vector<int> group_key_idx;  ///< base-row indices of the GROUP BY keys
  std::vector<AggSpec> agg_specs;  ///< one per grouped output column
  VarRegistry post_vars;
  std::vector<FilterExpr> having;  ///< rewritten: aggregate-free

  /// Per-group pushable filter sets, keyed by group identity (the AST is
  /// owned by this Impl, so the pointers are stable).
  std::unordered_map<const GroupPattern*, std::vector<const FilterExpr*>> pushable;

  const std::vector<const FilterExpr*>& PushableFor(const GroupPattern& g) const {
    static const std::vector<const FilterExpr*> kNone;
    auto it = pushable.find(&g);
    return it == pushable.end() ? kNone : it->second;
  }

  void PlanGroup(const GroupPattern& g) {
    if (!g.triples.empty()) {
      std::vector<const FilterExpr*> push;
      for (const FilterExpr& f : g.filters)
        if (FilterCoveredByBgp(f, g)) push.push_back(&f);
      if (!push.empty()) pushable.emplace(&g, std::move(push));
    }
    for (const GroupPattern& o : g.optionals) PlanGroup(o);
    for (const auto& u : g.unions)
      for (const GroupPattern& b : u) PlanGroup(b);
  }

  /// Adds a grouped output column for `agg` (or reuses an identical one)
  /// and returns its post_vars name. `alias` is empty for HAVING-only
  /// aggregates, which get hidden (unprojectable) column names.
  std::string AddAggColumn(const Aggregate& agg, const std::string& alias) {
    if (alias.empty()) {
      for (size_t i = 0; i < agg_specs.size(); ++i)
        if (agg_specs[i].agg == agg)
          return post_vars.name(static_cast<int>(group_key_idx.size() + i));
    }
    std::string name = alias.empty() ? "#agg" + std::to_string(agg_specs.size()) : alias;
    AggSpec spec;
    spec.agg = agg;
    if (!agg.star) spec.arg_idx = vars.GetOrAdd(agg.var);
    agg_specs.push_back(std::move(spec));
    post_vars.GetOrAdd(name);
    return name;
  }

  /// Rewrites one HAVING expression in place: aggregate calls become
  /// references to grouped output columns; plain variables must already be
  /// visible in the grouped schema (keys or aliases).
  util::Status RewriteHaving(FilterExpr* e) {
    if (e->op == FilterExpr::Op::kAggregate) {
      *e = FilterExpr::MakeVar(AddAggColumn(e->agg, ""));
      return util::Status::Ok();
    }
    if (e->op == FilterExpr::Op::kVar || e->op == FilterExpr::Op::kBound) {
      if (!post_vars.Find(e->var))
        return util::Status::Error("variable ?" + e->var +
                                   " in HAVING is neither grouped nor an aggregate");
    }
    for (FilterExpr& c : e->children)
      if (auto st = RewriteHaving(&c); !st.ok()) return st;
    return util::Status::Ok();
  }
};

const SelectQuery& PreparedQuery::query() const { return impl_->query; }
const VarRegistry& PreparedQuery::vars() const { return impl_->vars; }
const std::vector<std::string>& PreparedQuery::var_names() const {
  return impl_->var_names;
}

util::Result<PreparedQuery> PrepareSelect(SelectQuery q) {
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->query = std::move(q);
  const SelectQuery& query = impl->query;

  if (GroupHasAggregateFilter(query.where))
    return util::Status::Error("aggregates are only allowed in SELECT and HAVING");

  impl->aggregated = query.IsAggregated();
  impl->computes = GroupComputes(query.where);

  if (!impl->aggregated) {
    for (const SelectItem& s : query.select) impl->vars.GetOrAdd(s.name);
    CollectGroupVars(query.where, &impl->vars);
    for (const OrderKey& k : query.order_by)
      impl->order_idx.push_back(impl->vars.GetOrAdd(k.var));

    if (query.select.empty()) {
      for (size_t i = 0; i < impl->vars.size(); ++i) {
        impl->var_names.push_back(impl->vars.name(static_cast<int>(i)));
        impl->proj.push_back(static_cast<int>(i));
      }
    } else {
      for (const SelectItem& s : query.select) {
        impl->var_names.push_back(s.name);
        impl->proj.push_back(*impl->vars.Find(s.name));
      }
    }
    impl->PlanGroup(query.where);
    PreparedQuery prepared;
    prepared.impl_ = std::move(impl);
    return prepared;
  }

  // ---- Aggregation plan. ----
  CollectGroupVars(query.where, &impl->vars);
  if (query.select.empty())
    return util::Status::Error("SELECT * cannot be combined with GROUP BY/aggregates");

  // Grouped schema, part 1: the GROUP BY keys.
  for (const std::string& g : query.group_by) {
    if (impl->post_vars.Find(g))
      return util::Status::Error("duplicate GROUP BY variable ?" + g);
    impl->post_vars.GetOrAdd(g);
    impl->group_key_idx.push_back(impl->vars.GetOrAdd(g));
  }

  // Part 2: aggregate columns, in SELECT order; plain items must be keys.
  for (const SelectItem& s : query.select) {
    if (!s.is_agg) {
      if (std::find(query.group_by.begin(), query.group_by.end(), s.name) ==
          query.group_by.end())
        return util::Status::Error("SELECT variable ?" + s.name +
                                   " must appear in GROUP BY");
      impl->var_names.push_back(s.name);
      impl->proj.push_back(*impl->post_vars.Find(s.name));
      continue;
    }
    if (s.name.empty())
      return util::Status::Error("aggregate in SELECT needs an AS ?alias");
    if (impl->post_vars.Find(s.name))
      return util::Status::Error("duplicate name ?" + s.name + " in SELECT");
    std::string col = impl->AddAggColumn(s.agg, s.name);
    impl->var_names.push_back(s.name);
    impl->proj.push_back(*impl->post_vars.Find(col));
  }

  // Part 3: HAVING rewrite (may add hidden aggregate columns).
  impl->having = query.having;
  for (FilterExpr& h : impl->having)
    if (auto st = impl->RewriteHaving(&h); !st.ok()) return st;

  // ORDER BY keys live in the grouped schema (keys and aliases).
  for (const OrderKey& k : query.order_by) {
    auto idx = impl->post_vars.Find(k.var);
    if (!idx)
      return util::Status::Error("ORDER BY variable ?" + k.var +
                                 " is not visible after grouping");
    impl->order_idx.push_back(*idx);
  }

  impl->PlanGroup(query.where);
  PreparedQuery prepared;
  prepared.impl_ = std::move(impl);
  return prepared;
}

// ---------------------------------------------------------------------------
// Cursor: plans the operator tree per execution and drains its root.
// ---------------------------------------------------------------------------

struct Cursor::State {
  const BgpSolver* solver = nullptr;
  std::shared_ptr<const PreparedQuery::Impl> prepared;
  ExecOptions opts;
  util::Status status;
  StopCause cause = StopCause::kNone;  ///< classification of `status`
  std::vector<Row> rows;  ///< projected rows that passed every modifier
  size_t pos = 0;
  bool ran = false;
  uint64_t before_modifiers = 0;
  uint64_t peak_buffered = 0;  ///< high-water mark of rows held at once
  uint64_t channel_peak = 0;   ///< delivery channel's own high-water mark

  /// The physical operator tree of this execution (kept after the run for
  /// EXPLAIN) and the state it shares.
  Pipeline pipe;
  std::shared_ptr<LocalVocab> local_vocab;  ///< computed terms (aggregates)
  std::unique_ptr<FilterEvaluator> base_eval;  ///< over prepared->vars
  std::unique_ptr<FilterEvaluator> post_eval;  ///< over post_vars + local

  // Streaming delivery (ExecOptions::streaming): the pipeline runs on
  // `producer`, whose ChannelSink root pushes delivered rows into the
  // bounded `channel`; Next() pops at the consumer's pace. `abandoned` is
  // wired into the pipeline's EvalControl (and down into MatchOptions), so
  // setting it unwinds the enumeration like a cancel — teardown stops the
  // search itself, not just the delivery. The plain (non-atomic) members
  // above are written by the producer only before it signals completion and
  // read by the consumer only after joining it, so they need no locking.
  std::unique_ptr<util::Channel<Row>> channel;
  std::thread producer;
  std::atomic<bool> abandoned{false};
  std::atomic<bool> producer_done{false};
  bool stream_ended = false;  ///< consumer-side: status/counters settled

  // Mid-stream EXPLAIN snapshot: the producer publishes a copy of every
  // operator's (rows_in, rows_out) pair — in pipe.ops order — under
  // explain_mu just before each row is handed to the delivery channel.
  // Publishing happens strictly after the operator tree is built, so a
  // consumer that observes a non-empty snapshot under the same mutex may
  // also walk the (by then immutable) tree structure.
  std::mutex explain_mu;
  std::vector<std::pair<uint64_t, uint64_t>> explain_snapshot;

  ~State();
  void Run();             // materialized execution (sink = CollectOp)
  void StartStreaming();  // create the channel, spawn the producer
  void ProducerMain();
  void PublishExplainSnapshot();
  void RunPipeline(bool streaming);
  /// Joins the producer and settles status/cause/counters. A non-Ok
  /// `consumer_status` (the consumer's own cancel/deadline trip) takes
  /// precedence over whatever the producer recorded.
  void Settle(util::Status consumer_status, StopCause consumer_cause);
  RowOp* BuildWhereChain(const GroupPattern& g, RowOp* next);
  std::vector<std::vector<ValuesOp::Binding>> ResolveValues(const ValuesClause& v);
};

Cursor::State::~State() {
  if (producer.joinable()) {
    // Cursor abandoned mid-stream: stop the enumeration, discard whatever
    // is buffered, and join before the pipeline's memory goes away.
    abandoned.store(true, std::memory_order_relaxed);
    channel->CloseConsumer();
    producer.join();
  }
}

/// Resolves a VALUES clause's constants to ids at plan time: dictionary ids
/// where the term is stored, vocab interns otherwise (InternVisible reuses
/// an id the store's overlay already assigned, so inline data joins against
/// update-introduced terms). Terms known nowhere get fresh local ids that
/// match no stored triple — the correct empty join.
std::vector<std::vector<ValuesOp::Binding>> Cursor::State::ResolveValues(
    const ValuesClause& v) {
  const rdf::Dictionary& dict = solver->dict();
  std::vector<std::vector<ValuesOp::Binding>> out;
  out.reserve(v.rows.size());
  for (const auto& row : v.rows) {
    std::vector<ValuesOp::Binding> bindings;
    for (size_t i = 0; i < v.vars.size(); ++i) {
      if (!row[i]) continue;  // UNDEF leaves the variable unconstrained
      int idx = *prepared->vars.Find(v.vars[i]);
      auto id = dict.Find(*row[i]);
      bindings.emplace_back(idx, id ? *id : local_vocab->InternVisible(*row[i]));
    }
    out.push_back(std::move(bindings));
  }
  return out;
}

/// Builds the operator chain evaluating group `g`, emitting into `next`:
/// BgpSource, then VALUES joins, then UNION blocks, then OPTIONAL
/// left-joins, then BIND assignments, then the group FILTERs. Sub-groups
/// recurse, terminating in relays back to their owning operator.
RowOp* Cursor::State::BuildWhereChain(const GroupPattern& g, RowOp* next) {
  const PreparedQuery::Impl& p = *prepared;
  ExecState* st = &pipe.state;
  RowOp* cur = next;
  if (!g.filters.empty()) {
    std::vector<const FilterExpr*> exprs;
    for (const FilterExpr& f : g.filters) exprs.push_back(&f);
    cur = pipe.Make<FilterOp>("Filter", *base_eval, std::move(exprs), cur, st);
  }
  for (auto it = g.binds.rbegin(); it != g.binds.rend(); ++it) {
    int target = *p.vars.Find(it->var);
    cur = pipe.Make<BindOp>(*base_eval, &it->expr, target, local_vocab.get(), cur, st);
  }
  for (auto it = g.optionals.rbegin(); it != g.optionals.rend(); ++it) {
    OptionalOp* opt = pipe.Make<OptionalOp>(cur, st);
    RelayOp* relay = pipe.Make<RelayOp>(
        [opt](const Row& r) { return opt->ForwardBranchRow(r); }, st);
    opt->SetBranch(BuildWhereChain(*it, relay));
    cur = opt;
  }
  for (auto it = g.unions.rbegin(); it != g.unions.rend(); ++it) {
    UnionOp* u = pipe.Make<UnionOp>(it->size(), cur, st);
    for (const GroupPattern& b : *it) {
      RelayOp* relay =
          pipe.Make<RelayOp>([u](const Row& r) { return u->ForwardBranchRow(r); }, st);
      u->AddBranch(BuildWhereChain(b, relay));
    }
    cur = u;
  }
  for (auto it = g.values.rbegin(); it != g.values.rend(); ++it)
    cur = pipe.Make<ValuesOp>(ResolveValues(*it), cur, st);
  if (!g.triples.empty())
    cur = pipe.Make<BgpSource>(*solver, p.vars, g.triples, p.PushableFor(g), cur, st);
  return cur;
}

void Cursor::State::Run() {
  ran = true;
  RunPipeline(/*streaming=*/false);
  const ExecState& st = pipe.state;
  if (!st.error.ok()) {
    status = st.error;
    cause = st.cause;
  }
  before_modifiers = st.before_modifiers;
  peak_buffered = st.peak_buffered;
}

void Cursor::State::StartStreaming() {
  ran = true;
  channel = std::make_unique<util::Channel<Row>>(opts.channel_capacity);
  // Streaming executions intern computed terms on the producer while the
  // consumer resolves already-delivered rows, so the shared vocab must
  // exist before the thread starts (LocalVocab itself synchronizes the
  // concurrent intern/resolve).
  if (opts.vocab)
    local_vocab = opts.vocab;
  else if (prepared->aggregated || prepared->computes)
    local_vocab =
        std::make_shared<LocalVocab>(static_cast<TermId>(solver->dict().size()));
  producer = std::thread([this] { ProducerMain(); });
}

void Cursor::State::PublishExplainSnapshot() {
  std::lock_guard<std::mutex> lock(explain_mu);
  explain_snapshot.resize(pipe.ops.size());
  for (size_t i = 0; i < pipe.ops.size(); ++i)
    explain_snapshot[i] = {pipe.ops[i]->rows_in(), pipe.ops[i]->rows_out()};
}

void Cursor::State::ProducerMain() {
  // The library reports failures through Status, but a producer thread must
  // not let anything escape — an exception here would terminate the
  // process. It becomes a kProducerFailed status with the original message.
  try {
    RunPipeline(/*streaming=*/true);
  } catch (const std::exception& e) {
    pipe.state.Fail(util::Status::Error(std::string("producer failed: ") + e.what()),
                    StopCause::kProducerFailed);
  } catch (...) {
    pipe.state.Fail(util::Status::Error("producer failed: unknown exception"),
                    StopCause::kProducerFailed);
  }
  producer_done.store(true, std::memory_order_release);
  channel->CloseProducer();
}

void Cursor::State::Settle(util::Status consumer_status, StopCause consumer_cause) {
  if (stream_ended) return;
  // Stop a still-running producer (it sees the abandon flag or the closed
  // channel) and join; after the join the pipeline's members are plainly
  // readable from this thread. On the normal end-of-stream path the
  // producer has already finished, so the abandon store is a no-op.
  abandoned.store(true, std::memory_order_relaxed);
  channel->CloseConsumer();
  if (producer.joinable()) producer.join();
  if (!consumer_status.ok()) {
    status = std::move(consumer_status);
    cause = consumer_cause;
  } else if (!pipe.state.error.ok()) {
    status = pipe.state.error;
    cause = pipe.state.cause;
  }
  before_modifiers = pipe.state.before_modifiers;
  channel_peak = channel->peak_size();
  peak_buffered = pipe.state.peak_buffered + channel_peak;
  stream_ended = true;
}

void Cursor::State::RunPipeline(bool streaming) {
  const PreparedQuery::Impl& p = *prepared;
  const SelectQuery& q = p.query;
  const rdf::Dictionary& dict = solver->dict();
  ExecState* st = &pipe.state;

  st->control.cancel = opts.cancel_token;
  st->control.deadline = opts.deadline;
  if (streaming) st->control.abandon = &abandoned;
  if (auto s = st->control.Check(); !s.ok()) {
    st->Fail(std::move(s), CauseOf(st->control, StopCause::kProducerFailed));
    return;
  }

  // Delivered-row cap: the query's own LIMIT and the caller's budget.
  uint64_t limit = opts.limit_budget;
  if (q.limit >= 0) limit = std::min(limit, static_cast<uint64_t>(q.limit));
  if (limit == 0) return;  // nothing to deliver: skip enumeration entirely

  // Streaming pre-creates the vocab before the producer thread starts; a
  // live-store cursor brings its own (chained to the shared term overlay).
  if (!local_vocab) {
    if (opts.vocab)
      local_vocab = opts.vocab;
    else if (p.aggregated || p.computes)
      local_vocab = std::make_shared<LocalVocab>(static_cast<TermId>(dict.size()));
  }
  base_eval = std::make_unique<FilterEvaluator>(dict, p.vars, local_vocab.get());
  if (p.aggregated)
    post_eval =
        std::make_unique<FilterEvaluator>(dict, p.post_vars, local_vocab.get());

  // ---- Build the modifier chain, back to front. ----
  RowOp* cur =
      streaming
          ? static_cast<RowOp*>(pipe.Make<ChannelSink>(
                channel.get(), [this] { PublishExplainSnapshot(); }, st))
          : static_cast<RowOp*>(pipe.Make<CollectOp>(&rows, st));
  cur = pipe.Make<SliceOp>(static_cast<uint64_t>(q.offset), limit, cur, st);

  if (!q.order_by.empty()) {
    SortKeys keys;
    keys.dict = &dict;
    keys.local = local_vocab.get();
    for (size_t i = 0; i < p.order_idx.size(); ++i) {
      keys.idx.push_back(p.order_idx[i]);
      keys.ascending.push_back(q.order_by[i].ascending);
    }
    const bool bounded = limit != kNoBudget;
    const uint64_t cap = bounded ? limit + static_cast<uint64_t>(q.offset) : 0;
    auto make_sort = [&](SortKeys k, RowOp* n) -> RowOp* {
      if (bounded) return pipe.Make<TopKOp>(std::move(k), cap, n, st);
      return pipe.Make<OrderByOp>(std::move(k), n, st);
    };

    if (!q.distinct) {
      // Sort full-width rows (keys may be non-projected), then project.
      cur = pipe.Make<ProjectOp>(p.proj, cur, st);
      cur = make_sort(std::move(keys), cur);
    } else {
      // DISTINCT + ORDER BY. When every sort key is projected, the key of a
      // projected row no longer depends on which full-width representative
      // survives, so deduplication commutes with the (seq-stable) sort:
      // Project -> Distinct -> TopK keeps the bounded heap that PR 4 had to
      // forgo. Keys outside the projection fall back to the full sort.
      SortKeys proj_keys = keys;
      bool keys_projected = true;
      for (size_t i = 0; i < keys.idx.size() && keys_projected; ++i) {
        auto at = std::find(p.proj.begin(), p.proj.end(), keys.idx[i]);
        if (at == p.proj.end())
          keys_projected = false;
        else
          proj_keys.idx[i] = static_cast<int>(at - p.proj.begin());
      }
      if (keys_projected) {
        cur = make_sort(std::move(proj_keys), cur);
        cur = pipe.Make<DistinctOp>(cur, st);
        cur = pipe.Make<ProjectOp>(p.proj, cur, st);
      } else {
        // Heap eviction could drop rows the downstream dedup needed, so
        // this combination keeps the full sort.
        cur = pipe.Make<DistinctOp>(cur, st);
        cur = pipe.Make<ProjectOp>(p.proj, cur, st);
        cur = pipe.Make<OrderByOp>(std::move(keys), cur, st);
      }
    }
  } else {
    if (q.distinct) cur = pipe.Make<DistinctOp>(cur, st);
    cur = pipe.Make<ProjectOp>(p.proj, cur, st);
  }

  if (p.aggregated) {
    if (!p.having.empty()) {
      std::vector<const FilterExpr*> exprs;
      for (const FilterExpr& h : p.having) exprs.push_back(&h);
      cur = pipe.Make<FilterOp>("Having", *post_eval, std::move(exprs), cur, st);
    }

    // COUNT(*) pushdown: a bare single-BGP `SELECT (COUNT(*) AS ?n)` can be
    // answered by the solver's embedding counter (BgpSolver::CountSolutions)
    // without assembling, emitting, or grouping a single row. Only an
    // ungrouped, non-DISTINCT COUNT(*) over a pattern with no other clauses
    // qualifies, and only when no row budget is in force (the budget meters
    // pre-modifier rows, which this path never produces). The solver may
    // still decline — then we fall through to the ordinary row pipeline.
    const GroupPattern& w = q.where;
    const bool plain_bgp = !w.triples.empty() && w.filters.empty() &&
                           w.values.empty() && w.binds.empty() &&
                           w.optionals.empty() && w.unions.empty();
    if (plain_bgp && p.group_key_idx.empty() && p.agg_specs.size() == 1 &&
        p.agg_specs[0].agg.func == Aggregate::Func::kCount &&
        p.agg_specs[0].agg.star && !p.agg_specs[0].agg.distinct &&
        opts.row_budget == kNoBudget) {
      uint64_t n = 0;
      bool counted = false;
      util::Status cst =
          solver->CountSolutions(w.triples, p.vars, &n, &counted, st->control);
      if (!cst.ok()) {
        st->Fail(std::move(cst), CauseOf(st->control, StopCause::kProducerFailed));
        return;
      }
      if (counted) {
        // Feed the one synthesized aggregate row (post_vars schema: the
        // COUNT column is index 0 when there is no GROUP BY) to the already
        // built Having → modifier → sink chain.
        Row agg(p.post_vars.size(), kInvalidId);
        agg[0] = local_vocab->Intern(
            NumericToTerm(Numeric::Int(static_cast<int64_t>(n))));
        pipe.head = cur;
        pipe.head->Push(agg);
        if (st->error.ok()) {
          if (util::Status fst = pipe.head->Finish(); !fst.ok())
            st->Fail(std::move(fst), CauseOf(st->control, StopCause::kProducerFailed));
        }
        return;
      }
    }

    cur = pipe.Make<GroupAggregateOp>(p.group_key_idx, p.agg_specs,
                                      /*implicit_group=*/q.group_by.empty(), dict,
                                      local_vocab.get(), cur, st);
  }

  cur = pipe.Make<GuardOp>(opts.row_budget, cur, st);
  pipe.head = BuildWhereChain(q.where, cur);

  // ---- Drive: one seed row in, Finish flushes the pipeline breakers. ----
  Row seed(p.vars.size(), kInvalidId);
  pipe.head->Push(seed);
  if (st->error.ok()) {
    // Errors suppress the flush: a budget/cancel trip must not deliver a
    // sorted/grouped result computed from a truncated enumeration.
    if (util::Status fst = pipe.head->Finish(); !fst.ok())
      st->Fail(std::move(fst), CauseOf(st->control, StopCause::kProducerFailed));
  }
}

bool Cursor::Next(Row* row) {
  if (!state_) return false;
  State& s = *state_;
  if (!s.ran) {
    if (s.opts.streaming)
      s.StartStreaming();
    else
      s.Run();
  }
  if (s.opts.streaming) {
    if (s.stream_ended) return false;
    // The consumer observes its own cancel/deadline while blocked on an
    // empty channel — the producer may be wedged deep in a pipeline breaker
    // where no row will ever arrive to wake us. Without either abort source
    // the wait is plain and untimed: every event that can end it (a row
    // arriving, the producer closing) notifies the channel's condvar.
    EvalControl consumer;
    consumer.cancel = s.opts.cancel_token;
    consumer.deadline = s.opts.deadline;
    const bool needs_probe = consumer.cancel != nullptr || consumer.has_deadline();
    auto op = needs_probe
                  ? s.channel->Pop(row, [&consumer] {
                      return consumer.cancelled() || consumer.expired();
                    })
                  : s.channel->Pop(row);
    if (op == util::Channel<Row>::Op::kOk) return true;
    if (op == util::Channel<Row>::Op::kAborted)
      s.Settle(consumer.Check(), CauseOf(consumer, StopCause::kCancelled));
    else
      s.Settle(util::Status::Ok(), StopCause::kNone);
    return false;
  }
  if (s.pos >= s.rows.size()) return false;
  // The read position only advances, so hand the buffered row over instead
  // of copying it — delivery-bound queries pay one allocation per row less.
  *row = std::move(s.rows[s.pos++]);
  return true;
}

const util::Status& Cursor::status() const {
  static const util::Status kOk;
  return state_ ? state_->status : kOk;
}

const std::vector<std::string>& Cursor::var_names() const {
  static const std::vector<std::string> kEmpty;
  return state_ && state_->prepared ? state_->prepared->var_names : kEmpty;
}

uint64_t Cursor::rows_before_modifiers() const {
  return state_ ? state_->before_modifiers : 0;
}

uint64_t Cursor::peak_buffered_rows() const {
  return state_ ? state_->peak_buffered : 0;
}

uint64_t Cursor::peak_channel_rows() const {
  return state_ ? state_->channel_peak : 0;
}

StopCause Cursor::stop_cause() const {
  return state_ ? state_->cause : StopCause::kNone;
}

std::shared_ptr<const LocalVocab> Cursor::local_vocab() const {
  return state_ ? state_->local_vocab : nullptr;
}

std::string Cursor::Explain() {
  if (!state_) return "(no query)\n";
  State& s = *state_;
  if (!s.ran) {
    if (s.opts.streaming)
      s.StartStreaming();
    else
      s.Run();
  }
  // A still-running streaming producer is mutating the per-operator counts,
  // so never render the live tree mid-stream. Instead render the snapshot
  // the producer publishes at every delivery boundary: a mutually consistent
  // copy of all counters taken just before a row was handed to the channel.
  // producer_done is a release store after the pipeline's last write, so
  // once observed the live tree is stable even before Settle runs.
  if (s.opts.streaming && !s.producer_done.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s.explain_mu);
    if (s.explain_snapshot.empty())
      return "(streaming execution in progress; no rows delivered yet)\n";
    // A non-empty snapshot was published under explain_mu after the tree
    // was fully built, so walking the structure here is race-free.
    ExplainCounts counts;
    for (size_t i = 0; i < s.pipe.ops.size() && i < s.explain_snapshot.size(); ++i)
      counts[s.pipe.ops[i].get()] = s.explain_snapshot[i];
    return "(streaming snapshot at last delivered row; counts still advancing)\n" +
           ExplainChain(s.pipe.head, &counts);
  }
  if (!s.pipe.head) return "(not executed: empty LIMIT or pre-run stop)\n";
  return ExplainChain(s.pipe.head);
}

Cursor OpenCursor(const BgpSolver& solver, const PreparedQuery& prepared,
                  const ExecOptions& opts) {
  Cursor cursor;
  cursor.state_ = std::make_shared<Cursor::State>();
  cursor.state_->solver = &solver;
  cursor.state_->prepared = prepared.impl_;
  cursor.state_->opts = opts;
  return cursor;
}

// ---------------------------------------------------------------------------
// QueryEngine: dataset + solver ownership.
// ---------------------------------------------------------------------------

struct QueryEngine::Owned {
  rdf::Dataset dataset;
  std::unique_ptr<graph::DataGraph> graph;
  std::unique_ptr<baseline::TripleIndex> index;
  std::unique_ptr<BgpSolver> solver;
};

QueryEngine::QueryEngine(rdf::Dataset dataset)
    : QueryEngine(std::move(dataset), Config{}) {}

QueryEngine::QueryEngine(rdf::Dataset dataset, Config config)
    : QueryEngine(std::move(dataset), std::move(config), nullptr) {}

QueryEngine::QueryEngine(rdf::Dataset dataset, Config config,
                         std::unique_ptr<graph::DataGraph> prebuilt)
    : owned_(std::make_unique<Owned>()) {
  owned_->dataset = std::move(dataset);
  const rdf::Dataset& ds = owned_->dataset;
  switch (config.solver) {
    case SolverKind::kTurbo:
    case SolverKind::kTurboDirect: {
      auto mode = config.solver == SolverKind::kTurbo
                      ? graph::TransformMode::kTypeAware
                      : graph::TransformMode::kDirect;
      if (prebuilt && prebuilt->mode() == mode &&
          prebuilt->storage_mode() == config.storage)
        owned_->graph = std::move(prebuilt);
      else
        owned_->graph = std::make_unique<graph::DataGraph>(
            graph::DataGraph::Build(ds, mode, config.storage));
      owned_->solver = std::make_unique<TurboBgpSolver>(*owned_->graph, ds.dict(),
                                                        config.engine_options);
      break;
    }
    case SolverKind::kSortMerge:
    case SolverKind::kIndexJoin: {
      owned_->index = std::make_unique<baseline::TripleIndex>(ds);
      if (config.solver == SolverKind::kSortMerge)
        owned_->solver =
            std::make_unique<baseline::SortMergeBgpSolver>(*owned_->index, ds.dict());
      else
        owned_->solver =
            std::make_unique<baseline::IndexJoinBgpSolver>(*owned_->index, ds.dict());
      break;
    }
  }
  solver_ = owned_->solver.get();
}

QueryEngine::QueryEngine(const BgpSolver* solver) : solver_(solver) {}

QueryEngine::~QueryEngine() = default;

util::Result<PreparedQuery> QueryEngine::Prepare(const std::string& text) const {
  auto q = ParseQuery(text);
  if (!q.ok()) return q.status();
  return PrepareSelect(q.take());
}

util::Result<Cursor> QueryEngine::Open(const PreparedQuery& prepared,
                                       ExecOptions opts) const {
  if (!prepared.impl_) return util::Status::Error("query was not prepared");
  return OpenCursor(*solver_, prepared, opts);
}

util::Result<Cursor> QueryEngine::Open(const std::string& text, ExecOptions opts) const {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return Open(prepared.value(), opts);
}

std::string FormatRow(const std::vector<std::string>& var_names, const Row& row,
                      const rdf::Dictionary& dict, const LocalVocab* local) {
  std::string out;
  for (size_t i = 0; i < var_names.size(); ++i) {
    if (i) out += "  ";
    out += "?" + var_names[i] + "=";
    const rdf::Term* t = ResolveTerm(dict, local, row[i]);
    out += t ? t->ToNTriples() : "UNBOUND";
  }
  return out;
}

const rdf::Dataset* QueryEngine::dataset() const {
  return owned_ ? &owned_->dataset : nullptr;
}

const TurboBgpSolver* QueryEngine::turbo_solver() const {
  return dynamic_cast<const TurboBgpSolver*>(solver_);
}

const graph::DataGraph* QueryEngine::data_graph() const {
  return owned_ ? owned_->graph.get() : nullptr;
}

}  // namespace turbo::sparql
