#include "sparql/filter_eval.hpp"

#include "sparql/typed_value.hpp"

namespace turbo::sparql {

bool FilterEvaluator::Test(const FilterExpr& e, const Row& row) const {
  return EffectiveBool(Eval(e, row));
}

std::optional<rdf::Term> FilterEvaluator::EvalTerm(const FilterExpr& e,
                                                   const Row& row) const {
  Value v = Eval(e, row);
  switch (v.kind) {
    case Value::Kind::kTerm:
      return *v.term;
    case Value::Kind::kNum: {
      // Integral doubles render as xsd:integer so BIND(?a + 1 AS ?b) joins
      // and compares like stored integers.
      double d = v.num;
      if (d == static_cast<double>(static_cast<int64_t>(d)))
        return NumericToTerm(Numeric::Int(static_cast<int64_t>(d)));
      return NumericToTerm(Numeric::Dbl(d));
    }
    case Value::Kind::kString:
      return rdf::Term::Literal(v.str);
    case Value::Kind::kBool:
      return rdf::Term::TypedLiteral(v.b ? "true" : "false",
                                     "http://www.w3.org/2001/XMLSchema#boolean");
    case Value::Kind::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

bool FilterEvaluator::EffectiveBool(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNull:
      return false;
    case Value::Kind::kBool:
      return v.b;
    case Value::Kind::kNum:
      return v.num != 0;
    case Value::Kind::kString:
      return !v.str.empty();
    case Value::Kind::kTerm: {
      const rdf::Term& t = *v.term;
      if (!t.is_literal()) return false;  // EBV of IRI/blank is an error
      if (t.datatype == "http://www.w3.org/2001/XMLSchema#boolean")
        return t.lexical == "true" || t.lexical == "1";
      if (v.term_num) return *v.term_num != 0;
      return !t.lexical.empty();
    }
  }
  return false;
}

std::optional<double> FilterEvaluator::NumericOf(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNum:
      return v.num;
    case Value::Kind::kTerm:
      return v.term_num;
    case Value::Kind::kBool:
      return v.b ? 1.0 : 0.0;
    default:
      return std::nullopt;
  }
}

std::optional<std::string> FilterEvaluator::StringOf(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kString:
      return v.str;
    case Value::Kind::kTerm:
      return v.term->lexical;
    default:
      return std::nullopt;
  }
}

const std::regex& FilterEvaluator::CachedRegex(const std::string& pattern, bool icase) const {
  std::string key = (icase ? "i|" : "s|") + pattern;
  auto it = regex_cache_.find(key);
  if (it == regex_cache_.end()) {
    auto flags = std::regex::ECMAScript | std::regex::optimize;
    if (icase) flags |= std::regex::icase;
    it = regex_cache_.emplace(key, std::make_unique<std::regex>(pattern, flags)).first;
  }
  return *it->second;
}

FilterEvaluator::Value FilterEvaluator::Compare(FilterExpr::Op op, const Value& a,
                                                const Value& b) const {
  if (a.kind == Value::Kind::kNull || b.kind == Value::Kind::kNull) return Value::Null();
  // Numeric comparison when both sides have numeric views.
  auto na = NumericOf(a), nb = NumericOf(b);
  int cmp;
  if (na && nb) {
    cmp = *na < *nb ? -1 : (*na > *nb ? 1 : 0);
  } else {
    // Term equality compares full terms; ordering compares lexical strings.
    if ((op == FilterExpr::Op::kEq || op == FilterExpr::Op::kNe) &&
        a.kind == Value::Kind::kTerm && b.kind == Value::Kind::kTerm) {
      bool eq = *a.term == *b.term;
      return Value::Bool(op == FilterExpr::Op::kEq ? eq : !eq);
    }
    auto sa = StringOf(a), sb = StringOf(b);
    if (!sa || !sb) return Value::Null();
    cmp = sa->compare(*sb);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case FilterExpr::Op::kEq:
      return Value::Bool(cmp == 0);
    case FilterExpr::Op::kNe:
      return Value::Bool(cmp != 0);
    case FilterExpr::Op::kLt:
      return Value::Bool(cmp < 0);
    case FilterExpr::Op::kLe:
      return Value::Bool(cmp <= 0);
    case FilterExpr::Op::kGt:
      return Value::Bool(cmp > 0);
    case FilterExpr::Op::kGe:
      return Value::Bool(cmp >= 0);
    default:
      return Value::Null();
  }
}

FilterEvaluator::Value FilterEvaluator::Eval(const FilterExpr& e, const Row& row) const {
  using Op = FilterExpr::Op;
  switch (e.op) {
    case Op::kVar: {
      auto idx = vars_.Find(e.var);
      if (!idx || static_cast<size_t>(*idx) >= row.size() || row[*idx] == kInvalidId)
        return Value::Null();
      const rdf::Term* term = ResolveTerm(dict_, local_, row[*idx]);
      if (!term) return Value::Null();
      Value v;
      v.kind = Value::Kind::kTerm;
      v.term = term;
      v.term_num = ResolveNumeric(dict_, local_, row[*idx]);
      return v;
    }
    case Op::kLiteral: {
      Value v;
      v.kind = Value::Kind::kTerm;
      v.term = &e.literal;
      // The shared typed-value coercion: same integer/decimal/double rules
      // the aggregate accumulators apply (comparison uses the double view).
      if (auto n = NumericOfTerm(e.literal)) v.term_num = n->AsDouble();
      return v;
    }
    case Op::kBound: {
      auto idx = vars_.Find(e.var);
      return Value::Bool(idx && static_cast<size_t>(*idx) < row.size() &&
                         row[*idx] != kInvalidId);
    }
    case Op::kNot:
      return Value::Bool(!Test(e.children[0], row));
    case Op::kAnd:
      return Value::Bool(Test(e.children[0], row) && Test(e.children[1], row));
    case Op::kOr:
      return Value::Bool(Test(e.children[0], row) || Test(e.children[1], row));
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return Compare(e.op, Eval(e.children[0], row), Eval(e.children[1], row));
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      auto a = NumericOf(Eval(e.children[0], row));
      auto b = NumericOf(Eval(e.children[1], row));
      if (!a || !b) return Value::Null();
      switch (e.op) {
        case Op::kAdd:
          return Value::Num(*a + *b);
        case Op::kSub:
          return Value::Num(*a - *b);
        case Op::kMul:
          return Value::Num(*a * *b);
        default:
          return *b == 0 ? Value::Null() : Value::Num(*a / *b);
      }
    }
    case Op::kNeg: {
      auto a = NumericOf(Eval(e.children[0], row));
      return a ? Value::Num(-*a) : Value::Null();
    }
    case Op::kStr: {
      auto s = StringOf(Eval(e.children[0], row));
      return s ? Value::Str(*s) : Value::Null();
    }
    case Op::kLang: {
      Value v = Eval(e.children[0], row);
      if (v.kind != Value::Kind::kTerm || !v.term->is_literal()) return Value::Null();
      return Value::Str(v.term->lang);
    }
    case Op::kDatatype: {
      Value v = Eval(e.children[0], row);
      if (v.kind != Value::Kind::kTerm || !v.term->is_literal()) return Value::Null();
      return Value::Str(v.term->datatype);
    }
    case Op::kIsIri: {
      Value v = Eval(e.children[0], row);
      return Value::Bool(v.kind == Value::Kind::kTerm && v.term->is_iri());
    }
    case Op::kIsLiteral: {
      Value v = Eval(e.children[0], row);
      return Value::Bool(v.kind == Value::Kind::kTerm && v.term->is_literal());
    }
    case Op::kIsBlank: {
      Value v = Eval(e.children[0], row);
      return Value::Bool(v.kind == Value::Kind::kTerm && v.term->is_blank());
    }
    case Op::kAggregate:
      // Only legal inside HAVING, where the planner rewrites it into a
      // column reference before evaluation; reaching here is an error.
      return Value::Null();
    case Op::kRegex: {
      if (e.children.size() < 2) return Value::Null();
      auto text = StringOf(Eval(e.children[0], row));
      auto pattern = StringOf(Eval(e.children[1], row));
      if (!text || !pattern) return Value::Null();
      bool icase = false;
      if (e.children.size() >= 3) {
        auto flags = StringOf(Eval(e.children[2], row));
        icase = flags && flags->find('i') != std::string::npos;
      }
      try {
        return Value::Bool(std::regex_search(*text, CachedRegex(*pattern, icase)));
      } catch (const std::regex_error&) {
        return Value::Null();
      }
    }
  }
  return Value::Null();
}

}  // namespace turbo::sparql
