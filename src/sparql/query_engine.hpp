// The streaming query API: the top-level facade a service front-end drives.
//
//   QueryEngine engine(std::move(dataset));            // owns data + solver
//   auto prepared = engine.Prepare(text);              // parse + plan once
//   auto cursor = engine.Open(prepared.value(), opts); // execute
//   Row row;
//   while (cursor.value().Next(&row)) { ... }          // stream rows
//
// The layer below is a composable physical operator tree (sparql/
// operators.hpp): Prepare plans the query once, Open instantiates the
// operator chain — BgpSource / UnionOp / OptionalOp / FilterOp / GuardOp /
// GroupAggregateOp / ProjectOp / DistinctOp / OrderByOp / TopKOp / SliceOp
// — and the Cursor drains its root. Rows flow one at a time with a kStop
// backchannel that unwinds all the way into the TurboHOM++ Matcher's
// SubgraphSearch (sequential and parallel), so a LIMIT-k query without
// ORDER BY enumerates only as much of the solution space as k rows require
// — the paper's "answer within the budget" behaviour rather than
// materialize-then-truncate. ORDER BY and GROUP BY are the pipeline
// breakers: ORDER BY + LIMIT keeps a bounded top-k heap (also composed
// behind DISTINCT when the sort keys are projected), and aggregation
// (GROUP BY / COUNT / SUM / MIN / MAX / AVG / HAVING) hash-groups before
// the solution modifiers, materializing computed values in a per-execution
// LocalVocab.
//
// ExecOptions adds the service-side controls on top of the query's own
// modifiers: a delivered-row cap (limit_budget), a pre-modifier work budget
// (row_budget), a deadline, and a cooperative cancel token. Cancel/deadline
// reach the enumeration loops themselves (MatchOptions::cancel/deadline), so
// even zero-solution searches terminate promptly and cleanly.
//
// `sparql::Executor` remains as a thin compatibility wrapper that drains a
// cursor into the materialized ResultSet.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "graph/data_graph.hpp"
#include "rdf/dataset.hpp"
#include "sparql/ast.hpp"
#include "sparql/local_vocab.hpp"
#include "sparql/solver.hpp"
#include "util/status.hpp"

namespace turbo::baseline {
class TripleIndex;
}

namespace turbo::sparql {

class Cursor;
class TurboBgpSolver;
struct ExecOptions;

inline constexpr uint64_t kNoBudget = std::numeric_limits<uint64_t>::max();

/// Caller-side execution controls, orthogonal to the query's own solution
/// modifiers (which always apply).
struct ExecOptions {
  /// Cap on delivered (post-DISTINCT/OFFSET) rows; combines with the query's
  /// LIMIT by taking the minimum. Reaching it is a normal termination.
  uint64_t limit_budget = kNoBudget;
  /// Cap on pre-modifier rows the pipeline may inspect; exceeding it stops
  /// execution with an error status ("row budget exceeded"). Guards a
  /// service against runaway queries whose cost is in enumeration, not
  /// delivery.
  uint64_t row_budget = kNoBudget;
  /// Steady-clock deadline (epoch default = none). Tripping it surfaces as
  /// status "deadline exceeded".
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel token owned by the caller; set it from any thread to
  /// stop execution with status "query cancelled".
  const std::atomic<bool>* cancel_token = nullptr;
  /// Run the operator pipeline on a producer thread that hands rows to the
  /// consumer through a bounded channel: Next() returns as soon as one row
  /// exists, the execution holds at most `channel_capacity` delivered rows
  /// in flight (plus any sort/group operator buffers), and destroying the
  /// cursor tears the enumeration down. When false (the default) the cursor
  /// materializes the delivered set on first use, exactly as before.
  bool streaming = false;
  /// Delivery-channel capacity (rows in flight) for streaming mode; a full
  /// channel blocks the producer (backpressure). Clamped to >= 1.
  uint32_t channel_capacity = 64;
  /// Pre-built per-execution vocab (computed/overlay terms). The live store
  /// passes a vocab chained to its shared term overlay so row cells carrying
  /// update-introduced ids resolve, and VALUES/BIND constants join against
  /// them. Null (the default) lets the cursor create its own when needed.
  std::shared_ptr<LocalVocab> vocab;
  /// Opaque lifetime pin: whatever snapshot/epoch state must outlive this
  /// execution (the live store's pinned epoch). The cursor holds it until
  /// destruction; the engine never looks inside.
  std::shared_ptr<const void> pin;
};

/// A parsed + planned SELECT query, reusable across Open calls (and across
/// threads: it is immutable after Prepare). Cheap to copy — shared state.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  const SelectQuery& query() const;
  const VarRegistry& vars() const;
  /// Projected variable names, in SELECT order (all vars for SELECT *).
  const std::vector<std::string>& var_names() const;
  /// False for a default-constructed handle (one not produced by Prepare).
  bool valid() const { return impl_ != nullptr; }

  struct Impl;

 private:
  friend class Cursor;
  friend class QueryEngine;
  friend util::Result<PreparedQuery> PrepareSelect(SelectQuery q);
  friend Cursor OpenCursor(const BgpSolver& solver, const PreparedQuery& prepared,
                           const ExecOptions& opts);
  std::shared_ptr<const Impl> impl_;
};

/// Plans an already-parsed SELECT (variable registry, projection indices,
/// per-group pushable filter sets). The text front door is
/// QueryEngine::Prepare.
util::Result<PreparedQuery> PrepareSelect(SelectQuery q);

/// A streaming result handle. Next() delivers projected rows in the same
/// order Executor::Execute would return them; status() reports how the
/// stream ended (Ok for completion, LIMIT, or budget-satisfied stops; an
/// error for cancellation / deadline / row-budget violations or a
/// producer-side failure — any rows already delivered remain valid), and
/// stop_cause() classifies the stop machine-readably.
///
/// In materialized mode (the default) the cursor runs the row pipeline on
/// first use and retains only the rows the modifiers let through (bounded
/// by LIMIT/limit_budget when present). With ExecOptions::streaming the
/// pipeline runs on a producer thread feeding a bounded channel; Next()
/// pops at the consumer's pace, and teardown is clean: the destructor
/// signals the producer, drains the channel, and joins the thread, so
/// abandoning a cursor mid-stream terminates the subgraph search itself.
/// The cursor must not outlive the solver/engine it was opened on.
class Cursor {
 public:
  Cursor() = default;

  /// Advances to the next row. Returns false at end-of-stream (check
  /// status() to distinguish completion from an error). In streaming mode
  /// this blocks until a row is available, the stream ends, or the caller's
  /// cancel/deadline fires (the waits are timeout-aware on both channel
  /// ends).
  bool Next(Row* row);

  /// How the stream ended so far; Ok while rows are still flowing.
  /// Producer-side errors (solver failures, exceptions on the producer
  /// thread) surface here with their original message once Next() has
  /// returned false.
  const util::Status& status() const;

  /// Why the stream stopped: kNone while flowing or after a clean end
  /// (LIMIT counts as clean), kRowBudget / kCancelled / kDeadline for the
  /// caller-imposed stops, kAbandoned after mid-stream teardown, and
  /// kProducerFailed when the producer side failed on its own — the
  /// distinction status() strings alone could not carry.
  StopCause stop_cause() const;

  /// Projected variable names (row columns), in SELECT order.
  const std::vector<std::string>& var_names() const;

  /// Rows that entered the solution-modifier stage before the stream
  /// stopped; with an early LIMIT stop this is what the pushdown saved work
  /// on (compare with ResultSet::total_before_modifiers of a full run).
  uint64_t rows_before_modifiers() const;

  /// High-water mark of rows the cursor held at once for delivery ordering
  /// (sort/heap/collect buffers plus, in streaming mode, the delivery
  /// channel; dedup memos and the group hash table are working state, not
  /// delivery buffers). For ORDER BY + LIMIT k this is bounded by k +
  /// OFFSET — the top-k heap, which since the operator refactor also
  /// composes behind DISTINCT whenever every sort key is projected — while
  /// rows_before_modifiers still reports the full enumeration. A streaming
  /// cursor with no sort/group stage is bounded by channel_capacity
  /// regardless of result size. Settles at end-of-stream (streaming
  /// counters read 0 until the stream ends).
  uint64_t peak_buffered_rows() const;

  /// The delivery channel's own high-water mark (streaming mode; 0 in
  /// materialized mode), already included in peak_buffered_rows(). Settles
  /// at end-of-stream.
  uint64_t peak_channel_rows() const;

  /// Terms computed by this execution (aggregate results); row cells with
  /// ids at or above dict.size() resolve here. Null when the query computes
  /// nothing. Shared ownership: stays valid as long as someone holds it.
  std::shared_ptr<const LocalVocab> local_vocab() const;

  /// The executed operator tree with per-operator row counts, one line per
  /// operator (the `sparql_shell --explain` output). Runs the query first
  /// if it has not run yet. While a streaming producer is still running,
  /// this renders the stable snapshot the producer publishes at every
  /// delivery boundary — a mutually consistent copy of all counters as of
  /// the last row handed to the delivery channel (prefixed with a note that
  /// counts are still advancing) — and the final counts once the stream
  /// ends or the producer has finished.
  std::string Explain();

 private:
  friend class QueryEngine;
  friend Cursor OpenCursor(const BgpSolver& solver, const PreparedQuery& prepared,
                           const ExecOptions& opts);
  struct State;
  std::shared_ptr<State> state_;
};

/// Opens a cursor over a bare solver — the building block QueryEngine::Open
/// and the Executor compatibility wrapper share. The solver must outlive the
/// cursor.
Cursor OpenCursor(const BgpSolver& solver, const PreparedQuery& prepared,
                  const ExecOptions& opts = {});

/// Renders one streamed row as a human-readable line (terms in N-Triples
/// form); `var_names` comes from the cursor or prepared query. Pass the
/// cursor's local_vocab() to resolve computed (aggregate) values.
std::string FormatRow(const std::vector<std::string>& var_names, const Row& row,
                      const rdf::Dictionary& dict, const LocalVocab* local = nullptr);

/// Owns a dataset, its derived index structures, and one BgpSolver; or wraps
/// a caller-owned solver. The facade for everything above the BGP layer.
///
/// Thread-safety contract (enforced — the HTTP endpoint and the concurrent-
/// cursor torture test drive it, and the TSan CI job checks it): one engine
/// may serve any number of threads concurrently. Prepare() and Open() are
/// const and touch only immutable or internally synchronized state; a
/// PreparedQuery is immutable after Prepare and shareable across threads;
/// each Cursor is single-consumer but any number of cursors (materialized,
/// streaming, or abandoned mid-stream) may be in flight over the same
/// engine at once — the solvers' shared mutable state (the RegionArena
/// pool, the cumulative MatchStats) is mutex-protected. The only
/// non-thread-safe surface is TurboBgpSolver::mutable_options(), which must
/// not be called while cursors are open.
class QueryEngine {
 public:
  enum class SolverKind : uint8_t {
    kTurbo,        ///< TurboHOM++ on the type-aware transformed graph
    kTurboDirect,  ///< TurboHOM on the directly transformed graph
    kSortMerge,    ///< RDF-3X-style scan + join baseline
    kIndexJoin,    ///< index-nested-loop baseline
  };

  struct Config {
    SolverKind solver = SolverKind::kTurbo;
    /// Adjacency storage for the Turbo solvers' DataGraph: the plain CSR
    /// arrays (default) or the delta + group-varint packed streams with
    /// decode-on-access (graph/compressed_adj.hpp). Ignored by baselines.
    graph::StorageMode storage = graph::StorageMode::kUncompressed;
    /// Engine options for the Turbo solvers (threads, §4.3 toggles, arena).
    engine::MatchOptions engine_options{};
  };

  /// Owning constructors: take the (inference-closed) dataset and build the
  /// transformed graph / triple index the chosen solver needs.
  explicit QueryEngine(rdf::Dataset dataset);
  QueryEngine(rdf::Dataset dataset, Config config);

  /// Owning constructor with a prebuilt graph (the snapshot "GRPH" fast
  /// path): adopts `prebuilt` when it matches the config's transform and
  /// storage mode — skipping classification, sorting, and re-encoding —
  /// and silently falls back to building from `dataset` otherwise (or when
  /// `prebuilt` is null / the solver is a baseline). The graph must have
  /// been built from (a snapshot of) this exact dataset: term ids are
  /// shared.
  QueryEngine(rdf::Dataset dataset, Config config,
              std::unique_ptr<graph::DataGraph> prebuilt);

  /// Non-owning view over an existing solver (benches and tests that manage
  /// their own EngineSet). The solver must outlive the engine.
  explicit QueryEngine(const BgpSolver* solver);

  QueryEngine(QueryEngine&&) = default;
  QueryEngine& operator=(QueryEngine&&) = default;
  ~QueryEngine();

  /// Parse + plan once; the result re-executes any number of times.
  util::Result<PreparedQuery> Prepare(const std::string& text) const;

  /// Starts executing a prepared query under `opts`.
  util::Result<Cursor> Open(const PreparedQuery& prepared, ExecOptions opts = {}) const;
  /// One-shot convenience: Prepare + Open.
  util::Result<Cursor> Open(const std::string& text, ExecOptions opts = {}) const;

  const BgpSolver& solver() const { return *solver_; }
  const rdf::Dictionary& dict() const { return solver_->dict(); }
  /// The owned dataset (owning engines only; nullptr when wrapping).
  const rdf::Dataset* dataset() const;
  /// The TurboBgpSolver behind this engine, or nullptr for the baselines —
  /// gives access to MatchStats for EXPLAIN-style diagnostics and tests.
  const TurboBgpSolver* turbo_solver() const;
  /// The transformed data graph (owning Turbo engines only; nullptr for
  /// baselines and wrapped solvers). Feeds memory reporting and snapshot
  /// persistence.
  const graph::DataGraph* data_graph() const;

 private:
  struct Owned;
  std::unique_ptr<Owned> owned_;   // null when wrapping a caller-owned solver
  const BgpSolver* solver_ = nullptr;
};

}  // namespace turbo::sparql
