#include "workload/lubm.hpp"

#include <fstream>

#include "rdf/loader.hpp"
#include "rdf/ntriples.hpp"
#include "rdf/vocabulary.hpp"
#include "util/rng.hpp"

namespace turbo::workload {

namespace {

std::string Ub(const std::string& local) { return kUbPrefix + local; }

std::string UnivUri(uint32_t u) { return "http://www.University" + std::to_string(u) + ".edu"; }

std::string DeptUri(uint32_t u, uint32_t d) {
  return "http://www.Department" + std::to_string(d) + ".University" + std::to_string(u) +
         ".edu";
}

/// Emits the Univ-Bench TBox subset our queries depend on.
void EmitOntology(rdf::Dataset* ds) {
  auto sub = [&](const char* c, const char* super) {
    ds->AddIri(Ub(c), rdf::vocab::kRdfsSubClassOf, Ub(super));
  };
  sub("FullProfessor", "Professor");
  sub("AssociateProfessor", "Professor");
  sub("AssistantProfessor", "Professor");
  sub("Chair", "Professor");
  sub("Professor", "Faculty");
  sub("Lecturer", "Faculty");
  sub("Faculty", "Employee");
  sub("Employee", "Person");
  sub("UndergraduateStudent", "Student");
  sub("Student", "Person");
  sub("GraduateStudent", "Person");
  sub("TeachingAssistant", "Person");
  sub("GraduateCourse", "Course");
  sub("University", "Organization");
  sub("Department", "Organization");
  sub("ResearchGroup", "Organization");

  auto subp = [&](const char* p, const char* super) {
    ds->AddIri(Ub(p), rdf::vocab::kRdfsSubPropertyOf, Ub(super));
  };
  subp("undergraduateDegreeFrom", "degreeFrom");
  subp("mastersDegreeFrom", "degreeFrom");
  subp("doctoralDegreeFrom", "degreeFrom");
  subp("worksFor", "memberOf");
  subp("headOf", "worksFor");

  ds->AddIri(Ub("degreeFrom"), rdf::vocab::kOwlInverseOf, Ub("hasAlumnus"));
  ds->AddIri(Ub("subOrganizationOf"), rdf::vocab::kRdfType,
             rdf::vocab::kOwlTransitiveProperty);
}

class Generator {
 public:
  explicit Generator(const LubmConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  rdf::Dataset Run() {
    EmitOntology(&ds_);
    // Degree universities are drawn from a pool of max(1000, N) — the UBA
    // behaviour that pins the Q2 / Q13 scaling shapes (see header).
    degree_pool_ = cfg_.degree_pool != 0
                       ? cfg_.degree_pool
                       : std::max<uint32_t>(1000, cfg_.num_universities);
    for (uint32_t u = 0; u < cfg_.num_universities; ++u) GenerateUniversity(u);
    return std::move(ds_);
  }

 private:
  void Add(const std::string& s, const std::string& p, const std::string& o) {
    ds_.AddIri(s, p, o);
  }
  void AddType(const std::string& s, const char* cls) {
    ds_.AddIri(s, rdf::vocab::kRdfType, Ub(cls));
  }
  void AddLit(const std::string& s, const char* prop, const std::string& lit) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(Ub(prop)), rdf::Term::Literal(lit));
  }

  std::string RandomDegreeUniv() { return UnivUri(rng_.Below(degree_pool_)); }

  void EmitPersonAttributes(const std::string& uri, const std::string& name,
                            const std::string& dept_tail) {
    AddLit(uri, "name", name);
    AddLit(uri, "emailAddress", name + "@" + dept_tail);
    AddLit(uri, "telephone",
           "xxx-xxx-" + std::to_string(1000 + rng_.Below(9000)));
  }

  void GenerateUniversity(uint32_t u) {
    std::string univ = UnivUri(u);
    AddType(univ, "University");
    uint32_t depts = static_cast<uint32_t>(rng_.Range(15, 25));
    for (uint32_t d = 0; d < depts; ++d) GenerateDepartment(u, d);
  }

  void GenerateDepartment(uint32_t u, uint32_t d) {
    std::string univ = UnivUri(u);
    std::string dept = DeptUri(u, d);
    std::string dept_tail =
        "Department" + std::to_string(d) + ".University" + std::to_string(u) + ".edu";
    AddType(dept, "Department");
    Add(dept, Ub("subOrganizationOf"), univ);

    struct Rank {
      const char* cls;
      uint32_t lo, hi;
      uint32_t pubs_lo, pubs_hi;
    };
    const Rank ranks[] = {{"FullProfessor", 7, 10, 15, 20},
                          {"AssociateProfessor", 10, 14, 10, 18},
                          {"AssistantProfessor", 8, 11, 5, 10},
                          {"Lecturer", 5, 7, 0, 5}};

    std::vector<std::string> professors;  // advisors (non-lecturer faculty)
    std::vector<std::string> ugrad_courses;
    std::vector<std::string> grad_courses;
    uint32_t course_seq = 0, gcourse_seq = 0, faculty_total = 0;

    for (const Rank& r : ranks) {
      uint32_t n = static_cast<uint32_t>(rng_.Range(r.lo, r.hi));
      for (uint32_t i = 0; i < n; ++i) {
        std::string name = std::string(r.cls) + std::to_string(i);
        std::string prof = dept + "/" + name;
        ++faculty_total;
        AddType(prof, r.cls);
        Add(prof, Ub("worksFor"), dept);
        Add(prof, Ub("undergraduateDegreeFrom"), RandomDegreeUniv());
        Add(prof, Ub("mastersDegreeFrom"), RandomDegreeUniv());
        Add(prof, Ub("doctoralDegreeFrom"), RandomDegreeUniv());
        EmitPersonAttributes(prof, name, dept_tail);
        AddLit(prof, "researchInterest", "Research" + std::to_string(rng_.Below(30)));
        if (std::string(r.cls) != "Lecturer") professors.push_back(prof);
        // Head of department: FullProfessor0.
        if (std::string(r.cls) == "FullProfessor" && i == 0) Add(prof, Ub("headOf"), dept);
        // Courses: unique per teacher (UBA behaviour).
        uint32_t nu = static_cast<uint32_t>(rng_.Range(1, 2));
        for (uint32_t c = 0; c < nu; ++c) {
          std::string course = dept + "/Course" + std::to_string(course_seq++);
          AddType(course, "Course");
          Add(prof, Ub("teacherOf"), course);
          ugrad_courses.push_back(course);
        }
        uint32_t ng = static_cast<uint32_t>(rng_.Range(1, 2));
        for (uint32_t c = 0; c < ng; ++c) {
          std::string course = dept + "/GraduateCourse" + std::to_string(gcourse_seq++);
          AddType(course, "GraduateCourse");
          Add(prof, Ub("teacherOf"), course);
          grad_courses.push_back(course);
        }
        // Publications.
        uint32_t pubs = static_cast<uint32_t>(rng_.Range(r.pubs_lo, r.pubs_hi));
        for (uint32_t m = 0; m < pubs; ++m) {
          std::string pub = prof + "/Publication" + std::to_string(m);
          AddType(pub, "Publication");
          Add(pub, Ub("publicationAuthor"), prof);
        }
      }
    }

    // Undergraduate students: 8-14 per faculty member.
    uint32_t ugrads = faculty_total * static_cast<uint32_t>(rng_.Range(8, 14));
    for (uint32_t i = 0; i < ugrads; ++i) {
      std::string name = "UndergraduateStudent" + std::to_string(i);
      std::string stu = dept + "/" + name;
      AddType(stu, "UndergraduateStudent");
      Add(stu, Ub("memberOf"), dept);
      EmitPersonAttributes(stu, name, dept_tail);
      // First enrollment is round-robin so every course has takers (as in
      // UBA, where LUBM Q1's anchor course always has students); extras are
      // uniform.
      uint32_t take = static_cast<uint32_t>(rng_.Range(2, 4));
      Add(stu, Ub("takesCourse"), ugrad_courses[i % ugrad_courses.size()]);
      for (uint32_t c = 1; c < take; ++c)
        Add(stu, Ub("takesCourse"), ugrad_courses[rng_.Below(ugrad_courses.size())]);
      if (rng_.Chance(0.2))
        Add(stu, Ub("advisor"), professors[rng_.Below(professors.size())]);
    }

    // Graduate students: 3-4 per faculty member.
    uint32_t grads = faculty_total * static_cast<uint32_t>(rng_.Range(3, 4));
    for (uint32_t i = 0; i < grads; ++i) {
      std::string name = "GraduateStudent" + std::to_string(i);
      std::string stu = dept + "/" + name;
      AddType(stu, "GraduateStudent");
      Add(stu, Ub("memberOf"), dept);
      Add(stu, Ub("undergraduateDegreeFrom"), RandomDegreeUniv());
      EmitPersonAttributes(stu, name, dept_tail);
      uint32_t take = static_cast<uint32_t>(rng_.Range(1, 3));
      Add(stu, Ub("takesCourse"), grad_courses[i % grad_courses.size()]);
      for (uint32_t c = 1; c < take; ++c)
        Add(stu, Ub("takesCourse"), grad_courses[rng_.Below(grad_courses.size())]);
      Add(stu, Ub("advisor"), professors[rng_.Below(professors.size())]);
      if (rng_.Chance(0.2))
        Add(stu, Ub("teachingAssistantOf"),
            ugrad_courses[rng_.Below(ugrad_courses.size())]);
    }

    // Research groups: 10-20 per department.
    uint32_t groups = static_cast<uint32_t>(rng_.Range(10, 20));
    for (uint32_t i = 0; i < groups; ++i) {
      std::string grp = dept + "/ResearchGroup" + std::to_string(i);
      AddType(grp, "ResearchGroup");
      Add(grp, Ub("subOrganizationOf"), dept);
    }
  }

  LubmConfig cfg_;
  util::Rng rng_;
  rdf::Dataset ds_;
  uint32_t degree_pool_ = 1000;
};

}  // namespace

rdf::Dataset GenerateLubm(const LubmConfig& config) { return Generator(config).Run(); }

rdf::ReasonerOptions LubmReasonerOptions(rdf::Dictionary* dict) {
  rdf::ReasonerOptions opt;
  // Chair == Person and headOf.Department (owl restriction -> R9 rule).
  opt.class_rules.push_back(
      {dict->GetOrAddIri(Ub("headOf")), dict->GetOrAddIri(Ub("Chair")), false});
  // Student == Person and takesCourse.Course.
  opt.class_rules.push_back(
      {dict->GetOrAddIri(Ub("takesCourse")), dict->GetOrAddIri(Ub("Student")), false});
  // TeachingAssistant == Person and teachingAssistantOf.Course.
  opt.class_rules.push_back({dict->GetOrAddIri(Ub("teachingAssistantOf")),
                             dict->GetOrAddIri(Ub("TeachingAssistant")), false});
  return opt;
}

rdf::Dataset GenerateLubmClosed(const LubmConfig& config, rdf::ReasonerStats* stats) {
  rdf::Dataset ds = GenerateLubm(config);
  rdf::ReasonerStats s = rdf::MaterializeInference(&ds, LubmReasonerOptions(&ds.dict()));
  if (stats) *stats = s;
  // Generation interns in arrival order; re-rank into the frequency-split
  // layout so generated workloads measure the same id locality a bulk load
  // produces (closure included — inferred type terms count too).
  rdf::RerankDatasetByFrequency(&ds);
  return ds;
}

util::Status WriteLubmNTriplesFile(const LubmConfig& config, const std::string& path) {
  rdf::Dataset ds = GenerateLubmClosed(config);
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Error("cannot open " + path + " for writing");
  rdf::WriteNTriples(ds, out, /*include_inferred=*/true);
  out.flush();
  if (!out.good()) return util::Status::Error("write to " + path + " failed");
  return util::Status::Ok();
}

std::vector<std::string> LubmQueries() {
  const std::string prologue = "PREFIX ub: <" + std::string(kUbPrefix) + "> ";
  const std::string dept0 = "<http://www.Department0.University0.edu>";
  const std::string univ0 = "<http://www.University0.edu>";
  std::vector<std::string> q(14);
  // Q1: graduate students taking a specific graduate course.
  q[0] = prologue +
         "SELECT ?x WHERE { ?x a ub:GraduateStudent . "
         "?x ub:takesCourse <http://www.Department0.University0.edu/GraduateCourse0> . }";
  // Q2: the triangle of Figure 5a / Figure 8.
  q[1] = prologue +
         "SELECT ?x ?y ?z WHERE { ?x a ub:GraduateStudent . ?y a ub:University . "
         "?z a ub:Department . ?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y . "
         "?x ub:undergraduateDegreeFrom ?y . }";
  // Q3: publications of a known assistant professor.
  q[2] = prologue +
         "SELECT ?x WHERE { ?x a ub:Publication . ?x ub:publicationAuthor "
         "<http://www.Department0.University0.edu/AssistantProfessor0> . }";
  // Q4: professors working for a known department (requires Professor
  // subclass inference).
  q[3] = prologue +
         "SELECT ?x ?y1 ?y2 ?y3 WHERE { ?x a ub:Professor . ?x ub:worksFor " + dept0 +
         " . ?x ub:name ?y1 . ?x ub:emailAddress ?y2 . ?x ub:telephone ?y3 . }";
  // Q5: members of a department (worksFor subPropertyOf memberOf inference).
  q[4] = prologue + "SELECT ?x WHERE { ?x a ub:Person . ?x ub:memberOf " + dept0 + " . }";
  // Q6: all students (Student == takesCourse restriction inference).
  q[5] = prologue + "SELECT ?x WHERE { ?x a ub:Student . }";
  // Q7: students taking courses of a known professor.
  q[6] = prologue +
         "SELECT ?x ?y WHERE { ?x a ub:Student . ?y a ub:Course . ?x ub:takesCourse ?y . "
         "<http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?y . }";
  // Q8: students in departments of a known university, with email.
  q[7] = prologue +
         "SELECT ?x ?y ?z WHERE { ?x a ub:Student . ?y a ub:Department . "
         "?x ub:memberOf ?y . ?y ub:subOrganizationOf " + univ0 +
         " . ?x ub:emailAddress ?z . }";
  // Q9: the student/faculty/course triangle.
  q[8] = prologue +
         "SELECT ?x ?y ?z WHERE { ?x a ub:Student . ?y a ub:Faculty . ?z a ub:Course . "
         "?x ub:advisor ?y . ?y ub:teacherOf ?z . ?x ub:takesCourse ?z . }";
  // Q10: students taking a known graduate course.
  q[9] = prologue +
         "SELECT ?x WHERE { ?x a ub:Student . ?x ub:takesCourse "
         "<http://www.Department0.University0.edu/GraduateCourse0> . }";
  // Q11: research groups of a university (transitive subOrganizationOf).
  q[10] = prologue +
          "SELECT ?x WHERE { ?x a ub:ResearchGroup . ?x ub:subOrganizationOf " + univ0 +
          " . }";
  // Q12: chairs of departments of a university (Chair restriction).
  q[11] = prologue +
          "SELECT ?x ?y WHERE { ?x a ub:Chair . ?y a ub:Department . ?x ub:worksFor ?y . "
          "?y ub:subOrganizationOf " + univ0 + " . }";
  // Q13: alumni of a university (inverseOf + subPropertyOf inference).
  q[12] = prologue +
          "SELECT ?x WHERE { ?x a ub:Person . " + univ0 + " ub:hasAlumnus ?x . }";
  // Q14: all undergraduate students (point-shaped after type folding).
  q[13] = prologue + "SELECT ?x WHERE { ?x a ub:UndergraduateStudent . }";
  return q;
}

}  // namespace turbo::workload
