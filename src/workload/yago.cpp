#include "workload/yago.hpp"

#include "rdf/vocabulary.hpp"
#include "util/rng.hpp"

namespace turbo::workload {

namespace {

std::string Y(const std::string& local) { return kYagoPrefix + local; }

class Generator {
 public:
  explicit Generator(const YagoConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  rdf::Dataset Run() {
    // Countries and cities.
    for (uint32_t c = 0; c < cfg_.num_countries; ++c) {
      std::string country = Y("Country" + std::to_string(c));
      AddType(country, "Country");
      AddLit(country, "hasName", "Country" + std::to_string(c));
    }
    for (uint32_t c = 0; c < cfg_.num_cities; ++c) {
      std::string city = Y("City" + std::to_string(c));
      AddType(city, "City");
      Add(city, "locatedIn", Y("Country" + std::to_string(rng_.Below(cfg_.num_countries))));
      AddLit(city, "hasName", "City" + std::to_string(c));
    }
    for (uint32_t u = 0; u < cfg_.num_universities; ++u) {
      std::string uni = Y("University" + std::to_string(u));
      AddType(uni, "University");
      Add(uni, "locatedIn", Y("City" + std::to_string(rng_.Below(cfg_.num_cities))));
    }
    // Movies get their directors/actors later.
    for (uint32_t m = 0; m < cfg_.num_movies; ++m) {
      std::string movie = Y("Movie" + std::to_string(m));
      AddType(movie, "Movie");
      AddLit(movie, "hasTitle", "Movie" + std::to_string(m));
    }

    // People: a profession mix with irregular attribute coverage, echoing
    // YAGO's heterogeneity.
    const char* professions[] = {"Scientist", "Writer", "Actor", "Politician", "Person"};
    const double prof_weights[] = {0.15, 0.1, 0.12, 0.08, 0.55};
    for (uint32_t p = 0; p < cfg_.num_persons; ++p) {
      std::string person = Y("Person" + std::to_string(p));
      double roll = rng_.Uniform();
      size_t prof = 0;
      double acc = 0;
      for (size_t i = 0; i < 5; ++i) {
        acc += prof_weights[i];
        if (roll < acc) {
          prof = i;
          break;
        }
      }
      AddType(person, professions[prof]);
      AddType(person, "Person");
      AddLit(person, "hasFamilyName", "Family" + std::to_string(rng_.Below(2000)));
      AddLit(person, "hasGivenName", "Given" + std::to_string(rng_.Below(500)));
      if (rng_.Chance(0.7))
        Add(person, "bornIn", Y("City" + std::to_string(rng_.Below(cfg_.num_cities))));
      if (rng_.Chance(0.4))
        Add(person, "livesIn", Y("City" + std::to_string(rng_.Below(cfg_.num_cities))));
      if (rng_.Chance(0.25))
        Add(person, "graduatedFrom",
            Y("University" + std::to_string(rng_.Below(cfg_.num_universities))));
      if (rng_.Chance(0.05))
        AddLit(person, "wonPrize", "Prize" + std::to_string(rng_.Below(60)));
      // Marriage: link to a previous person so both ends exist.
      if (p > 0 && rng_.Chance(0.3))
        Add(person, "isMarriedTo", Y("Person" + std::to_string(rng_.Below(p))));
      switch (prof) {
        case 0: {  // Scientist: academic advisor (earlier scientist-ish person)
          if (p > 0 && rng_.Chance(0.6))
            Add(person, "hasAcademicAdvisor", Y("Person" + std::to_string(rng_.Below(p))));
          break;
        }
        case 2: {  // Actor
          uint32_t roles = static_cast<uint32_t>(rng_.Range(1, 6));
          for (uint32_t r = 0; r < roles; ++r)
            Add(person, "actedIn", Y("Movie" + std::to_string(rng_.Below(cfg_.num_movies))));
          if (rng_.Chance(0.1)) {
            // Some actors direct, sometimes their own movie (query Q7).
            std::string movie = Y("Movie" + std::to_string(rng_.Below(cfg_.num_movies)));
            Add(person, "directed", movie);
            if (rng_.Chance(0.5)) Add(person, "actedIn", movie);
          }
          break;
        }
        default:
          break;
      }
    }
    return std::move(ds_);
  }

 private:
  void Add(const std::string& s, const std::string& p, const std::string& o) {
    ds_.AddIri(s, Y(p), o);
  }
  void AddType(const std::string& s, const char* cls) {
    ds_.AddIri(s, rdf::vocab::kRdfType, Y(cls));
  }
  void AddLit(const std::string& s, const char* prop, const std::string& lit) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(Y(prop)), rdf::Term::Literal(lit));
  }

  YagoConfig cfg_;
  util::Rng rng_;
  rdf::Dataset ds_;
};

}  // namespace

rdf::Dataset GenerateYago(const YagoConfig& config) { return Generator(config).Run(); }

std::vector<std::string> YagoQueries() {
  const std::string pfx = "PREFIX y: <" + std::string(kYagoPrefix) + "> ";
  std::vector<std::string> q(8);
  // Q1: scientists born where their advisor was born (A1-style).
  q[0] = pfx +
         "SELECT ?a ?b ?c WHERE { ?a a y:Scientist . ?a y:hasAcademicAdvisor ?b . "
         "?a y:bornIn ?c . ?b y:bornIn ?c . }";
  // Q2: married couples born in the same city (A2-style).
  q[1] = pfx +
         "SELECT ?x ?y ?c WHERE { ?x y:isMarriedTo ?y . ?x y:bornIn ?c . "
         "?y y:bornIn ?c . }";
  // Q3: actors living in a fixed country who acted in a movie (A3-style).
  q[2] = pfx +
         "SELECT ?a ?m WHERE { ?a a y:Actor . ?a y:livesIn ?city . "
         "?city y:locatedIn y:Country0 . ?a y:actedIn ?m . }";
  // Q4: writers married to someone living in the same city (B1-style).
  q[3] = pfx +
         "SELECT ?x ?y ?c WHERE { ?x a y:Writer . ?x y:isMarriedTo ?y . "
         "?x y:livesIn ?c . ?y y:livesIn ?c . }";
  // Q5: prize-winning scientists with birth country (B2-style).
  q[4] = pfx +
         "SELECT ?x ?p ?country WHERE { ?x a y:Scientist . ?x y:wonPrize ?p . "
         "?x y:bornIn ?city . ?city y:locatedIn ?country . }";
  // Q6: politicians married to actors (B3-style).
  q[5] = pfx +
         "SELECT ?x ?y WHERE { ?x a y:Politician . ?x y:isMarriedTo ?y . "
         "?y a y:Actor . }";
  // Q7: directors acting in their own movie (C1-style).
  q[6] = pfx + "SELECT ?x ?m WHERE { ?x y:directed ?m . ?x y:actedIn ?m . }";
  // Q8: scientists who graduated in their birth city (C2-style).
  q[7] = pfx +
         "SELECT ?x ?u ?c WHERE { ?x a y:Scientist . ?x y:graduatedFrom ?u . "
         "?x y:bornIn ?c . ?u y:locatedIn ?c . }";
  return q;
}

}  // namespace turbo::workload
