#include "workload/btc.hpp"

#include "rdf/vocabulary.hpp"
#include "util/rng.hpp"

namespace turbo::workload {

namespace {

constexpr const char* kFoaf = "http://xmlns.com/foaf/0.1/";
constexpr const char* kDc = "http://purl.org/dc/elements/1.1/";
constexpr const char* kDbo = "http://dbpedia.org/ontology/";
constexpr const char* kGn = "http://www.geonames.org/ontology#";
constexpr const char* kEx = "http://btc.example.org/";

class Generator {
 public:
  explicit Generator(const BtcConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  rdf::Dataset Run() {
    // Places form a parent-feature tree: countries <- regions <- towns.
    uint32_t countries = std::max<uint32_t>(10, cfg_.num_places / 100);
    uint32_t regions = std::max<uint32_t>(countries * 4, cfg_.num_places / 10);
    for (uint32_t i = 0; i < cfg_.num_places; ++i) {
      std::string place = std::string(kEx) + "place" + std::to_string(i);
      AddIri(place, std::string(kRdf) + "type", std::string(kGn) + "Feature");
      AddLit(place, std::string(kGn) + "name", "Place" + std::to_string(i));
      if (i >= countries && i < countries + regions) {
        AddIri(place, std::string(kGn) + "parentFeature",
               std::string(kEx) + "place" + std::to_string(rng_.Below(countries)));
      } else if (i >= countries + regions) {
        AddIri(place, std::string(kGn) + "parentFeature",
               std::string(kEx) + "place" +
                   std::to_string(countries + rng_.Below(regions)));
      }
    }

    // FOAF persons with irregular attribute coverage and a hubby knows-graph.
    for (uint32_t i = 0; i < cfg_.num_persons; ++i) {
      std::string person = std::string(kEx) + "person" + std::to_string(i);
      if (rng_.Chance(0.9))
        AddIri(person, std::string(kRdf) + "type", std::string(kFoaf) + "Person");
      AddLit(person, std::string(kFoaf) + "name", "Name" + std::to_string(rng_.Below(8000)));
      if (rng_.Chance(0.5))
        AddLit(person, std::string(kFoaf) + "mbox",
               "mailto:p" + std::to_string(i) + "@example.org");
      if (rng_.Chance(0.4))
        AddIri(person, std::string(kDbo) + "birthPlace",
               std::string(kEx) + "place" + std::to_string(rng_.Below(cfg_.num_places)));
      // knows: mixture of uniform links and links to low-id hubs.
      uint32_t degree = static_cast<uint32_t>(rng_.Range(0, 6));
      for (uint32_t k = 0; k < degree && i > 0; ++k) {
        uint32_t target = rng_.Chance(0.3) ? rng_.Below(std::min<uint32_t>(i, 50))
                                           : rng_.Below(i);
        AddIri(person, std::string(kFoaf) + "knows",
               std::string(kEx) + "person" + std::to_string(target));
      }
    }

    // Documents with Dublin Core metadata.
    for (uint32_t i = 0; i < cfg_.num_documents; ++i) {
      std::string doc = std::string(kEx) + "doc" + std::to_string(i);
      AddLit(doc, std::string(kDc) + "title", "Title" + std::to_string(rng_.Below(10000)));
      AddIri(doc, std::string(kDc) + "creator",
             std::string(kEx) + "person" + std::to_string(rng_.Below(cfg_.num_persons)));
      if (rng_.Chance(0.3))
        AddLit(doc, std::string(kDc) + "date",
               "20" + std::to_string(10 + rng_.Below(10)) + "-01-01");
      if (rng_.Chance(0.2))
        AddIri(doc, std::string(kDc) + "subject",
               std::string(kEx) + "topic" + std::to_string(rng_.Below(200)));
    }
    return std::move(ds_);
  }

 private:
  static constexpr const char* kRdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
  void AddIri(const std::string& s, const std::string& p, const std::string& o) {
    ds_.AddIri(s, p, o);
  }
  void AddLit(const std::string& s, const std::string& p, const std::string& lit) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Literal(lit));
  }

  BtcConfig cfg_;
  util::Rng rng_;
  rdf::Dataset ds_;
};

}  // namespace

rdf::Dataset GenerateBtc(const BtcConfig& config) { return Generator(config).Run(); }

std::vector<std::string> BtcQueries() {
  const std::string pfx = std::string("PREFIX foaf: <") + kFoaf + "> PREFIX dc: <" + kDc +
                          "> PREFIX dbo: <" + kDbo + "> PREFIX gn: <" + kGn +
                          "> PREFIX ex: <" + kEx + "> ";
  std::vector<std::string> q(8);
  // Q1: star around a fixed person (ID-anchored, like most BTC queries).
  q[0] = pfx + "SELECT ?a ?n WHERE { ex:person10 foaf:knows ?a . ?a foaf:name ?n . }";
  // Q2: documents by authors with a fixed name literal.
  q[1] = pfx +
         "SELECT ?d ?p WHERE { ?d dc:creator ?p . ?p foaf:name \"Name123\" . }";
  // Q3: typed persons with contactable friends.
  q[2] = pfx +
         "SELECT ?p ?q ?m WHERE { ?p a foaf:Person . ?p foaf:knows ?q . "
         "?q foaf:mbox ?m . }";
  // Q4: fixed-document star with author name.
  q[3] = pfx +
         "SELECT ?t ?c ?n WHERE { ex:doc5 dc:title ?t . ex:doc5 dc:creator ?c . "
         "?c foaf:name ?n . }";
  // Q5: geographic containment chain ending at a fixed country name.
  q[4] = pfx +
         "SELECT ?x ?y WHERE { ?x gn:parentFeature ?y . ?y gn:parentFeature ?z . "
         "?z gn:name \"Place7\" . }";
  // Q6: birth places resolved through the place hierarchy.
  q[5] = pfx +
         "SELECT ?x ?c ?n WHERE { ?x dbo:birthPlace ?place . "
         "?place gn:parentFeature ?c . ?x foaf:name ?n . }";
  // Q7: two-hop fan-in to a fixed person.
  q[6] = pfx +
         "SELECT ?a ?b WHERE { ?a foaf:knows ?b . ?b foaf:knows ex:person0 . }";
  // Q8: documents whose authors have a located birth place.
  q[7] = pfx +
         "SELECT ?d ?p ?n WHERE { ?d dc:creator ?p . ?p dbo:birthPlace ?pl . "
         "?pl gn:name ?n . }";
  return q;
}

}  // namespace turbo::workload
