// YAGO-like workload: a seeded synthetic knowledge graph with the schema mix
// of YAGO (people/city/country/movie/university entities, biographic and
// film predicates, irregular attribute coverage) plus eight benchmark
// queries modeled on the RDF-3X / TripleBit YAGO query sets (the paper uses
// those sets since YAGO has no official queries, §7.1).
//
// Substitution note (DESIGN.md): the real YAGO dump is not available
// offline; the generator preserves what the paper's conclusions rely on —
// heterogeneous (but not extremely irregular) structure, few type-labeled
// query vertices, and small-to-medium query selectivities.
#pragma once

#include <string>
#include <vector>

#include "rdf/dataset.hpp"

namespace turbo::workload {

inline constexpr const char* kYagoPrefix = "http://yago-knowledge.org/resource/";

struct YagoConfig {
  uint64_t seed = 42;
  uint32_t num_persons = 50000;
  uint32_t num_cities = 800;
  uint32_t num_countries = 40;
  uint32_t num_movies = 8000;
  uint32_t num_universities = 400;
};

/// Generates the dataset (no inference needed: YAGO queries in the paper use
/// explicitly asserted facts).
rdf::Dataset GenerateYago(const YagoConfig& config);

/// The eight benchmark queries (Q1..Q8 = index 0..7).
std::vector<std::string> YagoQueries();

}  // namespace turbo::workload
