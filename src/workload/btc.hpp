// BTC2012-like workload: a seeded synthetic stand-in for the Billion Triples
// Challenge 2012 crawl — multi-vocabulary (FOAF / Dublin Core / DBpedia-ish
// / GeoNames-ish), hub-heavy, schema-noisy data, plus eight benchmark
// queries modeled on the TripleBit BTC query set (simple, mostly tree-shaped
// patterns, several anchored at a fixed IRI — the §7.2 observation).
//
// Substitution note (DESIGN.md): the crawl itself (1.4 G triples, offline
// here) violates RDF tooling so routinely that the paper loads it without
// inference; we likewise generate assertions only and run no reasoner.
#pragma once

#include <string>
#include <vector>

#include "rdf/dataset.hpp"

namespace turbo::workload {

struct BtcConfig {
  uint64_t seed = 42;
  uint32_t num_persons = 40000;
  uint32_t num_documents = 30000;
  uint32_t num_places = 2000;
};

rdf::Dataset GenerateBtc(const BtcConfig& config);

/// The eight benchmark queries (Q1..Q8 = index 0..7).
std::vector<std::string> BtcQueries();

}  // namespace turbo::workload
