// BSBM-like workload: Berlin SPARQL Benchmark e-commerce data (products,
// producers, features, vendors, offers, reviews) plus the 12 explore-use-
// case queries, which exercise OPTIONAL, FILTER (numeric, join-condition,
// regex), UNION, DISTINCT, ORDER BY and LIMIT — the general SPARQL support
// of Section 5.1 / Table 6.
//
// Substitution note (DESIGN.md): the BSBM generator is Java and offline; the
// schema, cardinalities (offers ~10x products, reviews ~5x) and query
// parameter style (most queries anchored at one product/type/feature) follow
// the published benchmark so the Table 6 behaviour — sub-millisecond
// ID-anchored queries vs expensive Q5 (join filter) and Q6 (regex) — is
// preserved.
#pragma once

#include <string>
#include <vector>

#include "rdf/dataset.hpp"
#include "rdf/reasoner.hpp"

namespace turbo::workload {

inline constexpr const char* kBsbmPrefix =
    "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/";
inline constexpr const char* kBsbmInst =
    "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/instances/";

struct BsbmConfig {
  uint64_t seed = 42;
  uint32_t num_products = 5000;
  uint32_t num_product_types = 40;
  uint32_t num_features = 300;
  uint32_t num_producers = 60;
  uint32_t num_vendors = 50;
  uint32_t num_reviewers = 2500;
};

/// Generates original triples incl. the product-type hierarchy TBox.
rdf::Dataset GenerateBsbm(const BsbmConfig& config);

/// Generator + inference closure (type hierarchy materialization).
rdf::Dataset GenerateBsbmClosed(const BsbmConfig& config);

/// The 12 explore-use-case queries (Q1..Q12 = index 0..11).
std::vector<std::string> BsbmQueries();

}  // namespace turbo::workload
