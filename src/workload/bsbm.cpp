#include "workload/bsbm.hpp"

#include "rdf/loader.hpp"
#include "rdf/vocabulary.hpp"
#include "util/rng.hpp"

namespace turbo::workload {

namespace {

constexpr const char* kRdfs = "http://www.w3.org/2000/01/rdf-schema#";

std::string V(const std::string& local) { return kBsbmPrefix + local; }
std::string I(const std::string& local) { return kBsbmInst + local; }

class Generator {
 public:
  explicit Generator(const BsbmConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  rdf::Dataset Run() {
    // Product type hierarchy: a 3-level tree rooted at Product.
    ds_.AddIri(I("ProductType0"), rdf::vocab::kRdfsSubClassOf, V("Product"));
    for (uint32_t t = 1; t < cfg_.num_product_types; ++t) {
      uint32_t parent = t <= 8 ? 0 : 1 + rng_.Below(8);
      ds_.AddIri(I("ProductType" + std::to_string(t)), rdf::vocab::kRdfsSubClassOf,
                 I("ProductType" + std::to_string(parent)));
    }

    for (uint32_t p = 0; p < cfg_.num_producers; ++p) {
      std::string producer = I("Producer" + std::to_string(p));
      AddType(producer, V("Producer"));
      AddLabel(producer, "Producer" + std::to_string(p));
    }

    for (uint32_t p = 0; p < cfg_.num_products; ++p) {
      std::string product = I("Product" + std::to_string(p));
      AddType(product, I("ProductType" + std::to_string(rng_.Below(cfg_.num_product_types))));
      AddLabel(product, "product " + Word() + " " + Word());
      AddIri(product, V("producer"),
             I("Producer" + std::to_string(rng_.Below(cfg_.num_producers))));
      uint32_t feats = static_cast<uint32_t>(rng_.Range(3, 8));
      for (uint32_t f = 0; f < feats; ++f)
        AddIri(product, V("productFeature"),
               I("ProductFeature" + std::to_string(rng_.Below(cfg_.num_features))));
      AddNum(product, V("productPropertyNumeric1"), rng_.Range(1, 2000));
      AddNum(product, V("productPropertyNumeric2"), rng_.Range(1, 2000));
      AddNum(product, V("productPropertyNumeric3"), rng_.Range(1, 2000));
      AddLit(product, V("productPropertyTextual1"), Word() + " " + Word() + " " + Word());
    }

    // Offers: ~10 per product on average.
    uint64_t offers = static_cast<uint64_t>(cfg_.num_products) * 10;
    for (uint64_t o = 0; o < offers; ++o) {
      std::string offer = I("Offer" + std::to_string(o));
      AddType(offer, V("Offer"));
      AddIri(offer, V("product"), I("Product" + std::to_string(rng_.Below(cfg_.num_products))));
      AddIri(offer, V("vendor"), I("Vendor" + std::to_string(rng_.Below(cfg_.num_vendors))));
      AddNum(offer, V("price"), rng_.Range(5, 10000));
      AddNum(offer, V("deliveryDays"), rng_.Range(1, 14));
      AddNum(offer, V("validTo"), rng_.Range(20240101, 20261231));
    }
    for (uint32_t v = 0; v < cfg_.num_vendors; ++v) {
      std::string vendor = I("Vendor" + std::to_string(v));
      AddType(vendor, V("Vendor"));
      AddLabel(vendor, "Vendor" + std::to_string(v));
      AddIri(vendor, V("country"), I("Country" + std::to_string(rng_.Below(20))));
    }

    // Reviews: ~5 per product on average.
    const char* langs[] = {"en", "de", "fr", "es", "ja"};
    uint64_t reviews = static_cast<uint64_t>(cfg_.num_products) * 5;
    for (uint64_t r = 0; r < reviews; ++r) {
      std::string review = I("Review" + std::to_string(r));
      AddType(review, V("Review"));
      AddIri(review, V("reviewFor"),
             I("Product" + std::to_string(rng_.Below(cfg_.num_products))));
      AddIri(review, V("reviewer"),
             I("Reviewer" + std::to_string(rng_.Below(cfg_.num_reviewers))));
      ds_.Add(rdf::Term::Iri(review), rdf::Term::Iri(V("reviewTitle")),
              rdf::Term::LangLiteral("review " + Word(), langs[rng_.Below(5)]));
      AddNum(review, V("rating1"), rng_.Range(1, 10));
      if (rng_.Chance(0.7)) AddNum(review, V("rating2"), rng_.Range(1, 10));
      AddLit(review, V("reviewDate"), "2025-" + std::to_string(1 + rng_.Below(12)));
    }
    for (uint32_t r = 0; r < cfg_.num_reviewers; ++r) {
      std::string reviewer = I("Reviewer" + std::to_string(r));
      AddType(reviewer, V("Person"));
      AddLit(reviewer, V("name"), "Reviewer" + std::to_string(r));
      AddIri(reviewer, V("country"), I("Country" + std::to_string(rng_.Below(20))));
    }
    return std::move(ds_);
  }

 private:
  void AddIri(const std::string& s, const std::string& p, const std::string& o) {
    ds_.AddIri(s, p, o);
  }
  void AddType(const std::string& s, const std::string& cls) {
    ds_.AddIri(s, rdf::vocab::kRdfType, cls);
  }
  void AddLabel(const std::string& s, const std::string& text) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(std::string(kRdfs) + "label"),
            rdf::Term::Literal(text));
  }
  void AddLit(const std::string& s, const std::string& p, const std::string& lit) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Literal(lit));
  }
  void AddNum(const std::string& s, const std::string& p, uint64_t v) {
    ds_.Add(rdf::Term::Iri(s), rdf::Term::Iri(p),
            rdf::Term::TypedLiteral(std::to_string(v), rdf::vocab::kXsdInteger));
  }
  std::string Word() {
    static const char* kWords[] = {"quick",  "brown", "lazy",   "bright", "cold",
                                   "silver", "amber", "copper", "violet", "golden"};
    return kWords[rng_.Below(10)];
  }

  BsbmConfig cfg_;
  util::Rng rng_;
  rdf::Dataset ds_;
};

}  // namespace

rdf::Dataset GenerateBsbm(const BsbmConfig& config) { return Generator(config).Run(); }

rdf::Dataset GenerateBsbmClosed(const BsbmConfig& config) {
  rdf::Dataset ds = GenerateBsbm(config);
  rdf::MaterializeInference(&ds);
  rdf::RerankDatasetByFrequency(&ds);  // same id layout as a bulk load
  return ds;
}

std::vector<std::string> BsbmQueries() {
  const std::string pfx = std::string("PREFIX bsbm: <") + kBsbmPrefix + "> PREFIX inst: <" +
                          kBsbmInst + "> PREFIX rdfs: <" + kRdfs + "> ";
  std::vector<std::string> q(12);
  // Q1: products of a type with a feature above a numeric threshold.
  q[0] = pfx +
         "SELECT DISTINCT ?product ?label WHERE { ?product rdfs:label ?label . "
         "?product a inst:ProductType1 . ?product bsbm:productFeature ?feature . "
         "?product bsbm:productPropertyNumeric1 ?v . FILTER(?v > 1000) } "
         "ORDER BY ?label LIMIT 10";
  // Q2: attribute star around a fixed product.
  q[1] = pfx +
         "SELECT ?label ?producer ?num1 ?text WHERE { "
         "inst:Product1 rdfs:label ?label . inst:Product1 bsbm:producer ?producer . "
         "inst:Product1 bsbm:productPropertyNumeric1 ?num1 . "
         "inst:Product1 bsbm:productPropertyTextual1 ?text . }";
  // Q3: products with feature A but not feature B (OPTIONAL + !bound).
  q[2] = pfx +
         "SELECT ?product ?label WHERE { ?product rdfs:label ?label . "
         "?product a inst:ProductType1 . ?product bsbm:productFeature inst:ProductFeature1 . "
         "?product bsbm:productPropertyNumeric1 ?p1 . FILTER(?p1 > 100) "
         "OPTIONAL { ?product bsbm:productFeature inst:ProductFeature2 . "
         "?product rdfs:label ?testVar } FILTER(!bound(?testVar)) }";
  // Q4: UNION of two feature alternatives.
  q[3] = pfx +
         "SELECT ?product ?label WHERE { "
         "{ ?product rdfs:label ?label . ?product a inst:ProductType1 . "
         "?product bsbm:productFeature inst:ProductFeature1 . } UNION "
         "{ ?product rdfs:label ?label . ?product a inst:ProductType1 . "
         "?product bsbm:productFeature inst:ProductFeature2 . } }";
  // Q5: products with similar numeric properties (expensive join FILTERs —
  // the query the paper calls out in Table 6).
  q[4] = pfx +
         "SELECT DISTINCT ?product ?label WHERE { ?product rdfs:label ?label . "
         "?product bsbm:productPropertyNumeric1 ?p1 . "
         "inst:Product1 bsbm:productPropertyNumeric1 ?origP1 . "
         "?product bsbm:productPropertyNumeric2 ?p2 . "
         "inst:Product1 bsbm:productPropertyNumeric2 ?origP2 . "
         "FILTER(inst:Product1 != ?product) "
         "FILTER(?p1 < (?origP1 + 120) && ?p1 > (?origP1 - 120)) "
         "FILTER(?p2 < (?origP2 + 170) && ?p2 > (?origP2 - 170)) } "
         "ORDER BY ?label LIMIT 5";
  // Q6: regex search on labels (the other expensive Table 6 query).
  q[5] = pfx +
         "SELECT ?product ?label WHERE { ?product rdfs:label ?label . "
         "?product a bsbm:Product . FILTER(regex(?label, \"silver.*amber\")) }";
  // Q7: product with offers and reviews, OPTIONAL-rich.
  q[6] = pfx +
         "SELECT ?product ?offer ?price ?review WHERE { "
         "?product rdfs:label ?label . ?product a inst:ProductType2 . "
         "OPTIONAL { ?offer bsbm:product ?product . ?offer bsbm:price ?price . } "
         "OPTIONAL { ?review bsbm:reviewFor ?product . } } LIMIT 200";
  // Q8: reviews for a fixed product in English.
  q[7] = pfx +
         "SELECT ?review ?title ?r1 WHERE { ?review bsbm:reviewFor inst:Product1 . "
         "?review bsbm:reviewTitle ?title . ?review bsbm:rating1 ?r1 . "
         "FILTER(lang(?title) = \"en\") }";
  // Q9: reviewers of reviews for a fixed product.
  q[8] = pfx +
         "SELECT ?reviewer ?name WHERE { ?review bsbm:reviewFor inst:Product1 . "
         "?review bsbm:reviewer ?reviewer . ?reviewer bsbm:name ?name . }";
  // Q10: cheap quickly-deliverable offers for a fixed product.
  q[9] = pfx +
         "SELECT ?offer ?price WHERE { ?offer bsbm:product inst:Product1 . "
         "?offer bsbm:price ?price . ?offer bsbm:deliveryDays ?d . FILTER(?d <= 3) } "
         "ORDER BY ?price LIMIT 10";
  // Q11: all properties of a fixed offer (variable predicate).
  q[10] = pfx + "SELECT ?property ?hasValue WHERE { inst:Offer7 ?property ?hasValue . }";
  // Q12: export view of a fixed offer (star across offer/product/vendor).
  q[11] = pfx +
          "SELECT ?productLabel ?vendorName ?price WHERE { "
          "inst:Offer7 bsbm:product ?product . ?product rdfs:label ?productLabel . "
          "inst:Offer7 bsbm:vendor ?vendor . ?vendor rdfs:label ?vendorName . "
          "inst:Offer7 bsbm:price ?price . }";
  return q;
}

}  // namespace turbo::workload
