// LUBM (Lehigh University Benchmark) workload: a faithful C++ port of the
// Univ-Bench data generator's schema and cardinalities, the ontology rules
// the benchmark queries depend on, and the 14 official queries.
//
// Substitution note (see DESIGN.md): the paper runs LUBM(80/800/8000) — up
// to 1.9 G triples — materialized by a commercial inference engine. This
// generator reproduces the schema regularity, per-university structure and
// query selectivities at configurable scale; inference is materialized by
// our forward chainer (rdf/reasoner) using the ontology encoded here.
//
// Generator fidelity highlights:
//  * departments 15-25/university; faculty 30-42/department in the four
//    ranks; undergraduates ~11x faculty, graduates ~3.5x faculty;
//  * every faculty teaches 1-2 undergrad + 1-2 grad courses (courses unique
//    per teacher); students enroll in 2-4 / 1-3 dept courses;
//  * degree universities are drawn from a pool of max(1000, N) — the UBA
//    quirk that makes Q2's solution count scale sub-linearly and Q13's
//    linearly, matching Table 2's shapes;
//  * one FullProfessor per department is head (=> Chair via inference).
#pragma once

#include <string>
#include <vector>

#include "rdf/dataset.hpp"
#include "rdf/reasoner.hpp"

namespace turbo::workload {

inline constexpr const char* kUbPrefix = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

struct LubmConfig {
  uint64_t seed = 42;
  uint32_t num_universities = 4;
  /// Degree-university pool size; 0 = max(1000, N), the UBA behaviour.
  /// Setting it to `num_universities` emulates the >=1000-university regime
  /// (every degree reference hits a materialized university), which is what
  /// makes Q2's candidate regions heavy at the paper's LUBM8000 scale — the
  /// Figure 15 / 16 harnesses use this to reproduce those shapes at small N.
  uint32_t degree_pool = 0;
};

/// Generates the original triples (ABox + ontology TBox).
rdf::Dataset GenerateLubm(const LubmConfig& config);

/// Reasoner configuration for the Univ-Bench ontology: the class-definition
/// rules (Chair == headOf restriction, Student == takesCourse restriction,
/// TeachingAssistant) that owl:intersectionOf restrictions would provide.
rdf::ReasonerOptions LubmReasonerOptions(rdf::Dictionary* dict);

/// Generates and materializes the inference closure (the standard way to
/// run LUBM, §7.1).
rdf::Dataset GenerateLubmClosed(const LubmConfig& config,
                                rdf::ReasonerStats* stats = nullptr);

/// Generates the inference-closed dataset and dumps it as N-Triples
/// (inferred triples included, so a re-load needs no reasoner pass) — the
/// fixture the ingestion bench and tests parse. Mirrors the paper's setup
/// of loading dumps whose closure was materialized offline.
util::Status WriteLubmNTriplesFile(const LubmConfig& config, const std::string& path);

/// The 14 official benchmark queries as SPARQL text. Q1..Q14 = index 0..13.
std::vector<std::string> LubmQueries();

}  // namespace turbo::workload
