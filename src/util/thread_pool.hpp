// Parallel-for with dynamic chunking. Implements the paper's Section 5.2
// work distribution: starting data vertices are handed to threads in small
// chunks claimed from a shared atomic cursor, so skewed candidate-region
// sizes (the "universities with very different numbers of students" problem)
// do not unbalance the threads.
//
// NUMA substitution note: the paper pins threads to sockets and interleaves
// graph pages across sockets. This VM exposes a single memory domain, so the
// placement part is a no-op here; the dynamic-chunking logic — which is what
// Figure 16 actually exercises — is implemented faithfully.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace turbo::util {

/// Persistent work-queue thread pool: workers are spawned once and reused
/// across stages, so a multi-stage pipeline (parse -> merge -> remap ->
/// graph-build) pays thread start-up once instead of per stage. Tasks
/// receive the executing worker's stable index [0, size()); one worker runs
/// its tasks sequentially, so per-worker scratch indexed by that id needs no
/// locking. With num_threads <= 1 no workers are spawned and everything runs
/// inline on the caller.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads) {
    if (num_threads <= 1) return;
    workers_.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
      workers_.emplace_back([this, t] { WorkerLoop(t); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Number of workers (1 for the inline pool).
  uint32_t size() const { return workers_.empty() ? 1 : static_cast<uint32_t>(workers_.size()); }

  /// Enqueues a task; it runs on some worker (or inline for a 1-thread pool).
  void Submit(std::function<void(uint32_t)> task) {
    if (workers_.empty()) {
      task(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void WaitIdle() {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Pool-backed parallel-for with dynamic chunking: fn(begin, end, worker)
  /// over [0, total) in chunks of `chunk` claimed from a shared cursor.
  /// Blocks until the whole range is processed. Must not be called
  /// concurrently with other Submit/ParallelFor uses of the same pool.
  void ParallelFor(uint64_t total, uint64_t chunk,
                   const std::function<void(uint64_t, uint64_t, uint32_t)>& fn) {
    if (total == 0) return;
    if (chunk == 0) chunk = 1;
    if (workers_.empty()) {
      for (uint64_t b = 0; b < total; b += chunk) fn(b, std::min(b + chunk, total), 0);
      return;
    }
    std::atomic<uint64_t> cursor{0};
    auto drain = [&cursor, total, chunk, &fn](uint32_t worker) {
      for (;;) {
        uint64_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= total) break;
        fn(begin, std::min(begin + chunk, total), worker);
      }
    };
    for (uint32_t t = 0; t < size(); ++t) Submit(drain);
    WaitIdle();
  }

 private:
  void WorkerLoop(uint32_t index) {
    for (;;) {
      std::function<void(uint32_t)> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task(index);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< work available / stopping
  std::condition_variable idle_cv_;  ///< pending_ reached zero
  std::deque<std::function<void(uint32_t)>> queue_;
  uint64_t pending_ = 0;
  bool stopping_ = false;
};

/// Runs fn(begin, end, thread_index) over [0, total) split into dynamic
/// chunks of `chunk` items claimed by `num_threads` workers.
inline void ParallelForDynamic(uint32_t num_threads, uint64_t total, uint64_t chunk,
                               const std::function<void(uint64_t, uint64_t, uint32_t)>& fn) {
  if (total == 0) return;
  if (chunk == 0) chunk = 1;
  if (num_threads <= 1) {
    for (uint64_t b = 0; b < total; b += chunk) fn(b, std::min(b + chunk, total), 0);
    return;
  }
  std::atomic<uint64_t> cursor{0};
  auto worker = [&](uint32_t tid) {
    for (;;) {
      uint64_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= total) break;
      fn(begin, std::min(begin + chunk, total), tid);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
}

/// Static pre-partitioned variant: thread t processes the contiguous slice
/// [t*total/n, (t+1)*total/n). Used by the §5.2 work-distribution ablation;
/// suffers from skew when per-item work varies.
inline void ParallelForStatic(uint32_t num_threads, uint64_t total,
                              const std::function<void(uint64_t, uint64_t, uint32_t)>& fn) {
  if (total == 0) return;
  if (num_threads <= 1) {
    fn(0, total, 0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    uint64_t begin = total * t / num_threads;
    uint64_t end = total * (t + 1) / num_threads;
    if (begin < end) threads.emplace_back(fn, begin, end, t);
  }
  for (auto& t : threads) t.join();
}

}  // namespace turbo::util
