// Parallel-for with dynamic chunking. Implements the paper's Section 5.2
// work distribution: starting data vertices are handed to threads in small
// chunks claimed from a shared atomic cursor, so skewed candidate-region
// sizes (the "universities with very different numbers of students" problem)
// do not unbalance the threads.
//
// NUMA substitution note: the paper pins threads to sockets and interleaves
// graph pages across sockets. This VM exposes a single memory domain, so the
// placement part is a no-op here; the dynamic-chunking logic — which is what
// Figure 16 actually exercises — is implemented faithfully.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace turbo::util {

/// Runs fn(begin, end, thread_index) over [0, total) split into dynamic
/// chunks of `chunk` items claimed by `num_threads` workers.
inline void ParallelForDynamic(uint32_t num_threads, uint64_t total, uint64_t chunk,
                               const std::function<void(uint64_t, uint64_t, uint32_t)>& fn) {
  if (total == 0) return;
  if (chunk == 0) chunk = 1;
  if (num_threads <= 1) {
    for (uint64_t b = 0; b < total; b += chunk) fn(b, std::min(b + chunk, total), 0);
    return;
  }
  std::atomic<uint64_t> cursor{0};
  auto worker = [&](uint32_t tid) {
    for (;;) {
      uint64_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= total) break;
      fn(begin, std::min(begin + chunk, total), tid);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
}

/// Static pre-partitioned variant: thread t processes the contiguous slice
/// [t*total/n, (t+1)*total/n). Used by the §5.2 work-distribution ablation;
/// suffers from skew when per-item work varies.
inline void ParallelForStatic(uint32_t num_threads, uint64_t total,
                              const std::function<void(uint64_t, uint64_t, uint32_t)>& fn) {
  if (total == 0) return;
  if (num_threads <= 1) {
    fn(0, total, 0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    uint64_t begin = total * t / num_threads;
    uint64_t end = total * (t + 1) / num_threads;
    if (begin < end) threads.emplace_back(fn, begin, end, t);
  }
  for (auto& t : threads) t.join();
}

}  // namespace turbo::util
