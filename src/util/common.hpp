// Common identifier types shared across the TurboHOM++ code base.
#pragma once

#include <cstdint>
#include <limits>

namespace turbo {

/// Identifier of a data-graph vertex (dense, 0-based).
using VertexId = uint32_t;
/// Identifier of a vertex label (an RDF type after type-aware transformation).
using LabelId = uint32_t;
/// Identifier of an edge label (an RDF predicate).
using EdgeLabelId = uint32_t;
/// Identifier of a dictionary-encoded RDF term.
using TermId = uint32_t;

/// Sentinel for "no id" / "blank" in all id domains.
inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

}  // namespace turbo
