// Deterministic, seedable pseudo-random generator for the workload
// generators. splitmix64 core: tiny state, excellent distribution, and the
// stream is stable across platforms (unlike std::mt19937 + distributions).
#pragma once

#include <cstdint>

namespace turbo::util {

/// Deterministic RNG. Same seed => same stream on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Next() % (hi - lo + 1); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace turbo::util
