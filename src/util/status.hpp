// Minimal Status / Result error-propagation types (library code avoids
// exceptions per the database-C++ style used throughout this project).
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace turbo::util {

/// Outcome of an operation that can fail with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status carrying a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }
  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  /// Message of an error status; empty string for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return error_ ? *error_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : error_(std::move(message)) {}
  std::optional<std::string> error_;
};

/// Value-or-error. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T take() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace turbo::util
