// Sorted-set kernels used throughout the matcher: membership, two-way and
// k-way intersection, union. These implement the "+INT" optimization of the
// paper (Section 4.3): a bulk IsJoinable test is one k-way intersection whose
// strategy adapts between linear merging and galloping binary search, so the
// cost is min(O(|CR| + sum |adj_i|), O(|CR| * sum log |adj_i|)).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace turbo::util {

/// Binary-search membership test on a sorted ascending array.
inline bool SortedContains(std::span<const uint32_t> sorted, uint32_t x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

/// Galloping (exponential) lower bound: index of first element >= x,
/// starting the probe at `hint`. O(log d) where d is the distance.
inline size_t GallopLowerBound(std::span<const uint32_t> a, size_t hint, uint32_t x) {
  size_t n = a.size();
  if (hint >= n || a[hint] >= x) {
    // Still gallop backwards-free: hint is a lower start; a[hint] >= x means hint itself.
    return hint <= n ? hint : n;
  }
  size_t step = 1;
  size_t lo = hint;
  size_t hi = hint + step;
  while (hi < n && a[hi] < x) {
    lo = hi;
    step <<= 1;
    hi = hint + step;
  }
  if (hi > n) hi = n;
  return std::lower_bound(a.begin() + lo + 1, a.begin() + hi, x) - a.begin();
}

/// Intersects two sorted ascending arrays into `out` (cleared first).
/// Adaptive: linear merge when sizes are comparable, galloping probes from
/// the smaller into the larger when they are not.
inline void IntersectInto(std::span<const uint32_t> a, std::span<const uint32_t> b,
                          std::vector<uint32_t>* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size()) std::swap(a, b);
  // `a` is the smaller side now.
  if (b.size() / (a.size() + 1) >= 16) {
    // Gallop each element of a into b.
    size_t pos = 0;
    for (uint32_t x : a) {
      pos = GallopLowerBound(b, pos, x);
      if (pos == b.size()) break;
      if (b[pos] == x) out->push_back(x);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (vb < va) {
      ++j;
    } else {
      out->push_back(va);
      ++i;
      ++j;
    }
  }
}

/// K-way intersection of sorted ascending arrays; result in `out`.
/// Intersects smallest-first to keep intermediates minimal.
inline void IntersectKWay(std::vector<std::span<const uint32_t>> lists,
                          std::vector<uint32_t>* out) {
  out->clear();
  if (lists.empty()) return;
  std::sort(lists.begin(), lists.end(),
            [](const auto& x, const auto& y) { return x.size() < y.size(); });
  std::vector<uint32_t> tmp(lists[0].begin(), lists[0].end());
  std::vector<uint32_t> next;
  for (size_t k = 1; k < lists.size() && !tmp.empty(); ++k) {
    IntersectInto(tmp, lists[k], &next);
    tmp.swap(next);
  }
  out->swap(tmp);
}

/// Union of sorted ascending arrays, deduplicated, into `out`.
inline void UnionInto(const std::vector<std::span<const uint32_t>>& lists,
                      std::vector<uint32_t>* out) {
  out->clear();
  size_t total = 0;
  for (const auto& l : lists) total += l.size();
  out->reserve(total);
  for (const auto& l : lists) out->insert(out->end(), l.begin(), l.end());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

/// In-place: keeps only elements of `v` (sorted) also present in `other`.
inline void IntersectInPlace(std::vector<uint32_t>* v, std::span<const uint32_t> other) {
  std::vector<uint32_t> out;
  IntersectInto(*v, other, &out);
  v->swap(out);
}

}  // namespace turbo::util
