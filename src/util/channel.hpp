// Bounded MPSC channel for producer/consumer row delivery.
//
// The streaming cursor runs the operator pipeline on a producer thread and
// pops delivered rows at the consumer's pace; this channel is the handoff.
// Both ends block on condition variables. A caller that has an abort source
// the channel cannot see (a cancel token or a deadline — nothing ever
// notifies the condvar for those) passes an abort predicate, and the wait is
// sliced so the predicate is polled even while the producer is parked on a
// full channel or the consumer on an empty one. A caller with no such
// source uses the predicate-free overloads, which block in a plain
// untimed wait: every event that can end the wait (an item arriving, either
// end closing) notifies the condvar, so timed polling would be pure wasted
// wakeups. timed_wait_slices() counts the sliced waits so tests can assert
// the abort-free path never spuriously wakes.
//
// Protocol:
//   - producer: Push(...) until done or aborted, then CloseProducer().
//   - consumer: Pop(...) until kClosed, or CloseConsumer() to walk away —
//     that drops any buffered rows and turns every subsequent Push into
//     kClosed, which the pipeline treats like a LIMIT-style kStop.
//     CloseConsumer also wakes a producer blocked in an untimed Push, which
//     is why cursor abandonment needs no timed probe.
//
// Multiple producers are safe (parallel solver workers each reach the
// ChannelSink under the engine's delivery mutex today, but the channel does
// not rely on that); there must be at most one consumer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace turbo::util {

template <typename T>
class Channel {
 public:
  enum class Op : uint8_t {
    kOk,       ///< item transferred
    kClosed,   ///< Push: consumer walked away; Pop: producer done and empty
    kAborted,  ///< the abort predicate fired while blocked
  };

  explicit Channel(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. `abort()` is polled every wait slice;
  /// returning true abandons the push. The item is consumed only on kOk.
  template <typename AbortFn>
  Op Push(T item, AbortFn&& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (consumer_closed_) return Op::kClosed;
      if (items_.size() < cap_) break;
      if (abort()) return Op::kAborted;
      ++timed_wait_slices_;
      not_full_.wait_for(lock, kWaitSlice);
    }
    DoPush(std::move(item), &lock);
    return Op::kOk;
  }

  /// Abort-free push: blocks untimed while the channel is full. Only a
  /// consumer event can end the wait (space freed by Pop, or CloseConsumer),
  /// and both notify — no polling, no spurious timed wakeups.
  Op Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return consumer_closed_ || items_.size() < cap_; });
    if (consumer_closed_) return Op::kClosed;
    DoPush(std::move(item), &lock);
    return Op::kOk;
  }

  /// Blocks while the channel is empty and the producer side is still open.
  /// kClosed means end-of-stream: every pushed item has been popped.
  template <typename AbortFn>
  Op Pop(T* out, AbortFn&& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!items_.empty()) break;
      if (producer_closed_) return Op::kClosed;
      if (abort()) return Op::kAborted;
      ++timed_wait_slices_;
      not_empty_.wait_for(lock, kWaitSlice);
    }
    DoPop(out, &lock);
    return Op::kOk;
  }

  /// Abort-free pop: blocks untimed until an item arrives or the producer
  /// closes — both producer events notify, so no timed polling is needed.
  Op Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return producer_closed_ || !items_.empty(); });
    if (items_.empty()) return Op::kClosed;
    DoPop(out, &lock);
    return Op::kOk;
  }

  /// End of stream: the consumer drains what is buffered, then sees kClosed.
  void CloseProducer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      producer_closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Consumer walks away: buffered rows are dropped and blocked producers
  /// wake with kClosed. Pairs with the cursor's teardown path.
  void CloseConsumer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      consumer_closed_ = true;
      items_.clear();
    }
    not_full_.notify_all();
  }

  size_t capacity() const { return cap_; }

  /// High-water mark of buffered items, for peak_buffered_rows() accounting.
  uint64_t peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

  /// Number of sliced (timed) waits taken so far. Zero on the abort-free
  /// Push/Pop overloads by construction — the busy-wakeup regression guard.
  uint64_t timed_wait_slices() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timed_wait_slices_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  // Short enough that deadlines are observed promptly, long enough that an
  // idle blocked end costs nothing measurable.
  static constexpr std::chrono::milliseconds kWaitSlice{2};

  void DoPush(T item, std::unique_lock<std::mutex>* lock) {
    items_.push_back(std::move(item));
    if (items_.size() > peak_) peak_ = items_.size();
    lock->unlock();
    not_empty_.notify_one();
  }

  void DoPop(T* out, std::unique_lock<std::mutex>* lock) {
    *out = std::move(items_.front());
    items_.pop_front();
    lock->unlock();
    not_full_.notify_one();
  }

  const size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  uint64_t peak_ = 0;
  uint64_t timed_wait_slices_ = 0;
  bool producer_closed_ = false;
  bool consumer_closed_ = false;
};

}  // namespace turbo::util
