// Bounded MPSC channel for producer/consumer row delivery.
//
// The streaming cursor runs the operator pipeline on a producer thread and
// pops delivered rows at the consumer's pace; this channel is the handoff.
// Both ends block on condition variables, but every wait is sliced so a
// caller-supplied abort predicate (cancel token, deadline, abandoned cursor)
// is observed even while the producer is parked on a full channel or the
// consumer on an empty one — no external signal ever has to wake the
// condvar for the stop to be noticed.
//
// Protocol:
//   - producer: Push(...) until done or aborted, then CloseProducer().
//   - consumer: Pop(...) until kClosed, or CloseConsumer() to walk away —
//     that drops any buffered rows and turns every subsequent Push into
//     kClosed, which the pipeline treats like a LIMIT-style kStop.
//
// Multiple producers are safe (parallel solver workers each reach the
// ChannelSink under the engine's delivery mutex today, but the channel does
// not rely on that); there must be at most one consumer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace turbo::util {

template <typename T>
class Channel {
 public:
  enum class Op : uint8_t {
    kOk,       ///< item transferred
    kClosed,   ///< Push: consumer walked away; Pop: producer done and empty
    kAborted,  ///< the abort predicate fired while blocked
  };

  explicit Channel(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. `abort()` is polled every wait slice;
  /// returning true abandons the push. The item is consumed only on kOk.
  template <typename AbortFn>
  Op Push(T item, AbortFn&& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (consumer_closed_) return Op::kClosed;
      if (items_.size() < cap_) break;
      if (abort()) return Op::kAborted;
      not_full_.wait_for(lock, kWaitSlice);
    }
    items_.push_back(std::move(item));
    if (items_.size() > peak_) peak_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return Op::kOk;
  }

  /// Blocks while the channel is empty and the producer side is still open.
  /// kClosed means end-of-stream: every pushed item has been popped.
  template <typename AbortFn>
  Op Pop(T* out, AbortFn&& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!items_.empty()) break;
      if (producer_closed_) return Op::kClosed;
      if (abort()) return Op::kAborted;
      not_empty_.wait_for(lock, kWaitSlice);
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return Op::kOk;
  }

  /// End of stream: the consumer drains what is buffered, then sees kClosed.
  void CloseProducer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      producer_closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Consumer walks away: buffered rows are dropped and blocked producers
  /// wake with kClosed. Pairs with the cursor's teardown path.
  void CloseConsumer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      consumer_closed_ = true;
      items_.clear();
    }
    not_full_.notify_all();
  }

  size_t capacity() const { return cap_; }

  /// High-water mark of buffered items, for peak_buffered_rows() accounting.
  uint64_t peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  // Short enough that deadlines are observed promptly, long enough that an
  // idle blocked end costs nothing measurable.
  static constexpr std::chrono::milliseconds kWaitSlice{2};

  const size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  uint64_t peak_ = 0;
  bool producer_closed_ = false;
  bool consumer_closed_ = false;
};

}  // namespace turbo::util
