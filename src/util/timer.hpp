// Wall-clock timer used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace turbo::util {

/// Measures elapsed wall-clock time in milliseconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace turbo::util
