#include "baseline/triple_index.hpp"

#include <algorithm>

namespace turbo::baseline {

namespace {

/// Sorts `v` by the (a, b, c) component projection.
template <typename KeyFn>
void SortBy(std::vector<rdf::Triple>* v, KeyFn key) {
  std::sort(v->begin(), v->end(), [&](const rdf::Triple& x, const rdf::Triple& y) {
    return key(x) < key(y);
  });
}

using Key = std::tuple<TermId, TermId, TermId>;

/// Binary-search range of triples whose `key` projection has the given
/// prefix (kInvalidId components in `hi`/`lo` act as -inf / +inf).
template <typename KeyFn>
std::span<const rdf::Triple> PrefixRange(const std::vector<rdf::Triple>& v, KeyFn key,
                                         TermId k1, TermId k2, TermId k3) {
  Key lo{k1 == kInvalidId ? 0 : k1, k2 == kInvalidId ? 0 : k2, k3 == kInvalidId ? 0 : k3};
  Key hi{k1 == kInvalidId ? kInvalidId : k1, k2 == kInvalidId ? kInvalidId : k2,
         k3 == kInvalidId ? kInvalidId : k3};
  auto first = std::lower_bound(v.begin(), v.end(), lo, [&](const rdf::Triple& t, const Key& k) {
    return key(t) < k;
  });
  auto last = std::upper_bound(v.begin(), v.end(), hi, [&](const Key& k, const rdf::Triple& t) {
    return k < key(t);
  });
  if (first >= last) return {};
  return {&*first, static_cast<size_t>(last - first)};
}

}  // namespace

TripleIndex::TripleIndex(const rdf::Dataset& dataset)
    : TripleIndex(dataset.triples()) {}

TripleIndex::TripleIndex(std::vector<rdf::Triple> triples) {
  spo_ = std::move(triples);
  std::sort(spo_.begin(), spo_.end());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  sop_ = spo_;
  pso_ = spo_;
  pos_ = spo_;
  osp_ = spo_;
  ops_ = spo_;
  SortBy(&sop_, [](const rdf::Triple& t) { return Key{t.s, t.o, t.p}; });
  SortBy(&pso_, [](const rdf::Triple& t) { return Key{t.p, t.s, t.o}; });
  SortBy(&pos_, [](const rdf::Triple& t) { return Key{t.p, t.o, t.s}; });
  SortBy(&osp_, [](const rdf::Triple& t) { return Key{t.o, t.s, t.p}; });
  SortBy(&ops_, [](const rdf::Triple& t) { return Key{t.o, t.p, t.s}; });
}

std::span<const rdf::Triple> TripleIndex::Lookup(TermId s, TermId p, TermId o) const {
  const bool bs = s != kInvalidId, bp = p != kInvalidId, bo = o != kInvalidId;
  auto spo = [](const rdf::Triple& t) { return Key{t.s, t.p, t.o}; };
  auto sop = [](const rdf::Triple& t) { return Key{t.s, t.o, t.p}; };
  auto pso = [](const rdf::Triple& t) { return Key{t.p, t.s, t.o}; };
  auto pos = [](const rdf::Triple& t) { return Key{t.p, t.o, t.s}; };
  auto osp = [](const rdf::Triple& t) { return Key{t.o, t.s, t.p}; };
  if (bs && bp) return PrefixRange(spo_, spo, s, p, o);              // s p (o?)
  if (bs && bo) return PrefixRange(sop_, sop, s, o, kInvalidId);     // s o
  if (bs) return PrefixRange(spo_, spo, s, kInvalidId, kInvalidId);  // s
  if (bp && bo) return PrefixRange(pos_, pos, p, o, kInvalidId);     // p o
  if (bp) return PrefixRange(pso_, pso, p, kInvalidId, kInvalidId);  // p
  if (bo) return PrefixRange(osp_, osp, o, kInvalidId, kInvalidId);  // o
  return {spo_.data(), spo_.size()};                                 // full scan
}

}  // namespace turbo::baseline
