// Baseline BGP engines standing in for the paper's competitors (§7.1):
//
//  * SortMergeBgpSolver — RDF-3X stand-in: materializes one relation per
//    triple pattern by an index range scan over the six-permutation store,
//    then joins relations smallest-first (hash joins on shared variables).
//    Its cost is driven by scan sizes, which grow with the dataset — exactly
//    the behaviour the paper reports for RDF-3X on the constant-solution
//    LUBM queries (Table 3).
//
//  * IndexJoinBgpSolver — "System-X" stand-in: selectivity-ordered index
//    nested-loop join, probing one pattern at a time. Nearly constant on
//    point queries, expensive when intermediate results are large (the
//    paper's Q2/Q9 observations).
//
// Both operate directly on the dictionary-encoded triples (rdf:type is an
// ordinary predicate to them), so they must be given the inference-closed
// dataset — the same data every engine loads in the paper's setup.
#pragma once

#include "baseline/triple_index.hpp"
#include "sparql/solver.hpp"

namespace turbo::baseline {

class SortMergeBgpSolver : public sparql::BgpSolver {
 public:
  SortMergeBgpSolver(const TripleIndex& index, const rdf::Dictionary& dict)
      : index_(index), dict_(dict) {}

  util::Status Evaluate(const std::vector<sparql::TriplePattern>& bgp,
                        const sparql::VarRegistry& vars, const sparql::Row& bound,
                        const std::vector<const sparql::FilterExpr*>& pushable,
                        const sparql::RowSink& emit,
                        const sparql::EvalControl& control = {}) const override;

  const rdf::Dictionary& dict() const override { return dict_; }

 private:
  const TripleIndex& index_;
  const rdf::Dictionary& dict_;
};

class IndexJoinBgpSolver : public sparql::BgpSolver {
 public:
  IndexJoinBgpSolver(const TripleIndex& index, const rdf::Dictionary& dict)
      : index_(index), dict_(dict) {}

  util::Status Evaluate(const std::vector<sparql::TriplePattern>& bgp,
                        const sparql::VarRegistry& vars, const sparql::Row& bound,
                        const std::vector<const sparql::FilterExpr*>& pushable,
                        const sparql::RowSink& emit,
                        const sparql::EvalControl& control = {}) const override;

  const rdf::Dictionary& dict() const override { return dict_; }

 private:
  const TripleIndex& index_;
  const rdf::Dictionary& dict_;
};

}  // namespace turbo::baseline
