// Six-permutation sorted triple index, the storage scheme of RDF-3X
// ("materializes six different orderings for the EDGE(S,P,O) table", §1).
// Any subset of bound components is served by the permutation having that
// subset as a sort prefix, so every triple-pattern lookup is a binary-search
// range scan.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "rdf/dataset.hpp"
#include "util/common.hpp"

namespace turbo::baseline {

class TripleIndex {
 public:
  /// Builds the index over all (original + inferred) triples, deduplicated.
  explicit TripleIndex(const rdf::Dataset& dataset);

  /// Builds the index over an explicit triple list (deduplicated) — the
  /// live store's delta index over update-appended triples.
  explicit TripleIndex(std::vector<rdf::Triple> triples);

  /// Triples matching the pattern; kInvalidId = free component. Every
  /// subset of bound components is a sort prefix of one permutation, so the
  /// returned range is exact (no post-filtering needed).
  std::span<const rdf::Triple> Lookup(TermId s, TermId p, TermId o) const;

  /// Cardinality of Lookup without materializing.
  uint64_t Count(TermId s, TermId p, TermId o) const { return Lookup(s, p, o).size(); }

  size_t size() const { return spo_.size(); }

 private:
  // Permutations named by sort order; each stores full triples.
  std::vector<rdf::Triple> spo_, sop_, pso_, pos_, osp_, ops_;
};

}  // namespace turbo::baseline
