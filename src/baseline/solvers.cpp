#include "baseline/solvers.hpp"

#include <algorithm>
#include <unordered_map>

namespace turbo::baseline {

namespace {

using sparql::EmitResult;
using sparql::EvalControl;
using sparql::PatternTerm;
using sparql::Row;
using sparql::RowSink;
using sparql::TriplePattern;
using sparql::VarRegistry;

/// Amortized cancellation probe: checks the control signals once every 4096
/// calls so the per-row cost stays negligible.
class ControlTicker {
 public:
  explicit ControlTicker(const EvalControl& control) : control_(control) {}
  util::Status Tick() {
    if ((++count_ & 0xFFF) == 0) return control_.Check();
    return util::Status::Ok();
  }

 private:
  const EvalControl& control_;
  uint64_t count_ = 0;
};

/// One position of a resolved pattern: a constant term id or a variable
/// index (constants include variables pre-bound by the executor).
struct Slot {
  TermId term = kInvalidId;  ///< constant value, if var < 0
  int var = -1;

  bool is_var() const { return var >= 0; }
};

struct ResolvedPattern {
  Slot s, p, o;
};

/// Resolves pattern positions against the dictionary and the bound row.
/// Returns false if a constant is not in the dictionary (zero results).
bool Resolve(const std::vector<TriplePattern>& bgp, const VarRegistry& vars,
             const Row& bound, const rdf::Dictionary& dict,
             std::vector<ResolvedPattern>* out) {
  auto slot = [&](const PatternTerm& pt, Slot* s) {
    if (pt.is_var()) {
      int vi = *vars.Find(pt.var);
      if (static_cast<size_t>(vi) < bound.size() && bound[vi] != kInvalidId) {
        s->term = bound[vi];
      } else {
        s->var = vi;
      }
      return true;
    }
    auto t = dict.Find(pt.term);
    if (!t) return false;
    s->term = *t;
    return true;
  };
  for (const TriplePattern& tp : bgp) {
    ResolvedPattern rp;
    if (!slot(tp.s, &rp.s) || !slot(tp.p, &rp.p) || !slot(tp.o, &rp.o)) return false;
    out->push_back(rp);
  }
  return true;
}

/// Binds a triple's component into `row`; false on conflict with an
/// existing binding (repeated variables).
bool Bind(Row* row, const Slot& slot, TermId value, std::vector<int>* newly) {
  if (!slot.is_var()) return slot.term == value;
  TermId& cell = (*row)[slot.var];
  if (cell == kInvalidId) {
    cell = value;
    newly->push_back(slot.var);
    return true;
  }
  return cell == value;
}

uint64_t HashKey(const Row& row, const std::vector<int>& key_vars) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int v : key_vars) {
    h ^= row[v] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// SortMergeBgpSolver
// ---------------------------------------------------------------------------

util::Status SortMergeBgpSolver::Evaluate(
    const std::vector<TriplePattern>& bgp, const VarRegistry& vars, const Row& bound,
    const std::vector<const sparql::FilterExpr*>& /*pushable: executor re-checks*/,
    const RowSink& emit, const EvalControl& control) const {
  std::vector<ResolvedPattern> patterns;
  if (!Resolve(bgp, vars, bound, dict_, &patterns)) return util::Status::Ok();
  ControlTicker ticker(control);

  struct Relation {
    std::vector<int> vars;  // variables bound by this relation (sorted)
    std::vector<Row> rows;
  };

  // Materialize one relation per pattern via an index range scan.
  std::vector<Relation> rels;
  Row seed = bound;
  seed.resize(vars.size(), kInvalidId);
  for (const ResolvedPattern& rp : patterns) {
    Relation rel;
    auto span = index_.Lookup(rp.s.is_var() ? kInvalidId : rp.s.term,
                              rp.p.is_var() ? kInvalidId : rp.p.term,
                              rp.o.is_var() ? kInvalidId : rp.o.term);
    for (const rdf::Triple& t : span) {
      if (auto st = ticker.Tick(); !st.ok()) return st;
      Row row = seed;
      std::vector<int> newly;
      if (Bind(&row, rp.s, t.s, &newly) && Bind(&row, rp.p, t.p, &newly) &&
          Bind(&row, rp.o, t.o, &newly)) {
        rel.rows.push_back(std::move(row));
      }
    }
    for (const Slot* s : {&rp.s, &rp.p, &rp.o})
      if (s->is_var()) rel.vars.push_back(s->var);
    std::sort(rel.vars.begin(), rel.vars.end());
    rel.vars.erase(std::unique(rel.vars.begin(), rel.vars.end()), rel.vars.end());
    if (rel.rows.empty()) return util::Status::Ok();
    rels.push_back(std::move(rel));
  }
  if (rels.empty()) {
    emit(seed);
    return util::Status::Ok();
  }

  // Greedy join order: start from the smallest relation; always prefer a
  // relation sharing a variable with the accumulated result.
  std::vector<bool> used(rels.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < rels.size(); ++i)
    if (rels[i].rows.size() < rels[first].rows.size()) first = i;
  used[first] = true;
  Relation cur = std::move(rels[first]);

  for (size_t step = 1; step < rels.size(); ++step) {
    size_t best = SIZE_MAX;
    bool best_shares = false;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (used[i]) continue;
      bool shares = false;
      for (int v : rels[i].vars)
        if (std::binary_search(cur.vars.begin(), cur.vars.end(), v)) shares = true;
      if (best == SIZE_MAX || (shares && !best_shares) ||
          (shares == best_shares && rels[i].rows.size() < rels[best].rows.size())) {
        best = i;
        best_shares = shares;
      }
    }
    Relation& nxt = rels[best];
    used[best] = true;

    std::vector<int> shared;
    for (int v : nxt.vars)
      if (std::binary_search(cur.vars.begin(), cur.vars.end(), v)) shared.push_back(v);

    Relation joined;
    joined.vars = cur.vars;
    for (int v : nxt.vars) joined.vars.push_back(v);
    std::sort(joined.vars.begin(), joined.vars.end());
    joined.vars.erase(std::unique(joined.vars.begin(), joined.vars.end()),
                      joined.vars.end());

    if (shared.empty()) {
      // Cartesian product.
      for (const Row& a : cur.rows)
        for (const Row& b : nxt.rows) {
          if (auto st = ticker.Tick(); !st.ok()) return st;
          Row merged = a;
          for (int v : nxt.vars) merged[v] = b[v];
          joined.rows.push_back(std::move(merged));
        }
    } else {
      // Hash join on the shared variables (build on the smaller side).
      const bool build_next = nxt.rows.size() <= cur.rows.size();
      const std::vector<Row>& build = build_next ? nxt.rows : cur.rows;
      const std::vector<Row>& probe = build_next ? cur.rows : nxt.rows;
      std::unordered_multimap<uint64_t, const Row*> table;
      table.reserve(build.size());
      for (const Row& r : build) table.emplace(HashKey(r, shared), &r);
      const std::vector<int>& other_vars = build_next ? nxt.vars : cur.vars;
      for (const Row& r : probe) {
        if (auto st = ticker.Tick(); !st.ok()) return st;
        auto [lo, hi] = table.equal_range(HashKey(r, shared));
        for (auto it = lo; it != hi; ++it) {
          const Row& b = *it->second;
          bool ok = true;
          for (int v : shared)
            if (b[v] != r[v]) {
              ok = false;
              break;
            }
          if (!ok) continue;
          Row merged = r;
          for (int v : other_vars) merged[v] = b[v];
          joined.rows.push_back(std::move(merged));
        }
      }
    }
    if (joined.rows.empty()) return util::Status::Ok();
    cur = std::move(joined);
  }
  for (const Row& r : cur.rows)
    if (emit(r) == EmitResult::kStop) break;
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// IndexJoinBgpSolver
// ---------------------------------------------------------------------------

util::Status IndexJoinBgpSolver::Evaluate(
    const std::vector<TriplePattern>& bgp, const VarRegistry& vars, const Row& bound,
    const std::vector<const sparql::FilterExpr*>& /*pushable: executor re-checks*/,
    const RowSink& emit, const EvalControl& control) const {
  std::vector<ResolvedPattern> patterns;
  if (!Resolve(bgp, vars, bound, dict_, &patterns)) return util::Status::Ok();
  if (patterns.empty()) {
    Row seed = bound;
    seed.resize(vars.size(), kInvalidId);
    emit(seed);
    return util::Status::Ok();
  }
  ControlTicker ticker(control);

  // Selectivity-ordered greedy plan: repeatedly take the cheapest pattern,
  // preferring ones connected to already-bound variables.
  std::vector<size_t> order;
  std::vector<bool> used(patterns.size(), false);
  std::vector<bool> var_bound(vars.size(), false);
  for (size_t i = 0; i < bound.size(); ++i)
    if (bound[i] != kInvalidId) var_bound[i] = true;

  auto estimate = [&](const ResolvedPattern& rp) {
    return index_.Count(rp.s.is_var() ? kInvalidId : rp.s.term,
                        rp.p.is_var() ? kInvalidId : rp.p.term,
                        rp.o.is_var() ? kInvalidId : rp.o.term);
  };
  auto connected = [&](const ResolvedPattern& rp) {
    for (const Slot* s : {&rp.s, &rp.p, &rp.o})
      if (s->is_var() && var_bound[s->var]) return true;
    return false;
  };
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = SIZE_MAX;
    bool best_conn = false;
    uint64_t best_cost = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      bool conn = connected(patterns[i]);
      uint64_t cost = estimate(patterns[i]);
      if (best == SIZE_MAX || (conn && !best_conn) ||
          (conn == best_conn && cost < best_cost)) {
        best = i;
        best_conn = conn;
        best_cost = cost;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Slot* s : {&patterns[best].s, &patterns[best].p, &patterns[best].o})
      if (s->is_var()) var_bound[s->var] = true;
  }

  Row row = bound;
  row.resize(vars.size(), kInvalidId);

  // Depth-first index nested-loop join; a kStop from the sink (or a tripped
  // control signal, surfaced via `abort_status`) unwinds the whole probe.
  util::Status abort_status;
  std::function<EmitResult(size_t)> probe = [&](size_t depth) -> EmitResult {
    if (depth == order.size()) return emit(row);
    const ResolvedPattern& rp = patterns[order[depth]];
    auto value_of = [&](const Slot& s) {
      if (!s.is_var()) return s.term;
      return row[s.var];  // kInvalidId if still free
    };
    auto span = index_.Lookup(value_of(rp.s), value_of(rp.p), value_of(rp.o));
    for (const rdf::Triple& t : span) {
      if (auto st = ticker.Tick(); !st.ok()) {
        abort_status = st;
        return EmitResult::kStop;
      }
      std::vector<int> newly;
      EmitResult er = EmitResult::kContinue;
      if (Bind(&row, rp.s, t.s, &newly) && Bind(&row, rp.p, t.p, &newly) &&
          Bind(&row, rp.o, t.o, &newly)) {
        er = probe(depth + 1);
      }
      for (int v : newly) row[v] = kInvalidId;
      if (er == EmitResult::kStop) return EmitResult::kStop;
    }
    return EmitResult::kContinue;
  };
  probe(0);
  return abort_status;
}

}  // namespace turbo::baseline
