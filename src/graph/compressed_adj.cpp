#include "graph/compressed_adj.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif

namespace turbo::graph {

namespace {

inline unsigned ByteLen(uint32_t v) {
  return v < (1u << 8) ? 1 : v < (1u << 16) ? 2 : v < (1u << 24) ? 3 : 4;
}

constexpr uint32_t kLenMask[5] = {0, 0xffu, 0xffffu, 0xffffffu, 0xffffffffu};

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

#if defined(__SSSE3__)
/// Per-control-byte pshufb mask scattering the 4 packed payloads into 4
/// uint32 lanes (0x80 zero-fills the high bytes), plus the payload length.
struct ShuffleEntry {
  uint8_t mask[16];
  uint8_t total;
};

std::array<ShuffleEntry, 256> BuildShuffleTable() {
  std::array<ShuffleEntry, 256> t{};
  for (int c = 0; c < 256; ++c) {
    uint8_t src = 0;
    for (int k = 0; k < 4; ++k) {
      unsigned len = ((static_cast<unsigned>(c) >> (2 * k)) & 3) + 1;
      for (unsigned b = 0; b < 4; ++b)
        t[c].mask[4 * k + b] = b < len ? static_cast<uint8_t>(src + b) : 0x80;
      src = static_cast<uint8_t>(src + len);
    }
    t[c].total = src;
  }
  return t;
}

const std::array<ShuffleEntry, 256> kShuffle = BuildShuffleTable();
#endif  // __SSSE3__

/// Decodes one chunk of `count` (< 4 allowed only for the final chunk)
/// values the portable way. Returns payload bytes consumed.
inline size_t DecodeChunkScalar(uint8_t ctrl, const uint8_t* p, size_t count,
                                uint32_t* prev, bool* first, uint32_t* out) {
  const uint8_t* start = p;
  for (size_t k = 0; k < count; ++k) {
    unsigned len = ((ctrl >> (2 * k)) & 3) + 1;
    uint32_t raw = LoadLE32(p) & kLenMask[len];
    p += len;
    *prev = *first ? raw : *prev + raw + 1;
    *first = false;
    out[k] = *prev;
  }
  return static_cast<size_t>(p - start);
}

}  // namespace

void EncodeSortedList(std::span<const uint32_t> values, std::vector<uint8_t>* bytes,
                      std::vector<SkipEntry>* skips) {
  const size_t list_start = bytes->size();
  const size_t n = values.size();
  size_t i = 0;
  while (i < n) {
    if (i > 0 && skips != nullptr)
      skips->push_back({values[i], static_cast<uint32_t>(bytes->size() - list_start)});
    const size_t block_end = std::min(i + kSkipBlock, n);
    uint32_t prev = 0;
    bool first = true;
    while (i < block_end) {
      const size_t chunk = std::min<size_t>(4, block_end - i);
      const size_t ctrl_pos = bytes->size();
      bytes->push_back(0);
      uint8_t ctrl = 0;
      for (size_t k = 0; k < chunk; ++k) {
        uint32_t raw = first ? values[i] : values[i] - prev - 1;
        prev = values[i];
        first = false;
        unsigned len = ByteLen(raw);
        ctrl |= static_cast<uint8_t>((len - 1) << (2 * k));
        for (unsigned b = 0; b < len; ++b)
          bytes->push_back(static_cast<uint8_t>(raw >> (8 * b)));
        ++i;
      }
      (*bytes)[ctrl_pos] = ctrl;
    }
  }
}

size_t DecodeSortedList(const uint8_t* bytes, size_t n, uint32_t* out) {
  const uint8_t* p = bytes;
  size_t i = 0;
  while (i < n) {
    const size_t block_end = std::min(i + kSkipBlock, n);
    uint32_t prev = 0;
    bool first = true;
#if defined(__SSSE3__)
    while (i + 4 <= block_end) {
      const ShuffleEntry& e = kShuffle[*p++];
      __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      __m128i vals = _mm_shuffle_epi8(
          raw, _mm_loadu_si128(reinterpret_cast<const __m128i*>(e.mask)));
      // Inclusive prefix sum of the 4 lanes, then shift to running values:
      // an absolute-start chunk adds lane index k (the k implicit +1 deltas);
      // a continuation chunk additionally rebases on prev + 1.
      vals = _mm_add_epi32(vals, _mm_slli_si128(vals, 4));
      vals = _mm_add_epi32(vals, _mm_slli_si128(vals, 8));
      __m128i add = _mm_add_epi32(
          _mm_setr_epi32(0, 1, 2, 3),
          _mm_set1_epi32(first ? 0 : static_cast<int>(prev + 1)));
      vals = _mm_add_epi32(vals, add);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), vals);
      prev = static_cast<uint32_t>(
          _mm_cvtsi128_si32(_mm_shuffle_epi32(vals, _MM_SHUFFLE(3, 3, 3, 3))));
      first = false;
      p += e.total;
      i += 4;
    }
#else
    while (i + 4 <= block_end) {
      uint8_t ctrl = *p++;
      p += DecodeChunkScalar(ctrl, p, 4, &prev, &first, out + i);
      i += 4;
    }
#endif
    if (i < block_end) {
      uint8_t ctrl = *p++;
      size_t chunk = block_end - i;
      p += DecodeChunkScalar(ctrl, p, chunk, &prev, &first, out + i);
      i += chunk;
    }
  }
  return static_cast<size_t>(p - bytes);
}

bool CompressedContains(const uint8_t* bytes, size_t n, std::span<const SkipEntry> skips,
                        uint32_t x) {
  if (n == 0) return false;
  // Last block whose first value is <= x; skips[j] describes block j + 1.
  size_t block = 0;
  size_t offset = 0;
  auto it = std::upper_bound(skips.begin(), skips.end(), x,
                             [](uint32_t v, const SkipEntry& s) { return v < s.first; });
  if (it != skips.begin()) {
    block = static_cast<size_t>(it - skips.begin());
    offset = (it - 1)->offset;
  }
  const size_t begin = block * kSkipBlock;
  const size_t count = std::min<size_t>(kSkipBlock, n - begin);
  uint32_t tmp[kSkipBlock];
  DecodeSortedList(bytes + offset, count, tmp);
  return std::binary_search(tmp, tmp + count, x);
}

const char* DecodeKernelName() {
#if defined(__SSSE3__)
  return "ssse3";
#else
  return "scalar";
#endif
}

}  // namespace turbo::graph
