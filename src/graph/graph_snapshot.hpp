// DataGraph persistence as a snapshot extra section ("GRPH").
//
// The rdf snapshot (rdf/snapshot.hpp) serializes the Dataset; rebuilding a
// DataGraph from it re-runs classification, sorting, and — in compressed
// mode — the varint encoder. This section captures the finished graph
// structures verbatim (group CSRs, packed streams, signatures, term maps'
// backing vectors) so a compressed graph reloads with zero re-encoding.
// The payload carries its own format version byte; the enclosing snapshot
// stays at v2, and readers that predate the section skip it by tag.
#pragma once

#include <string>
#include <string_view>

#include "graph/data_graph.hpp"

namespace turbo::graph {

/// Section tag under which the serialized graph travels in a snapshot.
inline constexpr char kGraphSectionTag[5] = "GRPH";

/// Appends the serialized graph payload to `*out`.
void SerializeDataGraph(const DataGraph& g, std::string* out);

/// Rebuilds a DataGraph from a payload produced by SerializeDataGraph.
util::Result<DataGraph> DeserializeDataGraph(std::string_view payload);

}  // namespace turbo::graph
