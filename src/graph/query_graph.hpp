// Query graph under the two-attribute vertex model (§4.1): each query vertex
// carries a (possibly empty) vertex label set — the types required of a
// match — and an optional ID attribute that pins it to one data vertex.
// Query edges carry an edge label or are blank (variable predicate), in
// which case an e-graph homomorphism additionally reports the matched edge
// label (Definition 2's Me function).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "util/common.hpp"

namespace turbo::graph {

/// Optional per-vertex admission predicate; used to push cheap FILTERs into
/// candidate collection (§5.1, "inexpensive filters ... applied whenever we
/// access the corresponding vertices").
using VertexConstraint = std::function<bool(const DataGraph&, VertexId)>;

struct QueryVertex {
  /// Required vertex labels (sorted). Empty = blank (matches any vertex).
  std::vector<LabelId> labels;
  /// ID attribute: if set, only this data vertex matches.
  VertexId fixed_id = kInvalidId;
  /// Output variable index (-1 if this vertex is not projected / anonymous).
  int var = -1;
  /// Variable bound to the matched vertex's type labels ((?x rdf:type ?t)
  /// under type-aware transformation); -1 if none.
  int type_var = -1;
  /// Hint: this fixed vertex is a class/hub vertex (e.g. an rdf:type object
  /// under the direct transformation). ChooseStartQueryVertex prefers
  /// non-hub anchors, mirroring how an RDF-aware system avoids starting
  /// candidate regions at class vertices with huge fan-in.
  bool hub_hint = false;
  /// Optional pushed-down filter; must be cheap and side-effect free.
  VertexConstraint constraint;

  bool has_fixed_id() const { return fixed_id != kInvalidId; }
};

struct QueryEdge {
  uint32_t from = 0;  ///< query vertex index (edge direction: from --el--> to)
  uint32_t to = 0;
  /// Edge label; kInvalidId = blank (variable predicate).
  EdgeLabelId label = kInvalidId;
  /// Variable bound to the matched predicate (-1 if none).
  int label_var = -1;

  bool has_label() const { return label != kInvalidId; }
};

/// A small labeled query graph plus incidence lists.
class QueryGraph {
 public:
  uint32_t AddVertex(QueryVertex v) {
    vertices_.push_back(std::move(v));
    incidence_.emplace_back();
    return static_cast<uint32_t>(vertices_.size() - 1);
  }
  uint32_t AddEdge(QueryEdge e) {
    uint32_t idx = static_cast<uint32_t>(edges_.size());
    incidence_[e.from].push_back({idx, Direction::kOut});
    incidence_[e.to].push_back({idx, Direction::kIn});
    edges_.push_back(e);
    return idx;
  }

  uint32_t num_vertices() const { return static_cast<uint32_t>(vertices_.size()); }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges_.size()); }
  const QueryVertex& vertex(uint32_t u) const { return vertices_[u]; }
  QueryVertex& mutable_vertex(uint32_t u) { return vertices_[u]; }
  const QueryEdge& edge(uint32_t e) const { return edges_[e]; }

  /// Incident edges of vertex `u`: (edge index, direction from u's view —
  /// kOut if u is the edge's `from`).
  struct Incidence {
    uint32_t edge;
    Direction dir;
  };
  const std::vector<Incidence>& incident(uint32_t u) const { return incidence_[u]; }

  /// Degree (number of incident edges, both directions).
  uint32_t degree(uint32_t u) const { return static_cast<uint32_t>(incidence_[u].size()); }

  /// True if the query graph is connected (single-vertex graphs are).
  bool IsConnected() const;

  /// Connected component ids, one per vertex.
  std::vector<uint32_t> ComponentIds() const;

 private:
  std::vector<QueryVertex> vertices_;
  std::vector<QueryEdge> edges_;
  std::vector<std::vector<Incidence>> incidence_;
};

}  // namespace turbo::graph
