#include "graph/query_graph.hpp"

namespace turbo::graph {

std::vector<uint32_t> QueryGraph::ComponentIds() const {
  std::vector<uint32_t> comp(num_vertices(), kInvalidId);
  uint32_t next = 0;
  std::vector<uint32_t> stack;
  for (uint32_t s = 0; s < num_vertices(); ++s) {
    if (comp[s] != kInvalidId) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      for (const Incidence& inc : incidence_[u]) {
        const QueryEdge& e = edges_[inc.edge];
        uint32_t other = e.from == u ? e.to : e.from;
        if (comp[other] == kInvalidId) {
          comp[other] = next;
          stack.push_back(other);
        }
      }
    }
    ++next;
  }
  return comp;
}

bool QueryGraph::IsConnected() const {
  if (num_vertices() <= 1) return true;
  auto comp = ComponentIds();
  for (uint32_t c : comp)
    if (c != 0) return false;
  return true;
}

}  // namespace turbo::graph
