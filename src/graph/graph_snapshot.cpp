#include "graph/graph_snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

namespace turbo::graph {

namespace {

constexpr uint8_t kGraphFormatVersion = 1;

template <typename T>
void AppendPod(std::string* out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void AppendVec(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendPod<uint64_t>(out, v.size());
  if (!v.empty())
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

// std::pair has a non-trivial copy-assignment, so the schema side table is
// flattened to alternating (first, second) u32s for the raw-bytes path.
void AppendVec(std::string* out, const std::vector<std::pair<TermId, TermId>>& v) {
  AppendPod<uint64_t>(out, v.size());
  for (const auto& [a, b] : v) {
    AppendPod(out, a);
    AppendPod(out, b);
  }
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadVec(std::vector<T>* out) {
    uint64_t n = 0;
    if (!Read(&n)) return false;
    if (n > (data_.size() - pos_) / sizeof(T)) return false;
    out->resize(static_cast<size_t>(n));
    if (n != 0) std::memcpy(out->data(), data_.data() + pos_, n * sizeof(T));
    pos_ += static_cast<size_t>(n) * sizeof(T);
    return true;
  }

  bool ReadVec(std::vector<std::pair<TermId, TermId>>* out) {
    uint64_t n = 0;
    if (!Read(&n)) return false;
    if (n > (data_.size() - pos_) / (2 * sizeof(TermId))) return false;
    out->resize(static_cast<size_t>(n));
    for (auto& [a, b] : *out)
      if (!Read(&a) || !Read(&b)) return false;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

util::Status Corrupt(const char* what) {
  return util::Status::Error(std::string("graph section corrupt: ") + what);
}

/// Validates one direction's packed per-vertex records against the resident
/// group-count offset tables. The accessors walk these streams with
/// unchecked varint reads, so every byte is bounds-checked here once, at
/// load time: directory varints stay inside the record, each group's claimed
/// value-byte length matches the actual group-varint encoding, sections end
/// exactly at the next record, el counts sum to the stored degree, and the
/// flattened skip tables line up group by group. Returns nullptr or a
/// description of the first violation. Takes the individual arrays rather
/// than the AdjDir because the nested types are private to DataGraph.
const char* ValidatePacked(const std::vector<uint8_t>& data,
                           const std::vector<uint32_t>& vertex_begin,
                           const std::vector<uint32_t>& degree,
                           const std::vector<SkipEntry>& skips,
                           const std::vector<std::pair<uint32_t, uint32_t>>& skip_index,
                           const std::vector<uint32_t>& el_group_offsets,
                           const std::vector<uint32_t>& type_group_offsets, size_t n) {
  if (vertex_begin.size() != n + 1 || degree.size() != n || vertex_begin.front() != 0 ||
      !std::is_sorted(vertex_begin.begin(), vertex_begin.end()))
    return "packed vertex offsets";
  if (data.size() != static_cast<size_t>(vertex_begin.back()) + kDecodePad)
    return "packed data size";
  const uint8_t* base = data.data();
  const uint8_t* limit = base + vertex_begin.back();  // excludes the pad
  auto get = [&](const uint8_t** p, uint32_t* out) {
    uint32_t x = 0;
    for (uint32_t shift = 0; shift < 35; shift += 7) {
      if (*p >= limit) return false;
      uint32_t b = *(*p)++;
      x |= (b & 0x7f) << shift;
      if (b < 0x80) {
        *out = x;
        return true;
      }
    }
    return false;
  };
  // Walks a group-varint encoding of `count` values (control byte per chunk
  // of 4, 2-bit byte-length-minus-1 fields) and checks it spans exactly `vb`
  // bytes, never reading past `limit`.
  auto encoding_ok = [&](const uint8_t* p, uint32_t count, uint32_t vb) {
    const uint8_t* end = p + vb;
    if (end > limit || end < p) return false;
    const uint8_t* q = p;
    for (uint32_t remaining = count; remaining > 0;) {
      if (q >= end) return false;
      uint8_t ctrl = *q++;
      uint32_t in_chunk = remaining < 4 ? remaining : 4;
      for (uint32_t i = 0; i < in_chunk; ++i) q += ((ctrl >> (2 * i)) & 3) + 1;
      remaining -= in_chunk;
    }
    return q == end;
  };
  struct Grp {
    uint32_t count, voff, vb;
  };
  std::vector<Grp> grps;
  size_t skips_used = 0, index_used = 0;
  for (size_t v = 0; v < n; ++v) {
    const uint8_t* p = base + vertex_begin[v];
    const uint8_t* vend = base + vertex_begin[v + 1];
    uint64_t deg = 0;
    for (int section = 0; section < 2; ++section) {
      const bool type_dir = section == 1;
      const uint32_t n_grp =
          type_dir ? type_group_offsets[v + 1] - type_group_offsets[v]
                   : el_group_offsets[v + 1] - el_group_offsets[v];
      grps.clear();
      uint64_t prev_el = 0, voff = 0;
      for (uint32_t i = 0; i < n_grp; ++i) {
        uint32_t d = 0, vd = 0, cm1 = 0, vb = 0;
        if (!get(&p, &d)) return "packed directory";
        if (type_dir && !get(&p, &vd)) return "packed directory";
        if (!get(&p, &cm1) || !get(&p, &vb)) return "packed directory";
        uint64_t el = i == 0 ? d : prev_el + d + (type_dir ? 0 : 1);
        if (el > UINT32_MAX) return "packed el overflow";
        prev_el = el;
        grps.push_back({cm1 + 1, static_cast<uint32_t>(voff), vb});
        voff += vb;
        if (voff > UINT32_MAX) return "packed section overflow";
        if (!type_dir) deg += static_cast<uint64_t>(cm1) + 1;
      }
      if (p > vend || voff > static_cast<size_t>(vend - p)) return "packed section size";
      const uint8_t* vbase = p;
      p += voff;
      for (const Grp& gr : grps) {
        if (!encoding_ok(vbase + gr.voff, gr.count, gr.vb)) return "packed group bytes";
        if (gr.count <= kSkipBlock) continue;
        const size_t want = (gr.count - 1) / kSkipBlock;
        const size_t abs = static_cast<size_t>(vbase - base) + gr.voff;
        if (index_used >= skip_index.size() || skip_index[index_used].first != abs ||
            skip_index[index_used].second != skips_used)
          return "skip index";
        if (skips_used + want > skips.size()) return "skip table size";
        for (size_t k = 0; k < want; ++k)
          if (skips[skips_used + k].offset >= gr.vb) return "skip offset";
        skips_used += want;
        ++index_used;
      }
    }
    if (p != vend) return "packed record size";
    if (deg != degree[v]) return "packed degree";
  }
  if (skips_used != skips.size() || index_used != skip_index.size())
    return "skip table trailing entries";
  return nullptr;
}

}  // namespace

void SerializeDataGraph(const DataGraph& g, std::string* out) {
  AppendPod(out, kGraphFormatVersion);
  AppendPod(out, static_cast<uint8_t>(g.mode_));
  AppendPod(out, static_cast<uint8_t>(g.storage_));
  AppendPod<uint64_t>(out, g.num_edges_);

  AppendVec(out, g.label_offsets_);
  AppendVec(out, g.labels_);
  AppendVec(out, g.simple_label_offsets_);
  AppendVec(out, g.simple_labels_);
  AppendVec(out, g.inv_label_offsets_);
  AppendVec(out, g.inv_label_vertices_);

  auto write_dir = [out](const DataGraph::AdjDir& a) {
    AppendVec(out, a.el_group_offsets);
    AppendVec(out, a.el_groups);
    AppendVec(out, a.el_nbrs);
    AppendVec(out, a.type_group_offsets);
    AppendVec(out, a.type_groups);
    AppendVec(out, a.type_nbrs);
    AppendVec(out, a.packed.data);
    AppendVec(out, a.packed.vertex_begin);
    AppendVec(out, a.packed.degree);
    AppendVec(out, a.packed.skips);
    AppendVec(out, a.packed.skip_index);
  };
  write_dir(g.out_);
  write_dir(g.in_);

  AppendVec(out, g.signatures_);
  AppendVec(out, g.schema_subclass_);
  AppendVec(out, g.pred_subj_offsets_);
  AppendVec(out, g.pred_subjects_);
  AppendVec(out, g.pred_obj_offsets_);
  AppendVec(out, g.pred_objects_);
  AppendVec(out, g.vertex_terms_);
  AppendVec(out, g.label_terms_);
  AppendVec(out, g.el_terms_);
}

util::Result<DataGraph> DeserializeDataGraph(std::string_view payload) {
  Reader r(payload);
  uint8_t version = 0, mode = 0, storage = 0;
  if (!r.Read(&version)) return Corrupt("truncated header");
  if (version != kGraphFormatVersion)
    return util::Status::Error("graph section: unsupported format version " +
                               std::to_string(version));
  if (!r.Read(&mode) || !r.Read(&storage)) return Corrupt("truncated header");
  if (mode > 1 || storage > 1) return Corrupt("bad mode byte");

  DataGraph g;
  g.mode_ = static_cast<TransformMode>(mode);
  g.storage_ = static_cast<StorageMode>(storage);
  uint64_t num_edges = 0;
  if (!r.Read(&num_edges)) return Corrupt("truncated header");
  g.num_edges_ = num_edges;

  bool ok = r.ReadVec(&g.label_offsets_) && r.ReadVec(&g.labels_) &&
            r.ReadVec(&g.simple_label_offsets_) && r.ReadVec(&g.simple_labels_) &&
            r.ReadVec(&g.inv_label_offsets_) && r.ReadVec(&g.inv_label_vertices_);
  auto read_dir = [&r](DataGraph::AdjDir* a) {
    return r.ReadVec(&a->el_group_offsets) && r.ReadVec(&a->el_groups) &&
           r.ReadVec(&a->el_nbrs) && r.ReadVec(&a->type_group_offsets) &&
           r.ReadVec(&a->type_groups) && r.ReadVec(&a->type_nbrs) &&
           r.ReadVec(&a->packed.data) && r.ReadVec(&a->packed.vertex_begin) &&
           r.ReadVec(&a->packed.degree) && r.ReadVec(&a->packed.skips) &&
           r.ReadVec(&a->packed.skip_index);
  };
  ok = ok && read_dir(&g.out_) && read_dir(&g.in_);
  ok = ok && r.ReadVec(&g.signatures_) && r.ReadVec(&g.schema_subclass_) &&
       r.ReadVec(&g.pred_subj_offsets_) && r.ReadVec(&g.pred_subjects_) &&
       r.ReadVec(&g.pred_obj_offsets_) && r.ReadVec(&g.pred_objects_) &&
       r.ReadVec(&g.vertex_terms_) && r.ReadVec(&g.label_terms_) &&
       r.ReadVec(&g.el_terms_);
  if (!ok) return Corrupt("truncated body");
  if (!r.AtEnd()) return Corrupt("trailing bytes");

  // Structural sanity: every per-vertex / per-group offset table must have
  // the +1-sentinel size for the accessors' unchecked indexing to be safe.
  const size_t n = g.vertex_terms_.size();
  auto csr_ok = [](const std::vector<uint32_t>& offsets, size_t keys, size_t flat) {
    return offsets.size() == keys + 1 && offsets.front() == 0 &&
           offsets.back() == flat && std::is_sorted(offsets.begin(), offsets.end());
  };
  if (!csr_ok(g.label_offsets_, n, g.labels_.size()) ||
      !csr_ok(g.simple_label_offsets_, n, g.simple_labels_.size()) ||
      !csr_ok(g.inv_label_offsets_, g.label_terms_.size(), g.inv_label_vertices_.size()))
    return Corrupt("label CSR shape");
  if (g.signatures_.size() != n) return Corrupt("signature count");
  for (const DataGraph::AdjDir* a : {&g.out_, &g.in_}) {
    if (a->el_group_offsets.size() != n + 1 || a->type_group_offsets.size() != n + 1 ||
        a->el_group_offsets.front() != 0 || a->type_group_offsets.front() != 0 ||
        !std::is_sorted(a->el_group_offsets.begin(), a->el_group_offsets.end()) ||
        !std::is_sorted(a->type_group_offsets.begin(), a->type_group_offsets.end()))
      return Corrupt("group offset shape");
    if (g.storage_ == StorageMode::kCompressed) {
      if (!a->el_groups.empty() || !a->el_nbrs.empty() || !a->type_groups.empty() ||
          !a->type_nbrs.empty())
        return Corrupt("compressed graph with raw arrays");
      if (const char* err = ValidatePacked(
              a->packed.data, a->packed.vertex_begin, a->packed.degree, a->packed.skips,
              a->packed.skip_index, a->el_group_offsets, a->type_group_offsets, n))
        return Corrupt(err);
    } else {
      if (a->el_group_offsets.back() != a->el_groups.size() ||
          a->type_group_offsets.back() != a->type_groups.size())
        return Corrupt("group count mismatch");
      if (!a->packed.data.empty() || !a->packed.vertex_begin.empty() ||
          !a->packed.degree.empty() || !a->packed.skips.empty() ||
          !a->packed.skip_index.empty())
        return Corrupt("uncompressed graph with packed arrays");
    }
  }
  if (g.pred_subj_offsets_.size() != g.el_terms_.size() + 1 ||
      g.pred_obj_offsets_.size() != g.el_terms_.size() + 1)
    return Corrupt("predicate index shape");

  // The hash maps are derived state; rebuild them from the id-order vectors.
  g.term_to_vertex_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    g.term_to_vertex_.emplace(g.vertex_terms_[i], static_cast<VertexId>(i));
  g.term_to_label_.reserve(g.label_terms_.size());
  for (size_t i = 0; i < g.label_terms_.size(); ++i)
    g.term_to_label_.emplace(g.label_terms_[i], static_cast<LabelId>(i));
  g.term_to_el_.reserve(g.el_terms_.size());
  for (size_t i = 0; i < g.el_terms_.size(); ++i)
    g.term_to_el_.emplace(g.el_terms_[i], static_cast<EdgeLabelId>(i));
  return g;
}

}  // namespace turbo::graph
