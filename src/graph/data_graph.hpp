// Labeled data graph with the paper's in-memory layout (Figure 9):
//
//  * inverse vertex-label list  — for each vertex label, the sorted list of
//    vertices carrying it (CSR: end offsets + vertex ids);
//  * adjacency lists            — for each vertex and direction, neighbours
//    grouped by *neighbour type*, i.e. the pair (edge label, vertex label),
//    each group sorted by neighbour id; plus edge-label-only groups used for
//    blank-vertex-label lookups and for direct-transformed graphs;
//  * predicate index            — for each edge label, sorted subject ids and
//    sorted object ids (Section 4.2, used when a query vertex has neither
//    label nor ID).
//
// One DataGraph instance is produced per transformation mode:
//  * direct transformation (§3.2): every subject/object becomes a vertex,
//    every triple an edge, vertex label sets are empty (a query vertex that
//    names a constant matches via the ID attribute instead);
//  * type-aware transformation (§4.1, Def. 3): rdf:type / rdfs:subClassOf
//    triples are folded into vertex label sets (two-attribute vertex model),
//    and the corresponding vertices/edges disappear from the graph.
//
// Both the full-entailment label set L(v) (types from original + inferred
// triples) and the simple-entailment set L_simple(v) (original only, §4.2)
// are stored.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dataset.hpp"
#include "util/common.hpp"

namespace turbo::graph {

/// Edge direction relative to a vertex.
enum class Direction : uint8_t { kOut = 0, kIn = 1 };

inline Direction Reverse(Direction d) {
  return d == Direction::kOut ? Direction::kIn : Direction::kOut;
}

/// Which RDF-to-graph transformation builds the DataGraph.
enum class TransformMode { kDirect, kTypeAware };

/// Data graph statistics (drives Table 1).
struct GraphSizeStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_vertex_labels = 0;
  uint64_t num_edge_labels = 0;
};

class DataGraph {
 public:
  /// Neighbour-type group: neighbours of a vertex reached over edge label
  /// `el` that carry vertex label `vl`.
  struct TypeGroup {
    EdgeLabelId el;
    LabelId vl;
    uint32_t begin;  ///< range in type_nbrs_
    uint32_t end;
  };
  /// Edge-label-only group.
  struct ElGroup {
    EdgeLabelId el;
    uint32_t begin;  ///< range in el_nbrs_
    uint32_t end;
  };

  /// Builds a DataGraph from a dataset under the given transformation.
  static DataGraph Build(const rdf::Dataset& dataset, TransformMode mode);

  // ---- Counts. ----
  uint32_t num_vertices() const { return static_cast<uint32_t>(vertex_terms_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_vertex_labels() const { return static_cast<uint32_t>(label_terms_.size()); }
  uint32_t num_edge_labels() const { return static_cast<uint32_t>(el_terms_.size()); }
  GraphSizeStats SizeStats() const {
    return {num_vertices(), num_edges(), num_vertex_labels(), num_edge_labels()};
  }
  TransformMode mode() const { return mode_; }

  // ---- Vertex labels. ----
  /// Full-entailment label set L(v), sorted ascending.
  std::span<const LabelId> labels(VertexId v) const {
    return {labels_.data() + label_offsets_[v], labels_.data() + label_offsets_[v + 1]};
  }
  /// Simple-entailment label set L_simple(v) (§4.2), sorted ascending.
  std::span<const LabelId> simple_labels(VertexId v) const {
    return {simple_labels_.data() + simple_label_offsets_[v],
            simple_labels_.data() + simple_label_offsets_[v + 1]};
  }
  bool HasLabel(VertexId v, LabelId l, bool simple = false) const;

  /// Inverse vertex-label list: sorted vertices carrying label `l`.
  std::span<const VertexId> VerticesWithLabel(LabelId l) const {
    return {inv_label_vertices_.data() + inv_label_offsets_[l],
            inv_label_vertices_.data() + inv_label_offsets_[l + 1]};
  }

  // ---- Adjacency. ----
  /// All (edge label)-groups of `v` in direction `d`, sorted by edge label.
  std::span<const ElGroup> ElGroups(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return {a.el_groups.data() + a.el_group_offsets[v],
            a.el_groups.data() + a.el_group_offsets[v + 1]};
  }
  /// All neighbour-type groups of `v` in direction `d`, sorted by (el, vl).
  std::span<const TypeGroup> TypeGroups(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return {a.type_groups.data() + a.type_group_offsets[v],
            a.type_groups.data() + a.type_group_offsets[v + 1]};
  }
  /// Neighbours of `v` over edge label `el` (sorted, duplicate-free).
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el) const;
  /// Neighbours of `v` over edge label `el` carrying vertex label `vl`
  /// (adj(v, (el, vl)) in Figure 9), sorted.
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                      LabelId vl) const;
  /// All neighbours of `v` in direction `d`; may contain a vertex multiple
  /// times when connected by several predicates.
  std::span<const VertexId> AllNeighborsRaw(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    uint32_t b = a.el_group_offsets[v] == a.el_group_offsets[v + 1]
                     ? 0
                     : a.el_groups[a.el_group_offsets[v]].begin;
    uint32_t e = a.el_group_offsets[v] == a.el_group_offsets[v + 1]
                     ? 0
                     : a.el_groups[a.el_group_offsets[v + 1] - 1].end;
    return {a.el_nbrs.data() + b, a.el_nbrs.data() + e};
  }

  /// Neighbour span of an ElGroup / TypeGroup previously obtained for the
  /// same direction.
  std::span<const VertexId> GroupNeighbors(Direction d, const ElGroup& grp) const {
    const AdjDir& a = adj(d);
    return {a.el_nbrs.data() + grp.begin, a.el_nbrs.data() + grp.end};
  }
  std::span<const VertexId> GroupNeighbors(Direction d, const TypeGroup& grp) const {
    const AdjDir& a = adj(d);
    return {a.type_nbrs.data() + grp.begin, a.type_nbrs.data() + grp.end};
  }

  /// True if edge from -> to with label `el` exists.
  bool HasEdge(VertexId from, VertexId to, EdgeLabelId el) const;
  /// Collects all edge labels on edges from -> to.
  void EdgeLabelsBetween(VertexId from, VertexId to, std::vector<EdgeLabelId>* out) const;

  /// Number of incident edges (with multiplicity per edge label) in `d`.
  uint32_t Degree(VertexId v, Direction d) const;
  /// Number of distinct neighbour types (el, vl) of `v` in `d`.
  uint32_t NumNeighborTypes(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return a.type_group_offsets[v + 1] - a.type_group_offsets[v];
  }
  /// Number of distinct edge labels incident to `v` in `d`.
  uint32_t NumEdgeLabels(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return a.el_group_offsets[v + 1] - a.el_group_offsets[v];
  }

  // ---- Predicate index (§4.2). ----
  std::span<const VertexId> SubjectsOf(EdgeLabelId el) const {
    return {pred_subjects_.data() + pred_subj_offsets_[el],
            pred_subjects_.data() + pred_subj_offsets_[el + 1]};
  }
  std::span<const VertexId> ObjectsOf(EdgeLabelId el) const {
    return {pred_objects_.data() + pred_obj_offsets_[el],
            pred_objects_.data() + pred_obj_offsets_[el + 1]};
  }

  /// rdfs:subClassOf triples dropped by the type-aware transformation
  /// (Definition 3 folds them into labels), retained at term level so the
  /// SPARQL layer can still answer schema patterns. Empty in direct mode.
  std::span<const std::pair<TermId, TermId>> SubclassTriples() const {
    return schema_subclass_;
  }

  // ---- Term mapping tables (Figures 4a/4b, 7a/7b/7c). ----
  TermId VertexTerm(VertexId v) const { return vertex_terms_[v]; }
  TermId LabelTerm(LabelId l) const { return label_terms_[l]; }
  TermId EdgeLabelTerm(EdgeLabelId el) const { return el_terms_[el]; }
  std::optional<VertexId> VertexOfTerm(TermId t) const;
  std::optional<LabelId> LabelOfTerm(TermId t) const;
  std::optional<EdgeLabelId> EdgeLabelOfTerm(TermId t) const;

 private:
  struct AdjDir {
    std::vector<uint32_t> el_group_offsets;    // per vertex -> range in el_groups
    std::vector<ElGroup> el_groups;
    std::vector<VertexId> el_nbrs;
    std::vector<uint32_t> type_group_offsets;  // per vertex -> range in type_groups
    std::vector<TypeGroup> type_groups;
    std::vector<VertexId> type_nbrs;
  };
  const AdjDir& adj(Direction d) const { return d == Direction::kOut ? out_ : in_; }

  TransformMode mode_ = TransformMode::kTypeAware;
  uint64_t num_edges_ = 0;

  // Vertex label CSR (full + simple entailment).
  std::vector<uint32_t> label_offsets_;
  std::vector<LabelId> labels_;
  std::vector<uint32_t> simple_label_offsets_;
  std::vector<LabelId> simple_labels_;

  // Inverse vertex-label list.
  std::vector<uint32_t> inv_label_offsets_;
  std::vector<VertexId> inv_label_vertices_;

  AdjDir out_;
  AdjDir in_;

  std::vector<std::pair<TermId, TermId>> schema_subclass_;

  // Predicate index.
  std::vector<uint32_t> pred_subj_offsets_;
  std::vector<VertexId> pred_subjects_;
  std::vector<uint32_t> pred_obj_offsets_;
  std::vector<VertexId> pred_objects_;

  // Term maps.
  std::vector<TermId> vertex_terms_;
  std::vector<TermId> label_terms_;
  std::vector<TermId> el_terms_;
  std::unordered_map<TermId, VertexId> term_to_vertex_;
  std::unordered_map<TermId, LabelId> term_to_label_;
  std::unordered_map<TermId, EdgeLabelId> term_to_el_;

  friend class GraphBuilder;
};

/// Incremental DataGraph construction: triples arrive in dataset order as
/// encoded chunks (classification + id assignment happen per chunk, the CSR
/// sorts once in Finish). This is what lets the parallel load pipeline fuse
/// graph building into ingestion — each remapped chunk is consumed as soon
/// as it exists instead of re-scanning the finished dataset. The referenced
/// dictionary must already contain every id appearing in a chunk at the
/// time of its Append. DataGraph::Build is the one-shot wrapper.
class GraphBuilder {
 public:
  GraphBuilder(const rdf::Dictionary& dict, TransformMode mode);

  /// Consumes one chunk of encoded triples; `inferred` marks the chunk as
  /// part of the inferred region (affects L_simple, §4.2). Chunks must
  /// arrive in dataset order, original before inferred.
  void Append(std::span<const rdf::Triple> chunk, bool inferred);

  /// Finalizes the CSR structures. The builder is spent afterwards.
  DataGraph Finish();

 private:
  struct EdgeTriple {
    VertexId s;
    EdgeLabelId el;
    VertexId o;
  };

  void ResolveSchemaPredicates();
  static void BuildAdjDir(DataGraph& g, const std::vector<EdgeTriple>& edges, uint32_t n,
                          bool out, DataGraph::AdjDir* dir);

  const rdf::Dictionary& dict_;
  TransformMode mode_;
  DataGraph g_;
  std::vector<EdgeTriple> edges_;
  std::vector<std::pair<VertexId, LabelId>> label_pairs_;
  std::vector<std::pair<VertexId, LabelId>> simple_label_pairs_;
  std::optional<TermId> type_p_;
  std::optional<TermId> subclass_p_;
};

}  // namespace turbo::graph
