// Labeled data graph with the paper's in-memory layout (Figure 9):
//
//  * inverse vertex-label list  — for each vertex label, the sorted list of
//    vertices carrying it (CSR: end offsets + vertex ids);
//  * adjacency lists            — for each vertex and direction, neighbours
//    grouped by *neighbour type*, i.e. the pair (edge label, vertex label),
//    each group sorted by neighbour id; plus edge-label-only groups used for
//    blank-vertex-label lookups and for direct-transformed graphs;
//  * predicate index            — for each edge label, sorted subject ids and
//    sorted object ids (Section 4.2, used when a query vertex has neither
//    label nor ID).
//
// One DataGraph instance is produced per transformation mode:
//  * direct transformation (§3.2): every subject/object becomes a vertex,
//    every triple an edge, vertex label sets are empty (a query vertex that
//    names a constant matches via the ID attribute instead);
//  * type-aware transformation (§4.1, Def. 3): rdf:type / rdfs:subClassOf
//    triples are folded into vertex label sets (two-attribute vertex model),
//    and the corresponding vertices/edges disappear from the graph.
//
// Both the full-entailment label set L(v) (types from original + inferred
// triples) and the simple-entailment set L_simple(v) (original only, §4.2)
// are stored.
#pragma once

#include <cassert>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/compressed_adj.hpp"
#include "rdf/dataset.hpp"
#include "util/common.hpp"
#include "util/status.hpp"

namespace turbo::graph {

/// Edge direction relative to a vertex.
enum class Direction : uint8_t { kOut = 0, kIn = 1 };

inline Direction Reverse(Direction d) {
  return d == Direction::kOut ? Direction::kIn : Direction::kOut;
}

/// Which RDF-to-graph transformation builds the DataGraph.
enum class TransformMode { kDirect, kTypeAware };

/// How neighbor lists are stored. kUncompressed keeps the plain uint32 CSR
/// arrays and group structs (zero-copy spans, the default). kCompressed
/// replaces the group arrays *and* the neighbor arrays with one byte stream
/// per direction: each vertex owns a record holding a varint group directory
/// (edge label, count, encoded length per group) followed by the groups'
/// delta + group-varint value encodings (compressed_adj.hpp), addressed by a
/// single u32 offset per vertex. Accessors decode into caller-provided
/// scratch buffers. Counts, degrees, and the signature index are identical
/// across modes; the zero-copy span accessors are uncompressed-only.
enum class StorageMode { kUncompressed, kCompressed };

/// Data graph statistics (drives Table 1).
struct GraphSizeStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_vertex_labels = 0;
  uint64_t num_edge_labels = 0;
};

class DataGraph {
 public:
  /// Neighbour-type group: neighbours of a vertex reached over edge label
  /// `el` that carry vertex label `vl`.
  struct TypeGroup {
    EdgeLabelId el;
    LabelId vl;
    uint32_t begin;  ///< range in type_nbrs_
    uint32_t end;
  };
  /// Edge-label-only group.
  struct ElGroup {
    EdgeLabelId el;
    uint32_t begin;  ///< range in el_nbrs_
    uint32_t end;
  };

  /// Per-structure byte accounting (approximate for the hash maps). The
  /// `adjacency_*` fields are the storage-mode comparison surface: in
  /// compressed mode `adjacency_neighbors` is zero and the encoded streams
  /// show up under `adjacency_compressed` + `skip_tables`.
  struct MemoryBreakdown {
    size_t vertex_labels = 0;       ///< label CSRs, full + simple entailment
    size_t inverse_label_index = 0;
    size_t adjacency_groups = 0;    ///< El/TypeGroup arrays + per-vertex offsets
    size_t adjacency_neighbors = 0; ///< plain uint32 neighbor arrays
    size_t adjacency_compressed = 0;///< packed records + per-vertex offsets/degrees
    size_t skip_tables = 0;
    size_t signatures = 0;
    size_t predicate_index = 0;
    size_t term_maps = 0;
    size_t schema = 0;
    /// Adjacency + signature storage — the footprint the compressed mode
    /// is gated on (bench_storage).
    size_t adjacency_total() const {
      return adjacency_groups + adjacency_neighbors + adjacency_compressed +
             skip_tables + signatures;
    }
    size_t total() const {
      return vertex_labels + inverse_label_index + predicate_index + term_maps +
             schema + adjacency_total();
    }
  };

  /// Builds a DataGraph from a dataset under the given transformation.
  static DataGraph Build(const rdf::Dataset& dataset, TransformMode mode,
                         StorageMode storage = StorageMode::kUncompressed);

  // ---- Counts. ----
  uint32_t num_vertices() const { return static_cast<uint32_t>(vertex_terms_.size()); }
  uint64_t num_edges() const { return num_edges_; }
  uint32_t num_vertex_labels() const { return static_cast<uint32_t>(label_terms_.size()); }
  uint32_t num_edge_labels() const { return static_cast<uint32_t>(el_terms_.size()); }
  GraphSizeStats SizeStats() const {
    return {num_vertices(), num_edges(), num_vertex_labels(), num_edge_labels()};
  }
  TransformMode mode() const { return mode_; }
  StorageMode storage_mode() const { return storage_; }
  bool compressed() const { return storage_ == StorageMode::kCompressed; }
  MemoryBreakdown MemoryUsage() const;

  // ---- Vertex labels. ----
  /// Full-entailment label set L(v), sorted ascending.
  std::span<const LabelId> labels(VertexId v) const {
    return {labels_.data() + label_offsets_[v], labels_.data() + label_offsets_[v + 1]};
  }
  /// Simple-entailment label set L_simple(v) (§4.2), sorted ascending.
  std::span<const LabelId> simple_labels(VertexId v) const {
    return {simple_labels_.data() + simple_label_offsets_[v],
            simple_labels_.data() + simple_label_offsets_[v + 1]};
  }
  bool HasLabel(VertexId v, LabelId l, bool simple = false) const;

  /// Inverse vertex-label list: sorted vertices carrying label `l`.
  std::span<const VertexId> VerticesWithLabel(LabelId l) const {
    return {inv_label_vertices_.data() + inv_label_offsets_[l],
            inv_label_vertices_.data() + inv_label_offsets_[l + 1]};
  }

  // ---- Adjacency. ----
  /// All (edge label)-groups of `v` in direction `d`, sorted by edge label.
  /// Zero-copy; valid only in uncompressed mode (compressed graphs have no
  /// materialized group structs — use the decode-aware accessors below).
  std::span<const ElGroup> ElGroups(VertexId v, Direction d) const {
    assert(!compressed());
    const AdjDir& a = adj(d);
    return {a.el_groups.data() + a.el_group_offsets[v],
            a.el_groups.data() + a.el_group_offsets[v + 1]};
  }
  /// All neighbour-type groups of `v` in direction `d`, sorted by (el, vl).
  /// Uncompressed mode only.
  std::span<const TypeGroup> TypeGroups(VertexId v, Direction d) const {
    assert(!compressed());
    const AdjDir& a = adj(d);
    return {a.type_groups.data() + a.type_group_offsets[v],
            a.type_groups.data() + a.type_group_offsets[v + 1]};
  }
  /// Neighbours of `v` over edge label `el` (sorted, duplicate-free).
  /// Zero-copy; valid only in uncompressed mode.
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el) const;
  /// Neighbours of `v` over edge label `el` carrying vertex label `vl`
  /// (adj(v, (el, vl)) in Figure 9), sorted. Uncompressed mode only.
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                      LabelId vl) const;

  // Decode-aware variants: work in both storage modes. Uncompressed graphs
  // return the zero-copy span and never touch `scratch`; compressed graphs
  // decode the group into `scratch` and return a span over it, so the span
  // is invalidated by the next decode into the same buffer.
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                      std::vector<VertexId>& scratch) const;
  std::span<const VertexId> Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                      LabelId vl, std::vector<VertexId>& scratch) const;

  /// Size of adj(v, el) / adj(v, (el, vl)) without decoding any values (the
  /// compressed directory stores counts explicitly).
  uint32_t NeighborCount(VertexId v, Direction d, EdgeLabelId el) const;
  uint32_t NeighborCount(VertexId v, Direction d, EdgeLabelId el, LabelId vl) const;
  /// Sum of adj(v, (el, vl)) sizes over all edge labels (a vertex reachable
  /// over several predicates counts once per predicate).
  uint32_t NeighborCountWithLabel(VertexId v, Direction d, LabelId vl) const;

  /// Sorted, duplicate-free union of `v`'s neighbours across every edge
  /// label (blank-predicate queries). Materializes into `out` and returns a
  /// span over it, except in the single-group uncompressed case, which is
  /// zero-copy.
  std::span<const VertexId> UnionNeighbors(VertexId v, Direction d,
                                           std::vector<VertexId>& out) const;
  /// Sorted, duplicate-free union of adj(v, (el, vl)) over all edge labels
  /// `el` (blank-predicate queries against a labeled query vertex).
  std::span<const VertexId> NeighborsWithLabel(VertexId v, Direction d, LabelId vl,
                                               std::vector<VertexId>& out) const;

  /// All neighbours of `v` in direction `d`; may contain a vertex multiple
  /// times when connected by several predicates. Zero-copy, uncompressed
  /// mode only. Relies on a vertex's el-groups covering one contiguous range
  /// of el_nbrs_ — an invariant of GraphBuilder::BuildAdjDir's grouped row
  /// sort, debug-asserted there.
  std::span<const VertexId> AllNeighborsRaw(VertexId v, Direction d) const {
    assert(!compressed());
    const AdjDir& a = adj(d);
    uint32_t b = a.el_group_offsets[v] == a.el_group_offsets[v + 1]
                     ? 0
                     : a.el_groups[a.el_group_offsets[v]].begin;
    uint32_t e = a.el_group_offsets[v] == a.el_group_offsets[v + 1]
                     ? 0
                     : a.el_groups[a.el_group_offsets[v + 1] - 1].end;
    return {a.el_nbrs.data() + b, a.el_nbrs.data() + e};
  }
  /// Decode-aware AllNeighborsRaw (same multiplicity caveat).
  std::span<const VertexId> AllNeighbors(VertexId v, Direction d,
                                         std::vector<VertexId>& scratch) const;

  /// Neighbour span of an ElGroup / TypeGroup previously obtained for the
  /// same direction. Zero-copy; uncompressed mode only.
  std::span<const VertexId> GroupNeighbors(Direction d, const ElGroup& grp) const {
    assert(!compressed());
    const AdjDir& a = adj(d);
    return {a.el_nbrs.data() + grp.begin, a.el_nbrs.data() + grp.end};
  }
  std::span<const VertexId> GroupNeighbors(Direction d, const TypeGroup& grp) const {
    assert(!compressed());
    const AdjDir& a = adj(d);
    return {a.type_nbrs.data() + grp.begin, a.type_nbrs.data() + grp.end};
  }

  // ---- Neighborhood signatures. ----
  /// 64-bit hashed incidence bitmap over the vertex's neighbour types: one
  /// bit per (direction, edge label, neighbour vertex label) group and one
  /// per (direction, edge label, *) group. A candidate vertex can only match
  /// a query vertex if its signature contains every bit the query vertex
  /// requires (false positives possible, false negatives not), so a cheap
  /// AND-compare rejects candidates before any adjacency decode.
  uint64_t signature(VertexId v) const { return signatures_[v]; }
  /// The signature bit for one neighbour-type requirement; `vl == kInvalidId`
  /// addresses the label-blind (direction, edge label, *) bit.
  static uint64_t SignatureBit(Direction d, EdgeLabelId el, LabelId vl) {
    uint64_t x = (static_cast<uint64_t>(el) << 33) ^ (static_cast<uint64_t>(vl) << 1) ^
                 static_cast<uint64_t>(d);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return 1ull << (x & 63);
  }

  /// True if edge from -> to with label `el` exists.
  bool HasEdge(VertexId from, VertexId to, EdgeLabelId el) const;
  /// Collects all edge labels on edges from -> to.
  void EdgeLabelsBetween(VertexId from, VertexId to, std::vector<EdgeLabelId>* out) const;

  /// Number of incident edges (with multiplicity per edge label) in `d`.
  uint32_t Degree(VertexId v, Direction d) const;
  /// Number of distinct neighbour types (el, vl) of `v` in `d`.
  uint32_t NumNeighborTypes(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return a.type_group_offsets[v + 1] - a.type_group_offsets[v];
  }
  /// Number of distinct edge labels incident to `v` in `d`.
  uint32_t NumEdgeLabels(VertexId v, Direction d) const {
    const AdjDir& a = adj(d);
    return a.el_group_offsets[v + 1] - a.el_group_offsets[v];
  }

  // ---- Predicate index (§4.2). ----
  std::span<const VertexId> SubjectsOf(EdgeLabelId el) const {
    return {pred_subjects_.data() + pred_subj_offsets_[el],
            pred_subjects_.data() + pred_subj_offsets_[el + 1]};
  }
  std::span<const VertexId> ObjectsOf(EdgeLabelId el) const {
    return {pred_objects_.data() + pred_obj_offsets_[el],
            pred_objects_.data() + pred_obj_offsets_[el + 1]};
  }

  /// rdfs:subClassOf triples dropped by the type-aware transformation
  /// (Definition 3 folds them into labels), retained at term level so the
  /// SPARQL layer can still answer schema patterns. Empty in direct mode.
  std::span<const std::pair<TermId, TermId>> SubclassTriples() const {
    return schema_subclass_;
  }

  // ---- Term mapping tables (Figures 4a/4b, 7a/7b/7c). ----
  TermId VertexTerm(VertexId v) const { return vertex_terms_[v]; }
  TermId LabelTerm(LabelId l) const { return label_terms_[l]; }
  TermId EdgeLabelTerm(EdgeLabelId el) const { return el_terms_[el]; }
  std::optional<VertexId> VertexOfTerm(TermId t) const;
  std::optional<LabelId> LabelOfTerm(TermId t) const;
  std::optional<EdgeLabelId> EdgeLabelOfTerm(TermId t) const;

 private:
  /// Compressed-mode adjacency for one direction. `data` holds one record
  /// per vertex at data[vertex_begin[v], vertex_begin[v+1]):
  ///
  ///   [el directory]   per el-group: varint(el delta), varint(count - 1),
  ///                    varint(encoded byte length)
  ///   [el values]      per-group EncodeSortedList outputs, concatenated
  ///   [type directory] per type-group: varint(el delta), varint(vl [delta]),
  ///                    varint(count - 1), varint(encoded byte length)
  ///   [type values]    concatenated encodings
  ///
  /// First deltas are absolute; el deltas are (el - prev - 1) in the el
  /// directory (strictly ascending) and (el - prev) in the type directory
  /// (ties allowed); vl is (vl - prev - 1) when the el repeats, absolute
  /// otherwise. Entry counts come from el/type_group_offsets, which stay
  /// resident. Groups longer than kSkipBlock register their skip entries in
  /// `skips`, located via `skip_index` (absolute value-byte offset of the
  /// group -> first skip slot; the entry count is derivable from the group
  /// count). `data` ends with kDecodePad zero bytes.
  struct PackedDir {
    std::vector<uint8_t> data;
    std::vector<uint32_t> vertex_begin;  // n+1 (last excludes the pad)
    std::vector<uint32_t> degree;        // n, = sum of el-group counts
    std::vector<SkipEntry> skips;
    std::vector<std::pair<uint32_t, uint32_t>> skip_index;
  };
  struct AdjDir {
    std::vector<uint32_t> el_group_offsets;    // per vertex -> range in el_groups
    std::vector<ElGroup> el_groups;
    std::vector<VertexId> el_nbrs;
    std::vector<uint32_t> type_group_offsets;  // per vertex -> range in type_groups
    std::vector<TypeGroup> type_groups;
    std::vector<VertexId> type_nbrs;
    // Compressed mode: the five arrays above except the offsets are freed
    // and `packed` holds the per-vertex records (offsets still provide the
    // directory entry counts and NumEdgeLabels/NumNeighborTypes).
    PackedDir packed;
  };
  const AdjDir& adj(Direction d) const { return d == Direction::kOut ? out_ : in_; }

  static uint32_t NumElEntries(const AdjDir& a, VertexId v);
  static uint32_t NumTypeEntries(const AdjDir& a, VertexId v);
  static bool PackedContains(const PackedDir& pd, size_t abs, uint32_t count, VertexId x);

  TransformMode mode_ = TransformMode::kTypeAware;
  StorageMode storage_ = StorageMode::kUncompressed;
  uint64_t num_edges_ = 0;

  // Vertex label CSR (full + simple entailment).
  std::vector<uint32_t> label_offsets_;
  std::vector<LabelId> labels_;
  std::vector<uint32_t> simple_label_offsets_;
  std::vector<LabelId> simple_labels_;

  // Inverse vertex-label list.
  std::vector<uint32_t> inv_label_offsets_;
  std::vector<VertexId> inv_label_vertices_;

  AdjDir out_;
  AdjDir in_;

  /// Per-vertex neighborhood signature (see signature()).
  std::vector<uint64_t> signatures_;

  std::vector<std::pair<TermId, TermId>> schema_subclass_;

  // Predicate index.
  std::vector<uint32_t> pred_subj_offsets_;
  std::vector<VertexId> pred_subjects_;
  std::vector<uint32_t> pred_obj_offsets_;
  std::vector<VertexId> pred_objects_;

  // Term maps.
  std::vector<TermId> vertex_terms_;
  std::vector<TermId> label_terms_;
  std::vector<TermId> el_terms_;
  std::unordered_map<TermId, VertexId> term_to_vertex_;
  std::unordered_map<TermId, LabelId> term_to_label_;
  std::unordered_map<TermId, EdgeLabelId> term_to_el_;

  friend class GraphBuilder;
  // Snapshot persistence (graph/graph_snapshot.cpp) reads/writes the raw
  // structures so compressed graphs reload without re-encoding.
  friend void SerializeDataGraph(const DataGraph& g, std::string* out);
  friend util::Result<DataGraph> DeserializeDataGraph(std::string_view payload);
};

/// Incremental DataGraph construction: triples arrive in dataset order as
/// encoded chunks (classification + id assignment happen per chunk, the CSR
/// sorts once in Finish). This is what lets the parallel load pipeline fuse
/// graph building into ingestion — each remapped chunk is consumed as soon
/// as it exists instead of re-scanning the finished dataset. The referenced
/// dictionary must already contain every id appearing in a chunk at the
/// time of its Append. DataGraph::Build is the one-shot wrapper.
class GraphBuilder {
 public:
  GraphBuilder(const rdf::Dictionary& dict, TransformMode mode,
               StorageMode storage = StorageMode::kUncompressed);

  /// Consumes one chunk of encoded triples; `inferred` marks the chunk as
  /// part of the inferred region (affects L_simple, §4.2). Chunks must
  /// arrive in dataset order, original before inferred.
  void Append(std::span<const rdf::Triple> chunk, bool inferred);

  /// Finalizes the CSR structures. The builder is spent afterwards.
  DataGraph Finish();

 private:
  struct EdgeTriple {
    VertexId s;
    EdgeLabelId el;
    VertexId o;
  };

  void ResolveSchemaPredicates();
  static void BuildAdjDir(DataGraph& g, const std::vector<EdgeTriple>& edges, uint32_t n,
                          bool out, DataGraph::AdjDir* dir);
  static void BuildSignatures(DataGraph& g, uint32_t n);
  static void CompressAdjDir(DataGraph::AdjDir* dir);

  const rdf::Dictionary& dict_;
  TransformMode mode_;
  DataGraph g_;
  std::vector<EdgeTriple> edges_;
  std::vector<std::pair<VertexId, LabelId>> label_pairs_;
  std::vector<std::pair<VertexId, LabelId>> simple_label_pairs_;
  std::optional<TermId> type_p_;
  std::optional<TermId> subclass_p_;
};

}  // namespace turbo::graph
