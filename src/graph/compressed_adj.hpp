// Delta + group-varint codec for the compressed adjacency storage mode.
//
// A sorted, strictly-increasing uint32 list of length n is encoded in blocks
// of kSkipBlock values. Within a block the first value is stored absolutely
// and every later value as (delta - 1) from its predecessor (lists are
// duplicate-free, so deltas are >= 1 and the -1 buys one more byte-length
// tier). Blocks are packed group-varint style: chunks of 4 values share one
// control byte whose 2-bit fields give each value's byte length minus one
// (1..4 bytes), followed by the payload bytes little-endian. A final chunk
// may cover fewer than 4 values; absent fields are zero and write no payload.
//
// Because every block restarts with an absolute value, a block can be decoded
// without touching its predecessors. One SkipEntry per block *after the
// first* records the block's first value and its byte offset from the list
// start, so a membership probe galloping over the skip table decodes at most
// one block (<= kSkipBlock values) instead of the whole list.
//
// Decoders read up to kDecodePad bytes past the last encoded byte of a
// stream (unaligned 16-byte loads in the SIMD path, 4-byte masked loads in
// the scalar path); callers must pad the underlying byte buffer accordingly.
// The fast path uses SSSE3 pshufb and is selected at build time: this
// translation unit is compiled with -mssse3 when TURBO_SIMD_DECODE is ON
// (see src/CMakeLists.txt), otherwise the scalar/SWAR fallback runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace turbo::graph {

/// Values per independently decodable block (and per skip-table stride).
inline constexpr uint32_t kSkipBlock = 128;

/// Bytes a decoder may read past the end of an encoded stream.
inline constexpr size_t kDecodePad = 16;

/// Skip-table entry for one block after the first: the block's first value
/// and the byte offset of the block from the start of its list's encoding.
struct SkipEntry {
  uint32_t first;
  uint32_t offset;
};

/// Appends the encoding of `values` (sorted, strictly increasing) to
/// `*bytes` and one SkipEntry per block after the first to `*skips` with
/// offsets relative to the start of this list's encoding.
void EncodeSortedList(std::span<const uint32_t> values, std::vector<uint8_t>* bytes,
                      std::vector<SkipEntry>* skips);

/// Decodes exactly `n` values from `bytes` into `out` (capacity >= n).
/// Returns the number of encoded bytes consumed.
size_t DecodeSortedList(const uint8_t* bytes, size_t n, uint32_t* out);

/// Membership test over an encoded list without a full decode: gallops the
/// skip table to the one candidate block and decodes only it.
bool CompressedContains(const uint8_t* bytes, size_t n, std::span<const SkipEntry> skips,
                        uint32_t x);

/// Name of the decode kernel compiled in ("ssse3" or "scalar").
const char* DecodeKernelName();

// LEB128 varints, used by the compressed graph's per-vertex group directory
// (data_graph.cpp). Unchecked reads: callers validate stream bounds once at
// build/load time, not per access.
inline void PutVarint32(std::vector<uint8_t>* out, uint32_t x) {
  while (x >= 0x80) {
    out->push_back(static_cast<uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out->push_back(static_cast<uint8_t>(x));
}

inline const uint8_t* GetVarint32(const uint8_t* p, uint32_t* out) {
  uint32_t x = *p++;
  if (x >= 0x80) {
    x &= 0x7f;
    for (uint32_t shift = 7;; shift += 7) {
      uint32_t b = *p++;
      x |= (b & 0x7f) << shift;
      if (b < 0x80) break;
    }
  }
  *out = x;
  return p;
}

}  // namespace turbo::graph
