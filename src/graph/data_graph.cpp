#include "graph/data_graph.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "rdf/vocabulary.hpp"
#include "util/sorted.hpp"

namespace turbo::graph {

namespace {

/// CSR helper: builds offsets from sorted (key, ...) rows.
template <typename Row, typename KeyFn>
std::vector<uint32_t> BuildOffsets(const std::vector<Row>& rows, size_t num_keys, KeyFn key) {
  std::vector<uint32_t> offsets(num_keys + 1, 0);
  for (const Row& r : rows) ++offsets[key(r) + 1];
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  return offsets;
}

inline LabelId GroupLabel(const DataGraph::ElGroup&) { return kInvalidId; }
inline LabelId GroupLabel(const DataGraph::TypeGroup& grp) { return grp.vl; }

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

GraphBuilder::GraphBuilder(const rdf::Dictionary& dict, TransformMode mode,
                           StorageMode storage)
    : dict_(dict), mode_(mode) {
  g_.mode_ = mode;
  g_.storage_ = storage;
}

void GraphBuilder::ResolveSchemaPredicates() {
  // Lazy per-chunk resolution: the dictionary may still be growing between
  // chunks (incremental use), but by the time a chunk is appended every id
  // it references — including rdf:type if present — is interned.
  if (!type_p_) type_p_ = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfType));
  if (!subclass_p_) subclass_p_ = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf));
}

void GraphBuilder::Append(std::span<const rdf::Triple> chunk, bool inferred) {
  if (chunk.empty()) return;
  ResolveSchemaPredicates();
  DataGraph& g = g_;

  auto vertex_of = [&](TermId t) -> VertexId {
    auto [it, added] = g.term_to_vertex_.try_emplace(
        t, static_cast<VertexId>(g.vertex_terms_.size()));
    if (added) g.vertex_terms_.push_back(t);
    return it->second;
  };
  auto label_of = [&](TermId t) -> LabelId {
    auto [it, added] =
        g.term_to_label_.try_emplace(t, static_cast<LabelId>(g.label_terms_.size()));
    if (added) g.label_terms_.push_back(t);
    return it->second;
  };
  auto el_of = [&](TermId t) -> EdgeLabelId {
    auto [it, added] =
        g.term_to_el_.try_emplace(t, static_cast<EdgeLabelId>(g.el_terms_.size()));
    if (added) g.el_terms_.push_back(t);
    return it->second;
  };

  for (const rdf::Triple& t : chunk) {
    if (mode_ == TransformMode::kTypeAware) {
      if (type_p_ && t.p == *type_p_) {
        VertexId v = vertex_of(t.s);
        LabelId l = label_of(t.o);
        label_pairs_.emplace_back(v, l);
        if (!inferred) simple_label_pairs_.emplace_back(v, l);
        continue;
      }
      if (subclass_p_ && t.p == *subclass_p_) {
        g.schema_subclass_.emplace_back(t.s, t.o);  // folded into labels
        continue;
      }
    }
    edges_.push_back({vertex_of(t.s), el_of(t.p), vertex_of(t.o)});
  }
}

DataGraph GraphBuilder::Finish() {
  DataGraph& g = g_;
  std::vector<EdgeTriple>& edges = edges_;

  // ---- Renumber graph ids into term-id order. ----
  // Append() assigns vertex / label / edge-label ids by first occurrence;
  // term ids are frequency-split (hot head in a dense low band, arrival-
  // order tail — see rdf/dictionary.hpp). Sorting graph ids by term id
  // carries that layout into every adjacency structure: hot vertices
  // cluster in the low id range, shrinking the delta gaps the compressed
  // encodings store, while the tail keeps its run-of-related-entities
  // locality. Pure function of the dictionary's ids — identical across
  // storage modes, thread counts, and append chunking.
  {
    auto renumber = [](auto& terms, auto& term_to_id) {
      using IdVec = std::vector<uint32_t>;
      IdVec order(terms.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
      std::sort(order.begin(), order.end(),
                [&](uint32_t a, uint32_t b) { return terms[a] < terms[b]; });
      IdVec new_id(order.size());
      std::decay_t<decltype(terms)> permuted(terms.size());
      for (size_t r = 0; r < order.size(); ++r) {
        new_id[order[r]] = static_cast<uint32_t>(r);
        permuted[r] = terms[order[r]];
      }
      terms = std::move(permuted);
      for (auto& [t, id] : term_to_id) id = new_id[id];
      return new_id;
    };
    const std::vector<uint32_t> vmap = renumber(g.vertex_terms_, g.term_to_vertex_);
    const std::vector<uint32_t> lmap = renumber(g.label_terms_, g.term_to_label_);
    const std::vector<uint32_t> emap = renumber(g.el_terms_, g.term_to_el_);
    for (EdgeTriple& e : edges) {
      e.s = vmap[e.s];
      e.el = emap[e.el];
      e.o = vmap[e.o];
    }
    for (auto& p : label_pairs_) p = {vmap[p.first], lmap[p.second]};
    for (auto& p : simple_label_pairs_) p = {vmap[p.first], lmap[p.second]};
  }

  const uint32_t n = static_cast<uint32_t>(g.vertex_terms_.size());
  const uint32_t num_labels = static_cast<uint32_t>(g.label_terms_.size());
  const uint32_t num_els = static_cast<uint32_t>(g.el_terms_.size());

  // ---- Deduplicate edges. ----
  std::sort(edges.begin(), edges.end(), [](const EdgeTriple& a, const EdgeTriple& b) {
    return std::tie(a.s, a.el, a.o) < std::tie(b.s, b.el, b.o);
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const EdgeTriple& a, const EdgeTriple& b) {
                            return a.s == b.s && a.el == b.el && a.o == b.o;
                          }),
              edges.end());
  g.num_edges_ = edges.size();

  // ---- Vertex label CSRs. ----
  auto build_label_csr = [&](std::vector<std::pair<VertexId, LabelId>>& pairs,
                             std::vector<uint32_t>* offsets, std::vector<LabelId>* flat) {
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    *offsets = BuildOffsets(pairs, n, [](const auto& p) { return p.first; });
    flat->resize(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) (*flat)[i] = pairs[i].second;
  };
  build_label_csr(label_pairs_, &g.label_offsets_, &g.labels_);
  build_label_csr(simple_label_pairs_, &g.simple_label_offsets_, &g.simple_labels_);

  // ---- Inverse vertex-label list. ----
  {
    std::vector<std::pair<LabelId, VertexId>> inv;
    inv.reserve(g.labels_.size());
    for (VertexId v = 0; v < n; ++v)
      for (LabelId l : g.labels(v)) inv.emplace_back(l, v);
    std::sort(inv.begin(), inv.end());
    g.inv_label_offsets_ = BuildOffsets(inv, num_labels, [](const auto& p) { return p.first; });
    g.inv_label_vertices_.resize(inv.size());
    for (size_t i = 0; i < inv.size(); ++i) g.inv_label_vertices_[i] = inv[i].second;
  }

  // ---- Adjacency (out, then in by swapping endpoints). ----
  BuildAdjDir(g, edges, n, /*out=*/true, &g.out_);
  BuildAdjDir(g, edges, n, /*out=*/false, &g.in_);

  // Signatures derive from group metadata only, so they are identical across
  // storage modes and must be built before the value arrays are replaced.
  BuildSignatures(g, n);
  if (g.storage_ == StorageMode::kCompressed) {
    CompressAdjDir(&g.out_);
    CompressAdjDir(&g.in_);
  }

  // ---- Predicate index. ----
  {
    std::vector<std::pair<EdgeLabelId, VertexId>> subj, obj;
    subj.reserve(edges.size());
    obj.reserve(edges.size());
    for (const EdgeTriple& e : edges) {
      subj.emplace_back(e.el, e.s);
      obj.emplace_back(e.el, e.o);
    }
    auto finish = [&](std::vector<std::pair<EdgeLabelId, VertexId>>& pairs,
                      std::vector<uint32_t>* offsets, std::vector<VertexId>* flat) {
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      *offsets = BuildOffsets(pairs, num_els, [](const auto& p) { return p.first; });
      flat->resize(pairs.size());
      for (size_t i = 0; i < pairs.size(); ++i) (*flat)[i] = pairs[i].second;
    };
    finish(subj, &g.pred_subj_offsets_, &g.pred_subjects_);
    finish(obj, &g.pred_obj_offsets_, &g.pred_objects_);
  }

  std::sort(g.schema_subclass_.begin(), g.schema_subclass_.end());
  g.schema_subclass_.erase(
      std::unique(g.schema_subclass_.begin(), g.schema_subclass_.end()),
      g.schema_subclass_.end());
  return std::move(g);
}

void GraphBuilder::BuildAdjDir(DataGraph& g, const std::vector<EdgeTriple>& edges, uint32_t n,
                               bool out, DataGraph::AdjDir* dir) {
    // Edge-label-only rows: (v, el, nbr).
    std::vector<std::array<uint32_t, 3>> rows;
    rows.reserve(edges.size());
    for (const auto& e : edges) {
      if (out)
        rows.push_back({e.s, e.el, e.o});
      else
        rows.push_back({e.o, e.el, e.s});
    }
    std::sort(rows.begin(), rows.end());

    dir->el_nbrs.resize(rows.size());
    dir->el_group_offsets.assign(n + 1, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      dir->el_nbrs[i] = rows[i][2];
      bool new_group = i == 0 || rows[i][0] != rows[i - 1][0] || rows[i][1] != rows[i - 1][1];
      if (new_group)
        dir->el_groups.push_back(
            {rows[i][1], static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1)});
      else
        dir->el_groups.back().end = static_cast<uint32_t>(i + 1);
      if (new_group) ++dir->el_group_offsets[rows[i][0] + 1];
    }
    for (size_t i = 1; i < dir->el_group_offsets.size(); ++i)
      dir->el_group_offsets[i] += dir->el_group_offsets[i - 1];

#ifndef NDEBUG
    // AllNeighborsRaw spans from the first group's begin to the last group's
    // end, which is only a valid range because a vertex's el-groups cover
    // one contiguous run of el_nbrs. The grouped row sort above guarantees
    // it (group k starts where group k-1 ends); any alternative builder that
    // breaks the invariant must fail here, not corrupt reads later.
    for (uint32_t v = 0; v < n; ++v)
      for (uint32_t k = dir->el_group_offsets[v] + 1; k < dir->el_group_offsets[v + 1];
           ++k)
        assert(dir->el_groups[k].begin == dir->el_groups[k - 1].end);
#endif

    // Neighbour-type rows: (v, el, vl, nbr) — one row per label of nbr.
    std::vector<std::array<uint32_t, 4>> trows;
    for (const auto& r : rows) {
      for (LabelId l : g.labels(r[2])) trows.push_back({r[0], r[1], l, r[2]});
    }
    std::sort(trows.begin(), trows.end());
    dir->type_nbrs.resize(trows.size());
    dir->type_group_offsets.assign(n + 1, 0);
    for (size_t i = 0; i < trows.size(); ++i) {
      dir->type_nbrs[i] = trows[i][3];
      bool new_group = i == 0 || trows[i][0] != trows[i - 1][0] ||
                       trows[i][1] != trows[i - 1][1] || trows[i][2] != trows[i - 1][2];
      if (new_group)
        dir->type_groups.push_back({trows[i][1], trows[i][2], static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(i + 1)});
      else
        dir->type_groups.back().end = static_cast<uint32_t>(i + 1);
      if (new_group) ++dir->type_group_offsets[trows[i][0] + 1];
    }
    for (size_t i = 1; i < dir->type_group_offsets.size(); ++i)
      dir->type_group_offsets[i] += dir->type_group_offsets[i - 1];
}

void GraphBuilder::BuildSignatures(DataGraph& g, uint32_t n) {
  g.signatures_.assign(n, 0);
  for (Direction d : {Direction::kOut, Direction::kIn}) {
    const DataGraph::AdjDir& a = d == Direction::kOut ? g.out_ : g.in_;
    for (VertexId v = 0; v < n; ++v) {
      uint64_t sig = g.signatures_[v];
      for (uint32_t k = a.el_group_offsets[v]; k < a.el_group_offsets[v + 1]; ++k)
        sig |= DataGraph::SignatureBit(d, a.el_groups[k].el, kInvalidId);
      for (uint32_t k = a.type_group_offsets[v]; k < a.type_group_offsets[v + 1]; ++k)
        sig |= DataGraph::SignatureBit(d, a.type_groups[k].el, a.type_groups[k].vl);
      g.signatures_[v] = sig;
    }
  }
}

void GraphBuilder::CompressAdjDir(DataGraph::AdjDir* dir) {
  DataGraph::PackedDir pd;
  const size_t n = dir->el_group_offsets.size() - 1;
  pd.vertex_begin.reserve(n + 1);
  pd.degree.assign(n, 0);

  // Reused per-section staging: the directory varints can only be emitted
  // once every group's encoded length is known, so values stage in `valbuf`.
  std::vector<uint8_t> dirbuf, valbuf;
  std::vector<SkipEntry> gskips;
  // Groups longer than a block carry skip entries; their absolute offsets are
  // only known when the section lands in `data`, so they stage too.
  std::vector<SkipEntry> pending_skips;
  std::vector<std::pair<uint32_t, uint32_t>> pending;  // (voff, entry count)

  auto emit_section = [&](auto groups, const std::vector<VertexId>& nbrs, bool type_dir) {
    dirbuf.clear();
    valbuf.clear();
    pending_skips.clear();
    pending.clear();
    uint32_t prev_el = 0, prev_vl = 0;
    bool first = true;
    for (const auto& grp : groups) {
      const uint32_t count = grp.end - grp.begin;
      const size_t val_start = valbuf.size();
      gskips.clear();
      EncodeSortedList({nbrs.data() + grp.begin, nbrs.data() + grp.end}, &valbuf,
                       &gskips);
      if (!gskips.empty()) {
        pending.emplace_back(static_cast<uint32_t>(val_start),
                             static_cast<uint32_t>(gskips.size()));
        pending_skips.insert(pending_skips.end(), gskips.begin(), gskips.end());
      }
      if (type_dir) {
        LabelId vl = GroupLabel(grp);
        uint32_t el_delta = first ? grp.el : grp.el - prev_el;
        PutVarint32(&dirbuf, el_delta);
        PutVarint32(&dirbuf, !first && el_delta == 0 ? vl - prev_vl - 1 : vl);
        prev_vl = vl;
      } else {
        PutVarint32(&dirbuf, first ? grp.el : grp.el - prev_el - 1);
      }
      prev_el = grp.el;
      first = false;
      PutVarint32(&dirbuf, count - 1);
      PutVarint32(&dirbuf, static_cast<uint32_t>(valbuf.size() - val_start));
    }
    pd.data.insert(pd.data.end(), dirbuf.begin(), dirbuf.end());
    const size_t vbase = pd.data.size();
    pd.data.insert(pd.data.end(), valbuf.begin(), valbuf.end());
    size_t next_skip = 0;
    for (const auto& [voff, count] : pending) {
      pd.skip_index.emplace_back(static_cast<uint32_t>(vbase + voff),
                                 static_cast<uint32_t>(pd.skips.size()));
      pd.skips.insert(pd.skips.end(), pending_skips.begin() + next_skip,
                      pending_skips.begin() + next_skip + count);
      next_skip += count;
    }
  };

  for (uint32_t v = 0; v < n; ++v) {
    pd.vertex_begin.push_back(static_cast<uint32_t>(pd.data.size()));
    std::span<const DataGraph::ElGroup> egs{
        dir->el_groups.data() + dir->el_group_offsets[v],
        dir->el_groups.data() + dir->el_group_offsets[v + 1]};
    for (const auto& grp : egs) pd.degree[v] += grp.end - grp.begin;
    emit_section(egs, dir->el_nbrs, /*type_dir=*/false);
    emit_section(std::span<const DataGraph::TypeGroup>{
                     dir->type_groups.data() + dir->type_group_offsets[v],
                     dir->type_groups.data() + dir->type_group_offsets[v + 1]},
                 dir->type_nbrs, /*type_dir=*/true);
  }
  // Per-vertex offsets are uint32: one direction's stream past 4GB would
  // need a wider type (and partitioned storage long before that).
  assert(pd.data.size() <= UINT32_MAX - kDecodePad);
  pd.vertex_begin.push_back(static_cast<uint32_t>(pd.data.size()));
  pd.data.insert(pd.data.end(), kDecodePad, 0);
  pd.data.shrink_to_fit();

  dir->packed = std::move(pd);
  dir->el_groups = std::vector<DataGraph::ElGroup>();
  dir->el_nbrs = std::vector<VertexId>();
  dir->type_groups = std::vector<DataGraph::TypeGroup>();
  dir->type_nbrs = std::vector<VertexId>();
}

DataGraph DataGraph::Build(const rdf::Dataset& dataset, TransformMode mode,
                           StorageMode storage) {
  GraphBuilder builder(dataset.dict(), mode, storage);
  const auto& triples = dataset.triples();
  const size_t num_original = dataset.num_original();
  builder.Append({triples.data(), num_original}, /*inferred=*/false);
  builder.Append({triples.data() + num_original, triples.size() - num_original},
                 /*inferred=*/true);
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool DataGraph::HasLabel(VertexId v, LabelId l, bool simple) const {
  auto ls = simple ? simple_labels(v) : labels(v);
  return std::binary_search(ls.begin(), ls.end(), l);
}

namespace {

/// lower_bound over a vertex's el-groups; returns the group's position
/// within the span or npos.
inline size_t FindElGroup(std::span<const DataGraph::ElGroup> groups, EdgeLabelId el) {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), el,
      [](const DataGraph::ElGroup& grp, EdgeLabelId x) { return grp.el < x; });
  if (it == groups.end() || it->el != el) return static_cast<size_t>(-1);
  return static_cast<size_t>(it - groups.begin());
}

inline size_t FindTypeGroup(std::span<const DataGraph::TypeGroup> groups, EdgeLabelId el,
                            LabelId vl) {
  auto it = std::lower_bound(
      groups.begin(), groups.end(), std::make_pair(el, vl),
      [](const DataGraph::TypeGroup& grp, const std::pair<EdgeLabelId, LabelId>& x) {
        return std::tie(grp.el, grp.vl) < std::tie(x.first, x.second);
      });
  if (it == groups.end() || it->el != el || it->vl != vl) return static_cast<size_t>(-1);
  return static_cast<size_t>(it - groups.begin());
}

constexpr size_t kNoGroup = static_cast<size_t>(-1);

// ---- Packed-record walkers (compressed mode). ----
//
// One parsed directory entry. `voff` is the byte offset of the group's value
// encoding relative to its section's value base.
struct PackedGroup {
  EdgeLabelId el;
  LabelId vl;  // kInvalidId in the el directory
  uint32_t count;
  uint32_t voff;
};

/// Walks the el directory starting at `p` (n entries), calling fn(entry) for
/// each. Returns the position one past the directory — the el value base —
/// and leaves the section's total value bytes in *vtotal.
template <typename Fn>
const uint8_t* WalkElDir(const uint8_t* p, uint32_t n, uint32_t* vtotal, Fn&& fn) {
  uint32_t el = 0, voff = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t d, cm1, vb;
    p = GetVarint32(p, &d);
    p = GetVarint32(p, &cm1);
    p = GetVarint32(p, &vb);
    el = i == 0 ? d : el + d + 1;
    fn(PackedGroup{el, kInvalidId, cm1 + 1, voff});
    voff += vb;
  }
  *vtotal = voff;
  return p;
}

template <typename Fn>
const uint8_t* WalkTypeDir(const uint8_t* p, uint32_t n, uint32_t* vtotal, Fn&& fn) {
  uint32_t el = 0, vl = 0, voff = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t d, vd, cm1, vb;
    p = GetVarint32(p, &d);
    p = GetVarint32(p, &vd);
    p = GetVarint32(p, &cm1);
    p = GetVarint32(p, &vb);
    el += d;
    vl = (i != 0 && d == 0) ? vl + vd + 1 : vd;
    fn(PackedGroup{el, vl, cm1 + 1, voff});
    voff += vb;
  }
  *vtotal = voff;
  return p;
}

}  // namespace

uint32_t DataGraph::NumElEntries(const AdjDir& a, VertexId v) {
  return a.el_group_offsets[v + 1] - a.el_group_offsets[v];
}

uint32_t DataGraph::NumTypeEntries(const AdjDir& a, VertexId v) {
  return a.type_group_offsets[v + 1] - a.type_group_offsets[v];
}

/// Membership probe against one encoded group at absolute value offset
/// `abs` in `pd.data`: gallop the (sparse) skip table, decode one block.
bool DataGraph::PackedContains(const PackedDir& pd, size_t abs, uint32_t count,
                               VertexId x) {
  std::span<const SkipEntry> sk{};
  if (count > kSkipBlock) {
    auto it = std::lower_bound(
        pd.skip_index.begin(), pd.skip_index.end(), abs,
        [](const std::pair<uint32_t, uint32_t>& e, size_t off) { return e.first < off; });
    assert(it != pd.skip_index.end() && it->first == abs);
    sk = {pd.skips.data() + it->second, (count - 1) / kSkipBlock};
  }
  return CompressedContains(pd.data.data() + abs, count, sk, x);
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el) const {
  assert(!compressed());
  const AdjDir& a = adj(d);
  auto groups = ElGroups(v, d);
  size_t k = FindElGroup(groups, el);
  if (k == kNoGroup) return {};
  return {a.el_nbrs.data() + groups[k].begin, a.el_nbrs.data() + groups[k].end};
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                               std::vector<VertexId>& scratch) const {
  const AdjDir& a = adj(d);
  if (!compressed()) return Neighbors(v, d, el);
  const PackedDir& pd = a.packed;
  uint32_t count = 0, voff = 0, vtotal = 0;
  const uint8_t* vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &vtotal,
                [&](const PackedGroup& g) {
                  if (g.el == el) {
                    count = g.count;
                    voff = g.voff;
                  }
                });
  if (count == 0) return {};
  scratch.resize(count);
  DecodeSortedList(vbase + voff, count, scratch.data());
  return {scratch.data(), count};
}

uint32_t DataGraph::NeighborCount(VertexId v, Direction d, EdgeLabelId el) const {
  const AdjDir& a = adj(d);
  if (!compressed()) {
    auto groups = ElGroups(v, d);
    size_t k = FindElGroup(groups, el);
    return k == kNoGroup ? 0 : groups[k].end - groups[k].begin;
  }
  const PackedDir& pd = a.packed;
  uint32_t count = 0, vtotal = 0;
  WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &vtotal,
            [&](const PackedGroup& g) {
              if (g.el == el) count = g.count;
            });
  return count;
}

uint32_t DataGraph::NeighborCount(VertexId v, Direction d, EdgeLabelId el,
                                  LabelId vl) const {
  const AdjDir& a = adj(d);
  if (!compressed()) {
    auto groups = TypeGroups(v, d);
    size_t k = FindTypeGroup(groups, el, vl);
    return k == kNoGroup ? 0 : groups[k].end - groups[k].begin;
  }
  const PackedDir& pd = a.packed;
  uint32_t el_vtotal = 0;
  const uint8_t* el_vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &el_vtotal,
                [](const PackedGroup&) {});
  uint32_t count = 0, t_vtotal = 0;
  WalkTypeDir(el_vbase + el_vtotal, NumTypeEntries(a, v), &t_vtotal,
              [&](const PackedGroup& g) {
                if (g.el == el && g.vl == vl) count = g.count;
              });
  return count;
}

uint32_t DataGraph::NeighborCountWithLabel(VertexId v, Direction d, LabelId vl) const {
  const AdjDir& a = adj(d);
  uint32_t total = 0;
  if (!compressed()) {
    for (const auto& grp : TypeGroups(v, d))
      if (grp.vl == vl) total += grp.end - grp.begin;
    return total;
  }
  const PackedDir& pd = a.packed;
  uint32_t el_vtotal = 0;
  const uint8_t* el_vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &el_vtotal,
                [](const PackedGroup&) {});
  uint32_t t_vtotal = 0;
  WalkTypeDir(el_vbase + el_vtotal, NumTypeEntries(a, v), &t_vtotal,
              [&](const PackedGroup& g) {
                if (g.vl == vl) total += g.count;
              });
  return total;
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                               LabelId vl,
                                               std::vector<VertexId>& scratch) const {
  const AdjDir& a = adj(d);
  if (!compressed()) return Neighbors(v, d, el, vl);
  const PackedDir& pd = a.packed;
  uint32_t el_vtotal = 0;
  const uint8_t* el_vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &el_vtotal,
                [](const PackedGroup&) {});
  uint32_t count = 0, voff = 0, t_vtotal = 0;
  const uint8_t* t_vbase =
      WalkTypeDir(el_vbase + el_vtotal, NumTypeEntries(a, v), &t_vtotal,
                  [&](const PackedGroup& g) {
                    if (g.el == el && g.vl == vl) {
                      count = g.count;
                      voff = g.voff;
                    }
                  });
  if (count == 0) return {};
  scratch.resize(count);
  DecodeSortedList(t_vbase + voff, count, scratch.data());
  return {scratch.data(), count};
}

std::span<const VertexId> DataGraph::AllNeighbors(VertexId v, Direction d,
                                                  std::vector<VertexId>& scratch) const {
  if (!compressed()) return AllNeighborsRaw(v, d);
  const AdjDir& a = adj(d);
  const PackedDir& pd = a.packed;
  scratch.resize(pd.degree[v]);
  // Two passes: the value base is only known once the directory has been
  // walked, so collect counts first, then decode each group in place.
  size_t pos = 0;
  uint32_t vtotal = 0;
  const uint8_t* vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &vtotal,
                [](const PackedGroup&) {});
  WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &vtotal,
            [&](const PackedGroup& g) {
              DecodeSortedList(vbase + g.voff, g.count, scratch.data() + pos);
              pos += g.count;
            });
  return {scratch.data(), pos};
}

std::span<const VertexId> DataGraph::UnionNeighbors(VertexId v, Direction d,
                                                    std::vector<VertexId>& out) const {
  const AdjDir& a = adj(d);
  if (!compressed()) {
    auto groups = ElGroups(v, d);
    if (groups.empty()) return {};
    if (groups.size() == 1) return GroupNeighbors(d, groups[0]);
    std::vector<std::span<const VertexId>> spans;
    spans.reserve(groups.size());
    for (const auto& grp : groups) spans.push_back(GroupNeighbors(d, grp));
    util::UnionInto(spans, &out);
    return out;
  }
  const uint32_t n_el = NumElEntries(a, v);
  AllNeighbors(v, d, out);
  if (n_el > 1) {
    // Concatenation of a few sorted runs; sort + unique is near-linear here
    // and avoids a second buffer for a k-way merge.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::span<const VertexId> DataGraph::NeighborsWithLabel(VertexId v, Direction d,
                                                        LabelId vl,
                                                        std::vector<VertexId>& out) const {
  const AdjDir& a = adj(d);
  if (!compressed()) {
    auto groups = TypeGroups(v, d);
    const TypeGroup* only = nullptr;
    std::vector<std::span<const VertexId>> spans;
    for (const auto& grp : groups) {
      if (grp.vl != vl) continue;
      only = &grp;
      spans.push_back(GroupNeighbors(d, grp));
    }
    if (spans.empty()) return {};
    if (spans.size() == 1) return GroupNeighbors(d, *only);
    util::UnionInto(spans, &out);
    return out;
  }
  const PackedDir& pd = a.packed;
  uint32_t el_vtotal = 0;
  const uint8_t* el_vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[v], NumElEntries(a, v), &el_vtotal,
                [](const PackedGroup&) {});
  uint32_t total = 0, matches = 0, t_vtotal = 0;
  const uint8_t* t_vbase =
      WalkTypeDir(el_vbase + el_vtotal, NumTypeEntries(a, v), &t_vtotal,
                  [&](const PackedGroup& g) {
                    if (g.vl == vl) {
                      total += g.count;
                      ++matches;
                    }
                  });
  out.resize(total);
  size_t pos = 0;
  WalkTypeDir(el_vbase + el_vtotal, NumTypeEntries(a, v), &t_vtotal,
              [&](const PackedGroup& g) {
                if (g.vl != vl) return;
                DecodeSortedList(t_vbase + g.voff, g.count, out.data() + pos);
                pos += g.count;
              });
  if (matches > 1) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                               LabelId vl) const {
  assert(!compressed());
  const AdjDir& a = adj(d);
  auto groups = TypeGroups(v, d);
  auto it = std::lower_bound(groups.begin(), groups.end(), std::make_pair(el, vl),
                             [](const TypeGroup& grp, const std::pair<EdgeLabelId, LabelId>& x) {
                               return std::tie(grp.el, grp.vl) < std::tie(x.first, x.second);
                             });
  if (it == groups.end() || it->el != el || it->vl != vl) return {};
  return {a.type_nbrs.data() + it->begin, a.type_nbrs.data() + it->end};
}

bool DataGraph::HasEdge(VertexId from, VertexId to, EdgeLabelId el) const {
  if (!compressed()) {
    auto nbrs = Neighbors(from, Direction::kOut, el);
    return std::binary_search(nbrs.begin(), nbrs.end(), to);
  }
  // Compressed membership: gallop the skip table, decode one block at most.
  const PackedDir& pd = out_.packed;
  uint32_t count = 0, voff = 0, vtotal = 0;
  const uint8_t* vbase =
      WalkElDir(pd.data.data() + pd.vertex_begin[from], NumElEntries(out_, from),
                &vtotal, [&](const PackedGroup& g) {
                  if (g.el == el) {
                    count = g.count;
                    voff = g.voff;
                  }
                });
  if (count == 0) return false;
  return PackedContains(pd, static_cast<size_t>(vbase - pd.data.data()) + voff, count,
                        to);
}

void DataGraph::EdgeLabelsBetween(VertexId from, VertexId to,
                                  std::vector<EdgeLabelId>* out) const {
  out->clear();
  if (!compressed()) {
    for (const ElGroup& grp : ElGroups(from, Direction::kOut)) {
      std::span<const VertexId> nbrs{out_.el_nbrs.data() + grp.begin,
                                     out_.el_nbrs.data() + grp.end};
      if (std::binary_search(nbrs.begin(), nbrs.end(), to)) out->push_back(grp.el);
    }
    return;
  }
  const PackedDir& pd = out_.packed;
  const uint8_t* rec = pd.data.data() + pd.vertex_begin[from];
  const uint32_t n_el = NumElEntries(out_, from);
  uint32_t vtotal = 0;
  const uint8_t* vbase = WalkElDir(rec, n_el, &vtotal, [](const PackedGroup&) {});
  const size_t base = static_cast<size_t>(vbase - pd.data.data());
  WalkElDir(rec, n_el, &vtotal, [&](const PackedGroup& g) {
    if (PackedContains(pd, base + g.voff, g.count, to)) out->push_back(g.el);
  });
}

DataGraph::MemoryBreakdown DataGraph::MemoryUsage() const {
  auto bytes_of = [](const auto& v) { return v.size() * sizeof(v[0]); };
  MemoryBreakdown m;
  m.vertex_labels = bytes_of(label_offsets_) + bytes_of(labels_) +
                    bytes_of(simple_label_offsets_) + bytes_of(simple_labels_);
  m.inverse_label_index = bytes_of(inv_label_offsets_) + bytes_of(inv_label_vertices_);
  for (const AdjDir* a : {&out_, &in_}) {
    m.adjacency_groups += bytes_of(a->el_group_offsets) + bytes_of(a->el_groups) +
                          bytes_of(a->type_group_offsets) + bytes_of(a->type_groups);
    m.adjacency_neighbors += bytes_of(a->el_nbrs) + bytes_of(a->type_nbrs);
    const PackedDir& pd = a->packed;
    m.adjacency_compressed += bytes_of(pd.data) + bytes_of(pd.vertex_begin) +
                              bytes_of(pd.degree) + bytes_of(pd.skip_index);
    m.skip_tables += bytes_of(pd.skips);
  }
  m.signatures = bytes_of(signatures_);
  m.predicate_index = bytes_of(pred_subj_offsets_) + bytes_of(pred_subjects_) +
                      bytes_of(pred_obj_offsets_) + bytes_of(pred_objects_);
  m.schema = bytes_of(schema_subclass_);
  // Hash maps are estimated: per-node payload + two pointers, plus the
  // bucket array. Close enough for the startup report; the gated
  // comparisons only use the exact adjacency fields.
  auto map_bytes = [](const auto& map) {
    using Node = typename std::remove_reference_t<decltype(map)>::value_type;
    return map.size() * (sizeof(Node) + 2 * sizeof(void*)) +
           map.bucket_count() * sizeof(void*);
  };
  m.term_maps = bytes_of(vertex_terms_) + bytes_of(label_terms_) + bytes_of(el_terms_) +
                map_bytes(term_to_vertex_) + map_bytes(term_to_label_) +
                map_bytes(term_to_el_);
  return m;
}

uint32_t DataGraph::Degree(VertexId v, Direction d) const {
  if (compressed()) return adj(d).packed.degree[v];
  auto groups = ElGroups(v, d);
  if (groups.empty()) return 0;
  return groups.back().end - groups.front().begin;
}

std::optional<VertexId> DataGraph::VertexOfTerm(TermId t) const {
  auto it = term_to_vertex_.find(t);
  if (it == term_to_vertex_.end()) return std::nullopt;
  return it->second;
}

std::optional<LabelId> DataGraph::LabelOfTerm(TermId t) const {
  auto it = term_to_label_.find(t);
  if (it == term_to_label_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeLabelId> DataGraph::EdgeLabelOfTerm(TermId t) const {
  auto it = term_to_el_.find(t);
  if (it == term_to_el_.end()) return std::nullopt;
  return it->second;
}

}  // namespace turbo::graph
