#include "graph/data_graph.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "rdf/vocabulary.hpp"

namespace turbo::graph {

namespace {

/// CSR helper: builds offsets from sorted (key, ...) rows.
template <typename Row, typename KeyFn>
std::vector<uint32_t> BuildOffsets(const std::vector<Row>& rows, size_t num_keys, KeyFn key) {
  std::vector<uint32_t> offsets(num_keys + 1, 0);
  for (const Row& r : rows) ++offsets[key(r) + 1];
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  return offsets;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

GraphBuilder::GraphBuilder(const rdf::Dictionary& dict, TransformMode mode)
    : dict_(dict), mode_(mode) {
  g_.mode_ = mode;
}

void GraphBuilder::ResolveSchemaPredicates() {
  // Lazy per-chunk resolution: the dictionary may still be growing between
  // chunks (incremental use), but by the time a chunk is appended every id
  // it references — including rdf:type if present — is interned.
  if (!type_p_) type_p_ = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfType));
  if (!subclass_p_) subclass_p_ = dict_.Find(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf));
}

void GraphBuilder::Append(std::span<const rdf::Triple> chunk, bool inferred) {
  if (chunk.empty()) return;
  ResolveSchemaPredicates();
  DataGraph& g = g_;

  auto vertex_of = [&](TermId t) -> VertexId {
    auto [it, added] = g.term_to_vertex_.try_emplace(
        t, static_cast<VertexId>(g.vertex_terms_.size()));
    if (added) g.vertex_terms_.push_back(t);
    return it->second;
  };
  auto label_of = [&](TermId t) -> LabelId {
    auto [it, added] =
        g.term_to_label_.try_emplace(t, static_cast<LabelId>(g.label_terms_.size()));
    if (added) g.label_terms_.push_back(t);
    return it->second;
  };
  auto el_of = [&](TermId t) -> EdgeLabelId {
    auto [it, added] =
        g.term_to_el_.try_emplace(t, static_cast<EdgeLabelId>(g.el_terms_.size()));
    if (added) g.el_terms_.push_back(t);
    return it->second;
  };

  for (const rdf::Triple& t : chunk) {
    if (mode_ == TransformMode::kTypeAware) {
      if (type_p_ && t.p == *type_p_) {
        VertexId v = vertex_of(t.s);
        LabelId l = label_of(t.o);
        label_pairs_.emplace_back(v, l);
        if (!inferred) simple_label_pairs_.emplace_back(v, l);
        continue;
      }
      if (subclass_p_ && t.p == *subclass_p_) {
        g.schema_subclass_.emplace_back(t.s, t.o);  // folded into labels
        continue;
      }
    }
    edges_.push_back({vertex_of(t.s), el_of(t.p), vertex_of(t.o)});
  }
}

DataGraph GraphBuilder::Finish() {
  DataGraph& g = g_;
  std::vector<EdgeTriple>& edges = edges_;

  const uint32_t n = static_cast<uint32_t>(g.vertex_terms_.size());
  const uint32_t num_labels = static_cast<uint32_t>(g.label_terms_.size());
  const uint32_t num_els = static_cast<uint32_t>(g.el_terms_.size());

  // ---- Deduplicate edges. ----
  std::sort(edges.begin(), edges.end(), [](const EdgeTriple& a, const EdgeTriple& b) {
    return std::tie(a.s, a.el, a.o) < std::tie(b.s, b.el, b.o);
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const EdgeTriple& a, const EdgeTriple& b) {
                            return a.s == b.s && a.el == b.el && a.o == b.o;
                          }),
              edges.end());
  g.num_edges_ = edges.size();

  // ---- Vertex label CSRs. ----
  auto build_label_csr = [&](std::vector<std::pair<VertexId, LabelId>>& pairs,
                             std::vector<uint32_t>* offsets, std::vector<LabelId>* flat) {
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    *offsets = BuildOffsets(pairs, n, [](const auto& p) { return p.first; });
    flat->resize(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) (*flat)[i] = pairs[i].second;
  };
  build_label_csr(label_pairs_, &g.label_offsets_, &g.labels_);
  build_label_csr(simple_label_pairs_, &g.simple_label_offsets_, &g.simple_labels_);

  // ---- Inverse vertex-label list. ----
  {
    std::vector<std::pair<LabelId, VertexId>> inv;
    inv.reserve(g.labels_.size());
    for (VertexId v = 0; v < n; ++v)
      for (LabelId l : g.labels(v)) inv.emplace_back(l, v);
    std::sort(inv.begin(), inv.end());
    g.inv_label_offsets_ = BuildOffsets(inv, num_labels, [](const auto& p) { return p.first; });
    g.inv_label_vertices_.resize(inv.size());
    for (size_t i = 0; i < inv.size(); ++i) g.inv_label_vertices_[i] = inv[i].second;
  }

  // ---- Adjacency (out, then in by swapping endpoints). ----
  BuildAdjDir(g, edges, n, /*out=*/true, &g.out_);
  BuildAdjDir(g, edges, n, /*out=*/false, &g.in_);

  // ---- Predicate index. ----
  {
    std::vector<std::pair<EdgeLabelId, VertexId>> subj, obj;
    subj.reserve(edges.size());
    obj.reserve(edges.size());
    for (const EdgeTriple& e : edges) {
      subj.emplace_back(e.el, e.s);
      obj.emplace_back(e.el, e.o);
    }
    auto finish = [&](std::vector<std::pair<EdgeLabelId, VertexId>>& pairs,
                      std::vector<uint32_t>* offsets, std::vector<VertexId>* flat) {
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      *offsets = BuildOffsets(pairs, num_els, [](const auto& p) { return p.first; });
      flat->resize(pairs.size());
      for (size_t i = 0; i < pairs.size(); ++i) (*flat)[i] = pairs[i].second;
    };
    finish(subj, &g.pred_subj_offsets_, &g.pred_subjects_);
    finish(obj, &g.pred_obj_offsets_, &g.pred_objects_);
  }

  std::sort(g.schema_subclass_.begin(), g.schema_subclass_.end());
  g.schema_subclass_.erase(
      std::unique(g.schema_subclass_.begin(), g.schema_subclass_.end()),
      g.schema_subclass_.end());
  return std::move(g);
}

void GraphBuilder::BuildAdjDir(DataGraph& g, const std::vector<EdgeTriple>& edges, uint32_t n,
                               bool out, DataGraph::AdjDir* dir) {
    // Edge-label-only rows: (v, el, nbr).
    std::vector<std::array<uint32_t, 3>> rows;
    rows.reserve(edges.size());
    for (const auto& e : edges) {
      if (out)
        rows.push_back({e.s, e.el, e.o});
      else
        rows.push_back({e.o, e.el, e.s});
    }
    std::sort(rows.begin(), rows.end());

    dir->el_nbrs.resize(rows.size());
    dir->el_group_offsets.assign(n + 1, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      dir->el_nbrs[i] = rows[i][2];
      bool new_group = i == 0 || rows[i][0] != rows[i - 1][0] || rows[i][1] != rows[i - 1][1];
      if (new_group)
        dir->el_groups.push_back(
            {rows[i][1], static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1)});
      else
        dir->el_groups.back().end = static_cast<uint32_t>(i + 1);
      if (new_group) ++dir->el_group_offsets[rows[i][0] + 1];
    }
    for (size_t i = 1; i < dir->el_group_offsets.size(); ++i)
      dir->el_group_offsets[i] += dir->el_group_offsets[i - 1];

    // Neighbour-type rows: (v, el, vl, nbr) — one row per label of nbr.
    std::vector<std::array<uint32_t, 4>> trows;
    for (const auto& r : rows) {
      for (LabelId l : g.labels(r[2])) trows.push_back({r[0], r[1], l, r[2]});
    }
    std::sort(trows.begin(), trows.end());
    dir->type_nbrs.resize(trows.size());
    dir->type_group_offsets.assign(n + 1, 0);
    for (size_t i = 0; i < trows.size(); ++i) {
      dir->type_nbrs[i] = trows[i][3];
      bool new_group = i == 0 || trows[i][0] != trows[i - 1][0] ||
                       trows[i][1] != trows[i - 1][1] || trows[i][2] != trows[i - 1][2];
      if (new_group)
        dir->type_groups.push_back({trows[i][1], trows[i][2], static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(i + 1)});
      else
        dir->type_groups.back().end = static_cast<uint32_t>(i + 1);
      if (new_group) ++dir->type_group_offsets[trows[i][0] + 1];
    }
    for (size_t i = 1; i < dir->type_group_offsets.size(); ++i)
      dir->type_group_offsets[i] += dir->type_group_offsets[i - 1];
}

DataGraph DataGraph::Build(const rdf::Dataset& dataset, TransformMode mode) {
  GraphBuilder builder(dataset.dict(), mode);
  const auto& triples = dataset.triples();
  const size_t num_original = dataset.num_original();
  builder.Append({triples.data(), num_original}, /*inferred=*/false);
  builder.Append({triples.data() + num_original, triples.size() - num_original},
                 /*inferred=*/true);
  return builder.Finish();
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool DataGraph::HasLabel(VertexId v, LabelId l, bool simple) const {
  auto ls = simple ? simple_labels(v) : labels(v);
  return std::binary_search(ls.begin(), ls.end(), l);
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el) const {
  const AdjDir& a = adj(d);
  auto groups = ElGroups(v, d);
  auto it = std::lower_bound(groups.begin(), groups.end(), el,
                             [](const ElGroup& grp, EdgeLabelId x) { return grp.el < x; });
  if (it == groups.end() || it->el != el) return {};
  return {a.el_nbrs.data() + it->begin, a.el_nbrs.data() + it->end};
}

std::span<const VertexId> DataGraph::Neighbors(VertexId v, Direction d, EdgeLabelId el,
                                               LabelId vl) const {
  const AdjDir& a = adj(d);
  auto groups = TypeGroups(v, d);
  auto it = std::lower_bound(groups.begin(), groups.end(), std::make_pair(el, vl),
                             [](const TypeGroup& grp, const std::pair<EdgeLabelId, LabelId>& x) {
                               return std::tie(grp.el, grp.vl) < std::tie(x.first, x.second);
                             });
  if (it == groups.end() || it->el != el || it->vl != vl) return {};
  return {a.type_nbrs.data() + it->begin, a.type_nbrs.data() + it->end};
}

bool DataGraph::HasEdge(VertexId from, VertexId to, EdgeLabelId el) const {
  auto nbrs = Neighbors(from, Direction::kOut, el);
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

void DataGraph::EdgeLabelsBetween(VertexId from, VertexId to,
                                  std::vector<EdgeLabelId>* out) const {
  out->clear();
  for (const ElGroup& grp : ElGroups(from, Direction::kOut)) {
    std::span<const VertexId> nbrs{out_.el_nbrs.data() + grp.begin,
                                   out_.el_nbrs.data() + grp.end};
    if (std::binary_search(nbrs.begin(), nbrs.end(), to)) out->push_back(grp.el);
  }
}

uint32_t DataGraph::Degree(VertexId v, Direction d) const {
  auto groups = ElGroups(v, d);
  if (groups.empty()) return 0;
  return groups.back().end - groups.front().begin;
}

std::optional<VertexId> DataGraph::VertexOfTerm(TermId t) const {
  auto it = term_to_vertex_.find(t);
  if (it == term_to_vertex_.end()) return std::nullopt;
  return it->second;
}

std::optional<LabelId> DataGraph::LabelOfTerm(TermId t) const {
  auto it = term_to_label_.find(t);
  if (it == term_to_label_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeLabelId> DataGraph::EdgeLabelOfTerm(TermId t) const {
  auto it = term_to_el_.find(t);
  if (it == term_to_el_.end()) return std::nullopt;
  return it->second;
}

}  // namespace turbo::graph
