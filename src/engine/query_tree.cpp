#include "engine/query_tree.hpp"

#include <deque>

namespace turbo::engine {

QueryTree QueryTree::Build(const graph::QueryGraph& q, uint32_t start_qv) {
  QueryTree t;
  t.node_of_qv_.assign(q.num_vertices(), kInvalidId);
  std::vector<bool> edge_in_tree(q.num_edges(), false);

  Node root;
  root.qv = start_qv;
  t.nodes_.push_back(root);
  t.node_of_qv_[start_qv] = 0;

  std::deque<uint32_t> bfs{0};
  while (!bfs.empty()) {
    uint32_t ni = bfs.front();
    bfs.pop_front();
    uint32_t qv = t.nodes_[ni].qv;
    for (const auto& inc : q.incident(qv)) {
      const graph::QueryEdge& e = q.edge(inc.edge);
      uint32_t other = e.from == qv && inc.dir == graph::Direction::kOut ? e.to : e.from;
      if (e.from == e.to) other = qv;  // self loop
      if (other == qv) continue;       // self loops are non-tree edges
      if (t.node_of_qv_[other] != kInvalidId) continue;
      Node child;
      child.qv = other;
      child.parent = ni;
      child.edge = inc.edge;
      child.dir_from_parent = inc.dir;  // kOut if edge goes qv -> other
      uint32_t ci = static_cast<uint32_t>(t.nodes_.size());
      t.node_of_qv_[other] = ci;
      t.nodes_.push_back(child);
      t.nodes_[ni].children.push_back(ci);
      edge_in_tree[inc.edge] = true;
      bfs.push_back(ci);
    }
  }

  for (uint32_t e = 0; e < q.num_edges(); ++e)
    if (!edge_in_tree[e]) t.non_tree_edges_.push_back(e);

  // Enumerate root-to-leaf paths.
  std::vector<uint32_t> stack{0};
  std::vector<std::pair<uint32_t, size_t>> dfs{{0, 0}};
  std::vector<uint32_t> cur{0};
  while (!dfs.empty()) {
    auto& [ni, child_idx] = dfs.back();
    const Node& node = t.nodes_[ni];
    if (node.children.empty() && child_idx == 0) {
      t.paths_.push_back(cur);
      ++child_idx;
      continue;
    }
    if (child_idx >= node.children.size()) {
      dfs.pop_back();
      cur.pop_back();
      continue;
    }
    uint32_t c = node.children[child_idx++];
    dfs.emplace_back(c, 0);
    cur.push_back(c);
  }
  if (t.paths_.empty()) t.paths_.push_back({0});
  return t;
}

}  // namespace turbo::engine
