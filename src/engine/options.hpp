// Matching options and statistics for the TurboHOM / TurboHOM++ engine.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

namespace turbo::engine {

/// Matching semantics. The paper's RDF semantics is (e-graph) homomorphism;
/// isomorphism retains TurboISO's injectivity constraint (Definition 1) and
/// exists so tests can reproduce Figure 1 (1 isomorphism vs 3 homomorphisms).
enum class MatchSemantics : uint8_t { kHomomorphism, kIsomorphism };

/// Engine configuration. Defaults correspond to the paper's fully optimized
/// TurboHOM++: +INT, -NLF, -DEG, +REUSE (Section 4.3).
struct MatchOptions {
  MatchSemantics semantics = MatchSemantics::kHomomorphism;

  /// +INT — bulk IsJoinable via one k-way sorted intersection.
  bool use_intersection = true;
  /// NLF filter in ExploreCandidateRegion (paper disables it: -NLF).
  bool use_nlf = false;
  /// Degree filter in ExploreCandidateRegion (paper disables it: -DEG).
  bool use_degree_filter = false;
  /// +REUSE — compute the matching order for the first candidate region only.
  bool reuse_matching_order = true;

  /// Pool candidate-region storage (CR lists, exploration memo, search
  /// scratch) in per-worker RegionArenas that are reset — not freed —
  /// between starting vertices and reused across queries via the Matcher's
  /// ArenaPool. When false, every worker allocates fresh per-region
  /// containers exactly like the seed implementation; both paths are
  /// crosschecked in tests/solver_crosscheck_test.cpp.
  bool reuse_region_memory = true;

  /// Match against L_simple(v) (simple entailment regime, §4.2) instead of
  /// the inferred label closure L(v).
  bool simple_entailment = false;

  /// Worker threads; starting data vertices are distributed in dynamic
  /// chunks (§5.2). 1 = sequential.
  uint32_t num_threads = 1;
  /// Starting-vertex chunk size for the dynamic distribution.
  uint32_t chunk_size = 16;
  /// If false, starting vertices are pre-partitioned into one contiguous
  /// slice per thread instead of dynamically chunked — the "pre-determined
  /// way" §5.2 warns about (skewed candidate regions unbalance threads).
  /// Exists for the work-distribution ablation benchmark.
  bool dynamic_chunking = true;

  /// Stop after this many solutions (default: unlimited).
  uint64_t limit = std::numeric_limits<uint64_t>::max();

  /// External cancellation flag (owned by the caller, e.g. a Cursor's cancel
  /// token). Checked between starting vertices and inside SubgraphSearch, so
  /// setting it drains sequential and parallel enumeration promptly.
  const std::atomic<bool>* cancel = nullptr;

  /// Steady-clock deadline; the epoch default means "none". Polled at region
  /// granularity (every few hundred starting vertices), which keeps the
  /// clock reads off the per-candidate hot path.
  std::chrono::steady_clock::time_point deadline{};

  /// Consumer-detached stop signal: set when the streaming Cursor that
  /// drives this match is destroyed mid-query. Behaves like `cancel` for the
  /// enumeration but is reported as an abandonment, not a caller error.
  const std::atomic<bool>* abandon = nullptr;

  /// Parallel streaming delivery: each worker buffers up to this many
  /// solutions and hands them to the callback under a single acquisition of
  /// the delivery mutex, amortizing per-solution lock traffic. 1 delivers
  /// every solution individually; sequential runs (no mutex) always deliver
  /// per solution, so result order there is unaffected.
  uint32_t stream_batch = 32;

  bool has_deadline() const { return deadline.time_since_epoch().count() != 0; }
};

/// Per-query execution statistics (drives the paper's profiling claims:
/// ExploreCandidateRegion vs SubgraphSearch time, IsJoinable counts, and
/// the §4.1 candidate-region size metric).
struct MatchStats {
  /// True when enumeration was cut short (solution limit, a callback
  /// returning false, cancellation, or an expired deadline).
  bool stopped_early = false;
  uint64_t num_solutions = 0;
  uint64_t num_start_candidates = 0;  ///< data vertices tried as region roots
  uint64_t num_regions = 0;           ///< non-empty candidate regions
  uint64_t cr_candidate_vertices = 0; ///< total candidates across all CRs
  uint64_t isjoinable_checks = 0;     ///< membership probes (non-+INT path)
  uint64_t intersection_ops = 0;      ///< k-way intersections (+INT path)
  uint64_t sig_checks = 0;            ///< neighborhood-signature filter tests
  uint64_t sig_prunes = 0;            ///< candidates rejected by the signature alone
  uint64_t arena_workers = 0;         ///< RegionArenas checked out for the run
  uint64_t arena_warm = 0;            ///< arenas reused from a previous query
  uint64_t arena_bytes = 0;           ///< resident arena capacity after the run
  double explore_ms = 0;              ///< time in ExploreCandidateRegion
  double search_ms = 0;               ///< time in SubgraphSearch
  double order_ms = 0;                ///< time in DetermineMatchingOrder
  double total_ms = 0;
  uint32_t start_query_vertex = 0;
  /// First computed matching order, as a query-vertex sequence (diagnostic;
  /// lets tests verify the Figure 2 matching-order example).
  std::vector<uint32_t> matching_order;

  void MergeFrom(const MatchStats& o) {
    if (matching_order.empty()) matching_order = o.matching_order;
    stopped_early = stopped_early || o.stopped_early;
    num_solutions += o.num_solutions;
    num_start_candidates += o.num_start_candidates;
    num_regions += o.num_regions;
    cr_candidate_vertices += o.cr_candidate_vertices;
    isjoinable_checks += o.isjoinable_checks;
    intersection_ops += o.intersection_ops;
    sig_checks += o.sig_checks;
    sig_prunes += o.sig_prunes;
    arena_workers += o.arena_workers;
    arena_warm += o.arena_warm;
    arena_bytes += o.arena_bytes;
    explore_ms += o.explore_ms;
    search_ms += o.search_ms;
    order_ms += o.order_ms;
  }
};

}  // namespace turbo::engine
