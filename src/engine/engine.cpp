#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>
#include <unordered_map>

#include "engine/query_tree.hpp"
#include "util/sorted.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace turbo::engine {

namespace {

using graph::DataGraph;
using graph::Direction;
using graph::QueryEdge;
using graph::QueryGraph;
using graph::QueryVertex;

// ---------------------------------------------------------------------------
// Compiled query: start vertex, query tree, filter requirements.
// ---------------------------------------------------------------------------

/// One NLF requirement: a candidate must have, in direction `dir`, at least
/// `count` neighbours over edge label `el` (kInvalidId = any) carrying vertex
/// label `vl` (kInvalidId = any). Counts are 1 under homomorphism semantics
/// (§2.2: "at least one neighbor for all distinct labels").
struct Requirement {
  Direction dir;
  EdgeLabelId el;
  LabelId vl;
  uint32_t count;
};

struct Compiled {
  const QueryGraph* q = nullptr;
  uint32_t start_qv = 0;
  std::vector<VertexId> start_list;
  bool single_vertex = false;
  QueryTree tree;
  // Filter metadata indexed by query vertex; built only when the NLF or
  // degree filter is enabled (they default to off: -NLF / -DEG).
  std::vector<std::vector<Requirement>> reqs;
  std::vector<uint32_t> deg_req_out;
  std::vector<uint32_t> deg_req_in;
  /// Per-query-vertex neighborhood-signature requirement: the bits every
  /// admissible candidate's DataGraph::signature must contain. Always built
  /// (one OR-mask per vertex); 0 = no labeled incident edges, filter off.
  std::vector<uint64_t> req_sig;
};

bool HasAllLabels(const DataGraph& g, VertexId v, const std::vector<LabelId>& labels,
                  bool simple) {
  for (LabelId l : labels)
    if (!g.HasLabel(v, l, simple)) return false;
  return true;
}

/// Restores the arena's union-buffer stack on scope exit, so every return
/// path of SubgraphSearch (and of CollectCandidates, which borrows decode
/// scratch from the same pool) releases the buffers it acquired.
struct UnionBufScope {
  explicit UnionBufScope(RegionArena& a) : ar(a), base(a.union_buf_top()) {}
  ~UnionBufScope() { ar.RestoreUnionBufs(base); }
  RegionArena& ar;
  size_t base;
};

// ---------------------------------------------------------------------------
// Context: shared immutable matching helpers (candidate collection, filters,
// ChooseStartQueryVertex).
// ---------------------------------------------------------------------------

class Context {
 public:
  Context(const DataGraph& g, const MatchOptions& opt) : g_(g), opt_(opt) {}

  const DataGraph& g() const { return g_; }
  const MatchOptions& opt() const { return opt_; }

  /// Constraint + degree + NLF admission test (ExploreCandidateRegion
  /// filters; hom variants per §2.2, iso variants classic TurboISO). The
  /// neighborhood signature runs first: one 64-bit AND against precomputed
  /// required bits rejects most mismatches before any adjacency is touched.
  bool PassFilters(const Compiled& c, uint32_t qv, VertexId v,
                   MatchStats* stats = nullptr) const {
    if (uint64_t req = c.req_sig[qv]) {
      if (stats) ++stats->sig_checks;
      if ((g_.signature(v) & req) != req) {
        if (stats) ++stats->sig_prunes;
        return false;
      }
    }
    const QueryVertex& u = c.q->vertex(qv);
    if (u.constraint && !u.constraint(g_, v)) return false;
    if (opt_.use_degree_filter) {
      if (g_.Degree(v, Direction::kOut) < c.deg_req_out[qv]) return false;
      if (g_.Degree(v, Direction::kIn) < c.deg_req_in[qv]) return false;
    }
    if (opt_.use_nlf) {
      for (const Requirement& r : c.reqs[qv])
        if (!PassRequirement(r, v)) return false;
    }
    return true;
  }

  /// Collects candidates for query vertex `qv` adjacent to data vertex `pv`
  /// over an edge labeled `el` (kInvalidId = blank) in direction `dir` (from
  /// pv's point of view). Output is sorted, duplicate-free, and honours the
  /// label set, fixed-ID attribute, constraint, and enabled filters.
  /// `ar` supplies decode scratch for the compressed storage mode (the
  /// uncompressed accessors return zero-copy spans and leave it untouched);
  /// every buffer acquired here is released before returning.
  void CollectCandidates(const Compiled& c, uint32_t qv, VertexId pv, Direction dir,
                         EdgeLabelId el, RegionArena& ar, std::vector<VertexId>* out,
                         MatchStats* stats) const {
    const QueryVertex& u = c.q->vertex(qv);
    out->clear();
    const bool simple = opt_.simple_entailment;
    UnionBufScope decode_scope(ar);
    if (el != kInvalidId) {
      if (u.labels.empty()) {
        auto nbrs = g_.Neighbors(pv, dir, el, ar.PushUnionBuf());
        out->assign(nbrs.begin(), nbrs.end());
      } else if (simple) {
        for (VertexId w : g_.Neighbors(pv, dir, el, ar.PushUnionBuf()))
          if (HasAllLabels(g_, w, u.labels, true)) out->push_back(w);
      } else if (u.labels.size() == 1) {
        auto nbrs = g_.Neighbors(pv, dir, el, u.labels[0], ar.PushUnionBuf());
        out->assign(nbrs.begin(), nbrs.end());
      } else {
        std::vector<std::span<const VertexId>> lists;
        lists.reserve(u.labels.size());
        for (LabelId l : u.labels)
          lists.push_back(g_.Neighbors(pv, dir, el, l, ar.PushUnionBuf()));
        util::IntersectKWay(std::move(lists), out);
      }
    } else {
      // Blank edge label: union across all predicates (§4.2 — "collecting
      // all adjacent vertices which match available information and
      // unioning them").
      if (u.labels.empty() || simple) {
        auto nbrs = g_.UnionNeighbors(pv, dir, ar.PushUnionBuf());
        out->assign(nbrs.begin(), nbrs.end());
        if (!u.labels.empty()) {
          out->erase(std::remove_if(
                         out->begin(), out->end(),
                         [&](VertexId w) { return !HasAllLabels(g_, w, u.labels, true); }),
                     out->end());
        }
      } else {
        std::vector<VertexId>& acc = ar.PushUnionBuf();
        std::vector<VertexId>& per_label = ar.PushUnionBuf();
        for (size_t i = 0; i < u.labels.size(); ++i) {
          auto span = g_.NeighborsWithLabel(pv, dir, u.labels[i], per_label);
          if (i == 0) {
            acc.assign(span.begin(), span.end());
          } else {
            util::IntersectInto(acc, span, out);
            acc.swap(*out);
          }
          if (acc.empty()) break;
        }
        out->assign(acc.begin(), acc.end());
      }
    }
    // ID attribute check of the two-attribute vertex model (§4.1).
    if (u.has_fixed_id()) {
      bool present = std::binary_search(out->begin(), out->end(), u.fixed_id);
      out->clear();
      if (present) out->push_back(u.fixed_id);
    }
    if (u.constraint || opt_.use_nlf || opt_.use_degree_filter || c.req_sig[qv] != 0) {
      out->erase(std::remove_if(out->begin(), out->end(),
                                [&](VertexId w) { return !PassFilters(c, qv, w, stats); }),
                 out->end());
    }
  }

  /// ChooseStartQueryVertex (§2.2): fixed-ID vertices give one candidate
  /// region and win outright; otherwise rank = freq(g, L(u)) / deg(u) and
  /// the top-k are refined with the degree/NLF filters.
  void Compile(const QueryGraph& q, Compiled* c, MatchStats* stats = nullptr) const {
    c->q = &q;
    // Algorithm 1, line 1: the point-shaped fast path requires E = empty
    // (a single vertex with a self loop still needs SubgraphSearch).
    c->single_vertex = q.num_vertices() == 1 && q.num_edges() == 0;
    BuildSignatureRequirements(q, c);
    if (opt_.use_nlf || opt_.use_degree_filter) BuildRequirements(q, c);

    // Fixed-ID vertices give exactly one candidate region; among several,
    // prefer the one whose data vertex has the least fan-out so the region
    // exploration starting there stays small (this is what keeps the
    // ID-anchored LUBM queries fast under the direct transformation, where
    // type objects are high-degree fixed vertices).
    uint32_t best = kInvalidId;
    uint64_t best_fanout = 0;
    bool best_hub = true;
    for (uint32_t u = 0; u < q.num_vertices(); ++u) {
      if (!q.vertex(u).has_fixed_id()) continue;
      VertexId v = q.vertex(u).fixed_id;
      bool hub = q.vertex(u).hub_hint;
      uint64_t fanout = v < g_.num_vertices()
                            ? static_cast<uint64_t>(g_.Degree(v, Direction::kOut)) +
                                  g_.Degree(v, Direction::kIn)
                            : 0;
      if (best == kInvalidId || (!hub && best_hub) ||
          (hub == best_hub && fanout < best_fanout)) {
        best = u;
        best_fanout = fanout;
        best_hub = hub;
      }
    }
    if (best == kInvalidId) {
      std::vector<std::pair<double, uint32_t>> ranked;
      ranked.reserve(q.num_vertices());
      for (uint32_t u = 0; u < q.num_vertices(); ++u) {
        double freq = FreqEstimate(q, u);
        ranked.push_back({freq / std::max<uint32_t>(1, q.degree(u)), u});
      }
      std::sort(ranked.begin(), ranked.end());
      size_t k = std::min<size_t>(3, ranked.size());
      const bool refine = opt_.use_nlf || opt_.use_degree_filter;
      double best_est = -1;
      for (size_t i = 0; i < k; ++i) {
        uint32_t u = ranked[i].second;
        double est = refine ? RefinedEstimate(q, *c, u) : ranked[i].first;
        if (best == kInvalidId || est < best_est) {
          best = u;
          best_est = est;
        }
      }
    }
    c->start_qv = best;
    MaterializeStartList(q, *c, best, &c->start_list, stats);
    if (!c->single_vertex) c->tree = QueryTree::Build(q, best);
  }

 private:
  /// Precomputes each query vertex's required signature bits: every labeled
  /// incident edge contributes its (dir, el) bit plus one (dir, el, vl) bit
  /// per label of the other endpoint. Any data vertex that can embed the
  /// neighborhood has a superset of these bits (signatures are built from
  /// the label-closure group metadata, a superset of the simple-entailment
  /// labels), so the AND-test in PassFilters is false-positive-only.
  /// Blank-labeled query edges contribute nothing — a union over all
  /// predicates admits any vertex with any edge in that direction.
  void BuildSignatureRequirements(const QueryGraph& q, Compiled* c) const {
    c->req_sig.assign(q.num_vertices(), 0);
    for (uint32_t u = 0; u < q.num_vertices(); ++u) {
      uint64_t sig = 0;
      for (const auto& inc : q.incident(u)) {
        const QueryEdge& e = q.edge(inc.edge);
        if (!e.has_label()) continue;
        sig |= DataGraph::SignatureBit(inc.dir, e.label, kInvalidId);
        uint32_t other = inc.dir == Direction::kOut ? e.to : e.from;
        for (LabelId l : q.vertex(other).labels)
          sig |= DataGraph::SignatureBit(inc.dir, e.label, l);
      }
      c->req_sig[u] = sig;
    }
  }
  bool PassRequirement(const Requirement& r, VertexId v) const {
    // Counts only — no neighbor list is materialized, so this path never
    // decodes compressed adjacency.
    if (r.el != kInvalidId && r.vl != kInvalidId)
      return g_.NeighborCount(v, r.dir, r.el, r.vl) >= r.count;
    if (r.el != kInvalidId) return g_.NeighborCount(v, r.dir, r.el) >= r.count;
    if (r.vl != kInvalidId) return g_.NeighborCountWithLabel(v, r.dir, r.vl) >= r.count;
    return g_.Degree(v, r.dir) >= r.count;
  }

  void BuildRequirements(const QueryGraph& q, Compiled* c) const {
    c->reqs.assign(q.num_vertices(), {});
    c->deg_req_out.assign(q.num_vertices(), 0);
    c->deg_req_in.assign(q.num_vertices(), 0);
    const bool iso = opt_.semantics == MatchSemantics::kIsomorphism;
    for (uint32_t u = 0; u < q.num_vertices(); ++u) {
      std::map<std::tuple<int, EdgeLabelId, LabelId>, uint32_t> agg;
      uint32_t inc_out = 0, inc_in = 0;
      for (const auto& inc : q.incident(u)) {
        const QueryEdge& e = q.edge(inc.edge);
        uint32_t other = inc.dir == Direction::kOut ? e.to : e.from;
        (inc.dir == Direction::kOut ? inc_out : inc_in)++;
        const auto& olabels = q.vertex(other).labels;
        if (olabels.empty()) {
          ++agg[{static_cast<int>(inc.dir), e.label, kInvalidId}];
        } else {
          for (LabelId l : olabels) ++agg[{static_cast<int>(inc.dir), e.label, l}];
        }
      }
      for (const auto& [key, cnt] : agg) {
        auto [d, el, vl] = key;
        c->reqs[u].push_back(
            {static_cast<Direction>(d), el, vl, iso ? cnt : 1u});
      }
      if (iso) {
        c->deg_req_out[u] = inc_out;
        c->deg_req_in[u] = inc_in;
      } else {
        // Hom degree filter. The paper phrases it as "at least as many
        // neighbours as distinct labels of the corresponding query
        // vertices"; under homomorphism several same-predicate query edges
        // can map onto one data edge, so the sound count is the number of
        // distinct incident *predicates* (plus one if only variable
        // predicates are present).
        std::set<EdgeLabelId> els_out, els_in;
        bool blank_out = false, blank_in = false;
        for (const auto& inc : q.incident(u)) {
          const QueryEdge& e = q.edge(inc.edge);
          bool out = inc.dir == Direction::kOut;
          if (e.has_label())
            (out ? els_out : els_in).insert(e.label);
          else
            (out ? blank_out : blank_in) = true;
        }
        c->deg_req_out[u] = std::max<uint32_t>(els_out.size(), blank_out ? 1 : 0);
        c->deg_req_in[u] = std::max<uint32_t>(els_in.size(), blank_in ? 1 : 0);
      }
    }
  }

  double FreqEstimate(const QueryGraph& q, uint32_t u) const {
    const QueryVertex& v = q.vertex(u);
    if (v.has_fixed_id()) return 1;
    if (!v.labels.empty()) {
      size_t freq = SIZE_MAX;
      for (LabelId l : v.labels) freq = std::min(freq, g_.VerticesWithLabel(l).size());
      return static_cast<double>(freq);
    }
    // No label / no ID: consult the predicate index (§4.2).
    size_t freq = g_.num_vertices();
    for (const auto& inc : q.incident(u)) {
      const QueryEdge& e = q.edge(inc.edge);
      if (!e.has_label()) continue;
      size_t card = inc.dir == Direction::kOut ? g_.SubjectsOf(e.label).size()
                                               : g_.ObjectsOf(e.label).size();
      freq = std::min(freq, card);
    }
    return static_cast<double>(freq);
  }

  /// Counts (an estimate of) candidate regions for `u` by scanning a prefix
  /// of its base list through the filters and scaling up.
  double RefinedEstimate(const QueryGraph& q, const Compiled& c, uint32_t u) const {
    std::vector<VertexId> base;
    MaterializeBaseList(q, u, &base);
    if (base.empty()) return 0;
    size_t scan = std::min<size_t>(base.size(), 1024);
    size_t pass = 0;
    for (size_t i = 0; i < scan; ++i)
      if (PassFilters(c, u, base[i])) ++pass;
    return static_cast<double>(pass) * base.size() / scan;
  }

  /// Data vertices satisfying labels / ID of `u` (filters not yet applied).
  void MaterializeBaseList(const QueryGraph& q, uint32_t u, std::vector<VertexId>* out) const {
    const QueryVertex& v = q.vertex(u);
    out->clear();
    if (v.has_fixed_id()) {
      if (v.fixed_id < g_.num_vertices() &&
          HasAllLabels(g_, v.fixed_id, v.labels, opt_.simple_entailment))
        out->push_back(v.fixed_id);
      return;
    }
    if (!v.labels.empty()) {
      if (opt_.simple_entailment) {
        // The inverse list indexes the closure; narrow down to L_simple.
        LabelId seed = v.labels[0];
        for (LabelId l : v.labels)
          if (g_.VerticesWithLabel(l).size() < g_.VerticesWithLabel(seed).size()) seed = l;
        for (VertexId w : g_.VerticesWithLabel(seed))
          if (HasAllLabels(g_, w, v.labels, true)) out->push_back(w);
      } else if (v.labels.size() == 1) {
        auto span = g_.VerticesWithLabel(v.labels[0]);
        out->assign(span.begin(), span.end());
      } else {
        std::vector<std::span<const VertexId>> lists;
        for (LabelId l : v.labels) lists.push_back(g_.VerticesWithLabel(l));
        util::IntersectKWay(std::move(lists), out);
      }
      return;
    }
    // Blank vertex: smallest predicate-index list among incident labeled
    // edges; otherwise every data vertex qualifies.
    std::span<const VertexId> bestspan;
    bool found = false;
    for (const auto& inc : q.incident(u)) {
      const QueryEdge& e = q.edge(inc.edge);
      if (!e.has_label()) continue;
      auto span = inc.dir == Direction::kOut ? g_.SubjectsOf(e.label) : g_.ObjectsOf(e.label);
      if (!found || span.size() < bestspan.size()) {
        bestspan = span;
        found = true;
      }
    }
    if (found) {
      out->assign(bestspan.begin(), bestspan.end());
    } else {
      out->resize(g_.num_vertices());
      for (uint32_t i = 0; i < g_.num_vertices(); ++i) (*out)[i] = i;
    }
  }

  void MaterializeStartList(const QueryGraph& q, const Compiled& c, uint32_t u,
                            std::vector<VertexId>* out, MatchStats* stats) const {
    MaterializeBaseList(q, u, out);
    const QueryVertex& v = q.vertex(u);
    if (v.constraint || opt_.use_nlf || opt_.use_degree_filter || c.req_sig[u] != 0) {
      out->erase(std::remove_if(out->begin(), out->end(),
                                [&](VertexId w) { return !PassFilters(c, u, w, stats); }),
                 out->end());
    }
  }

  const DataGraph& g_;
  const MatchOptions& opt_;
};

// ---------------------------------------------------------------------------
// Matching order for one candidate region (DetermineMatchingOrder) and the
// per-position non-tree-edge checks consumed by IsJoinable.
// ---------------------------------------------------------------------------

struct OrderInfo {
  std::vector<uint32_t> node_at;  ///< position -> tree node index
  struct Back {
    uint32_t edge;           ///< query edge
    uint32_t partner_node;   ///< earlier-matched tree node
    Direction partner_dir;   ///< adjacency direction at the partner's match
    bool self_loop;
  };
  std::vector<std::vector<Back>> checks;  ///< per position
  bool ready = false;
};

// ---------------------------------------------------------------------------
// Worker: per-thread state for ExploreCandidateRegion + SubgraphSearch.
// ---------------------------------------------------------------------------

class Worker {
 public:
  /// `stop_all` is the run-wide stop flag shared by every worker: set when
  /// any worker hits the solution limit, when a streaming callback returns
  /// false, or when the external cancel/deadline fires. `stream_mu` (null in
  /// sequential runs) serializes parallel streaming delivery.
  Worker(const Context& ctx, const Compiled& c, bool collect,
         const SolutionCallback* stream, std::atomic<uint64_t>* global_count,
         uint64_t limit, std::atomic<bool>* stop_all, std::mutex* stream_mu,
         RegionArena* arena)
      : ctx_(ctx),
        c_(c),
        q_(*c.q),
        collect_(collect),
        stream_(stream),
        global_count_(global_count),
        limit_(limit),
        stop_all_(stop_all),
        stream_mu_(stream_mu),
        batch_size_(std::max<uint32_t>(1, ctx.opt().stream_batch)),
        ar_(*arena),
        iso_(ctx.opt().semantics == MatchSemantics::kIsomorphism) {
    const QueryTree& t = c_.tree;
    ar_.PrepareQuery(t.num_nodes(), ctx_.opt().reuse_region_memory);
    ar_.cr_total.assign(t.num_nodes(), 0);
    ar_.m_node.assign(t.num_nodes(), kInvalidId);
    ar_.node_depth.assign(t.num_nodes(), 0);
    for (uint32_t i = 1; i < t.num_nodes(); ++i)
      ar_.node_depth[i] = ar_.node_depth[t.node(i).parent] + 1;
    if (iso_) ar_.EnsureMapped(ctx_.g().num_vertices());
  }

  bool aborted() const { return aborted_; }

  /// True when the caller's cancel token, abandon flag, or deadline has
  /// fired. The deadline branch pays a steady_clock read, so callers
  /// amortize.
  bool ExternalFired() const {
    const MatchOptions& opt = ctx_.opt();
    if (opt.cancel && opt.cancel->load(std::memory_order_relaxed)) return true;
    if (opt.abandon && opt.abandon->load(std::memory_order_relaxed)) return true;
    return opt.has_deadline() && std::chrono::steady_clock::now() >= opt.deadline;
  }

  /// Stop requested by another worker, the limit, or the caller's cancel
  /// token / deadline. Sets aborted_ (and, for cancel/deadline, propagates
  /// to the shared flag so sibling workers drain too). The cancel token is
  /// checked every call (one relaxed load); the deadline's clock read is
  /// amortized across starts.
  bool ShouldStop() {
    if (aborted_) return true;
    if (stop_all_->load(std::memory_order_relaxed)) {
      aborted_ = true;
      return true;
    }
    const MatchOptions& opt = ctx_.opt();
    bool fired = (opt.cancel && opt.cancel->load(std::memory_order_relaxed)) ||
                 (opt.abandon && opt.abandon->load(std::memory_order_relaxed));
    if (!fired && opt.has_deadline() && (++search_poll_ & 0xFF) == 0)
      fired = std::chrono::steady_clock::now() >= opt.deadline;
    if (fired) {
      aborted_ = true;
      stop_all_->store(true, std::memory_order_relaxed);
    }
    return aborted_;
  }

  void ProcessStart(VertexId vs) {
    if (ShouldStop()) return;
    if (global_count_ && global_count_->load(std::memory_order_relaxed) >= limit_) {
      aborted_ = true;
      return;
    }
    ++stats.num_start_candidates;
    ar_.ResetRegion();
    std::fill(ar_.cr_total.begin(), ar_.cr_total.end(), 0);

    util::WallTimer te;
    bool ok = ExploreNode(0, vs);
    stats.explore_ms += te.ElapsedMillis();
    if (!ok) return;
    ++stats.num_regions;

    if (!order_.ready || !ctx_.opt().reuse_matching_order) ComputeOrder();

    util::WallTimer ts;
    ar_.m_node[0] = vs;
    if (iso_) ar_.mapped[vs] = 1;
    if (SelfLoopsOk(0, vs)) {
      if (c_.tree.num_nodes() == 1)
        Report();
      else
        Search(1);
    }
    if (iso_) ar_.mapped[vs] = 0;
    stats.search_ms += ts.ElapsedMillis();
  }

  MatchStats stats;
  std::vector<Solution> solutions;

 private:
  /// ExploreCandidateRegion (Algorithm 1, line 9): DFS along the query tree
  /// from data vertex `v` matched to tree node `ni`. Fills CR(child, v) for
  /// every child. Failed / succeeded (node, vertex) pairs are memoized
  /// within a region so shared subtrees are explored once.
  bool ExploreNode(uint32_t ni, VertexId v) {
    const QueryTree::Node& node = c_.tree.node(ni);
    if (node.children.empty()) return true;
    uint64_t key = (static_cast<uint64_t>(ni) << 32) | v;
    if (int hit = ar_.MemoFind(key); hit >= 0) return hit != 0;
    bool ok = true;
    for (uint32_t ci : node.children) {
      const QueryTree::Node& child = c_.tree.node(ci);
      const uint32_t cd = ar_.node_depth[ci];
      std::vector<VertexId>& cands = ar_.explore_scratch[cd];
      ctx_.CollectCandidates(c_, child.qv, v, child.dir_from_parent,
                             q_.edge(child.edge).label, ar_, &cands, &stats);
      // The recursion below only appends to depths > cd, so CR(ci, v) stays
      // the open tail of its depth's pool until EndList.
      ar_.BeginList(ci, cd, v);
      for (VertexId w : cands)
        if (ExploreNode(ci, w)) ar_.Append(ci, cd, w);
      uint32_t len = ar_.EndList(ci, cd, v);
      ar_.cr_total[ci] += len;
      stats.cr_candidate_vertices += len;
      if (len == 0) {
        ok = false;
        break;
      }
    }
    ar_.MemoPut(key, ok);
    return ok;
  }

  /// DetermineMatchingOrder (Algorithm 1, line 11): order root-to-leaf query
  /// paths by their candidate counts in the current region, then concatenate
  /// unvisited nodes path by path. With +REUSE this runs once per query.
  void ComputeOrder() {
    util::WallTimer t;
    const QueryTree& tree = c_.tree;
    order_.node_at.clear();
    order_.node_at.reserve(tree.num_nodes());
    std::vector<bool> placed(tree.num_nodes(), false);
    order_.node_at.push_back(0);
    placed[0] = true;

    std::vector<std::pair<uint64_t, const std::vector<uint32_t>*>> ranked;
    ranked.reserve(tree.paths().size());
    for (const auto& p : tree.paths()) ranked.push_back({ar_.cr_total[p.back()], &p});
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [w, path] : ranked)
      for (uint32_t ni : *path)
        if (!placed[ni]) {
          placed[ni] = true;
          order_.node_at.push_back(ni);
        }

    std::vector<uint32_t> pos(tree.num_nodes());
    for (uint32_t i = 0; i < order_.node_at.size(); ++i) pos[order_.node_at[i]] = i;

    order_.checks.assign(tree.num_nodes(), {});
    for (uint32_t e : tree.non_tree_edges()) {
      const QueryEdge& qe = q_.edge(e);
      uint32_t na = tree.node_of(qe.from);
      uint32_t nb = tree.node_of(qe.to);
      if (qe.from == qe.to) {
        order_.checks[pos[na]].push_back({e, na, Direction::kOut, true});
        continue;
      }
      uint32_t later = pos[na] > pos[nb] ? na : nb;
      uint32_t earlier = pos[na] > pos[nb] ? nb : na;
      // Candidates v for `later` must satisfy: if the edge leaves `later`
      // (qe.from == later's qv) then v -> M(partner), i.e. v is an
      // IN-neighbour of the partner's match; otherwise an OUT-neighbour.
      Direction partner_dir =
          qe.from == tree.node(later).qv ? Direction::kIn : Direction::kOut;
      order_.checks[std::max(pos[na], pos[nb])].push_back({e, earlier, partner_dir, false});
    }
    order_.ready = true;
    if (stats.matching_order.empty()) {
      for (uint32_t ni : order_.node_at) stats.matching_order.push_back(tree.node(ni).qv);
    }
    stats.order_ms += t.ElapsedMillis();
  }

  bool SelfLoopsOk(uint32_t depth, VertexId v) {
    if (order_.checks.empty()) return true;
    for (const auto& back : order_.checks[depth]) {
      if (!back.self_loop) continue;
      const QueryEdge& qe = q_.edge(back.edge);
      if (qe.has_label()) {
        if (!ctx_.g().HasEdge(v, v, qe.label)) return false;
      } else {
        ctx_.g().EdgeLabelsBetween(v, v, &ar_.el_scratch);
        if (ar_.el_scratch.empty()) return false;
      }
    }
    return true;
  }

  /// SubgraphSearch (Algorithm 2). With +INT, all IsJoinable membership
  /// probes at one position collapse into a single k-way intersection of the
  /// candidate list with the relevant adjacency lists (§4.3).
  void Search(uint32_t depth) {
    if (aborted_ || stop_all_->load(std::memory_order_relaxed)) {
      aborted_ = true;
      return;
    }
    // Cancellation must also reach queries dominated by one huge candidate
    // region (a single ProcessStart): poll the external signals inside the
    // search itself, amortized so the clock read stays off the hot path.
    if ((++search_poll_ & 0x3FF) == 0 && ExternalFired()) {
      aborted_ = true;
      stop_all_->store(true, std::memory_order_relaxed);
      return;
    }
    const QueryTree& tree = c_.tree;
    uint32_t ni = order_.node_at[depth];
    const QueryTree::Node& node = tree.node(ni);
    VertexId pv = ar_.m_node[node.parent];
    std::span<const VertexId> cands = ar_.Lookup(ni, ar_.node_depth[ni], pv);
    if (cands.empty()) return;

    SearchScratch& sc = ar_.search_scratch[depth];
    sc.spans.clear();
    UnionBufScope union_scope(ar_);  // releases this depth's blank-edge buffers
    bool has_self = false;
    for (const auto& back : order_.checks[depth]) {
      if (back.self_loop) {
        has_self = true;
        continue;
      }
      VertexId partner_v = ar_.m_node[back.partner_node];
      const QueryEdge& qe = q_.edge(back.edge);
      std::span<const VertexId> span;
      if (qe.has_label()) {
        // Scratch-aware lookup: decodes into a pooled buffer under the
        // compressed storage mode, zero-copy otherwise.
        span = ctx_.g().Neighbors(partner_v, back.partner_dir, qe.label,
                                  ar_.PushUnionBuf());
      } else {
        span = ctx_.g().UnionNeighbors(partner_v, back.partner_dir, ar_.PushUnionBuf());
      }
      if (span.empty()) return;
      sc.spans.push_back(span);
    }

    std::span<const VertexId> iter = cands;
    const bool use_int = ctx_.opt().use_intersection;
    if (use_int && !sc.spans.empty()) {
      if (sc.spans.size() == 1) {
        // Common case (one non-tree edge at this position): a two-way
        // adaptive intersection into the reusable per-depth buffer.
        util::IntersectInto(cands, sc.spans[0], &sc.int_result);
      } else {
        sc.lists.clear();
        sc.lists.push_back(cands);
        for (const auto& s : sc.spans) sc.lists.push_back(s);
        util::IntersectKWay(sc.lists, &sc.int_result);
      }
      ++stats.intersection_ops;
      iter = sc.int_result;
    }

    const bool iso = iso_;
    const bool last = depth + 1 == tree.num_nodes();
    for (VertexId v : iter) {
      if (iso && ar_.mapped[v]) continue;  // injectivity test (disabled for hom)
      if (!use_int && !sc.spans.empty()) {
        bool ok = true;
        for (const auto& s : sc.spans) {
          ++stats.isjoinable_checks;
          if (!util::SortedContains(s, v)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
      }
      if (has_self && !SelfLoopsOk(depth, v)) continue;
      ar_.m_node[ni] = v;
      if (iso) ar_.mapped[v] = 1;
      if (last)
        Report();
      else
        Search(depth + 1);
      if (iso) ar_.mapped[v] = 0;
      if (aborted_) return;
    }
  }

  void Report() {
    if (global_count_) {
      uint64_t n = 1 + global_count_->fetch_add(1, std::memory_order_relaxed);
      if (n >= limit_) {
        aborted_ = true;
        stop_all_->store(true, std::memory_order_relaxed);
      }
      if (n > limit_) return;  // a sibling already delivered the limit-th row
    }
    ++stats.num_solutions;
    if (collect_ || stream_) {
      ar_.sol_buf.assign(q_.num_vertices(), kInvalidId);
      for (uint32_t i = 0; i < c_.tree.num_nodes(); ++i)
        ar_.sol_buf[c_.tree.node(i).qv] = ar_.m_node[i];
      if (stream_) {
        if (stream_mu_ && batch_size_ > 1) {
          // Per-worker batch handoff: buffer locally and deliver the whole
          // batch under one acquisition of the delivery mutex, amortizing
          // per-solution lock traffic across parallel workers. MatchImpl
          // flushes each worker's tail after the parallel loop joins, so
          // every limit-accounted row still reaches the callback.
          pending_.push_back(ar_.sol_buf);
          if (pending_.size() >= batch_size_) FlushPending();
        } else {
          bool keep_going;
          if (stream_mu_) {
            std::lock_guard<std::mutex> lock(*stream_mu_);
            keep_going = (*stream_)(ar_.sol_buf);
          } else {
            keep_going = (*stream_)(ar_.sol_buf);
          }
          if (!keep_going) {
            aborted_ = true;
            stop_all_->store(true, std::memory_order_relaxed);
          }
        }
      } else {
        solutions.push_back(ar_.sol_buf);
      }
    }
  }

 public:
  /// Delivers this worker's buffered solutions (batched parallel streaming
  /// only). A callback asking to stop drops the rest of the batch and trips
  /// the run-wide flag.
  void FlushPending() {
    if (pending_.empty()) return;
    bool keep_going = true;
    {
      std::lock_guard<std::mutex> lock(*stream_mu_);
      for (const Solution& s : pending_) {
        if (!(*stream_)(s)) {
          keep_going = false;
          break;
        }
      }
    }
    pending_.clear();
    if (!keep_going) {
      aborted_ = true;
      stop_all_->store(true, std::memory_order_relaxed);
    }
  }

 private:

  const Context& ctx_;
  const Compiled& c_;
  const QueryGraph& q_;
  const bool collect_;
  const SolutionCallback* stream_ = nullptr;
  std::atomic<uint64_t>* global_count_;
  const uint64_t limit_;
  std::atomic<bool>* stop_all_;
  std::mutex* stream_mu_ = nullptr;
  /// Streaming solutions awaiting a batched FlushPending (parallel only).
  std::vector<Solution> pending_;
  const uint32_t batch_size_;
  RegionArena& ar_;   // exclusive to this worker until MatchImpl releases it
  const bool iso_;
  bool aborted_ = false;
  uint32_t search_poll_ = 0;
  OrderInfo order_;
};

MatchStats MatchImpl(const DataGraph& g, const MatchOptions& options, const QueryGraph& q,
                     std::vector<Solution>* out, const SolutionCallback* stream,
                     ArenaPool* pool) {
  util::WallTimer total;
  MatchStats stats;
  Context ctx(g, options);
  Compiled c;
  ctx.Compile(q, &c, &stats);
  stats.start_query_vertex = c.start_qv;

  // Check one RegionArena out per worker. With reuse_region_memory the
  // arenas come from (and return to) the Matcher's pool, warm from earlier
  // queries; otherwise each run gets throwaway arenas in legacy mode.
  const bool pooled = options.reuse_region_memory && pool != nullptr;
  auto acquire_arena = [&]() {
    std::unique_ptr<RegionArena> a =
        pooled ? pool->Acquire() : std::make_unique<RegionArena>();
    ++stats.arena_workers;
    if (a->warm) ++stats.arena_warm;
    return a;
  };
  auto release_arena = [&](std::unique_ptr<RegionArena> a) {
    stats.arena_bytes += a->ApproxBytes();
    if (pooled) pool->Release(std::move(a));
  };

  std::atomic<uint64_t> global_count{0};
  std::atomic<uint64_t>* gc =
      options.limit != std::numeric_limits<uint64_t>::max() ? &global_count : nullptr;
  // Run-wide stop flag: solution limit, callback stop, cancel, or deadline.
  std::atomic<bool> stop_all{false};

  auto externally_cancelled = [&]() {
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) return true;
    if (options.abandon && options.abandon->load(std::memory_order_relaxed)) return true;
    return options.has_deadline() && std::chrono::steady_clock::now() >= options.deadline;
  };

  if (c.single_vertex) {
    // Algorithm 1, lines 2-4: every vertex carrying the labels is a solution.
    uint64_t n = std::min<uint64_t>(c.start_list.size(), options.limit);
    stats.num_start_candidates = c.start_list.size();
    if (out) {
      out->reserve(n);
      for (uint64_t i = 0; i < n; ++i) out->push_back({c.start_list[i]});
      stats.num_solutions = n;
    } else if (stream) {
      Solution s(1);
      uint64_t delivered = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if ((i & 0xFF) == 0 && externally_cancelled()) {
          stats.stopped_early = true;
          break;
        }
        s[0] = c.start_list[i];
        ++delivered;
        if (!(*stream)(s)) {
          stats.stopped_early = true;
          break;
        }
      }
      stats.num_solutions = delivered;
    } else {
      stats.num_solutions = n;
    }
    if (n < c.start_list.size()) stats.stopped_early = true;
    stats.total_ms = total.ElapsedMillis();
    return stats;
  }

  uint32_t nthreads = std::max(1u, options.num_threads);
  if (nthreads == 1) {
    std::unique_ptr<RegionArena> arena = acquire_arena();
    {
      Worker w(ctx, c, out != nullptr, stream, gc, options.limit, &stop_all,
               /*stream_mu=*/nullptr, arena.get());
      for (VertexId vs : c.start_list) {
        w.ProcessStart(vs);
        if (w.aborted()) break;
      }
      stats.MergeFrom(w.stats);
      if (w.aborted()) stats.stopped_early = true;
      if (out) *out = std::move(w.solutions);
    }
    release_arena(std::move(arena));
  } else {
    // Parallel streaming delivers directly from the worker threads, one
    // callback at a time under `stream_mu`; a stop request (callback false,
    // limit, cancel, deadline) flips `stop_all`, which every worker polls in
    // ProcessStart and SubgraphSearch, so the join below is prompt.
    std::mutex stream_mu;
    std::vector<std::unique_ptr<RegionArena>> arenas(nthreads);
    std::vector<std::unique_ptr<Worker>> workers(nthreads);
    for (uint32_t t = 0; t < nthreads; ++t) {
      arenas[t] = acquire_arena();
      workers[t] = std::make_unique<Worker>(ctx, c, out != nullptr, stream, gc,
                                            options.limit, &stop_all, &stream_mu,
                                            arenas[t].get());
    }
    auto body = [&](uint64_t b, uint64_t e, uint32_t tid) {
      Worker& w = *workers[tid];
      for (uint64_t i = b; i < e && !w.aborted(); ++i) w.ProcessStart(c.start_list[i]);
    };
    if (options.dynamic_chunking)
      util::ParallelForDynamic(nthreads, c.start_list.size(), options.chunk_size, body);
    else
      util::ParallelForStatic(nthreads, c.start_list.size(), body);
    // Deliver each worker's buffered tail (batched streaming). Runs after
    // the join, on this thread, so rows that claimed a limit slot in
    // global_count are all handed to the callback exactly once.
    if (stream) {
      for (auto& w : workers) w->FlushPending();
    }
    for (auto& w : workers) {
      stats.MergeFrom(w->stats);
      if (w->aborted()) stats.stopped_early = true;
      if (out)
        out->insert(out->end(), std::make_move_iterator(w->solutions.begin()),
                    std::make_move_iterator(w->solutions.end()));
    }
    workers.clear();  // workers reference the arenas; destroy them first
    for (auto& a : arenas) release_arena(std::move(a));
  }
  if (stats.num_solutions > options.limit) stats.num_solutions = options.limit;
  if (out && out->size() > options.limit) out->resize(options.limit);
  stats.total_ms = total.ElapsedMillis();
  return stats;
}

}  // namespace

MatchStats Matcher::Match(const QueryGraph& q, const SolutionCallback& callback) const {
  if (!callback) return MatchImpl(g_, options_, q, nullptr, nullptr, &arena_pool());
  // Solutions stream as they are found in both sequential and parallel runs
  // (parallel delivery is serialized by a mutex inside MatchImpl), so a
  // `false` return stops the enumeration itself, not just the delivery.
  return MatchImpl(g_, options_, q, nullptr, &callback, &arena_pool());
}

uint64_t Matcher::Count(const QueryGraph& q, MatchStats* stats) const {
  MatchStats s = MatchImpl(g_, options_, q, nullptr, nullptr, &arena_pool());
  if (stats) *stats = s;
  return s.num_solutions;
}

std::vector<Solution> Matcher::FindAll(const QueryGraph& q, MatchStats* stats) const {
  std::vector<Solution> out;
  MatchStats s = MatchImpl(g_, options_, q, &out, nullptr, &arena_pool());
  if (stats) *stats = s;
  return out;
}

std::string Matcher::ExplainPlan(const QueryGraph& q) const {
  Context ctx(g_, options_);
  Compiled c;
  ctx.Compile(q, &c);
  std::string out;
  auto vertex_desc = [&](uint32_t u) {
    const QueryVertex& v = q.vertex(u);
    std::string d = "u" + std::to_string(u);
    if (v.has_fixed_id()) d += " [id=" + std::to_string(v.fixed_id) + "]";
    if (!v.labels.empty()) {
      d += " {";
      for (size_t i = 0; i < v.labels.size(); ++i)
        d += (i ? "," : "") + std::to_string(v.labels[i]);
      d += "}";
    }
    return d;
  };
  out += "start: " + vertex_desc(c.start_qv) + " (" +
         std::to_string(c.start_list.size()) + " starting vertices)\n";
  if (c.single_vertex) {
    out += "plan: point-shaped (inverse label list iteration)\n";
    return out;
  }
  out += "query tree (BFS):\n";
  for (uint32_t i = 0; i < c.tree.num_nodes(); ++i) {
    const QueryTree::Node& n = c.tree.node(i);
    out += "  " + vertex_desc(n.qv);
    if (n.parent != kInvalidId) {
      const QueryEdge& e = q.edge(n.edge);
      out += std::string(" <- parent u") + std::to_string(c.tree.node(n.parent).qv) +
             " via " +
             (e.has_label() ? "el" + std::to_string(e.label) : std::string("any")) +
             (n.dir_from_parent == Direction::kOut ? " (outgoing)" : " (incoming)");
    } else {
      out += " (root)";
    }
    out += "\n";
  }
  if (!c.tree.non_tree_edges().empty()) {
    out += "non-tree edges (IsJoinable):\n";
    for (uint32_t ei : c.tree.non_tree_edges()) {
      const QueryEdge& e = q.edge(ei);
      out += "  u" + std::to_string(e.from) + " -> u" + std::to_string(e.to) +
             (e.has_label() ? " via el" + std::to_string(e.label) : " via any") + "\n";
    }
  }
  return out;
}

}  // namespace turbo::engine
