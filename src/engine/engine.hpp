// TurboHOM / TurboHOM++: the paper's core contribution. An e-graph
// homomorphism matcher derived from TurboISO (Algorithm 1 / 2):
//
//   ChooseStartQueryVertex -> WriteQueryTree -> per starting data vertex:
//   ExploreCandidateRegion -> DetermineMatchingOrder -> SubgraphSearch.
//
// The injectivity constraint of subgraph isomorphism is disabled under
// MatchSemantics::kHomomorphism (Section 2.2, "Modifying TurboISO for
// e-Graph Homomorphism"); the four optimizations of Section 4.3 (+INT,
// -NLF, -DEG, +REUSE) are individually toggleable so the Figure 15 ablation
// can be reproduced; Section 5.2's parallel execution over dynamic chunks of
// starting vertices is enabled with MatchOptions::num_threads > 1.
//
// The same class implements both TurboHOM (run it on a directly-transformed
// DataGraph) and TurboHOM++ (run it on a type-aware-transformed DataGraph):
// the transformation lives in the data, per the paper.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/region_arena.hpp"
#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"

namespace turbo::engine {

/// One embedding: query-vertex index -> data vertex.
using Solution = std::vector<VertexId>;

/// Called once per solution with the query-vertex-indexed mapping. Return
/// false to stop the enumeration: the engine aborts the current search,
/// drains every worker, and Match returns with MatchStats::stopped_early
/// set. This is the engine half of the streaming query API — LIMIT-style
/// termination costs exactly as much search as the delivered solutions
/// required.
using SolutionCallback = std::function<bool(std::span<const VertexId>)>;

class Matcher {
 public:
  /// `shared_pool` (optional) supplies the RegionArena checkout pool; when
  /// null the Matcher owns a private one. Passing a long-lived pool (as
  /// TurboBgpSolver does) lets per-query Matcher instances stay cheap while
  /// candidate-region memory is still reused across queries.
  explicit Matcher(const graph::DataGraph& g, MatchOptions options = {},
                   ArenaPool* shared_pool = nullptr)
      : g_(g), options_(options), shared_pool_(shared_pool) {}

  /// Enumerates all e-graph homomorphisms (or isomorphisms) of `q` in the
  /// data graph. The callback, if provided, is invoked serially — parallel
  /// runs deliver directly from worker threads under a mutex (never
  /// concurrently), so a `false` return or a MatchOptions::cancel signal
  /// stops further enumeration promptly instead of after a full
  /// buffer-and-replay. Requires a connected query graph with >= 1 vertex.
  MatchStats Match(const graph::QueryGraph& q, const SolutionCallback& callback) const;

  /// Counts solutions without materializing them.
  uint64_t Count(const graph::QueryGraph& q, MatchStats* stats = nullptr) const;

  /// Collects all solutions.
  std::vector<Solution> FindAll(const graph::QueryGraph& q, MatchStats* stats = nullptr) const;

  /// Human-readable plan description: chosen start query vertex with its
  /// candidate count, the query tree (BFS parents + traversal directions),
  /// and the non-tree edges IsJoinable will verify. Does not execute the
  /// query beyond ChooseStartQueryVertex.
  std::string ExplainPlan(const graph::QueryGraph& q) const;

  const MatchOptions& options() const { return options_; }
  MatchOptions& mutable_options() { return options_; }
  const graph::DataGraph& data_graph() const { return g_; }
  /// The arena checkout pool in effect (shared or owned).
  ArenaPool& arena_pool() const { return shared_pool_ ? *shared_pool_ : own_pool_; }

 private:
  const graph::DataGraph& g_;
  MatchOptions options_;
  ArenaPool* shared_pool_ = nullptr;
  mutable ArenaPool own_pool_;
};

}  // namespace turbo::engine
