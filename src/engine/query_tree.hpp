// WriteQueryTree (Algorithm 1, line 7): BFS spanning tree of the query graph
// rooted at the starting query vertex; non-tree edges are recorded and later
// verified by IsJoinable during SubgraphSearch.
#pragma once

#include <vector>

#include "graph/query_graph.hpp"

namespace turbo::engine {

class QueryTree {
 public:
  struct Node {
    uint32_t qv = 0;                     ///< query-graph vertex
    uint32_t parent = kInvalidId;        ///< parent node index (invalid at root)
    uint32_t edge = kInvalidId;          ///< query edge to parent
    /// Direction to walk in the data graph from the parent's match to reach
    /// this node's candidates: kOut if the query edge goes parent -> child.
    graph::Direction dir_from_parent = graph::Direction::kOut;
    std::vector<uint32_t> children;      ///< node indices
  };

  /// Builds the BFS tree from `start_qv`. The query graph must be connected.
  static QueryTree Build(const graph::QueryGraph& q, uint32_t start_qv);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(uint32_t i) const { return nodes_[i]; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  /// Node index of a query vertex.
  uint32_t node_of(uint32_t qv) const { return node_of_qv_[qv]; }

  /// Query-edge indices not used by the spanning tree (includes self-loops
  /// and parallel edges).
  const std::vector<uint32_t>& non_tree_edges() const { return non_tree_edges_; }

  /// Root-to-leaf node paths, used by DetermineMatchingOrder.
  const std::vector<std::vector<uint32_t>>& paths() const { return paths_; }

 private:
  std::vector<Node> nodes_;
  std::vector<uint32_t> node_of_qv_;
  std::vector<uint32_t> non_tree_edges_;
  std::vector<std::vector<uint32_t>> paths_;
};

}  // namespace turbo::engine
