// Pooled per-worker storage for candidate regions (ROADMAP: "the obvious
// first hot-path win"). Algorithm 1 re-runs ExploreCandidateRegion once per
// starting data vertex; the seed implementation stored each region in fresh
// unordered_map<VertexId, vector<VertexId>> nodes, so every region paid one
// heap round-trip per candidate list plus one per hash node. A RegionArena
// keeps all of that memory alive across starting vertices AND across queries:
//
//   * CandidateMap — open-addressing map VertexId -> (begin, end) slice with
//     generation-stamped slots, so clearing a region is one counter bump;
//   * per-depth flat pools — candidate lists are appended to the tail of
//     their tree depth's pool (the DFS of ExploreCandidateRegion only ever
//     has one list under construction per depth, so tail-append is safe);
//   * MemoMap — the per-region (node, vertex) exploration memo, same
//     generation-clearing scheme;
//   * the Worker scratch buffers (explore/search scratch, visited marks,
//     solution assembly) so they too survive across queries.
//
// MatchOptions::reuse_region_memory selects between this pooled layout and a
// `legacy` mode that reproduces the seed's allocation behaviour exactly
// (fresh unordered_maps, cleared — freed — between regions). Both modes are
// crosschecked against each other and against the baselines in
// tests/solver_crosscheck_test.cpp; the legacy mode doubles as the honest
// "before" configuration for the bench/results/ baselines.
//
// Workers never share an arena: MatchImpl checks one arena out of the
// owning Matcher's ArenaPool per worker thread and returns it after the
// join, which keeps parallel workers allocation-isolated.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace turbo::engine {

/// Open-addressing VertexId -> candidate-list-slice map with O(1) clearing:
/// each slot carries the generation that wrote it, and Reset() just bumps
/// the live generation. Slot storage is only ever grown, never freed.
class CandidateMap {
 public:
  struct Entry {
    VertexId key = 0;
    uint32_t gen = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  void Reset() {
    size_ = 0;
    if (++gen_ == 0) {
      // Generation counter wrapped: physically clear so stale slots from
      // generation 0 cannot resurrect.
      std::fill(slots_.begin(), slots_.end(), Entry{});
      gen_ = 1;
    }
  }

  const Entry* Find(VertexId key) const {
    if (slots_.empty()) return nullptr;
    uint32_t i = Hash(key) & mask_;
    while (true) {
      const Entry& e = slots_[i];
      if (e.gen != gen_) return nullptr;
      if (e.key == key) return &e;
      i = (i + 1) & mask_;
    }
  }

  /// Inserts `key` (which must not be present) and returns its entry. The
  /// returned pointer is invalidated by the next Insert.
  Entry* Insert(VertexId key) {
    if (slots_.empty() || (size_ + 1) * 4 > (mask_ + 1) * 3) Grow();
    uint32_t i = Hash(key) & mask_;
    while (slots_[i].gen == gen_) i = (i + 1) & mask_;
    Entry& e = slots_[i];
    e.key = key;
    e.gen = gen_;
    e.begin = e.end = 0;
    ++size_;
    return &e;
  }

  uint32_t size() const { return size_; }
  size_t capacity_bytes() const { return slots_.capacity() * sizeof(Entry); }

 private:
  static uint32_t Hash(VertexId k) { return k * 2654435761u; }

  void Grow() {
    std::vector<Entry> old = std::move(slots_);
    uint32_t cap = old.empty() ? 16 : static_cast<uint32_t>(old.size()) * 2;
    slots_.assign(cap, Entry{});
    mask_ = cap - 1;
    for (const Entry& e : old) {
      if (e.gen != gen_) continue;
      uint32_t i = Hash(e.key) & mask_;
      while (slots_[i].gen == gen_) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<Entry> slots_;
  uint32_t gen_ = 1;
  uint32_t size_ = 0;
  uint32_t mask_ = 0;
};

/// Generation-cleared memo for ExploreCandidateRegion's (tree node, data
/// vertex) -> explored-ok results.
class MemoMap {
 public:
  void Reset() {
    size_ = 0;
    if (++gen_ == 0) {
      std::fill(slots_.begin(), slots_.end(), Entry{});
      gen_ = 1;
    }
  }

  /// -1 = absent, otherwise the memoized bool (0/1).
  int Find(uint64_t key) const {
    if (slots_.empty()) return -1;
    size_t i = Hash(key) & mask_;
    while (true) {
      const Entry& e = slots_[i];
      if (e.gen != gen_) return -1;
      if (e.key == key) return e.value;
      i = (i + 1) & mask_;
    }
  }

  /// Records `key` (must not be present).
  void Put(uint64_t key, bool value) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
    size_t i = Hash(key) & mask_;
    while (slots_[i].gen == gen_) i = (i + 1) & mask_;
    slots_[i] = {key, gen_, static_cast<uint8_t>(value)};
    ++size_;
  }

  size_t size() const { return size_; }
  size_t capacity_bytes() const { return slots_.capacity() * sizeof(Entry); }

 private:
  struct Entry {
    uint64_t key = 0;
    uint32_t gen = 0;
    uint8_t value = 0;
  };

  static uint64_t Hash(uint64_t k) {
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return k ^ (k >> 27);
  }

  void Grow() {
    std::vector<Entry> old = std::move(slots_);
    size_t cap = old.empty() ? 32 : old.size() * 2;
    slots_.assign(cap, Entry{});
    mask_ = cap - 1;
    for (const Entry& e : old) {
      if (e.gen != gen_) continue;
      size_t i = Hash(e.key) & mask_;
      while (slots_[i].gen == gen_) i = (i + 1) & mask_;
      slots_[i] = e;
    }
  }

  std::vector<Entry> slots_;
  uint32_t gen_ = 1;
  size_t size_ = 0;
  size_t mask_ = 0;
};

/// Reusable per-depth scratch for SubgraphSearch (+INT buffers). Blank-edge
/// union buffers are NOT kept here: they check out of the arena-wide LIFO
/// pool (RegionArena::PushUnionBuf), so their count is bounded by the
/// deepest concurrent need instead of growing per (depth, back-edge)
/// position under variable-predicate workloads.
struct SearchScratch {
  std::vector<std::span<const VertexId>> spans;
  std::vector<std::span<const VertexId>> lists;
  std::vector<VertexId> int_result;
};

class RegionArena {
 public:
  /// Sizes the containers for a query tree of `num_nodes` nodes and selects
  /// the storage mode. Pooled containers are grown but never shrunk, so a
  /// warm arena carries its capacity into the next query.
  void PrepareQuery(uint32_t num_nodes, bool pooled) {
    pooled_ = pooled;
    num_nodes_ = num_nodes;
    if (pooled_) {
      if (maps_.size() < num_nodes) maps_.resize(num_nodes);
      if (pools_.size() < num_nodes) pools_.resize(num_nodes);
      if (open_begin_.size() < num_nodes) open_begin_.resize(num_nodes);
      legacy_.clear();
      legacy_open_.clear();
    } else {
      legacy_.assign(num_nodes, {});
      legacy_open_.assign(num_nodes, nullptr);
    }
    if (explore_scratch.size() < num_nodes + 1) explore_scratch.resize(num_nodes + 1);
    if (search_scratch.size() < num_nodes + 1) search_scratch.resize(num_nodes + 1);
    ResetRegion();
  }

  /// Clears the candidate region between starting vertices. Pooled mode is
  /// O(nodes) counter bumps; legacy mode frees every list, like the seed.
  void ResetRegion() {
    if (pooled_) {
      for (uint32_t i = 0; i < num_nodes_; ++i) {
        maps_[i].Reset();
        pools_[i].clear();
      }
      memo_.Reset();
    } else {
      for (auto& m : legacy_) m.clear();
      legacy_memo_.clear();
    }
  }

  /// Opens the candidate list CR(node, parent). At most one list per node is
  /// ever open (the exploration DFS descends strictly by depth).
  void BeginList(uint32_t node, uint32_t depth, VertexId parent) {
    if (pooled_) {
      open_begin_[node] = static_cast<uint32_t>(pools_[depth].size());
    } else {
      std::vector<VertexId>& lst = legacy_[node][parent];
      lst.clear();
      legacy_open_[node] = &lst;
    }
  }

  void Append(uint32_t node, uint32_t depth, VertexId w) {
    if (pooled_)
      pools_[depth].push_back(w);
    else
      legacy_open_[node]->push_back(w);
  }

  /// Closes the list opened by BeginList and returns its length.
  uint32_t EndList(uint32_t node, uint32_t depth, VertexId parent) {
    if (pooled_) {
      uint32_t end = static_cast<uint32_t>(pools_[depth].size());
      CandidateMap::Entry* e = maps_[node].Insert(parent);
      e->begin = open_begin_[node];
      e->end = end;
      return end - e->begin;
    }
    return static_cast<uint32_t>(legacy_open_[node]->size());
  }

  /// CR(node, parent), or an empty span when absent / empty.
  std::span<const VertexId> Lookup(uint32_t node, uint32_t depth, VertexId parent) const {
    if (pooled_) {
      const CandidateMap::Entry* e = maps_[node].Find(parent);
      if (!e) return {};
      return std::span<const VertexId>(pools_[depth]).subspan(e->begin, e->end - e->begin);
    }
    auto it = legacy_[node].find(parent);
    if (it == legacy_[node].end()) return {};
    return it->second;
  }

  int MemoFind(uint64_t key) const {
    if (pooled_) return memo_.Find(key);
    auto it = legacy_memo_.find(key);
    return it == legacy_memo_.end() ? -1 : it->second;
  }

  void MemoPut(uint64_t key, bool ok) {
    if (pooled_)
      memo_.Put(key, ok);
    else
      legacy_memo_.emplace(key, ok);
  }

  /// Guarantees `mapped` (the isomorphism F-flags) covers `n` vertices and
  /// is all-zero. SubgraphSearch maintains the all-zero invariant on every
  /// exit path, so a warm arena only needs to zero newly grown tail.
  void EnsureMapped(size_t n) {
    if (mapped.size() < n) mapped.resize(n, 0);
  }

  /// Checks a blank-edge union buffer out of the LIFO pool. SubgraphSearch's
  /// recursion acquires strictly above its caller's buffers and restores its
  /// base on exit (see UnionBufScope in engine.cpp), so buffers — and their
  /// grown capacity — are shared across depths and back-edge positions
  /// instead of being owned per position. Deque-backed: growing the pool
  /// never moves live buffers, so spans into them stay valid.
  std::vector<VertexId>& PushUnionBuf() {
    if (union_top_ == union_bufs_.size()) union_bufs_.emplace_back();
    std::vector<VertexId>& buf = union_bufs_[union_top_++];
    buf.clear();
    return buf;
  }
  size_t union_buf_top() const { return union_top_; }
  void RestoreUnionBufs(size_t base) { union_top_ = base; }

  /// Approximate resident capacity, for the bench harness / stats.
  size_t ApproxBytes() const {
    size_t b = 0;
    for (const CandidateMap& m : maps_) b += m.capacity_bytes();
    for (const auto& p : pools_) b += p.capacity() * sizeof(VertexId);
    b += memo_.capacity_bytes();
    b += mapped.capacity();
    b += (m_node.capacity() + sol_buf.capacity()) * sizeof(VertexId);
    b += node_depth.capacity() * sizeof(uint32_t);
    b += cr_total.capacity() * sizeof(uint64_t);
    for (const auto& s : explore_scratch) b += s.capacity() * sizeof(VertexId);
    for (const SearchScratch& s : search_scratch)
      b += s.int_result.capacity() * sizeof(VertexId);
    for (const auto& u : union_bufs_) b += u.capacity() * sizeof(VertexId);
    return b;
  }

  /// True once a previous Match released this arena back to its pool.
  bool warm = false;

  // Worker scratch, owned here so it survives across queries.
  std::vector<std::vector<VertexId>> explore_scratch;  ///< per depth
  std::vector<SearchScratch> search_scratch;           ///< per position
  std::vector<EdgeLabelId> el_scratch;
  std::vector<VertexId> sol_buf;
  std::vector<uint8_t> mapped;  ///< ISO F-flags; all-zero outside Search
  std::vector<VertexId> m_node;
  std::vector<uint32_t> node_depth;
  std::vector<uint64_t> cr_total;

 private:
  bool pooled_ = true;
  uint32_t num_nodes_ = 0;
  // Pooled storage.
  std::vector<CandidateMap> maps_;            ///< per tree node
  std::vector<std::vector<VertexId>> pools_;  ///< per tree depth
  std::vector<uint32_t> open_begin_;          ///< per node open-list start
  MemoMap memo_;
  // Legacy (reuse_region_memory = false) storage: the seed's layout.
  std::vector<std::unordered_map<VertexId, std::vector<VertexId>>> legacy_;
  std::vector<std::vector<VertexId>*> legacy_open_;
  std::unordered_map<uint64_t, bool> legacy_memo_;
  // Blank-edge union buffer pool (LIFO; see PushUnionBuf).
  std::deque<std::vector<VertexId>> union_bufs_;
  size_t union_top_ = 0;
};

/// Thread-safe checkout pool of RegionArenas. Owned by a Matcher (or shared
/// across Matchers via the constructor injection point) so arena capacity is
/// reused across queries; each checked-out arena is exclusively held by one
/// worker until released.
class ArenaPool {
 public:
  std::unique_ptr<RegionArena> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<RegionArena>();
    std::unique_ptr<RegionArena> a = std::move(free_.back());
    free_.pop_back();
    return a;
  }

  void Release(std::unique_ptr<RegionArena> a) {
    a->warm = true;
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(a));
  }

  size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RegionArena>> free_;
};

}  // namespace turbo::engine
