// Encodes Table 2's scaling claims as tests: the constant-solution queries
// (Q1, Q3-Q5, Q7, Q8, Q10-Q12) return the same counts at every scale, the
// increasing-solution queries (Q2, Q6, Q9, Q13, Q14) grow with the dataset —
// the classification the paper's §7.2 analysis rests on.
#include <gtest/gtest.h>

#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "workload/lubm.hpp"

namespace turbo::workload {
namespace {

std::vector<size_t> CountsAtScale(uint32_t universities) {
  LubmConfig cfg;
  cfg.seed = 99;
  cfg.num_universities = universities;
  rdf::Dataset ds = GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  sparql::TurboBgpSolver solver(g, ds.dict());
  sparql::Executor ex(&solver);
  std::vector<size_t> counts;
  for (const std::string& q : LubmQueries()) {
    auto r = ex.Execute(q);
    EXPECT_TRUE(r.ok()) << r.message();
    counts.push_back(r.ok() ? r.value().rows.size() : 0);
  }
  return counts;
}

TEST(LubmScaling, ConstantAndIncreasingSolutionClasses) {
  std::vector<size_t> small = CountsAtScale(1);
  std::vector<size_t> large = CountsAtScale(3);
  // 0-based indices of the constant-solution queries.
  for (size_t qi : {0u, 2u, 3u, 4u, 6u, 7u, 9u, 10u, 11u})
    EXPECT_EQ(small[qi], large[qi]) << "Q" << qi + 1 << " must be scale-invariant";
  // Increasing-solution queries. (Q2/Q13 depend on the degree pool and grow
  // in expectation; with seeds they are monotone here as well.)
  for (size_t qi : {5u, 8u, 13u})
    EXPECT_GT(large[qi], small[qi]) << "Q" << qi + 1 << " must grow with scale";
  EXPECT_GE(large[1], small[1]);   // Q2
  EXPECT_GE(large[12], small[12]); // Q13
}

TEST(LubmScaling, Q6EqualsUndergraduatesPlusGraduates) {
  // Q6 (all Students) must equal Q14 (undergraduates) plus the graduate
  // students inferred via the takesCourse restriction.
  LubmConfig cfg;
  cfg.seed = 99;
  cfg.num_universities = 1;
  rdf::Dataset ds = GenerateLubmClosed(cfg);
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  sparql::TurboBgpSolver solver(g, ds.dict());
  sparql::Executor ex(&solver);
  auto queries = LubmQueries();
  auto q6 = ex.Execute(queries[5]);
  auto q14 = ex.Execute(queries[13]);
  const std::string grads =
      "PREFIX ub: <" + std::string(kUbPrefix) +
      "> SELECT ?x WHERE { ?x a ub:GraduateStudent . }";
  auto qg = ex.Execute(grads);
  ASSERT_TRUE(q6.ok() && q14.ok() && qg.ok());
  EXPECT_EQ(q6.value().rows.size(), q14.value().rows.size() + qg.value().rows.size());
}

}  // namespace
}  // namespace turbo::workload
