// Workload tests for the YAGO-like, BTC-like and BSBM-like generators:
// determinism, schema structure, and cross-engine agreement on the full
// benchmark query sets at reduced scale.
#include <gtest/gtest.h>

#include <set>

#include "baseline/solvers.hpp"
#include "graph/data_graph.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "workload/bsbm.hpp"
#include "workload/btc.hpp"
#include "workload/yago.hpp"

namespace turbo::workload {
namespace {

size_t Run(const sparql::BgpSolver& solver, const std::string& text) {
  sparql::Executor ex(&solver);
  auto r = ex.Execute(text);
  EXPECT_TRUE(r.ok()) << r.message() << "\n" << text;
  return r.ok() ? r.value().rows.size() : 0;
}

/// Builds all engines over a dataset and checks they agree on every query.
void ExpectAllEnginesAgree(const rdf::Dataset& ds, const std::vector<std::string>& queries,
                           std::vector<size_t>* counts = nullptr) {
  graph::DataGraph aware = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  graph::DataGraph direct = graph::DataGraph::Build(ds, graph::TransformMode::kDirect);
  baseline::TripleIndex index(ds);
  sparql::TurboBgpSolver s_aware(aware, ds.dict());
  sparql::TurboBgpSolver s_direct(direct, ds.dict());
  baseline::SortMergeBgpSolver s_sm(index, ds.dict());
  baseline::IndexJoinBgpSolver s_ij(index, ds.dict());
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t a = Run(s_aware, queries[i]);
    EXPECT_EQ(a, Run(s_direct, queries[i])) << "Q" << i + 1 << " (direct)";
    EXPECT_EQ(a, Run(s_sm, queries[i])) << "Q" << i + 1 << " (sortmerge)";
    EXPECT_EQ(a, Run(s_ij, queries[i])) << "Q" << i + 1 << " (indexjoin)";
    if (counts) counts->push_back(a);
  }
}

// ---------------------------------------------------------------------------
// YAGO
// ---------------------------------------------------------------------------

YagoConfig SmallYago() {
  YagoConfig cfg;
  cfg.seed = 11;
  cfg.num_persons = 4000;
  cfg.num_cities = 120;
  cfg.num_countries = 12;
  cfg.num_movies = 700;
  cfg.num_universities = 60;
  return cfg;
}

TEST(Yago, Deterministic) {
  rdf::Dataset a = GenerateYago(SmallYago());
  rdf::Dataset b = GenerateYago(SmallYago());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.triples()[42].o, b.triples()[42].o);
}

TEST(Yago, SchemaMix) {
  rdf::Dataset ds = GenerateYago(SmallYago());
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  // Heterogeneous types present.
  EXPECT_GE(g.num_vertex_labels(), 8u);
  EXPECT_GT(g.num_edges(), 10000u);
}

TEST(Yago, AllEnginesAgreeOnAllQueries) {
  rdf::Dataset ds = GenerateYago(SmallYago());
  std::vector<size_t> counts;
  ExpectAllEnginesAgree(ds, YagoQueries(), &counts);
  // The marriage/birth-city and actor queries must be non-trivial.
  EXPECT_GT(counts[1], 0u);  // Q2
  EXPECT_GT(counts[2], 0u);  // Q3
  EXPECT_GT(counts[6], 0u);  // Q7 (self-directed actors)
}

// ---------------------------------------------------------------------------
// BTC
// ---------------------------------------------------------------------------

BtcConfig SmallBtc() {
  BtcConfig cfg;
  cfg.seed = 13;
  cfg.num_persons = 3000;
  cfg.num_documents = 2000;
  cfg.num_places = 400;
  return cfg;
}

TEST(Btc, Deterministic) {
  rdf::Dataset a = GenerateBtc(SmallBtc());
  rdf::Dataset b = GenerateBtc(SmallBtc());
  ASSERT_EQ(a.size(), b.size());
}

TEST(Btc, IrregularCoverage) {
  rdf::Dataset ds = GenerateBtc(SmallBtc());
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  // Not every person is typed (schema noise): fewer Person labels than
  // person name triples.
  auto person = ds.dict().FindIri("http://xmlns.com/foaf/0.1/Person");
  ASSERT_TRUE(person.has_value());
  auto label = g.LabelOfTerm(*person);
  ASSERT_TRUE(label.has_value());
  EXPECT_LT(g.VerticesWithLabel(*label).size(), 3000u);
  EXPECT_GT(g.VerticesWithLabel(*label).size(), 2000u);
}

TEST(Btc, AllEnginesAgreeOnAllQueries) {
  rdf::Dataset ds = GenerateBtc(SmallBtc());
  std::vector<size_t> counts;
  ExpectAllEnginesAgree(ds, BtcQueries(), &counts);
  EXPECT_GT(counts[2], 0u);  // Q3: typed persons with contactable friends
  EXPECT_GT(counts[7], 0u);  // Q8: documents by located authors
}

// ---------------------------------------------------------------------------
// BSBM
// ---------------------------------------------------------------------------

BsbmConfig SmallBsbm() {
  BsbmConfig cfg;
  cfg.seed = 17;
  cfg.num_products = 400;
  cfg.num_product_types = 20;
  cfg.num_features = 60;
  cfg.num_producers = 15;
  cfg.num_vendors = 12;
  cfg.num_reviewers = 200;
  return cfg;
}

TEST(Bsbm, InferenceClosesTypeHierarchy) {
  rdf::Dataset ds = GenerateBsbmClosed(SmallBsbm());
  EXPECT_GT(ds.size(), ds.num_original());
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  // Every product must carry the root Product label after closure.
  auto product = ds.dict().FindIri(std::string(kBsbmPrefix) + "Product");
  ASSERT_TRUE(product.has_value());
  auto label = g.LabelOfTerm(*product);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(g.VerticesWithLabel(*label).size(), 400u);
}

TEST(Bsbm, AllEnginesAgreeOnAllQueries) {
  rdf::Dataset ds = GenerateBsbmClosed(SmallBsbm());
  std::vector<size_t> counts;
  ExpectAllEnginesAgree(ds, BsbmQueries(), &counts);
  EXPECT_GT(counts[1], 0u);   // Q2: fixed-product star
  EXPECT_GT(counts[7], 0u);   // Q8: English reviews exist
  EXPECT_GT(counts[10], 0u);  // Q11: variable predicate star
}

TEST(Bsbm, Q3NegationSemantics) {
  // Q3's OPTIONAL+!bound must act as negation: no product may have both
  // feature1 and appear in the result.
  rdf::Dataset ds = GenerateBsbmClosed(SmallBsbm());
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  sparql::TurboBgpSolver solver(g, ds.dict());
  sparql::Executor ex(&solver);
  auto q3 = ex.Execute(BsbmQueries()[2]);
  ASSERT_TRUE(q3.ok()) << q3.message();
  // Compare against explicit both-features query.
  auto both = ex.Execute(
      std::string("PREFIX bsbm: <") + kBsbmPrefix + "> PREFIX inst: <" + kBsbmInst +
      "> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
      "SELECT ?product WHERE { ?product a inst:ProductType1 . "
      "?product bsbm:productFeature inst:ProductFeature1 . "
      "?product bsbm:productFeature inst:ProductFeature2 . }");
  ASSERT_TRUE(both.ok()) << both.message();
  std::set<TermId> excluded;
  for (const auto& row : both.value().rows) excluded.insert(row[0]);
  for (const auto& row : q3.value().rows) EXPECT_EQ(excluded.count(row[0]), 0u);
}

TEST(Bsbm, Q10OrderedByPrice) {
  rdf::Dataset ds = GenerateBsbmClosed(SmallBsbm());
  graph::DataGraph g = graph::DataGraph::Build(ds, graph::TransformMode::kTypeAware);
  sparql::TurboBgpSolver solver(g, ds.dict());
  sparql::Executor ex(&solver);
  auto r = ex.Execute(BsbmQueries()[9]);
  ASSERT_TRUE(r.ok()) << r.message();
  double prev = -1;
  for (const auto& row : r.value().rows) {
    auto v = ds.dict().NumericValue(row[1]);
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(*v, prev);
    prev = *v;
  }
}

}  // namespace
}  // namespace turbo::workload
