// Tests for the engine's observability surface (MatchStats) and for error /
// edge paths across the SPARQL stack. The stats matter because the paper's
// analysis (§3, §7.3) is phrased in terms of them: time split between
// ExploreCandidateRegion and SubgraphSearch, IsJoinable work, candidate
// region sizes.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "rdf/reasoner.hpp"
#include "sparql/executor.hpp"
#include "sparql/turbo_solver.hpp"
#include "test_util.hpp"

namespace turbo::engine {
namespace {

using graph::QueryGraph;
using testing::AddQE;
using testing::AddQV;
using testing::TestGraph;

/// A 3-university world where Q2-like triangles exist.
class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : t_(Build()) {}
  static TestGraph Build() {
    rdf::Dataset ds;
    auto add = [&](const std::string& s, const std::string& p, const std::string& o) {
      ds.AddIri(testing::TestIri(s),
                p == "type" ? std::string(rdf::vocab::kRdfType) : testing::TestIri(p),
                testing::TestIri(o));
    };
    for (int u = 0; u < 3; ++u) {
      std::string uni = "uni" + std::to_string(u);
      add(uni, "type", "University");
      for (int d = 0; d < 4; ++d) {
        std::string dept = uni + "d" + std::to_string(d);
        add(dept, "type", "Department");
        add(dept, "subOrgOf", uni);
        for (int s = 0; s < 6; ++s) {
          std::string stu = dept + "s" + std::to_string(s);
          add(stu, "type", "Student");
          add(stu, "memberOf", dept);
          add(stu, "degreeFrom", "uni" + std::to_string((u + s) % 3));
        }
      }
    }
    return TestGraph(std::move(ds));
  }

  QueryGraph Triangle() {
    QueryGraph q;
    uint32_t x = AddQV(&q, {t_.label("Student")});
    uint32_t y = AddQV(&q, {t_.label("University")});
    uint32_t z = AddQV(&q, {t_.label("Department")});
    AddQE(&q, x, y, t_.el("degreeFrom"));
    AddQE(&q, x, z, t_.el("memberOf"));
    AddQE(&q, z, y, t_.el("subOrgOf"));
    return q;
  }

  TestGraph t_;
};

TEST_F(StatsTest, RegionAndCandidateCountsPopulated) {
  Matcher m(t_.g());
  MatchStats stats;
  uint64_t n = m.Count(Triangle(), &stats);
  EXPECT_GT(n, 0u);
  EXPECT_EQ(stats.num_start_candidates, 3u);  // freq(University)=3, lowest rank
  EXPECT_GT(stats.num_regions, 0u);
  EXPECT_LE(stats.num_regions, stats.num_start_candidates);
  EXPECT_GT(stats.cr_candidate_vertices, 0u);
  EXPECT_GE(stats.total_ms, 0.0);
}

TEST_F(StatsTest, IntersectionVsMembershipCounters) {
  QueryGraph q = Triangle();
  MatchOptions with_int;  // default: +INT
  MatchStats s1;
  Matcher(t_.g(), with_int).Count(q, &s1);
  EXPECT_GT(s1.intersection_ops, 0u);
  EXPECT_EQ(s1.isjoinable_checks, 0u);

  MatchOptions no_int;
  no_int.use_intersection = false;
  MatchStats s2;
  Matcher(t_.g(), no_int).Count(q, &s2);
  EXPECT_EQ(s2.intersection_ops, 0u);
  EXPECT_GT(s2.isjoinable_checks, 0u);
}

TEST_F(StatsTest, MatchingOrderRecorded) {
  Matcher m(t_.g());
  MatchStats stats;
  m.Count(Triangle(), &stats);
  ASSERT_EQ(stats.matching_order.size(), 3u);
  EXPECT_EQ(stats.matching_order[0], stats.start_query_vertex);
}

TEST_F(StatsTest, TreeOnlyQueryNeedsNoJoinabilityWork) {
  QueryGraph q;  // star: no non-tree edges
  uint32_t x = AddQV(&q, {t_.label("Student")});
  uint32_t z = AddQV(&q, {t_.label("Department")});
  AddQE(&q, x, z, t_.el("memberOf"));
  MatchStats stats;
  Matcher(t_.g()).Count(q, &stats);
  EXPECT_EQ(stats.intersection_ops, 0u);
  EXPECT_EQ(stats.isjoinable_checks, 0u);
}

TEST_F(StatsTest, LimitShortCircuitsWork) {
  MatchOptions opt;
  opt.limit = 1;
  MatchStats stats;
  uint64_t n = Matcher(t_.g(), opt).Count(Triangle(), &stats);
  EXPECT_EQ(n, 1u);
  EXPECT_LT(stats.num_regions, 3u);  // stopped before visiting every region
}

TEST_F(StatsTest, FindAllAndCountAgree) {
  QueryGraph q = Triangle();
  MatchStats s;
  auto sols = Matcher(t_.g()).FindAll(q, &s);
  EXPECT_EQ(sols.size(), s.num_solutions);
  EXPECT_EQ(Matcher(t_.g()).Count(q), sols.size());
}

// ---------------------------------------------------------------------------
// Error paths across the SPARQL stack.
// ---------------------------------------------------------------------------

class ErrorPathTest : public ::testing::Test {
 protected:
  ErrorPathTest()
      : t_({{"a", "p", "b"}, {"a", "type", "T"}}),
        solver_(t_.g(), t_.dataset().dict()),
        ex_(&solver_) {}
  TestGraph t_;
  sparql::TurboBgpSolver solver_;
  sparql::Executor ex_;
};

TEST_F(ErrorPathTest, ParseErrorsPropagate) {
  EXPECT_FALSE(ex_.Execute("SELEC ?x WHERE { ?x ?p ?o . }").ok());
  EXPECT_FALSE(ex_.Execute("SELECT ?x WHERE { ?x ?p }").ok());
}

TEST_F(ErrorPathTest, NodeAndPredicatePositionConflict) {
  auto r = ex_.Execute("SELECT * WHERE { ?x ?y ?z . ?y <http://t/p> ?w . }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.message().find("positions"), std::string::npos);
}

TEST_F(ErrorPathTest, EmptyWhereYieldsOneEmptyRow) {
  auto r = ex_.Execute("SELECT * WHERE { }");
  ASSERT_TRUE(r.ok()) << r.message();
  // No variables, one (empty) solution — SPARQL's empty-group semantics.
  EXPECT_EQ(r.value().rows.size(), 1u);
}

TEST_F(ErrorPathTest, FilterOnUnknownVariableIsFalse) {
  auto r = ex_.Execute("SELECT ?x WHERE { ?x <http://t/p> ?o . FILTER(?ghost > 1) }");
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(r.value().rows.size(), 0u);
}

TEST_F(ErrorPathTest, SchemaPatternOnTypeAwareGraph) {
  // (L1 subClassOf ?x) must be answerable even though the type-aware graph
  // dropped the triple (the side-table path).
  TestGraph t({{"Sub", "subclass", "Super"}, {"x", "type", "Sub"}, {"x", "p", "y"}});
  sparql::TurboBgpSolver s(t.g(), t.dataset().dict());
  sparql::Executor ex(&s);
  auto r = ex.Execute(
      "SELECT ?c WHERE { <http://t/Sub> "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf> ?c . }");
  ASSERT_TRUE(r.ok()) << r.message();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(t.dataset().dict().term(r.value().rows[0][0]).lexical,
            testing::TestIri("Super"));
}

TEST_F(ErrorPathTest, SchemaJoinWithInstancePattern) {
  TestGraph t({{"Sub", "subclass", "Super"},
               {"x", "type", "Sub"},
               {"y", "type", "Super"},
               {"x", "p", "y"}});
  sparql::TurboBgpSolver s(t.g(), t.dataset().dict());
  sparql::Executor ex(&s);
  // Join a type variable with a schema pattern: classes of ?a that are
  // subclasses of something.
  auto r = ex.Execute(
      "SELECT ?a ?c ?d WHERE { ?a a ?c . ?c "
      "<http://www.w3.org/2000/01/rdf-schema#subClassOf> ?d . }");
  ASSERT_TRUE(r.ok()) << r.message();
  ASSERT_EQ(r.value().rows.size(), 1u);  // only x's Sub is a subclass
  EXPECT_EQ(t.dataset().dict().term(r.value().rows[0][2]).lexical,
            testing::TestIri("Super"));
}


// ---------------------------------------------------------------------------
// ExplainPlan output.
// ---------------------------------------------------------------------------

TEST_F(StatsTest, ExplainPlanDescribesTreeAndNonTreeEdges) {
  Matcher m(t_.g());
  std::string plan = m.ExplainPlan(Triangle());
  EXPECT_NE(plan.find("start:"), std::string::npos);
  EXPECT_NE(plan.find("query tree"), std::string::npos);
  EXPECT_NE(plan.find("non-tree edges"), std::string::npos);
  EXPECT_NE(plan.find("(root)"), std::string::npos);
}

TEST_F(StatsTest, ExplainPlanPointShape) {
  QueryGraph q;
  AddQV(&q, {t_.label("Student")});
  Matcher m(t_.g());
  std::string plan = m.ExplainPlan(q);
  EXPECT_NE(plan.find("point-shaped"), std::string::npos);
}

TEST_F(StatsTest, ExplainPlanFixedIdStart) {
  QueryGraph q;
  // Pin to data vertex 0 (uni0) with a requirement it satisfies (incoming
  // subOrgOf) — the signature pre-filter drops infeasible pinned starts.
  uint32_t u0 = AddQV(&q, {}, 0);
  uint32_t u1 = AddQV(&q, {});
  AddQE(&q, u1, u0, t_.el("subOrgOf"));
  Matcher m(t_.g());
  std::string plan = m.ExplainPlan(q);
  EXPECT_NE(plan.find("[id=0]"), std::string::npos);
  EXPECT_NE(plan.find("(1 starting vertices)"), std::string::npos);
}

TEST_F(StatsTest, ExplainPlanFixedIdStartInfeasiblePinPrunedBySignature) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {}, 0);  // uni0 has no outgoing memberOf edge
  uint32_t u1 = AddQV(&q, {});
  AddQE(&q, u0, u1, t_.el("memberOf"));
  Matcher m(t_.g());
  std::string plan = m.ExplainPlan(q);
  EXPECT_NE(plan.find("(0 starting vertices)"), std::string::npos);
}

}  // namespace
}  // namespace turbo::engine
