// Unit tests for the RDF substrate: terms, dictionary, N-Triples, reasoner.
#include <gtest/gtest.h>

#include <sstream>

#include "rdf/dataset.hpp"
#include "rdf/dictionary.hpp"
#include "rdf/ntriples.hpp"
#include "rdf/reasoner.hpp"
#include "rdf/term.hpp"
#include "rdf/vocabulary.hpp"

namespace turbo::rdf {
namespace {

// ---------------------------------------------------------------------------
// Term
// ---------------------------------------------------------------------------

TEST(Term, IriSerialization) {
  EXPECT_EQ(Term::Iri("http://x/a").ToNTriples(), "<http://x/a>");
}

TEST(Term, BlankSerialization) { EXPECT_EQ(Term::Blank("b1").ToNTriples(), "_:b1"); }

TEST(Term, PlainLiteralSerialization) {
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
}

TEST(Term, LangLiteralSerialization) {
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToNTriples(), "\"hi\"@en");
}

TEST(Term, TypedLiteralSerialization) {
  EXPECT_EQ(Term::TypedLiteral("5", vocab::kXsdInteger).ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(Term, EscapeRoundTrip) {
  std::string nasty = "a\"b\\c\nd\te\rf";
  EXPECT_EQ(UnescapeNTriples(EscapeNTriples(nasty)), nasty);
}

TEST(Term, EscapeRoundTripEcharAndControls) {
  // The full ECHAR set plus C0 controls that only \uXXXX can carry.
  std::string nasty = "g\bh\fi\x01j\x1Fk";
  std::string escaped = EscapeNTriples(nasty);
  EXPECT_EQ(escaped, "g\\bh\\fi\\u0001j\\u001Fk");
  EXPECT_EQ(UnescapeNTriples(escaped), nasty);
}

TEST(Term, UnescapeUcharShortForm) {
  EXPECT_EQ(UnescapeNTriples("\\u0041"), "A");
  // 2-byte and 3-byte UTF-8 encodings.
  EXPECT_EQ(UnescapeNTriples("\\u00E9"), "\xC3\xA9");          // é
  EXPECT_EQ(UnescapeNTriples("caf\\u00E9"), "caf\xC3\xA9");
  EXPECT_EQ(UnescapeNTriples("\\u20AC"), "\xE2\x82\xAC");      // €
}

TEST(Term, UnescapeUcharLongForm) {
  EXPECT_EQ(UnescapeNTriples("\\U00000041"), "A");
  // Astral plane needs the 8-digit form: U+1F600.
  EXPECT_EQ(UnescapeNTriples("\\U0001F600"), "\xF0\x9F\x98\x80");
}

TEST(Term, UnescapeUcharRoundTripsThroughRawUtf8) {
  // Decoding produces raw UTF-8, which Escape leaves untouched; a second
  // decode is a no-op — the lexical form is stable.
  std::string decoded = UnescapeNTriples("snowman \\u2603 and \\U0001F600");
  EXPECT_EQ(decoded, "snowman \xE2\x98\x83 and \xF0\x9F\x98\x80");
  EXPECT_EQ(UnescapeNTriples(EscapeNTriples(decoded)), decoded);
}

TEST(Term, UnescapeMalformedUcharKeptVerbatim) {
  // Truncated or non-hex sequences must not be silently mangled.
  EXPECT_EQ(UnescapeNTriples("\\u00"), "\\u00");
  EXPECT_EQ(UnescapeNTriples("\\u12G4"), "\\u12G4");
  EXPECT_EQ(UnescapeNTriples("\\U0001F6"), "\\U0001F6");
  EXPECT_EQ(UnescapeNTriples("x\\u"), "x\\u");
  // A trailing lone backslash also survives.
  EXPECT_EQ(UnescapeNTriples("x\\"), "x\\");
}

TEST(Term, UnescapeInvalidCodePointsBecomeReplacement) {
  // Lone surrogates and beyond-Unicode values cannot be UTF-8-encoded.
  EXPECT_EQ(UnescapeNTriples("\\uD800"), "\xEF\xBF\xBD");
  EXPECT_EQ(UnescapeNTriples("\\U00110000"), "\xEF\xBF\xBD");
}

TEST(NTriples, UcharEscapesUnifyWithRawUtf8Spelling) {
  // "é" and a raw é are the same literal; both spellings must intern
  // to one dictionary id.
  Dataset ds;
  auto st = ParseNTriplesString(
      "<http://x/s> <http://x/p> \"caf\\u00E9\" .\n"
      "<http://x/t> <http://x/p> \"caf\xC3\xA9\" .\n",
      &ds);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(ds.triples()[0].o, ds.triples()[1].o);
  EXPECT_EQ(ds.dict().term(ds.triples()[0].o).lexical, "caf\xC3\xA9");
}

TEST(Term, NumericValueInteger) {
  EXPECT_EQ(Term::Literal("42").NumericValue(), 42.0);
}

TEST(Term, NumericValueDecimal) {
  EXPECT_EQ(Term::Literal("-3.5").NumericValue(), -3.5);
}

TEST(Term, NumericValueRejectsText) {
  EXPECT_FALSE(Term::Literal("abc").NumericValue().has_value());
  EXPECT_FALSE(Term::Literal("12abc").NumericValue().has_value());
  EXPECT_FALSE(Term::Iri("42").NumericValue().has_value());
}

TEST(Term, EqualityDistinguishesKindAndTags) {
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
  EXPECT_FALSE(Term::Iri("a") == Term::Literal("a"));
  EXPECT_FALSE(Term::LangLiteral("a", "en") == Term::LangLiteral("a", "de"));
  EXPECT_FALSE(Term::TypedLiteral("a", "t1") == Term::TypedLiteral("a", "t2"));
}

// ---------------------------------------------------------------------------
// Dictionary
// ---------------------------------------------------------------------------

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  TermId a = d.GetOrAddIri("http://x/a");
  TermId b = d.GetOrAddIri("http://x/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
}

TEST(Dictionary, DistinctTermsGetDistinctIds) {
  Dictionary d;
  TermId a = d.GetOrAddIri("http://x/a");
  TermId b = d.GetOrAdd(Term::Literal("http://x/a"));  // same lexical, other kind
  EXPECT_NE(a, b);
}

TEST(Dictionary, FindMissesUnknown) {
  Dictionary d;
  EXPECT_FALSE(d.Find(Term::Iri("nope")).has_value());
}

TEST(Dictionary, RoundTrip) {
  Dictionary d;
  Term t = Term::LangLiteral("hello", "en");
  TermId id = d.GetOrAdd(t);
  EXPECT_EQ(d.term(id), t);
  EXPECT_EQ(d.Find(t), id);
}

TEST(Dictionary, NumericCache) {
  Dictionary d;
  TermId n = d.GetOrAdd(Term::TypedLiteral("99.5", vocab::kXsdDouble));
  TermId s = d.GetOrAdd(Term::Literal("xyz"));
  EXPECT_EQ(d.NumericValue(n), 99.5);
  EXPECT_FALSE(d.NumericValue(s).has_value());
}

// ---------------------------------------------------------------------------
// N-Triples
// ---------------------------------------------------------------------------

TEST(NTriples, ParsesBasicTriples) {
  Dataset ds;
  auto st = ParseNTriplesString(
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "# a comment\n"
      "\n"
      "<http://x/s> <http://x/p> \"lit\" .\n",
      &ds);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(ds.size(), 2u);
}

TEST(NTriples, ParsesAllTermKinds) {
  Dataset ds;
  auto st = ParseNTriplesString(
      "_:b1 <http://x/p> \"v\"@en .\n"
      "<http://x/s> <http://x/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      &ds);
  ASSERT_TRUE(st.ok()) << st.message();
  const Term& subj = ds.dict().term(ds.triples()[0].s);
  EXPECT_TRUE(subj.is_blank());
  const Term& obj0 = ds.dict().term(ds.triples()[0].o);
  EXPECT_EQ(obj0.lang, "en");
  const Term& obj1 = ds.dict().term(ds.triples()[1].o);
  EXPECT_EQ(obj1.datatype, vocab::kXsdInteger);
}

TEST(NTriples, ParsesEscapedLiterals) {
  Dataset ds;
  auto st = ParseNTriplesString("<http://x/s> <http://x/p> \"a\\\"b\\nc\" .\n", &ds);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(ds.dict().term(ds.triples()[0].o).lexical, "a\"b\nc");
}

TEST(NTriples, RejectsMissingDot) {
  Dataset ds;
  auto st = ParseNTriplesString("<http://x/s> <http://x/p> <http://x/o>\n", &ds);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
}

TEST(NTriples, RejectsUnterminatedIri) {
  Dataset ds;
  EXPECT_FALSE(ParseNTriplesString("<http://x/s <http://x/p> <http://x/o> .\n", &ds).ok());
}

TEST(NTriples, RejectsUnterminatedLiteral) {
  Dataset ds;
  EXPECT_FALSE(ParseNTriplesString("<http://x/s> <http://x/p> \"oops .\n", &ds).ok());
}

TEST(NTriples, WriteParseRoundTrip) {
  Dataset ds;
  ds.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"), Term::LangLiteral("héllo\n", "fr"));
  ds.Add(Term::Blank("z"), Term::Iri("http://x/q"), Term::TypedLiteral("1", vocab::kXsdInteger));
  std::ostringstream out;
  WriteNTriples(ds, out);
  Dataset back;
  ASSERT_TRUE(ParseNTriplesString(out.str(), &back).ok());
  ASSERT_EQ(back.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(back.dict().term(back.triples()[i].s), ds.dict().term(ds.triples()[i].s));
    EXPECT_EQ(back.dict().term(back.triples()[i].o), ds.dict().term(ds.triples()[i].o));
  }
}

// ---------------------------------------------------------------------------
// Reasoner
// ---------------------------------------------------------------------------

class ReasonerTest : public ::testing::Test {
 protected:
  void Add(const std::string& s, const std::string& p, const std::string& o) {
    ds_.AddIri("http://t/" + s,
               p == "type"          ? std::string(vocab::kRdfType)
               : p == "subclass"    ? std::string(vocab::kRdfsSubClassOf)
               : p == "subprop"     ? std::string(vocab::kRdfsSubPropertyOf)
               : p == "domain"      ? std::string(vocab::kRdfsDomain)
               : p == "range"       ? std::string(vocab::kRdfsRange)
               : p == "inverseOf"   ? std::string(vocab::kOwlInverseOf)
                                    : "http://t/" + p,
               o == "TransitiveProperty" ? std::string(vocab::kOwlTransitiveProperty)
                                         : "http://t/" + o);
  }
  bool Has(const std::string& s, const std::string& p, const std::string& o) {
    auto si = ds_.dict().FindIri("http://t/" + s);
    auto pi = p == "type" ? ds_.dict().FindIri(vocab::kRdfType)
                          : ds_.dict().FindIri("http://t/" + p);
    auto oi = ds_.dict().FindIri("http://t/" + o);
    if (!si || !pi || !oi) return false;
    for (const Triple& t : ds_.triples())
      if (t.s == *si && t.p == *pi && t.o == *oi) return true;
    return false;
  }
  Dataset ds_;
};

TEST_F(ReasonerTest, SubclassTransitivity) {
  Add("GradStudent", "subclass", "Student");
  Add("Student", "subclass", "Person");
  Add("alice", "type", "GradStudent");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("alice", "type", "Student"));
  EXPECT_TRUE(Has("alice", "type", "Person"));
}

TEST_F(ReasonerTest, SubclassCycleTerminates) {
  Add("A", "subclass", "B");
  Add("B", "subclass", "A");
  Add("x", "type", "A");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("x", "type", "B"));
}

TEST_F(ReasonerTest, SubPropertyInheritance) {
  Add("ugDegreeFrom", "subprop", "degreeFrom");
  Add("degreeFrom", "subprop", "relatedTo");
  Add("alice", "ugDegreeFrom", "mit");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("alice", "degreeFrom", "mit"));
  EXPECT_TRUE(Has("alice", "relatedTo", "mit"));
}

TEST_F(ReasonerTest, DomainAndRange) {
  Add("teaches", "domain", "Teacher");
  Add("teaches", "range", "Course");
  Add("bob", "teaches", "cs101");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("bob", "type", "Teacher"));
  EXPECT_TRUE(Has("cs101", "type", "Course"));
}

TEST_F(ReasonerTest, TransitiveProperty) {
  Add("partOf", "type", "TransitiveProperty");
  Add("a", "partOf", "b");
  Add("b", "partOf", "c");
  Add("c", "partOf", "d");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("a", "partOf", "c"));
  EXPECT_TRUE(Has("a", "partOf", "d"));
  EXPECT_TRUE(Has("b", "partOf", "d"));
}

TEST_F(ReasonerTest, InverseProperty) {
  Add("degreeFrom", "inverseOf", "hasAlumnus");
  Add("alice", "degreeFrom", "mit");
  Add("mit", "hasAlumnus", "bob");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("mit", "hasAlumnus", "alice"));
  EXPECT_TRUE(Has("bob", "degreeFrom", "mit"));
}

TEST_F(ReasonerTest, ClassRule) {
  Add("carol", "headOf", "deptA");
  ReasonerOptions opt;
  opt.class_rules.push_back(
      {ds_.dict().GetOrAddIri("http://t/headOf"), ds_.dict().GetOrAddIri("http://t/Chair"),
       false});
  MaterializeInference(&ds_, opt);
  EXPECT_TRUE(Has("carol", "type", "Chair"));
}

TEST_F(ReasonerTest, ClassRuleOnObject) {
  Add("u1", "hasDept", "deptA");
  ReasonerOptions opt;
  opt.class_rules.push_back({ds_.dict().GetOrAddIri("http://t/hasDept"),
                             ds_.dict().GetOrAddIri("http://t/Department"), true});
  MaterializeInference(&ds_, opt);
  EXPECT_TRUE(Has("deptA", "type", "Department"));
}

TEST_F(ReasonerTest, ChainedRules) {
  // subPropertyOf then inverseOf then subclass-of-type, like LUBM Q13.
  Add("ugDegreeFrom", "subprop", "degreeFrom");
  Add("degreeFrom", "inverseOf", "hasAlumnus");
  Add("alice", "ugDegreeFrom", "mit");
  MaterializeInference(&ds_);
  EXPECT_TRUE(Has("mit", "hasAlumnus", "alice"));
}

TEST_F(ReasonerTest, MarksInferredBoundary) {
  Add("GradStudent", "subclass", "Student");
  Add("alice", "type", "GradStudent");
  size_t before = ds_.size();
  auto stats = MaterializeInference(&ds_);
  EXPECT_EQ(ds_.num_original(), before);
  EXPECT_EQ(stats.inferred_triples, ds_.size() - before);
  EXPECT_GT(stats.inferred_triples, 0u);
  for (size_t i = before; i < ds_.size(); ++i) EXPECT_TRUE(ds_.IsInferred(i));
}

TEST_F(ReasonerTest, FixpointIsIdempotent) {
  Add("partOf", "type", "TransitiveProperty");
  Add("A", "subclass", "B");
  Add("x", "type", "A");
  Add("a", "partOf", "b");
  Add("b", "partOf", "c");
  MaterializeInference(&ds_);
  size_t after_first = ds_.size();
  auto stats2 = MaterializeInference(&ds_);
  EXPECT_EQ(stats2.inferred_triples, 0u);
  EXPECT_EQ(ds_.size(), after_first);
}

TEST_F(ReasonerTest, NoDuplicateInferences) {
  Add("A", "subclass", "C");
  Add("B", "subclass", "C");
  Add("x", "type", "A");
  Add("x", "type", "B");
  MaterializeInference(&ds_);
  // (x type C) derivable twice; must appear once.
  int count = 0;
  auto xc = ds_.dict().FindIri("http://t/x");
  auto tc = ds_.dict().FindIri(vocab::kRdfType);
  auto cc = ds_.dict().FindIri("http://t/C");
  for (const Triple& t : ds_.triples())
    if (t.s == *xc && t.p == *tc && t.o == *cc) ++count;
  EXPECT_EQ(count, 1);
}

TEST_F(ReasonerTest, DisabledRulesDoNotFire) {
  Add("A", "subclass", "B");
  Add("x", "type", "A");
  ReasonerOptions opt;
  opt.subclass_inheritance = false;
  MaterializeInference(&ds_, opt);
  EXPECT_FALSE(Has("x", "type", "B"));
}

}  // namespace
}  // namespace turbo::rdf
