// Unit tests for util/: sorted-set kernels, RNG, parallel-for, channel.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "util/channel.hpp"
#include "util/rng.hpp"
#include "util/sorted.hpp"
#include "util/thread_pool.hpp"

namespace turbo::util {
namespace {

TEST(Sorted, ContainsFindsPresentElements) {
  std::vector<uint32_t> v{1, 3, 5, 9, 100};
  for (uint32_t x : v) EXPECT_TRUE(SortedContains(v, x));
}

TEST(Sorted, ContainsRejectsAbsentElements) {
  std::vector<uint32_t> v{1, 3, 5, 9, 100};
  for (uint32_t x : {0u, 2u, 4u, 10u, 101u}) EXPECT_FALSE(SortedContains(v, x));
}

TEST(Sorted, ContainsOnEmpty) {
  std::vector<uint32_t> v;
  EXPECT_FALSE(SortedContains(v, 1));
}

TEST(Sorted, IntersectBasic) {
  std::vector<uint32_t> a{1, 2, 3, 5, 8}, b{2, 3, 4, 8, 9}, out;
  IntersectInto(a, b, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 3, 8}));
}

TEST(Sorted, IntersectEmptySides) {
  std::vector<uint32_t> a{1, 2}, empty, out;
  IntersectInto(a, empty, &out);
  EXPECT_TRUE(out.empty());
  IntersectInto(empty, a, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Sorted, IntersectDisjoint) {
  std::vector<uint32_t> a{1, 3, 5}, b{2, 4, 6}, out;
  IntersectInto(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Sorted, IntersectGallopPath) {
  // Size ratio >= 16 triggers the galloping strategy.
  std::vector<uint32_t> small{5, 500, 5000};
  std::vector<uint32_t> big(10000);
  std::iota(big.begin(), big.end(), 0);
  std::vector<uint32_t> out;
  IntersectInto(small, big, &out);
  EXPECT_EQ(out, small);
  IntersectInto(big, small, &out);  // order must not matter
  EXPECT_EQ(out, small);
}

TEST(Sorted, IntersectGallopNoMatch) {
  std::vector<uint32_t> small{10001, 10002, 10003};
  std::vector<uint32_t> big(10000);
  std::iota(big.begin(), big.end(), 0);
  std::vector<uint32_t> out;
  IntersectInto(small, big, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Sorted, KWayIntersect) {
  std::vector<uint32_t> a{1, 2, 3, 4, 5}, b{2, 3, 4, 6}, c{0, 3, 4, 5};
  std::vector<uint32_t> out;
  IntersectKWay({a, b, c}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{3, 4}));
}

TEST(Sorted, KWaySingleList) {
  std::vector<uint32_t> a{7, 9};
  std::vector<uint32_t> out;
  IntersectKWay({a}, &out);
  EXPECT_EQ(out, a);
}

TEST(Sorted, KWayEmptyInput) {
  std::vector<uint32_t> out{42};
  IntersectKWay({}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Sorted, UnionDeduplicates) {
  std::vector<uint32_t> a{1, 3, 5}, b{3, 4, 5}, c{1};
  std::vector<uint32_t> out;
  UnionInto({a, b, c}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 3, 4, 5}));
}

TEST(Sorted, UnionOfNothing) {
  std::vector<uint32_t> out{9};
  UnionInto({}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Sorted, IntersectInPlaceKeepsCommon) {
  std::vector<uint32_t> v{1, 2, 3, 4};
  std::vector<uint32_t> other{2, 4, 8};
  IntersectInPlace(&v, other);
  EXPECT_EQ(v, (std::vector<uint32_t>{2, 4}));
}

TEST(Sorted, GallopLowerBoundFindsFirstGeq) {
  std::vector<uint32_t> a{2, 4, 6, 8, 10, 12};
  EXPECT_EQ(GallopLowerBound(a, 0, 1), 0u);
  EXPECT_EQ(GallopLowerBound(a, 0, 6), 2u);
  EXPECT_EQ(GallopLowerBound(a, 0, 7), 3u);
  EXPECT_EQ(GallopLowerBound(a, 2, 13), 6u);
  EXPECT_EQ(GallopLowerBound(a, 5, 12), 5u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = r.Range(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    saw_lo |= x == 3;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelForDynamic(8, 1000, 7, [&](uint64_t b, uint64_t e, uint32_t) {
    for (uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SequentialFallback) {
  std::vector<int> hits(100, 0);
  ParallelForDynamic(1, 100, 9, [&](uint64_t b, uint64_t e, uint32_t tid) {
    EXPECT_EQ(tid, 0u);
    for (uint64_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroTotalIsNoop) {
  ParallelForDynamic(4, 0, 8, [&](uint64_t, uint64_t, uint32_t) { FAIL(); });
}

using IntChannel = Channel<int>;
constexpr auto kNeverAbort = [] { return false; };

TEST(Channel, FifoOrderWithinCapacity) {
  IntChannel ch(4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ch.Push(i, kNeverAbort), IntChannel::Op::kOk);
  EXPECT_EQ(ch.size(), 4u);
  int v;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ch.Pop(&v, kNeverAbort), IntChannel::Op::kOk);
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(ch.peak_size(), 4u);
}

TEST(Channel, ZeroCapacityClampsToOne) {
  IntChannel ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

TEST(Channel, CloseProducerDrainsThenCloses) {
  IntChannel ch(8);
  ch.Push(1, kNeverAbort);
  ch.Push(2, kNeverAbort);
  ch.CloseProducer();
  int v;
  EXPECT_EQ(ch.Pop(&v, kNeverAbort), IntChannel::Op::kOk);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(ch.Pop(&v, kNeverAbort), IntChannel::Op::kOk);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(ch.Pop(&v, kNeverAbort), IntChannel::Op::kClosed);
}

TEST(Channel, BackpressureBoundsBuffering) {
  // A fast producer against a slow consumer never holds more than capacity.
  IntChannel ch(3);
  constexpr int kTotal = 50;
  std::thread producer([&] {
    for (int i = 0; i < kTotal; ++i) ASSERT_EQ(ch.Push(i, kNeverAbort), IntChannel::Op::kOk);
    ch.CloseProducer();
  });
  std::vector<int> got;
  int v;
  while (ch.Pop(&v, kNeverAbort) == IntChannel::Op::kOk) {
    got.push_back(v);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  producer.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(got[i], i);
  EXPECT_LE(ch.peak_size(), 3u);
}

TEST(Channel, AbortWakesBlockedPush) {
  IntChannel ch(1);
  ASSERT_EQ(ch.Push(0, kNeverAbort), IntChannel::Op::kOk);
  std::atomic<bool> abort{false};
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
  });
  // Full channel, nobody popping: only the abort predicate can end this.
  EXPECT_EQ(ch.Push(1, [&] { return abort.load(); }), IntChannel::Op::kAborted);
  trip.join();
}

TEST(Channel, AbortWakesBlockedPop) {
  IntChannel ch(1);
  std::atomic<bool> abort{false};
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
  });
  int v;
  EXPECT_EQ(ch.Pop(&v, [&] { return abort.load(); }), IntChannel::Op::kAborted);
  trip.join();
}

TEST(Channel, CloseConsumerWakesAndRejectsProducers) {
  IntChannel ch(1);
  ASSERT_EQ(ch.Push(0, kNeverAbort), IntChannel::Op::kOk);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.CloseConsumer();
  });
  EXPECT_EQ(ch.Push(1, kNeverAbort), IntChannel::Op::kClosed);
  closer.join();
  // Buffered items were discarded; further pushes fail immediately.
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.Push(2, kNeverAbort), IntChannel::Op::kClosed);
}

TEST(Channel, AbortFreeBlockingPopTakesNoTimedSlices) {
  // The untimed overloads must park on the condvar, not poll: a consumer
  // blocked for ~100ms with no abort probe would previously spin dozens of
  // 2ms wait_for slices; now it takes zero.
  IntChannel ch(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(ch.Push(42, kNeverAbort), IntChannel::Op::kOk);
    ch.CloseProducer();
  });
  int v;
  EXPECT_EQ(ch.Pop(&v), IntChannel::Op::kOk);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(ch.Pop(&v), IntChannel::Op::kClosed);
  producer.join();
  EXPECT_EQ(ch.timed_wait_slices(), 0u);
}

TEST(Channel, AbortFreeBlockingPushTakesNoTimedSlices) {
  IntChannel ch(1);
  ASSERT_EQ(ch.Push(0), IntChannel::Op::kOk);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int v;
    ASSERT_EQ(ch.Pop(&v), IntChannel::Op::kOk);
    ASSERT_EQ(ch.Pop(&v), IntChannel::Op::kOk);
  });
  // Channel full: the untimed push blocks until the consumer drains, with
  // no timed polling in between.
  EXPECT_EQ(ch.Push(1), IntChannel::Op::kOk);
  consumer.join();
  EXPECT_EQ(ch.timed_wait_slices(), 0u);
}

TEST(Channel, CloseConsumerWakesUntimedPush) {
  // Abandonment must not depend on a polling probe: CloseConsumer alone has
  // to wake a producer parked in the untimed Push.
  IntChannel ch(1);
  ASSERT_EQ(ch.Push(0), IntChannel::Op::kOk);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.CloseConsumer();
  });
  EXPECT_EQ(ch.Push(1), IntChannel::Op::kClosed);
  closer.join();
  EXPECT_EQ(ch.timed_wait_slices(), 0u);
}

TEST(Channel, TimedOverloadsStillCountSlices) {
  // The probing overloads remain available for cancel/deadline paths — and
  // observably slice their waits (this is what the counter is for).
  IntChannel ch(1);
  std::atomic<bool> abort{false};
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.store(true);
  });
  int v;
  EXPECT_EQ(ch.Pop(&v, [&] { return abort.load(); }), IntChannel::Op::kAborted);
  trip.join();
  EXPECT_GE(ch.timed_wait_slices(), 1u);
}

}  // namespace
}  // namespace turbo::util
