// Unit tests for the baseline substrate: the six-permutation triple index
// and the two baseline BGP solvers (every binding-pattern combination, join
// ordering, repeated variables, pre-bound rows).
#include <gtest/gtest.h>

#include <set>

#include "baseline/solvers.hpp"
#include "baseline/triple_index.hpp"
#include "sparql/parser.hpp"
#include "test_util.hpp"

namespace turbo::baseline {
namespace {

class TripleIndexTest : public ::testing::Test {
 protected:
  TripleIndexTest() {
    ds_ = testing::MakeDataset({
        {"a", "p", "b"},
        {"a", "p", "c"},
        {"a", "q", "b"},
        {"b", "p", "c"},
        {"c", "q", "a"},
        {"c", "q", "a"},  // duplicate: must be deduplicated
    });
    index_ = std::make_unique<TripleIndex>(ds_);
  }
  TermId T(const std::string& name) {
    auto t = ds_.dict().FindIri(testing::TestIri(name));
    return t ? *t : kInvalidId;
  }
  rdf::Dataset ds_;
  std::unique_ptr<TripleIndex> index_;
};

TEST_F(TripleIndexTest, Deduplicates) { EXPECT_EQ(index_->size(), 5u); }

TEST_F(TripleIndexTest, FullScan) {
  EXPECT_EQ(index_->Lookup(kInvalidId, kInvalidId, kInvalidId).size(), 5u);
}

TEST_F(TripleIndexTest, AllBindingPatterns) {
  // (s) (p) (o) (sp) (so) (po) (spo)
  EXPECT_EQ(index_->Lookup(T("a"), kInvalidId, kInvalidId).size(), 3u);
  EXPECT_EQ(index_->Lookup(kInvalidId, T("p"), kInvalidId).size(), 3u);
  EXPECT_EQ(index_->Lookup(kInvalidId, kInvalidId, T("b")).size(), 2u);
  EXPECT_EQ(index_->Lookup(T("a"), T("p"), kInvalidId).size(), 2u);
  EXPECT_EQ(index_->Lookup(T("a"), kInvalidId, T("b")).size(), 2u);
  EXPECT_EQ(index_->Lookup(kInvalidId, T("q"), T("a")).size(), 1u);
  EXPECT_EQ(index_->Lookup(T("a"), T("p"), T("b")).size(), 1u);
  EXPECT_EQ(index_->Lookup(T("a"), T("q"), T("c")).size(), 0u);
}

TEST_F(TripleIndexTest, RangesAreExact) {
  // Every returned triple must actually match the binding.
  auto span = index_->Lookup(T("a"), kInvalidId, T("b"));
  for (const rdf::Triple& t : span) {
    EXPECT_EQ(t.s, T("a"));
    EXPECT_EQ(t.o, T("b"));
  }
}

TEST_F(TripleIndexTest, MissingTermsYieldEmpty) {
  EXPECT_TRUE(index_->Lookup(12345, kInvalidId, kInvalidId).empty());
}

// ---------------------------------------------------------------------------
// Solver-level tests (shared across both baselines via a parameterized
// fixture).
// ---------------------------------------------------------------------------

enum class Kind { kSortMerge, kIndexJoin };

class BaselineSolverTest : public ::testing::TestWithParam<Kind> {
 protected:
  BaselineSolverTest() {
    ds_ = testing::MakeDataset({
        {"alice", "knows", "bob"},
        {"bob", "knows", "carol"},
        {"carol", "knows", "alice"},
        {"alice", "worksFor", "acme"},
        {"bob", "worksFor", "acme"},
        {"narc", "knows", "narc"},  // self loop
    });
    index_ = std::make_unique<TripleIndex>(ds_);
    if (GetParam() == Kind::kSortMerge)
      solver_ = std::make_unique<SortMergeBgpSolver>(*index_, ds_.dict());
    else
      solver_ = std::make_unique<IndexJoinBgpSolver>(*index_, ds_.dict());
  }

  /// Evaluates a BGP given as SPARQL text; returns distinct + total counts.
  std::pair<size_t, size_t> Eval(const std::string& where, sparql::Row bound = {}) {
    auto q = sparql::ParseQuery("SELECT * WHERE { " + where + " }");
    EXPECT_TRUE(q.ok()) << q.message();
    sparql::VarRegistry vars;
    for (const auto& tp : q.value().where.triples)
      for (const auto* pt : {&tp.s, &tp.p, &tp.o})
        if (pt->is_var()) vars.GetOrAdd(pt->var);
    bound.resize(vars.size(), kInvalidId);
    std::set<sparql::Row> distinct;
    size_t total = 0;
    auto st = solver_->Evaluate(q.value().where.triples, vars, bound, {},
                                [&](const sparql::Row& r) {
                                  distinct.insert(r);
                                  ++total;
                                  return sparql::EmitResult::kContinue;
                                });
    EXPECT_TRUE(st.ok()) << st.message();
    return {distinct.size(), total};
  }

  TermId T(const std::string& name) { return *ds_.dict().FindIri(testing::TestIri(name)); }

  rdf::Dataset ds_;
  std::unique_ptr<TripleIndex> index_;
  std::unique_ptr<sparql::BgpSolver> solver_;
};

TEST_P(BaselineSolverTest, SinglePattern) {
  EXPECT_EQ(Eval("?x <http://t/knows> ?y .").second, 4u);
}

TEST_P(BaselineSolverTest, ChainJoin) {
  EXPECT_EQ(Eval("?x <http://t/knows> ?y . ?y <http://t/knows> ?z .").second, 4u);
}

TEST_P(BaselineSolverTest, TriangleJoin) {
  EXPECT_EQ(
      Eval("?x <http://t/knows> ?y . ?y <http://t/knows> ?z . ?z <http://t/knows> ?x .")
          .second,
      4u);  // 3 rotations + the self-loop triple (narc,narc,narc)
}

TEST_P(BaselineSolverTest, RepeatedVariableWithinPattern) {
  EXPECT_EQ(Eval("?x <http://t/knows> ?x .").second, 1u);  // narc only
}

TEST_P(BaselineSolverTest, ConstantAnchors) {
  EXPECT_EQ(Eval("<http://t/alice> <http://t/knows> ?y .").second, 1u);
  EXPECT_EQ(Eval("?x <http://t/worksFor> <http://t/acme> .").second, 2u);
  EXPECT_EQ(Eval("<http://t/alice> <http://t/knows> <http://t/bob> .").second, 1u);
}

TEST_P(BaselineSolverTest, UnknownConstantYieldsNoRows) {
  EXPECT_EQ(Eval("<http://t/ghost> <http://t/knows> ?y .").second, 0u);
}

TEST_P(BaselineSolverTest, VariablePredicate) {
  EXPECT_EQ(Eval("<http://t/alice> ?p ?y .").second, 2u);  // knows + worksFor
}

TEST_P(BaselineSolverTest, CartesianWhenDisconnected) {
  EXPECT_EQ(Eval("?x <http://t/worksFor> <http://t/acme> . "
                 "?a <http://t/knows> <http://t/carol> .")
                .second,
            2u);  // 2 workers x 1 knower
}

TEST_P(BaselineSolverTest, PreBoundRowActsAsConstant) {
  // Bind ?x = alice before evaluation (the executor's OPTIONAL mechanism).
  auto q = sparql::ParseQuery("SELECT * WHERE { ?x <http://t/knows> ?y . }");
  ASSERT_TRUE(q.ok());
  sparql::VarRegistry vars;
  int vx = vars.GetOrAdd("x");
  vars.GetOrAdd("y");
  sparql::Row bound(vars.size(), kInvalidId);
  bound[vx] = T("alice");
  size_t count = 0;
  auto st = solver_->Evaluate(q.value().where.triples, vars, bound, {},
                              [&](const sparql::Row& r) {
                                EXPECT_EQ(r[vx], T("alice"));
                                ++count;
                                return sparql::EmitResult::kContinue;
                              });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 1u);
}

TEST_P(BaselineSolverTest, EmptyBgpEmitsBoundRow) {
  auto [distinct, total] = Eval("");
  EXPECT_EQ(total, 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, BaselineSolverTest,
                         ::testing::Values(Kind::kSortMerge, Kind::kIndexJoin));

}  // namespace
}  // namespace turbo::baseline
