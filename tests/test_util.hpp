// Shared helpers for building small labeled test graphs from triple lists.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "graph/data_graph.hpp"
#include "graph/query_graph.hpp"
#include "rdf/dataset.hpp"
#include "rdf/vocabulary.hpp"

namespace turbo::testing {

/// A triple spec: predicate "type" stands for rdf:type, "subclass" for
/// rdfs:subClassOf; everything becomes IRI terms under http://t/.
struct Spec {
  std::string s, p, o;
};

inline std::string TestIri(const std::string& name) { return "http://t/" + name; }

/// Builds a Dataset from specs (all-original triples).
inline rdf::Dataset MakeDataset(std::initializer_list<Spec> specs) {
  rdf::Dataset ds;
  for (const Spec& sp : specs) {
    std::string p = sp.p == "type"       ? std::string(rdf::vocab::kRdfType)
                    : sp.p == "subclass" ? std::string(rdf::vocab::kRdfsSubClassOf)
                                         : TestIri(sp.p);
    ds.AddIri(TestIri(sp.s), p, TestIri(sp.o));
  }
  return ds;
}

/// Dataset + DataGraph bundle with name-based lookups.
class TestGraph {
 public:
  TestGraph(std::initializer_list<Spec> specs,
            graph::TransformMode mode = graph::TransformMode::kTypeAware)
      : ds_(MakeDataset(specs)), g_(graph::DataGraph::Build(ds_, mode)) {}
  explicit TestGraph(rdf::Dataset ds,
                     graph::TransformMode mode = graph::TransformMode::kTypeAware)
      : ds_(std::move(ds)), g_(graph::DataGraph::Build(ds_, mode)) {}

  const graph::DataGraph& g() const { return g_; }
  const rdf::Dataset& dataset() const { return ds_; }

  VertexId vertex(const std::string& name) const {
    auto t = ds_.dict().FindIri(TestIri(name));
    if (!t) return kInvalidId;
    auto v = g_.VertexOfTerm(*t);
    return v ? *v : kInvalidId;
  }
  LabelId label(const std::string& name) const {
    auto t = ds_.dict().FindIri(TestIri(name));
    if (!t) return kInvalidId;
    auto l = g_.LabelOfTerm(*t);
    return l ? *l : kInvalidId;
  }
  EdgeLabelId el(const std::string& name) const {
    auto t = ds_.dict().FindIri(TestIri(name));
    if (!t) return kInvalidId;
    auto e = g_.EdgeLabelOfTerm(*t);
    return e ? *e : kInvalidId;
  }
  std::string vertex_name(VertexId v) const {
    const std::string& iri = ds_.dict().term(g_.VertexTerm(v)).lexical;
    return iri.substr(std::string("http://t/").size());
  }

 private:
  rdf::Dataset ds_;
  graph::DataGraph g_;
};

/// Query-graph building shorthand.
inline uint32_t AddQV(graph::QueryGraph* q, std::vector<LabelId> labels,
                      VertexId fixed = kInvalidId) {
  graph::QueryVertex v;
  v.labels = std::move(labels);
  std::sort(v.labels.begin(), v.labels.end());
  v.fixed_id = fixed;
  return q->AddVertex(v);
}

inline void AddQE(graph::QueryGraph* q, uint32_t from, uint32_t to,
                  EdgeLabelId el = kInvalidId) {
  graph::QueryEdge e;
  e.from = from;
  e.to = to;
  e.label = el;
  q->AddEdge(e);
}

}  // namespace turbo::testing
