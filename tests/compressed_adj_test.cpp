// Compressed adjacency: codec round-trips on adversarial lists, galloping
// membership vs. a linear oracle, DataGraph storage-mode parity, and the
// signature false-positive-only property.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "graph/compressed_adj.hpp"
#include "graph/data_graph.hpp"
#include "graph/graph_snapshot.hpp"
#include "test_util.hpp"
#include "workload/lubm.hpp"

namespace turbo::graph {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& values) {
  std::vector<uint8_t> bytes;
  std::vector<SkipEntry> skips;
  EncodeSortedList(values, &bytes, &skips);
  size_t encoded = bytes.size();
  bytes.insert(bytes.end(), kDecodePad, 0);
  std::vector<uint32_t> out(values.size());
  size_t consumed = DecodeSortedList(bytes.data(), values.size(), out.data());
  EXPECT_EQ(consumed, encoded);
  return out;
}

TEST(CompressedAdj, RoundTripAdversarialLists) {
  // Empty, single, dense runs, max-delta gaps, block-boundary sizes.
  std::vector<std::vector<uint32_t>> cases = {
      {},
      {0},
      {0xffffffffu},
      {0, 0xffffffffu},
      {5},
      {1, 2, 3, 4, 5, 6, 7, 8, 9},
      {0, 1, 2, 3},
      {100, 200, 300, 400, 500},
      {0, 256, 65536, 16777216, 0xfffffffeu, 0xffffffffu},
  };
  // Dense run crossing several skip blocks.
  std::vector<uint32_t> dense;
  for (uint32_t i = 0; i < 5 * kSkipBlock + 3; ++i) dense.push_back(i * 2);
  cases.push_back(dense);
  // Exact block-boundary lengths.
  for (uint32_t n : {kSkipBlock - 1, kSkipBlock, kSkipBlock + 1, 2 * kSkipBlock}) {
    std::vector<uint32_t> v;
    for (uint32_t i = 0; i < n; ++i) v.push_back(i * 1000 + 7);
    cases.push_back(v);
  }
  // Alternating tiny/huge deltas exercising every byte-length tier.
  {
    std::vector<uint32_t> v;
    uint32_t x = 0;
    uint32_t steps[] = {1, 2, 255, 256, 65535, 65536, 16777215, 16777216};
    for (int rep = 0; rep < 40; ++rep) {
      x += steps[rep % 8];
      if (x < (rep ? v.back() : 0)) break;  // wrapped
      v.push_back(x);
    }
    cases.push_back(v);
  }
  for (const auto& values : cases) {
    EXPECT_EQ(RoundTrip(values), values) << "n=" << values.size();
  }
}

TEST(CompressedAdj, RoundTripRandomLists) {
  std::mt19937 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    size_t n = rng() % 700;
    std::vector<uint32_t> values;
    uint64_t x = 0;
    for (size_t i = 0; i < n; ++i) {
      // Mix of small and occasionally huge gaps.
      uint32_t gap = (rng() % 10 == 0) ? rng() : rng() % 64;
      x += gap + 1;
      if (x > 0xffffffffull) break;
      values.push_back(static_cast<uint32_t>(x));
    }
    EXPECT_EQ(RoundTrip(values), values) << "iter=" << iter;
  }
}

TEST(CompressedAdj, GallopingContainsMatchesLinearOracle) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    size_t n = 1 + rng() % 600;
    std::vector<uint32_t> values;
    uint32_t x = rng() % 100;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(x);
      x += 1 + rng() % 50;
    }
    std::vector<uint8_t> bytes;
    std::vector<SkipEntry> skips;
    EncodeSortedList(values, &bytes, &skips);
    bytes.insert(bytes.end(), kDecodePad, 0);
    auto oracle = [&](uint32_t q) {
      return std::find(values.begin(), values.end(), q) != values.end();
    };
    // Probe every member, every member's neighbors, and random values.
    for (uint32_t q : values) {
      EXPECT_TRUE(CompressedContains(bytes.data(), values.size(), skips, q));
      for (uint32_t probe : {q - 1, q + 1})
        EXPECT_EQ(CompressedContains(bytes.data(), values.size(), skips, probe),
                  oracle(probe))
            << "probe=" << probe;
    }
    for (int k = 0; k < 50; ++k) {
      uint32_t q = rng();
      EXPECT_EQ(CompressedContains(bytes.data(), values.size(), skips, q), oracle(q));
    }
  }
}

TEST(CompressedAdj, EmptyListContainsNothing) {
  std::vector<uint8_t> bytes(kDecodePad, 0);
  EXPECT_FALSE(CompressedContains(bytes.data(), 0, {}, 0));
  EXPECT_FALSE(CompressedContains(bytes.data(), 0, {}, 0xffffffffu));
}

// ---- DataGraph-level parity between storage modes. ----

rdf::Dataset LubmSample() {
  workload::LubmConfig cfg;
  cfg.num_universities = 1;
  return workload::GenerateLubmClosed(cfg);
}

TEST(CompressedAdj, DataGraphAccessorParityOnLubm) {
  rdf::Dataset ds = LubmSample();
  for (TransformMode mode : {TransformMode::kTypeAware, TransformMode::kDirect}) {
    DataGraph plain = DataGraph::Build(ds, mode, StorageMode::kUncompressed);
    DataGraph packed = DataGraph::Build(ds, mode, StorageMode::kCompressed);
    ASSERT_EQ(plain.num_vertices(), packed.num_vertices());
    ASSERT_EQ(plain.num_edges(), packed.num_edges());
    std::vector<VertexId> scratch;
    std::mt19937 rng(3);
    for (VertexId v = 0; v < plain.num_vertices(); ++v) {
      for (Direction d : {Direction::kOut, Direction::kIn}) {
        EXPECT_EQ(plain.Degree(v, d), packed.Degree(v, d));
        for (const auto& grp : plain.ElGroups(v, d)) {
          auto want = plain.GroupNeighbors(d, grp);
          auto got = packed.Neighbors(v, d, grp.el, scratch);
          ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
              << "v=" << v << " el=" << grp.el;
          // Membership parity incl. near-misses.
          for (VertexId w : want) {
            EXPECT_TRUE(packed.HasEdge(v, w, grp.el) ==
                        plain.HasEdge(v, w, grp.el));
          }
          VertexId probe = static_cast<VertexId>(rng() % plain.num_vertices());
          if (d == Direction::kOut) {
            EXPECT_EQ(plain.HasEdge(v, probe, grp.el), packed.HasEdge(v, probe, grp.el));
          }
        }
        for (const auto& grp : plain.TypeGroups(v, d)) {
          auto want = plain.GroupNeighbors(d, grp);
          auto got = packed.Neighbors(v, d, grp.el, grp.vl, scratch);
          ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()));
          EXPECT_EQ(packed.NeighborCount(v, d, grp.el, grp.vl), want.size());
        }
        // AllNeighbors parity (multiplicity-preserving concatenation).
        auto want_all = plain.AllNeighborsRaw(v, d);
        std::vector<VertexId> all_scratch;
        auto got_all = packed.AllNeighbors(v, d, all_scratch);
        ASSERT_TRUE(
            std::equal(want_all.begin(), want_all.end(), got_all.begin(), got_all.end()));
        // UnionNeighbors: sorted duplicate-free union across all el groups,
        // identical in both modes and equal to a from-scratch oracle.
        std::vector<VertexId> union_oracle(want_all.begin(), want_all.end());
        std::sort(union_oracle.begin(), union_oracle.end());
        union_oracle.erase(std::unique(union_oracle.begin(), union_oracle.end()),
                           union_oracle.end());
        std::vector<VertexId> ub1, ub2;
        auto uw = plain.UnionNeighbors(v, d, ub1);
        auto ug = packed.UnionNeighbors(v, d, ub2);
        ASSERT_TRUE(std::equal(uw.begin(), uw.end(), union_oracle.begin(),
                               union_oracle.end()));
        ASSERT_TRUE(std::equal(ug.begin(), ug.end(), union_oracle.begin(),
                               union_oracle.end()));
        // Per-label union + count parity over every label that occurs.
        std::vector<LabelId> vls;
        for (const auto& grp : plain.TypeGroups(v, d)) vls.push_back(grp.vl);
        std::sort(vls.begin(), vls.end());
        vls.erase(std::unique(vls.begin(), vls.end()), vls.end());
        for (LabelId vl : vls) {
          std::vector<VertexId> lb1, lb2;
          auto lw = plain.NeighborsWithLabel(v, d, vl, lb1);
          auto lg = packed.NeighborsWithLabel(v, d, vl, lb2);
          ASSERT_TRUE(std::equal(lw.begin(), lw.end(), lg.begin(), lg.end()))
              << "v=" << v << " vl=" << vl;
          EXPECT_EQ(plain.NeighborCountWithLabel(v, d, vl),
                    packed.NeighborCountWithLabel(v, d, vl));
        }
        EXPECT_EQ(packed.NeighborCountWithLabel(v, d, kInvalidId - 1), 0u);
      }
      EXPECT_EQ(plain.signature(v), packed.signature(v));
    }
    // EdgeLabelsBetween parity on a sample of vertex pairs.
    std::vector<EdgeLabelId> els_a, els_b;
    for (int k = 0; k < 2000; ++k) {
      VertexId a = static_cast<VertexId>(rng() % plain.num_vertices());
      VertexId b = static_cast<VertexId>(rng() % plain.num_vertices());
      plain.EdgeLabelsBetween(a, b, &els_a);
      packed.EdgeLabelsBetween(a, b, &els_b);
      EXPECT_EQ(els_a, els_b);
    }
    // Compression must actually shrink the neighbor storage.
    auto mu = plain.MemoryUsage();
    auto mc = packed.MemoryUsage();
    EXPECT_EQ(mc.adjacency_neighbors, 0u);
    EXPECT_GT(mc.adjacency_compressed, 0u);
    EXPECT_LT(mc.adjacency_total(), mu.adjacency_total());
  }
}

TEST(CompressedAdj, SignatureIsFalsePositiveOnly) {
  // For every vertex and every incident (dir, el, vl) requirement the
  // signature must contain the bit — i.e. a required bit can never reject a
  // vertex that actually has the neighbor type (no false negatives).
  rdf::Dataset ds = LubmSample();
  DataGraph g = DataGraph::Build(ds, TransformMode::kTypeAware);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (Direction d : {Direction::kOut, Direction::kIn}) {
      for (const auto& grp : g.ElGroups(v, d)) {
        uint64_t bit = DataGraph::SignatureBit(d, grp.el, kInvalidId);
        EXPECT_EQ(g.signature(v) & bit, bit);
      }
      for (const auto& grp : g.TypeGroups(v, d)) {
        uint64_t bit = DataGraph::SignatureBit(d, grp.el, grp.vl);
        EXPECT_EQ(g.signature(v) & bit, bit);
      }
    }
  }
}

TEST(CompressedAdj, GraphSnapshotRoundTrip) {
  rdf::Dataset ds = LubmSample();
  for (StorageMode storage : {StorageMode::kUncompressed, StorageMode::kCompressed}) {
    DataGraph g = DataGraph::Build(ds, TransformMode::kTypeAware, storage);
    std::string payload;
    SerializeDataGraph(g, &payload);
    auto back = DeserializeDataGraph(payload);
    ASSERT_TRUE(back.ok()) << back.message();
    const DataGraph& r = back.value();
    ASSERT_EQ(r.num_vertices(), g.num_vertices());
    ASSERT_EQ(r.num_edges(), g.num_edges());
    ASSERT_EQ(r.storage_mode(), g.storage_mode());
    ASSERT_EQ(r.mode(), g.mode());
    std::vector<VertexId> s1, s2;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(r.signature(v), g.signature(v));
      EXPECT_EQ(r.VertexTerm(v), g.VertexTerm(v));
      for (Direction d : {Direction::kOut, Direction::kIn}) {
        auto a = g.AllNeighbors(v, d, s1);
        auto b = r.AllNeighbors(v, d, s2);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
    }
    // The byte breakdown survives verbatim — i.e. no re-encoding happened.
    auto ma = g.MemoryUsage();
    auto mb = r.MemoryUsage();
    EXPECT_EQ(ma.adjacency_compressed, mb.adjacency_compressed);
    EXPECT_EQ(ma.skip_tables, mb.skip_tables);
    EXPECT_EQ(ma.adjacency_total(), mb.adjacency_total());
  }
}

TEST(CompressedAdj, DeserializeRejectsCorruption) {
  rdf::Dataset ds = testing::MakeDataset({{"a", "p", "b"}, {"b", "p", "c"}});
  DataGraph g = DataGraph::Build(ds, TransformMode::kTypeAware, StorageMode::kCompressed);
  std::string payload;
  SerializeDataGraph(g, &payload);
  EXPECT_FALSE(DeserializeDataGraph(payload.substr(0, payload.size() / 2)).ok());
  EXPECT_FALSE(DeserializeDataGraph(payload + "x").ok());
  std::string bad = payload;
  bad[0] = 99;  // unsupported version
  EXPECT_FALSE(DeserializeDataGraph(bad).ok());
}

}  // namespace
}  // namespace turbo::graph
