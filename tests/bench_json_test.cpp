// The bench JSON emission layer is itself under CTest: the machine tag must
// carry the keys compare_results.py keys off, and ToJson/FromJson must
// round-trip exactly so checked-in bench/results/ baselines can't drift out
// of parseability unnoticed.
#include "bench/bench_json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace turbo {
namespace {

TEST(MachineTag, CarriesRequiredKeys) {
  auto tag = bench::MachineTag();
  ASSERT_TRUE(tag.count("host"));
  EXPECT_FALSE(tag.at("host").empty());
  ASSERT_TRUE(tag.count("cores"));
  EXPECT_GT(std::stoi(tag.at("cores")), 0);
  ASSERT_TRUE(tag.count("compiler"));
  EXPECT_FALSE(tag.at("compiler").empty());
  ASSERT_TRUE(tag.count("build"));
}

bench::BenchReport SampleReport() {
  bench::BenchReport r;
  r.bench = "bench_table3_lubm";
  r.machine = bench::MachineTag();
  r.config["reuse_region_memory"] = "1";
  r.config["reps"] = "5";
  r.results.push_back({"LUBM2/Q1/TurboHOM++", {{"ms", 0.125}, {"rows", 4}, {"allocs", 123}}});
  r.results.push_back({"LUBM2/Q2/TurboHOM++", {{"ms", 17.5}, {"rows", 0}}});
  r.results.push_back({"LUBM8/Q14/SortMerge(RDF-3X-like)", {{"ms", 1234.5678}}});
  return r;
}

TEST(BenchJson, RoundTripsExactly) {
  bench::BenchReport r = SampleReport();
  std::string json = r.ToJson();
  bench::BenchReport parsed;
  std::string err;
  ASSERT_TRUE(bench::BenchReport::FromJson(json, &parsed, &err)) << err;
  EXPECT_EQ(r, parsed);
  // Serializing the parse yields byte-identical JSON (canonical form).
  EXPECT_EQ(json, parsed.ToJson());
}

TEST(BenchJson, RoundTripsAwkwardStringsAndNumbers) {
  bench::BenchReport r;
  r.bench = "quotes \" backslash \\ newline \n tab \t done";
  r.machine["weird\"key"] = "value with \\ and \"quotes\"";
  r.results.push_back({"q/<http://x/e1>\t", {{"neg", -0.0625}, {"tiny", 1e-9},
                                             {"big", 1.5e12}, {"zero", 0}}});
  bench::BenchReport parsed;
  std::string err;
  ASSERT_TRUE(bench::BenchReport::FromJson(r.ToJson(), &parsed, &err)) << err;
  EXPECT_EQ(r, parsed);
}

TEST(BenchJson, RoundTripsEmptySections) {
  bench::BenchReport r;
  r.bench = "empty";
  bench::BenchReport parsed;
  std::string err;
  ASSERT_TRUE(bench::BenchReport::FromJson(r.ToJson(), &parsed, &err)) << err;
  EXPECT_EQ(r, parsed);
  EXPECT_TRUE(parsed.results.empty());
  EXPECT_TRUE(parsed.machine.empty());
}

TEST(BenchJson, RejectsMalformedInput) {
  bench::BenchReport out;
  std::string err;
  EXPECT_FALSE(bench::BenchReport::FromJson("", &out, &err));
  EXPECT_FALSE(bench::BenchReport::FromJson("{", &out, &err));
  EXPECT_FALSE(bench::BenchReport::FromJson("[]", &out, &err));
  EXPECT_FALSE(bench::BenchReport::FromJson("{\"bench\": \"x\"}", &out, &err))
      << "missing results must be rejected";
  EXPECT_FALSE(bench::BenchReport::FromJson(
      "{\"bench\": \"x\", \"results\": [], \"surprise\": 1}", &out, &err))
      << "unknown keys must be rejected";
  std::string valid = SampleReport().ToJson();
  EXPECT_FALSE(bench::BenchReport::FromJson(valid + "trailing", &out, &err))
      << "trailing garbage must be rejected";
  EXPECT_TRUE(bench::BenchReport::FromJson(valid, &out, &err)) << err;
}

TEST(BenchJson, ParsesMinimalHandwrittenReport) {
  // The schema as a human would type it (whitespace variations, ints).
  const std::string text = R"({
    "bench": "b",
    "results": [ {"name": "a", "metrics": {"ms": 3}} ,
                 {"name": "b", "metrics": {}} ],
    "machine": {"host": "h"},
    "config": {}
  })";
  bench::BenchReport out;
  std::string err;
  ASSERT_TRUE(bench::BenchReport::FromJson(text, &out, &err)) << err;
  EXPECT_EQ(out.bench, "b");
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_EQ(out.results[0].metrics.at("ms"), 3.0);
  EXPECT_EQ(out.machine.at("host"), "h");
}

}  // namespace
}  // namespace turbo
