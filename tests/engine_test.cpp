// Core engine tests: the paper's Figure 1 (isomorphism vs e-graph
// homomorphism), Figure 2 (matching order), candidate regions, filters,
// optimizations, parallelism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/engine.hpp"
#include "engine/query_tree.hpp"
#include "rdf/reasoner.hpp"
#include "test_util.hpp"

namespace turbo::engine {
namespace {

using graph::Direction;
using graph::QueryGraph;
using graph::TransformMode;
using testing::AddQE;
using testing::AddQV;
using testing::TestGraph;

std::set<std::vector<VertexId>> AsSet(const std::vector<Solution>& sols) {
  return {sols.begin(), sols.end()};
}

// ---------------------------------------------------------------------------
// Figure 1: the data graph g1 / query q1 example. One subgraph isomorphism,
// three e-graph homomorphisms.
// ---------------------------------------------------------------------------

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : t_({
            {"v0", "type", "A"},
            {"v1", "type", "B"},
            {"v2", "type", "A"},
            {"v2", "type", "D"},
            {"v3", "type", "B"},
            {"v4", "type", "C"},
            {"v5", "type", "C"},
            {"v5", "type", "E"},
            {"v0", "a", "v1"},
            {"v0", "b", "v4"},
            {"v2", "a", "v1"},
            {"v2", "a", "v3"},
            {"v2", "b", "v5"},
            {"v3", "c", "v4"},
            {"v3", "c", "v5"},
        }) {}

  /// q1: u0{A} -a-> u1{B}; u0 -_-> u4{C}; u2(blank) -a-> u1; u2 -a-> u3{B};
  /// u3 -c-> u4. (u2's label set and edge (u0,u4)'s label are blank, matching
  /// the figure's "_" annotations.)
  QueryGraph MakeQ1() {
    QueryGraph q;
    uint32_t u0 = AddQV(&q, {t_.label("A")});
    uint32_t u1 = AddQV(&q, {t_.label("B")});
    uint32_t u2 = AddQV(&q, {});
    uint32_t u3 = AddQV(&q, {t_.label("B")});
    uint32_t u4 = AddQV(&q, {t_.label("C")});
    AddQE(&q, u0, u1, t_.el("a"));
    AddQE(&q, u0, u4, kInvalidId);  // blank edge label
    AddQE(&q, u2, u1, t_.el("a"));
    AddQE(&q, u2, u3, t_.el("a"));
    AddQE(&q, u3, u4, t_.el("c"));
    return q;
  }

  std::vector<VertexId> Map(std::initializer_list<const char*> names) {
    std::vector<VertexId> v;
    for (const char* n : names) v.push_back(t_.vertex(n));
    return v;
  }

  TestGraph t_;
};

TEST_F(Figure1Test, HomomorphismFindsThreeSolutions) {
  Matcher m(t_.g());
  auto sols = m.FindAll(MakeQ1());
  EXPECT_EQ(AsSet(sols), (std::set<std::vector<VertexId>>{
                             Map({"v0", "v1", "v2", "v3", "v4"}),  // M1
                             Map({"v2", "v3", "v2", "v3", "v5"}),  // M2
                             Map({"v2", "v1", "v2", "v3", "v5"}),  // M3
                         }));
}

TEST_F(Figure1Test, IsomorphismFindsOneSolution) {
  MatchOptions opt;
  opt.semantics = MatchSemantics::kIsomorphism;
  Matcher m(t_.g(), opt);
  auto sols = m.FindAll(MakeQ1());
  EXPECT_EQ(AsSet(sols), (std::set<std::vector<VertexId>>{
                             Map({"v0", "v1", "v2", "v3", "v4"}),
                         }));
}

TEST_F(Figure1Test, EdgeLabelMappingIsRecoverable) {
  // Definition 2's Me: for the blank query edge (u0, u4), the matched edge
  // label must be recoverable from the vertex mapping.
  Matcher m(t_.g());
  auto sols = m.FindAll(MakeQ1());
  std::vector<EdgeLabelId> els;
  for (const Solution& s : sols) {
    t_.g().EdgeLabelsBetween(s[0], s[4], &els);
    ASSERT_EQ(els.size(), 1u);
    EXPECT_EQ(els[0], t_.el("b"));  // Me(u0, u4) = b in all three solutions
  }
}

TEST_F(Figure1Test, CountMatchesFindAll) {
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(MakeQ1()), 3u);
}

TEST_F(Figure1Test, AllOptimizationCombosAgree) {
  QueryGraph q = MakeQ1();
  for (int mask = 0; mask < 16; ++mask) {
    MatchOptions opt;
    opt.use_intersection = mask & 1;
    opt.use_nlf = mask & 2;
    opt.use_degree_filter = mask & 4;
    opt.reuse_matching_order = mask & 8;
    Matcher m(t_.g(), opt);
    EXPECT_EQ(m.Count(q), 3u) << "mask=" << mask;
  }
}

// ---------------------------------------------------------------------------
// Figure 2: the matching-order problem. Star query A -> {X, Y, Z} with very
// different branch cardinalities; the candidate-region estimate must order
// the Z path before X before Y.
// ---------------------------------------------------------------------------

class Figure2Test : public ::testing::Test {
 protected:
  static rdf::Dataset MakeData(bool with_z_children) {
    rdf::Dataset ds;
    auto add = [&](const std::string& s, const std::string& p, const std::string& o) {
      ds.AddIri(testing::TestIri(s),
                p == "type" ? std::string(rdf::vocab::kRdfType) : testing::TestIri(p),
                testing::TestIri(o));
    };
    add("v0", "type", "A");
    for (int i = 0; i < 10; ++i) {
      add("x" + std::to_string(i), "type", "X");
      add("v0", "e", "x" + std::to_string(i));
    }
    for (int i = 0; i < 1000; ++i) {
      add("y" + std::to_string(i), "type", "Y");
      add("v0", "e", "y" + std::to_string(i));
    }
    for (int i = 0; i < 5; ++i) {
      add("z" + std::to_string(i), "type", "Z");
      // In the "no answer" variant, Zs hang off x0 instead of v0.
      add(with_z_children ? "v0" : "x0", "e", "z" + std::to_string(i));
    }
    return ds;
  }

  static QueryGraph MakeQ2(const TestGraph& t) {
    QueryGraph q;
    uint32_t u0 = AddQV(&q, {t.label("A")});
    uint32_t u1 = AddQV(&q, {t.label("X")});
    uint32_t u2 = AddQV(&q, {t.label("Y")});
    uint32_t u3 = AddQV(&q, {t.label("Z")});
    AddQE(&q, u0, u1, t.el("e"));
    AddQE(&q, u0, u2, t.el("e"));
    AddQE(&q, u0, u3, t.el("e"));
    return q;
  }
};

TEST_F(Figure2Test, MatchingOrderFollowsCandidateCounts) {
  TestGraph t(MakeData(true));
  Matcher m(t.g());
  MatchStats stats;
  uint64_t count = m.Count(MakeQ2(t), &stats);
  EXPECT_EQ(count, 10u * 1000u * 5u);
  // Best order from the candidate region: u0, u3 (5 Zs), u1 (10 Xs),
  // u2 (1000 Ys) — the paper's <u0, u3, u1, u2>.
  EXPECT_EQ(stats.matching_order, (std::vector<uint32_t>{0, 3, 1, 2}));
}

TEST_F(Figure2Test, EmptyRegionGivesNoAnswers) {
  TestGraph t(MakeData(false));
  Matcher m(t.g());
  MatchStats stats;
  EXPECT_EQ(m.Count(MakeQ2(t), &stats), 0u);
  EXPECT_EQ(stats.num_regions, 0u);  // region exploration fails at the Z child
}

TEST_F(Figure2Test, StartVertexIsTheRareLabel) {
  TestGraph t(MakeData(true));
  Matcher m(t.g());
  MatchStats stats;
  m.Count(MakeQ2(t), &stats);
  EXPECT_EQ(stats.start_query_vertex, 0u);  // freq(A)=1, lowest rank
}

// ---------------------------------------------------------------------------
// Fixed-ID attribute, single-vertex queries, blank vertices.
// ---------------------------------------------------------------------------

class SmallWorldTest : public ::testing::Test {
 protected:
  SmallWorldTest()
      : t_({
            {"alice", "type", "Person"},
            {"bob", "type", "Person"},
            {"carol", "type", "Person"},
            {"acme", "type", "Company"},
            {"alice", "knows", "bob"},
            {"bob", "knows", "carol"},
            {"carol", "knows", "alice"},
            {"alice", "worksFor", "acme"},
            {"bob", "worksFor", "acme"},
        }) {}
  TestGraph t_;
};

TEST_F(SmallWorldTest, FixedIdPinsTheMatch) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {}, t_.vertex("alice"));
  uint32_t u1 = AddQV(&q, {t_.label("Person")});
  AddQE(&q, u0, u1, t_.el("knows"));
  Matcher m(t_.g());
  MatchStats stats;
  auto sols = m.FindAll(q, &stats);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][0], t_.vertex("alice"));
  EXPECT_EQ(sols[0][1], t_.vertex("bob"));
  EXPECT_EQ(stats.start_query_vertex, u0);  // ID vertices give 1 region
  EXPECT_EQ(stats.num_start_candidates, 1u);
}

TEST_F(SmallWorldTest, SingleVertexQueryIteratesInverseLabelList) {
  QueryGraph q;
  AddQV(&q, {t_.label("Person")});
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(q), 3u);
}

TEST_F(SmallWorldTest, SingleVertexWithFixedId) {
  QueryGraph q;
  AddQV(&q, {t_.label("Person")}, t_.vertex("bob"));
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(q), 1u);
}

TEST_F(SmallWorldTest, SingleVertexFixedIdWrongLabel) {
  QueryGraph q;
  AddQV(&q, {t_.label("Company")}, t_.vertex("bob"));
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(q), 0u);
}

TEST_F(SmallWorldTest, TriangleHomomorphism) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t_.label("Person")});
  uint32_t u1 = AddQV(&q, {t_.label("Person")});
  uint32_t u2 = AddQV(&q, {t_.label("Person")});
  AddQE(&q, u0, u1, t_.el("knows"));
  AddQE(&q, u1, u2, t_.el("knows"));
  AddQE(&q, u2, u0, t_.el("knows"));
  Matcher m(t_.g());
  // knows-cycle alice->bob->carol->alice: 3 rotations.
  EXPECT_EQ(m.Count(q), 3u);
}

TEST_F(SmallWorldTest, BlankVertexAndBlankEdge) {
  // (?x ?p acme): who has any edge to acme?
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {});
  uint32_t u1 = AddQV(&q, {}, t_.vertex("acme"));
  AddQE(&q, u0, u1, kInvalidId);
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(q), 2u);  // alice, bob
}

TEST_F(SmallWorldTest, VertexConstraintFiltersCandidates) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t_.label("Person")});
  uint32_t u1 = AddQV(&q, {t_.label("Person")});
  AddQE(&q, u0, u1, t_.el("knows"));
  VertexId bob = t_.vertex("bob");
  q.mutable_vertex(u1).constraint = [bob](const graph::DataGraph&, VertexId v) {
    return v == bob;
  };
  Matcher m(t_.g());
  auto sols = m.FindAll(q);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][1], bob);
}

TEST_F(SmallWorldTest, LimitStopsEarly) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t_.label("Person")});
  uint32_t u1 = AddQV(&q, {t_.label("Person")});
  AddQE(&q, u0, u1, t_.el("knows"));
  MatchOptions opt;
  opt.limit = 2;
  Matcher m(t_.g(), opt);
  EXPECT_EQ(m.FindAll(q).size(), 2u);
}

TEST_F(SmallWorldTest, UnknownFixedIdYieldsEmpty) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {}, kInvalidId - 1);  // out-of-range vertex id
  uint32_t u1 = AddQV(&q, {});
  AddQE(&q, u0, u1, t_.el("knows"));
  Matcher m(t_.g());
  EXPECT_EQ(m.Count(q), 0u);
}

// ---------------------------------------------------------------------------
// Self loops, parallel query edges, multi-label query vertices.
// ---------------------------------------------------------------------------

TEST(EngineEdgeCases, SelfLoop) {
  TestGraph t({{"n", "type", "T"}, {"n", "p", "n"}, {"m", "type", "T"}});
  QueryGraph q;
  uint32_t u = AddQV(&q, {t.label("T")});
  AddQE(&q, u, u, t.el("p"));
  Matcher m(t.g());
  auto sols = m.FindAll(q);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][0], t.vertex("n"));
}

TEST(EngineEdgeCases, SelfLoopBlankLabel) {
  TestGraph t({{"n", "type", "T"}, {"n", "p", "n"}, {"m", "type", "T"}});
  QueryGraph q;
  uint32_t u = AddQV(&q, {t.label("T")});
  AddQE(&q, u, u, kInvalidId);
  Matcher m(t.g());
  EXPECT_EQ(m.Count(q), 1u);
}

TEST(EngineEdgeCases, ParallelQueryEdgesRequireBothPredicates) {
  TestGraph t({{"a", "p", "b"},
               {"a", "q", "b"},
               {"c", "p", "d"},
               {"a", "type", "T"},
               {"c", "type", "T"}});
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t.label("T")});
  uint32_t u1 = AddQV(&q, {});
  AddQE(&q, u0, u1, t.el("p"));
  AddQE(&q, u0, u1, t.el("q"));
  Matcher m(t.g());
  auto sols = m.FindAll(q);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][0], t.vertex("a"));
}

TEST(EngineEdgeCases, MultiLabelQueryVertex) {
  TestGraph t({{"x", "type", "A"},
               {"x", "type", "B"},
               {"y", "type", "A"},
               {"r", "e", "x"},
               {"r", "e", "y"},
               {"r", "type", "R"}});
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t.label("R")});
  uint32_t u1 = AddQV(&q, {t.label("A"), t.label("B")});
  AddQE(&q, u0, u1, t.el("e"));
  Matcher m(t.g());
  auto sols = m.FindAll(q);
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0][1], t.vertex("x"));
}

TEST(EngineEdgeCases, SimpleEntailmentUsesAssertedTypesOnly) {
  rdf::Dataset ds = testing::MakeDataset({{"GradStudent", "subclass", "Student"},
                                          {"g1", "type", "GradStudent"},
                                          {"s1", "type", "Student"},
                                          {"g1", "at", "uni"},
                                          {"s1", "at", "uni"},
                                          {"uni", "type", "Uni"}});
  rdf::MaterializeInference(&ds);
  TestGraph t(std::move(ds));
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {t.label("Student")});
  uint32_t u1 = AddQV(&q, {t.label("Uni")});
  AddQE(&q, u0, u1, t.el("at"));

  Matcher full(t.g());
  EXPECT_EQ(full.Count(q), 2u);  // g1 (inferred Student) + s1

  MatchOptions opt;
  opt.simple_entailment = true;
  Matcher simple(t.g(), opt);
  EXPECT_EQ(simple.Count(q), 1u);  // only the asserted Student
}

// ---------------------------------------------------------------------------
// Parallel execution: results must match sequential.
// ---------------------------------------------------------------------------

TEST(EngineParallel, ParallelMatchesSequential) {
  // A two-level tree: 40 universities, each with departments and students.
  rdf::Dataset ds;
  auto add = [&](const std::string& s, const std::string& p, const std::string& o) {
    ds.AddIri(testing::TestIri(s),
              p == "type" ? std::string(rdf::vocab::kRdfType) : testing::TestIri(p),
              testing::TestIri(o));
  };
  for (int u = 0; u < 40; ++u) {
    std::string uni = "uni" + std::to_string(u);
    add(uni, "type", "University");
    for (int d = 0; d < 1 + u % 4; ++d) {
      std::string dept = uni + "_d" + std::to_string(d);
      add(dept, "type", "Department");
      add(dept, "subOrgOf", uni);
      for (int s = 0; s < 1 + (u + d) % 5; ++s) {
        std::string st = dept + "_s" + std::to_string(s);
        add(st, "type", "Student");
        add(st, "memberOf", dept);
        add(st, "degreeFrom", uni);
      }
    }
  }
  TestGraph t(std::move(ds));
  QueryGraph q;
  uint32_t x = AddQV(&q, {t.label("Student")});
  uint32_t y = AddQV(&q, {t.label("University")});
  uint32_t z = AddQV(&q, {t.label("Department")});
  AddQE(&q, x, y, t.el("degreeFrom"));
  AddQE(&q, x, z, t.el("memberOf"));
  AddQE(&q, z, y, t.el("subOrgOf"));

  Matcher seq(t.g());
  auto expected = AsSet(seq.FindAll(q));
  EXPECT_FALSE(expected.empty());

  for (uint32_t threads : {2u, 4u, 8u}) {
    MatchOptions opt;
    opt.num_threads = threads;
    opt.chunk_size = 3;
    Matcher par(t.g(), opt);
    EXPECT_EQ(AsSet(par.FindAll(q)), expected) << threads << " threads";
  }

  // Static pre-partitioning (the §5.2 ablation path) must agree too.
  MatchOptions stat;
  stat.num_threads = 4;
  stat.dynamic_chunking = false;
  Matcher par_static(t.g(), stat);
  EXPECT_EQ(AsSet(par_static.FindAll(q)), expected);
}

// ---------------------------------------------------------------------------
// QueryTree structure.
// ---------------------------------------------------------------------------

TEST(QueryTreeTest, BfsTreeAndNonTreeEdges) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {});
  uint32_t u1 = AddQV(&q, {});
  uint32_t u2 = AddQV(&q, {});
  AddQE(&q, u0, u1, 0);
  AddQE(&q, u1, u2, 1);
  AddQE(&q, u2, u0, 2);  // triangle: one non-tree edge
  QueryTree t = QueryTree::Build(q, u0);
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.non_tree_edges().size(), 1u);
  EXPECT_EQ(t.node(0).qv, u0);
  EXPECT_EQ(t.node(t.node_of(u1)).parent, 0u);
}

TEST(QueryTreeTest, DirectionFromParent) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {});
  uint32_t u1 = AddQV(&q, {});
  uint32_t u2 = AddQV(&q, {});
  AddQE(&q, u0, u1, 0);  // out edge from root
  AddQE(&q, u2, u0, 1);  // in edge at root
  QueryTree t = QueryTree::Build(q, u0);
  EXPECT_EQ(t.node(t.node_of(u1)).dir_from_parent, Direction::kOut);
  EXPECT_EQ(t.node(t.node_of(u2)).dir_from_parent, Direction::kIn);
}

TEST(QueryTreeTest, PathsCoverAllLeaves) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {});
  uint32_t u1 = AddQV(&q, {});
  uint32_t u2 = AddQV(&q, {});
  uint32_t u3 = AddQV(&q, {});
  AddQE(&q, u0, u1, 0);
  AddQE(&q, u0, u2, 0);
  AddQE(&q, u1, u3, 0);
  QueryTree t = QueryTree::Build(q, u0);
  EXPECT_EQ(t.paths().size(), 2u);  // u0->u1->u3 and u0->u2
}

TEST(QueryTreeTest, SelfLoopIsNonTree) {
  QueryGraph q;
  uint32_t u0 = AddQV(&q, {});
  uint32_t u1 = AddQV(&q, {});
  AddQE(&q, u0, u0, 0);
  AddQE(&q, u0, u1, 1);
  QueryTree t = QueryTree::Build(q, u0);
  EXPECT_EQ(t.num_nodes(), 2u);
  ASSERT_EQ(t.non_tree_edges().size(), 1u);
  EXPECT_EQ(t.non_tree_edges()[0], 0u);
}

}  // namespace
}  // namespace turbo::engine
