// LiveStore unit tests: SPARQL Update parsing, delta visibility, epoch
// pinning, compaction invariance, VALUES / BIND operators, and the
// epoch-aware plan cache. The cross-solver acceptance bar: a cursor opened
// before an update batch returns rows identical to the pre-update run, and
// a cursor opened after returns rows identical to a store rebuilt from
// scratch over the post-update data — every solver, both delivery modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "server/plan_cache.hpp"
#include "sparql/parser.hpp"
#include "sparql/query_engine.hpp"
#include "store/live_store.hpp"

namespace turbo::store {
namespace {

using sparql::ExecOptions;
using sparql::QueryEngine;
using sparql::Row;

constexpr const char* kXsdInt = "http://www.w3.org/2001/XMLSchema#integer";

rdf::Term X(const std::string& s) { return rdf::Term::Iri("http://x/" + s); }

rdf::Dataset PeopleData() {
  rdf::Dataset ds;
  ds.Add(X("alice"), X("knows"), X("bob"));
  ds.Add(X("bob"), X("knows"), X("carol"));
  ds.Add(X("alice"), X("age"), rdf::Term::TypedLiteral("30", kXsdInt));
  ds.Add(X("bob"), X("age"), rdf::Term::TypedLiteral("25", kXsdInt));
  auto type = rdf::Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  for (const char* who : {"alice", "bob", "carol"}) ds.Add(X(who), type, X("Person"));
  return ds;
}

LiveStore::Config StoreConfig(QueryEngine::SolverKind kind) {
  LiveStore::Config config;
  config.engine.solver = kind;
  return config;
}

/// Runs `query` against the store's current epoch and returns the formatted
/// rows, sorted — the byte-level result fingerprint the oracle tests compare.
std::vector<std::string> RunSorted(const LiveStore& store, const std::string& query,
                                   bool streaming = false) {
  auto prepared = store.Prepare(query);
  if (!prepared.ok()) {
    ADD_FAILURE() << "prepare: " << prepared.message();
    return {"<prepare error>"};
  }
  std::shared_ptr<const LiveStore::Snapshot> snap = store.snapshot();
  ExecOptions opts;
  opts.streaming = streaming;
  auto cursor = LiveStore::OpenAt(snap, prepared.value(), opts);
  if (!cursor.ok()) {
    ADD_FAILURE() << "open: " << cursor.message();
    return {"<open error>"};
  }
  std::vector<std::string> out;
  Row row;
  while (cursor.value().Next(&row))
    out.push_back(sparql::FormatRow(cursor.value().var_names(), row, snap->dict(),
                                    cursor.value().local_vocab().get()));
  EXPECT_TRUE(cursor.value().status().ok()) << cursor.value().status().message();
  std::sort(out.begin(), out.end());
  return out;
}

const char* const kKnows = "SELECT ?x ?y WHERE { ?x <http://x/knows> ?y . }";
const char* const kTwoHop =
    "SELECT ?x ?z WHERE { ?x <http://x/knows> ?y . ?y <http://x/knows> ?z . }";

class LiveStoreSolvers : public ::testing::TestWithParam<QueryEngine::SolverKind> {};

TEST_P(LiveStoreSolvers, InsertsAreVisibleIncludingNewTerms) {
  LiveStore store(PeopleData(), StoreConfig(GetParam()));
  ASSERT_EQ(store.epoch(), 0u);

  // `dave` does not exist in the base dictionary: both triples route through
  // the term overlay, and the two-hop join must cross base -> delta edges.
  auto result = store.Update(
      "INSERT DATA { <http://x/carol> <http://x/knows> <http://x/dave> . "
      "<http://x/dave> <http://x/knows> <http://x/alice> . }");
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_EQ(result.value().epoch, 1u);
  EXPECT_EQ(result.value().inserted, 2u);
  EXPECT_EQ(result.value().delta_adds, 2u);

  for (bool streaming : {false, true}) {
    std::vector<std::string> knows = RunSorted(store, kKnows, streaming);
    ASSERT_EQ(knows.size(), 4u);
    EXPECT_NE(std::find_if(knows.begin(), knows.end(),
                           [](const std::string& r) {
                             return r.find("dave") != std::string::npos;
                           }),
              knows.end());
    // bob -> carol -> dave and dave -> alice -> bob span base and delta.
    std::vector<std::string> hops = RunSorted(store, kTwoHop, streaming);
    EXPECT_EQ(hops.size(), 4u);
  }

  // A VALUES constant naming an overlay-only term must join the delta.
  std::vector<std::string> via_values = RunSorted(
      store,
      "SELECT ?x ?y WHERE { VALUES ?x { <http://x/dave> } ?x <http://x/knows> ?y . }");
  ASSERT_EQ(via_values.size(), 1u);
  EXPECT_NE(via_values[0].find("alice"), std::string::npos);
}

TEST_P(LiveStoreSolvers, DeletesHideBaseTriples) {
  LiveStore store(PeopleData(), StoreConfig(GetParam()));
  auto result =
      store.Update("DELETE DATA { <http://x/alice> <http://x/knows> <http://x/bob> . }");
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_EQ(result.value().deleted, 1u);
  EXPECT_EQ(result.value().tombstones, 1u);

  for (bool streaming : {false, true}) {
    std::vector<std::string> knows = RunSorted(store, kKnows, streaming);
    ASSERT_EQ(knows.size(), 1u);
    EXPECT_EQ(knows[0].find("alice"), std::string::npos);
    EXPECT_TRUE(RunSorted(store, kTwoHop, streaming).empty());
  }

  // Re-inserting erases the tombstone (set semantics) and restores the row.
  auto back =
      store.Update("INSERT DATA { <http://x/alice> <http://x/knows> <http://x/bob> . }");
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().inserted, 1u);
  EXPECT_EQ(back.value().tombstones, 0u);
  EXPECT_EQ(back.value().delta_adds, 0u);
  EXPECT_EQ(RunSorted(store, kKnows).size(), 2u);
}

TEST_P(LiveStoreSolvers, CursorsPinTheirEpoch) {
  LiveStore store(PeopleData(), StoreConfig(GetParam()));
  std::vector<std::string> before = RunSorted(store, kKnows);

  for (bool streaming : {false, true}) {
    auto prepared = store.Prepare(kKnows);
    ASSERT_TRUE(prepared.ok());
    std::shared_ptr<const LiveStore::Snapshot> snap = store.snapshot();
    ExecOptions opts;
    opts.streaming = streaming;
    auto pinned = LiveStore::OpenAt(snap, prepared.value(), opts);
    ASSERT_TRUE(pinned.ok());

    // Mutate *after* Open, *before* the first Next: the pinned cursor must
    // still deliver the pre-update rows byte-for-byte.
    ASSERT_TRUE(
        store
            .Update("INSERT DATA { <http://x/eve> <http://x/knows> <http://x/alice> . } "
                    "; DELETE DATA { <http://x/bob> <http://x/knows> <http://x/carol> . }")
            .ok());

    std::vector<std::string> got;
    Row row;
    while (pinned.value().Next(&row))
      got.push_back(sparql::FormatRow(pinned.value().var_names(), row, snap->dict(),
                                      pinned.value().local_vocab().get()));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, before) << "streaming=" << streaming;

    // Undo for the next iteration; new cursors see the undone state again.
    ASSERT_TRUE(
        store
            .Update("DELETE DATA { <http://x/eve> <http://x/knows> <http://x/alice> . } "
                    "; INSERT DATA { <http://x/bob> <http://x/knows> <http://x/carol> . }")
            .ok());
    EXPECT_EQ(RunSorted(store, kKnows, streaming), before);
  }
}

TEST_P(LiveStoreSolvers, MatchesFromScratchOracleAndSurvivesCompaction) {
  LiveStore store(PeopleData(), StoreConfig(GetParam()));
  ASSERT_TRUE(store
                  .Update("INSERT DATA { <http://x/carol> <http://x/knows> "
                          "<http://x/dave> . <http://x/dave> <http://x/knows> "
                          "<http://x/alice> . <http://x/dave> <http://x/age> "
                          "\"7\"^^xsd:integer . }")
                  .ok());
  ASSERT_TRUE(
      store.Update("DELETE DATA { <http://x/bob> <http://x/knows> <http://x/carol> . }")
          .ok());

  // Oracle: the same final state loaded from scratch (no delta, no overlay).
  rdf::Dataset oracle_data = PeopleData();
  oracle_data.Add(X("carol"), X("knows"), X("dave"));
  oracle_data.Add(X("dave"), X("knows"), X("alice"));
  oracle_data.Add(X("dave"), X("age"), rdf::Term::TypedLiteral("7", kXsdInt));
  {  // delete bob->carol from the oracle's triple list
    auto& triples = oracle_data.mutable_triples();
    rdf::Triple doomed{*oracle_data.dict().Find(X("bob")),
                       *oracle_data.dict().Find(X("knows")),
                       *oracle_data.dict().Find(X("carol"))};
    triples.erase(std::remove(triples.begin(), triples.end(), doomed), triples.end());
  }
  LiveStore oracle(std::move(oracle_data), StoreConfig(GetParam()));

  const char* kAggregate =
      "SELECT (SUM(?a) AS ?total) WHERE { ?x <http://x/age> ?a . }";
  for (bool streaming : {false, true}) {
    for (const char* q : {kKnows, kTwoHop, kAggregate}) {
      EXPECT_EQ(RunSorted(store, q, streaming), RunSorted(oracle, q, streaming))
          << q << " streaming=" << streaming;
    }
  }
  // The SUM must include the overlay-interned "7" (30 + 25 + 7).
  std::vector<std::string> total = RunSorted(store, kAggregate);
  ASSERT_EQ(total.size(), 1u);
  EXPECT_NE(total[0].find("62"), std::string::npos) << total[0];

  // Compaction folds the delta into a fresh base; results are invariant and
  // further updates start from a clean overlay.
  std::vector<std::string> before = RunSorted(store, kTwoHop);
  uint64_t epoch_before = store.epoch();
  ASSERT_TRUE(store.Compact().ok());
  LiveStore::Stats stats = store.stats();
  EXPECT_EQ(stats.epoch, epoch_before + 1);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.delta_adds, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.overlay_terms, 0u);
  EXPECT_EQ(RunSorted(store, kTwoHop), before);
  for (const char* q : {kKnows, kAggregate})
    EXPECT_EQ(RunSorted(store, q), RunSorted(oracle, q)) << q << " post-compaction";

  ASSERT_TRUE(store
                  .Update("INSERT DATA { <http://x/dave> <http://x/knows> "
                          "<http://x/frank> . }")
                  .ok());
  EXPECT_EQ(RunSorted(store, kKnows).size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, LiveStoreSolvers,
    ::testing::Values(QueryEngine::SolverKind::kTurbo,
                      QueryEngine::SolverKind::kTurboDirect,
                      QueryEngine::SolverKind::kSortMerge,
                      QueryEngine::SolverKind::kIndexJoin),
    [](const ::testing::TestParamInfo<QueryEngine::SolverKind>& info) {
      switch (info.param) {
        case QueryEngine::SolverKind::kTurbo: return "Turbo";
        case QueryEngine::SolverKind::kTurboDirect: return "TurboDirect";
        case QueryEngine::SolverKind::kSortMerge: return "SortMerge";
        case QueryEngine::SolverKind::kIndexJoin: return "IndexJoin";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// Update parsing
// ---------------------------------------------------------------------------

TEST(ParseUpdate, AcceptsPrefixesAndCombinedOperations) {
  auto parsed = sparql::ParseUpdate(
      "PREFIX x: <http://x/> "
      "INSERT DATA { x:a x:p x:b . x:b x:p x:c . } ; "
      "DELETE DATA { x:c x:p x:d . }");
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(parsed.value().insert_triples.size(), 2u);
  EXPECT_EQ(parsed.value().delete_triples.size(), 1u);
  EXPECT_EQ(parsed.value().insert_triples[0][0].lexical, "http://x/a");
}

TEST(ParseUpdate, RejectsVariablesAndPatternForms) {
  EXPECT_FALSE(sparql::ParseUpdate("INSERT DATA { ?x <http://x/p> <http://x/o> . }").ok());
  EXPECT_FALSE(sparql::ParseUpdate(
                   "DELETE WHERE { <http://x/a> <http://x/p> <http://x/o> . }")
                   .ok());
  EXPECT_FALSE(sparql::ParseUpdate("SELECT ?x WHERE { ?x ?p ?o . }").ok());
  EXPECT_FALSE(sparql::ParseUpdate("").ok());
}

TEST(LiveStoreSemantics, SetSemanticsAndUnknownTermDeletes) {
  LiveStore store(PeopleData(), LiveStore::Config{});
  // Inserting an existing base triple is a no-op.
  auto redundant =
      store.Update("INSERT DATA { <http://x/alice> <http://x/knows> <http://x/bob> . }");
  ASSERT_TRUE(redundant.ok());
  EXPECT_EQ(redundant.value().inserted, 0u);
  EXPECT_EQ(redundant.value().delta_adds, 0u);
  // Deleting a triple whose terms were never seen is a no-op, not an error.
  auto phantom =
      store.Update("DELETE DATA { <http://x/ghost> <http://x/haunts> <http://x/attic> . }");
  ASSERT_TRUE(phantom.ok());
  EXPECT_EQ(phantom.value().deleted, 0u);
  EXPECT_EQ(phantom.value().tombstones, 0u);
  // Insert-then-delete of a brand-new triple leaves an empty delta.
  ASSERT_TRUE(
      store.Update("INSERT DATA { <http://x/eve> <http://x/knows> <http://x/eve> . }")
          .ok());
  auto gone =
      store.Update("DELETE DATA { <http://x/eve> <http://x/knows> <http://x/eve> . }");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().deleted, 1u);
  EXPECT_EQ(gone.value().delta_adds, 0u);
  EXPECT_EQ(gone.value().tombstones, 0u);
  LiveStore::Stats stats = store.stats();
  EXPECT_EQ(stats.updates_applied, 4u);
  EXPECT_EQ(stats.epoch, 4u);
}

// ---------------------------------------------------------------------------
// VALUES / BIND (the new streaming operators, over a plain engine)
// ---------------------------------------------------------------------------

TEST(ValuesAndBind, ValuesRestrictsAndBindComputes) {
  LiveStore store(PeopleData(), LiveStore::Config{});
  std::vector<std::string> rows = RunSorted(
      store,
      "SELECT ?x ?y WHERE { VALUES ?x { <http://x/alice> <http://x/nobody> } "
      "?x <http://x/knows> ?y . }");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].find("alice"), std::string::npos);

  // Parenthesized multi-var form with UNDEF: (bob UNDEF) leaves ?y free.
  std::vector<std::string> multi = RunSorted(
      store,
      "SELECT ?x ?y WHERE { VALUES (?x ?y) { (<http://x/alice> <http://x/bob>) "
      "(<http://x/bob> UNDEF) } ?x <http://x/knows> ?y . }");
  EXPECT_EQ(multi.size(), 2u);

  // BIND copies a bound term into a fresh variable.
  std::vector<std::string> bound = RunSorted(
      store,
      "SELECT ?x ?z WHERE { ?x <http://x/knows> ?y . BIND(?y AS ?z) }");
  ASSERT_EQ(bound.size(), 2u);
  for (const std::string& r : bound)
    EXPECT_TRUE(r.find("bob") != std::string::npos ||
                r.find("carol") != std::string::npos)
        << r;
}

// ---------------------------------------------------------------------------
// Epoch-aware plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheEpochs, StaleEpochEntriesRevalidate) {
  QueryEngine engine(PeopleData());
  server::PlanCache cache(4);
  auto prepare = [&engine](const std::string& t) { return engine.Prepare(t); };

  auto first = cache.Get(prepare, kKnows, /*epoch=*/0);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.plan.ok());
  EXPECT_EQ(cache.misses(), 1u);

  auto again = cache.Get(prepare, kKnows, 0);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.revalidations(), 0u);

  // The store moved to epoch 3: the cached plan is stale and must be
  // re-prepared, not served.
  auto stale = cache.Get(prepare, kKnows, 3);
  EXPECT_FALSE(stale.hit);
  EXPECT_TRUE(stale.plan.ok());
  EXPECT_EQ(cache.revalidations(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  auto fresh = cache.Get(prepare, kKnows, 3);
  EXPECT_TRUE(fresh.hit);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace turbo::store
