// Read-while-write torture for the live store: one writer thread applies a
// deterministic sequence of update batches (and a compaction) while reader
// threads continuously pin snapshots and drain cursors — all four solver
// kinds, materialized and streaming delivery. Every drained result must be
// byte-identical to a from-scratch oracle of the epoch the reader pinned:
// that is the MVCC contract (readers never block, never see a half-applied
// batch, never see a later epoch's rows). The suite runs under TSan in CI;
// a data race here is a contract violation, not flakiness.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sparql/query_engine.hpp"
#include "store/live_store.hpp"

namespace turbo::store {
namespace {

using sparql::ExecOptions;
using sparql::QueryEngine;
using sparql::Row;

rdf::Term X(const std::string& s) { return rdf::Term::Iri("http://x/" + s); }

const char* const kKnows = "SELECT ?x ?y WHERE { ?x <http://x/knows> ?y . }";
const char* const kTwoHop =
    "SELECT ?x ?z WHERE { ?x <http://x/knows> ?y . ?y <http://x/knows> ?z . }";

/// One ground mutation; batches of these make an update text and, replayed
/// onto a set, the oracle state per epoch.
struct Op {
  bool insert;
  const char* s;
  const char* o;
};

// Epoch e applies kBatches[e-1]. `eve`/`frank`/`gail` are absent from the
// base dictionary, so inserts naming them exercise the term overlay; deletes
// cover base triples (tombstones) and delta adds alike.
const std::vector<std::vector<Op>> kBatches = {
    {{true, "carol", "dave"}, {true, "dave", "alice"}},
    {{false, "alice", "bob"}},
    {{true, "eve", "alice"}, {true, "bob", "eve"}},
    {{false, "dave", "alice"}, {true, "dave", "frank"}},
    {{true, "alice", "bob"}, {false, "bob", "carol"}},
    {{true, "frank", "gail"}, {false, "eve", "alice"}},
};

std::string BatchText(const std::vector<Op>& batch) {
  std::string inserts, deletes;
  for (const Op& op : batch) {
    std::string triple = std::string("<http://x/") + op.s + "> <http://x/knows> " +
                         "<http://x/" + op.o + "> . ";
    (op.insert ? inserts : deletes) += triple;
  }
  std::string text;
  if (!deletes.empty()) text += "DELETE DATA { " + deletes + "}";
  if (!inserts.empty()) {
    if (!text.empty()) text += " ; ";
    text += "INSERT DATA { " + inserts + "}";
  }
  return text;
}

std::set<std::pair<std::string, std::string>> BaseEdges() {
  return {{"alice", "bob"}, {"bob", "carol"}, {"carol", "alice"}, {"dave", "bob"}};
}

rdf::Dataset DataFromEdges(const std::set<std::pair<std::string, std::string>>& edges) {
  rdf::Dataset ds;
  for (const auto& [s, o] : edges) ds.Add(X(s), X("knows"), X(o));
  auto type = rdf::Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  // A little typed ballast so the Turbo solvers build real label sets.
  for (const char* who : {"alice", "bob", "carol", "dave"}) ds.Add(X(who), type, X("P"));
  return ds;
}

std::vector<std::string> DrainSorted(const LiveStore::Snapshot& snap,
                                     sparql::Cursor& cursor) {
  std::vector<std::string> out;
  Row row;
  while (cursor.Next(&row))
    out.push_back(sparql::FormatRow(cursor.var_names(), row, snap.dict(),
                                    cursor.local_vocab().get()));
  std::sort(out.begin(), out.end());
  return out;
}

class LiveReadWrite : public ::testing::TestWithParam<QueryEngine::SolverKind> {};

TEST_P(LiveReadWrite, ReadersAlwaysSeeExactlyTheirPinnedEpoch) {
  LiveStore::Config config;
  config.engine.solver = GetParam();

  // Oracle per epoch: replay the batches onto a plain edge set and evaluate
  // each state from scratch. Epochs: 0 = base, 1..N = after batch i,
  // N+1 = post-compaction (same state as N), N+2 = one post-compaction batch.
  const std::vector<Op> post_compact_batch = {{true, "gail", "alice"}};
  std::vector<std::set<std::pair<std::string, std::string>>> states;
  states.push_back(BaseEdges());
  for (const auto& batch : kBatches) {
    auto next = states.back();
    for (const Op& op : batch) {
      if (op.insert) next.insert({op.s, op.o});
      else next.erase({op.s, op.o});
    }
    states.push_back(std::move(next));
  }
  states.push_back(states.back());  // compaction: same visible state
  {
    auto next = states.back();
    for (const Op& op : post_compact_batch) next.insert({op.s, op.o});
    states.push_back(std::move(next));
  }

  std::vector<std::vector<std::string>> expect_knows, expect_hops;
  for (const auto& state : states) {
    LiveStore oracle(DataFromEdges(state), config);
    auto snap = oracle.snapshot();
    auto run = [&](const char* q) {
      auto prepared = oracle.Prepare(q);
      EXPECT_TRUE(prepared.ok());
      auto cursor = LiveStore::OpenAt(snap, prepared.value(), {});
      EXPECT_TRUE(cursor.ok());
      return DrainSorted(*snap, cursor.value());
    };
    expect_knows.push_back(run(kKnows));
    expect_hops.push_back(run(kTwoHop));
  }

  LiveStore store(DataFromEdges(BaseEdges()), config);
  auto prepared_knows = store.Prepare(kKnows);
  auto prepared_hops = store.Prepare(kTwoHop);
  ASSERT_TRUE(prepared_knows.ok() && prepared_hops.ok());

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (const auto& batch : kBatches) {
      auto result = store.Update(BatchText(batch));
      if (!result.ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
    if (!store.Compact().ok()) failures.fetch_add(1);
    if (!store.Update(BatchText(post_compact_batch)).ok()) failures.fetch_add(1);
    writer_done.store(true);
  });

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int iter = 0;
      // Keep reading until the writer finishes, then a few verifying passes
      // over the final epoch so late epochs are covered too.
      while (!writer_done.load(std::memory_order_acquire) || iter % 8 != 0) {
        ++iter;
        std::shared_ptr<const LiveStore::Snapshot> snap = store.snapshot();
        if (snap->epoch >= expect_knows.size()) {
          failures.fetch_add(1);
          break;
        }
        ExecOptions opts;
        opts.streaming = (r + iter) % 2 == 1;
        if (opts.streaming) opts.channel_capacity = 1 + iter % 3;
        bool hops = (r + iter) % 3 == 0;
        auto cursor = LiveStore::OpenAt(
            snap, hops ? prepared_hops.value() : prepared_knows.value(), opts);
        if (!cursor.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<std::string> got = DrainSorted(*snap, cursor.value());
        const std::vector<std::string>& want =
            hops ? expect_hops[snap->epoch] : expect_knows[snap->epoch];
        if (!cursor.value().status().ok() || got != want) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Everything settled: the final epoch equals the last oracle state.
  auto final_snap = store.snapshot();
  EXPECT_EQ(final_snap->epoch, states.size() - 1);
  auto cursor = LiveStore::OpenAt(final_snap, prepared_knows.value(), {});
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(DrainSorted(*final_snap, cursor.value()), expect_knows.back());
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, LiveReadWrite,
    ::testing::Values(QueryEngine::SolverKind::kTurbo,
                      QueryEngine::SolverKind::kTurboDirect,
                      QueryEngine::SolverKind::kSortMerge,
                      QueryEngine::SolverKind::kIndexJoin),
    [](const ::testing::TestParamInfo<QueryEngine::SolverKind>& info) {
      switch (info.param) {
        case QueryEngine::SolverKind::kTurbo: return "Turbo";
        case QueryEngine::SolverKind::kTurboDirect: return "TurboDirect";
        case QueryEngine::SolverKind::kSortMerge: return "SortMerge";
        case QueryEngine::SolverKind::kIndexJoin: return "IndexJoin";
      }
      return "Unknown";
    });

// Background compaction: with a threshold set, updates trigger the
// compactor thread; queries keep answering correctly throughout and the
// delta eventually folds away.
TEST(LiveBackgroundCompaction, ThresholdTriggersCompactorThread) {
  LiveStore::Config config;
  config.engine.solver = QueryEngine::SolverKind::kIndexJoin;
  config.compact_threshold = 4;
  LiveStore store(DataFromEdges(BaseEdges()), config);

  for (int i = 0; i < 12; ++i) {
    std::string who = "n" + std::to_string(i);
    auto result = store.Update("INSERT DATA { <http://x/" + who +
                               "> <http://x/knows> <http://x/alice> . }");
    ASSERT_TRUE(result.ok()) << result.message();
  }
  // Wait (bounded) for the compactor to drain the delta below the threshold.
  for (int spin = 0; spin < 200 && store.stats().delta_adds >= 4; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  LiveStore::Stats stats = store.stats();
  EXPECT_GE(stats.compactions, 1u);

  LiveStore oracle(DataFromEdges([] {
                     auto edges = BaseEdges();
                     for (int i = 0; i < 12; ++i)
                       edges.insert({"n" + std::to_string(i), "alice"});
                     return edges;
                   }()),
                   config);
  auto q = store.Prepare(kKnows);
  ASSERT_TRUE(q.ok());
  auto snap = store.snapshot();
  auto cursor = LiveStore::OpenAt(snap, q.value(), {});
  ASSERT_TRUE(cursor.ok());
  auto oracle_snap = oracle.snapshot();
  auto oracle_q = oracle.Prepare(kKnows);
  ASSERT_TRUE(oracle_q.ok());
  auto oracle_cursor = LiveStore::OpenAt(oracle_snap, oracle_q.value(), {});
  ASSERT_TRUE(oracle_cursor.ok());
  EXPECT_EQ(DrainSorted(*snap, cursor.value()),
            DrainSorted(*oracle_snap, oracle_cursor.value()));
}

}  // namespace
}  // namespace turbo::store
